package factorlog_test

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"

	"factorlog"
)

const tc3Src = `
	t(X, Y) :- t(X, W), t(W, Y).
	t(X, Y) :- e(X, W), t(W, Y).
	t(X, Y) :- t(X, W), e(W, Y).
	t(X, Y) :- e(X, Y).
	?- t(5, Y).
`

func loadTC(t *testing.T) *factorlog.System {
	t.Helper()
	sys, err := factorlog.Load(tc3Src)
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

func chainDB(sys *factorlog.System, n int) *factorlog.DB {
	db := sys.NewDB()
	for i := 1; i < n; i++ {
		db.Fact("e", fmt.Sprint(i), fmt.Sprint(i+1))
	}
	return db
}

func TestLoadAndRun(t *testing.T) {
	sys := loadTC(t)
	res, err := sys.Run(factorlog.FactoredOptimized, chainDB(sys, 10))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Answers) != 5 { // 6..10
		t.Errorf("answers = %v", res.Answers)
	}
	if res.MaxIDBArity != 1 {
		t.Errorf("arity = %d, want 1", res.MaxIDBArity)
	}
}

func TestWithStreaming(t *testing.T) {
	sys := loadTC(t)
	base, err := sys.Run(factorlog.FactoredOptimized, chainDB(sys, 10))
	if err != nil {
		t.Fatal(err)
	}
	if base.Executor != "materialize" || base.Stream != nil {
		t.Errorf("default run: executor=%q stream=%v", base.Executor, base.Stream)
	}
	sys.WithStreaming(true)
	streamed, err := sys.Run(factorlog.FactoredOptimized, chainDB(sys, 10))
	if err != nil {
		t.Fatal(err)
	}
	if streamed.Executor != "stream" || streamed.Stream == nil || streamed.Stream.RowsEmitted == 0 {
		t.Fatalf("streamed run: executor=%q stream=%+v", streamed.Executor, streamed.Stream)
	}
	if fmt.Sprint(streamed.Answers) != fmt.Sprint(base.Answers) {
		t.Errorf("answers differ: %v vs %v", streamed.Answers, base.Answers)
	}
	sys.WithStreaming(false)
	again, err := sys.Run(factorlog.FactoredOptimized, chainDB(sys, 10))
	if err != nil {
		t.Fatal(err)
	}
	if again.Executor != "materialize" {
		t.Errorf("after WithStreaming(false): executor=%q", again.Executor)
	}
}

func TestLoadErrors(t *testing.T) {
	if _, err := factorlog.Load(`t(X) :- e(X).`); !errors.Is(err, factorlog.ErrNoQuery) {
		t.Errorf("want ErrNoQuery, got %v", err)
	}
	if _, err := factorlog.Load(`?- a(X). ?- b(X).`); err == nil {
		t.Error("two queries should be rejected")
	}
	if _, err := factorlog.Load(`t(X :- e(X).`); err == nil {
		t.Error("syntax error should be reported")
	}
}

func TestEmbeddedFacts(t *testing.T) {
	sys, err := factorlog.Load(`
		t(X, Y) :- e(X, Y).
		t(X, Y) :- e(X, W), t(W, Y).
		e(1, 2). e(2, 3).
		?- t(1, Y).
	`)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.Run(factorlog.SemiNaive, sys.NewDB())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Answers) != 2 {
		t.Errorf("answers = %v", res.Answers)
	}
}

func TestCompareFacade(t *testing.T) {
	sys := loadTC(t)
	results, skipped, err := sys.Compare(factorlog.AllStrategies(), func() *factorlog.DB {
		return chainDB(sys, 15)
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) == 0 {
		t.Fatal("no results")
	}
	if len(skipped) == 0 {
		t.Error("counting/top-down should be skipped on TC3")
	}
	for _, r := range results[1:] {
		if len(r.Answers) != len(results[0].Answers) {
			t.Errorf("%s disagrees", r.Strategy)
		}
	}
}

func TestExplain(t *testing.T) {
	sys := loadTC(t)
	ex, err := sys.Explain(factorlog.Magic)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(ex.Program, "m_t_bf") {
		t.Errorf("magic explanation:\n%s", ex.Program)
	}
	ex, err = sys.Explain(factorlog.FactoredOptimized)
	if err != nil {
		t.Fatal(err)
	}
	if ex.Class != "selection-pushing" {
		t.Errorf("class = %q", ex.Class)
	}
	if len(ex.Trace) == 0 {
		t.Error("no optimization trace")
	}
	// The final program is the paper's four-rule unary program.
	if n := strings.Count(strings.TrimSpace(ex.Program), "\n") + 1; n != 4 {
		t.Errorf("final program has %d rules:\n%s", n, ex.Program)
	}
}

func TestClassify(t *testing.T) {
	sys := loadTC(t)
	class, err := sys.Classify()
	if err != nil {
		t.Fatal(err)
	}
	if class != "selection-pushing" {
		t.Errorf("class = %q", class)
	}
	// Non-factorable program.
	sg, err := factorlog.Load(`
		sg(X, Y) :- flat(X, Y).
		sg(X, Y) :- up(X, U), sg(U, V), down(V, Y).
		?- sg(n, Y).
	`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sg.Classify(); !errors.Is(err, factorlog.ErrNotFactorable) {
		t.Errorf("want ErrNotFactorable, got %v", err)
	}
}

func TestWithConstraints(t *testing.T) {
	src := `
		p(X, Y) :- l1(X), p(X, U), p(X, V), c(U, V, W), p(W, Y), r1(Y).
		p(X, Y) :- l2(X), p(X, U), p(X, V), c(U, V, W), p(W, Y), r2(Y).
		p(X, Y) :- e(X, Y).
		?- p(5, Y).
	`
	sys, err := factorlog.Load(src)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Classify(); err == nil {
		t.Fatal("Example 4.4 should not classify without constraints")
	}
	sys2, err := factorlog.Load(src)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys2.WithConstraints(`
		r1(Y) :- e(X, Y).
		r2(Y) :- e(X, Y).
	`); err != nil {
		t.Fatal(err)
	}
	class, err := sys2.Classify()
	if err != nil {
		t.Fatal(err)
	}
	if class != "symmetric" {
		t.Errorf("class = %q", class)
	}
}

func TestListProgramThroughFacade(t *testing.T) {
	sys, err := factorlog.Load(`
		pmem(X, [X|T]) :- p(X).
		pmem(X, [H|T]) :- pmem(X, T).
		?- pmem(X, [x1, x2, x3, x4]).
	`)
	if err != nil {
		t.Fatal(err)
	}
	db := sys.NewDB()
	db.Fact("p", "x2")
	db.Fact("p", "x4")
	res, err := sys.Run(factorlog.FactoredOptimized, db)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Answers) != 2 || res.Answers[0] != "(x2)" {
		t.Errorf("answers = %v", res.Answers)
	}
}

func TestFactTerms(t *testing.T) {
	sys, err := factorlog.Load(`
		head(X) :- holds([X|T]).
		?- head(X).
	`)
	if err != nil {
		t.Fatal(err)
	}
	db := sys.NewDB()
	if err := db.FactTerms("holds", "[a,b,c]"); err != nil {
		t.Fatal(err)
	}
	if db.Count("holds") != 1 {
		t.Error("FactTerms did not insert")
	}
	if err := db.FactTerms("holds", "[a|X]"); err == nil {
		t.Error("non-ground term should be rejected")
	}
	res, err := sys.Run(factorlog.SemiNaive, db)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Answers) != 1 || res.Answers[0] != "(a)" {
		t.Errorf("answers = %v", res.Answers)
	}
}

func TestWithBudget(t *testing.T) {
	sys, err := factorlog.Load(`
		t(X, Y) :- e(X, W), t(W, Y).
		t(X, Y) :- e(X, Y).
		?- t(0, Y).
	`)
	if err != nil {
		t.Fatal(err)
	}
	sys.WithBudget(0, 500)
	db := sys.NewDB()
	// Cyclic data: counting diverges; the budget converts that into error.
	db.Fact("e", "0", "1")
	db.Fact("e", "1", "0")
	if _, err := sys.Run(factorlog.Counting, db); err == nil {
		t.Error("budget should stop counting on cyclic data")
	}
}

func TestFormatResult(t *testing.T) {
	sys := loadTC(t)
	res, err := sys.Run(factorlog.Magic, chainDB(sys, 8))
	if err != nil {
		t.Fatal(err)
	}
	s := factorlog.FormatResult(res)
	if !strings.Contains(s, "magic") || !strings.Contains(s, "answers") {
		t.Errorf("format = %q", s)
	}
}

func TestLoadProgramAndAccessors(t *testing.T) {
	u, err := factorlog.Load(tc3Src)
	if err != nil {
		t.Fatal(err)
	}
	sys := factorlog.LoadProgram(u.Program(), u.Query())
	if sys.Query().Pred != "t" {
		t.Errorf("query = %s", sys.Query())
	}
	if len(sys.Program().Rules) != 4 {
		t.Errorf("rules = %d", len(sys.Program().Rules))
	}
	db := sys.NewDB()
	db.Fact("e", "5", "6")
	if db.Engine().Count("e") != 1 {
		t.Error("Engine() accessor broken")
	}
	res, err := sys.Run(factorlog.Magic, db)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Answers) != 1 {
		t.Errorf("answers = %v", res.Answers)
	}
}

func TestExplainAllStrategies(t *testing.T) {
	sys := loadTC(t)
	for _, s := range factorlog.AllStrategies() {
		ex, err := sys.Explain(s)
		if s == factorlog.Counting {
			if err == nil {
				t.Error("counting should be unavailable for TC3")
			}
			continue
		}
		if err != nil {
			t.Errorf("%s: %v", s, err)
			continue
		}
		if ex.Program == "" {
			t.Errorf("%s: empty program", s)
		}
	}
	// Supplementary magic mentions sup predicates.
	ex, err := sys.Explain(factorlog.SupplementaryMagic)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(ex.Program, "sup_") {
		t.Errorf("sup-magic explanation:\n%s", ex.Program)
	}
}

func TestPrepareAndContext(t *testing.T) {
	sys := loadTC(t)
	prep, err := sys.Prepare(factorlog.Magic)
	if err != nil {
		t.Fatal(err)
	}
	if prep.Strategy() != factorlog.Magic {
		t.Errorf("strategy = %v", prep.Strategy())
	}
	// A prepared plan runs repeatedly against fresh DBs.
	for i := 0; i < 2; i++ {
		res, err := prep.Run(context.Background(), chainDB(sys, 10))
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Answers) != 5 {
			t.Errorf("run %d: answers = %v", i, res.Answers)
		}
	}
	// A canceled context surfaces the typed error, via Prepared.Run and
	// via WithContext on a plain Run.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := prep.Run(ctx, chainDB(sys, 10)); !errors.Is(err, factorlog.ErrCanceled) {
		t.Errorf("Prepared.Run: want ErrCanceled, got %v", err)
	}
	if _, err := sys.WithContext(ctx).Run(factorlog.SemiNaive, chainDB(sys, 10)); !errors.Is(err, factorlog.ErrCanceled) {
		t.Errorf("WithContext Run: want ErrCanceled, got %v", err)
	}
}

// ExampleLoad demonstrates the quickstart flow.
func ExampleLoad() {
	sys, err := factorlog.Load(`
		t(X, Y) :- t(X, W), t(W, Y).
		t(X, Y) :- e(X, W), t(W, Y).
		t(X, Y) :- t(X, W), e(W, Y).
		t(X, Y) :- e(X, Y).
		?- t(5, Y).
	`)
	if err != nil {
		panic(err)
	}
	db := sys.NewDB()
	db.Fact("e", "5", "6")
	db.Fact("e", "6", "7")
	res, err := sys.Run(factorlog.FactoredOptimized, db)
	if err != nil {
		panic(err)
	}
	fmt.Println(res.Answers)
	// Output: [(6) (7)]
}

func TestMaterializedFacade(t *testing.T) {
	src := `
		t(X, Y) :- e(X, Y).
		t(X, Y) :- e(X, W), t(W, Y).
		e(1, 2). e(2, 3).
		?- t(1, Y).
	`
	for _, strat := range []factorlog.Strategy{factorlog.SemiNaive, factorlog.Magic, factorlog.Factored} {
		sys, err := factorlog.Load(src)
		if err != nil {
			t.Fatal(err)
		}
		m, err := sys.Materialize(strat)
		if err != nil {
			t.Fatalf("%v: %v", strat, err)
		}
		if got, _ := m.Answers(); fmt.Sprint(got) != "[(2) (3)]" {
			t.Fatalf("%v initial answers = %v", strat, got)
		}
		if epoch, err := m.Assert("e(3,4)."); err != nil || epoch != 1 {
			t.Fatalf("%v assert: epoch=%d err=%v", strat, epoch, err)
		}
		if got, _ := m.Answers(); fmt.Sprint(got) != "[(2) (3) (4)]" {
			t.Fatalf("%v after assert = %v", strat, got)
		}
		if epoch, err := m.Retract("e(1,2)"); err != nil || epoch != 2 {
			t.Fatalf("%v retract: epoch=%d err=%v", strat, epoch, err)
		}
		if got, _ := m.Answers(); len(got) != 0 {
			t.Fatalf("%v after retract = %v, want none", strat, got)
		}
		if epoch, err := m.Apply([]string{"e(1,3)"}, nil); err != nil || epoch != 3 {
			t.Fatalf("%v apply: epoch=%d err=%v", strat, epoch, err)
		}
		if got, _ := m.Answers(); fmt.Sprint(got) != "[(3) (4)]" {
			t.Fatalf("%v after apply = %v", strat, got)
		}
		if m.BaseCount() != 3 { // e(2,3), e(3,4), e(1,3)
			t.Fatalf("%v base count = %d, want 3", strat, m.BaseCount())
		}
	}
}

func TestMaterializedFacadeErrors(t *testing.T) {
	sys, err := factorlog.Load("t(X,Y) :- e(X,Y). e(1,2). ?- t(1,Y).")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Materialize(factorlog.TopDown); err == nil {
		t.Error("TopDown materialize should fail")
	}
	m, err := sys.Materialize(factorlog.SemiNaive)
	if err != nil {
		t.Fatal(err)
	}
	for _, bad := range []string{"e(X, 1)", "e(1,2,3)", "not an atom ("} {
		if _, err := m.Assert(bad); !errors.Is(err, factorlog.ErrMutation) {
			t.Errorf("Assert(%q) err = %v, want ErrMutation", bad, err)
		}
	}
	if m.Epoch() != 0 {
		t.Errorf("epoch after rejected batches = %d, want 0", m.Epoch())
	}
}
