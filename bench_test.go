// Benchmarks for every experiment in EXPERIMENTS.md, runnable with
//
//	go test -bench . -benchmem
//
// Each BenchmarkE<n> exercises the workload of experiment E<n>; the
// compile-time machinery (adornment, magic, classification, factoring,
// optimization) is benchmarked separately at the bottom, since the paper's
// point is exactly that planning-time work (small) buys evaluation-time
// savings (large).
package factorlog_test

import (
	"fmt"
	"testing"

	"factorlog"
	"factorlog/internal/adorn"
	"factorlog/internal/core"
	"factorlog/internal/counting"
	"factorlog/internal/engine"
	"factorlog/internal/experiments"
	"factorlog/internal/magic"
	"factorlog/internal/optimize"
	"factorlog/internal/parser"
	"factorlog/internal/pipeline"
	"factorlog/internal/topdown"
	"factorlog/internal/workload"
)

// --- E1: three-rule transitive closure --------------------------------------

func benchStrategy(b *testing.B, pl *pipeline.Pipeline, load func() *engine.DB, s pipeline.Strategy) {
	b.Helper()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := pl.Run(s, load(), engine.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE1_TC(b *testing.B) {
	// The quadratic baselines are capped at n=256 to keep the suite's
	// wall-clock sane; the linear factored program also runs at n=1024.
	sizes := map[pipeline.Strategy][]int{
		pipeline.SemiNaive:         {64, 256},
		pipeline.Magic:             {64, 256},
		pipeline.FactoredOptimized: {64, 256, 1024},
	}
	for _, s := range []pipeline.Strategy{pipeline.SemiNaive, pipeline.Magic, pipeline.FactoredOptimized} {
		for _, n := range sizes[s] {
			pl, load := experiments.E1Pipeline(n)
			b.Run(fmt.Sprintf("%s/n=%d", s, n), func(b *testing.B) {
				benchStrategy(b, pl, load, s)
			})
		}
	}
}

// --- E2: pmem list filtering -------------------------------------------------

func BenchmarkE2_Pmem(b *testing.B) {
	for _, n := range []int{64, 128} {
		pl, load := experiments.E2Setup(n, 1)
		b.Run(fmt.Sprintf("top-down/n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := topdown.Solve(pl.Program, load(), pl.Query, topdown.Options{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	for _, n := range []int{64, 256, 1024} {
		pl, load := experiments.E2Setup(n, 1)
		b.Run(fmt.Sprintf("factored+opt/n=%d", n), func(b *testing.B) {
			benchStrategy(b, pl, load, pipeline.FactoredOptimized)
		})
	}
}

// --- E3-E5: the class example programs ---------------------------------------

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	e, ok := experiments.ByID(id)
	if !ok {
		b.Fatalf("no experiment %s", id)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := e.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE3_SelectionPushing(b *testing.B) { benchExperiment(b, "E3") }
func BenchmarkE4_Symmetric(b *testing.B)        { benchExperiment(b, "E4") }
func BenchmarkE5_AnswerPropagating(b *testing.B) {
	benchExperiment(b, "E5")
}

// --- E6: reduction -----------------------------------------------------------

func BenchmarkE6_Reduction(b *testing.B) { benchExperiment(b, "E6") }

// --- E7: counting vs factoring -----------------------------------------------

func BenchmarkE7_CountingVsFactored(b *testing.B) {
	ad, err := adorn.Adorn(parser.MustParseProgram(`
		p(X, Y) :- first1(X, U), p(U, Y), right1(Y).
		p(X, Y) :- first2(X, U), p(U, Y), right2(Y).
		p(X, Y) :- exit(X, Y).
	`), parser.MustParseAtom("p(1, Y)"))
	if err != nil {
		b.Fatal(err)
	}
	cnt, err := counting.Transform(ad)
	if err != nil {
		b.Fatal(err)
	}
	m, err := magic.Transform(ad)
	if err != nil {
		b.Fatal(err)
	}
	fr, err := core.ForceFactorMagic(m)
	if err != nil {
		b.Fatal(err)
	}
	opt, err := optimize.Optimize(fr.Program, optimize.ForFactored(fr, magic.QueryPred, m.Seed.Head.Args))
	if err != nil {
		b.Fatal(err)
	}
	load := func() *engine.DB {
		db := engine.NewDB()
		workload.Section64(db, 14)
		return db
	}
	b.Run("counting/n=14", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := engine.Eval(cnt.Program, load(), engine.Options{MaxFacts: 2_000_000}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("factored/n=14", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := engine.Eval(opt.Program, load(), engine.Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// --- E8: separable recursions ------------------------------------------------

func BenchmarkE8_Separable(b *testing.B) {
	p := parser.MustParseProgram(`
		t(X, Y) :- t(X, W), b(W, Y).
		t(X, Y) :- a(X, Z), t(Z, Y).
		t(X, Y) :- e(X, Y).
	`)
	for _, n := range []int{64, 256} {
		pl := pipeline.New(p, parser.MustParseAtom(fmt.Sprintf("t(%d, Y)", n/2)))
		load := func() *engine.DB {
			db := engine.NewDB()
			workload.MultiColumnChain(db, n)
			return db
		}
		for _, s := range []pipeline.Strategy{pipeline.SemiNaive, pipeline.FactoredOptimized} {
			b.Run(fmt.Sprintf("%s/n=%d", s, n), func(b *testing.B) {
				benchStrategy(b, pl, load, s)
			})
		}
	}
}

// --- E9: iterated factoring --------------------------------------------------

func BenchmarkE9_IteratedFactoring(b *testing.B) { benchExperiment(b, "E9") }

// --- E10: same generation ----------------------------------------------------

func BenchmarkE10_SameGeneration(b *testing.B) {
	p := parser.MustParseProgram(`
		sg(X, Y) :- flat(X, Y).
		sg(X, Y) :- up(X, U), sg(U, V), down(V, Y).
	`)
	pl := pipeline.New(p, parser.MustParseAtom("sg(nlllll, Y)"))
	for _, depth := range []int{6, 9} {
		load := func() *engine.DB {
			db := engine.NewDB()
			workload.BalancedTree(db, depth)
			return db
		}
		for _, s := range []pipeline.Strategy{pipeline.SemiNaive, pipeline.Magic} {
			b.Run(fmt.Sprintf("%s/depth=%d", s, depth), func(b *testing.B) {
				benchStrategy(b, pl, load, s)
			})
		}
	}
}

// --- E11: the undecidability reduction's refuter ------------------------------

func BenchmarkE11_Refuter(b *testing.B) {
	p := parser.MustParseProgram(`
		t(X, Y, Z) :- a1(X), q1(Y, Z).
		t(X, Y, Z) :- a2(X), q2(Y, Z).
		q1(Y, Z) :- b1(Y, Z).
		q2(Y, Z) :- b2(Y, Z).
	`)
	query := parser.MustParseAtom("t(X, Y, Z)")
	s := core.Split{Pred: "t", Left: []int{0}, Right: []int{1, 2}, LeftName: "t1", RightName: "t2"}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ce, err := core.RefuteSplit(p, query, s, core.RefuteOptions{Trials: 100, Seed: int64(i)})
		if err != nil {
			b.Fatal(err)
		}
		if ce == nil {
			b.Fatal("refuter must find a counterexample")
		}
	}
}

// --- E12: provenance ---------------------------------------------------------

func BenchmarkE12_Provenance(b *testing.B) { benchExperiment(b, "E12") }

// --- Ablations -----------------------------------------------------------------
//
// DESIGN.md calls out two load-bearing design choices; each ablation
// removes one and measures the damage on the E1 workload.

// BenchmarkAblation_NoCleanup evaluates the raw factored program of Fig. 2
// (skipping the Section 5 optimizations): its redundant bt x ft joins undo
// much of the win, which is why the paper always reports post-clean-up
// programs.
func BenchmarkAblation_NoCleanup(b *testing.B) {
	pl, load := experiments.E1Pipeline(256)
	for _, s := range []pipeline.Strategy{pipeline.Factored, pipeline.FactoredOptimized} {
		b.Run(s.String(), func(b *testing.B) {
			benchStrategy(b, pl, load, s)
		})
	}
}

// BenchmarkAblation_NoUniformEquivalence disables uniform-equivalence rule
// deletion in the optimizer. The trade-off is real and measurable: with the
// deletion, the program is smaller (the paper's four-rule form) but goals
// propagate only as answers arrive (one chain step per round); without it,
// the surviving direct magic rule m(W) :- m(X), e(X,W) pushes goals ahead
// of answers and finishes in fewer rounds. The paper optimizes for program
// size and arity; this ablation records the wall-clock consequence.
func BenchmarkAblation_NoUniformEquivalence(b *testing.B) {
	p := parser.MustParseProgram(benchTC3)
	m, err := magic.FromQuery(p, parser.MustParseAtom("t(40, Y)"))
	if err != nil {
		b.Fatal(err)
	}
	fr, err := core.FactorMagic(m, nil)
	if err != nil {
		b.Fatal(err)
	}
	full := optimize.ForFactored(fr, magic.QueryPred, m.Seed.Head.Args)
	noUE := full
	noUE.DisableUniform = true

	load := func() *engine.DB {
		db := engine.NewDB()
		workload.Chain(db, "e", 256)
		return db
	}
	for _, cfg := range []struct {
		name string
		opts optimize.Options
	}{{"with-uniform", full}, {"without-uniform", noUE}} {
		opt, err := optimize.Optimize(fr.Program, cfg.opts)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(cfg.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := engine.Eval(opt.Program, load(), engine.Options{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Compile-time machinery --------------------------------------------------

const benchTC3 = `
	t(X, Y) :- t(X, W), t(W, Y).
	t(X, Y) :- e(X, W), t(W, Y).
	t(X, Y) :- t(X, W), e(W, Y).
	t(X, Y) :- e(X, Y).
`

func BenchmarkTransform_Adorn(b *testing.B) {
	p := parser.MustParseProgram(benchTC3)
	q := parser.MustParseAtom("t(5, Y)")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := adorn.Adorn(p, q); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTransform_Magic(b *testing.B) {
	p := parser.MustParseProgram(benchTC3)
	ad, err := adorn.Adorn(p, parser.MustParseAtom("t(5, Y)"))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := magic.Transform(ad); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTransform_Classify(b *testing.B) {
	p := parser.MustParseProgram(benchTC3)
	ad, err := adorn.Adorn(p, parser.MustParseAtom("t(5, Y)"))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		a, err := core.Analyze(ad)
		if err != nil {
			b.Fatal(err)
		}
		if core.Classify(a) != core.ClassSelectionPushing {
			b.Fatal("misclassified")
		}
	}
}

func BenchmarkTransform_FullPipeline(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sys, err := factorlog.Load(benchTC3 + "\n?- t(5, Y).")
		if err != nil {
			b.Fatal(err)
		}
		if _, err := sys.Explain(factorlog.FactoredOptimized); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEngine_SemiNaiveTC(b *testing.B) {
	p := parser.MustParseProgram(`
		t(X, Y) :- e(X, Y).
		t(X, Y) :- e(X, W), t(W, Y).
	`)
	for _, n := range []int{256, 1024} {
		b.Run(fmt.Sprintf("chain/n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				db := engine.NewDB()
				workload.Chain(db, "e", n)
				if _, err := engine.Eval(p, db, engine.Options{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkParallelEval measures the parallel stratified evaluator on the
// E1 nonlinear transitive-closure workload, one sub-benchmark per worker
// count. workers=1 is the sequential evaluator (the parallel path's
// baseline — it must not regress); higher counts exercise SCC scheduling,
// sharded semi-naive rounds, and the barrier merge. Speedup needs real
// cores: on a multi-core box workers=4 should beat workers=1 by >=1.5x on
// the n=256 chain; on a single-CPU machine the counts only verify that the
// parallel machinery's overhead stays bounded.
func BenchmarkParallelEval(b *testing.B) {
	p := parser.MustParseProgram(`
		t(X, Y) :- t(X, W), t(W, Y).
		t(X, Y) :- e(X, W), t(W, Y).
		t(X, Y) :- t(X, W), e(W, Y).
		t(X, Y) :- e(X, Y).
	`)
	for _, n := range []int{64, 256} {
		for _, w := range []int{1, 2, 4, 8} {
			b.Run(fmt.Sprintf("n=%d/workers=%d", n, w), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					db := engine.NewDB()
					workload.Chain(db, "e", n)
					if _, err := engine.Eval(p, db, engine.Options{Workers: w}); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkTraceOverhead measures what Options.Trace costs on the semi-naive
// transitive-closure workload. Tracing is meant to be cheap enough to leave
// on in tools (factorbench -json runs every strategy traced); the off/on
// pair here makes the overhead a number the suite watches — it should stay
// under ~10%.
func BenchmarkTraceOverhead(b *testing.B) {
	p := parser.MustParseProgram(`
		t(X, Y) :- e(X, Y).
		t(X, Y) :- e(X, W), t(W, Y).
	`)
	for _, cfg := range []struct {
		name  string
		trace bool
	}{{"off", false}, {"on", true}} {
		b.Run(cfg.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				db := engine.NewDB()
				workload.Chain(db, "e", 256)
				if _, err := engine.Eval(p, db, engine.Options{Trace: cfg.trace}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkEngine_HashConsing(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s := engine.NewStore()
		v := s.Nil()
		for j := 0; j < 1000; j++ {
			v = s.Cons(s.Int(j), v)
		}
	}
}
