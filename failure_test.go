package factorlog_test

import (
	"errors"
	"strconv"
	"strings"
	"testing"

	"factorlog"
)

// Failure-injection tests: malformed programs, out-of-class programs,
// divergent strategies, and odd-but-legal inputs must error cleanly (typed
// where promised) and never panic.

func TestMalformedPrograms(t *testing.T) {
	cases := []string{
		``,                                      // empty: no query
		`?- .`,                                  // empty query
		`t(X) :- .`,                             // empty body
		`t(X) :- e(X,).`,                        // trailing comma
		`t(X,Y) :- e(X,Y)`,                      // missing final dot
		`t(X,Y) :- e(X,Y). ?- t(1,Y).` + "\x01", // junk byte
	}
	for _, src := range cases {
		if _, err := factorlog.Load(src); err == nil {
			t.Errorf("Load(%q) accepted", src)
		}
	}
}

func TestUnsafeRuleSurfacesAtRun(t *testing.T) {
	sys, err := factorlog.Load(`
		t(X, Z) :- e(X, Y).
		?- t(1, Z).
	`)
	if err != nil {
		t.Fatal(err)
	}
	_, err = sys.Run(factorlog.SemiNaive, sys.NewDB())
	if err == nil || !strings.Contains(err.Error(), "unsafe") {
		t.Errorf("unsafe rule: %v", err)
	}
}

func TestArityConflictSurfaces(t *testing.T) {
	sys, err := factorlog.Load(`
		t(X) :- e(X, Y).
		t(X, Y) :- e(X, Y).
		?- t(1).
	`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Run(factorlog.SemiNaive, sys.NewDB()); err == nil {
		t.Error("arity conflict not reported")
	}
}

func TestQueryOnEDBPredicate(t *testing.T) {
	sys, err := factorlog.Load(`
		t(X) :- e(X).
		?- e(Y).
	`)
	if err != nil {
		t.Fatal(err)
	}
	// Bottom-up strategies answer EDB queries fine; transformation-based
	// ones reject (the query predicate has no rules).
	db := sys.NewDB()
	db.Fact("e", "a")
	res, err := sys.Run(factorlog.SemiNaive, db)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Answers) != 1 {
		t.Errorf("answers = %v", res.Answers)
	}
	if _, err := sys.Explain(factorlog.Magic); err == nil {
		t.Error("magic on an EDB query should fail")
	}
}

func TestNotFactorableIsTyped(t *testing.T) {
	sys, err := factorlog.Load(`
		sg(X, Y) :- flat(X, Y).
		sg(X, Y) :- up(X, U), sg(U, V), down(V, Y).
		?- sg(a, Y).
	`)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range []factorlog.Strategy{factorlog.Factored, factorlog.FactoredOptimized} {
		if _, err := sys.Run(s, sys.NewDB()); !errors.Is(err, factorlog.ErrNotFactorable) {
			t.Errorf("%s: want ErrNotFactorable, got %v", s, err)
		}
	}
}

func TestDivergentFunctionSymbolProgram(t *testing.T) {
	sys, err := factorlog.Load(`
		nat(z).
		nat(s(X)) :- nat(X).
		?- nat(W).
	`)
	if err != nil {
		t.Fatal(err)
	}
	sys.WithBudget(0, 100)
	_, err = sys.Run(factorlog.SemiNaive, sys.NewDB())
	if err == nil {
		t.Fatal("divergent program not stopped by budget")
	}
	// Budget stops are typed, so callers can tell them from real failures.
	if !errors.Is(err, factorlog.ErrBudgetExceeded) {
		t.Errorf("want ErrBudgetExceeded, got %v", err)
	}

	// The iteration budget is checked between fixpoint rounds, so it can't
	// stop nat/1 (which cascades inside round 0 — the fact budget's job);
	// exercise it on a recursion that needs many rounds instead.
	tc, err := factorlog.Load(`
		t(X, Y) :- e(X, Y).
		t(X, Y) :- e(X, W), t(W, Y).
		?- t(1, Y).
	`)
	if err != nil {
		t.Fatal(err)
	}
	db := tc.NewDB()
	for i := 0; i < 50; i++ {
		db.Fact("e", strconv.Itoa(i), strconv.Itoa(i+1))
	}
	tc.WithBudget(3, 0)
	if _, err := tc.Run(factorlog.SemiNaive, db); !errors.Is(err, factorlog.ErrBudgetExceeded) {
		t.Errorf("iteration budget: want ErrBudgetExceeded, got %v", err)
	}
}

func TestBadConstraints(t *testing.T) {
	sys, err := factorlog.Load(`
		t(X, Y) :- t(X, W), e(W, Y).
		t(X, Y) :- e(X, Y).
		?- t(1, Y).
	`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.WithConstraints(`r(Y, Z) :- e(X, Y).`); err == nil {
		t.Error("non-full TGD accepted")
	}
	if _, err := sys.WithConstraints(`garbage(`); err == nil {
		t.Error("unparsable constraints accepted")
	}
}

func TestDeepListQuery(t *testing.T) {
	// A long query list must not blow the stack anywhere in the pipeline.
	var b strings.Builder
	b.WriteString("pmem(X, [X|T]) :- p(X).\npmem(X, [H|T]) :- pmem(X, T).\n?- pmem(X, [")
	for i := 0; i < 2000; i++ {
		if i > 0 {
			b.WriteString(",")
		}
		b.WriteString("k")
		b.WriteString(strings.Repeat("x", 1)) // k x -> kx
	}
	b.WriteString("]).")
	sys, err := factorlog.Load(b.String())
	if err != nil {
		t.Fatal(err)
	}
	db := sys.NewDB()
	db.Fact("p", "kx")
	res, err := sys.Run(factorlog.FactoredOptimized, db)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Answers) != 1 {
		t.Errorf("answers = %v", res.Answers)
	}
}

func TestZeroArityPredicates(t *testing.T) {
	sys, err := factorlog.Load(`
		ok :- cond.
		?- ok.
	`)
	if err != nil {
		t.Fatal(err)
	}
	db := sys.NewDB()
	db.Fact("cond")
	res, err := sys.Run(factorlog.SemiNaive, db)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Answers) != 1 || res.Answers[0] != "()" {
		t.Errorf("answers = %v", res.Answers)
	}
}

func TestUnicodeConstants(t *testing.T) {
	sys, err := factorlog.Load(`
		t(X, Y) :- e(X, Y).
		?- t('京都', Y).
	`)
	if err != nil {
		t.Fatal(err)
	}
	db := sys.NewDB()
	db.Fact("e", "京都", "大阪")
	res, err := sys.Run(factorlog.Magic, db)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Answers) != 1 || res.Answers[0] != "(大阪)" {
		t.Errorf("answers = %v", res.Answers)
	}
}

func TestAllStrategiesOnEmptyEDB(t *testing.T) {
	sys, err := factorlog.Load(`
		t(X, Y) :- e(X, W), t(W, Y).
		t(X, Y) :- e(X, Y).
		?- t(1, Y).
	`)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range factorlog.AllStrategies() {
		res, err := sys.Run(s, sys.NewDB())
		if err != nil {
			t.Errorf("%s on empty EDB: %v", s, err)
			continue
		}
		if len(res.Answers) != 0 {
			t.Errorf("%s invented answers: %v", s, res.Answers)
		}
	}
}
