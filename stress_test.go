package factorlog_test

import (
	"fmt"
	"testing"

	"factorlog"
)

// Large-scale sanity runs, skipped under -short.

func TestStressFactoredLargeChain(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	sys, err := factorlog.Load(`
		t(X, Y) :- t(X, W), t(W, Y).
		t(X, Y) :- e(X, W), t(W, Y).
		t(X, Y) :- t(X, W), e(W, Y).
		t(X, Y) :- e(X, Y).
		?- t(1000, Y).
	`)
	if err != nil {
		t.Fatal(err)
	}
	db := sys.NewDB()
	n := 5000
	for i := 1; i < n; i++ {
		db.Fact("e", fmt.Sprint(i), fmt.Sprint(i+1))
	}
	res, err := sys.Run(factorlog.FactoredOptimized, db)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Answers) != n-1000 {
		t.Errorf("answers = %d, want %d", len(res.Answers), n-1000)
	}
	// Linear behaviour: facts stay O(n), not O(n^2).
	if res.Facts > 3*n {
		t.Errorf("facts = %d, expected O(n) ~ %d", res.Facts, 2*n)
	}
}

func TestStressFactoredLargeRandomGraph(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	sys, err := factorlog.Load(`
		t(X, Y) :- e(X, W), t(W, Y).
		t(X, Y) :- e(X, Y).
		?- t(n17, Y).
	`)
	if err != nil {
		t.Fatal(err)
	}
	load := func() *factorlog.DB {
		db := sys.NewDB()
		// Deterministic pseudo-random graph: 2000 nodes, 6000 edges.
		x := uint64(12345)
		next := func(m int) int {
			x = x*6364136223846793005 + 1442695040888963407
			return int((x >> 33) % uint64(m))
		}
		for i := 0; i < 6000; i++ {
			db.Fact("e", fmt.Sprintf("n%d", next(2000)), fmt.Sprintf("n%d", next(2000)))
		}
		return db
	}
	opt, err := sys.Run(factorlog.FactoredOptimized, load())
	if err != nil {
		t.Fatal(err)
	}
	mag, err := sys.Run(factorlog.Magic, load())
	if err != nil {
		t.Fatal(err)
	}
	if len(opt.Answers) != len(mag.Answers) {
		t.Errorf("answers differ: %d vs %d", len(opt.Answers), len(mag.Answers))
	}
	if opt.Facts >= mag.Facts {
		t.Errorf("factored facts %d should undercut magic %d", opt.Facts, mag.Facts)
	}
}

func TestStressDeepListFactored(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	n := 8000
	list := "["
	for i := 1; i <= n; i++ {
		if i > 1 {
			list += ","
		}
		list += fmt.Sprintf("v%d", i)
	}
	list += "]"
	sys, err := factorlog.Load(fmt.Sprintf(`
		pmem(X, [X|T]) :- p(X).
		pmem(X, [H|T]) :- pmem(X, T).
		?- pmem(X, %s).
	`, list))
	if err != nil {
		t.Fatal(err)
	}
	db := sys.NewDB()
	for i := 1; i <= n; i += 7 {
		db.Fact("p", fmt.Sprintf("v%d", i))
	}
	res, err := sys.Run(factorlog.FactoredOptimized, db)
	if err != nil {
		t.Fatal(err)
	}
	want := (n + 6) / 7
	if len(res.Answers) != want {
		t.Errorf("answers = %d, want %d", len(res.Answers), want)
	}
}
