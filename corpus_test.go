package factorlog_test

import (
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"factorlog"
)

// TestCorpus runs every program under testdata/corpus with every strategy
// and checks the answers against the file's "% expect:" line (a
// space-separated list of rendered answers; an empty list means no
// answers). Strategies for which a program is out of class (factoring,
// counting) or diverges (plain top-down on left recursion) are skipped —
// but at least three strategies must succeed on every program.
func TestCorpus(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("testdata", "corpus", "*.dl"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) < 5 {
		t.Fatalf("corpus too small: %v", files)
	}
	for _, file := range files {
		file := file
		t.Run(filepath.Base(file), func(t *testing.T) {
			src, err := os.ReadFile(file)
			if err != nil {
				t.Fatal(err)
			}
			want, ok := expectedAnswers(string(src))
			if !ok {
				t.Fatalf("%s has no %% expect: line", file)
			}
			ran := 0
			for _, s := range factorlog.AllStrategies() {
				sys, err := factorlog.Load(string(src))
				if err != nil {
					t.Fatal(err)
				}
				sys.WithBudget(3000, 200_000)
				res, err := sys.Run(s, sys.NewDB())
				if err != nil {
					t.Logf("%s unavailable: %v", s, err)
					continue
				}
				ran++
				got := strings.Join(res.Answers, " ")
				if got != want {
					t.Errorf("%s: answers %q, want %q", s, got, want)
				}
			}
			if ran < 3 {
				t.Errorf("only %d strategies ran", ran)
			}
		})
	}
}

// expectedAnswers extracts the sorted expected answers from the
// "% expect: ..." comment line.
func expectedAnswers(src string) (string, bool) {
	for _, line := range strings.Split(src, "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "% expect:"); ok {
			fields := strings.Fields(rest)
			sort.Strings(fields)
			return strings.Join(fields, " "), true
		}
	}
	return "", false
}
