package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// capture runs the CLI with stdout captured.
func capture(t *testing.T, args ...string) (string, error) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	runErr := run(args)
	w.Close()
	os.Stdout = old
	buf := make([]byte, 1<<20)
	n, _ := r.Read(buf)
	return string(buf[:n]), runErr
}

func testdata(name string) string { return filepath.Join("..", "..", "testdata", name) }

func TestCLIRun(t *testing.T) {
	out, err := capture(t, "run", "-strategy", "factored+opt", testdata("tc3.dl"))
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"(6)", "(7)", "(8)"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %s in output:\n%s", want, out)
		}
	}
	if strings.Contains(out, "(2)") {
		t.Errorf("answer (2) should be pruned by the selection:\n%s", out)
	}
}

func TestCLIRunStream(t *testing.T) {
	// -stream routes the bottom-up evaluation through the streaming
	// executor; answers are identical and -profile shows what ran.
	out, err := capture(t, "run", "-stream", "-strategy", "factored+opt", testdata("tc3.dl"))
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"(6)", "(7)", "(8)"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %s in -stream output:\n%s", want, out)
		}
	}
	out, err = capture(t, "run", "-stream", "-profile", "-strategy", "factored+opt", testdata("tc3.dl"))
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"executor: stream", "strata streamed"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in -stream -profile output:\n%s", want, out)
		}
	}
}

func TestCLIProfile(t *testing.T) {
	out, err := capture(t, "run", "-profile", "-strategy", "factored+opt", testdata("tc3.dl"))
	if err != nil {
		t.Fatal(err)
	}
	// Stage spans for the full factored chain, plus the per-rule and
	// per-round tables from the traced evaluation.
	for _, want := range []string{
		"stage", "adorn", "magic", "factor", "optimize", "eval",
		"firings", "probes", "round", "new-facts",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in profile output:\n%s", want, out)
		}
	}
	// Without -profile no tables appear.
	out, err = capture(t, "run", "-strategy", "factored+opt", testdata("tc3.dl"))
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(out, "firings") {
		t.Errorf("profile output without -profile:\n%s", out)
	}
}

func TestCLIProfileExample44(t *testing.T) {
	// The acceptance workload: per-stage spans plus rule/round tables on the
	// paper's symmetric Example 4.4 (needs its EDB constraints to factor).
	out, err := capture(t, "run", "-profile",
		"-constraints", testdata("example44_constraints.dl"), testdata("example44.dl"))
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"stage", "factor", "firings", "round"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in example44 profile:\n%s", want, out)
		}
	}
}

func TestCLICompare(t *testing.T) {
	out, err := capture(t, "compare", testdata("tc3.dl"))
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"semi-naive", "magic", "factored+opt", "unavailable"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in output:\n%s", want, out)
		}
	}
}

func TestCLIExplain(t *testing.T) {
	out, err := capture(t, "explain", "-strategy", "factored+opt", testdata("tc3.dl"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "class: selection-pushing") {
		t.Errorf("missing class:\n%s", out)
	}
	if !strings.Contains(out, "ft(Y) :- m_t_bf(X), e(X,Y).") {
		t.Errorf("missing final rule:\n%s", out)
	}
	if !strings.Contains(out, "optimization trace") {
		t.Errorf("missing trace:\n%s", out)
	}
}

func TestCLIClassify(t *testing.T) {
	out, err := capture(t, "classify", testdata("tc3.dl"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "factorable: selection-pushing") {
		t.Errorf("output:\n%s", out)
	}
	out, err = capture(t, "classify", testdata("samegen.dl"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "not factorable") {
		t.Errorf("output:\n%s", out)
	}
}

func TestCLIConstraints(t *testing.T) {
	out, err := capture(t, "classify", testdata("example44.dl"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "not factorable") {
		t.Errorf("without constraints:\n%s", out)
	}
	out, err = capture(t, "classify",
		"-constraints", testdata("example44_constraints.dl"), testdata("example44.dl"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "factorable: symmetric") {
		t.Errorf("with constraints:\n%s", out)
	}
}

func TestCLIPmem(t *testing.T) {
	out, err := capture(t, "run", "-strategy", "factored+opt", testdata("pmem.dl"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "(x1)") || !strings.Contains(out, "(x3)") {
		t.Errorf("output:\n%s", out)
	}
}

func TestCLIExternalEDB(t *testing.T) {
	edb := filepath.Join(t.TempDir(), "facts.dl")
	if err := os.WriteFile(edb, []byte("e(8, 9).\ne(9, 10).\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	out, err := capture(t, "run", "-strategy", "magic", "-edb", edb, testdata("tc3.dl"))
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"(9)", "(10)"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %s with external EDB:\n%s", want, out)
		}
	}
	if _, err := capture(t, "run", "-edb", "/nonexistent.dl", testdata("tc3.dl")); err == nil {
		t.Error("missing EDB file accepted")
	}
}

func TestCLIProve(t *testing.T) {
	out, err := capture(t, "prove", testdata("tc3.dl"))
	if err != nil {
		t.Fatal(err)
	}
	// Every answer t(5,6), t(5,7), t(5,8) gets a tree; leaves are e facts.
	for _, want := range []string{"t(5,6)", "t(5,7)", "t(5,8)", "e(5,6)", "[rule"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in prove output:\n%s", want, out)
		}
	}
	// No answers case.
	dir := t.TempDir()
	f := filepath.Join(dir, "none.dl")
	if err := os.WriteFile(f, []byte("t(X,Y) :- e(X,Y).\n?- t(1,Y).\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	out, err = capture(t, "prove", f)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "no answers") {
		t.Errorf("prove on empty: %q", out)
	}
}

func TestCLIErrors(t *testing.T) {
	if _, err := capture(t, "nonsense", testdata("tc3.dl")); err == nil {
		t.Error("unknown command accepted")
	}
	if _, err := capture(t); err == nil {
		t.Error("missing command accepted")
	}
	if _, err := capture(t, "run", "/nonexistent.dl"); err == nil {
		t.Error("missing file accepted")
	}
	if _, err := capture(t, "run", "-strategy", "warp", testdata("tc3.dl")); err == nil {
		t.Error("unknown strategy accepted")
	}
	if _, err := capture(t, "run"); err == nil {
		t.Error("missing file argument accepted")
	}
}

func TestCLIRunExplain(t *testing.T) {
	out, err := capture(t, "run", "-explain", "-strategy", "factored+opt", testdata("tc3.dl"))
	if err != nil {
		t.Fatal(err)
	}
	// EXPLAIN ANALYZE: the plan description (reductions, rules, strata)
	// followed by the answers and the measured span tree.
	for _, want := range []string{
		"plan factored+opt", "reductions applied", "magic sets",
		"stratum schedule:", "answers:", "trace q-", "eval", "round",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in -explain output:\n%s", want, out)
		}
	}
}
