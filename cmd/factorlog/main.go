// Command factorlog parses a Datalog file containing rules, optional ground
// facts, and one ?- query, and runs the paper's transformation pipeline on
// it.
//
// Usage:
//
//	factorlog run      [-strategy S] [-constraints file] [-edb file] [-budget N] [-workers N] [-stream] [-profile] [-explain] file.dl
//	factorlog compare  [-constraints file] [-edb file] [-budget N] file.dl
//	factorlog explain  [-strategy S] [-constraints file] file.dl
//	factorlog classify [-constraints file] file.dl
//	factorlog prove    [-edb file] file.dl     # derivation trees per answer
//	factorlog repl                             # interactive session
//
// The REPL additionally supports live fact mutation with :assert and
// :retract (each effective mutation advances a session epoch, mirroring
// factorlogd's POST /facts — see docs/INCREMENTAL.md).
//
// Strategies: naive, semi-naive, top-down, tabled, magic, sup-magic,
// factored, factored+opt, counting, auto. "auto" defers the choice to the
// adaptive optimizer: the EDB's statistics are snapshotted, every eligible
// fixed strategy is priced by the cost model, and the winner runs (see
// docs/PLANNER.md); `run -explain -strategy auto` prints the candidate
// table.
//
// Example:
//
//	$ factorlog explain -strategy factored+opt testdata/tc3.dl
//	% class: selection-pushing
//	m_t_bf(W) :- ft(W).
//	m_t_bf(5).
//	ft(Y) :- m_t_bf(X), e(X,Y).
//	query(Y) :- ft(Y).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"factorlog"
	"factorlog/internal/engine"
	"factorlog/internal/parser"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "factorlog:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	if len(args) < 1 {
		return usageError()
	}
	cmd, rest := args[0], args[1:]

	if cmd == "repl" {
		return repl(os.Stdin, os.Stdout)
	}

	fs := flag.NewFlagSet(cmd, flag.ContinueOnError)
	strategyName := fs.String("strategy", "factored+opt", "evaluation strategy")
	constraintsFile := fs.String("constraints", "", "file of full-TGD EDB constraints")
	edbFile := fs.String("edb", "", "file of additional ground facts")
	budget := fs.Int("budget", 0, "max derived facts (0 = unlimited)")
	workers := fs.Int("workers", 1, "evaluation workers (>1 = parallel stratified semi-naive)")
	profile := fs.Bool("profile", false, "run: print stage spans and per-rule/per-round tables")
	streaming := fs.Bool("stream", false, "run: evaluate non-recursive strata with the streaming executor")
	explainRun := fs.Bool("explain", false, "run: EXPLAIN ANALYZE — print the plan description and the measured span tree")
	anon := fs.Bool("anon", false, "explain: print singleton variables as '_' (paper style)")
	if err := fs.Parse(rest); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return usageError()
	}

	src, err := os.ReadFile(fs.Arg(0))
	if err != nil {
		return err
	}
	if *edbFile != "" {
		extra, err := os.ReadFile(*edbFile)
		if err != nil {
			return err
		}
		src = append(append(src, '\n'), extra...)
	}
	sys, err := factorlog.Load(string(src))
	if err != nil {
		return err
	}
	if *constraintsFile != "" {
		csrc, err := os.ReadFile(*constraintsFile)
		if err != nil {
			return err
		}
		if _, err := sys.WithConstraints(string(csrc)); err != nil {
			return err
		}
	}
	if *budget > 0 {
		sys.WithBudget(0, *budget)
	}
	sys.WithWorkers(*workers)
	sys.WithStreaming(*streaming)

	switch cmd {
	case "run":
		s, err := strategyByName(*strategyName)
		if err != nil {
			return err
		}
		if *profile {
			sys.WithTrace(true)
		}
		var tc *factorlog.Trace
		if *explainRun {
			info, err := sys.Plan(s)
			if err != nil {
				return err
			}
			fmt.Print(info.Text())
			fmt.Println()
			tc = factorlog.NewTrace(factorlog.NewTraceID())
			sys.WithTraceSpan(tc.Root())
		}
		res, err := sys.Run(s, sys.NewDB())
		if err != nil {
			return err
		}
		if res.AutoPicked {
			fmt.Printf("auto picked %s\n", res.Strategy)
		}
		fmt.Println(factorlog.FormatResult(res))
		if *explainRun {
			tc.Finish()
			fmt.Println()
			fmt.Print(tc.Profile())
		}
		if *profile {
			fmt.Println()
			fmt.Print(res.Profile())
		}
		return nil

	case "compare":
		results, skipped, err := sys.Compare(factorlog.AllStrategies(), sys.NewDB)
		if err != nil {
			return err
		}
		fmt.Print(factorlog.FormatTable(results))
		for s, err := range skipped {
			fmt.Printf("%s unavailable: %v\n", s, err)
		}
		return nil

	case "explain":
		s, err := strategyByName(*strategyName)
		if err != nil {
			return err
		}
		ex, err := sys.Explain(s)
		if err != nil {
			return err
		}
		if ex.Class != "" {
			fmt.Printf("%% class: %s\n", ex.Class)
		}
		prog := ex.Program
		if *anon {
			parsed, err := parser.ParseProgram(prog)
			if err == nil {
				prog = parsed.AnonymizeSingletons().String()
			}
		}
		fmt.Print(prog)
		if len(ex.Trace) > 0 {
			fmt.Println("\n% optimization trace:")
			for _, t := range ex.Trace {
				fmt.Println("%  ", t)
			}
		}
		return nil

	case "prove":
		out, err := proveAnswers(sys)
		if err != nil {
			return err
		}
		fmt.Print(out)
		return nil

	case "classify":
		class, err := sys.Classify()
		if err != nil {
			fmt.Println("not factorable:", err)
			return nil
		}
		fmt.Println("factorable:", class)
		return nil

	default:
		return usageError()
	}
}

// proveAnswers evaluates the query bottom-up with provenance enabled and
// renders one derivation tree (Definition 2.1 of the paper) per answer.
func proveAnswers(sys *factorlog.System) (string, error) {
	db := sys.NewDB().Engine()
	res, err := engine.Eval(sys.Program(), db, engine.Options{Provenance: true})
	if err != nil {
		return "", err
	}
	tuples, err := engine.Answers(db, sys.Query())
	if err != nil {
		return "", err
	}
	var b strings.Builder
	if len(tuples) == 0 {
		b.WriteString("no answers\n")
		return b.String(), nil
	}
	for _, tuple := range tuples {
		id, ok := res.Prov.Lookup(sys.Query().Pred, tuple)
		if !ok {
			fmt.Fprintf(&b, "%s%s: no derivation recorded\n",
				sys.Query().Pred, db.Store.TupleString(tuple))
			continue
		}
		if err := res.Prov.Verify(db.Store, id); err != nil {
			return "", fmt.Errorf("derivation verification failed: %w", err)
		}
		b.WriteString(res.Prov.RenderTree(db.Store, id))
		b.WriteByte('\n')
	}
	return b.String(), nil
}

func strategyByName(name string) (factorlog.Strategy, error) {
	if name == factorlog.Auto.String() {
		return factorlog.Auto, nil
	}
	for _, s := range factorlog.AllStrategies() {
		if s.String() == name {
			return s, nil
		}
	}
	var names []string
	for _, s := range factorlog.AllStrategies() {
		names = append(names, s.String())
	}
	names = append(names, factorlog.Auto.String())
	return 0, fmt.Errorf("unknown strategy %q (one of: %s)", name, strings.Join(names, ", "))
}

func usageError() error {
	return fmt.Errorf("usage: factorlog {run|compare|explain|classify|prove|repl} [-strategy S] [-constraints file] [-edb file] [-budget N] [-workers N] [-profile] file.dl")
}
