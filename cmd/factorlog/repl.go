package main

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"strings"

	"factorlog"
	"factorlog/internal/ast"
	"factorlog/internal/parser"
)

// repl runs an interactive session: rules and ground facts accumulate,
// queries evaluate immediately under the current strategy.
//
//	> e(1, 2).
//	> e(2, 3).
//	> t(X, Y) :- e(X, Y).
//	> t(X, Y) :- e(X, W), t(W, Y).
//	> ?- t(1, Y).
//	(2) (3)
//	> :strategy magic
//	> :classify ?- t(1, Y).
//	factorable: selection-pushing
//
// Commands: :strategy NAME, :profile, :stream, :stats, :list,
// :assert f., :retract f., :classify ?- q., :explain ?- q., :analyze ?- q.,
// :reset, :help, :quit.
//
// :assert and :retract mutate the session's fact set in place and advance a
// session epoch, mirroring the server's POST /facts model (the REPL
// re-evaluates each query over the current clause set; the incremental
// delta machinery itself lives behind factorlogd and System.Materialize).
func repl(in io.Reader, out io.Writer) error {
	var clauses []string
	strategy := factorlog.FactoredOptimized
	profiling := false
	budget := 5_000_000
	workers := 1
	streaming := false
	var epoch int64
	var last *factorlog.Result

	build := func(query string) (*factorlog.System, error) {
		src := strings.Join(clauses, "\n") + "\n" + query
		return factorlog.Load(src)
	}

	fmt.Fprintln(out, "factorlog repl — enter clauses, ?- queries, or :help")
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for {
		fmt.Fprint(out, "> ")
		if !sc.Scan() {
			fmt.Fprintln(out)
			return sc.Err()
		}
		line := strings.TrimSpace(sc.Text())
		switch {
		case line == "":
			continue

		case line == ":quit" || line == ":q":
			return nil

		case line == ":help":
			fmt.Fprintln(out, "  <clause>.            add a rule or ground fact")
			fmt.Fprintln(out, "  ?- atom.             evaluate a query")
			fmt.Fprintln(out, "  :strategy NAME       switch strategy, 'auto' = cost-based pick (current:", strategy, ")")
			fmt.Fprintln(out, "  :profile             toggle per-query profiling (rule/round tables)")
			fmt.Fprintln(out, "  :stats               show the last query's profile")
			fmt.Fprintln(out, "  :budget N            cap derived facts per query (current:", budget, ")")
			fmt.Fprintln(out, "  :workers N           evaluation workers, >1 = parallel (current:", workers, ")")
			fmt.Fprintln(out, "  :stream              toggle the streaming executor for non-recursive strata")
			fmt.Fprintln(out, "  :assert fact.        add a ground fact and advance the session epoch")
			fmt.Fprintln(out, "  :retract fact.       remove a ground fact (no-op if absent)")
			fmt.Fprintln(out, "  :classify ?- atom.   which factorability theorem applies")
			fmt.Fprintln(out, "  :explain ?- atom.    show the transformed program")
			fmt.Fprintln(out, "  :analyze ?- atom.    evaluate with the plan description and span tree")
			fmt.Fprintln(out, "  :list                show accumulated clauses")
			fmt.Fprintln(out, "  :reset               drop all clauses")
			fmt.Fprintln(out, "  :quit                leave")

		case line == ":list":
			for _, c := range clauses {
				fmt.Fprintln(out, c)
			}

		case line == ":reset":
			clauses = nil
			last = nil
			epoch = 0
			fmt.Fprintln(out, "cleared")

		case strings.HasPrefix(line, ":assert"):
			atom, err := parseGroundFact(strings.TrimPrefix(line, ":assert"))
			if err != nil {
				fmt.Fprintln(out, "error:", err)
				continue
			}
			if factIndex(clauses, atom) >= 0 {
				fmt.Fprintln(out, "no-op: already present (epoch", fmt.Sprint(epoch)+")")
				continue
			}
			clauses = append(clauses, atom.String()+".")
			epoch++
			fmt.Fprintln(out, "asserted", atom.String(), "(epoch", fmt.Sprint(epoch)+")")

		case strings.HasPrefix(line, ":retract"):
			atom, err := parseGroundFact(strings.TrimPrefix(line, ":retract"))
			if err != nil {
				fmt.Fprintln(out, "error:", err)
				continue
			}
			i := factIndex(clauses, atom)
			if i < 0 {
				fmt.Fprintln(out, "no-op: not present (epoch", fmt.Sprint(epoch)+")")
				continue
			}
			clauses = append(clauses[:i], clauses[i+1:]...)
			epoch++
			fmt.Fprintln(out, "retracted", atom.String(), "(epoch", fmt.Sprint(epoch)+")")

		case line == ":stream":
			streaming = !streaming
			if streaming {
				fmt.Fprintln(out, "streaming on")
			} else {
				fmt.Fprintln(out, "streaming off")
			}

		case line == ":profile":
			profiling = !profiling
			if profiling {
				fmt.Fprintln(out, "profiling on")
			} else {
				fmt.Fprintln(out, "profiling off")
			}

		case line == ":stats":
			if last == nil {
				fmt.Fprintln(out, "no query evaluated yet")
				continue
			}
			fmt.Fprintln(out, factorlog.FormatResult(last))
			fmt.Fprint(out, last.Profile())

		case strings.HasPrefix(line, ":budget"):
			var n int
			if _, err := fmt.Sscanf(strings.TrimPrefix(line, ":budget"), "%d", &n); err != nil || n <= 0 {
				fmt.Fprintln(out, "error: :budget needs a positive fact count")
				continue
			}
			budget = n
			fmt.Fprintln(out, "budget:", budget)

		case strings.HasPrefix(line, ":workers"):
			var n int
			if _, err := fmt.Sscanf(strings.TrimPrefix(line, ":workers"), "%d", &n); err != nil || n <= 0 {
				fmt.Fprintln(out, "error: :workers needs a positive worker count")
				continue
			}
			workers = n
			fmt.Fprintln(out, "workers:", workers)

		case strings.HasPrefix(line, ":strategy"):
			name := strings.TrimSpace(strings.TrimPrefix(line, ":strategy"))
			s, err := strategyByName(name)
			if err != nil {
				fmt.Fprintln(out, "error:", err)
				continue
			}
			strategy = s
			fmt.Fprintln(out, "strategy:", strategy)

		case strings.HasPrefix(line, ":classify"):
			q := strings.TrimSpace(strings.TrimPrefix(line, ":classify"))
			sys, err := build(q)
			if err != nil {
				fmt.Fprintln(out, "error:", err)
				continue
			}
			class, err := sys.Classify()
			if err != nil {
				fmt.Fprintln(out, "not factorable:", err)
				continue
			}
			fmt.Fprintln(out, "factorable:", class)

		case strings.HasPrefix(line, ":analyze"):
			q := strings.TrimSpace(strings.TrimPrefix(line, ":analyze"))
			sys, err := build(q)
			if err != nil {
				fmt.Fprintln(out, "error:", err)
				continue
			}
			info, err := sys.Plan(strategy)
			if err != nil {
				fmt.Fprintln(out, "error:", err)
				continue
			}
			fmt.Fprint(out, info.Text())
			tc := factorlog.NewTrace(factorlog.NewTraceID())
			sys.WithBudget(0, budget).WithWorkers(workers).WithStreaming(streaming).WithTraceSpan(tc.Root())
			res, err := sys.Run(strategy, sys.NewDB())
			if err != nil {
				fmt.Fprintln(out, "error:", err)
				continue
			}
			tc.Finish()
			last = res
			if len(res.Answers) == 0 {
				fmt.Fprintln(out, "no answers")
			} else {
				fmt.Fprintln(out, strings.Join(res.Answers, " "))
			}
			fmt.Fprint(out, tc.Profile())

		case strings.HasPrefix(line, ":explain"):
			q := strings.TrimSpace(strings.TrimPrefix(line, ":explain"))
			sys, err := build(q)
			if err != nil {
				fmt.Fprintln(out, "error:", err)
				continue
			}
			ex, err := sys.Explain(strategy)
			if err != nil {
				fmt.Fprintln(out, "error:", err)
				continue
			}
			if ex.Class != "" {
				fmt.Fprintln(out, "% class:", ex.Class)
			}
			fmt.Fprint(out, ex.Program)

		case strings.HasPrefix(line, ":"):
			fmt.Fprintln(out, "unknown command (try :help)")

		case strings.HasPrefix(line, "?-"):
			sys, err := build(line)
			if err != nil {
				fmt.Fprintln(out, "error:", err)
				continue
			}
			sys.WithBudget(0, budget).WithTrace(profiling).WithWorkers(workers).WithStreaming(streaming)
			res, err := sys.Run(strategy, sys.NewDB())
			if errors.Is(err, factorlog.ErrBudgetExceeded) {
				fmt.Fprintln(out, "budget exceeded:", err)
				continue
			}
			if err != nil {
				fmt.Fprintln(out, "error:", err)
				continue
			}
			last = res
			if res.AutoPicked {
				fmt.Fprintln(out, "auto picked", res.Strategy)
			}
			if len(res.Answers) == 0 {
				fmt.Fprintln(out, "no answers")
			} else {
				fmt.Fprintln(out, strings.Join(res.Answers, " "))
			}
			if profiling {
				fmt.Fprint(out, res.Profile())
			}

		default:
			// Parse the line on its own and store each clause separately, so
			// a multi-clause line still leaves every fact individually
			// addressable by :retract and the duplicate check in :assert.
			unit, err := parser.Parse(line)
			if err != nil {
				fmt.Fprintln(out, "error:", err)
				continue
			}
			if len(unit.Queries) > 0 {
				fmt.Fprintln(out, "error: queries go on their own line (?- atom.)")
				continue
			}
			for _, r := range unit.Rules {
				clauses = append(clauses, r.String())
			}
			for _, f := range unit.Facts {
				clauses = append(clauses, f.String()+".")
			}
		}
	}
}

// parseGroundFact parses a :assert/:retract operand: a single ground atom,
// trailing dot optional. Mirrors the server's POST /facts validation.
func parseGroundFact(src string) (ast.Atom, error) {
	src = strings.TrimSuffix(strings.TrimSpace(src), ".")
	atom, err := parser.ParseAtom(src)
	if err != nil {
		return ast.Atom{}, err
	}
	if !atom.Ground() {
		return ast.Atom{}, fmt.Errorf("fact must be ground: %s", atom)
	}
	return atom, nil
}

// factIndex finds atom among the accumulated clauses, comparing parsed
// renderings so ":retract e(1, 2)" matches a stored "e(1,2).".
func factIndex(clauses []string, atom ast.Atom) int {
	want := atom.String()
	for i, c := range clauses {
		got, err := parser.ParseAtom(strings.TrimSuffix(strings.TrimSpace(c), "."))
		if err != nil {
			continue // a rule, not a fact
		}
		if got.String() == want {
			return i
		}
	}
	return -1
}
