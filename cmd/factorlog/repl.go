package main

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"strings"

	"factorlog"
)

// repl runs an interactive session: rules and ground facts accumulate,
// queries evaluate immediately under the current strategy.
//
//	> e(1, 2).
//	> e(2, 3).
//	> t(X, Y) :- e(X, Y).
//	> t(X, Y) :- e(X, W), t(W, Y).
//	> ?- t(1, Y).
//	(2) (3)
//	> :strategy magic
//	> :classify ?- t(1, Y).
//	factorable: selection-pushing
//
// Commands: :strategy NAME, :profile, :stream, :stats, :list,
// :classify ?- q., :explain ?- q., :analyze ?- q., :reset, :help, :quit.
func repl(in io.Reader, out io.Writer) error {
	var clauses []string
	strategy := factorlog.FactoredOptimized
	profiling := false
	budget := 5_000_000
	workers := 1
	streaming := false
	var last *factorlog.Result

	build := func(query string) (*factorlog.System, error) {
		src := strings.Join(clauses, "\n") + "\n" + query
		return factorlog.Load(src)
	}

	fmt.Fprintln(out, "factorlog repl — enter clauses, ?- queries, or :help")
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for {
		fmt.Fprint(out, "> ")
		if !sc.Scan() {
			fmt.Fprintln(out)
			return sc.Err()
		}
		line := strings.TrimSpace(sc.Text())
		switch {
		case line == "":
			continue

		case line == ":quit" || line == ":q":
			return nil

		case line == ":help":
			fmt.Fprintln(out, "  <clause>.            add a rule or ground fact")
			fmt.Fprintln(out, "  ?- atom.             evaluate a query")
			fmt.Fprintln(out, "  :strategy NAME       switch strategy (current:", strategy, ")")
			fmt.Fprintln(out, "  :profile             toggle per-query profiling (rule/round tables)")
			fmt.Fprintln(out, "  :stats               show the last query's profile")
			fmt.Fprintln(out, "  :budget N            cap derived facts per query (current:", budget, ")")
			fmt.Fprintln(out, "  :workers N           evaluation workers, >1 = parallel (current:", workers, ")")
			fmt.Fprintln(out, "  :stream              toggle the streaming executor for non-recursive strata")
			fmt.Fprintln(out, "  :classify ?- atom.   which factorability theorem applies")
			fmt.Fprintln(out, "  :explain ?- atom.    show the transformed program")
			fmt.Fprintln(out, "  :analyze ?- atom.    evaluate with the plan description and span tree")
			fmt.Fprintln(out, "  :list                show accumulated clauses")
			fmt.Fprintln(out, "  :reset               drop all clauses")
			fmt.Fprintln(out, "  :quit                leave")

		case line == ":list":
			for _, c := range clauses {
				fmt.Fprintln(out, c)
			}

		case line == ":reset":
			clauses = nil
			last = nil
			fmt.Fprintln(out, "cleared")

		case line == ":stream":
			streaming = !streaming
			if streaming {
				fmt.Fprintln(out, "streaming on")
			} else {
				fmt.Fprintln(out, "streaming off")
			}

		case line == ":profile":
			profiling = !profiling
			if profiling {
				fmt.Fprintln(out, "profiling on")
			} else {
				fmt.Fprintln(out, "profiling off")
			}

		case line == ":stats":
			if last == nil {
				fmt.Fprintln(out, "no query evaluated yet")
				continue
			}
			fmt.Fprintln(out, factorlog.FormatResult(last))
			fmt.Fprint(out, last.Profile())

		case strings.HasPrefix(line, ":budget"):
			var n int
			if _, err := fmt.Sscanf(strings.TrimPrefix(line, ":budget"), "%d", &n); err != nil || n <= 0 {
				fmt.Fprintln(out, "error: :budget needs a positive fact count")
				continue
			}
			budget = n
			fmt.Fprintln(out, "budget:", budget)

		case strings.HasPrefix(line, ":workers"):
			var n int
			if _, err := fmt.Sscanf(strings.TrimPrefix(line, ":workers"), "%d", &n); err != nil || n <= 0 {
				fmt.Fprintln(out, "error: :workers needs a positive worker count")
				continue
			}
			workers = n
			fmt.Fprintln(out, "workers:", workers)

		case strings.HasPrefix(line, ":strategy"):
			name := strings.TrimSpace(strings.TrimPrefix(line, ":strategy"))
			s, err := strategyByName(name)
			if err != nil {
				fmt.Fprintln(out, "error:", err)
				continue
			}
			strategy = s
			fmt.Fprintln(out, "strategy:", strategy)

		case strings.HasPrefix(line, ":classify"):
			q := strings.TrimSpace(strings.TrimPrefix(line, ":classify"))
			sys, err := build(q)
			if err != nil {
				fmt.Fprintln(out, "error:", err)
				continue
			}
			class, err := sys.Classify()
			if err != nil {
				fmt.Fprintln(out, "not factorable:", err)
				continue
			}
			fmt.Fprintln(out, "factorable:", class)

		case strings.HasPrefix(line, ":analyze"):
			q := strings.TrimSpace(strings.TrimPrefix(line, ":analyze"))
			sys, err := build(q)
			if err != nil {
				fmt.Fprintln(out, "error:", err)
				continue
			}
			info, err := sys.Plan(strategy)
			if err != nil {
				fmt.Fprintln(out, "error:", err)
				continue
			}
			fmt.Fprint(out, info.Text())
			tc := factorlog.NewTrace(factorlog.NewTraceID())
			sys.WithBudget(0, budget).WithWorkers(workers).WithStreaming(streaming).WithTraceSpan(tc.Root())
			res, err := sys.Run(strategy, sys.NewDB())
			if err != nil {
				fmt.Fprintln(out, "error:", err)
				continue
			}
			tc.Finish()
			last = res
			if len(res.Answers) == 0 {
				fmt.Fprintln(out, "no answers")
			} else {
				fmt.Fprintln(out, strings.Join(res.Answers, " "))
			}
			fmt.Fprint(out, tc.Profile())

		case strings.HasPrefix(line, ":explain"):
			q := strings.TrimSpace(strings.TrimPrefix(line, ":explain"))
			sys, err := build(q)
			if err != nil {
				fmt.Fprintln(out, "error:", err)
				continue
			}
			ex, err := sys.Explain(strategy)
			if err != nil {
				fmt.Fprintln(out, "error:", err)
				continue
			}
			if ex.Class != "" {
				fmt.Fprintln(out, "% class:", ex.Class)
			}
			fmt.Fprint(out, ex.Program)

		case strings.HasPrefix(line, ":"):
			fmt.Fprintln(out, "unknown command (try :help)")

		case strings.HasPrefix(line, "?-"):
			sys, err := build(line)
			if err != nil {
				fmt.Fprintln(out, "error:", err)
				continue
			}
			sys.WithBudget(0, budget).WithTrace(profiling).WithWorkers(workers).WithStreaming(streaming)
			res, err := sys.Run(strategy, sys.NewDB())
			if errors.Is(err, factorlog.ErrBudgetExceeded) {
				fmt.Fprintln(out, "budget exceeded:", err)
				continue
			}
			if err != nil {
				fmt.Fprintln(out, "error:", err)
				continue
			}
			last = res
			if len(res.Answers) == 0 {
				fmt.Fprintln(out, "no answers")
			} else {
				fmt.Fprintln(out, strings.Join(res.Answers, " "))
			}
			if profiling {
				fmt.Fprint(out, res.Profile())
			}

		default:
			// Validate the clause by parsing it together with what we have,
			// using a throwaway query to satisfy Load.
			candidate := append(append([]string{}, clauses...), line)
			src := strings.Join(candidate, "\n") + "\n?- nonexistent_probe__(X)."
			if _, err := factorlog.Load(src); err != nil && !strings.Contains(err.Error(), "nonexistent_probe__") {
				fmt.Fprintln(out, "error:", err)
				continue
			}
			clauses = candidate
		}
	}
}
