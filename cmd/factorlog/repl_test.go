package main

import (
	"strings"
	"testing"
)

func runRepl(t *testing.T, script string) string {
	t.Helper()
	var out strings.Builder
	if err := repl(strings.NewReader(script), &out); err != nil {
		t.Fatal(err)
	}
	return out.String()
}

func TestReplQueryFlow(t *testing.T) {
	out := runRepl(t, `
e(1, 2).
e(2, 3).
t(X, Y) :- e(X, Y).
t(X, Y) :- e(X, W), t(W, Y).
?- t(1, Y).
:quit
`)
	if !strings.Contains(out, "(2) (3)") {
		t.Errorf("query answers missing:\n%s", out)
	}
}

func TestReplStrategySwitch(t *testing.T) {
	out := runRepl(t, `
:strategy magic
e(a, b).
t(X, Y) :- e(X, Y).
?- t(a, Y).
:strategy warpdrive
:quit
`)
	if !strings.Contains(out, "strategy: magic") {
		t.Errorf("strategy switch missing:\n%s", out)
	}
	if !strings.Contains(out, "(b)") {
		t.Errorf("magic answers missing:\n%s", out)
	}
	if !strings.Contains(out, "unknown strategy") {
		t.Errorf("bad strategy not reported:\n%s", out)
	}
}

func TestReplStreamToggle(t *testing.T) {
	out := runRepl(t, `
:stream
e(1, 2).
e(2, 3).
t(X, Y) :- e(X, Y).
t(X, Y) :- e(X, W), t(W, Y).
?- t(1, Y).
:stream
:quit
`)
	if !strings.Contains(out, "streaming on") || !strings.Contains(out, "streaming off") {
		t.Errorf("stream toggle missing:\n%s", out)
	}
	if !strings.Contains(out, "(2) (3)") {
		t.Errorf("streamed answers missing:\n%s", out)
	}
}

func TestReplAnalyzeShowsOperatorTree(t *testing.T) {
	out := runRepl(t, `
:stream
e(1, 2).
t(X, Y) :- e(X, Y).
:analyze ?- t(1, Y).
:quit
`)
	// The plan description renders the streamed strata's operator trees and
	// the span tree follows the evaluated query.
	for _, want := range []string{"stratum schedule", "stream", "scan", "project", "materialize"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in :analyze output:\n%s", want, out)
		}
	}
}

func TestReplClassifyAndExplain(t *testing.T) {
	out := runRepl(t, `
t(X, Y) :- t(X, W), e(W, Y).
t(X, Y) :- e(X, Y).
:classify ?- t(1, Y).
:explain ?- t(1, Y).
:quit
`)
	if !strings.Contains(out, "factorable: selection-pushing") {
		t.Errorf("classify missing:\n%s", out)
	}
	if !strings.Contains(out, "% class: selection-pushing") {
		t.Errorf("explain missing:\n%s", out)
	}
	if !strings.Contains(out, "ft(") {
		t.Errorf("explained program missing factored predicate:\n%s", out)
	}
}

func TestReplListResetHelp(t *testing.T) {
	out := runRepl(t, `
e(1, 2).
:list
:reset
:list
:help
:bogus
:quit
`)
	// Clauses are re-rendered from the parsed form, so :list shows the
	// canonical spelling regardless of input spacing.
	if !strings.Contains(out, "e(1,2).") {
		t.Errorf("list missing:\n%s", out)
	}
	if !strings.Contains(out, "cleared") {
		t.Errorf("reset missing:\n%s", out)
	}
	if !strings.Contains(out, ":strategy NAME") {
		t.Errorf("help missing:\n%s", out)
	}
	if !strings.Contains(out, "unknown command") {
		t.Errorf("bogus command not reported:\n%s", out)
	}
}

func TestReplProfileAndStats(t *testing.T) {
	out := runRepl(t, `
e(1, 2).
e(2, 3).
t(X, Y) :- e(X, Y).
t(X, Y) :- e(X, W), t(W, Y).
:stats
:profile
?- t(1, Y).
:stats
:profile
:quit
`)
	if !strings.Contains(out, "no query evaluated yet") {
		t.Errorf(":stats before any query:\n%s", out)
	}
	if !strings.Contains(out, "profiling on") || !strings.Contains(out, "profiling off") {
		t.Errorf("profile toggle missing:\n%s", out)
	}
	for _, want := range []string{"stage", "eval", "firings", "round"} {
		if !strings.Contains(out, want) {
			t.Errorf("profiled query missing %q:\n%s", want, out)
		}
	}
}

func TestReplBudgetExceeded(t *testing.T) {
	out := runRepl(t, `
nat(z).
nat(s(X)) :- nat(X).
:strategy semi-naive
:budget 0
:budget 1000
?- nat(W).
:quit
`)
	if !strings.Contains(out, ":budget needs a positive fact count") {
		t.Errorf("bad budget accepted:\n%s", out)
	}
	if !strings.Contains(out, "budget: 1000") {
		t.Errorf("budget switch missing:\n%s", out)
	}
	if !strings.Contains(out, "budget exceeded") {
		t.Errorf("budget stop not distinguished:\n%s", out)
	}
}

func TestReplErrors(t *testing.T) {
	out := runRepl(t, `
t(X :- e(X).
?- garbage(.
?- nodefs(X).
:quit
`)
	if strings.Count(out, "error:") < 2 {
		t.Errorf("parse errors not reported:\n%s", out)
	}
	// Query on a predicate with no rules: reported, not crashed.
	if !strings.Contains(out, "no answers") && !strings.Contains(out, "error:") {
		t.Errorf("undefined query mishandled:\n%s", out)
	}
}

func TestReplNoAnswers(t *testing.T) {
	out := runRepl(t, `
t(X, Y) :- e(X, Y).
e(1, 2).
?- t(9, Y).
:quit
`)
	if !strings.Contains(out, "no answers") {
		t.Errorf("empty result missing:\n%s", out)
	}
}

func TestReplEOF(t *testing.T) {
	// EOF without :quit terminates cleanly.
	out := runRepl(t, "e(1, 2).\n")
	if !strings.Contains(out, "> ") {
		t.Errorf("prompt missing:\n%s", out)
	}
}

func TestReplAnalyze(t *testing.T) {
	out := runRepl(t, `
e(1, 2).
e(2, 3).
t(X, Y) :- e(X, Y).
t(X, Y) :- e(X, W), t(W, Y).
:analyze ?- t(1, Y).
:quit
`)
	for _, want := range []string{"plan factored+opt", "(2) (3)", "trace q-", "eval", "round"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in :analyze output:\n%s", want, out)
		}
	}
}

func TestReplAssertRetract(t *testing.T) {
	out := runRepl(t, `
t(X, Y) :- e(X, Y).
t(X, Y) :- e(X, W), t(W, Y).
:assert e(1, 2).
:assert e(2, 3).
?- t(1, Y).
:retract e(1, 2).
?- t(1, Y).
:retract e(1, 2).
:assert e(2, 3)
:quit
`)
	if !strings.Contains(out, "asserted e(1,2) (epoch 1)") {
		t.Errorf("assert echo missing:\n%s", out)
	}
	if !strings.Contains(out, "(2) (3)") {
		t.Errorf("answers after asserts missing:\n%s", out)
	}
	if !strings.Contains(out, "retracted e(1,2) (epoch 3)") {
		t.Errorf("retract echo missing:\n%s", out)
	}
	if !strings.Contains(out, "no answers") {
		t.Errorf("post-retract query should have no answers:\n%s", out)
	}
	if !strings.Contains(out, "no-op: not present (epoch 3)") {
		t.Errorf("double retract should be a no-op:\n%s", out)
	}
	if !strings.Contains(out, "no-op: already present (epoch 3)") {
		t.Errorf("duplicate assert should be a no-op:\n%s", out)
	}
}

func TestReplRetractFromMultiClauseLine(t *testing.T) {
	// Clauses entered several-per-line are stored individually, so a fact
	// from the middle of a line is still addressable by :retract.
	out := runRepl(t, `
t(X,Y) :- e(X,Y). t(X,Y) :- e(X,W), t(W,Y). e(1,2). e(2,3).
:retract e(1,2).
?- t(1, Y).
:assert e(2, 3).
e(4,5). ?- t(4,Y).
:quit
`)
	if !strings.Contains(out, "retracted e(1,2) (epoch 1)") {
		t.Errorf("retract of mid-line fact missing:\n%s", out)
	}
	if !strings.Contains(out, "no answers") {
		t.Errorf("post-retract query should have no answers:\n%s", out)
	}
	if !strings.Contains(out, "no-op: already present (epoch 1)") {
		t.Errorf("duplicate assert of mid-line fact should be a no-op:\n%s", out)
	}
	if !strings.Contains(out, "queries go on their own line") {
		t.Errorf("mixed clause+query line should be rejected:\n%s", out)
	}
}

func TestReplAssertValidation(t *testing.T) {
	out := runRepl(t, `
:assert e(X, 1).
:assert not an atom (
:retract e(Y).
:quit
`)
	if got := strings.Count(out, "error:"); got != 3 {
		t.Errorf("want 3 errors, got %d:\n%s", got, out)
	}
	if !strings.Contains(out, "must be ground") {
		t.Errorf("groundness error missing:\n%s", out)
	}
}
