// Command factorbench regenerates the reproduction experiments catalogued
// in EXPERIMENTS.md: every figure, worked example, and complexity claim of
// "Argument Reduction by Factoring".
//
// Usage:
//
//	factorbench                    # run every experiment
//	factorbench -run E2            # run one experiment
//	factorbench -list              # list experiment IDs and titles
//	factorbench -json [-n N]       # machine-readable strategy metrics (BENCH_*.json)
//	factorbench -json -workers 1,2,4,8   # one row per strategy x worker count
//	factorbench -pprof-addr :6060  # serve net/http/pprof while running
//
// With -json, factorbench evaluates every strategy over the E1
// transitive-closure workload (a chain of N edges, query from node N/3)
// with engine tracing enabled, and emits one JSON metrics document: per
// strategy and worker count, the pipeline stage spans, per-rule, per-round,
// per-stratum and per-worker counters, and total wall time. The committed
// BENCH_*.json files are snapshots of this output.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof"
	"os"
	"strconv"
	"strings"

	"factorlog/internal/engine"
	"factorlog/internal/experiments"
	"factorlog/internal/obsv"
	"factorlog/internal/pipeline"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "factorbench:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("factorbench", flag.ContinueOnError)
	one := fs.String("run", "", "run a single experiment by ID (e.g. E2)")
	list := fs.Bool("list", false, "list experiments")
	jsonOut := fs.Bool("json", false, "emit a JSON metrics document for the strategy sweep")
	n := fs.Int("n", 256, "workload size for -json (chain length)")
	workersList := fs.String("workers", "1", "comma-separated worker counts for -json (e.g. 1,2,4,8)")
	pprofAddr := fs.String("pprof-addr", "", "serve net/http/pprof on this address (e.g. :6060)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *pprofAddr != "" {
		go func() {
			fmt.Fprintln(os.Stderr, "factorbench: pprof on", *pprofAddr)
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				fmt.Fprintln(os.Stderr, "factorbench: pprof:", err)
			}
		}()
	}

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-4s %s\n", e.ID, e.Title)
		}
		return nil
	}

	if *jsonOut {
		workers, err := parseWorkersList(*workersList)
		if err != nil {
			return err
		}
		return emitJSON(os.Stdout, *n, workers)
	}

	if *one != "" {
		e, ok := experiments.ByID(*one)
		if !ok {
			return fmt.Errorf("no experiment %q (try -list)", *one)
		}
		return runOne(e)
	}

	for _, e := range experiments.All() {
		if err := runOne(e); err != nil {
			return fmt.Errorf("%s: %w", e.ID, err)
		}
		fmt.Println()
	}
	return nil
}

func runOne(e experiments.Experiment) error {
	tbl, err := e.Run()
	if err != nil {
		return err
	}
	fmt.Print(tbl.Render())
	return nil
}

// metricsDoc is the envelope of the machine-readable output of -json; the
// committed BENCH_*.json files follow this schema.
type metricsDoc struct {
	Schema   string       `json:"schema"`
	Tool     string       `json:"tool"`
	Workload string       `json:"workload"`
	N        int          `json:"n"`
	Query    string       `json:"query"`
	Runs     []metricsRun `json:"runs"`
	// StageSummary aggregates the pipeline stage spans across all runs: per
	// stage name, how many runs recorded it and the total/max wall and
	// allocation cost. New in schema v6.
	StageSummary []stageSummary `json:"stage_summary"`
}

// stageSummary is one pipeline stage aggregated across the sweep's runs.
type stageSummary struct {
	Stage           string `json:"stage"`
	Runs            int    `json:"runs"`
	TotalWallNS     int64  `json:"total_wall_ns"`
	MaxWallNS       int64  `json:"max_wall_ns"`
	TotalAllocs     uint64 `json:"total_allocs"`
	TotalAllocBytes uint64 `json:"total_alloc_bytes"`
}

// summarizeStages folds every run's stage spans into one row per stage
// name, in first-seen order (strategy order is deterministic, so the
// summary is too).
func summarizeStages(runs []metricsRun) []stageSummary {
	index := map[string]int{}
	var out []stageSummary
	for _, r := range runs {
		for _, sp := range r.Spans {
			i, ok := index[sp.Name]
			if !ok {
				i = len(out)
				index[sp.Name] = i
				out = append(out, stageSummary{Stage: sp.Name})
			}
			out[i].Runs++
			out[i].TotalWallNS += sp.Wall.Nanoseconds()
			if w := sp.Wall.Nanoseconds(); w > out[i].MaxWallNS {
				out[i].MaxWallNS = w
			}
			out[i].TotalAllocs += sp.Allocs
			out[i].TotalAllocBytes += sp.AllocBytes
		}
	}
	return out
}

// metricsRun is one strategy's traced evaluation at one worker count.
// Strategies whose transformation is unavailable for the workload (or that
// diverge on it) report Error and nothing else; worker counts above 1 only
// apply to the bottom-up semi-naive strategies, so the top-down baselines
// are emitted once (workers = 1).
type metricsRun struct {
	Strategy   string              `json:"strategy"`
	Workers    int                 `json:"workers"`
	Error      string              `json:"error,omitempty"`
	Answers    int                 `json:"answers"`
	Inferences int                 `json:"inferences"`
	Facts      int                 `json:"facts"`
	Iterations int                 `json:"iterations"`
	MaxArity   int                 `json:"max_idb_arity"`
	WallNS     int64               `json:"wall_ns"`
	Spans      []obsv.Span         `json:"stage_spans,omitempty"`
	Rules      []obsv.RuleStats    `json:"rule_stats,omitempty"`
	Rounds     []obsv.RoundStats   `json:"rounds,omitempty"`
	Strata     []obsv.StratumStats `json:"strata,omitempty"`
	WorkerRows []obsv.WorkerStats  `json:"worker_stats,omitempty"`
	// Storage is the post-evaluation storage shape (arena/index bytes and
	// hash-table load factors); stage spans additionally carry allocs and
	// alloc_bytes since schema v4.
	Storage obsv.StorageStats `json:"storage"`
}

// parseWorkersList parses the -workers flag: a comma-separated list of
// positive worker counts.
func parseWorkersList(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad -workers list %q: want positive counts like 1,2,4,8", s)
		}
		out = append(out, n)
	}
	return out, nil
}

// parallelizable reports whether a strategy goes through the bottom-up
// semi-naive evaluator, where Options.Workers applies.
func parallelizable(s pipeline.Strategy) bool {
	switch s {
	case pipeline.Naive, pipeline.TopDown, pipeline.Tabled:
		return false
	}
	return true
}

func emitJSON(out *os.File, n int, workers []int) error {
	pl, load := experiments.E1Pipeline(n)
	doc := metricsDoc{
		Schema:   "factorlog/metrics/v6",
		Tool:     "factorbench",
		Workload: "E1 transitive closure, chain EDB",
		N:        n,
		Query:    pl.Query.String(),
	}
	for _, s := range pipeline.AllStrategies() {
		for _, w := range workers {
			if w > 1 && !parallelizable(s) {
				continue
			}
			opts := engine.Options{Trace: true, MaxFacts: 10_000_000, Workers: w}
			r, err := pl.Run(s, load(), opts)
			if err != nil {
				doc.Runs = append(doc.Runs, metricsRun{Strategy: s.String(), Workers: w, Error: err.Error()})
				continue
			}
			doc.Runs = append(doc.Runs, metricsRun{
				Strategy:   s.String(),
				Workers:    w,
				Answers:    len(r.Answers),
				Inferences: r.Inferences,
				Facts:      r.Facts,
				Iterations: r.Iterations,
				MaxArity:   r.MaxIDBArity,
				WallNS:     r.EvalWall.Nanoseconds(),
				Spans:      r.Spans,
				Rules:      r.Rules,
				Rounds:     r.Rounds,
				Strata:     r.Strata,
				WorkerRows: r.Workers,
				Storage:    r.Storage,
			})
		}
	}
	doc.StageSummary = summarizeStages(doc.Runs)
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}
