// Command factorbench regenerates the reproduction experiments catalogued
// in EXPERIMENTS.md: every figure, worked example, and complexity claim of
// "Argument Reduction by Factoring".
//
// Usage:
//
//	factorbench                    # run every experiment
//	factorbench -run E2            # run one experiment
//	factorbench -list              # list experiment IDs and titles
//	factorbench -json [-n N]       # machine-readable strategy metrics (BENCH_*.json)
//	factorbench -json -workers 1,2,4,8   # one row per strategy x worker count
//	factorbench -mutate [-json]    # incremental-vs-scratch view maintenance comparison
//	factorbench -autoplan [-json]  # adaptive optimizer vs every fixed strategy
//	factorbench -pprof-addr :6060  # serve net/http/pprof while running
//
// With -json, factorbench evaluates every strategy over the E1
// transitive-closure workload (a chain of N edges, query from node N/3)
// with engine tracing enabled, and emits one JSON metrics document: per
// strategy and worker count, the pipeline stage spans, per-rule, per-round,
// per-stratum and per-worker counters, and total wall time; since schema v7
// the document also carries a stream_compare block pitting the streaming
// executor against the materializing fixpoint on the layered non-recursive
// join workload, with per-operator row counters from a traced streamed run.
// With -mutate, a mutate_compare block (schema v8) additionally pits
// incremental view maintenance (counting insertion deltas and deletions,
// see docs/INCREMENTAL.md) against from-scratch recomputation under live
// fact ingestion: tail-extension asserts on the chain TC and source-tuple
// retracts on the layered joins, each differentially verified.
// With -autoplan, a schema-v9 autoplan_compare block races the adaptive
// cost-based optimizer (see docs/PLANNER.md) against every fixed candidate
// strategy on three workload families with different best-fixed winners,
// reporting per family the measured wall of each fixed strategy, the
// optimizer's pick with its plan-search overhead, the candidate cost table,
// and the ratio of the auto pick to the best fixed strategy.
// The committed BENCH_*.json files are snapshots of this output.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"factorlog/internal/ast"
	"factorlog/internal/cost"
	"factorlog/internal/engine"
	"factorlog/internal/experiments"
	"factorlog/internal/obsv"
	"factorlog/internal/parser"
	"factorlog/internal/pipeline"
	"factorlog/internal/workload"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "factorbench:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("factorbench", flag.ContinueOnError)
	one := fs.String("run", "", "run a single experiment by ID (e.g. E2)")
	list := fs.Bool("list", false, "list experiments")
	jsonOut := fs.Bool("json", false, "emit a JSON metrics document for the strategy sweep")
	mutate := fs.Bool("mutate", false, "with -json, add the incremental-vs-scratch mutate_compare block; alone, print it")
	autoplan := fs.Bool("autoplan", false, "with -json, add the autoplan_compare block; alone, print it")
	n := fs.Int("n", 256, "workload size for -json (chain length)")
	workersList := fs.String("workers", "1", "comma-separated worker counts for -json (e.g. 1,2,4,8)")
	pprofAddr := fs.String("pprof-addr", "", "serve net/http/pprof on this address (e.g. :6060)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *pprofAddr != "" {
		go func() {
			fmt.Fprintln(os.Stderr, "factorbench: pprof on", *pprofAddr)
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				fmt.Fprintln(os.Stderr, "factorbench: pprof:", err)
			}
		}()
	}

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-4s %s\n", e.ID, e.Title)
		}
		return nil
	}

	if *jsonOut {
		workers, err := parseWorkersList(*workersList)
		if err != nil {
			return err
		}
		return emitJSON(os.Stdout, *n, workers, *mutate, *autoplan)
	}

	if *autoplan {
		ac, err := compareAutoplan(*n)
		if err != nil {
			return err
		}
		for _, f := range ac.Families {
			fmt.Printf("%s  %s\n", f.Family, f.Query)
			for _, r := range f.Fixed {
				if r.Error != "" {
					fmt.Printf("  %-14s unavailable: %s\n", r.Strategy, r.Error)
					continue
				}
				fmt.Printf("  %-14s %10.3fms  %8d inferences\n",
					r.Strategy, float64(r.WallNS)/1e6, r.Inferences)
			}
			fmt.Printf("  auto -> %s (%.3fms pick overhead), %.2fx best fixed (%s)\n",
				f.Auto.Strategy, float64(f.PickWallNS)/1e6, f.RatioToBest, f.BestFixed)
		}
		fmt.Printf("global best fixed: %s; auto beats it on: %s\n",
			ac.GlobalBestFixed, strings.Join(ac.AutoBeatsGlobalOn, ", "))
		return nil
	}

	if *mutate {
		mc, err := compareMutation(*n, 8)
		if err != nil {
			return err
		}
		for _, ph := range []mutatePhase{mc.Assert, mc.Retract} {
			fmt.Printf("%s (n=%d, %d batches)\n", ph.Workload, ph.N, ph.Batches)
			fmt.Printf("  incremental %10.3fms   scratch %10.3fms   speedup %.1fx\n",
				float64(ph.IncrementalWallNS)/1e6, float64(ph.ScratchWallNS)/1e6, ph.Speedup)
			fmt.Printf("  +%d / -%d derived facts, final epoch %d, verified=%v\n",
				ph.NewFacts, ph.DeletedFacts, ph.FinalEpoch, ph.Verified)
		}
		return nil
	}

	if *one != "" {
		e, ok := experiments.ByID(*one)
		if !ok {
			return fmt.Errorf("no experiment %q (try -list)", *one)
		}
		return runOne(e)
	}

	for _, e := range experiments.All() {
		if err := runOne(e); err != nil {
			return fmt.Errorf("%s: %w", e.ID, err)
		}
		fmt.Println()
	}
	return nil
}

func runOne(e experiments.Experiment) error {
	tbl, err := e.Run()
	if err != nil {
		return err
	}
	fmt.Print(tbl.Render())
	return nil
}

// metricsDoc is the envelope of the machine-readable output of -json; the
// committed BENCH_*.json files follow this schema.
type metricsDoc struct {
	Schema   string       `json:"schema"`
	Tool     string       `json:"tool"`
	Workload string       `json:"workload"`
	N        int          `json:"n"`
	Query    string       `json:"query"`
	Runs     []metricsRun `json:"runs"`
	// StageSummary aggregates the pipeline stage spans across all runs: per
	// stage name, how many runs recorded it and the total/max wall and
	// allocation cost. New in schema v6.
	StageSummary []stageSummary `json:"stage_summary"`
	// StreamCompare is the streaming-vs-materializing executor comparison
	// over the join-heavy layered workload. New in schema v7.
	StreamCompare *streamCompare `json:"stream_compare,omitempty"`
	// MutateCompare is the incremental-vs-from-scratch view maintenance
	// comparison (see docs/INCREMENTAL.md), emitted with -mutate. New in
	// schema v8.
	MutateCompare *mutateCompare `json:"mutate_compare,omitempty"`
	// AutoplanCompare races the adaptive cost-based optimizer against every
	// fixed candidate strategy (see docs/PLANNER.md), emitted with
	// -autoplan. New in schema v9.
	AutoplanCompare *autoplanCompare `json:"autoplan_compare,omitempty"`
}

// autoplanCompare is the -autoplan block: per workload family, every fixed
// candidate strategy's measured evaluation against the optimizer's pick.
// The families are chosen so no single fixed strategy wins everywhere —
// the bound chain TC rewards the factored rewrite, the free layered joins
// reward plain semi-naive, and the selective wide-pairs probe rewards a
// sideways-information-passing rewrite — so an adaptive pick must beat any
// one fixed choice somewhere.
type autoplanCompare struct {
	Families []autoplanFamily `json:"families"`
	// GlobalBestFixed is the fixed strategy with the lowest total
	// best-relative wall ratio across the families it can run on all of;
	// AutoBeatsGlobalOn lists the families where the auto pick's measured
	// wall beats that strategy's.
	GlobalBestFixed   string   `json:"global_best_fixed"`
	AutoBeatsGlobalOn []string `json:"auto_beats_global_on"`
}

// autoplanFamily is one workload family's race. Fixed carries every
// candidate strategy's measurement (min wall over reps); Auto is the
// optimizer's pick measured the same way, with the one-time plan-search
// overhead reported separately as PickWallNS.
type autoplanFamily struct {
	Family string        `json:"family"`
	Query  string        `json:"query"`
	Fixed  []autoplanRun `json:"fixed"`
	Auto   autoplanRun   `json:"auto"`
	// PickWallNS is the cost of the plan search itself (statistics
	// snapshot + candidate enumeration), paid once per decision.
	PickWallNS      int64  `json:"pick_wall_ns"`
	BestFixed       string `json:"best_fixed"`
	BestFixedWallNS int64  `json:"best_fixed_wall_ns"`
	// RatioToBest is auto wall over best fixed wall: 1.0 means the
	// optimizer picked (and matched) the per-family winner.
	RatioToBest float64 `json:"ratio_to_best"`
	// Candidates is the optimizer's estimated-cost table for the decision.
	Candidates []pipeline.CandidateInfo `json:"candidates"`
}

// autoplanRun is one (family, strategy) measurement: best wall over the
// reps plus the deterministic work counters from that run.
type autoplanRun struct {
	Strategy   string `json:"strategy"`
	Error      string `json:"error,omitempty"`
	WallNS     int64  `json:"wall_ns"`
	Inferences int    `json:"inferences"`
	Answers    int    `json:"answers"`
}

// autoplanWorkload is one family definition: a pipeline factory and a fresh
// EDB per run.
type autoplanWorkload struct {
	family string
	pl     *pipeline.Pipeline
	load   func() *engine.DB
}

// autoplanWorkloads builds the three families. The chain length n comes
// from -n; the other sizes are fixed so the family shapes (not the flag)
// determine the winners.
func autoplanWorkloads(n int) ([]autoplanWorkload, error) {
	e1, e1load := experiments.E1Pipeline(n)

	const stages = 4
	jprog, err := parser.ParseProgram(workload.LayeredJoinProgram(stages))
	if err != nil {
		return nil, err
	}
	jn := n * 2
	jpl := pipeline.New(jprog, workload.LayeredJoinQuery(stages))
	jload := func() *engine.DB {
		db := engine.NewDB()
		workload.LayeredJoins(db, stages, jn, 2)
		return db
	}

	wprog, err := parser.ParseProgram("hit(X, Y) :- w(X, Y).\nhit2(Y) :- hit(3, Y).")
	if err != nil {
		return nil, err
	}
	wq, err := parser.ParseAtom("hit2(Y)")
	if err != nil {
		return nil, err
	}
	wn := n * 40
	wpl := pipeline.New(wprog, wq)
	wload := func() *engine.DB {
		db := engine.NewDB()
		workload.WidePairs(db, "w", wn, 16)
		return db
	}

	return []autoplanWorkload{
		{family: "chain-tc", pl: e1, load: e1load},
		{family: "layered-joins", pl: jpl, load: jload},
		{family: "wide-pairs", pl: wpl, load: wload},
	}, nil
}

// measureStrategy runs one (family, strategy) cell reps times over fresh
// EDBs and keeps the best wall; the work counters are deterministic across
// reps.
func measureStrategy(w autoplanWorkload, s pipeline.Strategy, reorder bool, reps int) autoplanRun {
	run := autoplanRun{Strategy: s.String()}
	for rep := 0; rep < reps; rep++ {
		r, err := w.pl.Run(s, w.load(), engine.Options{
			MaxFacts: 10_000_000, ReorderJoins: reorder,
		})
		if err != nil {
			return autoplanRun{Strategy: s.String(), Error: err.Error()}
		}
		if wall := r.EvalWall.Nanoseconds(); rep == 0 || wall < run.WallNS {
			run.WallNS = wall
		}
		run.Inferences = r.Inferences
		run.Answers = len(r.Answers)
	}
	return run
}

// compareAutoplan fills the autoplan_compare block: each family measures
// every fixed candidate strategy and the adaptive pick (statistics from the
// same EDB the runs use), then the cross-family summary names the best
// single fixed strategy and where auto beats it.
func compareAutoplan(n int) (*autoplanCompare, error) {
	const reps = 5
	workloads, err := autoplanWorkloads(n)
	if err != nil {
		return nil, err
	}
	ac := &autoplanCompare{}
	// ratioByStrategy accumulates each always-available fixed strategy's
	// wall relative to its family's best, for the global summary.
	ratioByStrategy := map[string]float64{}
	available := map[string]int{}
	for _, w := range workloads {
		fam := autoplanFamily{Family: w.family, Query: w.pl.Query.String()}

		for _, s := range pipeline.AutoCandidateStrategies() {
			run := measureStrategy(w, s, false, reps)
			fam.Fixed = append(fam.Fixed, run)
			if run.Error == "" && (fam.BestFixed == "" || run.WallNS < fam.BestFixedWallNS) {
				fam.BestFixed = run.Strategy
				fam.BestFixedWallNS = run.WallNS
			}
		}
		if fam.BestFixed == "" {
			return nil, fmt.Errorf("%s: no fixed candidate strategy succeeded", w.family)
		}

		t0 := time.Now()
		dec, err := w.pl.AutoPick(cost.SnapshotFromDB(w.load(), 0))
		fam.PickWallNS = time.Since(t0).Nanoseconds()
		if err != nil {
			return nil, fmt.Errorf("%s: auto pick: %w", w.family, err)
		}
		fam.Candidates = dec.Candidates
		// When the pick matches a fixed cell's exact configuration, its
		// measurement IS that cell's — re-racing the same plan would only
		// report timer noise as a ratio.
		fam.Auto = autoplanRun{Error: "unmeasured"}
		if !dec.Reorder {
			for _, run := range fam.Fixed {
				if run.Strategy == dec.Strategy.String() && run.Error == "" {
					fam.Auto = run
				}
			}
		}
		if fam.Auto.Error != "" {
			fam.Auto = measureStrategy(w, dec.Strategy, dec.Reorder, reps)
		}
		if fam.Auto.Error != "" {
			return nil, fmt.Errorf("%s: auto pick %s failed: %s", w.family, dec.Strategy, fam.Auto.Error)
		}
		fam.RatioToBest = float64(fam.Auto.WallNS) / float64(fam.BestFixedWallNS)

		for _, run := range fam.Fixed {
			if run.Error == "" {
				ratioByStrategy[run.Strategy] += float64(run.WallNS) / float64(fam.BestFixedWallNS)
				available[run.Strategy]++
			}
		}
		ac.Families = append(ac.Families, fam)
	}

	// Global best fixed: lowest total relative wall among strategies that
	// ran on every family (deterministic tie-break on candidate order).
	for _, s := range pipeline.AutoCandidateStrategies() {
		name := s.String()
		if available[name] != len(ac.Families) {
			continue
		}
		if ac.GlobalBestFixed == "" || ratioByStrategy[name] < ratioByStrategy[ac.GlobalBestFixed] {
			ac.GlobalBestFixed = name
		}
	}
	for _, fam := range ac.Families {
		for _, run := range fam.Fixed {
			if run.Strategy == ac.GlobalBestFixed && run.Error == "" && fam.Auto.WallNS < run.WallNS {
				ac.AutoBeatsGlobalOn = append(ac.AutoBeatsGlobalOn, fam.Family)
			}
		}
	}
	return ac, nil
}

// mutateCompare measures live fact ingestion both ways: applying each
// mutation batch to a maintained materialization (incremental, counting
// deltas) versus recomputing the fixpoint from the post-batch base
// (scratch). Assert exercises insertion deltas on the recursive chain-TC
// workload; Retract exercises counting-based deletion on the non-recursive
// layered join workload, where a retracted source tuple cascades through
// the derived layers without a rebuild. New in schema v8.
type mutateCompare struct {
	Assert  mutatePhase `json:"assert"`
	Retract mutatePhase `json:"retract"`
}

// mutatePhase is one mutation scenario's paired measurement. Verified
// reports that the incremental answers matched the from-scratch answers
// after the final batch (the run fails loudly if they do not).
type mutatePhase struct {
	Workload          string  `json:"workload"`
	N                 int     `json:"n"`
	Batches           int     `json:"batches"`
	IncrementalWallNS int64   `json:"incremental_wall_ns"`
	ScratchWallNS     int64   `json:"scratch_wall_ns"`
	Speedup           float64 `json:"speedup"`
	FinalEpoch        int64   `json:"final_epoch"`
	NewFacts          int     `json:"new_facts"`
	DeletedFacts      int     `json:"deleted_facts"`
	Verified          bool    `json:"verified"`
}

func intAtom(pred string, a, b int) ast.Atom {
	return ast.NewAtom(pred, ast.C(strconv.Itoa(a)), ast.C(strconv.Itoa(b)))
}

// chainAtoms mirrors workload.Chain as ground atoms: e(1,2) .. e(n-1,n).
func chainAtoms(n int) []ast.Atom {
	out := make([]ast.Atom, 0, n-1)
	for i := 1; i < n; i++ {
		out = append(out, intAtom("e", i, i+1))
	}
	return out
}

// layeredAtoms mirrors workload.LayeredJoins as ground atoms.
func layeredAtoms(stages, n, fanout int) []ast.Atom {
	var out []ast.Atom
	for k := 0; k <= stages; k++ {
		pred := fmt.Sprintf("s%d", k)
		for i := 0; i < n; i++ {
			for j := 0; j < fanout; j++ {
				out = append(out, intAtom(pred, i, (i*7+k+j*11)%n))
			}
		}
	}
	return out
}

// measureMutation runs one phase: build a materialization over base, apply
// the scripted batches incrementally, then replay the same batch sequence
// from scratch (one full Materialize per post-batch state), and verify the
// final answer sets agree via the pipeline's projection.
func measureMutation(pl *pipeline.Pipeline, base []ast.Atom, batches [][2][]ast.Atom) (*mutatePhase, error) {
	ctx := context.Background()
	ph := &mutatePhase{Batches: len(batches)}

	mat, err := engine.Materialize(pl.Program, base, engine.MaterializeOptions{})
	if err != nil {
		return nil, err
	}
	for _, b := range batches {
		t0 := time.Now()
		st, err := mat.Apply(ctx, b[0], b[1])
		ph.IncrementalWallNS += time.Since(t0).Nanoseconds()
		if err != nil {
			return nil, err
		}
		ph.NewFacts += st.NewFacts
		ph.DeletedFacts += st.DeletedFacts
	}
	ph.FinalEpoch = mat.Epoch()

	// Scratch replays: the base after batch i is the base after batch i-1
	// plus that batch's changes; each state pays a full fixpoint.
	facts := append([]ast.Atom{}, base...)
	var scratch *engine.Materialization
	for _, b := range batches {
		facts = applyToAtoms(facts, b[0], b[1])
		t0 := time.Now()
		scratch, err = engine.Materialize(pl.Program, facts, engine.MaterializeOptions{})
		ph.ScratchWallNS += time.Since(t0).Nanoseconds()
		if err != nil {
			return nil, err
		}
	}
	if ph.IncrementalWallNS > 0 {
		ph.Speedup = float64(ph.ScratchWallNS) / float64(ph.IncrementalWallNS)
	}

	inc, err := pl.ProjectAnswers(mat.DB())
	if err != nil {
		return nil, err
	}
	want, err := pl.ProjectAnswers(scratch.DB())
	if err != nil {
		return nil, err
	}
	if len(inc) != len(want) {
		return nil, fmt.Errorf("mutate differential: incremental %d answers, scratch %d", len(inc), len(want))
	}
	for a := range want {
		if !inc[a] {
			return nil, fmt.Errorf("mutate differential: incremental missing answer %s", a)
		}
	}
	ph.Verified = true
	return ph, nil
}

// applyToAtoms is the scratch side's base bookkeeping: retract then assert,
// by canonical rendering, mirroring Materialization.Apply's order.
func applyToAtoms(facts, assert, retract []ast.Atom) []ast.Atom {
	drop := make(map[string]bool, len(retract))
	for _, a := range retract {
		drop[a.String()] = true
	}
	out := make([]ast.Atom, 0, len(facts)+len(assert))
	present := make(map[string]bool, len(facts)+len(assert))
	for _, a := range facts {
		k := a.String()
		if drop[k] || present[k] {
			continue
		}
		present[k] = true
		out = append(out, a)
	}
	for _, a := range assert {
		k := a.String()
		if present[k] {
			continue
		}
		present[k] = true
		out = append(out, a)
	}
	return out
}

// compareMutation fills the mutate_compare block: tail-extension assert
// churn on the chain TC (each batch appends one edge, the delta derives
// only the new node's paths) and source-tuple retraction on the layered
// joins (counting deletion cascades the dead tuples, no rebuild).
func compareMutation(n, batches int) (*mutateCompare, error) {
	pl, _ := experiments.E1Pipeline(n)
	var assertBatches [][2][]ast.Atom
	for i := 0; i < batches; i++ {
		assertBatches = append(assertBatches,
			[2][]ast.Atom{{intAtom("e", n+i, n+i+1)}, nil})
	}
	assertPhase, err := measureMutation(pl, chainAtoms(n), assertBatches)
	if err != nil {
		return nil, fmt.Errorf("assert phase: %w", err)
	}
	assertPhase.Workload = "E1 transitive closure, chain EDB, tail-extension asserts"
	assertPhase.N = n

	const stages, fanout = 4, 1
	jn := n * 4
	prog, err := parser.ParseProgram(workload.LayeredJoinProgram(stages))
	if err != nil {
		return nil, err
	}
	jpl := pipeline.New(prog, workload.LayeredJoinQuery(stages))
	var retractBatches [][2][]ast.Atom
	for i := 0; i < batches; i++ {
		retractBatches = append(retractBatches,
			[2][]ast.Atom{nil, {intAtom("s0", i, (i*7)%jn)}})
	}
	retractPhase, err := measureMutation(jpl, layeredAtoms(stages, jn, fanout), retractBatches)
	if err != nil {
		return nil, fmt.Errorf("retract phase: %w", err)
	}
	retractPhase.Workload = "layered non-recursive joins, source-tuple retracts"
	retractPhase.N = jn

	return &mutateCompare{Assert: *assertPhase, Retract: *retractPhase}, nil
}

// streamCompare compares the two bottom-up executors over the layered
// non-recursive join family (workload.LayeredJoinProgram): reps evaluations
// per executor over fresh EDBs, reporting each executor's best wall clock
// and smallest per-run heap allocation, the derived ratios, and the
// streamed plan's counters with per-operator row flow (from one extra
// traced streamed run). New in schema v7.
type streamCompare struct {
	Workload string `json:"workload"`
	Stages   int    `json:"stages"`
	N        int    `json:"n"`
	Fanout   int    `json:"fanout"`
	Reps     int    `json:"reps"`
	// Best (minimum) wall time over the reps, per executor.
	MaterializeWallNS int64 `json:"materialize_wall_ns"`
	StreamWallNS      int64 `json:"stream_wall_ns"`
	// Smallest per-run heap allocation over the reps, per executor
	// (runtime.MemStats.TotalAlloc delta around the evaluation).
	MaterializeAllocBytes uint64 `json:"materialize_alloc_bytes"`
	StreamAllocBytes      uint64 `json:"stream_alloc_bytes"`
	// Speedup is materialize wall over stream wall; AllocRatio is stream
	// bytes over materialize bytes (lower is better).
	Speedup    float64 `json:"speedup"`
	AllocRatio float64 `json:"alloc_ratio"`
	// Stream holds the streamed run's counters, including per-operator row
	// counters (ops) from the traced capture run.
	Stream obsv.StreamStats `json:"stream"`
}

// compareExecutors runs the layered join workload under both bottom-up
// executors and fills the stream_compare block.
func compareExecutors(stages, n, fanout, reps int) (*streamCompare, error) {
	prog, err := parser.ParseProgram(workload.LayeredJoinProgram(stages))
	if err != nil {
		return nil, err
	}
	query := workload.LayeredJoinQuery(stages)
	load := func() *engine.DB {
		db := engine.NewDB()
		workload.LayeredJoins(db, stages, n, fanout)
		return db
	}
	sc := &streamCompare{
		Workload: "layered non-recursive joins",
		Stages:   stages, N: n, Fanout: fanout, Reps: reps,
	}
	measure := func(opts engine.Options, wantExec string) (wall int64, alloc uint64, err error) {
		for rep := 0; rep < reps; rep++ {
			db := load()
			var before, after runtime.MemStats
			runtime.GC()
			runtime.ReadMemStats(&before)
			r, runErr := pipeline.New(prog, query).Run(pipeline.SemiNaive, db, opts)
			if runErr != nil {
				return 0, 0, runErr
			}
			runtime.ReadMemStats(&after)
			if r.Executor != wantExec {
				return 0, 0, fmt.Errorf("executor = %q, want %q", r.Executor, wantExec)
			}
			if w := r.EvalWall.Nanoseconds(); rep == 0 || w < wall {
				wall = w
			}
			if a := after.TotalAlloc - before.TotalAlloc; rep == 0 || a < alloc {
				alloc = a
			}
		}
		return wall, alloc, nil
	}
	if sc.MaterializeWallNS, sc.MaterializeAllocBytes, err = measure(engine.Options{}, "materialize"); err != nil {
		return nil, err
	}
	streamOpts := engine.Options{Streaming: engine.StreamAuto}
	if sc.StreamWallNS, sc.StreamAllocBytes, err = measure(streamOpts, "stream"); err != nil {
		return nil, err
	}
	if sc.StreamWallNS > 0 {
		sc.Speedup = float64(sc.MaterializeWallNS) / float64(sc.StreamWallNS)
	}
	if sc.MaterializeAllocBytes > 0 {
		sc.AllocRatio = float64(sc.StreamAllocBytes) / float64(sc.MaterializeAllocBytes)
	}
	// One traced streamed run captures the per-operator row counters.
	traced, err := pipeline.New(prog, query).Run(pipeline.SemiNaive, load(),
		engine.Options{Streaming: engine.StreamAuto, Trace: true})
	if err != nil {
		return nil, err
	}
	if traced.Stream != nil {
		sc.Stream = *traced.Stream
	}
	return sc, nil
}

// stageSummary is one pipeline stage aggregated across the sweep's runs.
type stageSummary struct {
	Stage           string `json:"stage"`
	Runs            int    `json:"runs"`
	TotalWallNS     int64  `json:"total_wall_ns"`
	MaxWallNS       int64  `json:"max_wall_ns"`
	TotalAllocs     uint64 `json:"total_allocs"`
	TotalAllocBytes uint64 `json:"total_alloc_bytes"`
}

// summarizeStages folds every run's stage spans into one row per stage
// name, in first-seen order (strategy order is deterministic, so the
// summary is too).
func summarizeStages(runs []metricsRun) []stageSummary {
	index := map[string]int{}
	var out []stageSummary
	for _, r := range runs {
		for _, sp := range r.Spans {
			i, ok := index[sp.Name]
			if !ok {
				i = len(out)
				index[sp.Name] = i
				out = append(out, stageSummary{Stage: sp.Name})
			}
			out[i].Runs++
			out[i].TotalWallNS += sp.Wall.Nanoseconds()
			if w := sp.Wall.Nanoseconds(); w > out[i].MaxWallNS {
				out[i].MaxWallNS = w
			}
			out[i].TotalAllocs += sp.Allocs
			out[i].TotalAllocBytes += sp.AllocBytes
		}
	}
	return out
}

// metricsRun is one strategy's traced evaluation at one worker count.
// Strategies whose transformation is unavailable for the workload (or that
// diverge on it) report Error and nothing else; worker counts above 1 only
// apply to the bottom-up semi-naive strategies, so the top-down baselines
// are emitted once (workers = 1).
type metricsRun struct {
	Strategy   string              `json:"strategy"`
	Workers    int                 `json:"workers"`
	Error      string              `json:"error,omitempty"`
	Answers    int                 `json:"answers"`
	Inferences int                 `json:"inferences"`
	Facts      int                 `json:"facts"`
	Iterations int                 `json:"iterations"`
	MaxArity   int                 `json:"max_idb_arity"`
	WallNS     int64               `json:"wall_ns"`
	Spans      []obsv.Span         `json:"stage_spans,omitempty"`
	Rules      []obsv.RuleStats    `json:"rule_stats,omitempty"`
	Rounds     []obsv.RoundStats   `json:"rounds,omitempty"`
	Strata     []obsv.StratumStats `json:"strata,omitempty"`
	WorkerRows []obsv.WorkerStats  `json:"worker_stats,omitempty"`
	// Storage is the post-evaluation storage shape (arena/index bytes and
	// hash-table load factors); stage spans additionally carry allocs and
	// alloc_bytes since schema v4.
	Storage obsv.StorageStats `json:"storage"`
	// Executor names the bottom-up evaluator that ran ("stream" or
	// "materialize"; empty for top-down strategies) and Stream carries the
	// streaming counters when it is "stream". New in schema v7.
	Executor string            `json:"executor,omitempty"`
	Stream   *obsv.StreamStats `json:"stream,omitempty"`
}

// parseWorkersList parses the -workers flag: a comma-separated list of
// positive worker counts.
func parseWorkersList(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad -workers list %q: want positive counts like 1,2,4,8", s)
		}
		out = append(out, n)
	}
	return out, nil
}

// parallelizable reports whether a strategy goes through the bottom-up
// semi-naive evaluator, where Options.Workers applies.
func parallelizable(s pipeline.Strategy) bool {
	switch s {
	case pipeline.Naive, pipeline.TopDown, pipeline.Tabled:
		return false
	}
	return true
}

func emitJSON(out *os.File, n int, workers []int, mutate, autoplan bool) error {
	pl, load := experiments.E1Pipeline(n)
	doc := metricsDoc{
		Schema:   "factorlog/metrics/v9",
		Tool:     "factorbench",
		Workload: "E1 transitive closure, chain EDB",
		N:        n,
		Query:    pl.Query.String(),
	}
	for _, s := range pipeline.AllStrategies() {
		for _, w := range workers {
			if w > 1 && !parallelizable(s) {
				continue
			}
			opts := engine.Options{Trace: true, MaxFacts: 10_000_000, Workers: w}
			r, err := pl.Run(s, load(), opts)
			if err != nil {
				doc.Runs = append(doc.Runs, metricsRun{Strategy: s.String(), Workers: w, Error: err.Error()})
				continue
			}
			doc.Runs = append(doc.Runs, metricsRun{
				Strategy:   s.String(),
				Workers:    w,
				Answers:    len(r.Answers),
				Inferences: r.Inferences,
				Facts:      r.Facts,
				Iterations: r.Iterations,
				MaxArity:   r.MaxIDBArity,
				WallNS:     r.EvalWall.Nanoseconds(),
				Spans:      r.Spans,
				Rules:      r.Rules,
				Rounds:     r.Rounds,
				Strata:     r.Strata,
				WorkerRows: r.Workers,
				Storage:    r.Storage,
				Executor:   r.Executor,
				Stream:     r.Stream,
			})
		}
	}
	doc.StageSummary = summarizeStages(doc.Runs)
	sc, err := compareExecutors(6, 2000, 1, 5)
	if err != nil {
		return err
	}
	doc.StreamCompare = sc
	if mutate {
		mc, err := compareMutation(n, 8)
		if err != nil {
			return err
		}
		doc.MutateCompare = mc
	}
	if autoplan {
		ac, err := compareAutoplan(n)
		if err != nil {
			return err
		}
		doc.AutoplanCompare = ac
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}
