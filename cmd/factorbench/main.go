// Command factorbench regenerates the reproduction experiments catalogued
// in EXPERIMENTS.md: every figure, worked example, and complexity claim of
// "Argument Reduction by Factoring".
//
// Usage:
//
//	factorbench            # run every experiment
//	factorbench -run E2    # run one experiment
//	factorbench -list      # list experiment IDs and titles
package main

import (
	"flag"
	"fmt"
	"os"

	"factorlog/internal/experiments"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "factorbench:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("factorbench", flag.ContinueOnError)
	one := fs.String("run", "", "run a single experiment by ID (e.g. E2)")
	list := fs.Bool("list", false, "list experiments")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-4s %s\n", e.ID, e.Title)
		}
		return nil
	}

	if *one != "" {
		e, ok := experiments.ByID(*one)
		if !ok {
			return fmt.Errorf("no experiment %q (try -list)", *one)
		}
		return runOne(e)
	}

	for _, e := range experiments.All() {
		if err := runOne(e); err != nil {
			return fmt.Errorf("%s: %w", e.ID, err)
		}
		fmt.Println()
	}
	return nil
}

func runOne(e experiments.Experiment) error {
	tbl, err := e.Run()
	if err != nil {
		return err
	}
	fmt.Print(tbl.Render())
	return nil
}
