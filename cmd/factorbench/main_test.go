package main

import (
	"encoding/json"
	"os"
	"strings"
	"testing"
)

func capture(t *testing.T, args ...string) (string, error) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	runErr := run(args)
	w.Close()
	os.Stdout = old
	var out strings.Builder
	buf := make([]byte, 1<<16)
	for {
		n, err := r.Read(buf)
		out.Write(buf[:n])
		if err != nil {
			break
		}
	}
	return out.String(), runErr
}

func TestList(t *testing.T) {
	out, err := capture(t, "-list")
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"E1", "E2", "E7", "E12"} {
		if !strings.Contains(out, id+" ") && !strings.Contains(out, id+"  ") {
			t.Errorf("missing %s in list:\n%s", id, out)
		}
	}
}

func TestRunSingle(t *testing.T) {
	out, err := capture(t, "-run", "E4")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "symmetric") {
		t.Errorf("E4 output:\n%s", out)
	}
}

func TestRunUnknown(t *testing.T) {
	if _, err := capture(t, "-run", "E99"); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestJSONMetrics(t *testing.T) {
	out, err := capture(t, "-json", "-n", "16")
	if err != nil {
		t.Fatal(err)
	}
	var doc metricsDoc
	if err := json.Unmarshal([]byte(out), &doc); err != nil {
		t.Fatalf("-json output is not valid JSON: %v\n%s", err, out)
	}
	if doc.Schema != "factorlog/metrics/v9" {
		t.Errorf("schema = %q", doc.Schema)
	}
	if doc.MutateCompare != nil {
		t.Error("mutate_compare emitted without -mutate")
	}
	// The v7 stream_compare block: both executors measured, ratios derived,
	// per-operator row counters captured from the traced streamed run.
	sc := doc.StreamCompare
	if sc == nil {
		t.Fatal("stream_compare missing")
	}
	if sc.MaterializeWallNS <= 0 || sc.StreamWallNS <= 0 || sc.Speedup <= 0 || sc.AllocRatio <= 0 {
		t.Errorf("stream_compare not measured: %+v", sc)
	}
	if sc.Stream.Streamed != sc.Stages || sc.Stream.RowsEmitted == 0 {
		t.Errorf("stream_compare counters: %+v", sc.Stream)
	}
	if len(sc.Stream.Ops) == 0 {
		t.Error("stream_compare has no per-operator row counters")
	}
	// The v6 stage summary aggregates pipeline spans across runs.
	stages := map[string]stageSummary{}
	for _, st := range doc.StageSummary {
		stages[st.Stage] = st
	}
	for _, name := range []string{"adorn", "magic", "factor", "optimize", "eval"} {
		st, ok := stages[name]
		if !ok {
			t.Errorf("stage_summary missing %q: %v", name, doc.StageSummary)
			continue
		}
		if st.Runs == 0 || st.TotalWallNS < 0 || st.MaxWallNS > st.TotalWallNS {
			t.Errorf("stage_summary[%s] inconsistent: %+v", name, st)
		}
	}
	if stages["eval"].TotalAllocs == 0 {
		t.Error("eval stage summary has no allocation sample")
	}
	byStrategy := map[string]metricsRun{}
	for _, r := range doc.Runs {
		if r.Workers != 1 {
			t.Errorf("%s: workers = %d with default -workers", r.Strategy, r.Workers)
		}
		byStrategy[r.Strategy] = r
	}
	for _, s := range []string{"semi-naive", "magic", "factored+opt"} {
		r, ok := byStrategy[s]
		if !ok {
			t.Fatalf("missing strategy %s in %v", s, doc.Runs)
		}
		if r.Error != "" {
			t.Errorf("%s failed: %s", s, r.Error)
		}
		if len(r.Rules) == 0 || len(r.Rounds) == 0 {
			t.Errorf("%s missing rule/round stats", s)
		}
		if len(r.Spans) == 0 || r.Spans[len(r.Spans)-1].Name != "eval" {
			t.Errorf("%s spans = %v, want eval last", s, r.Spans)
		}
		if r.Spans[len(r.Spans)-1].Allocs == 0 {
			t.Errorf("%s eval span has no allocation sample", s)
		}
		if r.Storage.Relations == 0 || r.Storage.ArenaBytes == 0 {
			t.Errorf("%s storage stats empty: %+v", s, r.Storage)
		}
	}
	// The paper's headline, machine-checkable: factoring cuts inferences.
	if f, m := byStrategy["factored+opt"], byStrategy["magic"]; f.Inferences >= m.Inferences {
		t.Errorf("factored+opt inferences %d >= magic %d", f.Inferences, m.Inferences)
	}
	// Unavailable strategies are reported, not dropped.
	if byStrategy["counting"].Error == "" {
		t.Error("counting should report its unavailability")
	}
}

func TestJSONMetricsWorkerSweep(t *testing.T) {
	out, err := capture(t, "-json", "-n", "16", "-workers", "1,4")
	if err != nil {
		t.Fatal(err)
	}
	var doc metricsDoc
	if err := json.Unmarshal([]byte(out), &doc); err != nil {
		t.Fatalf("-json output is not valid JSON: %v\n%s", err, out)
	}
	rows := map[string]map[int]metricsRun{}
	for _, r := range doc.Runs {
		if rows[r.Strategy] == nil {
			rows[r.Strategy] = map[int]metricsRun{}
		}
		rows[r.Strategy][r.Workers] = r
	}
	for _, s := range []string{"semi-naive", "magic", "factored+opt"} {
		seq, ok1 := rows[s][1]
		par, ok4 := rows[s][4]
		if !ok1 || !ok4 {
			t.Fatalf("%s: missing worker rows (have %v)", s, rows[s])
		}
		if seq.Error != "" || par.Error != "" {
			t.Fatalf("%s: errors: %q / %q", s, seq.Error, par.Error)
		}
		// The parallel-correctness contract, visible in the metrics.
		if seq.Facts != par.Facts || seq.Answers != par.Answers {
			t.Errorf("%s: workers=1 (%d facts, %d answers) != workers=4 (%d facts, %d answers)",
				s, seq.Facts, seq.Answers, par.Facts, par.Answers)
		}
		if len(par.Strata) == 0 || len(par.WorkerRows) != 4 {
			t.Errorf("%s: parallel row missing strata/worker stats (%d strata, %d workers)",
				s, len(par.Strata), len(par.WorkerRows))
		}
	}
	// Top-down baselines are emitted once, at workers=1.
	for _, s := range []string{"top-down", "tabled", "naive"} {
		if _, ok := rows[s][4]; ok {
			t.Errorf("%s: unexpected workers=4 row", s)
		}
	}
}

func TestMutateCompareJSON(t *testing.T) {
	out, err := capture(t, "-json", "-mutate", "-n", "24")
	if err != nil {
		t.Fatal(err)
	}
	var doc metricsDoc
	if err := json.Unmarshal([]byte(out), &doc); err != nil {
		t.Fatalf("-json -mutate output is not valid JSON: %v", err)
	}
	mc := doc.MutateCompare
	if mc == nil {
		t.Fatal("mutate_compare missing with -mutate")
	}
	for name, ph := range map[string]mutatePhase{"assert": mc.Assert, "retract": mc.Retract} {
		if !ph.Verified {
			t.Errorf("%s phase not verified: %+v", name, ph)
		}
		if ph.IncrementalWallNS <= 0 || ph.ScratchWallNS <= 0 || ph.Speedup <= 0 {
			t.Errorf("%s phase not measured: %+v", name, ph)
		}
		if ph.FinalEpoch != int64(ph.Batches) {
			t.Errorf("%s phase epoch = %d, want %d", name, ph.FinalEpoch, ph.Batches)
		}
	}
	if mc.Assert.NewFacts == 0 {
		t.Errorf("assert phase derived nothing: %+v", mc.Assert)
	}
	if mc.Retract.DeletedFacts == 0 {
		t.Errorf("retract phase deleted nothing: %+v", mc.Retract)
	}
}

func TestMutateCompareText(t *testing.T) {
	out, err := capture(t, "-mutate", "-n", "24")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "tail-extension asserts") ||
		!strings.Contains(out, "source-tuple retracts") ||
		!strings.Contains(out, "verified=true") {
		t.Errorf("-mutate text output:\n%s", out)
	}
}
