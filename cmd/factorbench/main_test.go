package main

import (
	"os"
	"strings"
	"testing"
)

func capture(t *testing.T, args ...string) (string, error) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	runErr := run(args)
	w.Close()
	os.Stdout = old
	var out strings.Builder
	buf := make([]byte, 1<<16)
	for {
		n, err := r.Read(buf)
		out.Write(buf[:n])
		if err != nil {
			break
		}
	}
	return out.String(), runErr
}

func TestList(t *testing.T) {
	out, err := capture(t, "-list")
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"E1", "E2", "E7", "E12"} {
		if !strings.Contains(out, id+" ") && !strings.Contains(out, id+"  ") {
			t.Errorf("missing %s in list:\n%s", id, out)
		}
	}
}

func TestRunSingle(t *testing.T) {
	out, err := capture(t, "-run", "E4")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "symmetric") {
		t.Errorf("E4 output:\n%s", out)
	}
}

func TestRunUnknown(t *testing.T) {
	if _, err := capture(t, "-run", "E99"); err == nil {
		t.Error("unknown experiment accepted")
	}
}
