// Command promcheck validates a Prometheus text-exposition document read
// from stdin: every sample line must parse, every family must carry a
// # TYPE, and histogram series must be internally consistent (ascending le
// labels, cumulative bucket counts, +Inf matching _count). It prints the
// sample count on success and fails loudly otherwise — CI pipes factorlogd's
// /metrics through it so a malformed exposition breaks the build, not the
// scrape.
//
// Usage:
//
//	curl -fsS http://localhost:8080/metrics | promcheck
package main

import (
	"fmt"
	"io"
	"os"

	"factorlog/internal/obsv"
)

func main() {
	body, err := io.ReadAll(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "promcheck: read stdin:", err)
		os.Exit(1)
	}
	n, err := obsv.ParsePromText(string(body))
	if err != nil {
		fmt.Fprintln(os.Stderr, "promcheck:", err)
		os.Exit(1)
	}
	if n == 0 {
		fmt.Fprintln(os.Stderr, "promcheck: no samples in input")
		os.Exit(1)
	}
	fmt.Printf("promcheck: ok, %d samples\n", n)
}
