// Command promcheck validates a Prometheus text-exposition document read
// from stdin: every sample line must parse, every family must carry a
// # TYPE, and histogram series must be internally consistent (ascending le
// labels, cumulative bucket counts, +Inf matching _count). It prints the
// sample count on success and fails loudly otherwise — CI pipes factorlogd's
// /metrics through it so a malformed exposition breaks the build, not the
// scrape.
//
// -require takes a comma-separated list of family names that must be
// declared in the exposition; a missing family fails the check. CI uses it
// to pin the metric surface (a renamed or dropped family breaks dashboards
// as surely as a parse error breaks scrapes).
//
// Usage:
//
//	curl -fsS http://localhost:8080/metrics | promcheck
//	curl -fsS http://localhost:8080/metrics | promcheck -require factorlog_epoch,factorlog_base_facts
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"factorlog/internal/obsv"
)

func main() {
	require := flag.String("require", "", "comma-separated metric families that must be declared")
	flag.Parse()

	body, err := io.ReadAll(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "promcheck: read stdin:", err)
		os.Exit(1)
	}
	n, err := obsv.ParsePromText(string(body))
	if err != nil {
		fmt.Fprintln(os.Stderr, "promcheck:", err)
		os.Exit(1)
	}
	if n == 0 {
		fmt.Fprintln(os.Stderr, "promcheck: no samples in input")
		os.Exit(1)
	}
	if *require != "" {
		fams, err := obsv.PromFamilies(string(body))
		if err != nil {
			fmt.Fprintln(os.Stderr, "promcheck:", err)
			os.Exit(1)
		}
		var missing []string
		for _, fam := range strings.Split(*require, ",") {
			fam = strings.TrimSpace(fam)
			if fam == "" {
				continue
			}
			if _, ok := fams[fam]; !ok {
				missing = append(missing, fam)
			}
		}
		if len(missing) > 0 {
			fmt.Fprintf(os.Stderr, "promcheck: missing required families: %s\n", strings.Join(missing, ", "))
			os.Exit(1)
		}
	}
	fmt.Printf("promcheck: ok, %d samples\n", n)
}
