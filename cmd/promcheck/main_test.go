package main

import (
	"strings"
	"testing"

	"factorlog/internal/obsv"
)

// The command is a thin wrapper over obsv.ParsePromText (tested in depth in
// internal/obsv); this only pins the wiring — valid input parses, junk and
// empty input do not.
func TestParseWiring(t *testing.T) {
	valid := strings.Join([]string{
		"# HELP factorlog_queries_total Total queries.",
		"# TYPE factorlog_queries_total counter",
		"factorlog_queries_total 42",
		"",
	}, "\n")
	n, err := obsv.ParsePromText(valid)
	if err != nil || n != 1 {
		t.Fatalf("valid input: n=%d err=%v", n, err)
	}
	if _, err := obsv.ParsePromText("not prometheus at all\n"); err == nil {
		t.Error("junk input accepted")
	}
}
