package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"sync"
	"testing"
	"time"

	"factorlog/internal/obsv"
)

const tcProgram = `
t(X, Y) :- t(X, W), t(W, Y).
t(X, Y) :- e(X, W), t(W, Y).
t(X, Y) :- t(X, W), e(W, Y).
t(X, Y) :- e(X, Y).

e(5, 6).
e(6, 7).
e(7, 8).
e(1, 2).

?- t(5, Y).
`

// divergentProgram never reaches a fixpoint; only a deadline, cancellation,
// or budget stops it.
const divergentProgram = `
n(z).
n(f(X)) :- n(X).
`

func testServer(t *testing.T, src string, cfg config) (*server, *httptest.Server) {
	t.Helper()
	// Tests that don't configure admission get a limiter wide enough to
	// never interfere; admission-specific tests set maxConcurrency
	// explicitly to exercise queueing and shedding.
	if cfg.maxConcurrency == 0 {
		cfg.maxConcurrency = 1024
		cfg.maxQueue = 256
	}
	s, err := newServer(src, "", cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.routes())
	t.Cleanup(ts.Close)
	t.Cleanup(func() { s.Close() })
	return s, ts
}

func getQuery(t *testing.T, ts *httptest.Server, params url.Values) (int, queryResponse, string) {
	t.Helper()
	resp, err := http.Get(ts.URL + "/query?" + params.Encode())
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var qr queryResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(body, &qr); err != nil {
			t.Fatalf("bad response JSON: %v\n%s", err, body)
		}
	}
	return resp.StatusCode, qr, string(body)
}

func TestQueryCacheMissThenHit(t *testing.T) {
	_, ts := testServer(t, tcProgram, config{strategy: "magic", timeout: 5 * time.Second})

	// First query for this (predicate, adornment, strategy, constants)
	// shape compiles the plan; the identical repeat reuses it.
	status, qr, body := getQuery(t, ts, url.Values{"q": {"t(5,Y)"}})
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, body)
	}
	if qr.PlanCache != "miss" {
		t.Errorf("first query: plan_cache = %q, want miss", qr.PlanCache)
	}
	want := []string{"(6)", "(7)", "(8)"}
	if fmt.Sprint(qr.Answers) != fmt.Sprint(want) {
		t.Errorf("answers = %v, want %v", qr.Answers, want)
	}

	status, qr, body = getQuery(t, ts, url.Values{"q": {"t(5,Y)"}})
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, body)
	}
	if qr.PlanCache != "hit" {
		t.Errorf("repeat query: plan_cache = %q, want hit", qr.PlanCache)
	}
	if fmt.Sprint(qr.Answers) != fmt.Sprint(want) {
		t.Errorf("repeat answers = %v, want %v", qr.Answers, want)
	}

	// Same adornment, different constant: plans specialize on the bound
	// constants, so this must compile its own plan and find its own answers.
	status, qr, _ = getQuery(t, ts, url.Values{"q": {"t(6,Y)"}})
	if status != http.StatusOK || qr.PlanCache != "miss" {
		t.Errorf("t(6,Y): status %d plan_cache %q, want 200 miss", status, qr.PlanCache)
	}
	if fmt.Sprint(qr.Answers) != fmt.Sprint([]string{"(7)", "(8)"}) {
		t.Errorf("t(6,Y) answers = %v", qr.Answers)
	}
}

// TestQueryStreamingExecutor covers the stream request knob: opted-in
// queries run the streaming executor (reporting which strata streamed and
// the iterator row flow), identical answers to the default materializing
// run, and a malformed stream value is rejected up front.
func TestQueryStreamingExecutor(t *testing.T) {
	_, ts := testServer(t, tcProgram, config{strategy: "magic", timeout: 5 * time.Second})

	status, plain, body := getQuery(t, ts, url.Values{"q": {"t(5,Y)"}})
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, body)
	}
	if plain.Executor != "materialize" || plain.Stream != nil {
		t.Errorf("default run: executor=%q stream=%v, want materialize/nil", plain.Executor, plain.Stream)
	}

	status, streamed, body := getQuery(t, ts, url.Values{"q": {"t(5,Y)"}, "stream": {"1"}})
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, body)
	}
	if streamed.Executor != "stream" || streamed.Stream == nil {
		t.Fatalf("streamed run: executor=%q stream=%v", streamed.Executor, streamed.Stream)
	}
	if streamed.Stream.Streamed == 0 || streamed.Stream.RowsEmitted == 0 {
		t.Errorf("stream counters empty: %+v", streamed.Stream)
	}
	if fmt.Sprint(streamed.Answers) != fmt.Sprint(plain.Answers) {
		t.Errorf("answers differ: %v vs %v", streamed.Answers, plain.Answers)
	}

	status, _, body = getQuery(t, ts, url.Values{"q": {"t(5,Y)"}, "stream": {"maybe"}})
	if status != http.StatusBadRequest {
		t.Errorf("bad stream value: status %d, want 400: %s", status, body)
	}
}

func TestMetricsReportCacheHits(t *testing.T) {
	_, ts := testServer(t, tcProgram, config{strategy: "magic", timeout: 5 * time.Second})
	for i := 0; i < 3; i++ {
		if status, _, body := getQuery(t, ts, url.Values{"q": {"t(5,Y)"}}); status != http.StatusOK {
			t.Fatalf("status %d: %s", status, body)
		}
	}
	resp, err := http.Get(ts.URL + "/metrics?format=json")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var stats obsv.ServerStats
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if stats.Schema != metricsSchema {
		t.Errorf("schema = %q, want %q", stats.Schema, metricsSchema)
	}
	if stats.PlanCache.Hits < 2 {
		t.Errorf("plan cache hits = %d, want >= 2", stats.PlanCache.Hits)
	}
	if stats.Queries != 3 || stats.Errors != 0 {
		t.Errorf("queries/errors = %d/%d, want 3/0", stats.Queries, stats.Errors)
	}
	h := stats.Latency["magic"]
	if h == nil || h.Count != 3 {
		t.Errorf("latency histogram for magic = %+v, want count 3", h)
	}

	// The text rendering carries the same counters.
	resp2, err := http.Get(ts.URL + "/metrics?format=text")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	text, _ := io.ReadAll(resp2.Body)
	if !strings.Contains(string(text), "plan cache:") || !strings.Contains(string(text), "magic") {
		t.Errorf("text metrics missing expected lines:\n%s", text)
	}
}

// TestConcurrentQueries drives 32 concurrent in-flight requests (mixed
// shapes: two constants, two strategies, both worker counts) through one
// server and checks every response; under -race this also exercises the
// shared plan cache and pipeline memoization for data races.
func TestConcurrentQueries(t *testing.T) {
	_, ts := testServer(t, tcProgram, config{strategy: "magic", timeout: 10 * time.Second})

	type shape struct {
		q        string
		strategy string
		workers  string
		want     string
	}
	shapes := []shape{
		{"t(5,Y)", "magic", "1", "[(6) (7) (8)]"},
		{"t(5,Y)", "factored+opt", "2", "[(6) (7) (8)]"},
		{"t(6,Y)", "magic", "2", "[(7) (8)]"},
		{"t(6,Y)", "semi-naive", "1", "[(7) (8)]"},
	}
	const n = 32
	var wg sync.WaitGroup
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		sh := shapes[i%len(shapes)]
		wg.Add(1)
		go func() {
			// No t.Fatal here: test helpers must not FailNow off the test
			// goroutine, so failures flow through the channel.
			defer wg.Done()
			params := url.Values{"q": {sh.q}, "strategy": {sh.strategy}, "workers": {sh.workers}}
			resp, err := http.Get(ts.URL + "/query?" + params.Encode())
			if err != nil {
				errs <- err
				return
			}
			defer resp.Body.Close()
			body, err := io.ReadAll(resp.Body)
			if err != nil {
				errs <- err
				return
			}
			if resp.StatusCode != http.StatusOK {
				errs <- fmt.Errorf("%s/%s: status %d: %s", sh.q, sh.strategy, resp.StatusCode, body)
				return
			}
			var qr queryResponse
			if err := json.Unmarshal(body, &qr); err != nil {
				errs <- fmt.Errorf("%s/%s: %v", sh.q, sh.strategy, err)
				return
			}
			if got := fmt.Sprint(qr.Answers); got != sh.want {
				errs <- fmt.Errorf("%s/%s: answers %s, want %s", sh.q, sh.strategy, got, sh.want)
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	resp, err := http.Get(ts.URL + "/metrics?format=json")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var stats obsv.ServerStats
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if stats.Queries != n {
		t.Errorf("queries = %d, want %d", stats.Queries, n)
	}
	// 4 distinct plan shapes; everything beyond the builds must have hit.
	if stats.PlanCache.Entries != len(shapes) {
		t.Errorf("cache entries = %d, want %d", stats.PlanCache.Entries, len(shapes))
	}
	if stats.PlanCache.Hits != n-int64(len(shapes)) {
		t.Errorf("cache hits = %d, want %d", stats.PlanCache.Hits, n-len(shapes))
	}
}

func TestQueryDeadline(t *testing.T) {
	for _, workers := range []string{"1", "4"} {
		_, ts := testServer(t, divergentProgram, config{strategy: "semi-naive", timeout: 10 * time.Second})
		start := time.Now()
		status, _, body := getQuery(t, ts, url.Values{
			"q": {"n(X)"}, "timeout_ms": {"100"}, "workers": {workers},
		})
		if status != http.StatusGatewayTimeout {
			t.Fatalf("workers=%s: status %d, want %d: %s", workers, status, http.StatusGatewayTimeout, body)
		}
		if !strings.Contains(body, "deadline") {
			t.Errorf("workers=%s: error body %q does not mention the deadline", workers, body)
		}
		if elapsed := time.Since(start); elapsed > 10*time.Second {
			t.Errorf("workers=%s: deadline enforcement took %v", workers, elapsed)
		}
	}
}

func TestQueryErrors(t *testing.T) {
	_, ts := testServer(t, tcProgram, config{strategy: "magic", timeout: time.Second})

	status, _, body := getQuery(t, ts, url.Values{})
	if status != http.StatusBadRequest {
		t.Errorf("missing q: status %d: %s", status, body)
	}
	status, _, body = getQuery(t, ts, url.Values{"q": {"t(5,"}})
	if status != http.StatusBadRequest {
		t.Errorf("malformed q: status %d: %s", status, body)
	}
	status, _, body = getQuery(t, ts, url.Values{"q": {"t(5,Y)"}, "strategy": {"nope"}})
	if status != http.StatusBadRequest {
		t.Errorf("bad strategy: status %d: %s", status, body)
	}
}

// TestQueryRepeatedVariables reproduces the cache-aliasing bug end to end:
// a plan cached for t(X,Y) must not serve t(X,X), whose answers are only
// the diagonal (empty here — the edge graph is acyclic).
func TestQueryRepeatedVariables(t *testing.T) {
	_, ts := testServer(t, tcProgram, config{strategy: "magic", timeout: 5 * time.Second})

	status, qr, body := getQuery(t, ts, url.Values{"q": {"t(X,Y)"}})
	if status != http.StatusOK {
		t.Fatalf("t(X,Y): status %d: %s", status, body)
	}
	if qr.AnswerCount != 7 {
		t.Errorf("t(X,Y): %d answers, want 7", qr.AnswerCount)
	}

	status, qr, body = getQuery(t, ts, url.Values{"q": {"t(X,X)"}})
	if status != http.StatusOK {
		t.Fatalf("t(X,X): status %d: %s", status, body)
	}
	if qr.PlanCache != "miss" {
		t.Errorf("t(X,X) after t(X,Y): plan_cache = %q, want miss", qr.PlanCache)
	}
	if qr.AnswerCount != 0 {
		t.Errorf("t(X,X): answers %v, want none", qr.Answers)
	}
}

func TestQueryMethodNotAllowed(t *testing.T) {
	_, ts := testServer(t, tcProgram, config{strategy: "magic", timeout: time.Second})
	req, err := http.NewRequest(http.MethodPut, ts.URL+"/query", strings.NewReader(`{"query":"t(5,Y)"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("PUT /query: status %d, want %d", resp.StatusCode, http.StatusMethodNotAllowed)
	}
	if allow := resp.Header.Get("Allow"); allow != "GET, POST" {
		t.Errorf("Allow = %q, want \"GET, POST\"", allow)
	}
}

func TestQueryBodyTooLarge(t *testing.T) {
	_, ts := testServer(t, tcProgram, config{strategy: "magic", timeout: time.Second})
	// A syntactically valid JSON document just over the 1 MiB cap.
	huge := fmt.Sprintf(`{"query": "t(5,Y)", "strategy": %q}`, strings.Repeat("x", maxQueryBody))
	resp, err := http.Post(ts.URL+"/query", "application/json", strings.NewReader(huge))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized body: status %d, want %d: %s", resp.StatusCode, http.StatusRequestEntityTooLarge, body)
	}
}

func TestQueryPost(t *testing.T) {
	_, ts := testServer(t, tcProgram, config{strategy: "magic", timeout: 5 * time.Second})
	resp, err := http.Post(ts.URL+"/query", "application/json",
		strings.NewReader(`{"query": "t(5,Y)", "strategy": "sup-magic"}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var qr queryResponse
	if err := json.NewDecoder(resp.Body).Decode(&qr); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK || len(qr.Answers) != 3 {
		t.Errorf("POST: status %d answers %v", resp.StatusCode, qr.Answers)
	}
	if qr.Strategy != "sup-magic" {
		t.Errorf("strategy = %q, want sup-magic", qr.Strategy)
	}
}

func TestHealthz(t *testing.T) {
	_, ts := testServer(t, tcProgram, config{strategy: "magic"})
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var h map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK || h["status"] != "ok" {
		t.Errorf("healthz: status %d body %v", resp.StatusCode, h)
	}
	if h["rules"] != float64(4) {
		t.Errorf("rules = %v, want 4", h["rules"])
	}
}

func TestWarmupPrimesDeclaredQueries(t *testing.T) {
	s, ts := testServer(t, tcProgram, config{strategy: "magic", timeout: 5 * time.Second})
	if warns := s.warmup(); len(warns) != 0 {
		t.Fatalf("warmup warnings: %v", warns)
	}
	// The program declares ?- t(5, Y); after warmup its first request hits.
	status, qr, body := getQuery(t, ts, url.Values{"q": {"t(5, Y)"}})
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, body)
	}
	if qr.PlanCache != "hit" {
		t.Errorf("post-warmup query: plan_cache = %q, want hit", qr.PlanCache)
	}
}
