package main

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"
	"time"

	"factorlog/internal/obsv"
)

// example44Program is Example 4.4 of the paper (a symmetric program) with a
// small EDB consistent with its presumed regularities: every e target is in
// r1 and r2.
const example44Program = `
p(X, Y) :- l1(X), p(X, U), p(X, V), c(U, V, W), p(W, Y), r1(Y).
p(X, Y) :- l2(X), p(X, U), p(X, V), c(U, V, W), p(W, Y), r2(Y).
p(X, Y) :- e(X, Y).

l1(5). l2(5).
e(5, 6). e(6, 7). e(7, 8).
c(6, 6, 6). c(6, 6, 7). c(7, 7, 7).
r1(6). r1(7). r1(8).
r2(6). r2(7). r2(8).

?- p(5, Y).
`

const example44Constraints = `
r1(Y) :- e(X, Y).
r2(Y) :- e(X, Y).
`

func example44Server(t *testing.T, cfg config) (*server, *httptest.Server) {
	t.Helper()
	if cfg.maxConcurrency == 0 {
		cfg.maxConcurrency = 1024
		cfg.maxQueue = 256
	}
	s, err := newServer(example44Program, example44Constraints, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.routes())
	t.Cleanup(ts.Close)
	return s, ts
}

func getBody(t *testing.T, url string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, body
}

// TestExplainPlan covers explain=plan: the compiled plan is described — the
// applied reductions, the transformed rules, the stratum schedule, and the
// plan-cache disposition — without evaluating the query.
func TestExplainPlan(t *testing.T) {
	srv, ts := example44Server(t, config{strategy: "factored", timeout: 5 * time.Second})
	srv.warmup()

	resp, body := getBody(t, ts.URL+"/query?"+url.Values{
		"q": {"p(5, Y)"}, "explain": {"plan"},
	}.Encode())
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var er explainResponse
	if err := json.Unmarshal(body, &er); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, body)
	}
	if er.Mode != "plan" || er.Plan == nil {
		t.Fatalf("mode=%q plan=%v", er.Mode, er.Plan)
	}
	if er.Result != nil || er.Trace != nil {
		t.Error("explain=plan evaluated the query")
	}
	joined := strings.Join(er.Plan.Reductions, "\n")
	if !strings.Contains(joined, "magic sets") || !strings.Contains(joined, "factoring (class symmetric") {
		t.Errorf("reductions missing magic/factoring: %v", er.Plan.Reductions)
	}
	if len(er.Plan.Strata) == 0 {
		t.Error("no stratum schedule")
	}
	// The streaming classification is part of every plan: the factored
	// program's seed strata stream, and their operator trees ride along.
	// CI greps the response for the "executor": "stream" literal.
	streamed := 0
	for _, st := range er.Plan.Strata {
		if st.Executor == "stream" {
			streamed++
			if len(st.Plans) == 0 || st.Plans[0].Root == nil {
				t.Errorf("stratum %d: streamed without operator tree", st.Index)
			}
		}
	}
	if streamed == 0 {
		t.Errorf("no streamed stratum in plan: %s", body)
	}
	if !strings.Contains(string(body), `"executor": "stream"`) {
		t.Error(`response body missing "executor": "stream" literal`)
	}
	// Warmup compiled the declared ?- p(5, Y) plan, so this lookup hits.
	if er.PlanCache.Disposition != "hit" {
		t.Errorf("plan_cache disposition = %q, want hit (warmed)", er.PlanCache.Disposition)
	}
	if er.PlanCache.CompileWallNS <= 0 {
		t.Errorf("compile_wall_ns = %d, want > 0", er.PlanCache.CompileWallNS)
	}
	if er.QueryID == "" || resp.Header.Get(queryIDHeader) != er.QueryID {
		t.Errorf("query_id %q / header %q mismatch", er.QueryID, resp.Header.Get(queryIDHeader))
	}
}

// TestExplainAnalyzeExample44 is the acceptance path: EXPLAIN ANALYZE on
// Example 4.4 returns a span tree naming each pipeline stage and at least
// one applied reduction, with per-stratum timings under parallel eval.
func TestExplainAnalyzeExample44(t *testing.T) {
	srv, ts := example44Server(t, config{strategy: "factored", timeout: 5 * time.Second})
	srv.warmup()

	resp, body := getBody(t, ts.URL+"/query?"+url.Values{
		"q": {"p(5, Y)"}, "explain": {"analyze"}, "workers": {"2"},
	}.Encode())
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var er explainResponse
	if err := json.Unmarshal(body, &er); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, body)
	}
	if er.Mode != "analyze" || er.Plan == nil || er.Result == nil || er.Trace == nil {
		t.Fatalf("incomplete analyze response: %s", body)
	}
	if len(er.Plan.Reductions) == 0 {
		t.Error("no applied reductions")
	}
	if er.Result.AnswerCount == 0 {
		t.Errorf("no answers: %v", er.Result)
	}
	// The span tree names every pipeline stage of the factored strategy and
	// carries per-stratum timings from the parallel evaluator.
	for _, stage := range []string{"adorn", "magic", "factor", "eval", "stratum", "round"} {
		if !strings.Contains(er.Profile, stage) {
			t.Errorf("profile missing %q:\n%s", stage, er.Profile)
		}
	}
	var strata int
	var walk func(raw json.RawMessage)
	type spanNode struct {
		Name     string            `json:"name"`
		Stratum  *int              `json:"stratum"`
		WallNS   int64             `json:"wall_ns"`
		Children []json.RawMessage `json:"children"`
	}
	walk = func(raw json.RawMessage) {
		var n spanNode
		if err := json.Unmarshal(raw, &n); err != nil {
			t.Fatal(err)
		}
		if n.Name == "stratum" {
			strata++
			if n.Stratum == nil {
				t.Error("stratum span without stratum index")
			}
		}
		for _, c := range n.Children {
			walk(c)
		}
	}
	rootRaw, err := json.Marshal(er.Trace.Root)
	if err != nil {
		t.Fatal(err)
	}
	walk(rootRaw)
	if strata == 0 {
		t.Errorf("no per-stratum spans in trace:\n%s", er.Profile)
	}
}

// TestQueryIDOnErrors checks the satellite: typed error responses carry the
// query ID in both the header and the body.
func TestQueryIDOnErrors(t *testing.T) {
	_, ts := testServer(t, divergentProgram, config{strategy: "semi-naive", timeout: 5 * time.Second})

	// 422: fact budget exceeded.
	resp, body := getBody(t, ts.URL+"/query?"+url.Values{
		"q": {"n(Y)"}, "budget": {"10"},
	}.Encode())
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("status %d, want 422: %s", resp.StatusCode, body)
	}
	var er errorResponse
	if err := json.Unmarshal(body, &er); err != nil {
		t.Fatal(err)
	}
	if er.QueryID == "" || resp.Header.Get(queryIDHeader) != er.QueryID {
		t.Errorf("422 query_id %q / header %q", er.QueryID, resp.Header.Get(queryIDHeader))
	}

	// 400: parse failure still mints and returns an ID.
	resp, body = getBody(t, ts.URL+"/query?q=%28broken")
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d, want 400: %s", resp.StatusCode, body)
	}
	if err := json.Unmarshal(body, &er); err != nil {
		t.Fatal(err)
	}
	if er.QueryID == "" || resp.Header.Get(queryIDHeader) != er.QueryID {
		t.Errorf("400 query_id %q / header %q", er.QueryID, resp.Header.Get(queryIDHeader))
	}
}

// TestMetricsPrometheusDefault checks /metrics serves valid Prometheus text
// exposition by default while ?format=json keeps the v5 document.
func TestMetricsPrometheusDefault(t *testing.T) {
	_, ts := testServer(t, tcProgram, config{strategy: "magic", timeout: 5 * time.Second})
	if code, _, body := getQuery(t, ts, url.Values{"q": {"t(5, Y)"}}); code != http.StatusOK {
		t.Fatalf("query failed: %d %s", code, body)
	}

	resp, body := getBody(t, ts.URL+"/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Errorf("Content-Type = %q, want Prometheus text v0.0.4", ct)
	}
	n, err := obsv.ParsePromText(string(body))
	if err != nil {
		t.Fatalf("exposition does not parse: %v\n%s", err, body)
	}
	if n < 30 {
		t.Errorf("only %d samples", n)
	}
	for _, want := range []string{
		"factorlog_queries_total 1",
		"factorlog_query_duration_seconds_bucket",
		"factorlog_plan_cache_misses_total 1",
	} {
		if !strings.Contains(string(body), want) {
			t.Errorf("exposition missing %q", want)
		}
	}

	resp, body = getBody(t, ts.URL+"/metrics?format=json")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("json status %d", resp.StatusCode)
	}
	var stats obsv.ServerStats
	if err := json.Unmarshal(body, &stats); err != nil {
		t.Fatalf("bad JSON metrics: %v", err)
	}
	if stats.Schema != metricsSchema {
		t.Errorf("schema %q, want %q", stats.Schema, metricsSchema)
	}
	if stats.Rounds == nil || stats.Rounds.Count != 1 {
		t.Errorf("rounds histogram not recorded: %+v", stats.Rounds)
	}

	if resp, _ := getBody(t, ts.URL+"/metrics?format=bogus"); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bogus format status %d, want 400", resp.StatusCode)
	}
}

// TestSlowlogAndTraceLookup drives a query past a tiny slow threshold and
// fetches it back through /debug/slowlog and /debug/trace/{id}.
func TestSlowlogAndTraceLookup(t *testing.T) {
	_, ts := testServer(t, tcProgram, config{
		strategy: "magic", timeout: 5 * time.Second,
		traceSample: 1, slowQuery: time.Nanosecond,
	})

	resp, body := getBody(t, ts.URL+"/query?"+url.Values{"q": {"t(5, Y)"}}.Encode())
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("query status %d: %s", resp.StatusCode, body)
	}
	qid := resp.Header.Get(queryIDHeader)
	if qid == "" {
		t.Fatal("no query ID header")
	}

	resp, body = getBody(t, ts.URL+"/debug/slowlog")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("slowlog status %d", resp.StatusCode)
	}
	var slow struct {
		Total  int64             `json:"total"`
		Traces []json.RawMessage `json:"traces"`
	}
	if err := json.Unmarshal(body, &slow); err != nil {
		t.Fatal(err)
	}
	if slow.Total != 1 || len(slow.Traces) != 1 {
		t.Errorf("slowlog total=%d traces=%d, want 1/1", slow.Total, len(slow.Traces))
	}
	if !strings.Contains(string(body), qid) {
		t.Errorf("slowlog does not mention %s:\n%s", qid, body)
	}

	resp, body = getBody(t, ts.URL+"/debug/trace/"+qid)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("trace status %d: %s", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), `"name": "eval"`) && !strings.Contains(string(body), `"name":"eval"`) {
		t.Errorf("trace for %s has no eval span:\n%s", qid, body)
	}

	if resp, _ := getBody(t, ts.URL+"/debug/trace/q-nope-0"); resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown trace status %d, want 404", resp.StatusCode)
	}

	// Sampled metrics counters follow.
	_, body = getBody(t, ts.URL+"/metrics?format=json")
	var stats obsv.ServerStats
	if err := json.Unmarshal(body, &stats); err != nil {
		t.Fatal(err)
	}
	if stats.TracedQueries != 1 || stats.SlowQueries != 1 {
		t.Errorf("traced=%d slow=%d, want 1/1", stats.TracedQueries, stats.SlowQueries)
	}
}
