package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"factorlog/internal/ast"
	"factorlog/internal/cq"
	"factorlog/internal/engine"
	"factorlog/internal/obsv"
	"factorlog/internal/parser"
	"factorlog/internal/pipeline"
)

// metricsSchema names the /metrics document layout; v1/v2 are factorbench
// evaluation-metrics schemas, v3 lacked storage_high_water and per-span
// allocation counters.
const metricsSchema = "factorlog/metrics/v4"

// statusClientClosedRequest is the de-facto code (nginx) for "the client
// went away before we could answer"; no standard code fits.
const statusClientClosedRequest = 499

// maxQueryBody caps a POST /query body; a query request is a few hundred
// bytes of JSON, so 1 MiB is generous while keeping arbitrary clients from
// streaming unbounded input into the decoder.
const maxQueryBody = 1 << 20

type config struct {
	strategy string
	workers  int
	budget   int
	timeout  time.Duration
}

// server holds the immutable program state shared by all requests and the
// mutable serving metrics.
type server struct {
	prog        *ast.Program
	hash        string
	constraints []ast.Rule
	baseEDB     []ast.Atom
	declared    []ast.Atom // ?- queries from the program file, warmed at startup

	cache       *pipeline.PlanCache
	defStrategy pipeline.Strategy
	defOpts     engine.Options
	timeout     time.Duration
	start       time.Time

	inflight  atomic.Int64
	mu        sync.Mutex // guards the obsv records below
	queries   int64
	errors    int64
	latency   map[string]*obsv.Histogram
	storageHW obsv.StorageStats // heaviest per-request storage footprint
}

func newServer(src, constraints string, cfg config) (*server, error) {
	u, err := parser.Parse(src)
	if err != nil {
		return nil, err
	}
	var tgds []ast.Rule
	if constraints != "" {
		cp, err := parser.ParseProgram(constraints)
		if err != nil {
			return nil, err
		}
		for _, r := range cp.Rules {
			if err := cq.ValidateTGD(r); err != nil {
				return nil, err
			}
			tgds = append(tgds, r)
		}
	}
	strategy, err := strategyByName(cfg.strategy)
	if err != nil {
		return nil, err
	}
	prog := u.Program()
	return &server{
		prog:        prog,
		hash:        pipeline.HashProgram(prog, tgds),
		constraints: tgds,
		baseEDB:     u.Facts,
		declared:    u.Queries,
		cache:       pipeline.NewPlanCache(),
		defStrategy: strategy,
		defOpts: engine.Options{
			Workers:  cfg.workers,
			MaxFacts: cfg.budget,
		},
		timeout: cfg.timeout,
		start:   time.Now(),
		latency: map[string]*obsv.Histogram{},
	}, nil
}

// warmup compiles a plan for every ?- query declared in the program file
// under the default strategy, so the first real request finds a warm cache.
// Failures are reported, not fatal: a program may declare queries that the
// default strategy cannot transform.
func (s *server) warmup() []string {
	var warns []string
	for _, q := range s.declared {
		if _, _, err := s.cache.Lookup(s.prog, s.hash, s.constraints, q, s.defStrategy); err != nil {
			warns = append(warns, fmt.Sprintf("%s: %v", q, err))
		}
	}
	return warns
}

func (s *server) routes() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/query", s.handleQuery)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/metrics", s.handleMetrics)
	return mux
}

// queryRequest is the decoded /query input (query-string or JSON body).
type queryRequest struct {
	Query     string `json:"query"`
	Strategy  string `json:"strategy,omitempty"`
	Workers   int    `json:"workers,omitempty"`
	Budget    int    `json:"budget,omitempty"`
	TimeoutMS int    `json:"timeout_ms,omitempty"`
}

// queryResponse is the /query output.
type queryResponse struct {
	Query       string   `json:"query"`
	Strategy    string   `json:"strategy"`
	Answers     []string `json:"answers"`
	AnswerCount int      `json:"answer_count"`
	Facts       int      `json:"facts"`
	Inferences  int      `json:"inferences"`
	Iterations  int      `json:"iterations"`
	PlanCache   string   `json:"plan_cache"` // "hit" or "miss"
	EvalWallNS  int64    `json:"eval_wall_ns"`
	TotalWallNS int64    `json:"total_wall_ns"`
}

type errorResponse struct {
	Error string `json:"error"`
}

func decodeQueryRequest(w http.ResponseWriter, r *http.Request) (queryRequest, error) {
	var req queryRequest
	switch r.Method {
	case http.MethodGet:
		q := r.URL.Query()
		req.Query = q.Get("q")
		req.Strategy = q.Get("strategy")
		for name, dst := range map[string]*int{
			"workers": &req.Workers, "budget": &req.Budget, "timeout_ms": &req.TimeoutMS,
		} {
			if v := q.Get(name); v != "" {
				n, err := strconv.Atoi(v)
				if err != nil {
					return req, fmt.Errorf("bad %s: %v", name, err)
				}
				*dst = n
			}
		}
	case http.MethodPost:
		r.Body = http.MaxBytesReader(w, r.Body, maxQueryBody)
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			var tooBig *http.MaxBytesError
			if errors.As(err, &tooBig) {
				return req, fmt.Errorf("request body exceeds %d bytes: %w", maxQueryBody, err)
			}
			return req, fmt.Errorf("bad JSON body: %v", err)
		}
	default:
		// Unreachable from handleQuery, which rejects other methods with
		// 405 before decoding; kept as a guard for new callers.
		return req, fmt.Errorf("method %s not allowed", r.Method)
	}
	if strings.TrimSpace(req.Query) == "" {
		return req, errors.New("missing query (GET ?q=... or POST {\"query\":...})")
	}
	return req, nil
}

// parseQueryAtom accepts "t(5,Y)" with optional "?-" prefix and trailing
// dot, matching what users paste from .dl files.
func parseQueryAtom(q string) (ast.Atom, error) {
	q = strings.TrimSpace(q)
	q = strings.TrimPrefix(q, "?-")
	q = strings.TrimSuffix(strings.TrimSpace(q), ".")
	return parser.ParseAtom(q)
}

func (s *server) handleQuery(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	if r.Method != http.MethodGet && r.Method != http.MethodPost {
		w.Header().Set("Allow", "GET, POST")
		s.fail(w, "", http.StatusMethodNotAllowed, fmt.Errorf("method %s not allowed", r.Method))
		return
	}
	req, err := decodeQueryRequest(w, r)
	if err != nil {
		status := http.StatusBadRequest
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			status = http.StatusRequestEntityTooLarge
		}
		s.fail(w, "", status, err)
		return
	}
	query, err := parseQueryAtom(req.Query)
	if err != nil {
		s.fail(w, "", http.StatusBadRequest, fmt.Errorf("parse query: %w", err))
		return
	}
	strategy := s.defStrategy
	if req.Strategy != "" {
		if strategy, err = strategyByName(req.Strategy); err != nil {
			s.fail(w, "", http.StatusBadRequest, err)
			return
		}
	}

	// The request context bounds the whole evaluation: client disconnects
	// cancel it, and the per-request timeout (request override, else server
	// default) adds a deadline.
	ctx := r.Context()
	timeout := s.timeout
	if req.TimeoutMS > 0 {
		timeout = time.Duration(req.TimeoutMS) * time.Millisecond
	}
	if timeout > 0 {
		var cancel func()
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}

	s.inflight.Add(1)
	defer s.inflight.Add(-1)

	plan, hit, err := s.cache.Lookup(s.prog, s.hash, s.constraints, query, strategy)
	if err != nil {
		s.fail(w, strategy.String(), http.StatusUnprocessableEntity, err)
		return
	}

	// Fresh EDB per request: evaluation derives into the DB, so sharing one
	// across requests would leak one query's derivations into the next.
	db := engine.NewDB()
	if err := engine.LoadFacts(db, s.baseEDB); err != nil {
		s.fail(w, strategy.String(), http.StatusInternalServerError, err)
		return
	}
	opts := s.defOpts
	opts.Context = ctx
	if req.Workers > 0 {
		opts.Workers = req.Workers
	}
	if req.Budget > 0 {
		opts.MaxFacts = req.Budget
	}

	res, err := plan.Run(db, opts)
	if err != nil {
		s.fail(w, strategy.String(), statusForError(err), err)
		return
	}

	total := time.Since(start)
	s.observe(strategy.String(), total, nil)
	s.observeStorage(res.Storage)
	writeJSON(w, http.StatusOK, queryResponse{
		Query:       query.String(),
		Strategy:    strategy.String(),
		Answers:     pipeline.SortedAnswers(res),
		AnswerCount: len(res.Answers),
		Facts:       res.Facts,
		Inferences:  res.Inferences,
		Iterations:  res.Iterations,
		PlanCache:   cacheLabel(hit),
		EvalWallNS:  res.EvalWall.Nanoseconds(),
		TotalWallNS: total.Nanoseconds(),
	})
}

func cacheLabel(hit bool) string {
	if hit {
		return "hit"
	}
	return "miss"
}

func statusForError(err error) int {
	switch {
	case errors.Is(err, engine.ErrDeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.Is(err, engine.ErrCanceled):
		return statusClientClosedRequest
	case errors.Is(err, engine.ErrBudgetExceeded):
		return http.StatusUnprocessableEntity
	case errors.Is(err, engine.ErrBadOptions):
		return http.StatusBadRequest
	default:
		return http.StatusInternalServerError
	}
}

// fail records an errored query (when it reached evaluation, strategy is
// set) and writes the error response.
func (s *server) fail(w http.ResponseWriter, strategy string, status int, err error) {
	s.observe(strategy, 0, err)
	writeJSON(w, status, errorResponse{Error: err.Error()})
}

// observe folds one finished request into the metrics; latency is recorded
// only for successful evaluations so the histograms measure real query
// cost, not fast-path rejections.
func (s *server) observe(strategy string, d time.Duration, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.queries++
	if err != nil {
		s.errors++
		return
	}
	h := s.latency[strategy]
	if h == nil {
		h = obsv.NewHistogram()
		s.latency[strategy] = h
	}
	h.Observe(d)
}

// observeStorage keeps the heaviest per-request storage footprint seen,
// ranked by total bytes (arena + indexes). The record is replaced whole so
// the reported load factors describe the same evaluation as the bytes.
func (s *server) observeStorage(st obsv.StorageStats) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if st.ArenaBytes+st.IndexBytes > s.storageHW.ArenaBytes+s.storageHW.IndexBytes {
		s.storageHW = st
	}
}

func (s *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"status":         "ok",
		"uptime_seconds": time.Since(s.start).Seconds(),
		"program_hash":   s.hash,
		"rules":          len(s.prog.Rules),
		"base_facts":     len(s.baseEDB),
	})
}

// snapshot builds the ServerStats document under the metrics lock,
// deep-copying the histograms so rendering happens outside it.
func (s *server) snapshot() obsv.ServerStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	latency := make(map[string]*obsv.Histogram, len(s.latency))
	for name, h := range s.latency {
		cp := *h
		cp.BucketCounts = append([]int64(nil), h.BucketCounts...)
		latency[name] = &cp
	}
	return obsv.ServerStats{
		Schema:           metricsSchema,
		UptimeSeconds:    time.Since(s.start).Seconds(),
		Queries:          s.queries,
		Errors:           s.errors,
		InFlight:         s.inflight.Load(),
		PlanCache:        s.cache.Stats(),
		Latency:          latency,
		StorageHighWater: s.storageHW,
	}
}

func (s *server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	stats := s.snapshot()
	if r.URL.Query().Get("format") == "text" {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprint(w, obsv.ServerTable(stats))
		return
	}
	writeJSON(w, http.StatusOK, stats)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func strategyByName(name string) (pipeline.Strategy, error) {
	for _, s := range pipeline.AllStrategies() {
		if s.String() == name {
			return s, nil
		}
	}
	var names []string
	for _, s := range pipeline.AllStrategies() {
		names = append(names, s.String())
	}
	return 0, fmt.Errorf("unknown strategy %q (one of: %s)", name, strings.Join(names, ", "))
}
