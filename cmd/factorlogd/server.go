package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"factorlog/internal/ast"
	"factorlog/internal/cq"
	"factorlog/internal/engine"
	"factorlog/internal/obsv"
	"factorlog/internal/parser"
	"factorlog/internal/pipeline"
	"factorlog/internal/resilience"
	"factorlog/internal/trace"
	"factorlog/internal/wal"
)

// metricsSchema names the /metrics document layout; v1/v2 and v6/v7 are
// factorbench evaluation-metrics schemas, v3 lacked storage_high_water and
// per-span allocation counters, v4 lacked the resilience block (admission,
// panics, degradations, memory-budget stops, drains), v5 lacked the
// mutation block (epoch, /facts counters, materialization refreshes), v8
// lacked the plan_search block (the adaptive optimizer's pick/re-cost
// counters), v9 lacked the durability block (WAL epoch, group-commit
// fsyncs, snapshots, replay and torn-tail counters).
const metricsSchema = "factorlog/metrics/v10"

// errDraining is the cancel cause propagated into in-flight evaluations
// when shutdown begins; handlers translate it to a typed 503 body.
var errDraining = errors.New("server draining")

// retryAfterSeconds is the Retry-After hint on 429 (shed/queue-timeout) and
// 503 (draining) responses. Queries are short; one second is enough for the
// limiter to turn over without clients hammering the queue.
const retryAfterSeconds = 1

// statusClientClosedRequest is the de-facto code (nginx) for "the client
// went away before we could answer"; no standard code fits.
const statusClientClosedRequest = 499

// maxQueryBody caps a POST /query body; a query request is a few hundred
// bytes of JSON, so 1 MiB is generous while keeping arbitrary clients from
// streaming unbounded input into the decoder.
const maxQueryBody = 1 << 20

// queryIDHeader carries the server-minted query ID on every /query response
// (success and failure alike), so clients can correlate an answer, an error,
// a slowlog entry, and a /debug/trace/{id} lookup.
const queryIDHeader = "X-Factorlog-Query-ID"

// traceRingSize bounds the sampled-trace store and the slow-query log; both
// are debugging windows into recent traffic, not durable archives.
const traceRingSize = 64

type config struct {
	strategy string
	workers  int
	budget   int
	timeout  time.Duration
	// maxBytes caps each evaluation's arena+index footprint
	// (engine.Options.MaxBytes); 0 = unlimited.
	maxBytes int64
	// maxConcurrency is the admission limiter's capacity in weight units
	// (one unit per evaluation worker); <= 0 derives a default from workers.
	maxConcurrency int64
	// maxQueue bounds the admission wait queue; beyond it requests are shed
	// with 429.
	maxQueue int
	// traceSample traces one query in every N (0 = only EXPLAIN ANALYZE
	// queries are traced, 1 = all).
	traceSample int
	// slowQuery is the slow-query-log threshold; queries whose total wall
	// time meets it land in /debug/slowlog. 0 disables the log.
	slowQuery time.Duration
	// materialize serves eligible queries from incrementally-maintained
	// materializations instead of evaluating from scratch. /facts mutation
	// works either way; this only selects the query serving path.
	materialize bool
	// matEntries bounds the materialization registry (LRU past it);
	// <= 0 uses the registry default.
	matEntries int
	// walDir enables the durable write-ahead log: every committed /facts
	// batch is logged there before it is acknowledged, and startup replays
	// the newest snapshot plus the log tail. Empty disables durability.
	walDir string
	// fsyncInterval is the WAL group-commit window (0 = fsync every batch
	// before acknowledging it).
	fsyncInterval time.Duration
	// snapshotEvery writes a base snapshot after this many epochs since the
	// last one (<= 0 disables periodic snapshots; retention then never
	// prunes log segments).
	snapshotEvery int64
	// walSegmentBytes overrides the WAL segment rotation size (0 = the wal
	// package default). Not exposed as a flag; tests shrink it to exercise
	// rotation and retention without megabytes of batches.
	walSegmentBytes int64
}

// limiterCapacity derives the admission capacity: explicit when configured,
// otherwise enough weight for 8 default-shaped queries to run concurrently
// (each query weighs its effective worker count).
func (c config) limiterCapacity() int64 {
	if c.maxConcurrency > 0 {
		return c.maxConcurrency
	}
	w := int64(c.workers)
	if w < 1 {
		w = 1
	}
	return 8 * w
}

// server holds the immutable program state shared by all requests and the
// mutable serving metrics.
type server struct {
	prog        *ast.Program
	hash        string
	constraints []ast.Rule
	declared    []ast.Atom // ?- queries from the program file, warmed at startup

	// mat owns the mutable base EDB (the program file's facts plus every
	// /facts batch since) and the materialization registry. All serving
	// paths read the base through it; matServe selects whether eligible
	// queries answer from materializations or evaluate from scratch.
	mat      *pipeline.Materializer
	matServe bool

	// wl is the durable write-ahead log (nil when -wal-dir is unset). The
	// materializer appends every committed batch before acknowledging it;
	// snapMu serializes periodic base snapshots, written after the epoch
	// advances snapshotEvery past the last one. replaying is true while
	// startup applies the recovered snapshot + log tail; /readyz answers
	// 503 until it clears.
	wl            *wal.Log
	snapMu        sync.Mutex
	snapshotEvery int64
	replaying     atomic.Bool

	cache *pipeline.PlanCache
	// planner resolves strategy=auto requests: EDB statistics from the
	// materializer's base, candidate enumeration over the plan cache, and
	// shadow re-costing as /facts batches advance the epoch.
	planner     *pipeline.AutoPlanner
	defStrategy pipeline.Strategy
	defOpts     engine.Options
	timeout     time.Duration
	start       time.Time

	// limiter is the /query admission gate; each request acquires weight
	// equal to its effective worker count before touching the evaluator.
	limiter *resilience.Limiter

	// ready flips true once warmup finishes; draining flips true when
	// shutdown begins. /readyz reports ready && !draining.
	ready    atomic.Bool
	draining atomic.Bool
	// evalCtx is canceled (cause errDraining) by beginDrain, aborting every
	// in-flight evaluation at its next round boundary.
	evalCtx    context.Context
	evalCancel context.CancelCauseFunc

	// sampler decides which queries record a span trace; traces holds the
	// recent traced queries (/debug/trace/{id}) and slowlog the recent slow
	// ones (/debug/slowlog). Both rings store only finished traces.
	sampler       *trace.Sampler
	traces        *trace.Ring
	slowlog       *trace.Ring
	slowThreshold time.Duration

	inflight  atomic.Int64
	mu        sync.Mutex // guards the obsv records below
	queries   int64
	errors    int64
	latency   map[string]*obsv.Histogram
	rounds    *obsv.ValueHistogram // per-query fixpoint rounds
	arena     *obsv.ValueHistogram // per-query arena+index bytes
	storageHW obsv.StorageStats    // heaviest per-request storage footprint
	panics    int64                // ErrInternal responses (recovered panics)
	degraded  int64                // parallel→sequential fallbacks that succeeded
	memStops  int64                // ErrMemoryBudget responses
	drained   int64                // requests refused or aborted by shutdown
	slowSeen  int64                // queries at or over the slow threshold
	traced    int64                // queries that recorded a span trace
}

func newServer(src, constraints string, cfg config) (*server, error) {
	u, err := parser.Parse(src)
	if err != nil {
		return nil, err
	}
	var tgds []ast.Rule
	if constraints != "" {
		cp, err := parser.ParseProgram(constraints)
		if err != nil {
			return nil, err
		}
		for _, r := range cp.Rules {
			if err := cq.ValidateTGD(r); err != nil {
				return nil, err
			}
			tgds = append(tgds, r)
		}
	}
	strategy, err := strategyByName(cfg.strategy)
	if err != nil {
		return nil, err
	}
	prog := u.Program()
	hash := pipeline.HashProgram(prog, tgds)
	cache := pipeline.NewPlanCache()

	// Durability: open (and recover) the write-ahead log before the
	// materializer exists, so the recovered base and epoch seed it. A
	// program-hash mismatch refuses startup — replaying another program's
	// mutation history would silently corrupt the base.
	baseFacts := u.Facts
	var (
		wlog       *wal.Log
		startEpoch int64
		durable    pipeline.DurableLog
	)
	if cfg.walDir != "" {
		l, rec, err := wal.Open(wal.Options{
			Dir:           cfg.walDir,
			ProgramHash:   hash,
			FsyncInterval: cfg.fsyncInterval,
			SegmentBytes:  cfg.walSegmentBytes,
		})
		if err != nil {
			return nil, fmt.Errorf("wal: %w", err)
		}
		baseFacts, err = recoverBase(u.Facts, rec)
		if err != nil {
			l.Close()
			return nil, fmt.Errorf("wal replay: %w", err)
		}
		wlog, startEpoch, durable = l, rec.Epoch, walAdapter{l}
	}

	mat, err := pipeline.NewMaterializer(prog, tgds, baseFacts, cache,
		pipeline.MaterializerOptions{
			Entries:    cfg.matEntries,
			StartEpoch: startEpoch,
			Durable:    durable,
			Engine: engine.MaterializeOptions{
				MaxFacts: cfg.budget,
				MaxBytes: cfg.maxBytes,
			},
		})
	if err != nil {
		if wlog != nil {
			wlog.Close()
		}
		return nil, err
	}
	evalCtx, evalCancel := context.WithCancelCause(context.Background())
	srv := &server{
		prog:          prog,
		hash:          hash,
		constraints:   tgds,
		declared:      u.Queries,
		mat:           mat,
		matServe:      cfg.materialize,
		wl:            wlog,
		snapshotEvery: cfg.snapshotEvery,
		cache:         cache,
		planner: pipeline.NewAutoPlanner(prog, tgds, cache,
			pipeline.SnapshotSource(mat), pipeline.AutoPolicy{}),
		defStrategy: strategy,
		defOpts: engine.Options{
			Workers:  cfg.workers,
			MaxFacts: cfg.budget,
			MaxBytes: cfg.maxBytes,
		},
		timeout:       cfg.timeout,
		start:         time.Now(),
		limiter:       resilience.NewLimiter(cfg.limiterCapacity(), cfg.maxQueue),
		evalCtx:       evalCtx,
		evalCancel:    evalCancel,
		latency:       map[string]*obsv.Histogram{},
		rounds:        obsv.NewValueHistogram(obsv.RoundsBucketBounds),
		arena:         obsv.NewValueHistogram(obsv.ArenaBucketBounds),
		sampler:       trace.NewSampler(cfg.traceSample),
		traces:        trace.NewRing(traceRingSize),
		slowlog:       trace.NewRing(traceRingSize),
		slowThreshold: cfg.slowQuery,
	}
	// A recovered server stays "replaying" on /readyz until warmup finishes
	// — its durable history has been applied, but it has not re-earned
	// readiness over the recovered base yet.
	if wlog != nil && startEpoch > 0 {
		srv.replaying.Store(true)
	}
	return srv, nil
}

// walAdapter bridges the materializer's DurableLog to the wal package:
// atoms render as their canonical strings on the way down and parse back
// for WAL-backed delta refreshes.
type walAdapter struct{ log *wal.Log }

func (a walAdapter) Append(b pipeline.MutationBatch) error {
	return a.log.Append(wal.Batch{
		Epoch:   b.Epoch,
		Assert:  atomStrings(b.Assert),
		Retract: atomStrings(b.Retract),
	})
}

// Since reports ok=false on any read failure (compaction included); the
// materializer then falls back to its from-scratch rebuild.
func (a walAdapter) Since(after int64) ([]pipeline.MutationBatch, bool) {
	batches, err := a.log.Since(after)
	if err != nil {
		return nil, false
	}
	out := make([]pipeline.MutationBatch, 0, len(batches))
	for _, b := range batches {
		assert, err := parseFactAtoms(b.Assert)
		if err != nil {
			return nil, false
		}
		retract, err := parseFactAtoms(b.Retract)
		if err != nil {
			return nil, false
		}
		out = append(out, pipeline.MutationBatch{Epoch: b.Epoch, Assert: assert, Retract: retract})
	}
	return out, true
}

func atomStrings(atoms []ast.Atom) []string {
	if len(atoms) == 0 {
		return nil
	}
	out := make([]string, len(atoms))
	for i, a := range atoms {
		out[i] = a.String()
	}
	return out
}

// recoverBase reconstructs the pre-crash base EDB: the newest snapshot's
// facts (or the program file's, when no snapshot was ever written) with
// the committed log tail replayed on top — retractions before assertions,
// exactly as the original batches applied them.
func recoverBase(progFacts []ast.Atom, rec *wal.Recovery) ([]ast.Atom, error) {
	idx := map[string]int{}
	var facts []ast.Atom
	add := func(a ast.Atom) {
		k := a.String()
		if _, ok := idx[k]; ok {
			return
		}
		idx[k] = len(facts)
		facts = append(facts, a)
	}
	del := func(k string) {
		i, ok := idx[k]
		if !ok {
			return
		}
		last := len(facts) - 1
		facts[i] = facts[last]
		idx[facts[i].String()] = i
		facts = facts[:last]
		delete(idx, k)
	}
	if rec.Snapshot != nil {
		for _, f := range rec.Snapshot.Facts {
			a, err := parser.ParseAtom(f)
			if err != nil {
				return nil, fmt.Errorf("snapshot fact %q: %w", f, err)
			}
			add(a)
		}
	} else {
		for _, a := range progFacts {
			add(a)
		}
	}
	for _, b := range rec.Batches {
		for _, f := range b.Retract {
			a, err := parser.ParseAtom(f)
			if err != nil {
				return nil, fmt.Errorf("epoch %d retract %q: %w", b.Epoch, f, err)
			}
			del(a.String())
		}
		for _, f := range b.Assert {
			a, err := parser.ParseAtom(f)
			if err != nil {
				return nil, fmt.Errorf("epoch %d assert %q: %w", b.Epoch, f, err)
			}
			add(a)
		}
	}
	return facts, nil
}

// Close releases the server's durable resources: it flushes the pending
// group commit and closes the WAL. Safe to call with durability off, and
// idempotent.
func (s *server) Close() error {
	if s.wl == nil {
		return nil
	}
	return s.wl.Close()
}

// beginDrain starts shutdown: /readyz flips not-ready, the admission
// limiter refuses new work, and every in-flight evaluation is canceled
// with cause errDraining so handlers answer a typed 503 instead of holding
// the shutdown timeout hostage.
func (s *server) beginDrain() {
	s.draining.Store(true)
	s.limiter.Close()
	s.evalCancel(errDraining)
}

// warmup compiles a plan for every ?- query declared in the program file
// under the default strategy, so the first real request finds a warm cache.
// Failures are reported, not fatal: a program may declare queries that the
// default strategy cannot transform.
func (s *server) warmup() []string {
	var warns []string
	for _, q := range s.declared {
		if s.defStrategy == pipeline.Auto {
			if _, err := s.planner.Choose(context.Background(), q); err != nil {
				warns = append(warns, fmt.Sprintf("%s: %v", q, err))
			}
			continue
		}
		if _, _, err := s.cache.Lookup(context.Background(), s.prog, s.hash, s.constraints, q, s.defStrategy); err != nil {
			warns = append(warns, fmt.Sprintf("%s: %v", q, err))
		}
	}
	s.replaying.Store(false)
	s.ready.Store(true)
	return warns
}

func (s *server) routes() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/query", s.handleQuery)
	mux.HandleFunc("/facts", s.handleFacts)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/readyz", s.handleReadyz)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/debug/slowlog", s.handleSlowlog)
	mux.HandleFunc("/debug/trace/", s.handleTrace)
	return mux
}

// queryRequest is the decoded /query input (query-string or JSON body).
type queryRequest struct {
	Query     string `json:"query"`
	Strategy  string `json:"strategy,omitempty"`
	Workers   int    `json:"workers,omitempty"`
	Budget    int    `json:"budget,omitempty"`
	TimeoutMS int    `json:"timeout_ms,omitempty"`
	MaxBytes  int64  `json:"max_bytes,omitempty"`
	// Explain selects plan inspection instead of a plain answer: "plan"
	// describes the compiled plan without evaluating, "analyze" evaluates
	// with tracing forced and returns the measured span tree too.
	Explain string `json:"explain,omitempty"`
	// Stream opts the request into the streaming executor: non-recursive
	// strata run as single-pass iterator pipelines (same answers, different
	// cost shape). The response reports what ran in executor/stream.
	Stream bool `json:"stream,omitempty"`
}

// queryResponse is the /query output.
type queryResponse struct {
	QueryID     string   `json:"query_id"`
	Query       string   `json:"query"`
	Strategy    string   `json:"strategy"`
	Answers     []string `json:"answers"`
	AnswerCount int      `json:"answer_count"`
	Facts       int      `json:"facts"`
	Inferences  int      `json:"inferences"`
	Iterations  int      `json:"iterations"`
	PlanCache   string   `json:"plan_cache"` // "hit" or "miss"
	EvalWallNS  int64    `json:"eval_wall_ns"`
	TotalWallNS int64    `json:"total_wall_ns"`
	// Epoch is the mutation epoch the answers reflect — the base EDB these
	// answers were computed over is exactly the state after that many
	// effective /facts batches.
	Epoch int64 `json:"epoch"`
	// Materialized is the registry refresh disposition when the query was
	// served from a materialization ("hit", "delta", "rebuild", "build");
	// absent for from-scratch evaluations. RefreshWallNS is the wall time
	// of a non-hit refresh.
	Materialized  string `json:"materialized,omitempty"`
	RefreshWallNS int64  `json:"refresh_wall_ns,omitempty"`
	// Degraded is set when a parallel worker panicked and the answers come
	// from the automatic sequential retry.
	Degraded bool `json:"degraded,omitempty"`
	// Executor names the bottom-up evaluator that ran ("stream" or
	// "materialize"; absent for top-down strategies); Stream carries the
	// streaming counters when it is "stream".
	Executor string            `json:"executor,omitempty"`
	Stream   *obsv.StreamStats `json:"stream,omitempty"`
	// Auto reports the request asked for strategy=auto; Strategy above is
	// then the optimizer's pick. Repicked marks a response whose served plan
	// was just invalidated and re-chosen by shadow re-costing.
	Auto     bool `json:"auto,omitempty"`
	Repicked bool `json:"repicked,omitempty"`
}

type errorResponse struct {
	QueryID string `json:"query_id,omitempty"`
	Error   string `json:"error"`
	// Draining marks the typed 503 body sent while the server shuts down.
	Draining bool `json:"draining,omitempty"`
	// RetryAfterSeconds mirrors the Retry-After header on 429/503 bodies.
	RetryAfterSeconds int `json:"retry_after_seconds,omitempty"`
}

// planCacheInfo is EXPLAIN's plan-cache disposition: whether this request
// found the plan compiled and how long the compile took (paid by this
// request on a miss, by an earlier one on a hit).
type planCacheInfo struct {
	Disposition   string `json:"disposition"` // "hit" or "miss"
	CompileWallNS int64  `json:"compile_wall_ns"`
}

// explainResponse is the /query output under explain=plan|analyze.
type explainResponse struct {
	QueryID   string                `json:"query_id"`
	Mode      string                `json:"explain"` // "plan" or "analyze"
	Plan      *pipeline.ExplainInfo `json:"plan"`
	PlanCache planCacheInfo         `json:"plan_cache"`
	// Result and Trace are present only for analyze: the evaluated answer
	// and the measured span tree, plus its indented text rendering.
	Result  *queryResponse     `json:"result,omitempty"`
	Trace   *trace.ContextJSON `json:"trace,omitempty"`
	Profile string             `json:"profile,omitempty"`
}

func decodeQueryRequest(w http.ResponseWriter, r *http.Request) (queryRequest, error) {
	var req queryRequest
	switch r.Method {
	case http.MethodGet:
		q := r.URL.Query()
		req.Query = q.Get("q")
		req.Strategy = q.Get("strategy")
		req.Explain = q.Get("explain")
		for name, dst := range map[string]*int{
			"workers": &req.Workers, "budget": &req.Budget, "timeout_ms": &req.TimeoutMS,
		} {
			if v := q.Get(name); v != "" {
				n, err := strconv.Atoi(v)
				if err != nil {
					return req, fmt.Errorf("bad %s: %v", name, err)
				}
				*dst = n
			}
		}
		if v := q.Get("max_bytes"); v != "" {
			n, err := strconv.ParseInt(v, 10, 64)
			if err != nil {
				return req, fmt.Errorf("bad max_bytes: %v", err)
			}
			req.MaxBytes = n
		}
		if v := q.Get("stream"); v != "" {
			b, err := strconv.ParseBool(v)
			if err != nil {
				return req, fmt.Errorf("bad stream: %v", err)
			}
			req.Stream = b
		}
	case http.MethodPost:
		r.Body = http.MaxBytesReader(w, r.Body, maxQueryBody)
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			var tooBig *http.MaxBytesError
			if errors.As(err, &tooBig) {
				return req, fmt.Errorf("request body exceeds %d bytes: %w", maxQueryBody, err)
			}
			return req, fmt.Errorf("bad JSON body: %v", err)
		}
	default:
		// Unreachable from handleQuery, which rejects other methods with
		// 405 before decoding; kept as a guard for new callers.
		return req, fmt.Errorf("method %s not allowed", r.Method)
	}
	if strings.TrimSpace(req.Query) == "" {
		return req, errors.New("missing query (GET ?q=... or POST {\"query\":...})")
	}
	switch req.Explain {
	case "", "plan", "analyze":
	default:
		return req, fmt.Errorf("bad explain %q (one of: plan, analyze)", req.Explain)
	}
	return req, nil
}

// parseQueryAtom accepts "t(5,Y)" with optional "?-" prefix and trailing
// dot, matching what users paste from .dl files.
func parseQueryAtom(q string) (ast.Atom, error) {
	q = strings.TrimSpace(q)
	q = strings.TrimPrefix(q, "?-")
	q = strings.TrimSuffix(strings.TrimSpace(q), ".")
	return parser.ParseAtom(q)
}

func (s *server) handleQuery(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	// Every /query response — success, shed, error — carries a server-minted
	// query ID, so one ID follows the request through the error body, the
	// metrics, the slowlog, and /debug/trace/{id}.
	qid := trace.NewID()
	w.Header().Set(queryIDHeader, qid)
	if r.Method != http.MethodGet && r.Method != http.MethodPost {
		w.Header().Set("Allow", "GET, POST")
		s.fail(w, qid, "", http.StatusMethodNotAllowed, fmt.Errorf("method %s not allowed", r.Method))
		return
	}
	req, err := decodeQueryRequest(w, r)
	if err != nil {
		status := http.StatusBadRequest
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			status = http.StatusRequestEntityTooLarge
		}
		s.fail(w, qid, "", status, err)
		return
	}
	query, err := parseQueryAtom(req.Query)
	if err != nil {
		s.fail(w, qid, "", http.StatusBadRequest, fmt.Errorf("parse query: %w", err))
		return
	}
	strategy := s.defStrategy
	if req.Strategy != "" {
		if strategy, err = strategyByName(req.Strategy); err != nil {
			s.fail(w, qid, "", http.StatusBadRequest, err)
			return
		}
	}

	// A draining server refuses new queries outright; anything admitted now
	// would only be canceled moments later.
	if s.draining.Load() {
		s.failDraining(w, qid, strategy.String())
		return
	}

	// The request context bounds the whole evaluation: client disconnects
	// cancel it, the per-request timeout (request override, else server
	// default) adds a deadline, and beginDrain cancels it (via evalCtx) with
	// cause errDraining when shutdown starts.
	ctx := r.Context()
	timeout := s.timeout
	if req.TimeoutMS > 0 {
		timeout = time.Duration(req.TimeoutMS) * time.Millisecond
	}
	if timeout > 0 {
		var cancel func()
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}
	ctx, cancelCause := context.WithCancelCause(ctx)
	defer cancelCause(nil)
	stopDrainWatch := context.AfterFunc(s.evalCtx, func() { cancelCause(errDraining) })
	defer stopDrainWatch()

	opts := s.defOpts
	opts.Context = ctx
	if req.Workers > 0 {
		opts.Workers = req.Workers
	}
	if req.Budget > 0 {
		opts.MaxFacts = req.Budget
	}
	if req.MaxBytes > 0 {
		opts.MaxBytes = req.MaxBytes
	}
	if req.Stream {
		opts.Streaming = engine.StreamAuto
	}

	// Admission: a request weighs its effective worker count, so one
	// 8-worker query consumes as much admission capacity as eight sequential
	// ones. Overload sheds with 429 + Retry-After instead of queueing
	// goroutines without bound.
	weight := int64(opts.Workers)
	release, err := s.limiter.Acquire(ctx, weight)
	if err != nil {
		switch {
		case errors.Is(err, resilience.ErrLimiterClosed):
			s.failDraining(w, qid, strategy.String())
		case errors.Is(err, resilience.ErrQueueWait) && errors.Is(context.Cause(ctx), errDraining):
			s.failDraining(w, qid, strategy.String())
		default:
			w.Header().Set("Retry-After", strconv.Itoa(retryAfterSeconds))
			s.observe(strategy.String(), 0, err)
			writeJSON(w, http.StatusTooManyRequests, errorResponse{
				QueryID: qid, Error: err.Error(), RetryAfterSeconds: retryAfterSeconds,
			})
		}
		return
	}
	defer release()

	s.inflight.Add(1)
	defer s.inflight.Add(-1)

	// strategy=auto: the planner resolves the request to a concrete
	// strategy — a remembered decision while its statistics stay fresh, a
	// (shadow re-costed) plan search otherwise. The rest of the handler
	// serves the winner exactly as if the client had asked for it.
	var auto *pipeline.AutoServe
	if strategy == pipeline.Auto {
		auto, err = s.planner.Choose(ctx, query)
		if err != nil {
			s.failEval(w, ctx, qid, pipeline.Auto.String(), compileStatus(err), err)
			return
		}
		strategy = auto.Strategy
		opts.ReorderJoins = auto.Reorder
	}

	// Materialized serving: eligible plain queries answer from the
	// incrementally-maintained registry, which refreshes the entry to the
	// current epoch first (see internal/pipeline.Materializer). EXPLAIN and
	// streaming requests ask about a specific evaluation and always run it.
	if s.matServe && req.Explain == "" && !req.Stream && pipeline.MaterializableStrategy(strategy) {
		mres, err := s.mat.Serve(ctx, query, strategy)
		if err != nil {
			s.failEval(w, ctx, qid, strategy.String(), statusForError(err), err)
			return
		}
		total := time.Since(start)
		s.observe(strategy.String(), total, nil)
		answers := make([]string, 0, len(mres.Answers))
		for a := range mres.Answers {
			answers = append(answers, a)
		}
		sort.Strings(answers)
		writeJSON(w, http.StatusOK, queryResponse{
			QueryID:       qid,
			Query:         query.String(),
			Strategy:      strategy.String(),
			Answers:       answers,
			AnswerCount:   len(answers),
			PlanCache:     cacheLabel(mres.PlanHit),
			EvalWallNS:    mres.RefreshWall.Nanoseconds(),
			TotalWallNS:   total.Nanoseconds(),
			Epoch:         mres.Epoch,
			Materialized:  mres.Kind,
			RefreshWallNS: mres.RefreshWall.Nanoseconds(),
			Auto:          auto != nil,
			Repicked:      auto != nil && auto.Repicked,
		})
		return
	}

	var plan *pipeline.Plan
	var hit bool
	if auto != nil {
		// The planner already holds the winner's compiled plan.
		plan, hit = auto.Plan, auto.PlanHit
	} else {
		plan, hit, err = s.cache.Lookup(ctx, s.prog, s.hash, s.constraints, query, strategy)
		if err != nil {
			s.failEval(w, ctx, qid, strategy.String(), compileStatus(err), err)
			return
		}
	}
	disposition := planCacheInfo{
		Disposition:   cacheLabel(hit),
		CompileWallNS: plan.CompileWall.Nanoseconds(),
	}

	// EXPLAIN (plan): describe the compiled plan without evaluating. An
	// auto-resolved request additionally carries the planner's candidate
	// table.
	if req.Explain == "plan" {
		info, err := plan.Pipeline().Explain(strategy)
		if err != nil {
			s.failEval(w, ctx, qid, strategy.String(), compileStatus(err), err)
			return
		}
		if auto != nil {
			info.Candidates = auto.Candidates
		}
		writeJSON(w, http.StatusOK, explainResponse{
			QueryID: qid, Mode: "plan", Plan: info, PlanCache: disposition,
		})
		return
	}

	// Tracing: EXPLAIN ANALYZE always traces; plain queries trace when the
	// sampler picks them. The Context itself is minted unconditionally (it is
	// one allocation) so a slow untraced query still lands in the slowlog
	// with its ID and wall time; the per-span overhead is gated on Span.
	tc := trace.New(qid)
	// The root span notes the chosen strategy, so a slowlog or trace entry
	// says what plan actually served the query — for auto requests, the
	// optimizer's pick, not "auto".
	tc.Root().SetNote("strategy=" + strategy.String())
	analyze := req.Explain == "analyze"
	sampled := s.sampler.Sample()
	if analyze || sampled {
		opts.Span = tc.Root()
	}

	// Fresh EDB per request: evaluation derives into the DB, so sharing one
	// across requests would leak one query's derivations into the next. The
	// base is snapshotted with its epoch so the response reports exactly the
	// mutation state it evaluated.
	base, epoch := s.mat.BaseSnapshot()
	db := engine.NewDB()
	if err := engine.LoadFacts(db, base); err != nil {
		s.failEval(w, ctx, qid, strategy.String(), statusForError(err), err)
		return
	}

	res, err := plan.Run(db, opts)
	if err != nil {
		s.failEval(w, ctx, qid, strategy.String(), statusForError(err), err)
		return
	}

	if res.Degraded {
		s.mu.Lock()
		s.degraded++
		s.mu.Unlock()
	}
	// Calibrate the planner with what the run actually derived, so the next
	// shadow re-cost of this query shape prices against measured rows.
	if auto != nil && len(res.Rules) > 0 {
		s.planner.Observe(query, res.Program, res.Rules)
	}
	total := time.Since(start)
	tc.Finish()
	s.recordTrace(tc, opts.Span != nil, total)
	s.observeResult(strategy.String(), total, res)
	resp := queryResponse{
		QueryID:     qid,
		Query:       query.String(),
		Strategy:    strategy.String(),
		Answers:     pipeline.SortedAnswers(res),
		AnswerCount: len(res.Answers),
		Facts:       res.Facts,
		Inferences:  res.Inferences,
		Iterations:  res.Iterations,
		PlanCache:   disposition.Disposition,
		EvalWallNS:  res.EvalWall.Nanoseconds(),
		TotalWallNS: total.Nanoseconds(),
		Epoch:       epoch,
		Degraded:    res.Degraded,
		Executor:    res.Executor,
		Stream:      res.Stream,
		Auto:        auto != nil,
		Repicked:    auto != nil && auto.Repicked,
	}
	if analyze {
		info, err := plan.Pipeline().Explain(strategy)
		if err != nil {
			s.failEval(w, ctx, qid, strategy.String(), compileStatus(err), err)
			return
		}
		if auto != nil {
			info.Candidates = auto.Candidates
		}
		snap := tc.Snapshot()
		writeJSON(w, http.StatusOK, explainResponse{
			QueryID:   qid,
			Mode:      "analyze",
			Plan:      info,
			PlanCache: disposition,
			Result:    &resp,
			Trace:     &snap,
			Profile:   tc.Profile(),
		})
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// maxFactsBody caps a POST /facts body. Batches are lists of ground atoms;
// 4 MiB holds ~100k short facts, past which clients should chunk anyway so
// a failure doesn't void the whole load.
const maxFactsBody = 4 << 20

// factsRequest is the /facts input: facts to assert and retract, each a
// ground atom with optional trailing dot ("e(1,2)." or "e(1,2)").
type factsRequest struct {
	Assert  []string `json:"assert,omitempty"`
	Retract []string `json:"retract,omitempty"`
}

// factsResponse reports one applied batch.
type factsResponse struct {
	// Epoch is the mutation epoch after the batch; an all-noop batch
	// leaves it unchanged.
	Epoch int64 `json:"epoch"`
	// Asserted/Retracted count effective changes; Noop* count entries
	// that changed nothing.
	Asserted     int `json:"asserted"`
	Retracted    int `json:"retracted"`
	NoopAsserts  int `json:"noop_asserts,omitempty"`
	NoopRetracts int `json:"noop_retracts,omitempty"`
	// BaseFacts is the live base-EDB size after the batch.
	BaseFacts int `json:"base_facts"`
}

// handleFacts is the mutation endpoint: POST a batch of asserts/retracts,
// get back the epoch it produced. The batch is atomic — validation errors
// (non-ground atoms, arity mismatches) reject it whole with 422 and no
// state change. Mutations pass admission at weight 1: they are quick, but
// an overloaded server should shed them like any other work. With
// durability on, the batch reaches the WAL (fsynced per the group-commit
// policy) before the 200 — an acknowledged epoch survives a crash.
//
// GET /facts?since=E streams the committed batch log after epoch E — the
// replica-tailing read (see docs/DURABILITY.md).
func (s *server) handleFacts(w http.ResponseWriter, r *http.Request) {
	qid := trace.NewID()
	w.Header().Set(queryIDHeader, qid)
	switch r.Method {
	case http.MethodGet:
		s.handleFactsTail(w, r, qid)
		return
	case http.MethodPost:
	default:
		w.Header().Set("Allow", "GET, POST")
		s.fail(w, qid, "", http.StatusMethodNotAllowed, fmt.Errorf("method %s not allowed", r.Method))
		return
	}
	if s.draining.Load() {
		s.failDraining(w, qid, "")
		return
	}
	r.Body = http.MaxBytesReader(w, r.Body, maxFactsBody)
	var req factsRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			s.fail(w, qid, "", http.StatusRequestEntityTooLarge,
				fmt.Errorf("request body exceeds %d bytes: %w", maxFactsBody, err))
			return
		}
		s.fail(w, qid, "", http.StatusBadRequest, fmt.Errorf("bad JSON body: %v", err))
		return
	}
	if len(req.Assert)+len(req.Retract) == 0 {
		s.fail(w, qid, "", http.StatusBadRequest, errors.New("empty batch (assert and/or retract required)"))
		return
	}
	assert, err := parseFactAtoms(req.Assert)
	if err != nil {
		s.fail(w, qid, "", http.StatusBadRequest, fmt.Errorf("assert: %w", err))
		return
	}
	retract, err := parseFactAtoms(req.Retract)
	if err != nil {
		s.fail(w, qid, "", http.StatusBadRequest, fmt.Errorf("retract: %w", err))
		return
	}

	release, err := s.limiter.Acquire(r.Context(), 1)
	if err != nil {
		if errors.Is(err, resilience.ErrLimiterClosed) {
			s.failDraining(w, qid, "")
			return
		}
		w.Header().Set("Retry-After", strconv.Itoa(retryAfterSeconds))
		writeJSON(w, http.StatusTooManyRequests, errorResponse{
			QueryID: qid, Error: err.Error(), RetryAfterSeconds: retryAfterSeconds,
		})
		return
	}
	defer release()

	res, err := s.mat.Apply(assert, retract)
	if err != nil {
		status := http.StatusInternalServerError
		if errors.Is(err, engine.ErrMutation) {
			status = http.StatusUnprocessableEntity
		}
		s.fail(w, qid, "", status, err)
		return
	}
	writeJSON(w, http.StatusOK, factsResponse{
		Epoch:        res.Epoch,
		Asserted:     res.Asserted,
		Retracted:    res.Retracted,
		NoopAsserts:  res.NoopAsserts,
		NoopRetracts: res.NoopRetracts,
		BaseFacts:    s.mat.BaseCount(),
	})
	if res.Asserted+res.Retracted > 0 {
		s.maybeSnapshot()
	}
}

// maybeSnapshot writes a base snapshot when the epoch has advanced
// snapshotEvery past the last one; retention then prunes log segments the
// snapshot supersedes. Failures are not fatal — the log alone remains
// authoritative and the next batch retries.
func (s *server) maybeSnapshot() {
	if s.wl == nil || s.snapshotEvery <= 0 {
		return
	}
	s.snapMu.Lock()
	defer s.snapMu.Unlock()
	if s.mat.Epoch()-s.wl.SnapshotEpoch() < s.snapshotEvery {
		return
	}
	base, epoch := s.mat.BaseSnapshot()
	err := s.wl.WriteSnapshot(wal.Snapshot{
		Epoch:       epoch,
		ProgramHash: s.hash,
		Facts:       atomStrings(base),
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "factorlogd: snapshot:", err)
	}
}

// maxTailBatches caps one GET /facts?since=E response; a replica further
// behind follows the "more" marker with another request from the last
// epoch it received.
const maxTailBatches = 1024

// factsTailResponse is the GET /facts?since=E output: the committed
// batches with epochs in (since, epoch], oldest first.
type factsTailResponse struct {
	Since int64 `json:"since"`
	// Epoch is the WAL's committed epoch at read time; a response whose
	// last batch reaches it has caught the replica up.
	Epoch   int64       `json:"epoch"`
	Batches []wal.Batch `json:"batches"`
	// More marks a truncated response (maxTailBatches); follow up with
	// since = the last returned epoch.
	More bool `json:"more,omitempty"`
}

// handleFactsTail serves the committed batch log for replicas. Compacted
// history answers 410 Gone with the first epoch still available, telling
// the replica to bootstrap from a snapshot instead.
func (s *server) handleFactsTail(w http.ResponseWriter, r *http.Request, qid string) {
	if s.wl == nil {
		s.fail(w, qid, "", http.StatusBadRequest, errors.New("durable log disabled (start with -wal-dir to tail /facts)"))
		return
	}
	sinceStr := r.URL.Query().Get("since")
	if sinceStr == "" {
		s.fail(w, qid, "", http.StatusBadRequest, errors.New("missing since (GET /facts?since=E)"))
		return
	}
	since, err := strconv.ParseInt(sinceStr, 10, 64)
	if err != nil || since < 0 {
		s.fail(w, qid, "", http.StatusBadRequest, fmt.Errorf("bad since %q: want a non-negative epoch", sinceStr))
		return
	}
	batches, err := s.wl.Since(since)
	if err != nil {
		if errors.Is(err, wal.ErrCompacted) {
			first, _ := s.wl.FirstAvailable()
			writeJSON(w, http.StatusGone, map[string]any{
				"error":                 err.Error(),
				"first_available_epoch": first,
				"last_snapshot_epoch":   s.wl.SnapshotEpoch(),
			})
			return
		}
		s.fail(w, qid, "", http.StatusInternalServerError, err)
		return
	}
	resp := factsTailResponse{Since: since, Epoch: s.wl.Epoch()}
	if len(batches) > maxTailBatches {
		batches, resp.More = batches[:maxTailBatches], true
	}
	if batches == nil {
		batches = []wal.Batch{}
	}
	resp.Batches = batches
	writeJSON(w, http.StatusOK, resp)
}

// parseFactAtoms parses mutation atoms, tolerating the trailing dot of
// .dl-file fact syntax.
func parseFactAtoms(in []string) ([]ast.Atom, error) {
	out := make([]ast.Atom, 0, len(in))
	for _, f := range in {
		a, err := parser.ParseAtom(strings.TrimSuffix(strings.TrimSpace(f), "."))
		if err != nil {
			return nil, fmt.Errorf("%q: %w", f, err)
		}
		out = append(out, a)
	}
	return out, nil
}

// recordTrace publishes a finished trace: traced queries land in the
// sampled-trace ring, slow queries (traced or not) in the slowlog.
func (s *server) recordTrace(tc *trace.Context, traced bool, total time.Duration) {
	slow := s.slowThreshold > 0 && total >= s.slowThreshold
	if traced {
		s.traces.Add(tc)
	}
	if slow {
		s.slowlog.Add(tc)
	}
	if traced || slow {
		s.mu.Lock()
		if traced {
			s.traced++
		}
		if slow {
			s.slowSeen++
		}
		s.mu.Unlock()
	}
}

func cacheLabel(hit bool) string {
	if hit {
		return "hit"
	}
	return "miss"
}

func statusForError(err error) int {
	switch {
	case errors.Is(err, pipeline.ErrAutoUnsupported):
		return http.StatusBadRequest
	case errors.Is(err, engine.ErrDeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.Is(err, engine.ErrCanceled):
		return statusClientClosedRequest
	case errors.Is(err, engine.ErrBudgetExceeded), errors.Is(err, engine.ErrMemoryBudget):
		return http.StatusUnprocessableEntity
	case errors.Is(err, engine.ErrBadOptions):
		return http.StatusBadRequest
	case errors.Is(err, engine.ErrInternal):
		return http.StatusInternalServerError
	default:
		return http.StatusInternalServerError
	}
}

// compileStatus maps plan-compile failures: the engine's typed transient
// errors keep their statusForError mapping, while permanent refutations
// (non-factorable program, bad adornment) are the client's problem — 422.
func compileStatus(err error) int {
	status := statusForError(err)
	if status == http.StatusInternalServerError && !errors.Is(err, engine.ErrInternal) {
		status = http.StatusUnprocessableEntity
	}
	return status
}

// fail records an errored query (when it reached evaluation, strategy is
// set) and writes the error response, query ID included.
func (s *server) fail(w http.ResponseWriter, qid, strategy string, status int, err error) {
	s.observe(strategy, 0, err)
	writeJSON(w, status, errorResponse{QueryID: qid, Error: err.Error()})
}

// failEval handles compile/evaluation failures: a cancellation caused by
// shutdown becomes the typed draining 503 (the client did nothing wrong and
// should retry elsewhere); everything else keeps its mapped status. Panic
// and memory-budget failures feed the resilience counters.
func (s *server) failEval(w http.ResponseWriter, ctx context.Context, qid, strategy string, status int, err error) {
	if errors.Is(err, engine.ErrCanceled) && errors.Is(context.Cause(ctx), errDraining) {
		s.failDraining(w, qid, strategy)
		return
	}
	s.mu.Lock()
	if errors.Is(err, engine.ErrInternal) {
		s.panics++
	}
	if errors.Is(err, engine.ErrMemoryBudget) {
		s.memStops++
	}
	s.mu.Unlock()
	s.fail(w, qid, strategy, status, err)
}

// failDraining writes the typed 503 shutdown response.
func (s *server) failDraining(w http.ResponseWriter, qid, strategy string) {
	s.mu.Lock()
	s.drained++
	s.mu.Unlock()
	s.observe(strategy, 0, errDraining)
	w.Header().Set("Retry-After", strconv.Itoa(retryAfterSeconds))
	writeJSON(w, http.StatusServiceUnavailable, errorResponse{
		QueryID: qid, Error: errDraining.Error(), Draining: true, RetryAfterSeconds: retryAfterSeconds,
	})
}

// observe folds one finished request into the metrics; latency is recorded
// only for successful evaluations so the histograms measure real query
// cost, not fast-path rejections.
func (s *server) observe(strategy string, d time.Duration, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.queries++
	if err != nil {
		s.errors++
		return
	}
	h := s.latency[strategy]
	if h == nil {
		h = obsv.NewHistogram()
		s.latency[strategy] = h
	}
	h.Observe(d)
}

// observeResult folds one successful evaluation into the metrics: the
// latency histogram, the rounds and storage-footprint histograms, and the
// storage high-water record (replaced whole, so the reported load factors
// describe the same evaluation as the bytes).
func (s *server) observeResult(strategy string, total time.Duration, res *pipeline.RunResult) {
	s.observe(strategy, total, nil)
	s.mu.Lock()
	defer s.mu.Unlock()
	s.rounds.Observe(float64(res.Iterations))
	s.arena.Observe(float64(res.Storage.ArenaBytes + res.Storage.IndexBytes))
	if res.Storage.ArenaBytes+res.Storage.IndexBytes > s.storageHW.ArenaBytes+s.storageHW.IndexBytes {
		s.storageHW = res.Storage
	}
}

// handleHealthz is pure liveness: the process is up and can answer HTTP.
// It stays 200 during drain — restarting a deliberately-draining process
// because its health check "failed" would defeat graceful shutdown. Routing
// decisions belong to /readyz.
func (s *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	body := map[string]any{
		"status":         "ok",
		"uptime_seconds": time.Since(s.start).Seconds(),
		"program_hash":   s.hash,
		"rules":          len(s.prog.Rules),
		"base_facts":     s.mat.BaseCount(),
		"epoch":          s.mat.Epoch(),
		"durable":        s.wl != nil,
	}
	if s.wl != nil {
		body["wal_epoch"] = s.wl.Epoch()
		body["last_snapshot_epoch"] = s.wl.SnapshotEpoch()
		body["replaying"] = s.replaying.Load()
	}
	writeJSON(w, http.StatusOK, body)
}

// handleReadyz is readiness: 200 only after warmup has filled the plan
// cache and before drain begins, so load balancers stop routing here the
// moment shutdown starts. A server still replaying its WAL tail is not
// ready either — its base has not yet caught up to the pre-crash epoch.
func (s *server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	switch {
	case s.draining.Load():
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{
			"status": "draining", "ready": false,
		})
	case s.replaying.Load():
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{
			"status": "replaying", "ready": false,
		})
	case !s.ready.Load():
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{
			"status": "warming up", "ready": false,
		})
	default:
		writeJSON(w, http.StatusOK, map[string]any{
			"status": "ready", "ready": true,
		})
	}
}

// snapshot builds the ServerStats document under the metrics lock,
// deep-copying the histograms so rendering happens outside it.
func (s *server) snapshot() obsv.ServerStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	latency := make(map[string]*obsv.Histogram, len(s.latency))
	for name, h := range s.latency {
		cp := *h
		cp.Bounds = append([]time.Duration(nil), h.Bounds...)
		cp.BucketCounts = append([]int64(nil), h.BucketCounts...)
		latency[name] = &cp
	}
	rounds := *s.rounds
	rounds.Bounds = append([]float64(nil), s.rounds.Bounds...)
	rounds.BucketCounts = append([]int64(nil), s.rounds.BucketCounts...)
	arena := *s.arena
	arena.Bounds = append([]float64(nil), s.arena.Bounds...)
	arena.BucketCounts = append([]int64(nil), s.arena.BucketCounts...)
	return obsv.ServerStats{
		Schema:           metricsSchema,
		UptimeSeconds:    time.Since(s.start).Seconds(),
		Queries:          s.queries,
		Errors:           s.errors,
		InFlight:         s.inflight.Load(),
		PlanCache:        s.cache.Stats(),
		Latency:          latency,
		Rounds:           &rounds,
		ArenaBytes:       &arena,
		SlowQueries:      s.slowSeen,
		TracedQueries:    s.traced,
		StorageHighWater: s.storageHW,
		Resilience: obsv.ResilienceStats{
			Admission:         s.limiter.Stats(),
			Panics:            s.panics,
			Degraded:          s.degraded,
			MemoryBudgetStops: s.memStops,
			Drained:           s.drained,
		},
		Mutation:   s.mat.Stats(),
		PlanSearch: s.planner.Stats(),
		Durability: s.durabilityStats(),
	}
}

// durabilityStats snapshots the WAL counters; with durability off it is
// the zero block (enabled:false), keeping the v10 schema shape stable.
func (s *server) durabilityStats() obsv.DurabilityStats {
	if s.wl == nil {
		return obsv.DurabilityStats{}
	}
	return s.wl.Stats()
}

// handleMetrics serves Prometheus text exposition by default (what scrapers
// expect of a /metrics endpoint); ?format=json keeps the structured
// factorlog/metrics/v10 document and ?format=text the human-readable table.
func (s *server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	stats := s.snapshot()
	switch r.URL.Query().Get("format") {
	case "", "prometheus":
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		fmt.Fprint(w, obsv.PromExposition(stats))
	case "json":
		writeJSON(w, http.StatusOK, stats)
	case "text":
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprint(w, obsv.ServerTable(stats))
	default:
		writeJSON(w, http.StatusBadRequest, errorResponse{
			Error: fmt.Sprintf("bad format %q (one of: prometheus, json, text)", r.URL.Query().Get("format")),
		})
	}
}

// handleSlowlog returns the recent slow queries, newest first, as finished
// trace snapshots (untraced slow queries appear with just their root span).
func (s *server) handleSlowlog(w http.ResponseWriter, r *http.Request) {
	recent := s.slowlog.Recent()
	traces := make([]trace.ContextJSON, 0, len(recent))
	for _, tc := range recent {
		traces = append(traces, tc.Snapshot())
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"threshold_ms": s.slowThreshold.Milliseconds(),
		"total":        s.slowlog.Total(),
		"traces":       traces,
	})
}

// handleTrace serves one finished trace by query ID: sampled traces first,
// then the slowlog (a slow untraced query lives only there).
func (s *server) handleTrace(w http.ResponseWriter, r *http.Request) {
	id := strings.TrimPrefix(r.URL.Path, "/debug/trace/")
	if id == "" {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "missing trace id (/debug/trace/{id})"})
		return
	}
	tc := s.traces.Get(id)
	if tc == nil {
		tc = s.slowlog.Get(id)
	}
	if tc == nil {
		writeJSON(w, http.StatusNotFound, errorResponse{Error: fmt.Sprintf("no trace %q (sampled traces and slow queries are kept for the last %d each)", id, traceRingSize)})
		return
	}
	if r.URL.Query().Get("format") == "text" {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprint(w, tc.Profile())
		return
	}
	writeJSON(w, http.StatusOK, tc.Snapshot())
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func strategyByName(name string) (pipeline.Strategy, error) {
	if name == pipeline.Auto.String() {
		return pipeline.Auto, nil
	}
	for _, s := range pipeline.AllStrategies() {
		if s.String() == name {
			return s, nil
		}
	}
	var names []string
	for _, s := range pipeline.AllStrategies() {
		names = append(names, s.String())
	}
	names = append(names, pipeline.Auto.String())
	return 0, fmt.Errorf("unknown strategy %q (one of: %s)", name, strings.Join(names, ", "))
}
