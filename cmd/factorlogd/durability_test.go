package main

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
	"time"

	"factorlog/internal/faultinject"
	"factorlog/internal/wal"
)

// durableCfg is the baseline config of every durability test: magic
// strategy, materialized serving, per-batch fsync.
func durableCfg(walDir string) config {
	return config{
		strategy: "magic", timeout: 5 * time.Second, materialize: true,
		walDir: walDir,
	}
}

// getTail reads GET /facts?since=E.
func getTail(t *testing.T, ts *httptest.Server, since int64) (int, factsTailResponse, string) {
	t.Helper()
	resp, err := http.Get(fmt.Sprintf("%s/facts?since=%d", ts.URL, since))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var tr factsTailResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(raw, &tr); err != nil {
			t.Fatalf("bad tail JSON: %v\n%s", err, raw)
		}
	}
	return resp.StatusCode, tr, string(raw)
}

// getStatusJSON reads a status endpoint (/healthz, /readyz) as a JSON map.
func getStatusJSON(t *testing.T, ts *httptest.Server, path string) (int, map[string]any) {
	t.Helper()
	resp, err := http.Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var m map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, m
}

// randomBatch builds a random mutation batch over a small edge universe;
// the same rng sequence always produces the same batches.
func randomBatch(rng *rand.Rand) string {
	var req factsRequest
	for i, n := 0, 1+rng.Intn(3); i < n; i++ {
		req.Assert = append(req.Assert, fmt.Sprintf("e(%d,%d)", 1+rng.Intn(10), 1+rng.Intn(10)))
	}
	for i, n := 0, rng.Intn(3); i < n; i++ {
		req.Retract = append(req.Retract, fmt.Sprintf("e(%d,%d)", 1+rng.Intn(10), 1+rng.Intn(10)))
	}
	body, err := json.Marshal(req)
	if err != nil {
		panic(err)
	}
	return string(body)
}

// TestKillRecoverProperty is the crash-recovery property test: a random
// batch sequence with WAL-append faults injected mid-stream, a simulated
// kill (the server is abandoned without Close), and a restart over the
// same directory. Every acknowledged batch must survive: the recovered
// server reports the exact epoch of the last 200, serves answers identical
// to an uninterrupted control server that applied only the acknowledged
// batches, and GET /facts?since=E replays precisely the batches after E.
func TestKillRecoverProperty(t *testing.T) {
	for _, seed := range []int64{1, 7, 23} {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			dir := t.TempDir()
			rng := rand.New(rand.NewSource(seed))
			_, ts := testServer(t, tcProgram, durableCfg(dir))
			// The control never crashes and never sees a fault; it receives
			// exactly the batches the durable server acknowledged.
			_, controlTS := testServer(t, tcProgram, config{
				strategy: "magic", timeout: 5 * time.Second, materialize: true,
			})

			var acked, effective int64
			var faulted int
			apply := func(n int) {
				t.Helper()
				for i := 0; i < n; i++ {
					batch := randomBatch(rng)
					status, fr, body := postFacts(t, ts, batch)
					switch status {
					case http.StatusOK:
						if fr.Epoch < acked {
							t.Fatalf("epoch went backwards: %d after %d", fr.Epoch, acked)
						}
						if fr.Epoch > acked {
							effective++
						}
						acked = fr.Epoch
						if cs, _, cbody := postFacts(t, controlTS, batch); cs != http.StatusOK {
							t.Fatalf("control rejected mirrored batch: %d: %s", cs, cbody)
						}
					case http.StatusInternalServerError:
						// Injected WalAppend fault: the batch was refused
						// before acknowledgment and must leave no trace.
						faulted++
					default:
						t.Fatalf("batch: status %d: %s", status, body)
					}
				}
			}

			apply(8)
			disable := faultinject.Enable(faultinject.Config{
				Seed: 11, MaxPeriod: 3, Points: []faultinject.Point{faultinject.WalAppend},
			})
			apply(8)
			disable()
			apply(8)
			if faulted == 0 {
				t.Fatal("fault schedule never fired; the run proved nothing about crash safety")
			}
			if acked == 0 {
				t.Fatal("no batch was ever acknowledged")
			}
			if acked != effective {
				t.Fatalf("acked epoch %d != %d effective batches (epochs must be dense)", acked, effective)
			}

			// Kill: abandon the server mid-flight — no drain, no Close. The
			// open WAL handle is simply dropped, as kill -9 would.
			ts.Close()

			// Restart over the same directory.
			srv2, ts2 := testServer(t, tcProgram, durableCfg(dir))
			if status, m := getStatusJSON(t, ts2, "/readyz"); status != http.StatusServiceUnavailable || m["status"] != "replaying" {
				t.Errorf("pre-warmup readyz after recovery = %d %v, want 503 replaying", status, m)
			}
			if warns := srv2.warmup(); len(warns) != 0 {
				t.Fatal(warns)
			}
			if status, m := getStatusJSON(t, ts2, "/readyz"); status != http.StatusOK || m["ready"] != true {
				t.Errorf("post-warmup readyz = %d %v, want 200 ready", status, m)
			}

			// The recovered epoch is exactly the last acknowledged one.
			if got := srv2.mat.Epoch(); got != acked {
				t.Fatalf("recovered epoch %d, want %d (last acknowledged)", got, acked)
			}
			_, hm := getStatusJSON(t, ts2, "/healthz")
			if got := int64(hm["wal_epoch"].(float64)); got != acked {
				t.Errorf("healthz wal_epoch = %d, want %d", got, acked)
			}

			// Answers equal the uninterrupted control run.
			for _, q := range []string{"t(5,Y)", "t(1,Y)"} {
				got, _ := answersOf(t, ts2, q, "magic")
				want, _ := answersOf(t, controlTS, q, "magic")
				if !reflect.DeepEqual(got, want) {
					t.Errorf("%s: recovered %v != control %v", q, got, want)
				}
			}

			// The committed log replays precisely the batches after E.
			status, tail, body := getTail(t, ts2, 0)
			if status != http.StatusOK {
				t.Fatalf("tail since=0: %d: %s", status, body)
			}
			if tail.Epoch != acked || int64(len(tail.Batches)) != acked {
				t.Fatalf("tail since=0: epoch %d with %d batches, want %d dense batches", tail.Epoch, len(tail.Batches), acked)
			}
			for i, b := range tail.Batches {
				if b.Epoch != int64(i)+1 {
					t.Fatalf("tail batch %d has epoch %d, want %d", i, b.Epoch, i+1)
				}
			}
			mid := acked / 2
			if status, tail, _ := getTail(t, ts2, mid); status != http.StatusOK ||
				int64(len(tail.Batches)) != acked-mid ||
				(len(tail.Batches) > 0 && tail.Batches[0].Epoch != mid+1) {
				t.Errorf("tail since=%d: %d batches starting at %d, want %d starting at %d",
					mid, len(tail.Batches), tail.Batches[0].Epoch, acked-mid, mid+1)
			}
			if status, tail, _ := getTail(t, ts2, acked); status != http.StatusOK || len(tail.Batches) != 0 {
				t.Errorf("tail since=%d (caught up): %d with %d batches, want 200 empty", acked, status, len(tail.Batches))
			}
		})
	}
}

// TestKillRecoverWithSnapshots exercises the snapshot path end to end:
// per-epoch snapshots with tiny segments force rotation and retention, a
// kill, and a recovery that must come back from snapshot + tail — and the
// pruned history must answer 410 Gone to tailing replicas.
func TestKillRecoverWithSnapshots(t *testing.T) {
	dir := t.TempDir()
	cfg := durableCfg(dir)
	cfg.snapshotEvery = 1
	cfg.walSegmentBytes = 64 // rotate on every batch so retention can prune
	srv, ts := testServer(t, tcProgram, cfg)

	var acked int64
	for i := 0; i < 4; i++ {
		body := fmt.Sprintf(`{"assert":["e(%d,%d)"]}`, 20+i, 21+i)
		status, fr, raw := postFacts(t, ts, body)
		if status != http.StatusOK {
			t.Fatalf("batch %d: %d: %s", i, status, raw)
		}
		acked = fr.Epoch
	}
	if got := srv.wl.SnapshotEpoch(); got != acked {
		t.Fatalf("snapshot epoch %d after %d batches with snapshot-every 1, want %d", got, acked, acked)
	}
	control, _ := answersOf(t, ts, "t(20,Y)", "magic")
	ts.Close() // kill

	srv2, ts2 := testServer(t, tcProgram, cfg)
	if got := srv2.mat.Epoch(); got != acked {
		t.Fatalf("recovered epoch %d, want %d", got, acked)
	}
	if got, _ := answersOf(t, ts2, "t(20,Y)", "magic"); !reflect.DeepEqual(got, control) {
		t.Errorf("recovered answers %v != pre-kill %v", got, control)
	}
	_, hm := getStatusJSON(t, ts2, "/healthz")
	if got := int64(hm["last_snapshot_epoch"].(float64)); got != acked {
		t.Errorf("healthz last_snapshot_epoch = %d, want %d", got, acked)
	}

	// Retention pruned the pre-snapshot segments: epoch-0 history is gone.
	status, _, body := getTail(t, ts2, 0)
	if status != http.StatusGone {
		t.Fatalf("tail since=0 after compaction: %d, want 410: %s", status, body)
	}
	var gone struct {
		FirstAvailable int64 `json:"first_available_epoch"`
		SnapshotEpoch  int64 `json:"last_snapshot_epoch"`
	}
	if err := json.Unmarshal([]byte(body), &gone); err != nil {
		t.Fatalf("bad 410 body: %v\n%s", err, body)
	}
	if gone.SnapshotEpoch != acked || gone.FirstAvailable <= 0 {
		t.Errorf("410 body = %+v, want snapshot at %d and a positive first epoch", gone, acked)
	}
	// Tailing from the snapshot epoch itself still works.
	if status, tail, _ := getTail(t, ts2, acked); status != http.StatusOK || len(tail.Batches) != 0 {
		t.Errorf("tail since=%d: %d with %d batches, want 200 empty", acked, status, len(tail.Batches))
	}
}

// TestFactsTailRequestValidation pins the tail endpoint's client-error
// contract on a live durable server.
func TestFactsTailRequestValidation(t *testing.T) {
	_, ts := testServer(t, tcProgram, durableCfg(t.TempDir()))
	for _, path := range []string{"/facts?since=", "/facts?since=-1", "/facts?since=x"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("GET %s = %d, want 400", path, resp.StatusCode)
		}
	}
	// A fresh log tails cleanly from zero.
	if status, tail, body := getTail(t, ts, 0); status != http.StatusOK || len(tail.Batches) != 0 || tail.Epoch != 0 {
		t.Errorf("empty-log tail = %d %s", status, body)
	}
}

// TestRecoverRefusesProgramMismatch: a WAL records one program's mutation
// history; starting a different program over it must refuse with the typed
// error rather than replay foreign batches.
func TestRecoverRefusesProgramMismatch(t *testing.T) {
	dir := t.TempDir()
	srv, ts := testServer(t, tcProgram, durableCfg(dir))
	if status, _, body := postFacts(t, ts, `{"assert":["e(8,9)"]}`); status != http.StatusOK {
		t.Fatalf("batch: %d: %s", status, body)
	}
	ts.Close()
	srv.Close()

	other := tcProgram + "\nq(X) :- e(X, X).\n"
	_, err := newServer(other, "", durableCfg(dir))
	if !errors.Is(err, wal.ErrProgramMismatch) {
		t.Fatalf("startup over a foreign WAL: %v, want ErrProgramMismatch", err)
	}

	// The original program still recovers.
	srv2, err := newServer(tcProgram, "", durableCfg(dir))
	if err != nil {
		t.Fatalf("original program refused its own WAL: %v", err)
	}
	defer srv2.Close()
	if got := srv2.mat.Epoch(); got != 1 {
		t.Errorf("recovered epoch %d, want 1", got)
	}
}

// TestRecoverReplayFault: a fault injected while decoding the log during
// startup surfaces as an Open error (no half-replayed server), and the
// next attempt recovers everything.
func TestRecoverReplayFault(t *testing.T) {
	dir := t.TempDir()
	srv, ts := testServer(t, tcProgram, durableCfg(dir))
	if status, _, body := postFacts(t, ts, `{"assert":["e(8,9)"]}`); status != http.StatusOK {
		t.Fatalf("batch: %d: %s", status, body)
	}
	ts.Close()
	srv.Close()

	disable := faultinject.Enable(faultinject.Config{
		Seed: 1, MaxPeriod: 1, Points: []faultinject.Point{faultinject.Replay},
	})
	_, err := newServer(tcProgram, "", durableCfg(dir))
	disable()
	var f *faultinject.Fault
	if !errors.As(err, &f) || f.Point != faultinject.Replay {
		t.Fatalf("startup under replay fault: %v, want the injected fault", err)
	}

	srv2, err := newServer(tcProgram, "", durableCfg(dir))
	if err != nil {
		t.Fatalf("recovery after aborted replay: %v", err)
	}
	defer srv2.Close()
	if got := srv2.mat.Epoch(); got != 1 {
		t.Errorf("recovered epoch %d, want 1", got)
	}
}

// TestDurabilityMetrics pins the v10 durability surface: the JSON block
// and the Prometheus families, in both enabled and disabled states.
func TestDurabilityMetrics(t *testing.T) {
	_, ts := testServer(t, tcProgram, durableCfg(t.TempDir()))
	if status, _, body := postFacts(t, ts, `{"assert":["e(8,9)"]}`); status != http.StatusOK {
		t.Fatalf("batch: %d: %s", status, body)
	}

	resp, err := http.Get(ts.URL + "/metrics?format=json")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var doc struct {
		Schema     string `json:"schema"`
		Durability struct {
			Enabled       bool  `json:"enabled"`
			WalEpoch      int64 `json:"wal_epoch"`
			BatchesLogged int64 `json:"batches_logged"`
			Fsyncs        int64 `json:"fsyncs"`
		} `json:"durability"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	if doc.Schema != metricsSchema {
		t.Errorf("schema = %q, want %q", doc.Schema, metricsSchema)
	}
	d := doc.Durability
	if !d.Enabled || d.WalEpoch != 1 || d.BatchesLogged != 1 || d.Fsyncs < 1 {
		t.Errorf("durability block = %+v, want enabled at epoch 1 with 1 batch logged", d)
	}

	promResp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer promResp.Body.Close()
	prom, err := io.ReadAll(promResp.Body)
	if err != nil {
		t.Fatal(err)
	}
	for _, family := range []string{
		"factorlog_wal_enabled 1",
		"factorlog_wal_epoch 1",
		"factorlog_wal_batches_logged_total 1",
		"factorlog_wal_fsyncs_total",
		"factorlog_snapshot_epoch 0",
		"factorlog_snapshots_written_total 0",
	} {
		if !containsLine(string(prom), family) {
			t.Errorf("prometheus exposition missing %q", family)
		}
	}

	// Durability off: the block stays in the schema, zeroed.
	_, plainTS := testServer(t, tcProgram, config{strategy: "magic", timeout: 5 * time.Second})
	plainResp, err := http.Get(plainTS.URL + "/metrics?format=json")
	if err != nil {
		t.Fatal(err)
	}
	defer plainResp.Body.Close()
	var plain struct {
		Durability struct {
			Enabled  bool  `json:"enabled"`
			WalEpoch int64 `json:"wal_epoch"`
		} `json:"durability"`
	}
	if err := json.NewDecoder(plainResp.Body).Decode(&plain); err != nil {
		t.Fatal(err)
	}
	if plain.Durability.Enabled || plain.Durability.WalEpoch != 0 {
		t.Errorf("durability block without -wal-dir = %+v, want zeroed", plain.Durability)
	}
}

// containsLine reports whether one exposition line starts with prefix.
func containsLine(doc, prefix string) bool {
	for _, line := range strings.Split(doc, "\n") {
		if strings.HasPrefix(line, prefix) {
			return true
		}
	}
	return false
}
