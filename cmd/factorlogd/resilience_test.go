package main

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/url"
	"strings"
	"testing"
	"time"

	"factorlog/internal/faultinject"
	"factorlog/internal/obsv"
)

func serverMetrics(t *testing.T, url string) obsv.ServerStats {
	t.Helper()
	resp, err := http.Get(url + "/metrics?format=json")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var stats obsv.ServerStats
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	return stats
}

// TestAdmissionShed saturates a capacity-1, queue-0 limiter and checks the
// second request is shed with 429 + Retry-After instead of waiting.
func TestAdmissionShed(t *testing.T) {
	s, ts := testServer(t, tcProgram, config{
		strategy: "magic", timeout: 5 * time.Second, maxConcurrency: 1, maxQueue: 0,
	})
	// Hold the only admission slot directly; no timing games.
	release, err := s.limiter.Acquire(context.Background(), 1)
	if err != nil {
		t.Fatal(err)
	}
	defer release()

	resp, err := http.Get(ts.URL + "/query?q=" + url.QueryEscape("t(5,Y)"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429: %s", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 response missing Retry-After header")
	}
	var er errorResponse
	if err := json.Unmarshal(body, &er); err != nil || er.RetryAfterSeconds < 1 {
		t.Errorf("429 body %s: want typed errorResponse with retry_after_seconds", body)
	}

	stats := serverMetrics(t, ts.URL)
	if stats.Resilience.Admission.Shed < 1 {
		t.Errorf("shed counter = %d, want >= 1", stats.Resilience.Admission.Shed)
	}
}

// TestAdmissionQueueTimeout parks a request in the wait queue until its
// deadline expires; the failure is typed, 429, and counted.
func TestAdmissionQueueTimeout(t *testing.T) {
	s, ts := testServer(t, tcProgram, config{
		strategy: "magic", timeout: 5 * time.Second, maxConcurrency: 1, maxQueue: 4,
	})
	release, err := s.limiter.Acquire(context.Background(), 1)
	if err != nil {
		t.Fatal(err)
	}
	defer release()

	status, _, body := getQuery(t, ts, url.Values{"q": {"t(5,Y)"}, "timeout_ms": {"50"}})
	if status != http.StatusTooManyRequests {
		t.Fatalf("queued-past-deadline status %d, want 429: %s", status, body)
	}
	if !strings.Contains(body, "queued") {
		t.Errorf("body %q does not name the queue wait", body)
	}
	if got := serverMetrics(t, ts.URL).Resilience.Admission.QueueTimeouts; got < 1 {
		t.Errorf("queue timeouts = %d, want >= 1", got)
	}
}

// TestReadyzLifecycle walks readiness through its three states — warming
// up, ready, draining — and checks liveness stays 200 throughout.
func TestReadyzLifecycle(t *testing.T) {
	s, ts := testServer(t, tcProgram, config{strategy: "magic", timeout: 5 * time.Second})

	get := func(path string) (int, map[string]any) {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var m map[string]any
		if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, m
	}

	if status, m := get("/readyz"); status != http.StatusServiceUnavailable || m["status"] != "warming up" {
		t.Errorf("pre-warmup readyz: %d %v, want 503 warming up", status, m)
	}
	if warns := s.warmup(); len(warns) != 0 {
		t.Fatal(warns)
	}
	if status, m := get("/readyz"); status != http.StatusOK || m["ready"] != true {
		t.Errorf("post-warmup readyz: %d %v, want 200 ready", status, m)
	}

	s.beginDrain()
	if status, m := get("/readyz"); status != http.StatusServiceUnavailable || m["status"] != "draining" {
		t.Errorf("draining readyz: %d %v, want 503 draining", status, m)
	}
	// Liveness is a different question: the process is still healthy.
	if status, m := get("/healthz"); status != http.StatusOK || m["status"] != "ok" {
		t.Errorf("draining healthz: %d %v, want 200 ok", status, m)
	}

	// New queries are refused with the typed draining body.
	resp, err := http.Get(ts.URL + "/query?q=" + url.QueryEscape("t(5,Y)"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	var er errorResponse
	if resp.StatusCode != http.StatusServiceUnavailable || json.Unmarshal(body, &er) != nil || !er.Draining {
		t.Errorf("query during drain: %d %s, want typed 503 draining body", resp.StatusCode, body)
	}
	if got := serverMetrics(t, ts.URL).Resilience.Drained; got < 1 {
		t.Errorf("drained counter = %d, want >= 1", got)
	}
}

// TestDrainCancelsInFlight starts a divergent evaluation, then drains: the
// in-flight request must come back promptly with the typed 503, not run to
// its 10s deadline or hold shutdown hostage.
func TestDrainCancelsInFlight(t *testing.T) {
	s, ts := testServer(t, divergentProgram, config{strategy: "semi-naive", timeout: 10 * time.Second})

	type result struct {
		status int
		body   string
	}
	done := make(chan result, 1)
	go func() {
		resp, err := http.Get(ts.URL + "/query?q=" + url.QueryEscape("n(X)"))
		if err != nil {
			done <- result{0, err.Error()}
			return
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		done <- result{resp.StatusCode, string(body)}
	}()

	// Wait for the evaluation to be in flight before draining.
	deadline := time.Now().Add(5 * time.Second)
	for s.inflight.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("query never became in-flight")
		}
		time.Sleep(time.Millisecond)
	}
	start := time.Now()
	s.beginDrain()

	select {
	case r := <-done:
		if r.status != http.StatusServiceUnavailable {
			t.Fatalf("drained in-flight query: status %d: %s", r.status, r.body)
		}
		var er errorResponse
		if json.Unmarshal([]byte(r.body), &er) != nil || !er.Draining {
			t.Errorf("body %s: want typed draining 503", r.body)
		}
		if waited := time.Since(start); waited > 5*time.Second {
			t.Errorf("cancellation took %v — the evaluation ran out its own deadline", waited)
		}
	case <-time.After(8 * time.Second):
		t.Fatal("in-flight query did not return after drain")
	}
}

// TestQueryMemoryBudget drives the per-request max_bytes override to a
// value no evaluation fits in and checks the typed 422 + counter.
func TestQueryMemoryBudget(t *testing.T) {
	_, ts := testServer(t, tcProgram, config{strategy: "magic", timeout: 5 * time.Second})

	status, _, body := getQuery(t, ts, url.Values{"q": {"t(5,Y)"}, "max_bytes": {"16"}})
	if status != http.StatusUnprocessableEntity {
		t.Fatalf("max_bytes=16: status %d, want 422: %s", status, body)
	}
	if !strings.Contains(body, "memory budget") {
		t.Errorf("body %q does not name the memory budget", body)
	}
	if got := serverMetrics(t, ts.URL).Resilience.MemoryBudgetStops; got < 1 {
		t.Errorf("memory_budget_stops = %d, want >= 1", got)
	}

	// A generous budget does not interfere.
	if status, qr, body := getQuery(t, ts, url.Values{"q": {"t(5,Y)"}, "max_bytes": {"67108864"}}); status != http.StatusOK || qr.AnswerCount != 3 {
		t.Errorf("max_bytes=64MiB: status %d answers %d: %s", status, qr.AnswerCount, body)
	}
}

// TestWorkerPanicDegradedQuery injects a panic into every parallel worker:
// the query still answers 200 (via the sequential retry) and is flagged
// degraded in both the response and /metrics.
func TestWorkerPanicDegradedQuery(t *testing.T) {
	_, ts := testServer(t, tcProgram, config{strategy: "magic", timeout: 5 * time.Second})
	disable := faultinject.Enable(faultinject.Config{
		Seed: 1, MaxPeriod: 1, Points: []faultinject.Point{faultinject.WorkerStart},
	})
	defer disable()

	status, qr, body := getQuery(t, ts, url.Values{"q": {"t(5,Y)"}, "workers": {"4"}})
	if status != http.StatusOK {
		t.Fatalf("degraded query: status %d: %s", status, body)
	}
	if !qr.Degraded {
		t.Error("response not flagged degraded after worker panics")
	}
	if got := fmt_answers(qr.Answers); got != "[(6) (7) (8)]" {
		t.Errorf("degraded answers = %s, want [(6) (7) (8)]", got)
	}
	if got := serverMetrics(t, ts.URL).Resilience.Degraded; got < 1 {
		t.Errorf("degraded counter = %d, want >= 1", got)
	}
}

// TestPanicIsReported500 arms a point the sequential path also hits, so
// both the parallel run and the retry die: the response must be a typed
// 500, never a crashed connection, and the panic is counted.
func TestPanicIsReported500(t *testing.T) {
	_, ts := testServer(t, tcProgram, config{strategy: "magic", timeout: 5 * time.Second})
	disable := faultinject.Enable(faultinject.Config{
		Seed: 1, MaxPeriod: 1, Points: []faultinject.Point{faultinject.ArenaGrow},
	})
	status, _, body := getQuery(t, ts, url.Values{"q": {"t(5,Y)"}})
	disable()
	if status != http.StatusInternalServerError {
		t.Fatalf("panicking eval: status %d, want 500: %s", status, body)
	}
	if !strings.Contains(body, "internal error") {
		t.Errorf("body %q does not carry the typed internal error", body)
	}
	if got := serverMetrics(t, ts.URL).Resilience.Panics; got < 1 {
		t.Errorf("panics counter = %d, want >= 1", got)
	}
}

func fmt_answers(a []string) string {
	return "[" + strings.Join(a, " ") + "]"
}
