package main

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/url"
	"strings"
	"testing"
	"time"
)

// chainProgram is linear transitive closure over a tiny seed chain — the
// shape whose optimal strategy flips from semi-naive (tiny EDB) to a
// factored rewrite (long chain) as facts arrive.
const chainProgram = `
tc(X, Y) :- e(X, Y).
tc(X, Y) :- e(X, Z), tc(Z, Y).

e(1, 2).
e(2, 3).
e(3, 4).

?- tc(1, Y).
`

func TestQueryStrategyAuto(t *testing.T) {
	_, ts := testServer(t, chainProgram, config{strategy: "magic", timeout: 5 * time.Second})

	status, qr, body := getQuery(t, ts, url.Values{"q": {"tc(1,Y)"}, "strategy": {"auto"}})
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, body)
	}
	if !qr.Auto {
		t.Error("response not marked auto")
	}
	if qr.Strategy == "auto" || qr.Strategy == "" {
		t.Errorf("strategy = %q, want the optimizer's concrete pick", qr.Strategy)
	}
	if qr.AnswerCount != 3 {
		t.Errorf("answers = %v, want 3 chain successors", qr.Answers)
	}

	// The remembered decision serves the repeat from the plan cache.
	status, qr, body = getQuery(t, ts, url.Values{"q": {"tc(1,Y)"}, "strategy": {"auto"}})
	if status != http.StatusOK {
		t.Fatalf("repeat status %d: %s", status, body)
	}
	if qr.PlanCache != "hit" {
		t.Errorf("repeat plan_cache = %q, want hit", qr.PlanCache)
	}
	if qr.Repicked {
		t.Error("repeat without mutations reported a repick")
	}
}

func TestQueryAutoMaterialized(t *testing.T) {
	_, ts := testServer(t, chainProgram, config{
		strategy: "magic", timeout: 5 * time.Second, materialize: true,
	})
	status, qr, body := getQuery(t, ts, url.Values{"q": {"tc(1,Y)"}, "strategy": {"auto"}})
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, body)
	}
	if !qr.Auto || qr.Materialized == "" {
		t.Errorf("auto=%v materialized=%q, want auto-served materialization", qr.Auto, qr.Materialized)
	}
	if qr.AnswerCount != 3 {
		t.Errorf("answers = %v", qr.Answers)
	}
}

func TestQueryAutoExplainPlanCandidates(t *testing.T) {
	_, ts := testServer(t, chainProgram, config{strategy: "magic", timeout: 5 * time.Second})
	resp, err := http.Get(ts.URL + "/query?" + url.Values{
		"q": {"tc(1,Y)"}, "strategy": {"auto"}, "explain": {"plan"},
	}.Encode())
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var er explainResponse
	if err := json.Unmarshal(body, &er); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, body)
	}
	if er.Plan == nil || len(er.Plan.Candidates) == 0 {
		t.Fatalf("explain=plan with auto carries no candidate table: %s", body)
	}
	chosen := 0
	for _, c := range er.Plan.Candidates {
		if c.Chosen {
			chosen++
			if c.Strategy != er.Plan.Strategy {
				t.Errorf("chosen candidate %s != plan strategy %s", c.Strategy, er.Plan.Strategy)
			}
		}
	}
	if chosen != 1 {
		t.Errorf("%d chosen candidates, want 1", chosen)
	}
}

// A large /facts batch flips the EDB's shape; the change-ratio trigger must
// re-cost the remembered decision and re-pick an arity-reduced plan, and the
// v9 metrics must report the episode.
func TestAutoRepickAfterFactsSkewFlip(t *testing.T) {
	_, ts := testServer(t, chainProgram, config{strategy: "magic", timeout: 10 * time.Second})

	status, first, body := getQuery(t, ts, url.Values{"q": {"tc(1,Y)"}, "strategy": {"auto"}})
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, body)
	}

	// Assert a 2000-edge chain: mutations/base >> the re-cost ratio.
	var batch factsRequest
	for i := 4; i <= 2000; i++ {
		batch.Assert = append(batch.Assert, fmtEdge(i, i+1))
	}
	buf, _ := json.Marshal(batch)
	resp, err := http.Post(ts.URL+"/facts", "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/facts status %d", resp.StatusCode)
	}

	status, flipped, body := getQuery(t, ts, url.Values{"q": {"tc(1,Y)"}, "strategy": {"auto"}})
	if status != http.StatusOK {
		t.Fatalf("post-flip status %d: %s", status, body)
	}
	if !flipped.Repicked {
		t.Errorf("post-flip response not marked repicked (strategy %s -> %s)",
			first.Strategy, flipped.Strategy)
	}
	if flipped.Strategy == first.Strategy {
		t.Errorf("strategy unchanged (%s) after skew flip", flipped.Strategy)
	}
	if flipped.AnswerCount != 2000 {
		t.Errorf("post-flip answers = %d, want 2000", flipped.AnswerCount)
	}

	// /metrics: schema v9 with the episode in plan_search, and the new
	// Prometheus families present.
	mresp, err := http.Get(ts.URL + "/metrics?format=json")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	var doc struct {
		Schema     string `json:"schema"`
		PlanSearch struct {
			Picks   int64 `json:"picks"`
			Recosts int64 `json:"recosts"`
			Repicks int64 `json:"repicks"`
		} `json:"plan_search"`
	}
	if err := json.NewDecoder(mresp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	if doc.Schema != "factorlog/metrics/v10" {
		t.Errorf("schema = %q, want factorlog/metrics/v10", doc.Schema)
	}
	if doc.PlanSearch.Picks < 1 || doc.PlanSearch.Recosts < 1 || doc.PlanSearch.Repicks < 1 {
		t.Errorf("plan_search = %+v, want at least one pick, recost, and repick", doc.PlanSearch)
	}

	presp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer presp.Body.Close()
	prom, _ := io.ReadAll(presp.Body)
	for _, family := range []string{
		"factorlog_autoplan_picks", "factorlog_autoplan_recosts",
		"factorlog_autoplan_repicks", "factorlog_autoplan_wins",
		"factorlog_plan_recost_seconds",
	} {
		if !strings.Contains(string(prom), family) {
			t.Errorf("prometheus exposition missing %s", family)
		}
	}
}

func fmtEdge(a, b int) string {
	return "e(" + itoa(a) + ", " + itoa(b) + ")"
}

func itoa(n int) string {
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
