package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"reflect"
	"strings"
	"testing"
	"time"

	"factorlog/internal/obsv"
)

func postFacts(t *testing.T, ts *httptest.Server, body string) (int, factsResponse, string) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/facts", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var fr factsResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(raw, &fr); err != nil {
			t.Fatalf("bad facts JSON: %v\n%s", err, raw)
		}
	}
	return resp.StatusCode, fr, string(raw)
}

func answersOf(t *testing.T, ts *httptest.Server, query, strategy string) ([]string, queryResponse) {
	t.Helper()
	status, qr, body := getQuery(t, ts, url.Values{"q": {query}, "strategy": {strategy}})
	if status != http.StatusOK {
		t.Fatalf("query %s (%s): status %d: %s", query, strategy, status, body)
	}
	return qr.Answers, qr
}

func TestFactsAssertRetractLifecycle(t *testing.T) {
	_, ts := testServer(t, tcProgram, config{strategy: "magic", timeout: 5 * time.Second, materialize: true})

	answers, qr := answersOf(t, ts, "t(5,Y)", "magic")
	if len(answers) != 3 || qr.Epoch != 0 {
		t.Fatalf("seed answers/epoch = %v/%d, want 3 answers at epoch 0", answers, qr.Epoch)
	}
	if qr.Materialized != "build" {
		t.Errorf("first materialized serve kind = %q, want build", qr.Materialized)
	}

	// Assert an edge extending the 5→…→8 chain.
	status, fr, body := postFacts(t, ts, `{"assert":["e(8,9)."]}`)
	if status != http.StatusOK {
		t.Fatalf("assert: status %d: %s", status, body)
	}
	if fr.Epoch != 1 || fr.Asserted != 1 {
		t.Errorf("assert response = %+v, want epoch 1, asserted 1", fr)
	}
	answers, qr = answersOf(t, ts, "t(5,Y)", "magic")
	if len(answers) != 4 || qr.Epoch != 1 {
		t.Errorf("post-assert answers/epoch = %v/%d, want 4 answers at epoch 1", answers, qr.Epoch)
	}
	if qr.Materialized != "delta" {
		t.Errorf("post-assert serve kind = %q, want delta", qr.Materialized)
	}

	// Re-serving with no mutation is a hit at the same epoch.
	_, qr = answersOf(t, ts, "t(5,Y)", "magic")
	if qr.Materialized != "hit" || qr.Epoch != 1 {
		t.Errorf("unchanged serve = %q at epoch %d, want hit at 1", qr.Materialized, qr.Epoch)
	}

	// Retract it again: the derived closure shrinks back.
	status, fr, body = postFacts(t, ts, `{"retract":["e(8,9)"]}`)
	if status != http.StatusOK {
		t.Fatalf("retract: status %d: %s", status, body)
	}
	if fr.Epoch != 2 || fr.Retracted != 1 {
		t.Errorf("retract response = %+v, want epoch 2, retracted 1", fr)
	}
	answers, qr = answersOf(t, ts, "t(5,Y)", "magic")
	if len(answers) != 3 || qr.Epoch != 2 {
		t.Errorf("post-retract answers/epoch = %v/%d, want 3 answers at epoch 2", answers, qr.Epoch)
	}

	// Noop batch: no epoch advance.
	status, fr, _ = postFacts(t, ts, `{"assert":["e(5,6)"],"retract":["e(8,9)"]}`)
	if status != http.StatusOK || fr.Epoch != 2 || fr.NoopAsserts != 1 || fr.NoopRetracts != 1 {
		t.Errorf("noop batch = %d %+v, want 200 at epoch 2 with both noops", status, fr)
	}
}

// TestFactsMaterializedMatchesScratch is the serving-layer differential: a
// mutated server answers identically through materializations and through
// from-scratch evaluation (-materialize=false), across strategies.
func TestFactsMaterializedMatchesScratch(t *testing.T) {
	batches := []string{
		`{"assert":["e(8,9)","e(9,10)"]}`,
		`{"retract":["e(6,7)"]}`,
		`{"assert":["e(6,7)","e(2,5)"],"retract":["e(1,2)"]}`,
	}
	for _, strategy := range []string{"semi-naive", "magic", "factored", "sup-magic"} {
		_, matTS := testServer(t, tcProgram, config{strategy: strategy, timeout: 5 * time.Second, materialize: true})
		_, scratchTS := testServer(t, tcProgram, config{strategy: strategy, timeout: 5 * time.Second})
		for i, b := range batches {
			for _, ts := range []*httptest.Server{matTS, scratchTS} {
				if status, _, body := postFacts(t, ts, b); status != http.StatusOK {
					t.Fatalf("%s batch %d: status %d: %s", strategy, i, status, body)
				}
			}
			matAns, matQR := answersOf(t, matTS, "t(5,Y)", strategy)
			scratchAns, scratchQR := answersOf(t, scratchTS, "t(5,Y)", strategy)
			if !reflect.DeepEqual(matAns, scratchAns) {
				t.Errorf("%s batch %d: materialized %v != scratch %v", strategy, i, matAns, scratchAns)
			}
			if matQR.Epoch != scratchQR.Epoch {
				t.Errorf("%s batch %d: epochs diverge: %d vs %d", strategy, i, matQR.Epoch, scratchQR.Epoch)
			}
			if scratchQR.Materialized != "" {
				t.Errorf("%s batch %d: scratch server reported materialized=%q", strategy, i, scratchQR.Materialized)
			}
		}
	}
}

// TestFactsColdRestartEquivalence: answers after a mutation sequence equal
// those of a fresh server started with the mutated base as its program —
// the consistency guarantee docs/INCREMENTAL.md states.
func TestFactsColdRestartEquivalence(t *testing.T) {
	srv, ts := testServer(t, tcProgram, config{strategy: "magic", timeout: 5 * time.Second, materialize: true})
	for _, b := range []string{
		`{"assert":["e(8,9)","e(2,3)"]}`,
		`{"retract":["e(7,8)","e(1,2)"]}`,
	} {
		if status, _, body := postFacts(t, ts, b); status != http.StatusOK {
			t.Fatalf("batch: status %d: %s", status, body)
		}
	}
	liveAnswers, _ := answersOf(t, ts, "t(5,Y)", "magic")

	// Rebuild the program source from the mutated base.
	var cold strings.Builder
	cold.WriteString(`
t(X, Y) :- t(X, W), t(W, Y).
t(X, Y) :- e(X, W), t(W, Y).
t(X, Y) :- t(X, W), e(W, Y).
t(X, Y) :- e(X, Y).
`)
	for _, f := range srv.mat.BaseFacts() {
		fmt.Fprintf(&cold, "%s.\n", f)
	}
	_, coldTS := testServer(t, cold.String(), config{strategy: "magic", timeout: 5 * time.Second, materialize: true})
	coldAnswers, _ := answersOf(t, coldTS, "t(5,Y)", "magic")
	if !reflect.DeepEqual(liveAnswers, coldAnswers) {
		t.Errorf("mutated server %v != cold restart %v", liveAnswers, coldAnswers)
	}
}

func TestFactsRejections(t *testing.T) {
	srv, ts := testServer(t, tcProgram, config{strategy: "magic", timeout: 5 * time.Second, materialize: true})

	// Wrong method. GET is the log-tailing read, so only other verbs 405.
	req, err := http.NewRequest(http.MethodDelete, ts.URL+"/facts", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed || resp.Header.Get("Allow") != "GET, POST" {
		t.Errorf("DELETE /facts = %d (Allow %q), want 405 with Allow: GET, POST", resp.StatusCode, resp.Header.Get("Allow"))
	}

	// Tailing a server without a durable log is a client error.
	resp, err = http.Get(ts.URL + "/facts?since=0")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("GET /facts?since=0 without -wal-dir = %d, want 400", resp.StatusCode)
	}

	// Malformed JSON, empty batch, unparseable atom.
	for _, tc := range []struct {
		body string
		want int
	}{
		{`{`, http.StatusBadRequest},
		{`{}`, http.StatusBadRequest},
		{`{"assert":["e(1,"]}`, http.StatusBadRequest},
		// Validation failures: non-ground and arity mismatch are 422.
		{`{"assert":["e(X,1)"]}`, http.StatusUnprocessableEntity},
		{`{"assert":["e(1,2,3)"]}`, http.StatusUnprocessableEntity},
	} {
		status, _, body := postFacts(t, ts, tc.body)
		if status != tc.want {
			t.Errorf("POST %s = %d, want %d (%s)", tc.body, status, tc.want, body)
		}
	}
	if srv.mat.Epoch() != 0 {
		t.Errorf("rejected batches advanced the epoch to %d", srv.mat.Epoch())
	}

	// Oversized body: 413.
	big := bytes.Repeat([]byte("x"), maxFactsBody+1)
	status, _, _ := postFacts(t, ts, fmt.Sprintf(`{"assert":["%s"]}`, big))
	if status != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized body = %d, want 413", status)
	}

	// Draining: typed 503.
	srv.beginDrain()
	status, _, body := postFacts(t, ts, `{"assert":["e(8,9)"]}`)
	if status != http.StatusServiceUnavailable || !strings.Contains(body, `"draining": true`) {
		t.Errorf("draining POST = %d: %s", status, body)
	}
}

func TestFactsMetricsAndHealth(t *testing.T) {
	_, ts := testServer(t, tcProgram, config{strategy: "magic", timeout: 5 * time.Second, materialize: true})
	answersOf(t, ts, "t(5,Y)", "magic")
	if status, _, body := postFacts(t, ts, `{"assert":["e(8,9)"],"retract":["e(1,2)","e(9,9)"]}`); status != http.StatusOK {
		t.Fatalf("mutation: %d %s", status, body)
	}
	answersOf(t, ts, "t(5,Y)", "magic")

	// JSON metrics: schema v9, mutation block populated.
	resp, err := http.Get(ts.URL + "/metrics?format=json")
	if err != nil {
		t.Fatal(err)
	}
	var stats obsv.ServerStats
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if stats.Schema != "factorlog/metrics/v10" {
		t.Errorf("schema = %q, want factorlog/metrics/v10", stats.Schema)
	}
	m := stats.Mutation
	if m.Epoch != 1 || m.Batches != 1 || m.FactsAsserted != 1 || m.FactsRetracted != 1 || m.NoopRetracts != 1 {
		t.Errorf("mutation block = %+v, want epoch 1, 1 batch, 1/1 changes, 1 noop retract", m)
	}
	if m.Builds != 1 || m.Deltas != 1 || m.Entries != 1 {
		t.Errorf("refresh counters = builds %d deltas %d entries %d, want 1/1/1", m.Builds, m.Deltas, m.Entries)
	}

	// Prometheus exposition: parses strictly and carries the new families.
	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	prom, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	fams, err := obsv.PromFamilies(string(prom))
	if err != nil {
		t.Fatalf("exposition does not parse: %v", err)
	}
	for _, fam := range []string{
		"factorlog_epoch", "factorlog_base_facts", "factorlog_fact_batches_total",
		"factorlog_facts_asserted_total", "factorlog_facts_retracted_total",
		"factorlog_materializations", "factorlog_mat_refresh_hits_total",
		"factorlog_mat_refresh_deltas_total", "factorlog_mat_refresh_seconds",
		"factorlog_mat_change_ratio",
	} {
		if _, ok := fams[fam]; !ok {
			t.Errorf("exposition missing family %s", fam)
		}
	}
	if !strings.Contains(string(prom), "factorlog_epoch 1") {
		t.Error("exposition does not report epoch 1")
	}

	// /healthz reports the live base size and epoch.
	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if health["base_facts"].(float64) != 4 || health["epoch"].(float64) != 1 {
		t.Errorf("healthz base_facts/epoch = %v/%v, want 4/1", health["base_facts"], health["epoch"])
	}
}
