// Command factorlogd is a long-lived HTTP/JSON query server: it loads a
// Datalog program (and optionally an EDB and constraints) at startup,
// compiles each queried (predicate, adornment, strategy) shape once into a
// plan cache, and serves concurrent queries against the shared plans. The
// Magic/factoring rewrite pipeline (Sections 4-5 of the paper) is paid per
// plan, not per request.
//
// Usage:
//
//	factorlogd -program file.dl [-addr :8080] [-edb file] [-constraints file]
//	           [-strategy magic] [-workers N] [-budget N] [-timeout 10s]
//	           [-pprof-addr :6060]
//
// Endpoints:
//
//	GET  /query?q=t(5,Y)[&strategy=S][&workers=N][&timeout_ms=T]
//	POST /query    {"query":"t(5,Y)","strategy":"magic","workers":4,"timeout_ms":1000}
//	GET  /healthz  liveness + program fingerprint
//	GET  /metrics  plan-cache and latency metrics (JSON; ?format=text for tables)
//
// Each request evaluates against a fresh copy of the loaded EDB, bounded by
// the request's context: the client disconnecting or the per-request
// timeout expiring stops the evaluation at the next round boundary (or
// mid-round under parallel evaluation) instead of burning the fixpoint to
// completion.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "factorlogd:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("factorlogd", flag.ContinueOnError)
	addr := fs.String("addr", ":8080", "listen address")
	programFile := fs.String("program", "", "Datalog program file (rules, optional facts and ?- queries)")
	edbFile := fs.String("edb", "", "file of additional ground facts")
	constraintsFile := fs.String("constraints", "", "file of full-TGD EDB constraints")
	strategyName := fs.String("strategy", "magic", "default evaluation strategy")
	workers := fs.Int("workers", 1, "default evaluation workers (>1 = parallel stratified semi-naive)")
	budget := fs.Int("budget", 0, "max derived facts per query (0 = unlimited)")
	timeout := fs.Duration("timeout", 10*time.Second, "default per-request evaluation timeout (0 = none)")
	pprofAddr := fs.String("pprof-addr", "", "serve net/http/pprof on this address (e.g. :6060)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *programFile == "" {
		return errors.New("missing -program file.dl")
	}

	src, err := os.ReadFile(*programFile)
	if err != nil {
		return err
	}
	if *edbFile != "" {
		extra, err := os.ReadFile(*edbFile)
		if err != nil {
			return err
		}
		src = append(append(src, '\n'), extra...)
	}
	var constraints string
	if *constraintsFile != "" {
		csrc, err := os.ReadFile(*constraintsFile)
		if err != nil {
			return err
		}
		constraints = string(csrc)
	}

	srv, err := newServer(string(src), constraints, config{
		strategy: *strategyName,
		workers:  *workers,
		budget:   *budget,
		timeout:  *timeout,
	})
	if err != nil {
		return err
	}
	for _, warn := range srv.warmup() {
		fmt.Fprintln(os.Stderr, "factorlogd: warmup:", warn)
	}

	if *pprofAddr != "" {
		go func() {
			fmt.Fprintln(os.Stderr, "factorlogd: pprof on", *pprofAddr)
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				fmt.Fprintln(os.Stderr, "factorlogd: pprof:", err)
			}
		}()
	}

	httpSrv := &http.Server{Addr: *addr, Handler: srv.routes()}
	errc := make(chan error, 1)
	go func() {
		fmt.Fprintf(os.Stderr, "factorlogd: serving %s (%d rules, %d base facts) on %s\n",
			*programFile, len(srv.prog.Rules), len(srv.baseEDB), *addr)
		errc <- httpSrv.ListenAndServe()
	}()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
		fmt.Fprintln(os.Stderr, "factorlogd: shutting down")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		return httpSrv.Shutdown(shutdownCtx)
	}
}
