// Command factorlogd is a long-lived HTTP/JSON query server: it loads a
// Datalog program (and optionally an EDB and constraints) at startup,
// compiles each queried (predicate, adornment, strategy) shape once into a
// plan cache, and serves concurrent queries against the shared plans. The
// Magic/factoring rewrite pipeline (Sections 4-5 of the paper) is paid per
// plan, not per request.
//
// Usage:
//
//	factorlogd -program file.dl [-addr :8080] [-edb file] [-constraints file]
//	           [-strategy magic] [-workers N] [-budget N] [-max-bytes N]
//	           [-timeout 10s] [-max-concurrency N] [-max-queue N]
//	           [-trace-sample N] [-slow-query-ms N] [-pprof-addr :6060]
//	           [-materialize=true] [-mat-entries N]
//	           [-wal-dir dir] [-fsync-interval 0s] [-snapshot-every N]
//
// Endpoints:
//
//	GET  /query?q=t(5,Y)[&strategy=S][&workers=N][&timeout_ms=T][&max_bytes=N][&explain=plan|analyze]
//	POST /query    {"query":"t(5,Y)","strategy":"magic","workers":4,"timeout_ms":1000,"explain":"analyze"}
//	POST /facts    {"assert":["e(1,2)"],"retract":["e(3,4)"]} — atomic mutation batch
//	GET  /facts?since=E  committed batch log after epoch E (requires -wal-dir)
//	GET  /healthz  liveness + program fingerprint (200 even while draining)
//	GET  /readyz   readiness: 200 after warmup, 503 while warming up,
//	               replaying the WAL tail, or draining
//	GET  /metrics  Prometheus text exposition (?format=json for the
//	               factorlog/metrics/v10 document, ?format=text for a table)
//	GET  /debug/slowlog      recent slow queries, newest first
//	GET  /debug/trace/{id}   one finished trace by query ID (?format=text for a profile)
//
// strategy=auto (per request or as -strategy auto) defers the choice to the
// adaptive cost-based optimizer: the base EDB's statistics are snapshotted,
// every eligible fixed strategy is priced, and the winner serves the query
// (the response reports it under "strategy" with "auto":true). Decisions are
// remembered per query shape and shadow re-costed as /facts batches advance
// the epoch; /metrics reports picks, re-costs, and re-picks under
// plan_search (see docs/PLANNER.md).
//
// The EDB is mutable at runtime: POST /facts asserts and retracts ground
// facts in atomic batches, each effective batch advancing a monotone epoch
// that every query response reports. With -materialize (the default),
// eligible queries answer from incrementally-maintained materializations —
// counting-based semi-naive deltas for insertions and deletions, DRed-style
// stratum rebuilds for recursive retractions (see docs/INCREMENTAL.md).
// -materialize=false evaluates every query from scratch over the current
// base; /facts works either way.
//
// With -wal-dir, mutations are durable (see docs/DURABILITY.md): every
// committed batch reaches an epoch-stamped write-ahead log — fsynced per
// batch, or group-committed within -fsync-interval — before its 200, and
// restart replays the newest base snapshot plus the log tail back to the
// exact pre-crash epoch. -snapshot-every N writes a snapshot every N
// epochs, after which retention prunes the log segments it supersedes.
// Replicas tail the committed history with GET /facts?since=E (410 Gone
// once compaction has pruned the requested range).
//
// Every /query response carries an X-Factorlog-Query-ID header; the same ID
// names the query's trace in /debug/trace/{id} and the slow-query log.
// explain=plan describes the compiled plan (applied reductions, transformed
// rules, stratum schedule, plan-cache disposition) without evaluating;
// explain=analyze evaluates with tracing forced and adds the measured span
// tree and an indented text profile (see docs/OBSERVABILITY.md).
//
// Overload and shutdown behave predictably (see docs/RESILIENCE.md): every
// query passes a weighted admission limiter (weight = its worker count) and
// is shed with 429 + Retry-After when the bounded wait queue is full; on
// SIGINT/SIGTERM the server flips /readyz to 503, refuses new admissions,
// and cancels in-flight evaluations, which answer a typed draining 503.
//
// From-scratch evaluations (materialized serving off or inapplicable) run
// against a fresh copy of the current EDB, bounded by the request's
// context: the client disconnecting or the per-request timeout expiring
// stops the evaluation at the next round boundary (or mid-round under
// parallel evaluation) instead of burning the fixpoint to completion.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "factorlogd:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("factorlogd", flag.ContinueOnError)
	addr := fs.String("addr", ":8080", "listen address")
	programFile := fs.String("program", "", "Datalog program file (rules, optional facts and ?- queries)")
	edbFile := fs.String("edb", "", "file of additional ground facts")
	constraintsFile := fs.String("constraints", "", "file of full-TGD EDB constraints")
	strategyName := fs.String("strategy", "magic", "default evaluation strategy ('auto' = cost-based pick per query)")
	workers := fs.Int("workers", 1, "default evaluation workers (>1 = parallel stratified semi-naive)")
	budget := fs.Int("budget", 0, "max derived facts per query (0 = unlimited)")
	maxBytes := fs.Int64("max-bytes", 0, "max arena+index bytes per query evaluation (0 = unlimited)")
	timeout := fs.Duration("timeout", 10*time.Second, "default per-request evaluation timeout (0 = none)")
	maxConcurrency := fs.Int64("max-concurrency", 0, "admission capacity in worker-weight units (0 = 8x default workers)")
	maxQueue := fs.Int("max-queue", 64, "admission wait-queue length before shedding with 429")
	traceSample := fs.Int("trace-sample", 0, "trace one query in every N (0 = only explain=analyze, 1 = all)")
	slowQueryMS := fs.Int("slow-query-ms", 500, "slow-query log threshold in milliseconds (0 = disabled)")
	pprofAddr := fs.String("pprof-addr", "", "serve net/http/pprof on this address (e.g. :6060)")
	materialize := fs.Bool("materialize", true, "serve eligible queries from incrementally-maintained materializations")
	matEntries := fs.Int("mat-entries", 64, "max live materializations (LRU-evicted past it)")
	walDir := fs.String("wal-dir", "", "write-ahead-log directory: log every committed /facts batch durably and recover it on restart (empty = no durability)")
	fsyncInterval := fs.Duration("fsync-interval", 0, "WAL group-commit window; appends within it share one fsync (0 = fsync every batch)")
	snapshotEvery := fs.Int64("snapshot-every", 256, "write a base snapshot every N epochs and prune superseded WAL segments (0 = never)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *programFile == "" {
		return errors.New("missing -program file.dl")
	}

	src, err := os.ReadFile(*programFile)
	if err != nil {
		return err
	}
	if *edbFile != "" {
		extra, err := os.ReadFile(*edbFile)
		if err != nil {
			return err
		}
		src = append(append(src, '\n'), extra...)
	}
	var constraints string
	if *constraintsFile != "" {
		csrc, err := os.ReadFile(*constraintsFile)
		if err != nil {
			return err
		}
		constraints = string(csrc)
	}

	srv, err := newServer(string(src), constraints, config{
		strategy:       *strategyName,
		workers:        *workers,
		budget:         *budget,
		maxBytes:       *maxBytes,
		timeout:        *timeout,
		maxConcurrency: *maxConcurrency,
		maxQueue:       *maxQueue,
		traceSample:    *traceSample,
		slowQuery:      time.Duration(*slowQueryMS) * time.Millisecond,
		materialize:    *materialize,
		matEntries:     *matEntries,
		walDir:         *walDir,
		fsyncInterval:  *fsyncInterval,
		snapshotEvery:  *snapshotEvery,
	})
	if err != nil {
		return err
	}
	// Close flushes the WAL's final group commit on every exit path.
	defer srv.Close()
	for _, warn := range srv.warmup() {
		fmt.Fprintln(os.Stderr, "factorlogd: warmup:", warn)
	}

	if *pprofAddr != "" {
		go func() {
			fmt.Fprintln(os.Stderr, "factorlogd: pprof on", *pprofAddr)
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				fmt.Fprintln(os.Stderr, "factorlogd: pprof:", err)
			}
		}()
	}

	httpSrv := &http.Server{Addr: *addr, Handler: srv.routes()}
	errc := make(chan error, 1)
	go func() {
		fmt.Fprintf(os.Stderr, "factorlogd: serving %s (%d rules, %d base facts) on %s\n",
			*programFile, len(srv.prog.Rules), srv.mat.BaseCount(), *addr)
		errc <- httpSrv.ListenAndServe()
	}()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
		// Drain before Shutdown: flip /readyz, refuse new admissions, and
		// cancel in-flight evaluations so their handlers answer typed 503s
		// well inside the shutdown timeout instead of evaluating to the bitter
		// end and tripping the 5s axe.
		fmt.Fprintln(os.Stderr, "factorlogd: draining and shutting down")
		srv.beginDrain()
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		return httpSrv.Shutdown(shutdownCtx)
	}
}
