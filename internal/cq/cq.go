// Package cq implements conjunctive queries and the Chandra-Merlin
// containment test used by the factorability conditions of Definitions
// 4.6-4.8 of the paper ("in the sense of tableau containment").
//
// A conjunctive query has a head tuple of terms (the distinguished output)
// and a body of positive atoms. Q1 is contained in Q2 iff there is a
// homomorphism from Q2 to Q1 that maps Q2's head to Q1's head; the test is
// NP-complete in the query size [1,4], which is irrelevant here because the
// inputs are rule-sized (see the closing remark of Section 4 of the paper).
//
// The special predicate `equal` (introduced by the standard-form
// translation) is eliminated up front by unifying its argument pairs; a
// query with an unsatisfiable equality is empty and therefore contained in
// everything. The other standard-form predicates (list, fn_*) are treated
// as ordinary relations, which makes containment sound (conservative) with
// respect to their intended infinite interpretations.
package cq

import (
	"fmt"
	"strings"

	"factorlog/internal/ast"
)

// CQ is a conjunctive query: Head is the distinguished output tuple, Body
// the conjunction of atoms. An empty body denotes the query "true", whose
// answer contains every tuple over the head variables.
type CQ struct {
	Head []ast.Term
	Body []ast.Atom
}

// New constructs a conjunctive query.
func New(head []ast.Term, body []ast.Atom) CQ { return CQ{Head: head, Body: body} }

// FromVars constructs a query whose head is the given variable names.
func FromVars(vars []string, body []ast.Atom) CQ {
	head := make([]ast.Term, len(vars))
	for i, v := range vars {
		head[i] = ast.V(v)
	}
	return CQ{Head: head, Body: body}
}

// String renders the query as head :- body.
func (q CQ) String() string {
	var b strings.Builder
	b.WriteByte('(')
	for i, t := range q.Head {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(t.String())
	}
	b.WriteString(") :- ")
	if len(q.Body) == 0 {
		b.WriteString("true")
	}
	for i, a := range q.Body {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(a.String())
	}
	return b.String()
}

// Clone deep-copies the query.
func (q CQ) Clone() CQ {
	head := make([]ast.Term, len(q.Head))
	copy(head, q.Head)
	body := make([]ast.Atom, len(q.Body))
	for i, a := range q.Body {
		body[i] = a.Clone()
	}
	return CQ{Head: head, Body: body}
}

// Canonicalize eliminates `equal` literals by unification. It returns the
// rewritten query and true, or a zero query and false when an equality is
// unsatisfiable (the query is empty).
func (q CQ) Canonicalize() (CQ, bool) {
	s := ast.Subst{}
	var rest []ast.Atom
	for _, a := range q.Body {
		if a.Pred == ast.EqualPred && len(a.Args) == 2 {
			s2, ok := ast.Unify(s.Apply(a.Args[0]), s.Apply(a.Args[1]), s)
			if !ok {
				return CQ{}, false
			}
			s = s2
			continue
		}
		rest = append(rest, a)
	}
	out := CQ{Head: make([]ast.Term, len(q.Head))}
	for i, t := range q.Head {
		out.Head[i] = s.Apply(t)
	}
	for _, a := range rest {
		out.Body = append(out.Body, s.ApplyAtom(a))
	}
	return out, true
}

// Contained reports whether q1 is contained in q2 (every answer of q1 on
// every database is an answer of q2). Both queries are canonicalized first;
// an empty q1 is contained in everything.
func Contained(q1, q2 CQ) bool {
	if len(q1.Head) != len(q2.Head) {
		return false
	}
	c1, ok := q1.Canonicalize()
	if !ok {
		return true // q1 is empty
	}
	c2, ok := q2.Canonicalize()
	if !ok {
		return false // q2 empty; q1 contained only if q1 empty (handled above)
	}
	// Freeze c1: replace its variables by fresh constants, yielding the
	// canonical database plus the canonical answer tuple.
	frozen := freeze(c1)
	// Find a homomorphism from c2 into the frozen c1.
	sub := ast.Subst{}
	okHead := true
	for i, t := range c2.Head {
		s2, ok := ast.Match(t, frozen.Head[i], sub)
		if !ok {
			okHead = false
			break
		}
		sub = s2
	}
	if !okHead {
		return false
	}
	return embed(c2.Body, frozen.Body, sub)
}

// Equivalent reports mutual containment.
func Equivalent(q1, q2 CQ) bool { return Contained(q1, q2) && Contained(q2, q1) }

// freezeMark prefixes frozen constants; it contains a character the lexer
// never produces, so frozen constants cannot collide with program constants.
const freezeMark = "❄" // snowflake

// freeze replaces every variable of q by a unique fresh constant.
func freeze(q CQ) CQ {
	s := ast.Subst{}
	n := 0
	freezeVar := func(name string) ast.Term {
		if t, ok := s[name]; ok {
			return t
		}
		c := ast.C(fmt.Sprintf("%s%d", freezeMark, n))
		n++
		s[name] = c
		return c
	}
	var fz func(t ast.Term) ast.Term
	fz = func(t ast.Term) ast.Term {
		switch t.Kind {
		case ast.Var:
			return freezeVar(t.Functor)
		case ast.Const:
			return t
		default:
			args := make([]ast.Term, len(t.Args))
			for i, a := range t.Args {
				args[i] = fz(a)
			}
			return ast.Fn(t.Functor, args...)
		}
	}
	out := CQ{Head: make([]ast.Term, len(q.Head))}
	for i, t := range q.Head {
		out.Head[i] = fz(t)
	}
	for _, a := range q.Body {
		args := make([]ast.Term, len(a.Args))
		for i, t := range a.Args {
			args[i] = fz(t)
		}
		out.Body = append(out.Body, ast.Atom{Pred: a.Pred, Args: args})
	}
	return out
}

// embed searches for an assignment of pattern atoms to ground atoms
// (backtracking over the cross product, pruned by predicate name).
func embed(pattern []ast.Atom, ground []ast.Atom, sub ast.Subst) bool {
	if len(pattern) == 0 {
		return true
	}
	p := pattern[0]
	for _, g := range ground {
		if g.Pred != p.Pred || len(g.Args) != len(p.Args) {
			continue
		}
		s2, ok := ast.MatchAtoms(p, g, sub)
		if !ok {
			continue
		}
		if embed(pattern[1:], ground, s2) {
			return true
		}
	}
	return false
}

// TrueQuery returns the query with the given head variables and empty body:
// it contains every query with a compatible head arity.
func TrueQuery(vars []string) CQ { return FromVars(vars, nil) }

// IsEmptyBody reports whether the query has an empty body after
// canonicalization (i.e. it is the "true" query), or is unsatisfiable.
func (q CQ) IsEmptyBody() bool {
	c, ok := q.Canonicalize()
	return !ok || len(c.Body) == 0
}
