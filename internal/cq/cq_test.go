package cq

import (
	"testing"

	"factorlog/internal/ast"
	"factorlog/internal/parser"
)

// mk builds a CQ from head variable names and a rule-ish body source,
// e.g. mk("X,Y", "e(X,W), f(W,Y)").
func mk(head, body string) CQ {
	var vars []string
	if head != "" {
		a := parser.MustParseAtom("h(" + head + ")")
		for _, t := range a.Args {
			vars = append(vars, t.Functor)
		}
	}
	var atoms []ast.Atom
	if body != "" {
		r, err := parser.ParseProgram("h :- " + body + ".")
		if err != nil {
			panic(err)
		}
		atoms = r.Rules[0].Body
	}
	return FromVars(vars, atoms)
}

func TestContainedIdentity(t *testing.T) {
	q := mk("X,Y", "e(X,W), f(W,Y)")
	if !Contained(q, q) {
		t.Error("query not contained in itself")
	}
	if !Equivalent(q, q) {
		t.Error("query not equivalent to itself")
	}
}

func TestContainedClassicPath(t *testing.T) {
	// path of length 2 from X to Y  ⊆  exists an e-edge from X.
	q1 := mk("X", "e(X,W), e(W,Y)")
	q2 := mk("X", "e(X,Z)")
	if !Contained(q1, q2) {
		t.Error("2-path should be contained in 1-step")
	}
	if Contained(q2, q1) {
		t.Error("1-step should not be contained in 2-path")
	}
}

func TestContainedRenaming(t *testing.T) {
	q1 := mk("A,B", "e(A,M), f(M,B)")
	q2 := mk("X,Y", "e(X,W), f(W,Y)")
	if !Equivalent(q1, q2) {
		t.Error("alphabetic variants should be equivalent")
	}
}

func TestContainedConstants(t *testing.T) {
	q1 := mk("X", "e(X,5)")
	q2 := mk("X", "e(X,Y)")
	if !Contained(q1, q2) {
		t.Error("e(X,5) ⊆ e(X,Y)")
	}
	if Contained(q2, q1) {
		t.Error("e(X,Y) ⊄ e(X,5)")
	}
	q3 := mk("X", "e(X,6)")
	if Contained(q1, q3) || Contained(q3, q1) {
		t.Error("different constants should be incomparable")
	}
}

func TestContainedTrueQuery(t *testing.T) {
	// Everything is contained in the empty-body ("true") query; this is how
	// an absent `right` conjunction makes free-exit ⊆ free hold trivially
	// (Theorem 6.2's proof).
	q := mk("X", "exit(Y,X), r(X)")
	top := TrueQuery([]string{"A"})
	if !Contained(q, top) {
		t.Error("safe query should be contained in true")
	}
	if Contained(top, q) {
		t.Error("true should not be contained in a proper query")
	}
	if !top.IsEmptyBody() {
		t.Error("TrueQuery should have empty body")
	}
}

func TestContainedArityMismatch(t *testing.T) {
	if Contained(mk("X", "e(X,Y)"), mk("X,Y", "e(X,Y)")) {
		t.Error("different head arities cannot be contained")
	}
}

func TestCanonicalizeEqual(t *testing.T) {
	// h(X) :- e(X,U), equal(U,5)  ==  h(X) :- e(X,5).
	q1 := mk("X", "e(X,U), equal(U,5)")
	q2 := mk("X", "e(X,5)")
	if !Equivalent(q1, q2) {
		t.Error("equal literal not eliminated")
	}
	c, ok := q1.Canonicalize()
	if !ok || len(c.Body) != 1 || c.Body[0].Pred != "e" {
		t.Errorf("canonicalized = %s", c)
	}
}

func TestCanonicalizeUnsatisfiable(t *testing.T) {
	q := mk("X", "e(X,U), equal(5,6)")
	if _, ok := q.Canonicalize(); ok {
		t.Error("equal(5,6) should be unsatisfiable")
	}
	// The empty query is contained in everything...
	if !Contained(q, mk("X", "zzz(X)")) {
		t.Error("empty query should be contained in anything")
	}
	// ...but contains nothing non-empty.
	if Contained(mk("X", "e(X,Y)"), q) {
		t.Error("non-empty query contained in empty query")
	}
}

func TestCanonicalizeEqualChains(t *testing.T) {
	q1 := mk("X,Y", "equal(X,Y), e(Y,Z), equal(Z,5)")
	q2 := mk("A,A2", "equal(A,A2), e(A2,5)")
	if !Equivalent(q1, q2) {
		t.Errorf("chained equalities:\n%s\nvs\n%s", q1, q2)
	}
}

func TestContainedRepeatedHeadVars(t *testing.T) {
	q1 := mk("X,X", "e(X,X)")
	q2 := mk("X,Y", "e(X,Y)")
	if !Contained(q1, q2) {
		t.Error("diagonal ⊆ full")
	}
	if Contained(q2, q1) {
		t.Error("full ⊄ diagonal")
	}
}

func TestContainedWithFunctionTerms(t *testing.T) {
	q1 := mk("X", "list(X,T,L), p(X)")
	q2 := mk("X", "list(X,T2,L2)")
	if !Contained(q1, q2) {
		t.Error("more constrained list query should be contained")
	}
	if Contained(q2, q1) {
		t.Error("less constrained should not be contained")
	}
}

func TestContainedMultipleAtomsSamePred(t *testing.T) {
	// Classic: the 3-cycle query is contained in the triangle-with-apex
	// pattern only via a folding homomorphism.
	q1 := mk("", "e(X,Y), e(Y,Z), e(Z,X)")
	q2 := mk("", "e(A,B), e(B,A), e(A,A)")
	// q2 requires a self-loop; q1 doesn't. q1 ⊄ q2 and q2 ⊆ q1? Mapping q1
	// into frozen q2: X->a,Y->b? e(b,a) ok, e(Z,X): need e(?,a)... X=A,Y=B,
	// Z=A gives e(A,B),e(B,A),e(A,A): all present in q2. So q2 ⊆ q1.
	if !Contained(q2, q1) {
		t.Error("q2 (self-loop) should be contained in q1 (3-cycle)")
	}
	if Contained(q1, q2) {
		t.Error("3-cycle should not be contained in self-loop pattern")
	}
}

func TestEquivalentRedundantAtom(t *testing.T) {
	// Duplicate atoms are redundant under set semantics.
	q1 := mk("X", "e(X,Y), e(X,Y2)")
	q2 := mk("X", "e(X,Y)")
	if !Equivalent(q1, q2) {
		t.Error("redundant atom should not change the query")
	}
}

func TestCQStringAndClone(t *testing.T) {
	q := mk("X", "e(X,Y)")
	if got := q.String(); got != "(X) :- e(X,Y)" {
		t.Errorf("String = %q", got)
	}
	if got := TrueQuery([]string{"X"}).String(); got != "(X) :- true" {
		t.Errorf("true String = %q", got)
	}
	c := q.Clone()
	c.Body[0] = ast.NewAtom("zzz")
	if q.Body[0].Pred == "zzz" {
		t.Error("Clone shares body")
	}
}

func TestFreezeMarkCollisionSafety(t *testing.T) {
	// A program constant cannot collide with frozen constants.
	q1 := mk("X", "e(X,Y)")
	q2 := CQ{Head: []ast.Term{ast.C(freezeMark + "0")}, Body: []ast.Atom{ast.NewAtom("e", ast.C(freezeMark+"0"), ast.V("Y"))}}
	// Just ensure no panic and a sane result.
	_ = Contained(q1, q2)
	_ = Contained(q2, q1)
}

func TestContainedSelfJoinDirection(t *testing.T) {
	// Q1: e(X,Y),e(Y,Z) with head (X,Z)   [2-path]
	// Q2: e(X,Y) with head (X,Y)          [edge]
	// 2-path ⊆ edge? No: answers of 2-path need not be edges.
	q1 := mk("X,Z", "e(X,Y), e(Y,Z)")
	q2 := mk("X,Y", "e(X,Y)")
	if Contained(q1, q2) {
		t.Error("2-path endpoints are not always edges")
	}
	if Contained(q2, q1) {
		t.Error("edges are not always 2-path endpoints")
	}
	// But with a self-loop pattern the path folds.
	q3 := mk("X,X", "e(X,X)")
	if !Contained(q3, q1) {
		t.Error("self-loop should be a 2-path")
	}
}
