package cq

import (
	"fmt"

	"factorlog/internal/ast"
)

// Containment relative to constraints.
//
// The class conditions of Definitions 4.6-4.8 are containments between
// conjunctions over EDB predicates. Read as pure tableau containments they
// must hold on every EDB; the paper's Examples 4.3-4.5, however, presume
// EDB regularities (e.g. every value in the second column of `exit` also
// appears in r1 — the discussion of Example 4.3 speaks of an EDB instance
// "violating the condition"). We make that precise with full tuple-
// generating dependencies (TGDs): Horn constraints body -> head whose head
// variables all occur in the body, such as
//
//	r1(Y) :- e(X, Y).     % the second column of e is contained in r1
//
// ContainedUnder(q1, q2, tgds) decides q1 ⊆ q2 over all EDBs satisfying the
// TGDs, by the classical chase: freeze q1's canonical instance, close it
// under the TGDs (full TGDs terminate: no new constants are invented), and
// look for a homomorphism from q2.

// ValidateTGD checks that r is a full TGD: one head atom whose variables
// all occur in the body.
func ValidateTGD(r ast.Rule) error {
	if r.IsFact() {
		return fmt.Errorf("constraint %s has no body", r)
	}
	if !r.Safe() {
		return fmt.Errorf("constraint %s is not a full TGD: head variables missing from body", r)
	}
	return nil
}

// ContainedUnder reports whether q1 is contained in q2 over all databases
// satisfying the given full TGDs. With no TGDs it coincides with Contained.
func ContainedUnder(q1, q2 CQ, tgds []ast.Rule) bool {
	if len(tgds) == 0 {
		return Contained(q1, q2)
	}
	if len(q1.Head) != len(q2.Head) {
		return false
	}
	c1, ok := q1.Canonicalize()
	if !ok {
		return true
	}
	c2, ok := q2.Canonicalize()
	if !ok {
		return false
	}
	frozen := freeze(c1)
	inst := chase(frozen.Body, tgds)

	sub := ast.Subst{}
	for i, t := range c2.Head {
		s2, ok := ast.Match(t, frozen.Head[i], sub)
		if !ok {
			return false
		}
		sub = s2
	}
	return embed(c2.Body, inst, sub)
}

// EquivalentUnder reports mutual containment under the TGDs.
func EquivalentUnder(q1, q2 CQ, tgds []ast.Rule) bool {
	return ContainedUnder(q1, q2, tgds) && ContainedUnder(q2, q1, tgds)
}

// chase closes a ground instance under full TGDs. Because the TGDs are
// full, the chase only adds atoms over the instance's constants and
// terminates.
func chase(inst []ast.Atom, tgds []ast.Rule) []ast.Atom {
	present := map[string]bool{}
	for _, a := range inst {
		present[a.String()] = true
	}
	out := append([]ast.Atom(nil), inst...)
	for changed := true; changed; {
		changed = false
		for _, tgd := range tgds {
			embedAll(tgd.Body, out, ast.Subst{}, func(s ast.Subst) {
				h := s.ApplyAtom(tgd.Head)
				key := h.String()
				if !present[key] {
					present[key] = true
					out = append(out, h)
					changed = true
				}
			})
		}
	}
	return out
}

// MissingUnderTGDs returns the head atoms the given ground facts would need
// for the TGDs to hold (empty means the facts satisfy all constraints).
// Deterministic: results appear in chase discovery order, deduplicated.
func MissingUnderTGDs(facts []ast.Atom, tgds []ast.Rule) []ast.Atom {
	have := map[string]bool{}
	for _, f := range facts {
		have[f.String()] = true
	}
	closed := chase(facts, tgds)
	var missing []ast.Atom
	for _, a := range closed[len(facts):] {
		if !have[a.String()] {
			missing = append(missing, a)
		}
	}
	return missing
}

// embedAll enumerates every assignment of the pattern atoms to ground
// atoms, invoking emit with each completed substitution.
func embedAll(pattern []ast.Atom, ground []ast.Atom, sub ast.Subst, emit func(ast.Subst)) {
	if len(pattern) == 0 {
		emit(sub)
		return
	}
	p := pattern[0]
	for _, g := range ground {
		if g.Pred != p.Pred || len(g.Args) != len(p.Args) {
			continue
		}
		s2, ok := ast.MatchAtoms(p, g, sub)
		if !ok {
			continue
		}
		embedAll(pattern[1:], ground, s2, emit)
	}
}
