package cq

import (
	"factorlog/internal/ast"
)

// Minimize computes the core of a conjunctive query: an equivalent query
// with a minimum number of body atoms, obtained by repeatedly dropping an
// atom when the smaller query is still equivalent to the original
// (Chandra-Merlin: every CQ has a unique core up to isomorphism). The
// conjunctions compared by the factorability tests are rule-sized, so the
// quadratic loop over atoms is immaterial.
//
// The query is canonicalized first; an unsatisfiable query minimizes to
// the canonical empty-result query with a single contradictory equality.
func Minimize(q CQ) CQ {
	c, ok := q.Canonicalize()
	if !ok {
		// Canonical unsatisfiable query.
		return CQ{
			Head: q.Head,
			Body: []ast.Atom{ast.NewAtom(ast.EqualPred, ast.C("0"), ast.C("1"))},
		}
	}
	for {
		dropped := false
		for i := range c.Body {
			smaller := CQ{Head: c.Head, Body: withoutAtom(c.Body, i)}
			// Dropping an atom only relaxes the query, so smaller ⊇ c
			// always; equivalence needs only smaller ⊆ c.
			if Contained(smaller, c) {
				c = smaller
				dropped = true
				break
			}
		}
		if !dropped {
			return c
		}
	}
}

func withoutAtom(atoms []ast.Atom, skip int) []ast.Atom {
	out := make([]ast.Atom, 0, len(atoms)-1)
	for i, a := range atoms {
		if i != skip {
			out = append(out, a)
		}
	}
	return out
}

// IsMinimal reports whether no single body atom can be dropped without
// changing the query.
func IsMinimal(q CQ) bool {
	c, ok := q.Canonicalize()
	if !ok {
		return len(q.Body) <= 1
	}
	for i := range c.Body {
		smaller := CQ{Head: c.Head, Body: withoutAtom(c.Body, i)}
		if Contained(smaller, c) {
			return false
		}
	}
	return true
}
