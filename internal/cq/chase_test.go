package cq

import (
	"testing"

	"factorlog/internal/ast"
	"factorlog/internal/parser"
)

func tgds(t *testing.T, src string) []ast.Rule {
	t.Helper()
	p, err := parser.ParseProgram(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range p.Rules {
		if err := ValidateTGD(r); err != nil {
			t.Fatal(err)
		}
	}
	return p.Rules
}

func TestContainedUnderSimpleIND(t *testing.T) {
	// free_exit(Y) :- e(X,Y)  vs  free(Y) :- r1(Y): contained only under
	// the constraint that e's second column is in r1.
	q1 := mk("Y", "e(X,Y)")
	q2 := mk("Y", "r1(Y)")
	if Contained(q1, q2) {
		t.Fatal("should not be contained without constraints")
	}
	cs := tgds(t, `r1(Y) :- e(X, Y).`)
	if !ContainedUnder(q1, q2, cs) {
		t.Fatal("should be contained under the constraint")
	}
	// The converse still fails.
	if ContainedUnder(q2, q1, cs) {
		t.Fatal("converse containment should fail")
	}
}

func TestEquivalentUnder(t *testing.T) {
	q1 := mk("X", "l1(X)")
	q2 := mk("X", "l2(X)")
	cs := tgds(t, `
		l1(X) :- l2(X).
		l2(X) :- l1(X).
	`)
	if !EquivalentUnder(q1, q2, cs) {
		t.Error("mutual inclusion should give equivalence")
	}
	if EquivalentUnder(q1, q2, cs[:1]) {
		t.Error("one-way inclusion should not give equivalence")
	}
}

func TestChaseMultiAtomBody(t *testing.T) {
	// join TGD: r(X,Z) :- e(X,Y), f(Y,Z).
	q1 := mk("X,Z", "e(X,Y), f(Y,Z)")
	q2 := mk("X,Z", "r(X,Z)")
	cs := tgds(t, `r(X, Z) :- e(X, Y), f(Y, Z).`)
	if !ContainedUnder(q1, q2, cs) {
		t.Error("join TGD not chased")
	}
}

func TestChaseTransitiveTGDs(t *testing.T) {
	// a -> b -> c requires two chase steps.
	q1 := mk("X", "a(X)")
	q2 := mk("X", "c(X)")
	cs := tgds(t, `
		b(X) :- a(X).
		c(X) :- b(X).
	`)
	if !ContainedUnder(q1, q2, cs) {
		t.Error("transitive chase failed")
	}
}

func TestContainedUnderNoTGDsFallsBack(t *testing.T) {
	q1 := mk("X", "e(X,Y), e(Y,Z)")
	q2 := mk("X", "e(X,W)")
	if ContainedUnder(q1, q2, nil) != Contained(q1, q2) {
		t.Error("nil constraints should match Contained")
	}
}

func TestContainedUnderUnsatisfiableSides(t *testing.T) {
	cs := tgds(t, `r(Y) :- e(X, Y).`)
	empty := mk("X", "e(X,U), equal(5,6)")
	if !ContainedUnder(empty, mk("X", "zzz(X)"), cs) {
		t.Error("empty query contained in everything")
	}
	if ContainedUnder(mk("X", "e(X,Y)"), empty, cs) {
		t.Error("nothing non-empty contained in empty query")
	}
	if ContainedUnder(mk("X", "e(X,Y)"), mk("X,Y", "e(X,Y)"), cs) {
		t.Error("arity mismatch")
	}
}

func TestValidateTGD(t *testing.T) {
	bad := parser.MustParseProgram(`r(Y, Z) :- e(X, Y).`).Rules[0]
	if err := ValidateTGD(bad); err == nil {
		t.Error("existential head variable should be rejected")
	}
	fact := ast.Fact(ast.NewAtom("r", ast.C("1")))
	if err := ValidateTGD(fact); err == nil {
		t.Error("bodyless constraint should be rejected")
	}
	good := parser.MustParseProgram(`r(Y) :- e(X, Y).`).Rules[0]
	if err := ValidateTGD(good); err != nil {
		t.Errorf("valid TGD rejected: %v", err)
	}
}

func TestMissingUnderTGDs(t *testing.T) {
	cs := tgds(t, `r1(Y) :- e(X, Y).`)
	facts, err := parser.Parse(`e(1, 2). e(3, 4). r1(2).`)
	if err != nil {
		t.Fatal(err)
	}
	missing := MissingUnderTGDs(facts.Facts, cs)
	if len(missing) != 1 || missing[0].String() != "r1(4)" {
		t.Errorf("missing = %v", missing)
	}
	// Satisfying EDB: nothing missing.
	facts2, _ := parser.Parse(`e(1, 2). r1(2).`)
	if m := MissingUnderTGDs(facts2.Facts, cs); len(m) != 0 {
		t.Errorf("satisfying EDB reported missing %v", m)
	}
}

func TestChaseDoesNotInventConstants(t *testing.T) {
	// Full TGDs only rearrange existing constants; the chase of a 2-atom
	// instance stays small.
	cs := tgds(t, `
		e(Y, X) :- e(X, Y).
		r(X) :- e(X, Y).
	`)
	facts, _ := parser.Parse(`e(1, 2).`)
	closed := chase(facts.Facts, cs)
	if len(closed) > 5 { // e(1,2), e(2,1), r(1), r(2)
		t.Errorf("chase blew up: %v", closed)
	}
}
