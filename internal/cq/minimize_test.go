package cq

import (
	"testing"
)

func TestMinimizeRedundantAtom(t *testing.T) {
	// e(X,Y), e(X,Y2) minimizes to e(X,Y) — Y2 folds onto Y.
	q := mk("X", "e(X,Y), e(X,Y2)")
	m := Minimize(q)
	if len(m.Body) != 1 {
		t.Errorf("minimized to %d atoms: %s", len(m.Body), m)
	}
	if !Equivalent(q, m) {
		t.Error("minimization changed the query")
	}
	if !IsMinimal(m) {
		t.Error("result not minimal")
	}
}

func TestMinimizePathOntoEdge(t *testing.T) {
	// Boolean query: a 2-path folds onto a self-loop check? No — without a
	// loop it stays a 2-path; both atoms needed.
	q := mk("", "e(X,Y), e(Y,Z)")
	m := Minimize(q)
	if len(m.Body) != 2 {
		t.Errorf("2-path wrongly minimized: %s", m)
	}
	// But with a self-loop atom present, everything folds onto it.
	q2 := mk("", "e(X,Y), e(Y,Z), e(W,W)")
	m2 := Minimize(q2)
	if len(m2.Body) != 1 {
		t.Errorf("loop query should minimize to one atom: %s", m2)
	}
}

func TestMinimizeRespectsHead(t *testing.T) {
	// Head variables are distinguished: e(X,Y) with head (X,Y) cannot fold
	// onto e(X,Y2).
	q := mk("X,Y", "e(X,Y), e(X,Y2)")
	m := Minimize(q)
	if len(m.Body) != 1 {
		t.Errorf("existential atom should drop: %s", m)
	}
	q2 := mk("X,Y2", "e(X,Y), e(X,Y2)")
	m2 := Minimize(q2)
	if len(m2.Body) != 1 {
		t.Errorf("symmetric case: %s", m2)
	}
	// Both head vars used in different atoms: nothing drops.
	q3 := mk("Y,Y2", "e(X,Y), e(X2,Y2)")
	m3 := Minimize(q3)
	if len(m3.Body) != 2 {
		t.Errorf("needed atoms dropped: %s", m3)
	}
}

func TestMinimizeEliminatesEquals(t *testing.T) {
	q := mk("X", "e(X,U), equal(U,5), e(X,5)")
	m := Minimize(q)
	if len(m.Body) != 1 {
		t.Errorf("equal-collapsed duplicate should drop: %s", m)
	}
}

func TestMinimizeUnsatisfiable(t *testing.T) {
	q := mk("X", "e(X,Y), equal(1,2)")
	m := Minimize(q)
	if len(m.Body) != 1 || m.Body[0].Pred != "equal" {
		t.Errorf("unsatisfiable canonical form: %s", m)
	}
	if !IsMinimal(m) {
		t.Error("canonical empty query should be minimal")
	}
	if _, ok := m.Canonicalize(); ok {
		t.Error("minimized unsatisfiable query should stay unsatisfiable")
	}
}

func TestIsMinimalPositive(t *testing.T) {
	if !IsMinimal(mk("X", "e(X,Y)")) {
		t.Error("single atom is minimal")
	}
	if IsMinimal(mk("X", "e(X,Y), e(X,Y2)")) {
		t.Error("redundant atom not detected")
	}
	if !IsMinimal(mk("", "")) {
		t.Error("empty query is minimal")
	}
}
