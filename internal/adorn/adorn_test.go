package adorn

import (
	"strings"
	"testing"

	"factorlog/internal/ast"
	"factorlog/internal/parser"
)

func TestAdornTransitiveClosure(t *testing.T) {
	p := parser.MustParseProgram(`
		t(X, Y) :- t(X, W), t(W, Y).
		t(X, Y) :- e(X, W), t(W, Y).
		t(X, Y) :- t(X, W), e(W, Y).
		t(X, Y) :- e(X, Y).
	`)
	res, err := Adorn(p, parser.MustParseAtom("t(5, Y)"))
	if err != nil {
		t.Fatal(err)
	}
	if res.Query.Pred != "t_bf" {
		t.Errorf("query pred = %s", res.Query.Pred)
	}
	if !res.IsUnit() {
		t.Errorf("TC should be a unit program: %v", res.ByPred)
	}
	name, ad := res.UnitPred()
	if name != "t_bf" || ad != "bf" {
		t.Errorf("unit pred = %s %s", name, ad)
	}
	want := `t_bf(X,Y) :- t_bf(X,W), t_bf(W,Y).
t_bf(X,Y) :- e(X,W), t_bf(W,Y).
t_bf(X,Y) :- t_bf(X,W), e(W,Y).
t_bf(X,Y) :- e(X,Y).
`
	if got := res.Program.String(); got != want {
		t.Errorf("adorned program:\n%s\nwant:\n%s", got, want)
	}
}

func TestAdornPmem(t *testing.T) {
	p := parser.MustParseProgram(`
		pmem(X, [X|T]) :- p(X).
		pmem(X, [H|T]) :- pmem(X, T).
	`)
	res, err := Adorn(p, parser.MustParseAtom("pmem(X, [x1, x2, x3])"))
	if err != nil {
		t.Fatal(err)
	}
	if res.Query.Pred != "pmem_fb" {
		t.Errorf("query pred = %s", res.Query.Pred)
	}
	if !res.IsUnit() {
		t.Errorf("pmem should be unit: %v", res.ByPred)
	}
	s := res.Program.String()
	if !strings.Contains(s, "pmem_fb(X,[H|T]) :- pmem_fb(X,T).") {
		t.Errorf("recursive rule not adorned fb:\n%s", s)
	}
}

func TestAdornMultipleAdornments(t *testing.T) {
	p := parser.MustParseProgram(`
		p(X, Y) :- e(X, Y).
		q(X) :- p(X, W), p(V, X).
	`)
	res, err := Adorn(p, parser.MustParseAtom("q(5)"))
	if err != nil {
		t.Fatal(err)
	}
	ads := res.ByPred["p"]
	if len(ads) != 2 || ads[0] != "bf" || ads[1] != "fb" {
		t.Errorf("p adornments = %v", ads)
	}
	if res.IsUnit() {
		t.Error("two IDB predicates should not be unit")
	}
	s := res.Program.String()
	for _, frag := range []string{
		"q_b(X) :- p_bf(X,W), p_fb(V,X).",
		"p_bf(X,Y) :- e(X,Y).",
		"p_fb(X,Y) :- e(X,Y).",
	} {
		if !strings.Contains(s, frag) {
			t.Errorf("missing %q in:\n%s", frag, s)
		}
	}
}

func TestAdornAllFreeQuery(t *testing.T) {
	p := parser.MustParseProgram(`
		t(X, Y) :- e(X, W), t(W, Y).
		t(X, Y) :- e(X, Y).
	`)
	res, err := Adorn(p, parser.MustParseAtom("t(X, Y)"))
	if err != nil {
		t.Fatal(err)
	}
	if res.Query.Pred != "t_ff" {
		t.Errorf("query pred = %s", res.Query.Pred)
	}
	// With an all-free head, W is bound after e(X,W), so the body literal
	// is t_bf — a second adornment becomes reachable.
	ads := res.ByPred["t"]
	if len(ads) != 2 {
		t.Errorf("adornments = %v", ads)
	}
}

func TestAdornSameGeneration(t *testing.T) {
	p := parser.MustParseProgram(`
		sg(X, Y) :- flat(X, Y).
		sg(X, Y) :- up(X, U), sg(U, V), down(V, Y).
	`)
	res, err := Adorn(p, parser.MustParseAtom("sg(john, Y)"))
	if err != nil {
		t.Fatal(err)
	}
	if !res.IsUnit() {
		t.Errorf("sg should be unit: %v", res.ByPred)
	}
	s := res.Program.String()
	if !strings.Contains(s, "sg_bf(X,Y) :- up(X,U), sg_bf(U,V), down(V,Y).") {
		t.Errorf("sg adorned wrong:\n%s", s)
	}
}

func TestAdornErrors(t *testing.T) {
	p := parser.MustParseProgram(`t(X, Y) :- e(X, Y).`)
	if _, err := Adorn(p, parser.MustParseAtom("e(5, Y)")); err == nil {
		t.Error("EDB query should be rejected")
	}
	if _, err := Adorn(p, parser.MustParseAtom("nosuch(5)")); err == nil {
		t.Error("unknown predicate should be rejected")
	}
}

func TestAdornBoundCompoundQueryArg(t *testing.T) {
	p := parser.MustParseProgram(`
		pmem(X, [X|T]) :- p(X).
		pmem(X, [H|T]) :- pmem(X, T).
	`)
	// Partial list in query: second arg contains a variable -> free.
	res, err := Adorn(p, ast.NewAtom("pmem", ast.V("X"), ast.ListTail(ast.V("T"), ast.C("a"))))
	if err != nil {
		t.Fatal(err)
	}
	if res.Query.Pred != "pmem_ff" {
		t.Errorf("partial-list query should adorn ff, got %s", res.Query.Pred)
	}
}
