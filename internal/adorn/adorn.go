// Package adorn computes adorned programs: each IDB predicate is annotated,
// per reachable binding pattern, with which argument positions are bound
// ('b') or free ('f') under the left-to-right sideways information passing
// strategy, starting from the constants in the query (Section 4.1 of the
// paper). Adorned predicates are named p_bf etc. (the paper's p^bf).
package adorn

import (
	"fmt"
	"sort"

	"factorlog/internal/ast"
)

// Result is an adorned program together with the adorned query.
type Result struct {
	// Program contains one copy of each rule per reachable adornment of its
	// head predicate, with all IDB predicate occurrences renamed to their
	// adorned versions.
	Program *ast.Program
	// Query is the original query with its predicate renamed to the adorned
	// version, e.g. t_bf(5, Y).
	Query ast.Atom
	// ByPred maps each base IDB predicate to its reachable adornments,
	// sorted.
	ByPred map[string][]ast.Adornment
}

// IsUnit reports whether the adorned program is a unit program in the sense
// of Section 4.1: a single IDB predicate with a single reachable adornment.
func (r *Result) IsUnit() bool {
	return len(r.ByPred) == 1 && len(r.ByPred[r.basePred()]) == 1
}

func (r *Result) basePred() string {
	for p := range r.ByPred {
		return p
	}
	return ""
}

// UnitPred returns the single adorned predicate name and its adornment; it
// must only be called when IsUnit() is true.
func (r *Result) UnitPred() (string, ast.Adornment) {
	base := r.basePred()
	ad := r.ByPred[base][0]
	return ast.AdornedName(base, ad), ad
}

// Adorn adorns program p with respect to query. The query predicate must be
// an IDB predicate of p.
func Adorn(p *ast.Program, query ast.Atom) (*Result, error) {
	if !p.IsIDB(query.Pred) {
		return nil, fmt.Errorf("query predicate %s is not defined by any rule",
			ast.FmtPredArity(query.Pred, len(query.Args)))
	}
	if _, err := p.PredArities(); err != nil {
		return nil, err
	}
	idb := p.IDBPreds()

	queryAd := ast.AdornmentOf(query, nil) // bound iff ground
	type adPred struct {
		base string
		ad   ast.Adornment
	}
	seen := map[adPred]bool{}
	var order []adPred
	push := func(base string, ad ast.Adornment) {
		k := adPred{base, ad}
		if !seen[k] {
			seen[k] = true
			order = append(order, k)
		}
	}
	push(query.Pred, queryAd)

	out := &ast.Program{}
	for i := 0; i < len(order); i++ {
		cur := order[i]
		for _, r := range p.RulesFor(cur.base) {
			adorned, calls, err := adornRule(r, cur.ad, idb)
			if err != nil {
				return nil, err
			}
			out.Add(adorned)
			for _, c := range calls {
				push(c.base, c.ad)
			}
		}
	}

	byPred := map[string][]ast.Adornment{}
	for _, k := range order {
		byPred[k.base] = append(byPred[k.base], k.ad)
	}
	for _, ads := range byPred {
		sort.Slice(ads, func(i, j int) bool { return ads[i] < ads[j] })
	}

	return &Result{
		Program: out,
		Query:   ast.Atom{Pred: ast.AdornedName(query.Pred, queryAd), Args: query.Args},
		ByPred:  byPred,
	}, nil
}

type call struct {
	base string
	ad   ast.Adornment
}

// adornRule adorns one rule given its head adornment, returning the adorned
// rule and the IDB calls it makes.
func adornRule(r ast.Rule, headAd ast.Adornment, idb map[string]bool) (ast.Rule, []call, error) {
	if len(headAd) != len(r.Head.Args) {
		return ast.Rule{}, nil, fmt.Errorf("adornment %s does not fit %s", headAd, r.Head)
	}
	bound := map[string]bool{}
	for _, pos := range headAd.Bound() {
		for _, v := range r.Head.Args[pos].Vars() {
			bound[v] = true
		}
	}
	head := ast.Atom{Pred: ast.AdornedName(r.Head.Pred, headAd), Args: r.Head.Args}
	var body []ast.Atom
	var calls []call
	for _, a := range r.Body {
		if idb[a.Pred] {
			ad := ast.AdornmentOf(a, bound)
			body = append(body, ast.Atom{Pred: ast.AdornedName(a.Pred, ad), Args: a.Args})
			calls = append(calls, call{a.Pred, ad})
		} else {
			body = append(body, a)
		}
		for _, v := range a.Vars() {
			bound[v] = true
		}
	}
	return ast.Rule{Head: head, Body: body}, calls, nil
}
