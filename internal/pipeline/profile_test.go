package pipeline

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"factorlog/internal/engine"
)

var update = flag.Bool("update", false, "rewrite golden files")

func TestStageSpansRecorded(t *testing.T) {
	pl := tcPipeline()
	r, err := pl.Run(FactoredOptimized, chain(8)(), engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, sp := range r.Spans {
		names = append(names, sp.Name)
	}
	want := []string{"adorn", "magic", "factor", "optimize", "eval"}
	if strings.Join(names, ",") != strings.Join(want, ",") {
		t.Fatalf("span chain = %v, want %v", names, want)
	}
	for _, sp := range r.Spans {
		if sp.Wall < 0 {
			t.Errorf("%s: negative wall time", sp.Name)
		}
		if sp.Err != "" {
			t.Errorf("%s: unexpected error %q", sp.Name, sp.Err)
		}
	}
	// Magic grows the program; the optimize clean-up shrinks arity to the
	// paper's unary program.
	magic := r.Spans[1]
	if magic.RulesAfter <= magic.RulesBefore {
		t.Errorf("magic rules %d -> %d, want growth", magic.RulesBefore, magic.RulesAfter)
	}
	opt := r.Spans[3]
	if opt.ArityAfter != 1 {
		t.Errorf("optimize arity after = %d, want 1", opt.ArityAfter)
	}
	if r.EvalWall <= 0 {
		t.Error("EvalWall not recorded")
	}
}

func TestStageSpansSelectPerStrategy(t *testing.T) {
	pl := tcPipeline()
	load := chain(8)
	// Run FactoredOptimized first so the pipeline caches every stage, then
	// check a Magic run only reports its own chain.
	if _, err := pl.Run(FactoredOptimized, load(), engine.Options{}); err != nil {
		t.Fatal(err)
	}
	r, err := pl.Run(Magic, load(), engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, sp := range r.Spans {
		names = append(names, sp.Name)
	}
	if strings.Join(names, ",") != "adorn,magic,eval" {
		t.Errorf("magic span chain = %v", names)
	}
	// Cached stages appear exactly once in the pipeline's record.
	seen := map[string]int{}
	for _, sp := range pl.Spans() {
		seen[sp.Name]++
	}
	for name, n := range seen {
		if n != 1 {
			t.Errorf("stage %s recorded %d times", name, n)
		}
	}
}

func TestRunWithTraceAttachesRuleAndRoundStats(t *testing.T) {
	pl := tcPipeline()
	r, err := pl.Run(FactoredOptimized, chain(8)(), engine.Options{Trace: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rules) != len(r.Program.Rules) {
		t.Fatalf("Rules = %d, program has %d rules", len(r.Rules), len(r.Program.Rules))
	}
	if len(r.Rounds) != r.Iterations {
		t.Errorf("Rounds = %d, Iterations = %d", len(r.Rounds), r.Iterations)
	}
	out := ProfileTable(r)
	for _, want := range []string{"strategy: factored+opt", "stage", "adorn", "eval", "firings", "round"} {
		if !strings.Contains(out, want) {
			t.Errorf("ProfileTable missing %q:\n%s", want, out)
		}
	}
	// Untraced runs still profile the stages, just without rule/round tables.
	r2, err := tcPipeline().Run(Magic, chain(8)(), engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	out2 := ProfileTable(r2)
	if strings.Contains(out2, "firings") {
		t.Errorf("untraced profile has rule table:\n%s", out2)
	}
}

// TestTableGolden locks the Table layout, including the cases the old
// fixed-width formatter broke on: strategy names longer than 14 characters
// and counts wider than their columns.
func TestTableGolden(t *testing.T) {
	results := []*RunResult{
		{Strategy: SemiNaive, Answers: map[string]bool{"(1)": true, "(2)": true},
			Inferences: 123456789012345, Facts: 987654321, Iterations: 42, MaxIDBArity: 2},
		{Strategy: SupplementaryMagic, Answers: map[string]bool{"(1)": true},
			Inferences: 7, Facts: 3, Iterations: 2, MaxIDBArity: 4},
		{Strategy: Strategy(1234567890), Answers: map[string]bool{},
			Inferences: 1, Facts: 1, Iterations: 1, MaxIDBArity: 1},
	}
	got := Table(results)
	golden := filepath.Join("testdata", "table.golden")
	if *update {
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if got != string(want) {
		t.Errorf("Table output drifted from golden:\ngot:\n%s\nwant:\n%s", got, want)
	}
}
