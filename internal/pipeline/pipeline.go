package pipeline

import (
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"
	"text/tabwriter"
	"time"

	"factorlog/internal/adorn"
	"factorlog/internal/ast"
	"factorlog/internal/core"
	"factorlog/internal/cost"
	"factorlog/internal/counting"
	"factorlog/internal/engine"
	"factorlog/internal/magic"
	"factorlog/internal/obsv"
	"factorlog/internal/optimize"
	"factorlog/internal/stream"
	"factorlog/internal/topdown"
	"factorlog/internal/trace"
)

// Strategy names an evaluation strategy over the original or a transformed
// program.
type Strategy int

const (
	// Naive: naive bottom-up fixpoint of the original program.
	Naive Strategy = iota
	// SemiNaive: semi-naive bottom-up fixpoint of the original program.
	SemiNaive
	// Magic: adorn + Magic Sets, then semi-naive.
	Magic
	// Factored: Magic followed by factoring (Theorems 4.1-4.3), then
	// semi-naive.
	Factored
	// FactoredOptimized: Factored followed by the Section 5 clean-up.
	FactoredOptimized
	// Counting: the Counting transformation, then semi-naive.
	Counting
	// TopDown: SLD resolution on the original program (the Prolog
	// baseline).
	TopDown
	// Tabled: QSQR-style memoizing top-down evaluation — the strategy
	// Magic Sets simulates bottom-up.
	Tabled
	// SupplementaryMagic: Magic Sets with supplementary predicates
	// (Beeri-Ramakrishnan, the paper's [3]), then semi-naive.
	SupplementaryMagic
	// Auto: adaptive strategy — the cost-based planner snapshots EDB
	// statistics, enumerates the eligible fixed strategies × body-literal
	// orderings, and runs the cheapest candidate (see internal/cost and
	// docs/PLANNER.md). Resolved per run; it is not itself compilable.
	Auto
)

var strategyNames = map[Strategy]string{
	Naive:              "naive",
	SemiNaive:          "semi-naive",
	Magic:              "magic",
	Factored:           "factored",
	FactoredOptimized:  "factored+opt",
	Counting:           "counting",
	TopDown:            "top-down",
	Tabled:             "tabled",
	SupplementaryMagic: "sup-magic",
	Auto:               "auto",
}

func (s Strategy) String() string {
	if n, ok := strategyNames[s]; ok {
		return n
	}
	return fmt.Sprintf("Strategy(%d)", int(s))
}

// AllStrategies lists every fixed strategy in presentation order. Auto is
// deliberately absent: it resolves to one of these per run, so sweeping it
// alongside them (Compare, factorbench) would double-count its winner.
func AllStrategies() []Strategy {
	return []Strategy{Naive, SemiNaive, TopDown, Tabled, Magic, SupplementaryMagic,
		Factored, FactoredOptimized, Counting}
}

// Pipeline prepares and caches the transformations of one (program, query)
// pair.
type Pipeline struct {
	Program *ast.Program
	Query   ast.Atom
	// Constraints are optional full TGDs the EDB satisfies; they widen the
	// factorable classes (see package cq).
	Constraints []ast.Rule

	// mu guards the memoized transformation results and the span log below,
	// making a Pipeline safe for concurrent Runs (the plan cache hands one
	// Pipeline to many server requests). Evaluation itself never holds mu —
	// only the compile-once bookkeeping does.
	mu sync.Mutex

	adorned  *adorn.Result
	magicRes *magic.Result
	factRes  *core.FactorResult
	optRes   *optimize.Result
	cntRes   *counting.Result
	supRes   *magic.Result

	adornErr, magicErr, factErr, optErr, cntErr, supErr       error
	adornDone, magicDone, factDone, optDone, cntDone, supDone bool

	// spans traces each transformation stage the first time it runs (the
	// results above are cached, so each stage appears at most once).
	spans []obsv.Span
}

// New constructs a pipeline.
func New(p *ast.Program, query ast.Atom) *Pipeline {
	return &Pipeline{Program: p, Query: query}
}

// WithConstraints attaches EDB constraints used by the factorability tests.
func (pl *Pipeline) WithConstraints(tgds []ast.Rule) *Pipeline {
	pl.Constraints = tgds
	return pl
}

// stageStart marks the beginning of a stage: its wall clock and the
// process heap counters, so recordSpan can report the stage's allocation
// delta alongside its wall time.
type stageStart struct {
	t       time.Time
	mallocs uint64
	bytes   uint64
}

// startStage samples the wall clock and allocation counters. The counters
// are process-wide (runtime.MemStats), so the delta attributes concurrent
// allocations to the stage too; transformation stages run once under the
// pipeline lock, where the attribution is accurate in practice.
func startStage() stageStart {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return stageStart{t: time.Now(), mallocs: ms.Mallocs, bytes: ms.TotalAlloc}
}

// recordSpan appends a stage span; in or out may be nil when the stage's
// input or output program is unavailable (a failed stage has no output).
func (pl *Pipeline) recordSpan(name string, start stageStart, in, out *ast.Program, err error) {
	sp := spanFrom(name, start, in, out, err)
	pl.spans = append(pl.spans, sp)
}

func spanFrom(name string, start stageStart, in, out *ast.Program, err error) obsv.Span {
	sp := obsv.Span{Name: name, Wall: time.Since(start.t)}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	sp.Allocs = ms.Mallocs - start.mallocs
	sp.AllocBytes = ms.TotalAlloc - start.bytes
	if in != nil {
		sp.RulesBefore, sp.ArityBefore = len(in.Rules), maxIDBArity(in)
	}
	if out != nil {
		sp.RulesAfter, sp.ArityAfter = len(out.Rules), maxIDBArity(out)
	}
	if err != nil {
		sp.Err = err.Error()
	}
	return sp
}

// Spans returns the stage spans recorded so far, in execution order.
func (pl *Pipeline) Spans() []obsv.Span {
	pl.mu.Lock()
	defer pl.mu.Unlock()
	return append([]obsv.Span(nil), pl.spans...)
}

// Adorned returns the adorned program, computing it on first use.
func (pl *Pipeline) Adorned() (*adorn.Result, error) {
	pl.mu.Lock()
	defer pl.mu.Unlock()
	return pl.adornedLocked()
}

func (pl *Pipeline) adornedLocked() (*adorn.Result, error) {
	if !pl.adornDone {
		start := startStage()
		pl.adorned, pl.adornErr = adorn.Adorn(pl.Program, pl.Query)
		var out *ast.Program
		if pl.adornErr == nil {
			out = pl.adorned.Program
		}
		pl.recordSpan("adorn", start, pl.Program, out, pl.adornErr)
		pl.adornDone = true
	}
	return pl.adorned, pl.adornErr
}

// MagicProgram returns the Magic Sets result.
func (pl *Pipeline) MagicProgram() (*magic.Result, error) {
	pl.mu.Lock()
	defer pl.mu.Unlock()
	return pl.magicLocked()
}

func (pl *Pipeline) magicLocked() (*magic.Result, error) {
	if !pl.magicDone {
		ad, err := pl.adornedLocked()
		if err != nil {
			pl.magicErr = err
		} else {
			start := startStage()
			pl.magicRes, pl.magicErr = magic.Transform(ad)
			var out *ast.Program
			if pl.magicErr == nil {
				out = pl.magicRes.Program
			}
			pl.recordSpan("magic", start, ad.Program, out, pl.magicErr)
		}
		pl.magicDone = true
	}
	return pl.magicRes, pl.magicErr
}

// FactoredProgram returns the factored Magic program (Theorems 4.1-4.3).
func (pl *Pipeline) FactoredProgram() (*core.FactorResult, error) {
	pl.mu.Lock()
	defer pl.mu.Unlock()
	return pl.factoredLocked()
}

func (pl *Pipeline) factoredLocked() (*core.FactorResult, error) {
	if !pl.factDone {
		m, err := pl.magicLocked()
		if err != nil {
			pl.factErr = err
		} else {
			start := startStage()
			pl.factRes, pl.factErr = core.FactorMagic(m, pl.Constraints)
			var out *ast.Program
			if pl.factErr == nil {
				out = pl.factRes.Program
			}
			pl.recordSpan("factor", start, m.Program, out, pl.factErr)
		}
		pl.factDone = true
	}
	return pl.factRes, pl.factErr
}

// OptimizedProgram returns the factored program after Section 5 clean-up.
func (pl *Pipeline) OptimizedProgram() (*optimize.Result, error) {
	pl.mu.Lock()
	defer pl.mu.Unlock()
	return pl.optimizedLocked()
}

func (pl *Pipeline) optimizedLocked() (*optimize.Result, error) {
	if !pl.optDone {
		fr, err := pl.factoredLocked()
		if err != nil {
			pl.optErr = err
		} else {
			m, _ := pl.magicLocked()
			start := startStage()
			pl.optRes, pl.optErr = optimize.Optimize(fr.Program,
				optimize.ForFactored(fr, magic.QueryPred, m.Seed.Head.Args))
			var out *ast.Program
			if pl.optErr == nil {
				out = pl.optRes.Program
			}
			pl.recordSpan("optimize", start, fr.Program, out, pl.optErr)
		}
		pl.optDone = true
	}
	return pl.optRes, pl.optErr
}

// SupplementaryMagicProgram returns the supplementary-magic result.
func (pl *Pipeline) SupplementaryMagicProgram() (*magic.Result, error) {
	pl.mu.Lock()
	defer pl.mu.Unlock()
	return pl.supLocked()
}

func (pl *Pipeline) supLocked() (*magic.Result, error) {
	if !pl.supDone {
		ad, err := pl.adornedLocked()
		if err != nil {
			pl.supErr = err
		} else {
			start := startStage()
			pl.supRes, pl.supErr = magic.TransformSupplementary(ad)
			var out *ast.Program
			if pl.supErr == nil {
				out = pl.supRes.Program
			}
			pl.recordSpan("sup-magic", start, ad.Program, out, pl.supErr)
		}
		pl.supDone = true
	}
	return pl.supRes, pl.supErr
}

// CountingProgram returns the Counting transformation result.
func (pl *Pipeline) CountingProgram() (*counting.Result, error) {
	pl.mu.Lock()
	defer pl.mu.Unlock()
	return pl.countingLocked()
}

func (pl *Pipeline) countingLocked() (*counting.Result, error) {
	if !pl.cntDone {
		ad, err := pl.adornedLocked()
		if err != nil {
			pl.cntErr = err
		} else {
			start := startStage()
			pl.cntRes, pl.cntErr = counting.Transform(ad)
			var out *ast.Program
			if pl.cntErr == nil {
				out = pl.cntRes.Program
			}
			pl.recordSpan("counting", start, ad.Program, out, pl.cntErr)
		}
		pl.cntDone = true
	}
	return pl.cntRes, pl.cntErr
}

// RunResult reports one strategy's outcome over one EDB.
type RunResult struct {
	Strategy Strategy
	// Answers are the query answers projected to the query's free
	// (non-ground) argument positions, rendered "(v1,..,vk)".
	Answers map[string]bool
	// Facts counts facts derived during evaluation (IDB facts; for
	// TopDown, successful proofs of IDB subgoals).
	Facts int
	// Inferences counts rule firings (resolution steps for TopDown).
	Inferences int
	// Iterations counts fixpoint rounds (max proof depth for TopDown).
	Iterations int
	// MaxIDBArity is the widest IDB predicate of the evaluated program,
	// counting index fields for Counting — the paper's arity-reduction
	// metric.
	MaxIDBArity int
	// Program is the program that was evaluated.
	Program *ast.Program
	// Spans traces the transformation stages that produced Program, ending
	// with an "eval" span for the evaluation itself.
	Spans []obsv.Span
	// Rules and Rounds carry the engine's per-rule and per-round records
	// when engine.Options.Trace is set (bottom-up strategies only; nil
	// otherwise).
	Rules  []obsv.RuleStats
	Rounds []obsv.RoundStats
	// Strata and Workers carry the parallel evaluator's per-stratum and
	// per-worker records when tracing a run with engine.Options.Workers > 1.
	Strata  []obsv.StratumStats
	Workers []obsv.WorkerStats
	// EvalWall is the evaluation's wall-clock time.
	EvalWall time.Duration
	// Storage is the database's storage shape after evaluation: arena and
	// index bytes, table counts, and hash-table load factors.
	Storage obsv.StorageStats
	// Degraded reports that a parallel evaluation lost a worker to a panic
	// and the answers come from the sequential retry (engine.Stats.Degraded).
	Degraded bool
	// Executor names the bottom-up evaluator that ran: "stream" when the
	// streaming relational-algebra executor handled the run (non-recursive
	// strata as iterator pipelines, recursive ones delegated to the
	// fixpoint), "materialize" for the classic fixpoint evaluators. Empty
	// for top-down strategies.
	Executor string
	// Stream carries the streaming executor's counters (rows, probes,
	// pushdowns, per-operator flow under Trace); nil unless Executor is
	// "stream".
	Stream *obsv.StreamStats
	// AutoPicked reports that the run was requested under the Auto strategy
	// and Strategy is the concrete winner the planner resolved it to.
	AutoPicked bool
	// Candidates is the planner's candidate table (estimated costs, chosen
	// and rejection reasons) when AutoPicked is set; nil otherwise.
	Candidates []CandidateInfo
}

// streamEligible reports whether opts route a bottom-up evaluation to the
// streaming executor: opt-in via Options.Streaming, semi-naive strategy
// (the streaming plan's recursive fallback is semi-naive, so naive-mode
// cost measures would be wrong), and no provenance recording (only the
// fixpoint evaluator builds derivation trees).
func streamEligible(opts engine.Options) bool {
	return opts.Streaming == engine.StreamAuto &&
		opts.Strategy == engine.SemiNaive &&
		!opts.Provenance
}

// evalProgram runs one bottom-up evaluation, routing to the streaming
// executor when eligible. It returns the engine stats, the stream stats
// (nil for materializing runs), and the executor name.
func evalProgram(prog *ast.Program, db *engine.DB, opts engine.Options) (engine.Stats, *obsv.StreamStats, string, error) {
	if streamEligible(opts) {
		res, err := stream.Eval(prog, db, opts)
		if err != nil {
			return engine.Stats{}, nil, "", err
		}
		st := res.Stream
		return res.Stats, &st, "stream", nil
	}
	res, err := engine.Eval(prog, db, opts)
	if err != nil {
		return engine.Stats{}, nil, "", err
	}
	return res.Stats, nil, "materialize", nil
}

// stageNames lists, per strategy, the transformation stages that produce
// the program it evaluates; strategies not listed evaluate the source
// program directly.
var stageNames = map[Strategy][]string{
	Magic:              {"adorn", "magic"},
	SupplementaryMagic: {"adorn", "sup-magic"},
	Factored:           {"adorn", "magic", "factor"},
	FactoredOptimized:  {"adorn", "magic", "factor", "optimize"},
	Counting:           {"adorn", "counting"},
}

// Compile forces the transformation chain a strategy evaluates, so later
// Runs pay only evaluation cost. It is a no-op for the strategies that
// evaluate the source program directly (Naive, SemiNaive, TopDown, Tabled)
// and memoized for the rest: the first call does the work, every later
// call (from any goroutine) returns the cached outcome.
func (pl *Pipeline) Compile(s Strategy) error {
	var err error
	switch s {
	case Naive, SemiNaive, TopDown, Tabled:
		return nil
	case Auto:
		return fmt.Errorf("auto strategy resolves at run time; compile the picked strategy")
	case Magic:
		_, err = pl.MagicProgram()
	case SupplementaryMagic:
		_, err = pl.SupplementaryMagicProgram()
	case Factored:
		_, err = pl.FactoredProgram()
	case FactoredOptimized:
		_, err = pl.OptimizedProgram()
	case Counting:
		_, err = pl.CountingProgram()
	default:
		err = fmt.Errorf("unknown strategy %v", s)
	}
	return err
}

// spansFor selects the recorded spans belonging to one strategy's stage
// chain (the pipeline accumulates spans across strategies as its caches
// fill).
func (pl *Pipeline) spansFor(s Strategy) []obsv.Span {
	pl.mu.Lock()
	defer pl.mu.Unlock()
	var out []obsv.Span
	for _, name := range stageNames[s] {
		for _, sp := range pl.spans {
			if sp.Name == name {
				out = append(out, sp)
				break
			}
		}
	}
	return out
}

// evalStart marks the start of an evaluation. Allocation counters are
// sampled only for traced runs: ReadMemStats briefly stops the world, and
// untraced server queries should not pay that per request.
func evalStart(traced bool) stageStart {
	if traced {
		return startStage()
	}
	return stageStart{t: time.Now()}
}

// evalSpan summarizes an evaluation as a span over the evaluated program,
// including the allocation delta when start sampled the heap counters.
func evalSpan(p *ast.Program, start stageStart, wall time.Duration, traced bool) obsv.Span {
	n, a := len(p.Rules), maxIDBArity(p)
	sp := obsv.Span{Name: "eval", Wall: wall,
		RulesBefore: n, RulesAfter: n, ArityBefore: a, ArityAfter: a}
	if traced {
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		sp.Allocs = ms.Mallocs - start.mallocs
		sp.AllocBytes = ms.TotalAlloc - start.bytes
	}
	return sp
}

// attachStageSpans replays the memoized transformation stages of s under
// parent as pre-measured (Cached) spans — their wall time was paid when the
// pipeline compiled, possibly by an earlier query — and returns the "eval"
// child span the evaluation should run under. A nil parent is a no-op
// returning nil.
func (pl *Pipeline) attachStageSpans(s Strategy, parent *trace.Span) *trace.Span {
	if parent == nil {
		return nil
	}
	for _, sp := range pl.spansFor(s) {
		parent.AddFinished(sp.Name, sp.Wall).
			SetAllocs(sp.Allocs, sp.AllocBytes).
			SetCached(true).
			SetNote(fmt.Sprintf("rules %d→%d, arity %d→%d",
				sp.RulesBefore, sp.RulesAfter, sp.ArityBefore, sp.ArityAfter))
	}
	return parent.Child("eval")
}

// Run evaluates one strategy over db. The db is mutated (derived relations
// are added); pass a fresh db per run.
//
// When evalOpts.Span is set, Run attaches the strategy's compile-stage
// spans under it and hands the engine an "eval" child span, so a query's
// trace shows adorn → magic → factor → … → eval with the engine's stratum,
// round, and rule spans below eval.
func (pl *Pipeline) Run(s Strategy, db *engine.DB, evalOpts engine.Options) (*RunResult, error) {
	if s == Auto {
		// Resolve the adaptive strategy against the EDB currently loaded in
		// db (statistics must be taken before evaluation mutates it), then
		// run the winner. Provenance recording needs a caller-fixed program,
		// so Auto refuses it with a typed error (surfaces answer 400).
		if evalOpts.Provenance {
			return nil, fmt.Errorf("%w: provenance evaluation needs a fixed strategy", ErrAutoUnsupported)
		}
		dec, err := pl.AutoPick(cost.SnapshotFromDB(db, 0))
		if err != nil {
			return nil, err
		}
		if dec.Reorder {
			evalOpts.ReorderJoins = true
		}
		r, err := pl.Run(dec.Strategy, db, evalOpts)
		if err != nil {
			return nil, err
		}
		r.AutoPicked = true
		r.Candidates = dec.Candidates
		return r, nil
	}
	if evalOpts.Span != nil {
		// Force the compile first (memoized) so the stage spans exist to
		// replay; a compile failure surfaces here exactly as it would below.
		if err := pl.Compile(s); err != nil {
			return nil, err
		}
		evalSp := pl.attachStageSpans(s, evalOpts.Span)
		evalOpts.Span = evalSp
		defer evalSp.End()
	}
	switch s {
	case Naive, SemiNaive:
		evalOpts.Strategy = engine.SemiNaive
		if s == Naive {
			evalOpts.Strategy = engine.Naive
		}
		start := evalStart(evalOpts.Trace)
		stats, streamStats, executor, err := evalProgram(pl.Program, db, evalOpts)
		wall := time.Since(start.t)
		if err != nil {
			return nil, err
		}
		evalOpts.Span.AddTuplesOut(int64(stats.Derived))
		answers, err := pl.projectedAnswers(db)
		if err != nil {
			return nil, err
		}
		return &RunResult{
			Strategy:    s,
			Answers:     answers,
			Facts:       stats.Derived,
			Inferences:  stats.Inferences,
			Iterations:  stats.Iterations,
			MaxIDBArity: maxIDBArity(pl.Program),
			Program:     pl.Program,
			Spans:       []obsv.Span{evalSpan(pl.Program, start, wall, evalOpts.Trace)},
			Rules:       stats.Rules,
			Rounds:      stats.Rounds,
			Strata:      stats.Strata,
			Workers:     stats.Workers,
			EvalWall:    wall,
			Storage:     db.StorageStats(),
			Degraded:    stats.Degraded,
			Executor:    executor,
			Stream:      streamStats,
		}, nil

	case Magic:
		m, err := pl.MagicProgram()
		if err != nil {
			return nil, err
		}
		return pl.runTransformed(s, m.Program, m.Query, db, evalOpts)

	case Factored:
		fr, err := pl.FactoredProgram()
		if err != nil {
			return nil, err
		}
		return pl.runTransformed(s, fr.Program, fr.Query, db, evalOpts)

	case FactoredOptimized:
		opt, err := pl.OptimizedProgram()
		if err != nil {
			return nil, err
		}
		fr, _ := pl.FactoredProgram()
		return pl.runTransformed(s, opt.Program, fr.Query, db, evalOpts)

	case SupplementaryMagic:
		sm, err := pl.SupplementaryMagicProgram()
		if err != nil {
			return nil, err
		}
		return pl.runTransformed(s, sm.Program, sm.Query, db, evalOpts)

	case Counting:
		c, err := pl.CountingProgram()
		if err != nil {
			return nil, err
		}
		return pl.runTransformed(s, c.Program, c.Query, db, evalOpts)

	case Tabled:
		start := evalStart(false)
		res, err := topdown.SolveTabled(pl.Program, db, pl.Query, topdown.Options{})
		wall := time.Since(start.t)
		if err != nil {
			return nil, err
		}
		answers := map[string]bool{}
		free := pl.freePositions()
		for _, a := range res.Answers {
			answers[renderProjection(a.Args, free, func(t ast.Term) string { return t.String() })] = true
		}
		return &RunResult{
			Strategy:    Tabled,
			Answers:     answers,
			Facts:       res.Stats.Answers,
			Inferences:  res.Stats.Steps,
			Iterations:  res.Stats.Rounds,
			MaxIDBArity: maxIDBArity(pl.Program),
			Program:     pl.Program,
			Spans:       []obsv.Span{evalSpan(pl.Program, start, wall, false)},
			EvalWall:    wall,
			Storage:     db.StorageStats(),
		}, nil

	case TopDown:
		// Budget tightly: like Prolog, SLD diverges on left recursion (the
		// first dive of the non-linear transitive closure rule) and on
		// cyclic data. Substitutions grow with depth, so a deep dive costs
		// O(depth^2) live map entries — keep the cap moderate. A budget
		// error makes Compare report the strategy as unavailable.
		start := evalStart(false)
		res, err := topdown.Solve(pl.Program, db, pl.Query, topdown.Options{
			MaxDepth: 1000,
			MaxSteps: 5_000_000,
		})
		wall := time.Since(start.t)
		if err != nil {
			return nil, err
		}
		answers := map[string]bool{}
		free := pl.freePositions()
		for _, a := range res.Answers {
			answers[renderProjection(a.Args, free, func(t ast.Term) string { return t.String() })] = true
		}
		return &RunResult{
			Strategy:    TopDown,
			Answers:     answers,
			Facts:       res.Stats.IDBSuccesses,
			Inferences:  res.Stats.Steps,
			Iterations:  res.Stats.MaxDepthSeen,
			MaxIDBArity: maxIDBArity(pl.Program),
			Program:     pl.Program,
			Spans:       []obsv.Span{evalSpan(pl.Program, start, wall, false)},
			EvalWall:    wall,
			Storage:     db.StorageStats(),
		}, nil

	default:
		return nil, fmt.Errorf("unknown strategy %v", s)
	}
}

func (pl *Pipeline) runTransformed(s Strategy, prog *ast.Program, query ast.Atom,
	db *engine.DB, evalOpts engine.Options) (*RunResult, error) {
	start := evalStart(evalOpts.Trace)
	stats, streamStats, executor, err := evalProgram(prog, db, evalOpts)
	wall := time.Since(start.t)
	if err != nil {
		return nil, err
	}
	evalOpts.Span.AddTuplesOut(int64(stats.Derived))
	set, err := engine.AnswerSet(db, query)
	if err != nil {
		return nil, err
	}
	return &RunResult{
		Strategy:    s,
		Answers:     set,
		Facts:       stats.Derived,
		Inferences:  stats.Inferences,
		Iterations:  stats.Iterations,
		MaxIDBArity: maxIDBArity(prog),
		Program:     prog,
		Spans:       append(pl.spansFor(s), evalSpan(prog, start, wall, evalOpts.Trace)),
		Rules:       stats.Rules,
		Rounds:      stats.Rounds,
		Strata:      stats.Strata,
		Workers:     stats.Workers,
		EvalWall:    wall,
		Storage:     db.StorageStats(),
		Degraded:    stats.Degraded,
		Executor:    executor,
		Stream:      streamStats,
	}, nil
}

// MaterializableStrategy reports whether s can serve from a materialized
// database. Every bottom-up strategy qualifies — each evaluates a fixed
// program whose fixpoint the materializer maintains across mutations. The
// top-down strategies (TopDown, Tabled) prove goals on demand and have no
// materialized view to maintain.
func MaterializableStrategy(s Strategy) bool {
	switch s {
	case Naive, SemiNaive, Magic, SupplementaryMagic, Factored, FactoredOptimized, Counting:
		return true
	}
	return false
}

// MaterializedProgram returns the program strategy s evaluates bottom-up
// and the atom whose tuples are its answers. transformed reports whether
// that atom is a rewritten query predicate — read with engine.AnswerSet —
// or the original query, whose matching tuples must be projected onto the
// free positions (ProjectAnswers). Top-down strategies return an error;
// gate with MaterializableStrategy.
func (pl *Pipeline) MaterializedProgram(s Strategy) (prog *ast.Program, query ast.Atom, transformed bool, err error) {
	switch s {
	case Naive, SemiNaive:
		return pl.Program, pl.Query, false, nil
	case Magic:
		m, err := pl.MagicProgram()
		if err != nil {
			return nil, ast.Atom{}, false, err
		}
		return m.Program, m.Query, true, nil
	case SupplementaryMagic:
		sm, err := pl.SupplementaryMagicProgram()
		if err != nil {
			return nil, ast.Atom{}, false, err
		}
		return sm.Program, sm.Query, true, nil
	case Factored:
		fr, err := pl.FactoredProgram()
		if err != nil {
			return nil, ast.Atom{}, false, err
		}
		return fr.Program, fr.Query, true, nil
	case FactoredOptimized:
		opt, err := pl.OptimizedProgram()
		if err != nil {
			return nil, ast.Atom{}, false, err
		}
		fr, _ := pl.FactoredProgram()
		return opt.Program, fr.Query, true, nil
	case Counting:
		c, err := pl.CountingProgram()
		if err != nil {
			return nil, ast.Atom{}, false, err
		}
		return c.Program, c.Query, true, nil
	default:
		return nil, ast.Atom{}, false, fmt.Errorf("strategy %v has no materialized program", s)
	}
}

// ProjectAnswers projects db's tuples matching the original query onto its
// free positions — the answer shape every strategy shares.
func (pl *Pipeline) ProjectAnswers(db *engine.DB) (map[string]bool, error) {
	return pl.projectedAnswers(db)
}

// projectedAnswers projects the original query's matching tuples onto the
// free positions, matching the transformed strategies' answer shape.
func (pl *Pipeline) projectedAnswers(db *engine.DB) (map[string]bool, error) {
	tuples, err := engine.Answers(db, pl.Query)
	if err != nil {
		return nil, err
	}
	free := pl.freePositions()
	out := make(map[string]bool, len(tuples))
	for _, tup := range tuples {
		out[renderProjection(tup, free, func(v engine.Val) string { return db.Store.String(v) })] = true
	}
	return out, nil
}

func (pl *Pipeline) freePositions() []int {
	var out []int
	for i, t := range pl.Query.Args {
		if !t.Ground() {
			out = append(out, i)
		}
	}
	return out
}

func renderProjection[T any](args []T, pos []int, show func(T) string) string {
	var b strings.Builder
	b.WriteByte('(')
	for i, p := range pos {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(show(args[p]))
	}
	b.WriteByte(')')
	return b.String()
}

func maxIDBArity(p *ast.Program) int {
	arities, err := p.PredArities()
	if err != nil {
		return 0
	}
	max := 0
	for pred := range p.IDBPreds() {
		if arities[pred] > max {
			max = arities[pred]
		}
	}
	return max
}

// SameAnswers reports whether two runs agree, and a description of the
// first difference otherwise.
func SameAnswers(a, b *RunResult) (bool, string) {
	for k := range a.Answers {
		if !b.Answers[k] {
			return false, fmt.Sprintf("%s has %s, %s does not", a.Strategy, k, b.Strategy)
		}
	}
	for k := range b.Answers {
		if !a.Answers[k] {
			return false, fmt.Sprintf("%s has %s, %s does not", b.Strategy, k, a.Strategy)
		}
	}
	return true, ""
}

// Compare runs each strategy on a fresh EDB produced by load and checks
// that all runs agree on the answers. Strategies whose transformation is
// unavailable for this program (e.g. Factored on a non-factorable program,
// Counting on a left-linear one) are skipped and reported in skipped.
func (pl *Pipeline) Compare(strategies []Strategy, load func() *engine.DB,
	evalOpts engine.Options) (results []*RunResult, skipped map[Strategy]error, err error) {
	skipped = map[Strategy]error{}
	for _, s := range strategies {
		r, runErr := pl.Run(s, load(), evalOpts)
		if runErr != nil {
			skipped[s] = runErr
			continue
		}
		results = append(results, r)
	}
	for i := 1; i < len(results); i++ {
		if ok, diff := SameAnswers(results[0], results[i]); !ok {
			return results, skipped, fmt.Errorf("strategies disagree: %s", diff)
		}
	}
	return results, skipped, nil
}

// Table renders results as an aligned text table. Column widths adapt to
// the contents (long strategy names, large counts) via text/tabwriter.
func Table(results []*RunResult) string {
	var b strings.Builder
	w := tabwriter.NewWriter(&b, 0, 0, 2, ' ', 0)
	fmt.Fprintln(w, "strategy\tanswers\tinferences\tfacts\titers\tarity")
	for _, r := range results {
		fmt.Fprintf(w, "%s\t%d\t%d\t%d\t%d\t%d\n",
			r.Strategy, len(r.Answers), r.Inferences, r.Facts, r.Iterations, r.MaxIDBArity)
	}
	w.Flush()
	return b.String()
}

// ProfileTable renders one run's profile: its stage spans and, when the
// evaluation was traced (engine.Options.Trace), the per-rule and per-round
// tables.
func ProfileTable(r *RunResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "strategy: %s (eval wall %s)\n",
		r.Strategy, obsv.FormatDuration(r.EvalWall))
	if r.Executor != "" {
		fmt.Fprintf(&b, "executor: %s\n", r.Executor)
	}
	if r.Stream != nil {
		b.WriteString(obsv.StreamLine(*r.Stream))
		b.WriteByte('\n')
	}
	if r.Storage.Relations > 0 {
		b.WriteString(obsv.StorageLine(r.Storage))
		b.WriteByte('\n')
	}
	b.WriteString(obsv.SpanTable(r.Spans))
	if len(r.Rules) > 0 {
		b.WriteByte('\n')
		b.WriteString(obsv.RuleTable(r.Rules))
	}
	if len(r.Strata) > 0 {
		b.WriteByte('\n')
		b.WriteString(obsv.StratumTable(r.Strata))
	}
	if len(r.Workers) > 0 {
		b.WriteByte('\n')
		b.WriteString(obsv.WorkerTable(r.Workers))
	}
	if len(r.Rounds) > 0 {
		b.WriteByte('\n')
		b.WriteString(obsv.RoundTable(r.Rounds))
	}
	if r.Stream != nil && len(r.Stream.Ops) > 0 {
		b.WriteByte('\n')
		b.WriteString(obsv.StreamOpTable(r.Stream.Ops))
	}
	return b.String()
}

// SortedAnswers renders a run's answers sorted, for display.
func SortedAnswers(r *RunResult) []string {
	out := make([]string, 0, len(r.Answers))
	for a := range r.Answers {
		out = append(out, a)
	}
	sort.Strings(out)
	return out
}
