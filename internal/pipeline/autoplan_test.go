package pipeline

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"

	"factorlog/internal/ast"
	"factorlog/internal/cost"
	"factorlog/internal/engine"
	"factorlog/internal/parser"
	"factorlog/internal/workload"
)

// chainTCFamily is the paper's flagship shape: linear transitive closure
// with a bound query, where factoring reduces the recursion to unary.
const chainTCSrc = `
tc(X, Y) :- e(X, Y).
tc(X, Y) :- e(X, Z), tc(Z, Y).
`

// autoFamily is one benchmark family for the optimizer tests.
type autoFamily struct {
	name  string
	prog  string
	query string
	load  func(db *engine.DB)
}

func autoFamilies() []autoFamily {
	return []autoFamily{
		{
			name:  "chain-tc",
			prog:  chainTCSrc,
			query: "tc(1, Y)",
			load:  func(db *engine.DB) { workload.Chain(db, "e", 120) },
		},
		{
			name:  "layered-joins",
			prog:  workload.LayeredJoinProgram(4),
			query: workload.LayeredJoinQuery(4).String(),
			load:  func(db *engine.DB) { workload.LayeredJoins(db, 4, 80, 2) },
		},
		{
			name:  "wide-pairs",
			prog:  "hit(X, Y) :- w(X, Y).\nhit2(Y) :- hit(3, Y).",
			query: "hit2(Y)",
			load:  func(db *engine.DB) { workload.WidePairs(db, "w", 2000, 8) },
		},
	}
}

func familyPipeline(t *testing.T, f autoFamily) *Pipeline {
	t.Helper()
	p, err := parser.ParseProgram(f.prog)
	if err != nil {
		t.Fatalf("%s: parse: %v", f.name, err)
	}
	return New(p, mustAtom(t, f.query))
}

// The bound chain query is the configuration the paper's factoring theorem
// targets: the optimizer must pick an arity-reduced (factored) plan and
// produce a well-formed candidate table.
func TestAutoPickChainTC(t *testing.T) {
	pl := familyPipeline(t, autoFamilies()[0])
	db := engine.NewDB()
	workload.Chain(db, "e", 120)
	dec, err := pl.AutoPick(cost.SnapshotFromDB(db, 0))
	if err != nil {
		t.Fatal(err)
	}
	if dec.Strategy != Factored && dec.Strategy != FactoredOptimized {
		t.Errorf("chain TC picked %s, want a factored variant\n%s",
			dec.Strategy, candidateDump(dec.Candidates))
	}
	chosen := 0
	for _, c := range dec.Candidates {
		if c.Chosen {
			chosen++
			if c.Reason == "" {
				t.Error("chosen candidate has no reason")
			}
		} else if c.Reason == "" {
			t.Errorf("losing candidate %s (reorder=%v) has no reason", c.Strategy, c.Reorder)
		}
	}
	if chosen != 1 {
		t.Errorf("%d chosen candidates, want 1", chosen)
	}
	if len(dec.Candidates) < len(AutoCandidateStrategies()) {
		t.Errorf("only %d candidates for %d strategies", len(dec.Candidates), len(AutoCandidateStrategies()))
	}
}

func candidateDump(cands []CandidateInfo) string {
	var b strings.Builder
	for _, c := range cands {
		fmt.Fprintf(&b, "  %s reorder=%v cost=%.1f chosen=%v %s\n",
			c.Strategy, c.Reorder, c.Cost, c.Chosen, c.Reason)
	}
	return b.String()
}

// Property: on every benchmark family, the Auto pick's measured work
// (inference count — deterministic, unlike wall time) is within 2x of the
// best fixed strategy's. Runs under -race in CI.
func TestAutoWithinTwiceBestFixed(t *testing.T) {
	for _, f := range autoFamilies() {
		f := f
		t.Run(f.name, func(t *testing.T) {
			pl := familyPipeline(t, f)
			newDB := func() *engine.DB {
				db := engine.NewDB()
				f.load(db)
				return db
			}
			best := -1
			bestName := ""
			for _, s := range AutoCandidateStrategies() {
				r, err := pl.Run(s, newDB(), engine.Options{})
				if err != nil {
					continue // strategy rejected for this family
				}
				if best < 0 || r.Inferences < best {
					best, bestName = r.Inferences, s.String()
				}
			}
			if best < 0 {
				t.Fatal("no fixed strategy succeeded")
			}
			auto, err := pl.Run(Auto, newDB(), engine.Options{})
			if err != nil {
				t.Fatal(err)
			}
			if !auto.AutoPicked {
				t.Error("AutoPicked not set on Auto run")
			}
			if len(auto.Candidates) == 0 {
				t.Error("Auto run carries no candidate table")
			}
			if auto.Inferences > 2*best {
				t.Errorf("auto picked %s with %d inferences; best fixed %s has %d (>2x)\n%s",
					auto.Strategy, auto.Inferences, bestName, best, candidateDump(auto.Candidates))
			}
		})
	}
}

// Auto must agree with the fixed strategies on answers, not just cost.
func TestAutoAnswersMatchSemiNaive(t *testing.T) {
	for _, f := range autoFamilies() {
		pl := familyPipeline(t, f)
		newDB := func() *engine.DB {
			db := engine.NewDB()
			f.load(db)
			return db
		}
		want, err := pl.Run(SemiNaive, newDB(), engine.Options{})
		if err != nil {
			t.Fatalf("%s: semi-naive: %v", f.name, err)
		}
		got, err := pl.Run(Auto, newDB(), engine.Options{})
		if err != nil {
			t.Fatalf("%s: auto: %v", f.name, err)
		}
		if len(got.Answers) != len(want.Answers) {
			t.Fatalf("%s: auto (%s) found %d answers, semi-naive %d",
				f.name, got.Strategy, len(got.Answers), len(want.Answers))
		}
		for a := range want.Answers {
			if !got.Answers[a] {
				t.Fatalf("%s: auto (%s) missing answer %s", f.name, got.Strategy, a)
			}
		}
	}
}

// Provenance evaluation needs a caller-fixed strategy; Auto must refuse
// with the typed sentinel HTTP handlers map to a 400.
func TestAutoProvenanceUnsupported(t *testing.T) {
	pl := familyPipeline(t, autoFamilies()[0])
	db := engine.NewDB()
	workload.Chain(db, "e", 4)
	_, err := pl.Run(Auto, db, engine.Options{Provenance: true})
	if !errors.Is(err, ErrAutoUnsupported) {
		t.Fatalf("err = %v, want ErrAutoUnsupported", err)
	}
}

// Compile(Auto) is a contract violation, not a panic.
func TestCompileAutoRejected(t *testing.T) {
	pl := familyPipeline(t, autoFamilies()[0])
	if err := pl.Compile(Auto); err == nil {
		t.Fatal("Compile(Auto) succeeded")
	}
}

// Shadow re-costing: a decision made over a tiny EDB is re-costed after a
// mutation-driven skew flip (thousands of asserted chain edges) and the
// planner must invalidate it for an arity-reduced rival. Exercises the full
// loop: Materializer.Apply -> epoch trigger -> re-cost -> margin -> repick.
func TestAutoPlannerRepicksAfterSkewFlip(t *testing.T) {
	p, err := parser.ParseProgram(chainTCSrc)
	if err != nil {
		t.Fatal(err)
	}
	query := mustAtom(t, "tc(1, Y)")

	// Tiny base: 3 edges. The optimizer should favor the small program
	// (semi-naive) — rewrite rules cost more than they save at this size.
	base := []ast.Atom{}
	for i := 1; i <= 3; i++ {
		a, err := parser.ParseAtom(fmt.Sprintf("e(%d, %d)", i, i+1))
		if err != nil {
			t.Fatal(err)
		}
		base = append(base, a)
	}
	cache := NewPlanCache()
	mat, err := NewMaterializer(p, nil, base, cache, MaterializerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	planner := NewAutoPlanner(p, nil, cache, SnapshotSource(mat),
		AutoPolicy{RecostEpochs: 1})

	first, err := planner.Choose(context.Background(), query)
	if err != nil {
		t.Fatal(err)
	}
	if first.Recosted || first.Repicked {
		t.Fatalf("first choice reported recost=%v repick=%v", first.Recosted, first.Repicked)
	}

	// Same epoch: the decision is fresh, no re-cost.
	again, err := planner.Choose(context.Background(), query)
	if err != nil {
		t.Fatal(err)
	}
	if again.Recosted {
		t.Fatal("fresh decision was re-costed")
	}
	if !again.PlanHit {
		t.Error("fresh decision missed the plan cache")
	}

	// Skew flip: assert a 3000-edge chain through Materializer.Apply. The
	// epoch advances, the re-cost trigger fires, and the factored plan's
	// O(n) estimate must now beat the incumbent's O(n^2) by the margin.
	var assert []ast.Atom
	for i := 4; i <= 3000; i++ {
		a, err := parser.ParseAtom(fmt.Sprintf("e(%d, %d)", i, i+1))
		if err != nil {
			t.Fatal(err)
		}
		assert = append(assert, a)
	}
	if _, err := mat.Apply(assert, nil); err != nil {
		t.Fatal(err)
	}

	flipped, err := planner.Choose(context.Background(), query)
	if err != nil {
		t.Fatal(err)
	}
	if !flipped.Recosted {
		t.Fatal("skewed choice was not re-costed")
	}
	if !flipped.Repicked {
		t.Fatalf("re-cost kept %s after the skew flip\n%s",
			flipped.Strategy, candidateDump(flipped.Candidates))
	}
	if flipped.Strategy == first.Strategy {
		t.Fatalf("repick reports a switch but strategy stayed %s", flipped.Strategy)
	}

	st := planner.Stats()
	if st.Picks != 1 || st.Recosts != 1 || st.Repicks != 1 || st.Wins != 0 {
		t.Errorf("counters = picks %d recosts %d repicks %d wins %d, want 1/1/1/0",
			st.Picks, st.Recosts, st.Repicks, st.Wins)
	}
	if st.RecostWall == nil || st.RecostWall.Count != 1 {
		t.Error("recost wall histogram not observed")
	}
	if st.PicksByStrategy[flipped.Strategy.String()] == 0 {
		t.Errorf("picks_by_strategy missing %s: %v", flipped.Strategy, st.PicksByStrategy)
	}

	// The winner is aliased in the plan cache under the Auto key.
	if !cache.Drop(HashProgram(p, nil), query, Auto) {
		t.Error("no plan cached under the Auto strategy key")
	}
}

// A re-cost whose rival does not clear the margin keeps the incumbent and
// counts a win, leaving the cached Auto plan valid.
func TestAutoPlannerWinWithoutRepick(t *testing.T) {
	p, err := parser.ParseProgram(chainTCSrc)
	if err != nil {
		t.Fatal(err)
	}
	query := mustAtom(t, "tc(1, Y)")
	var base []ast.Atom
	for i := 1; i <= 500; i++ {
		a, perr := parser.ParseAtom(fmt.Sprintf("e(%d, %d)", i, i+1))
		if perr != nil {
			t.Fatal(perr)
		}
		base = append(base, a)
	}
	cache := NewPlanCache()
	mat, err := NewMaterializer(p, nil, base, cache, MaterializerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	planner := NewAutoPlanner(p, nil, cache, SnapshotSource(mat),
		AutoPolicy{RecostEpochs: 1})

	first, err := planner.Choose(context.Background(), query)
	if err != nil {
		t.Fatal(err)
	}
	// A handful more edges changes the epoch but not the shape: the same
	// strategy must win again.
	a, _ := parser.ParseAtom("e(501, 502)")
	if _, err := mat.Apply([]ast.Atom{a}, nil); err != nil {
		t.Fatal(err)
	}
	second, err := planner.Choose(context.Background(), query)
	if err != nil {
		t.Fatal(err)
	}
	if !second.Recosted || second.Repicked {
		t.Fatalf("recost=%v repick=%v, want recost without repick", second.Recosted, second.Repicked)
	}
	if second.Strategy != first.Strategy {
		t.Fatalf("strategy changed %s -> %s without a repick", first.Strategy, second.Strategy)
	}
	st := planner.Stats()
	if st.Wins != 1 || st.Repicks != 0 {
		t.Errorf("wins=%d repicks=%d, want 1/0", st.Wins, st.Repicks)
	}
}

// PlanCache.Put/Drop round-trip, including LRU accounting.
func TestPlanCachePutDrop(t *testing.T) {
	p, err := parser.ParseProgram(tcSrc)
	if err != nil {
		t.Fatal(err)
	}
	hash := HashProgram(p, nil)
	c := NewPlanCache()
	q := mustAtom(t, "t(5, Y)")
	plan, _, err := c.Lookup(context.Background(), p, hash, nil, q, SemiNaive)
	if err != nil {
		t.Fatal(err)
	}
	if c.Drop(hash, q, Auto) {
		t.Fatal("Drop found an entry that was never put")
	}
	c.Put(hash, q, Auto, plan)
	if got := c.Stats().Entries; got != 2 {
		t.Fatalf("entries = %d, want 2", got)
	}
	got, hit, err := c.Lookup(context.Background(), p, hash, nil, q, Auto)
	if err != nil || !hit || got != plan {
		t.Fatalf("lookup after Put: plan=%v hit=%v err=%v", got == plan, hit, err)
	}
	if !c.Drop(hash, q, Auto) {
		t.Fatal("Drop missed the entry Put created")
	}
	if c.Drop(hash, q, Auto) {
		t.Fatal("second Drop succeeded")
	}
}
