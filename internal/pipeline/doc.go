// Package pipeline wires the whole system together: given a program and a
// query it builds, on demand, the adorned program, the Magic program, the
// factored program, the Section-5-optimized program, and the Counting
// program, and evaluates any of them over an EDB with uniform statistics.
// This is the paper's "two-step approach to optimizing programs" (Section
// 4.2) as an executable artifact, with every baseline alongside.
//
// A Pipeline memoizes each transformation the first time a strategy needs
// it and is safe for concurrent use: many goroutines may Run strategies
// against the same Pipeline (each over its own EDB), paying the rewrite
// cost once. Compile forces a strategy's transformation chain ahead of
// time.
//
// For serving workloads, PlanCache maintains compiled plans keyed by
// (program hash, query predicate, adornment, strategy) plus the query's
// bound constants, so a long-lived process (cmd/factorlogd) amortizes the
// Magic/factoring pipeline across queries instead of recompiling per
// request. See plan.go for why the bound constants are part of the cache
// identity.
package pipeline
