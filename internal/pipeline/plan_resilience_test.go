package pipeline

import (
	"context"
	"errors"
	"testing"
	"time"

	"factorlog/internal/ast"
	"factorlog/internal/engine"
	"factorlog/internal/faultinject"
	"factorlog/internal/parser"
)

// TestCanceledCompileNotNegativeCached: a lookup whose context is already
// dead fails with the typed cancellation error, and the failure is NOT
// remembered — the next lookup with a live context compiles normally.
func TestCanceledCompileNotNegativeCached(t *testing.T) {
	p := mustProgram(t, tcSrc)
	hash := HashProgram(p, nil)
	c := NewPlanCache()
	q := mustAtom(t, "t(5, Y)")

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, hit, err := c.Lookup(ctx, p, hash, nil, q, Magic)
	if !errors.Is(err, engine.ErrCanceled) {
		t.Fatalf("dead-context lookup: err = %v, want ErrCanceled", err)
	}
	if hit {
		t.Error("dead-context lookup reported a hit")
	}
	if st := c.Stats(); st.Entries != 0 {
		t.Fatalf("canceled compile left %d cached entries, want 0", st.Entries)
	}

	plan, hit, err := c.Lookup(context.Background(), p, hash, nil, q, Magic)
	if err != nil || plan == nil {
		t.Fatalf("retry after cancellation: plan=%v err=%v", plan, err)
	}
	if hit {
		t.Error("retry hit a forgotten entry")
	}
}

// TestDeadlineCompileNotNegativeCached mirrors the canceled case for
// deadline expiry, the other transient context outcome.
func TestDeadlineCompileNotNegativeCached(t *testing.T) {
	p := mustProgram(t, tcSrc)
	hash := HashProgram(p, nil)
	c := NewPlanCache()
	q := mustAtom(t, "t(6, Y)")

	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	_, _, err := c.Lookup(ctx, p, hash, nil, q, Magic)
	if !errors.Is(err, engine.ErrDeadlineExceeded) {
		t.Fatalf("expired-deadline lookup: err = %v, want ErrDeadlineExceeded", err)
	}
	if st := c.Stats(); st.Entries != 0 {
		t.Fatalf("expired compile left %d cached entries, want 0", st.Entries)
	}
	if _, _, err := c.Lookup(context.Background(), p, hash, nil, q, Magic); err != nil {
		t.Fatalf("retry after deadline: %v", err)
	}
}

// TestFaultedCompileNotNegativeCached: a compile killed by an injected
// panic surfaces as engine.ErrInternal and is forgotten; once the fault
// clears, the same identity compiles and THEN starts hitting the cache.
func TestFaultedCompileNotNegativeCached(t *testing.T) {
	p := mustProgram(t, tcSrc)
	hash := HashProgram(p, nil)
	c := NewPlanCache()
	q := mustAtom(t, "t(5, Y)")

	disable := faultinject.Enable(faultinject.Config{
		Seed: 3, MaxPeriod: 1, Points: []faultinject.Point{faultinject.PlanCompile},
	})
	_, _, err := c.Lookup(context.Background(), p, hash, nil, q, Magic)
	disable()
	if !errors.Is(err, engine.ErrInternal) {
		t.Fatalf("faulted compile: err = %v, want ErrInternal", err)
	}
	if st := c.Stats(); st.Entries != 0 {
		t.Fatalf("faulted compile left %d cached entries, want 0", st.Entries)
	}

	if _, hit, err := c.Lookup(context.Background(), p, hash, nil, q, Magic); err != nil || hit {
		t.Fatalf("first clean retry: hit=%v err=%v, want fresh compile", hit, err)
	}
	if _, hit, err := c.Lookup(context.Background(), p, hash, nil, q, Magic); err != nil || !hit {
		t.Fatalf("second clean retry: hit=%v err=%v, want cache hit", hit, err)
	}
}

// TestWaiterDeadlineDoesNotDisturbCompile: a lookup that joins an
// in-flight compile waits only as long as its own context allows, and its
// timeout neither fails nor forgets the entry being built.
func TestWaiterDeadlineDoesNotDisturbCompile(t *testing.T) {
	p := mustProgram(t, tcSrc)
	hash := HashProgram(p, nil)
	c := NewPlanCache()
	q := mustAtom(t, "t(5, Y)")

	// Plant a never-finishing in-flight entry at q's exact identity.
	key := PlanKey{
		ProgramHash: hash,
		QueryPred:   q.Pred,
		Adornment:   ast.AdornmentOf(q, nil),
		Strategy:    Magic,
	}
	id := cacheID{key: key, canon: q.CanonicalKey()}
	stuck := &cacheEntry{ready: make(chan struct{})}
	c.mu.Lock()
	c.entries[id] = c.order.PushFront(&lruSlot{id: id, entry: stuck})
	c.mu.Unlock()

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	_, hit, err := c.Lookup(ctx, p, hash, nil, q, Magic)
	if !hit {
		t.Error("waiter on in-flight compile did not report a hit")
	}
	if !errors.Is(err, engine.ErrDeadlineExceeded) {
		t.Fatalf("timed-out waiter: err = %v, want ErrDeadlineExceeded", err)
	}

	// The in-flight entry is untouched: finish it and a fresh lookup gets it.
	stuck.err = errors.New("builder outcome")
	close(stuck.ready)
	_, hit, err = c.Lookup(context.Background(), p, hash, nil, q, Magic)
	if !hit || err == nil || err.Error() != "builder outcome" {
		t.Fatalf("post-timeout lookup: hit=%v err=%v, want the builder's outcome", hit, err)
	}
}

func mustProgram(t *testing.T, src string) *ast.Program {
	t.Helper()
	p, err := parser.ParseProgram(src)
	if err != nil {
		t.Fatal(err)
	}
	return p
}
