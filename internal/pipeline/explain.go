package pipeline

import (
	"fmt"
	"strings"

	"factorlog/internal/ast"
	"factorlog/internal/core"
	"factorlog/internal/depgraph"
	"factorlog/internal/engine"
	"factorlog/internal/obsv"
	"factorlog/internal/stream"
)

// This file implements the plan half of EXPLAIN: a structured description
// of what one strategy's compiled plan looks like — the transformed rule
// set, which §4/§5 reductions applied, and the stratum schedule the
// parallel evaluator would run. EXPLAIN ANALYZE adds the measured span tree
// on top (the server composes the two; see cmd/factorlogd).

// StratumPlan is one stratum of the plan's topological schedule.
type StratumPlan struct {
	// Index is the stratum's position in the schedule.
	Index int `json:"index"`
	// Preds are the IDB predicates the stratum defines.
	Preds []string `json:"preds"`
	// Recursive reports whether the stratum needs a fixpoint.
	Recursive bool `json:"recursive"`
	// Rules counts the rules belonging to the stratum.
	Rules int `json:"rules"`
	// Executor is the streaming planner's classification: "stream" for
	// strata the streaming executor runs as iterator pipelines (when
	// engine.Options.Streaming selects it), "fixpoint" for recursive strata.
	// The classification is always computed so EXPLAIN describes what a
	// streamed run would do even when the run itself materializes.
	Executor string `json:"executor"`
	// Reason says why the planner chose that executor.
	Reason string `json:"reason,omitempty"`
	// Plans holds the per-rule streaming operator trees (with pushed
	// predicates) of a streamable stratum; nil for fixpoint strata.
	Plans []*stream.RulePlan `json:"plans,omitempty"`
}

// ExplainInfo describes one strategy's compiled plan for a query.
type ExplainInfo struct {
	// Strategy is the strategy name ("factored+opt", ...).
	Strategy string `json:"strategy"`
	// Query is the original query atom; Adornment its binding pattern.
	Query     string `json:"query"`
	Adornment string `json:"adornment"`
	// Rules is the transformed rule set the strategy evaluates, one rendered
	// rule per line in program order.
	Rules []string `json:"rules"`
	// Reductions lists the §4/§5 reductions (and other rewrites) that
	// applied, in application order: the Magic transformation, the factoring
	// theorem used with its predicate split, and each Section 5 clean-up
	// step. Empty for strategies that evaluate the source program directly.
	Reductions []string `json:"reductions"`
	// Strata is the topological stratum schedule of the evaluated program.
	Strata []StratumPlan `json:"strata"`
	// Stages are the compile-stage spans (wall, rule/arity deltas) the
	// pipeline recorded building this plan.
	Stages []obsv.Span `json:"stages,omitempty"`
	// Candidates is the Auto planner's candidate table (strategy, ordering,
	// estimated cost, chosen/rejected reason) when the plan was picked by the
	// adaptive optimizer; empty for fixed-strategy plans.
	Candidates []CandidateInfo `json:"candidates,omitempty"`
}

// Explain compiles strategy s (memoized, like Run) and describes the
// resulting plan. It fails with the same error Run would when the strategy
// is unavailable for this program (e.g. Factored on a non-factorable one).
func (pl *Pipeline) Explain(s Strategy) (*ExplainInfo, error) {
	if err := pl.Compile(s); err != nil {
		return nil, err
	}
	info := &ExplainInfo{
		Strategy:  s.String(),
		Query:     pl.Query.String(),
		Adornment: string(ast.AdornmentOf(pl.Query, nil)),
		Stages:    pl.spansFor(s),
	}

	prog := pl.Program
	switch s {
	case Magic:
		m, _ := pl.MagicProgram()
		prog = m.Program
		info.Reductions = append(info.Reductions, pl.magicReduction())
	case SupplementaryMagic:
		sm, _ := pl.SupplementaryMagicProgram()
		prog = sm.Program
		info.Reductions = append(info.Reductions,
			pl.magicReduction()+" with supplementary predicates")
	case Factored:
		fr, _ := pl.FactoredProgram()
		prog = fr.Program
		info.Reductions = append(info.Reductions, pl.magicReduction())
		info.Reductions = append(info.Reductions, factorReduction(fr))
	case FactoredOptimized:
		opt, _ := pl.OptimizedProgram()
		fr, _ := pl.FactoredProgram()
		prog = opt.Program
		info.Reductions = append(info.Reductions, pl.magicReduction())
		info.Reductions = append(info.Reductions, factorReduction(fr))
		info.Reductions = append(info.Reductions, opt.Trace...)
	case Counting:
		c, _ := pl.CountingProgram()
		prog = c.Program
		info.Reductions = append(info.Reductions,
			"counting transformation (§6.4): distance indexes replace carried arguments")
	}

	for _, r := range prog.Rules {
		info.Rules = append(info.Rules, r.String())
	}
	// The streaming planner subsumes the bare depgraph schedule: same
	// strata, plus the executor decision and the per-rule operator trees of
	// the streamable ones. It is computed unconditionally so EXPLAIN
	// describes the streaming plan whether or not the run opts in.
	splan, err := stream.PlanProgram(prog, engine.NewStore(), false)
	if err != nil {
		// Fall back to the schedule alone (e.g. a program the rule compiler
		// rejects but the depgraph can still stratify).
		for i, st := range depgraph.Analyze(prog).Strata {
			info.Strata = append(info.Strata, StratumPlan{
				Index:     i,
				Preds:     st.Preds,
				Recursive: st.Recursive,
				Rules:     len(st.Rules),
			})
		}
		return info, nil
	}
	for i := range splan.Strata {
		sp := &splan.Strata[i]
		executor := "stream"
		if !sp.Streamed {
			executor = "fixpoint"
		}
		info.Strata = append(info.Strata, StratumPlan{
			Index:     sp.Index,
			Preds:     sp.Preds,
			Recursive: sp.Recursive,
			Rules:     sp.RuleCount(),
			Executor:  executor,
			Reason:    sp.Reason,
			Plans:     sp.Rules,
		})
	}
	return info, nil
}

// magicReduction renders the Magic Sets step with the query's adornment.
func (pl *Pipeline) magicReduction() string {
	return fmt.Sprintf("magic sets on %s%s: restrict evaluation to facts reachable from the bound arguments",
		pl.Query.Pred, ast.AdornmentOf(pl.Query, nil))
}

// factorReduction renders the applied factoring theorem and its predicate
// split (§4: the recursive predicate divides into independent bound and
// free parts).
func factorReduction(fr *core.FactorResult) string {
	return fmt.Sprintf("factoring (class %s): split %s into %s%v / %s%v",
		fr.Class, fr.Split.Pred,
		fr.Split.LeftName, fr.Split.Left,
		fr.Split.RightName, fr.Split.Right)
}

// Text renders the explanation as an indented plan description, the
// human-readable form `factorlog run -explain` and the REPL print.
func (e *ExplainInfo) Text() string {
	var b strings.Builder
	fmt.Fprintf(&b, "plan %s for %s (adornment %s)\n", e.Strategy, e.Query, e.Adornment)
	if len(e.Candidates) > 0 {
		b.WriteString("auto planner candidates:\n")
		for _, c := range e.Candidates {
			mark := " "
			if c.Chosen {
				mark = "*"
			}
			order := "as written"
			if c.Reorder {
				order = "reordered"
			}
			if strings.HasPrefix(c.Reason, "rejected") {
				fmt.Fprintf(&b, "  %s %-14s %s\n", mark, c.Strategy, c.Reason)
				continue
			}
			fmt.Fprintf(&b, "  %s %-14s %-10s cost=%.3g rows=%.3g rounds=%d",
				mark, c.Strategy, order, c.Cost, c.Rows, c.Rounds)
			if c.Reason != "" {
				fmt.Fprintf(&b, "  (%s)", c.Reason)
			}
			b.WriteByte('\n')
		}
	}
	if len(e.Reductions) > 0 {
		b.WriteString("reductions applied:\n")
		for _, r := range e.Reductions {
			fmt.Fprintf(&b, "  - %s\n", r)
		}
	} else {
		b.WriteString("reductions applied: none (source program evaluated directly)\n")
	}
	b.WriteString("rules:\n")
	for _, r := range e.Rules {
		fmt.Fprintf(&b, "  %s\n", r)
	}
	if len(e.Strata) > 0 {
		b.WriteString("stratum schedule:\n")
		for _, st := range e.Strata {
			kind := "once"
			if st.Recursive {
				kind = "fixpoint"
			}
			if st.Executor != "" {
				kind += ", " + st.Executor
			}
			fmt.Fprintf(&b, "  %d: [%s] %d rules (%s)\n",
				st.Index, strings.Join(st.Preds, ","), st.Rules, kind)
			for _, rp := range st.Plans {
				for _, line := range strings.Split(strings.TrimRight(rp.Root.Tree(), "\n"), "\n") {
					fmt.Fprintf(&b, "      %s\n", line)
				}
			}
		}
	}
	return b.String()
}
