package pipeline

import (
	"context"
	"encoding/json"
	"strings"
	"testing"

	"factorlog/internal/engine"
	"factorlog/internal/parser"
	"factorlog/internal/trace"
)

func TestExplainFactoredOptimized(t *testing.T) {
	pl := tcPipeline()
	info, err := pl.Explain(FactoredOptimized)
	if err != nil {
		t.Fatal(err)
	}
	if info.Strategy != "factored+opt" || info.Adornment != "bf" {
		t.Errorf("strategy=%s adornment=%s", info.Strategy, info.Adornment)
	}
	if len(info.Rules) == 0 {
		t.Fatal("no transformed rules")
	}
	// The reduction list must name the magic pass and the factoring theorem
	// that applied.
	joined := strings.Join(info.Reductions, "\n")
	if !strings.Contains(joined, "magic sets") {
		t.Errorf("reductions missing magic sets: %v", info.Reductions)
	}
	if !strings.Contains(joined, "factoring (class") {
		t.Errorf("reductions missing factoring: %v", info.Reductions)
	}
	if len(info.Strata) == 0 {
		t.Error("no stratum schedule")
	}
	if len(info.Stages) == 0 {
		t.Error("no compile-stage spans")
	}
	// The document must round-trip as JSON (it is served by EXPLAIN).
	raw, err := json.Marshal(info)
	if err != nil {
		t.Fatal(err)
	}
	var back ExplainInfo
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	// The text rendering names every section.
	text := info.Text()
	for _, want := range []string{"plan factored+opt", "reductions applied", "rules:", "stratum schedule:"} {
		if !strings.Contains(text, want) {
			t.Errorf("Text() missing %q:\n%s", want, text)
		}
	}
}

func TestExplainDirectStrategy(t *testing.T) {
	pl := tcPipeline()
	info, err := pl.Explain(SemiNaive)
	if err != nil {
		t.Fatal(err)
	}
	if len(info.Reductions) != 0 {
		t.Errorf("semi-naive applied reductions: %v", info.Reductions)
	}
	if len(info.Rules) != 4 {
		t.Errorf("rules = %d, want the 4 source rules", len(info.Rules))
	}
	if !strings.Contains(info.Text(), "none (source program evaluated directly)") {
		t.Error("Text() does not state that no reductions applied")
	}
}

func TestExplainUnavailableStrategy(t *testing.T) {
	// Non-factorable program (same-generation): Explain must fail like Run.
	p := parser.MustParseProgram(`
		sg(X, Y) :- flat(X, Y).
		sg(X, Y) :- up(X, U), sg(U, V), down(V, Y).
	`)
	pl := New(p, parser.MustParseAtom("sg(n, Y)"))
	if _, err := pl.Explain(Factored); err == nil {
		t.Fatal("Explain(Factored) succeeded on a non-factorable program")
	}
}

// TestRunAttachesSpans checks the tentpole wiring: a traced Run yields a
// span tree with the compile stages (cached), an eval span, and the
// engine's round spans below it.
func TestRunAttachesSpans(t *testing.T) {
	pl := tcPipeline()
	tc := trace.New(trace.NewID())
	_, err := pl.Run(FactoredOptimized, chain(8)(), engine.Options{Span: tc.Root()})
	if err != nil {
		t.Fatal(err)
	}
	tc.Finish()

	names := map[string]int{}
	var cachedStages int
	var walk func(s *trace.Span, depth int)
	walk = func(s *trace.Span, depth int) {
		names[s.Name]++
		if s.Cached {
			cachedStages++
		}
		for _, c := range s.Children() {
			walk(c, depth+1)
		}
	}
	walk(tc.Root(), 0)

	for _, stage := range []string{"adorn", "magic", "factor", "optimize", "eval"} {
		if names[stage] != 1 {
			t.Errorf("span %q appears %d times, want 1\nprofile:\n%s", stage, names[stage], tc.Profile())
		}
	}
	if names["round"] == 0 {
		t.Errorf("no round spans under eval\nprofile:\n%s", tc.Profile())
	}
	if cachedStages != 4 {
		t.Errorf("cached stage spans = %d, want 4 (compile stages are pre-measured)", cachedStages)
	}
}

// TestRunParallelSpansHaveStrata checks per-stratum timings flow into the
// trace under parallel evaluation.
func TestRunParallelSpansHaveStrata(t *testing.T) {
	pl := tcPipeline()
	tc := trace.New(trace.NewID())
	_, err := pl.Run(Magic, chain(8)(), engine.Options{Span: tc.Root(), Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	tc.Finish()
	if !strings.Contains(tc.Profile(), "stratum") {
		t.Errorf("parallel run trace has no stratum spans:\n%s", tc.Profile())
	}
	if !strings.Contains(tc.Profile(), "worker") {
		t.Errorf("parallel run trace has no worker spans:\n%s", tc.Profile())
	}
}

func TestPlanRecordsCompileWall(t *testing.T) {
	pl := tcPipeline()
	cache := NewPlanCache()
	hash := HashProgram(pl.Program, nil)
	plan, hit, err := cache.Lookup(context.Background(), pl.Program, hash, nil, pl.Query, Factored)
	if err != nil {
		t.Fatal(err)
	}
	if hit {
		t.Fatal("first lookup reported a hit")
	}
	if plan.CompileWall <= 0 {
		t.Errorf("CompileWall = %v, want > 0", plan.CompileWall)
	}
	again, hit, err := cache.Lookup(context.Background(), pl.Program, hash, nil, pl.Query, Factored)
	if err != nil || !hit {
		t.Fatalf("second lookup: hit=%v err=%v", hit, err)
	}
	if again.CompileWall != plan.CompileWall {
		t.Error("cached plan changed CompileWall")
	}
}
