package pipeline

import (
	"fmt"
	"math/rand"
	"testing"

	"factorlog/internal/engine"
	"factorlog/internal/parser"
	"factorlog/internal/workload"
)

// This file is the streaming executor's differential property suite at the
// pipeline level: for every strategy and a spread of randomized workload
// programs, a run with Streaming: StreamAuto must produce exactly the
// answers of the default materializing run. The stream package pins
// relation-level agreement for the raw evaluators; these tests pin that the
// routing in evalProgram (strategy gating, fallback to the fixpoint for
// recursive strata, top-down strategies untouched) preserves end-to-end
// answers through the whole transformation pipeline.

// TestStreamingDifferentialBattery runs every strategy over the recursive
// agreement battery with streaming on and off and requires identical
// answers on random EDBs.
func TestStreamingDifferentialBattery(t *testing.T) {
	for _, c := range battery {
		c := c
		t.Run(c.name, func(t *testing.T) {
			p := parser.MustParseProgram(c.src)
			query := parser.MustParseAtom(c.query)
			seeds := int64(5)
			if testing.Short() {
				seeds = 2
			}
			for seed := int64(0); seed < seeds; seed++ {
				r := rand.New(rand.NewSource(seed))
				domain := 2 + r.Intn(6)
				load := func() *engine.DB {
					return randomDB(rand.New(rand.NewSource(seed)), c.edb, domain)
				}
				for _, s := range AllStrategies() {
					plOff := New(parser.MustParseProgram(c.src), query)
					off, errOff := plOff.Run(s, load(), engine.Options{MaxFacts: 500_000})
					plOn := New(p, query)
					on, errOn := plOn.Run(s, load(), engine.Options{
						MaxFacts: 500_000, Streaming: engine.StreamAuto,
					})
					if (errOff == nil) != (errOn == nil) {
						t.Fatalf("%s seed %d: off err=%v, on err=%v", s, seed, errOff, errOn)
					}
					if errOff != nil {
						continue // strategy unavailable for this program either way
					}
					if ok, diff := SameAnswers(off, on); !ok {
						t.Fatalf("%s seed %d: streaming changed answers: %s", s, seed, diff)
					}
				}
			}
		})
	}
}

// TestStreamingDifferentialLayeredJoins covers the join-heavy non-recursive
// family at both ends of the selectivity knob: every stratum is streamable,
// so the two executors take fully disjoint code paths and must still agree.
func TestStreamingDifferentialLayeredJoins(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		r := rand.New(rand.NewSource(seed))
		stages := 2 + r.Intn(4)
		n := 20 + r.Intn(60)
		fanout := 1 + r.Intn(3) // 1 = high selectivity, 3 = low
		prog := parser.MustParseProgram(workload.LayeredJoinProgram(stages))
		query := workload.LayeredJoinQuery(stages)
		load := func() *engine.DB {
			db := engine.NewDB()
			workload.LayeredJoins(db, stages, n, fanout)
			return db
		}
		name := fmt.Sprintf("stages=%d n=%d fanout=%d", stages, n, fanout)
		t.Run(name, func(t *testing.T) {
			off, err := New(prog, query).Run(SemiNaive, load(), engine.Options{Trace: true})
			if err != nil {
				t.Fatal(err)
			}
			on, err := New(prog, query).Run(SemiNaive, load(), engine.Options{
				Trace: true, Streaming: engine.StreamAuto,
			})
			if err != nil {
				t.Fatal(err)
			}
			if off.Executor != "materialize" || on.Executor != "stream" {
				t.Fatalf("executors = %q / %q, want materialize / stream", off.Executor, on.Executor)
			}
			if on.Stream == nil || on.Stream.RowsEmitted == 0 || on.Stream.Streamed != stages {
				t.Fatalf("stream stats = %+v, want %d streamed strata with rows", on.Stream, stages)
			}
			if ok, diff := SameAnswers(off, on); !ok {
				t.Fatalf("streaming changed answers: %s", diff)
			}
			if len(on.Answers) == 0 {
				t.Fatal("layered join family produced no answers")
			}
		})
	}
}

// TestStreamingExecutorRouting pins the gate in streamEligible: only the
// bottom-up semi-naive path with StreamAuto and no provenance streams, and
// the selective point query streams with its constant pushed into the scan.
func TestStreamingExecutorRouting(t *testing.T) {
	prog := parser.MustParseProgram(`hit(Y) :- wide(5, Y).`)
	query := parser.MustParseAtom("hit(Y)")
	load := func() *engine.DB {
		db := engine.NewDB()
		workload.WidePairs(db, "wide", 500, 50)
		return db
	}

	r, err := New(prog, query).Run(SemiNaive, load(), engine.Options{Streaming: engine.StreamAuto})
	if err != nil {
		t.Fatal(err)
	}
	if r.Executor != "stream" || r.Stream == nil || r.Stream.Pushdowns == 0 {
		t.Fatalf("executor=%q stream=%+v, want streamed run with pushdowns", r.Executor, r.Stream)
	}

	// Off by default: the zero Options value must not stream.
	r, err = New(prog, query).Run(SemiNaive, load(), engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r.Executor != "materialize" || r.Stream != nil {
		t.Fatalf("executor=%q, want materialize for zero-value options", r.Executor)
	}

	// Naive strategy keeps the fixpoint even under StreamAuto.
	r, err = New(prog, query).Run(Naive, load(), engine.Options{Streaming: engine.StreamAuto})
	if err != nil {
		t.Fatal(err)
	}
	if r.Executor != "materialize" {
		t.Fatalf("executor=%q, want materialize for naive", r.Executor)
	}

	// Provenance forces materialization (streaming records no derivations).
	r, err = New(prog, query).Run(SemiNaive, load(), engine.Options{
		Streaming: engine.StreamAuto, Provenance: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if r.Executor != "materialize" {
		t.Fatalf("executor=%q, want materialize under provenance", r.Executor)
	}

	// Top-down strategies have no bottom-up executor at all.
	r, err = New(prog, query).Run(TopDown, load(), engine.Options{Streaming: engine.StreamAuto})
	if err != nil {
		t.Fatal(err)
	}
	if r.Executor != "" {
		t.Fatalf("executor=%q, want empty for top-down", r.Executor)
	}
}
