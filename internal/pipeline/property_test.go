package pipeline

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"factorlog/internal/engine"
	"factorlog/internal/parser"
)

// programCase is a program/query pair used by the agreement battery.
type programCase struct {
	name  string
	src   string
	query string
	// edb lists predicate/arity pairs for random fact generation.
	edb map[string]int
}

var battery = []programCase{
	{
		name: "left-linear TC",
		src: `
			t(X, Y) :- t(X, W), e(W, Y).
			t(X, Y) :- e(X, Y).
		`,
		query: "t(c1, Y)",
		edb:   map[string]int{"e": 2},
	},
	{
		name: "right-linear TC",
		src: `
			t(X, Y) :- e(X, W), t(W, Y).
			t(X, Y) :- e(X, Y).
		`,
		query: "t(c1, Y)",
		edb:   map[string]int{"e": 2},
	},
	{
		name: "non-linear TC",
		src: `
			t(X, Y) :- t(X, W), t(W, Y).
			t(X, Y) :- e(X, Y).
		`,
		query: "t(c1, Y)",
		edb:   map[string]int{"e": 2},
	},
	{
		name: "three-rule TC",
		src: `
			t(X, Y) :- t(X, W), t(W, Y).
			t(X, Y) :- e(X, W), t(W, Y).
			t(X, Y) :- t(X, W), e(W, Y).
			t(X, Y) :- e(X, Y).
		`,
		query: "t(c1, Y)",
		edb:   map[string]int{"e": 2},
	},
	{
		name: "two-column separable",
		src: `
			t(X, Y) :- t(X, W), b(W, Y).
			t(X, Y) :- a(X, Z), t(Z, Y).
			t(X, Y) :- e(X, Y).
		`,
		query: "t(c1, Y)",
		edb:   map[string]int{"a": 2, "b": 2, "e": 2},
	},
	{
		name: "one-sided with payload",
		src: `
			t(X, Y) :- t(X, W), c(W, D, Y).
			t(X, Y) :- exit(X, Y).
		`,
		query: "t(c1, Y)",
		edb:   map[string]int{"c": 3, "exit": 2},
	},
	{
		name: "ternary with dangling column (Ex. 7.1)",
		src: `
			t(X, Y, Z) :- t(X, U, W), b(U, Y), d(Z).
			t(X, Y, Z) :- e(X, Y, Z).
		`,
		query: "t(c1, Y, Z)",
		edb:   map[string]int{"b": 2, "d": 1, "e": 3},
	},
}

func randomDB(r *rand.Rand, edb map[string]int, domain int) *engine.DB {
	db := engine.NewDB()
	consts := make([]engine.Val, domain)
	for i := range consts {
		consts[i] = db.Store.Const(fmt.Sprintf("c%d", i))
	}
	// Iterate predicates in sorted order: map order is randomized per run,
	// and every strategy must see the identical EDB for a given seed.
	preds := make([]string, 0, len(edb))
	for p := range edb {
		preds = append(preds, p)
	}
	sort.Strings(preds)
	for _, pred := range preds {
		arity := edb[pred]
		if _, err := db.Rel(pred, arity); err != nil {
			panic(err)
		}
		n := r.Intn(3 * domain)
		for i := 0; i < n; i++ {
			tuple := make([]engine.Val, arity)
			for j := range tuple {
				tuple[j] = consts[r.Intn(domain)]
			}
			db.MustInsert(pred, tuple...)
		}
	}
	return db
}

// TestFactoredAgreesOnBattery: on every program of the battery (all of
// which the class tests certify), the factored and optimized programs
// answer exactly like semi-naive over random EDBs. This is the property at
// the heart of Theorems 4.1-4.3.
func TestFactoredAgreesOnBattery(t *testing.T) {
	for _, c := range battery {
		c := c
		t.Run(c.name, func(t *testing.T) {
			p := parser.MustParseProgram(c.src)
			pl := New(p, parser.MustParseAtom(c.query))
			if _, err := pl.FactoredProgram(); err != nil {
				t.Fatalf("should be factorable: %v", err)
			}
			for seed := int64(0); seed < 25; seed++ {
				r := rand.New(rand.NewSource(seed))
				domain := 2 + r.Intn(6)
				load := func() *engine.DB { return randomDB(rand.New(rand.NewSource(seed)), c.edb, domain) }
				_, _, err := pl.Compare(
					[]Strategy{SemiNaive, Magic, Factored, FactoredOptimized},
					load, engine.Options{MaxFacts: 500_000})
				if err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
			}
		})
	}
}

// TestOptimizerDeterministic: running the optimization pipeline twice
// yields the same program (Section 7.4 asks when deletion order matters;
// our fixpoint application is deterministic by construction).
func TestOptimizerDeterministic(t *testing.T) {
	for _, c := range battery {
		p1 := New(parser.MustParseProgram(c.src), parser.MustParseAtom(c.query))
		p2 := New(parser.MustParseProgram(c.src), parser.MustParseAtom(c.query))
		o1, err := p1.OptimizedProgram()
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		o2, err := p2.OptimizedProgram()
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if o1.Program.Canonical() != o2.Program.Canonical() {
			t.Errorf("%s: optimizer nondeterministic", c.name)
		}
	}
}
