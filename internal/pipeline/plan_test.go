package pipeline

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"

	"factorlog/internal/ast"
	"factorlog/internal/core"
	"factorlog/internal/engine"
	"factorlog/internal/parser"
)

const tcSrc = `
t(X, Y) :- t(X, W), t(W, Y).
t(X, Y) :- e(X, W), t(W, Y).
t(X, Y) :- t(X, W), e(W, Y).
t(X, Y) :- e(X, Y).
`

func mustAtom(t *testing.T, s string) ast.Atom {
	t.Helper()
	q, err := parser.ParseAtom(s)
	if err != nil {
		t.Fatal(err)
	}
	return q
}

func edgeDB() *engine.DB {
	db := engine.NewDB()
	for _, edge := range [][2]int{{5, 6}, {6, 7}, {7, 8}, {1, 2}} {
		db.MustInsert("e", db.Store.Int(edge[0]), db.Store.Int(edge[1]))
	}
	return db
}

func TestPlanCacheHitMiss(t *testing.T) {
	p, err := parser.ParseProgram(tcSrc)
	if err != nil {
		t.Fatal(err)
	}
	hash := HashProgram(p, nil)
	c := NewPlanCache()

	q5 := mustAtom(t, "t(5, Y)")
	plan, hit, err := c.Lookup(context.Background(), p, hash, nil, q5, Magic)
	if err != nil {
		t.Fatal(err)
	}
	if hit {
		t.Error("first lookup reported a hit")
	}
	if plan.Key.Adornment != "bf" || plan.Binding != "(5)" {
		t.Errorf("plan identity = %s %s, want bf (5)", plan.Key.Adornment, plan.Binding)
	}

	plan2, hit, err := c.Lookup(context.Background(), p, hash, nil, mustAtom(t, "t(5, Z)"), Magic)
	if err != nil {
		t.Fatal(err)
	}
	if !hit {
		t.Error("identical query (up to variable names) missed")
	}
	if plan2 != plan {
		t.Error("identical query returned a different plan")
	}

	// Different constant: same family, separate specialized plan.
	_, hit, err = c.Lookup(context.Background(), p, hash, nil, mustAtom(t, "t(6, Y)"), Magic)
	if err != nil {
		t.Fatal(err)
	}
	if hit {
		t.Error("different constant reported a hit")
	}
	// Different strategy: separate plan.
	_, hit, err = c.Lookup(context.Background(), p, hash, nil, q5, SupplementaryMagic)
	if err != nil || hit {
		t.Errorf("different strategy: hit=%v err=%v", hit, err)
	}

	st := c.Stats()
	if st.Entries != 3 || st.Hits != 1 || st.Misses != 3 {
		t.Errorf("stats = %+v, want 3 entries, 1 hit, 3 misses", st)
	}
}

// TestPlanCacheDistinguishesRepeatedVariables guards the cache identity
// against variable-equality aliasing: t(X,X) and t(X,Y) both adorn as "ff"
// with no bound constants, but they are different queries (the diagonal vs
// all pairs) and must never share a plan.
func TestPlanCacheDistinguishesRepeatedVariables(t *testing.T) {
	p, err := parser.ParseProgram(tcSrc)
	if err != nil {
		t.Fatal(err)
	}
	hash := HashProgram(p, nil)
	c := NewPlanCache()

	pairPlan, _, err := c.Lookup(context.Background(), p, hash, nil, mustAtom(t, "t(X, Y)"), Magic)
	if err != nil {
		t.Fatal(err)
	}
	diagPlan, hit, err := c.Lookup(context.Background(), p, hash, nil, mustAtom(t, "t(X, X)"), Magic)
	if err != nil {
		t.Fatal(err)
	}
	if hit {
		t.Error("t(X,X) hit the plan cached for t(X,Y)")
	}
	if diagPlan == pairPlan {
		t.Error("t(X,X) and t(X,Y) share a plan")
	}

	res, err := pairPlan.Run(edgeDB(), engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Answers) != 7 {
		t.Errorf("t(X,Y): %d answers, want 7", len(res.Answers))
	}
	// The edge graph is acyclic, so the diagonal is empty; before the
	// canonical-query fix this returned all 7 pairs via the aliased plan.
	res, err = diagPlan.Run(edgeDB(), engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Answers) != 0 {
		t.Errorf("t(X,X): %d answers %v, want none", len(res.Answers), SortedAnswers(res))
	}
}

// TestPlanCacheEviction checks the LRU bound: the cache never holds more
// than its limit, evicts the least recently used entry, and recompiles an
// evicted shape on re-lookup.
func TestPlanCacheEviction(t *testing.T) {
	p, err := parser.ParseProgram(tcSrc)
	if err != nil {
		t.Fatal(err)
	}
	hash := HashProgram(p, nil)
	c := NewPlanCacheLimit(2)

	for _, q := range []string{"t(5, Y)", "t(6, Y)", "t(7, Y)"} {
		if _, _, err := c.Lookup(context.Background(), p, hash, nil, mustAtom(t, q), Magic); err != nil {
			t.Fatal(err)
		}
	}
	st := c.Stats()
	if st.Entries != 2 || st.Evictions != 1 {
		t.Fatalf("after 3 inserts: %+v, want 2 entries, 1 eviction", st)
	}

	// t(5,Y) was the LRU entry and is gone; looking it up again recompiles
	// (a miss) and evicts t(6,Y) in turn, while t(7,Y) stays resident.
	if _, hit, err := c.Lookup(context.Background(), p, hash, nil, mustAtom(t, "t(5, Y)"), Magic); err != nil || hit {
		t.Errorf("evicted shape: hit=%v err=%v, want fresh miss", hit, err)
	}
	if _, hit, err := c.Lookup(context.Background(), p, hash, nil, mustAtom(t, "t(7, Y)"), Magic); err != nil || !hit {
		t.Errorf("resident shape: hit=%v err=%v, want hit", hit, err)
	}
	st = c.Stats()
	if st.Entries != 2 || st.Evictions != 2 || st.Hits != 1 || st.Misses != 4 {
		t.Errorf("final stats %+v, want 2 entries, 2 evictions, 1 hit, 4 misses", st)
	}
}

func TestPlanCacheSpecializesOnConstants(t *testing.T) {
	p, err := parser.ParseProgram(tcSrc)
	if err != nil {
		t.Fatal(err)
	}
	hash := HashProgram(p, nil)
	c := NewPlanCache()

	for query, want := range map[string]int{"t(5, Y)": 3, "t(6, Y)": 2} {
		plan, _, err := c.Lookup(context.Background(), p, hash, nil, mustAtom(t, query), FactoredOptimized)
		if err != nil {
			t.Fatal(err)
		}
		res, err := plan.Run(edgeDB(), engine.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Answers) != want {
			t.Errorf("%s: %d answers, want %d", query, len(res.Answers), want)
		}
	}
}

func TestPlanCacheCachesFailures(t *testing.T) {
	// Same-generation is not factorable (no condition of Section 4 applies),
	// so the Factored strategy fails to compile; the refusal is cached too.
	src := `
sg(X, Y) :- flat(X, Y).
sg(X, Y) :- up(X, U), sg(U, V), down(V, Y).
`
	p, err := parser.ParseProgram(src)
	if err != nil {
		t.Fatal(err)
	}
	hash := HashProgram(p, nil)
	c := NewPlanCache()
	q := mustAtom(t, "sg(john, Y)")

	_, hit, err := c.Lookup(context.Background(), p, hash, nil, q, Factored)
	if err == nil {
		t.Fatal("want a factoring error")
	}
	if !errors.Is(err, core.ErrNotFactorable) {
		t.Fatalf("want ErrNotFactorable, got %v", err)
	}
	if hit {
		t.Error("first failing lookup reported a hit")
	}
	_, hit, err2 := c.Lookup(context.Background(), p, hash, nil, q, Factored)
	if err2 == nil || !hit {
		t.Errorf("cached failure: hit=%v err=%v", hit, err2)
	}
}

// TestPlanCacheConcurrent hammers one cache from many goroutines; run under
// -race this checks the cache, the shared Pipeline memoization, and
// concurrent Plan.Runs over private DBs.
func TestPlanCacheConcurrent(t *testing.T) {
	p, err := parser.ParseProgram(tcSrc)
	if err != nil {
		t.Fatal(err)
	}
	hash := HashProgram(p, nil)
	c := NewPlanCache()
	queries := []string{"t(5, Y)", "t(6, Y)"}
	strategies := []Strategy{Magic, SupplementaryMagic, FactoredOptimized}

	const n = 24
	var wg sync.WaitGroup
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		q, s := queries[i%len(queries)], strategies[i%len(strategies)]
		wg.Add(1)
		go func() {
			defer wg.Done()
			query, err := parser.ParseAtom(q)
			if err != nil {
				errs <- err
				return
			}
			plan, _, err := c.Lookup(context.Background(), p, hash, nil, query, s)
			if err != nil {
				errs <- err
				return
			}
			res, err := plan.Run(edgeDB(), engine.Options{})
			if err != nil {
				errs <- fmt.Errorf("%s/%s: %v", q, s, err)
				return
			}
			want := 3
			if q == "t(6, Y)" {
				want = 2
			}
			if len(res.Answers) != want {
				errs <- fmt.Errorf("%s/%s: %d answers, want %d", q, s, len(res.Answers), want)
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	st := c.Stats()
	if st.Entries != len(queries)*len(strategies) {
		t.Errorf("entries = %d, want %d", st.Entries, len(queries)*len(strategies))
	}
	if st.Hits+st.Misses != n {
		t.Errorf("hits+misses = %d, want %d", st.Hits+st.Misses, n)
	}
}

func TestHashProgramDistinguishes(t *testing.T) {
	p1, _ := parser.ParseProgram(tcSrc)
	p2, _ := parser.ParseProgram(tcSrc + "\nt(X, X) :- e(X, X).")
	if HashProgram(p1, nil) == HashProgram(p2, nil) {
		t.Error("different programs share a hash")
	}
	if HashProgram(p1, nil) != HashProgram(p1, nil) {
		t.Error("same program hashes unstably")
	}
	tgd, _ := parser.ParseProgram("e(X, Y) :- e(Y, X).")
	if HashProgram(p1, nil) == HashProgram(p1, tgd.Rules) {
		t.Error("constraints do not affect the hash")
	}
}
