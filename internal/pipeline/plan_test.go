package pipeline

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"factorlog/internal/ast"
	"factorlog/internal/core"
	"factorlog/internal/engine"
	"factorlog/internal/parser"
)

const tcSrc = `
t(X, Y) :- t(X, W), t(W, Y).
t(X, Y) :- e(X, W), t(W, Y).
t(X, Y) :- t(X, W), e(W, Y).
t(X, Y) :- e(X, Y).
`

func mustAtom(t *testing.T, s string) ast.Atom {
	t.Helper()
	q, err := parser.ParseAtom(s)
	if err != nil {
		t.Fatal(err)
	}
	return q
}

func edgeDB() *engine.DB {
	db := engine.NewDB()
	for _, edge := range [][2]int{{5, 6}, {6, 7}, {7, 8}, {1, 2}} {
		db.MustInsert("e", db.Store.Int(edge[0]), db.Store.Int(edge[1]))
	}
	return db
}

func TestPlanCacheHitMiss(t *testing.T) {
	p, err := parser.ParseProgram(tcSrc)
	if err != nil {
		t.Fatal(err)
	}
	hash := HashProgram(p, nil)
	c := NewPlanCache()

	q5 := mustAtom(t, "t(5, Y)")
	plan, hit, err := c.Lookup(p, hash, nil, q5, Magic)
	if err != nil {
		t.Fatal(err)
	}
	if hit {
		t.Error("first lookup reported a hit")
	}
	if plan.Key.Adornment != "bf" || plan.Binding != "(5)" {
		t.Errorf("plan identity = %s %s, want bf (5)", plan.Key.Adornment, plan.Binding)
	}

	plan2, hit, err := c.Lookup(p, hash, nil, mustAtom(t, "t(5, Z)"), Magic)
	if err != nil {
		t.Fatal(err)
	}
	if !hit {
		t.Error("identical query (up to variable names) missed")
	}
	if plan2 != plan {
		t.Error("identical query returned a different plan")
	}

	// Different constant: same family, separate specialized plan.
	_, hit, err = c.Lookup(p, hash, nil, mustAtom(t, "t(6, Y)"), Magic)
	if err != nil {
		t.Fatal(err)
	}
	if hit {
		t.Error("different constant reported a hit")
	}
	// Different strategy: separate plan.
	_, hit, err = c.Lookup(p, hash, nil, q5, SupplementaryMagic)
	if err != nil || hit {
		t.Errorf("different strategy: hit=%v err=%v", hit, err)
	}

	st := c.Stats()
	if st.Entries != 3 || st.Hits != 1 || st.Misses != 3 {
		t.Errorf("stats = %+v, want 3 entries, 1 hit, 3 misses", st)
	}
}

func TestPlanCacheSpecializesOnConstants(t *testing.T) {
	p, err := parser.ParseProgram(tcSrc)
	if err != nil {
		t.Fatal(err)
	}
	hash := HashProgram(p, nil)
	c := NewPlanCache()

	for query, want := range map[string]int{"t(5, Y)": 3, "t(6, Y)": 2} {
		plan, _, err := c.Lookup(p, hash, nil, mustAtom(t, query), FactoredOptimized)
		if err != nil {
			t.Fatal(err)
		}
		res, err := plan.Run(edgeDB(), engine.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Answers) != want {
			t.Errorf("%s: %d answers, want %d", query, len(res.Answers), want)
		}
	}
}

func TestPlanCacheCachesFailures(t *testing.T) {
	// Same-generation is not factorable (no condition of Section 4 applies),
	// so the Factored strategy fails to compile; the refusal is cached too.
	src := `
sg(X, Y) :- flat(X, Y).
sg(X, Y) :- up(X, U), sg(U, V), down(V, Y).
`
	p, err := parser.ParseProgram(src)
	if err != nil {
		t.Fatal(err)
	}
	hash := HashProgram(p, nil)
	c := NewPlanCache()
	q := mustAtom(t, "sg(john, Y)")

	_, hit, err := c.Lookup(p, hash, nil, q, Factored)
	if err == nil {
		t.Fatal("want a factoring error")
	}
	if !errors.Is(err, core.ErrNotFactorable) {
		t.Fatalf("want ErrNotFactorable, got %v", err)
	}
	if hit {
		t.Error("first failing lookup reported a hit")
	}
	_, hit, err2 := c.Lookup(p, hash, nil, q, Factored)
	if err2 == nil || !hit {
		t.Errorf("cached failure: hit=%v err=%v", hit, err2)
	}
}

// TestPlanCacheConcurrent hammers one cache from many goroutines; run under
// -race this checks the cache, the shared Pipeline memoization, and
// concurrent Plan.Runs over private DBs.
func TestPlanCacheConcurrent(t *testing.T) {
	p, err := parser.ParseProgram(tcSrc)
	if err != nil {
		t.Fatal(err)
	}
	hash := HashProgram(p, nil)
	c := NewPlanCache()
	queries := []string{"t(5, Y)", "t(6, Y)"}
	strategies := []Strategy{Magic, SupplementaryMagic, FactoredOptimized}

	const n = 24
	var wg sync.WaitGroup
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		q, s := queries[i%len(queries)], strategies[i%len(strategies)]
		wg.Add(1)
		go func() {
			defer wg.Done()
			query, err := parser.ParseAtom(q)
			if err != nil {
				errs <- err
				return
			}
			plan, _, err := c.Lookup(p, hash, nil, query, s)
			if err != nil {
				errs <- err
				return
			}
			res, err := plan.Run(edgeDB(), engine.Options{})
			if err != nil {
				errs <- fmt.Errorf("%s/%s: %v", q, s, err)
				return
			}
			want := 3
			if q == "t(6, Y)" {
				want = 2
			}
			if len(res.Answers) != want {
				errs <- fmt.Errorf("%s/%s: %d answers, want %d", q, s, len(res.Answers), want)
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	st := c.Stats()
	if st.Entries != len(queries)*len(strategies) {
		t.Errorf("entries = %d, want %d", st.Entries, len(queries)*len(strategies))
	}
	if st.Hits+st.Misses != n {
		t.Errorf("hits+misses = %d, want %d", st.Hits+st.Misses, n)
	}
}

func TestHashProgramDistinguishes(t *testing.T) {
	p1, _ := parser.ParseProgram(tcSrc)
	p2, _ := parser.ParseProgram(tcSrc + "\nt(X, X) :- e(X, X).")
	if HashProgram(p1, nil) == HashProgram(p2, nil) {
		t.Error("different programs share a hash")
	}
	if HashProgram(p1, nil) != HashProgram(p1, nil) {
		t.Error("same program hashes unstably")
	}
	tgd, _ := parser.ParseProgram("e(X, Y) :- e(Y, X).")
	if HashProgram(p1, nil) == HashProgram(p1, tgd.Rules) {
		t.Error("constraints do not affect the hash")
	}
}
