package pipeline

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"factorlog/internal/ast"
	"factorlog/internal/cost"
	"factorlog/internal/obsv"
)

// This file is the planner layer of the adaptive optimizer (ROADMAP item
// 4): the Auto strategy. A candidate enumerator walks the eligible fixed
// strategies × body-literal orderings, pruning the candidates the §4 class
// tests reject; the cost model in internal/cost ranks the survivors against
// an EDB statistics snapshot; the winner is stored in the PlanCache under
// the Auto strategy key. A long-lived server wraps the enumeration in an
// AutoPlanner, which remembers decisions per query shape and shadow
// re-costs them as the EDB mutates (see docs/PLANNER.md).

// ErrAutoUnsupported reports an Auto request on a surface that needs a
// caller-fixed strategy (provenance evaluation). HTTP handlers map it to a
// 400.
var ErrAutoUnsupported = errors.New("auto strategy is not supported here")

// AutoCandidateStrategies lists the strategies the Auto planner enumerates,
// in tie-break order: the arity-reducing rewrites first, so an exact cost
// tie resolves toward the paper's transformations.
func AutoCandidateStrategies() []Strategy {
	return []Strategy{FactoredOptimized, Factored, Magic, SupplementaryMagic,
		Counting, SemiNaive}
}

// CandidateInfo is one row of the planner's candidate table, surfaced by
// EXPLAIN and the /query response for Auto requests.
type CandidateInfo struct {
	// Strategy is the candidate's fixed strategy name.
	Strategy string `json:"strategy"`
	// Adornment is the query's binding pattern the candidate compiled under.
	Adornment string `json:"adornment"`
	// Reorder reports the body-literal ordering dimension: false prices the
	// rules as written, true prices the greedy most-bound-first reordering
	// (engine.Options.ReorderJoins).
	Reorder bool `json:"reorder,omitempty"`
	// Cost, Rows, and Rounds are the model's estimates (absent for rejected
	// candidates).
	Cost   float64 `json:"est_cost,omitempty"`
	Rows   float64 `json:"est_rows,omitempty"`
	Rounds int     `json:"est_rounds,omitempty"`
	// Chosen marks the winning candidate.
	Chosen bool `json:"chosen,omitempty"`
	// Reason says why the candidate won, lost, or was rejected by the class
	// tests.
	Reason string `json:"reason,omitempty"`
}

// AutoDecision is the outcome of one plan search.
type AutoDecision struct {
	// Strategy and Reorder identify the winning candidate; Cost is its
	// estimate.
	Strategy Strategy
	Reorder  bool
	Cost     float64
	// Candidates is the full table the search considered.
	Candidates []CandidateInfo
}

// pickAbort wraps an error that must abort the whole plan search (caller
// canceled, deadline passed) rather than count as a candidate rejection.
type pickAbort struct{ err error }

func (p pickAbort) Error() string { return p.err.Error() }
func (p pickAbort) Unwrap() error { return p.err }

// autoEnumerate runs the candidate search shared by Pipeline.AutoPick and
// AutoPlanner: programFor compiles one strategy and returns the program it
// would evaluate (an error prunes the candidate; wrap it in pickAbort to
// abort the search instead).
func autoEnumerate(query ast.Atom, snap *cost.Snapshot,
	programFor func(Strategy) (*ast.Program, error)) (*AutoDecision, error) {
	adornment := string(ast.AdornmentOf(query, nil))
	var cands []CandidateInfo
	best := -1
	var bestStrategy Strategy
	var bestReorder bool
	var bestCost float64
	for _, s := range AutoCandidateStrategies() {
		prog, err := programFor(s)
		if err != nil {
			var abort pickAbort
			if errors.As(err, &abort) {
				return nil, abort.err
			}
			cands = append(cands, CandidateInfo{
				Strategy:  s.String(),
				Adornment: adornment,
				Reason:    "rejected: " + err.Error(),
			})
			continue
		}
		for _, reorder := range []bool{false, true} {
			est := cost.EstimateProgram(prog, snap, reorder)
			idx := len(cands)
			cands = append(cands, CandidateInfo{
				Strategy:  s.String(),
				Adornment: adornment,
				Reorder:   reorder,
				Cost:      est.Cost,
				Rows:      est.Rows,
				Rounds:    est.Rounds,
			})
			if best < 0 || est.Cost < bestCost {
				best, bestStrategy, bestReorder, bestCost = idx, s, reorder, est.Cost
			}
		}
	}
	if best < 0 {
		return nil, fmt.Errorf("no eligible strategy for %s: every candidate was rejected", query)
	}
	cands[best].Chosen = true
	cands[best].Reason = "lowest estimated cost"
	for i := range cands {
		if i == best || cands[i].Reason != "" {
			continue
		}
		if bestCost > 0 {
			cands[i].Reason = fmt.Sprintf("%.2fx winner's estimated cost", cands[i].Cost/bestCost)
		} else {
			cands[i].Reason = "higher estimated cost"
		}
	}
	return &AutoDecision{
		Strategy:   bestStrategy,
		Reorder:    bestReorder,
		Cost:       bestCost,
		Candidates: cands,
	}, nil
}

// AutoPick runs the plan search on this pipeline against snap: it compiles
// each candidate strategy (memoized — rejected class tests stay rejected),
// prices the survivors in both body orders, and returns the decision.
func (pl *Pipeline) AutoPick(snap *cost.Snapshot) (*AutoDecision, error) {
	return autoEnumerate(pl.Query, snap, func(s Strategy) (*ast.Program, error) {
		if err := pl.Compile(s); err != nil {
			return nil, err
		}
		prog, _, _, err := pl.MaterializedProgram(s)
		return prog, err
	})
}

// AutoPolicy governs when a served Auto decision is shadow re-costed and
// how decisively a rival must win to replace it.
type AutoPolicy struct {
	// RecostEpochs re-costs a decision once the mutation epoch has advanced
	// at least this much since it was made (<= 0 means 16).
	RecostEpochs int64
	// RecostRatio re-costs earlier when the mutated-row count since the
	// decision, over the base size at decision time, reaches this ratio
	// (<= 0 means 0.25; the mat_change_ratio trigger).
	RecostRatio float64
	// Margin is the factor a rival's estimate must beat the incumbent's
	// fresh estimate by to invalidate it: switch when rival*Margin <
	// incumbent (<= 1 means 1.2).
	Margin float64
}

func (p AutoPolicy) withDefaults() AutoPolicy {
	if p.RecostEpochs <= 0 {
		p.RecostEpochs = 16
	}
	if p.RecostRatio <= 0 {
		p.RecostRatio = 0.25
	}
	if p.Margin <= 1 {
		p.Margin = 1.2
	}
	return p
}

// StatsSource supplies a fresh statistics snapshot; the caller should cache
// per epoch (building one is O(base facts)).
type StatsSource func() *cost.Snapshot

// autoEntry is one remembered decision with the snapshot coordinates it was
// made at, plus observed row counts from traced runs of its query.
type autoEntry struct {
	dec       *AutoDecision
	epoch     int64
	mutations int64
	rows      int
	observed  map[string]float64
}

// AutoPlanner serves Auto decisions for a long-lived process: one decision
// per canonical query shape, compiled plans shared through the PlanCache
// (the winner is additionally stored under the Auto strategy key), and
// shadow re-costing driven by the policy's epoch and change-ratio triggers.
//
// Concurrent Choose calls for the same stale shape may race and both
// re-cost; the work is bounded (plan compiles dedupe in the cache) and the
// last writer's decision sticks.
type AutoPlanner struct {
	prog        *ast.Program
	progHash    string
	constraints []ast.Rule
	cache       *PlanCache
	stats       StatsSource
	policy      AutoPolicy

	mu                            sync.Mutex
	decisions                     map[string]*autoEntry
	picks, recosts, repicks, wins int64
	picksBy                       map[string]int64
	recostWall                    *obsv.Histogram
}

// NewAutoPlanner builds a planner over one program. stats must not be nil;
// cache may be shared with fixed-strategy serving.
func NewAutoPlanner(prog *ast.Program, constraints []ast.Rule, cache *PlanCache,
	stats StatsSource, policy AutoPolicy) *AutoPlanner {
	if cache == nil {
		cache = NewPlanCache()
	}
	return &AutoPlanner{
		prog:        prog,
		progHash:    HashProgram(prog, constraints),
		constraints: constraints,
		cache:       cache,
		stats:       stats,
		policy:      policy.withDefaults(),
		decisions:   map[string]*autoEntry{},
		picksBy:     map[string]int64{},
		recostWall:  obsv.NewHistogram(),
	}
}

// AutoServe is one resolved Auto request: the winning plan and how it was
// arrived at.
type AutoServe struct {
	// Plan is the winner's compiled plan; Strategy and Reorder its
	// identity.
	Plan     *Plan
	Strategy Strategy
	Reorder  bool
	// Candidates is the decision's candidate table.
	Candidates []CandidateInfo
	// PlanHit reports whether the winner's plan came from the cache.
	PlanHit bool
	// Recosted reports that this call ran a shadow re-costing pass;
	// Repicked that the pass switched strategies.
	Recosted, Repicked bool
}

// Choose resolves query under the Auto strategy: a fresh decision on first
// sight, the remembered one while its statistics stay fresh, and a shadow
// re-cost (switching only past the margin) when the epoch or change-ratio
// trigger fires.
func (ap *AutoPlanner) Choose(ctx context.Context, query ast.Atom) (*AutoServe, error) {
	snap := ap.stats()
	canon := query.CanonicalKey()

	ap.mu.Lock()
	e := ap.decisions[canon]
	if e != nil && !ap.staleLocked(e, snap) {
		dec := e.dec
		ap.mu.Unlock()
		plan, hit, err := ap.cache.Lookup(ctx, ap.prog, ap.progHash, ap.constraints, query, dec.Strategy)
		if err != nil {
			return nil, err
		}
		return &AutoServe{Plan: plan, Strategy: dec.Strategy, Reorder: dec.Reorder,
			Candidates: dec.Candidates, PlanHit: hit}, nil
	}
	var incumbent *AutoDecision
	var observed map[string]float64
	if e != nil {
		incumbent = e.dec
		observed = e.observed
	}
	ap.mu.Unlock()

	start := time.Now()
	dec, err := autoEnumerate(query, snap.WithObserved(observed), func(s Strategy) (*ast.Program, error) {
		plan, _, lerr := ap.cache.Lookup(ctx, ap.prog, ap.progHash, ap.constraints, query, s)
		if lerr != nil {
			if ctx.Err() != nil || transientCompileErr(lerr) {
				return nil, pickAbort{lerr}
			}
			return nil, lerr
		}
		prog, _, _, perr := plan.Pipeline().MaterializedProgram(s)
		return prog, perr
	})
	if err != nil {
		return nil, err
	}

	serve := &AutoServe{Recosted: incumbent != nil}
	if incumbent != nil && dec.Strategy != incumbent.Strategy {
		// A rival won the fresh search. Replace the incumbent only when it
		// wins by the margin — plan churn has a cost the estimates don't see.
		if fresh, ok := candidateCost(dec.Candidates, incumbent.Strategy, incumbent.Reorder); ok &&
			!(dec.Cost*ap.policy.Margin < fresh) {
			dec = keepIncumbent(dec, incumbent)
		}
	}
	repicked := incumbent != nil && dec.Strategy != incumbent.Strategy

	plan, hit, err := ap.cache.Lookup(ctx, ap.prog, ap.progHash, ap.constraints, query, dec.Strategy)
	if err != nil {
		return nil, err
	}
	// Store the winner in the plan cache under the Auto strategy key (and
	// invalidate a beaten incumbent's entry first).
	if repicked {
		ap.cache.Drop(ap.progHash, query, Auto)
	}
	ap.cache.Put(ap.progHash, query, Auto, plan)

	ap.mu.Lock()
	if incumbent != nil {
		ap.recosts++
		ap.recostWall.Observe(time.Since(start))
		if repicked {
			ap.repicks++
			ap.picksBy[dec.Strategy.String()]++
		} else {
			ap.wins++
		}
	} else {
		ap.picks++
		ap.picksBy[dec.Strategy.String()]++
	}
	ap.decisions[canon] = &autoEntry{
		dec:       dec,
		epoch:     snap.Epoch,
		mutations: snap.Mutations,
		rows:      snap.TotalRows,
		observed:  observed,
	}
	ap.mu.Unlock()

	serve.Plan, serve.Strategy, serve.Reorder = plan, dec.Strategy, dec.Reorder
	serve.Candidates, serve.PlanHit, serve.Repicked = dec.Candidates, hit, repicked
	return serve, nil
}

// staleLocked reports whether e's statistics are out of date under the
// policy: the epoch advanced past RecostEpochs, or the rows mutated since
// the decision reached RecostRatio of the base it was made over.
func (ap *AutoPlanner) staleLocked(e *autoEntry, snap *cost.Snapshot) bool {
	if snap.Epoch-e.epoch >= ap.policy.RecostEpochs {
		return true
	}
	if snap.Mutations > e.mutations {
		base := float64(e.rows)
		if base < 1 {
			base = 1
		}
		if float64(snap.Mutations-e.mutations)/base >= ap.policy.RecostRatio {
			return true
		}
	}
	return false
}

// candidateCost finds the estimated cost of (strategy, reorder) in a
// candidate table.
func candidateCost(cands []CandidateInfo, s Strategy, reorder bool) (float64, bool) {
	for _, c := range cands {
		if c.Strategy == s.String() && c.Reorder == reorder && !rejected(c) {
			return c.Cost, true
		}
	}
	return 0, false
}

func rejected(c CandidateInfo) bool {
	return len(c.Reason) >= 8 && c.Reason[:8] == "rejected"
}

// keepIncumbent rewrites a fresh decision to keep the incumbent candidate:
// the chosen flag moves to the incumbent's row and the reasons record that
// the rival missed the margin.
func keepIncumbent(fresh *AutoDecision, incumbent *AutoDecision) *AutoDecision {
	out := &AutoDecision{Strategy: incumbent.Strategy, Reorder: incumbent.Reorder,
		Candidates: append([]CandidateInfo(nil), fresh.Candidates...)}
	for i := range out.Candidates {
		c := &out.Candidates[i]
		if c.Strategy == incumbent.Strategy.String() && c.Reorder == incumbent.Reorder && !rejected(*c) {
			c.Chosen = true
			c.Reason = "incumbent kept: rival inside the re-cost margin"
			out.Cost = c.Cost
		} else if c.Chosen {
			c.Chosen = false
			c.Reason = "cheaper, but inside the re-cost margin"
		}
	}
	return out
}

// Observe folds a traced run's per-rule statistics into the decision for
// its query, so the next re-cost is calibrated by measured cardinalities.
// prog must be the program the run evaluated (RunResult.Program).
func (ap *AutoPlanner) Observe(query ast.Atom, prog *ast.Program, rules []obsv.RuleStats) {
	if len(rules) == 0 || prog == nil {
		return
	}
	ap.mu.Lock()
	defer ap.mu.Unlock()
	e := ap.decisions[query.CanonicalKey()]
	if e == nil {
		return
	}
	e.observed = cost.ObserveRuleStats(e.observed, prog, rules)
}

// Stats snapshots the planner counters for /metrics.
func (ap *AutoPlanner) Stats() obsv.PlanSearchStats {
	ap.mu.Lock()
	defer ap.mu.Unlock()
	wall := *ap.recostWall
	wall.BucketCounts = append([]int64(nil), ap.recostWall.BucketCounts...)
	by := make(map[string]int64, len(ap.picksBy))
	for k, v := range ap.picksBy {
		by[k] = v
	}
	return obsv.PlanSearchStats{
		Picks:           ap.picks,
		Recosts:         ap.recosts,
		Repicks:         ap.repicks,
		Wins:            ap.wins,
		PicksByStrategy: by,
		RecostWall:      &wall,
	}
}

// SnapshotSource adapts a Materializer into a StatsSource: the snapshot is
// rebuilt from the base EDB when the epoch advances and cached otherwise,
// with the cumulative mutated-row count attached for the change-ratio
// trigger.
func SnapshotSource(m *Materializer) StatsSource {
	var mu sync.Mutex
	var cached *cost.Snapshot
	return func() *cost.Snapshot {
		mu.Lock()
		defer mu.Unlock()
		if cached != nil && cached.Epoch == m.Epoch() {
			return cached
		}
		base, epoch := m.BaseSnapshot()
		snap := cost.SnapshotFromAtoms(base, epoch)
		st := m.Stats()
		snap.Mutations = st.FactsAsserted + st.FactsRetracted
		cached = snap
		return snap
	}
}
