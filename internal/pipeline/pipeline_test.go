package pipeline

import (
	"strings"
	"testing"

	"factorlog/internal/engine"
	"factorlog/internal/parser"
	"factorlog/internal/workload"
)

func tcPipeline() *Pipeline {
	p := parser.MustParseProgram(`
		t(X, Y) :- t(X, W), t(W, Y).
		t(X, Y) :- e(X, W), t(W, Y).
		t(X, Y) :- t(X, W), e(W, Y).
		t(X, Y) :- e(X, Y).
	`)
	return New(p, parser.MustParseAtom("t(1, Y)"))
}

func chain(n int) func() *engine.DB {
	return func() *engine.DB {
		db := engine.NewDB()
		workload.Chain(db, "e", n)
		return db
	}
}

func TestCompareAllStrategiesOnTC(t *testing.T) {
	pl := tcPipeline()
	// Counting is unavailable (combined rules) and TopDown diverges on the
	// left-recursive rule, exactly as Prolog would; everything else agrees.
	results, skipped, err := pl.Compare(AllStrategies(), chain(12), engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(skipped) != 2 {
		t.Errorf("skipped = %v", skipped)
	}
	if _, ok := skipped[Counting]; !ok {
		t.Errorf("expected Counting to be skipped: %v", skipped)
	}
	if _, ok := skipped[TopDown]; !ok {
		t.Errorf("expected TopDown to be skipped (left recursion): %v", skipped)
	}
	if len(results) != len(AllStrategies())-2 {
		t.Errorf("results = %d", len(results))
	}
	for _, r := range results {
		if len(r.Answers) != 11 { // 2..12 reachable from 1
			t.Errorf("%s: %d answers", r.Strategy, len(r.Answers))
		}
	}
}

func TestArityReduction(t *testing.T) {
	pl := tcPipeline()
	magicRun, err := pl.Run(Magic, chain(10)(), engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	optRun, err := pl.Run(FactoredOptimized, chain(10)(), engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if magicRun.MaxIDBArity != 2 {
		t.Errorf("magic arity = %d", magicRun.MaxIDBArity)
	}
	if optRun.MaxIDBArity != 1 {
		t.Errorf("optimized arity = %d, want 1 (the paper's unary program)", optRun.MaxIDBArity)
	}
	// And the fact count drops from quadratic-ish to linear.
	if optRun.Facts >= magicRun.Facts {
		t.Errorf("optimized facts %d >= magic facts %d", optRun.Facts, magicRun.Facts)
	}
}

func TestFactoredBeatsMagicBeatsSeminaive(t *testing.T) {
	// Query from mid-chain: magic prunes the lower half, factoring then
	// collapses the arity. (Queried from node 1, everything is relevant
	// and magic's guards are pure overhead — see the E1 bench.)
	p := parser.MustParseProgram(`
		t(X, Y) :- t(X, W), t(W, Y).
		t(X, Y) :- e(X, W), t(W, Y).
		t(X, Y) :- t(X, W), e(W, Y).
		t(X, Y) :- e(X, Y).
	`)
	pl := New(p, parser.MustParseAtom("t(40, Y)"))
	load := chain(60)
	semi, err := pl.Run(SemiNaive, load(), engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	mag, err := pl.Run(Magic, load(), engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	opt, err := pl.Run(FactoredOptimized, load(), engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !(opt.Facts < mag.Facts && mag.Facts < semi.Facts) {
		t.Errorf("fact counts: opt=%d mag=%d semi=%d (want strictly decreasing)",
			opt.Facts, mag.Facts, semi.Facts)
	}
	if !(opt.Inferences < semi.Inferences) {
		t.Errorf("inferences: opt=%d semi=%d", opt.Inferences, semi.Inferences)
	}
}

func TestPipelineCaching(t *testing.T) {
	pl := tcPipeline()
	m1, err := pl.MagicProgram()
	if err != nil {
		t.Fatal(err)
	}
	m2, _ := pl.MagicProgram()
	if m1 != m2 {
		t.Error("magic result not cached")
	}
	f1, err := pl.FactoredProgram()
	if err != nil {
		t.Fatal(err)
	}
	f2, _ := pl.FactoredProgram()
	if f1 != f2 {
		t.Error("factored result not cached")
	}
}

func TestPipelineNonFactorable(t *testing.T) {
	p := parser.MustParseProgram(`
		sg(X, Y) :- flat(X, Y).
		sg(X, Y) :- up(X, U), sg(U, V), down(V, Y).
	`)
	pl := New(p, parser.MustParseAtom("sg(n, Y)"))
	load := func() *engine.DB {
		db := engine.NewDB()
		workload.BalancedTree(db, 4)
		return db
	}
	results, skipped, err := pl.Compare(AllStrategies(), load, engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range []Strategy{Factored, FactoredOptimized, Counting} {
		if _, ok := skipped[s]; !ok {
			t.Errorf("%s should be skipped for sg", s)
		}
	}
	// Magic still agrees with semi-naive.
	if len(results) < 3 {
		t.Errorf("results = %d", len(results))
	}
}

func TestPipelineCountingAvailable(t *testing.T) {
	p := parser.MustParseProgram(`
		t(X, Y) :- e(X, W), t(W, Y).
		t(X, Y) :- e(X, Y).
	`)
	pl := New(p, parser.MustParseAtom("t(1, Y)"))
	results, skipped, err := pl.Compare(AllStrategies(), chain(8), engine.Options{MaxFacts: 100000})
	if err != nil {
		t.Fatal(err)
	}
	if len(skipped) != 0 {
		t.Errorf("skipped = %v", skipped)
	}
	var cnt *RunResult
	for _, r := range results {
		if r.Strategy == Counting {
			cnt = r
		}
	}
	if cnt == nil {
		t.Fatal("no counting run")
	}
	// Counting's widest IDB predicate carries two extra index arguments.
	if cnt.MaxIDBArity < 3 {
		t.Errorf("counting arity = %d", cnt.MaxIDBArity)
	}
}

func TestTableRendering(t *testing.T) {
	pl := tcPipeline()
	results, _, err := pl.Compare([]Strategy{SemiNaive, Magic}, chain(6), engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	tbl := Table(results)
	if !strings.Contains(tbl, "semi-naive") || !strings.Contains(tbl, "magic") {
		t.Errorf("table:\n%s", tbl)
	}
	ans := SortedAnswers(results[0])
	if len(ans) != 5 || ans[0] != "(2)" {
		t.Errorf("answers = %v", ans)
	}
}

func TestTopDownProjection(t *testing.T) {
	p := parser.MustParseProgram(`
		t(X, Y) :- e(X, Y).
		t(X, Y) :- e(X, W), t(W, Y).
	`)
	pl := New(p, parser.MustParseAtom("t(1, Y)"))
	r, err := pl.Run(TopDown, chain(5)(), engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Answers) != 4 || !r.Answers["(3)"] {
		t.Errorf("top-down answers = %v", r.Answers)
	}
}

func TestStrategyString(t *testing.T) {
	for _, s := range AllStrategies() {
		if strings.HasPrefix(s.String(), "Strategy(") {
			t.Errorf("missing name for %d", s)
		}
	}
	if Strategy(99).String() == "" {
		t.Error("unknown strategy should render")
	}
}
