package pipeline

import (
	"context"
	"errors"
	"testing"

	"factorlog/internal/parser"
)

// fakeDurable is an in-memory DurableLog: append-only, with switchable
// failure and Since availability, mirroring the wal package's contract.
type fakeDurable struct {
	batches  []MutationBatch
	failNext error
	noServe  bool
}

func (f *fakeDurable) Append(b MutationBatch) error {
	if f.failNext != nil {
		err := f.failNext
		f.failNext = nil
		return err
	}
	f.batches = append(f.batches, b)
	return nil
}

func (f *fakeDurable) Since(after int64) ([]MutationBatch, bool) {
	if f.noServe {
		return nil, false
	}
	var out []MutationBatch
	for _, b := range f.batches {
		if b.Epoch > after {
			out = append(out, b)
		}
	}
	return out, true
}

// TestDurableAppendBeforeAck pins the write-ahead contract: every effective
// batch reaches the durable log with the epoch it commits as, and noop
// batches never do.
func TestDurableAppendBeforeAck(t *testing.T) {
	p, err := parser.ParseProgram(rlTCSrc)
	if err != nil {
		t.Fatal(err)
	}
	d := &fakeDurable{}
	m, err := NewMaterializer(p, nil, edgeAtoms(t, [2]int{1, 2}), nil,
		MaterializerOptions{Durable: d})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Apply(edgeAtoms(t, [2]int{2, 3}), nil); err != nil {
		t.Fatalf("apply: %v", err)
	}
	if _, err := m.Apply(edgeAtoms(t, [2]int{1, 2}), nil); err != nil { // noop
		t.Fatalf("noop apply: %v", err)
	}
	if _, err := m.Apply(nil, edgeAtoms(t, [2]int{1, 2})); err != nil {
		t.Fatalf("retract apply: %v", err)
	}
	if len(d.batches) != 2 {
		t.Fatalf("durable log has %d batches, want 2 (noop excluded)", len(d.batches))
	}
	if d.batches[0].Epoch != 1 || len(d.batches[0].Assert) != 1 {
		t.Fatalf("batch 1 = %+v", d.batches[0])
	}
	if d.batches[1].Epoch != 2 || len(d.batches[1].Retract) != 1 {
		t.Fatalf("batch 2 = %+v", d.batches[1])
	}
	if got := m.Epoch(); got != 2 {
		t.Fatalf("epoch %d, want 2", got)
	}
}

// TestDurableAppendFailureUnwinds proves a batch that cannot be logged is
// not acknowledged: the error surfaces, the base and epoch are unchanged,
// and the same batch succeeds on retry.
func TestDurableAppendFailureUnwinds(t *testing.T) {
	p, err := parser.ParseProgram(rlTCSrc)
	if err != nil {
		t.Fatal(err)
	}
	diskFull := errors.New("disk full")
	d := &fakeDurable{}
	m, err := NewMaterializer(p, nil, edgeAtoms(t, [2]int{1, 2}, [2]int{2, 3}), nil,
		MaterializerOptions{Durable: d})
	if err != nil {
		t.Fatal(err)
	}
	before := len(m.BaseFacts())

	d.failNext = diskFull
	res, err := m.Apply(edgeAtoms(t, [2]int{3, 4}), edgeAtoms(t, [2]int{1, 2}))
	if !errors.Is(err, diskFull) {
		t.Fatalf("apply with failing log: %v, want disk full", err)
	}
	if res.Changed() || res.Epoch != 0 {
		t.Fatalf("failed apply reported %+v, want unchanged at epoch 0", res)
	}
	if got := m.Epoch(); got != 0 {
		t.Fatalf("epoch %d after failed append, want 0", got)
	}
	if got := m.BaseFacts(); len(got) != before {
		t.Fatalf("base has %d facts after unwind, want %d", len(got), before)
	}
	// The unwound base must serve the pre-batch answers.
	want := scratchAnswers(t, p, mustAtom(t, "t(1, Y)"), SemiNaive, m.BaseFacts(), 1)
	resv, err := m.Serve(context.Background(), mustAtom(t, "t(1, Y)"), SemiNaive)
	if err != nil {
		t.Fatalf("serve: %v", err)
	}
	if diff := diffAnswers(resv.Answers, want); diff != "" {
		t.Fatalf("answers after unwind: %s", diff)
	}

	// Retrying the identical batch commits the epoch the failure skipped.
	res, err = m.Apply(edgeAtoms(t, [2]int{3, 4}), edgeAtoms(t, [2]int{1, 2}))
	if err != nil {
		t.Fatalf("retry apply: %v", err)
	}
	if res.Epoch != 1 || len(d.batches) != 1 || d.batches[0].Epoch != 1 {
		t.Fatalf("retry committed %+v with log %+v, want epoch 1", res, d.batches)
	}
}

// TestWalDeltaRefreshAfterTrim is the LogLimit fix: when the in-memory log
// has trimmed batches the durable log still holds, a stale entry refreshes
// by replaying from the WAL instead of rebuilding from scratch.
func TestWalDeltaRefreshAfterTrim(t *testing.T) {
	p, err := parser.ParseProgram(rlTCSrc)
	if err != nil {
		t.Fatal(err)
	}
	query := mustAtom(t, "t(1, Y)")
	ctx := context.Background()
	run := func(d *fakeDurable) (*Materializer, *MatResult) {
		t.Helper()
		m, err := NewMaterializer(p, nil, edgeAtoms(t, [2]int{1, 2}), nil,
			MaterializerOptions{LogLimit: 1, Durable: d})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := m.Serve(ctx, query, SemiNaive); err != nil {
			t.Fatalf("build serve: %v", err)
		}
		// Three effective batches: the in-memory log (LogLimit 1) keeps
		// only the last, so the entry at epoch 0 is beyond its reach.
		for i := 2; i <= 4; i++ {
			if _, err := m.Apply(edgeAtoms(t, [2]int{i, i + 1}), nil); err != nil {
				t.Fatalf("apply %d: %v", i, err)
			}
		}
		res, err := m.Serve(ctx, query, SemiNaive)
		if err != nil {
			t.Fatalf("refresh serve: %v", err)
		}
		return m, res
	}

	m, res := run(&fakeDurable{})
	if res.Kind != "delta" || res.Batches != 3 {
		t.Fatalf("refresh with WAL = %q over %d batches, want delta over 3", res.Kind, res.Batches)
	}
	if st := m.Stats(); st.WalDeltas != 1 || st.Deltas != 1 {
		t.Fatalf("stats = deltas %d, wal deltas %d; want 1 and 1", st.Deltas, st.WalDeltas)
	}
	want := scratchAnswers(t, p, query, SemiNaive, m.BaseFacts(), 1)
	if diff := diffAnswers(res.Answers, want); diff != "" {
		t.Fatalf("wal-delta answers: %s", diff)
	}

	// Control: a durable log that cannot serve history forces the old
	// rebuild path, proving the delta really came from the WAL.
	m2, res2 := run(&fakeDurable{noServe: true})
	if res2.Kind != "rebuild" {
		t.Fatalf("refresh without WAL history = %q, want rebuild", res2.Kind)
	}
	if st := m2.Stats(); st.WalDeltas != 0 {
		t.Fatalf("control counted %d wal deltas", st.WalDeltas)
	}
}

// TestMaterializerStartEpoch pins recovery seeding: a materializer built at
// StartEpoch E numbers its first batch E+1 and logs it durably as such.
func TestMaterializerStartEpoch(t *testing.T) {
	p, err := parser.ParseProgram(rlTCSrc)
	if err != nil {
		t.Fatal(err)
	}
	d := &fakeDurable{}
	m, err := NewMaterializer(p, nil, edgeAtoms(t, [2]int{1, 2}), nil,
		MaterializerOptions{StartEpoch: 41, Durable: d})
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Epoch(); got != 41 {
		t.Fatalf("start epoch %d, want 41", got)
	}
	res, err := m.Apply(edgeAtoms(t, [2]int{2, 3}), nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Epoch != 42 || len(d.batches) != 1 || d.batches[0].Epoch != 42 {
		t.Fatalf("first batch committed as %d (logged %+v), want 42", res.Epoch, d.batches)
	}
	// Serving at the recovered epoch works like any other epoch.
	resv, err := m.Serve(context.Background(), mustAtom(t, "t(1, Y)"), SemiNaive)
	if err != nil {
		t.Fatalf("serve: %v", err)
	}
	if resv.Epoch != 42 {
		t.Fatalf("served epoch %d, want 42", resv.Epoch)
	}
}
