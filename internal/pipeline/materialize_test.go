package pipeline

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"factorlog/internal/ast"
	"factorlog/internal/engine"
	"factorlog/internal/faultinject"
	"factorlog/internal/parser"
)

// rlTCSrc is a right-linear transitive closure: factorable and
// counting-eligible, so every materializable strategy applies.
const rlTCSrc = `
t(X, Y) :- e(X, Y).
t(X, Y) :- e(X, W), t(W, Y).
`

func matFacts(t *testing.T, atoms ...string) []ast.Atom {
	t.Helper()
	out := make([]ast.Atom, len(atoms))
	for i, s := range atoms {
		out[i] = mustAtom(t, s)
	}
	return out
}

func edgeAtoms(t *testing.T, edges ...[2]int) []ast.Atom {
	t.Helper()
	out := make([]ast.Atom, len(edges))
	for i, e := range edges {
		out[i] = mustAtom(t, fmt.Sprintf("e(%d, %d)", e[0], e[1]))
	}
	return out
}

// scratchAnswers evaluates strategy s from scratch over the materializer's
// current base — the oracle every materialized serve must match.
func scratchAnswers(t *testing.T, p *ast.Program, query ast.Atom, s Strategy,
	base []ast.Atom, workers int) map[string]bool {
	t.Helper()
	db := engine.NewDB()
	if err := engine.LoadFacts(db, base); err != nil {
		t.Fatalf("load base: %v", err)
	}
	pl := New(p, query)
	r, err := pl.Run(s, db, engine.Options{Workers: workers})
	if err != nil {
		t.Fatalf("scratch %v: %v", s, err)
	}
	return r.Answers
}

func diffAnswers(got, want map[string]bool) string {
	for k := range want {
		if !got[k] {
			return fmt.Sprintf("missing %s", k)
		}
	}
	for k := range got {
		if !want[k] {
			return fmt.Sprintf("extra %s", k)
		}
	}
	return ""
}

func TestMaterializerDifferential(t *testing.T) {
	p, err := parser.ParseProgram(rlTCSrc)
	if err != nil {
		t.Fatal(err)
	}
	query := mustAtom(t, "t(1, Y)")
	base := edgeAtoms(t, [2]int{1, 2}, [2]int{2, 3}, [2]int{3, 4}, [2]int{5, 6})
	strategies := []Strategy{SemiNaive, Magic, SupplementaryMagic, Factored, FactoredOptimized, Counting}

	m, err := NewMaterializer(p, nil, base, nil, MaterializerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	// Scripted batches: growth, retraction into the live closure, a mixed
	// batch, a pure noop, and an assert that reconnects a severed chain.
	batches := []struct {
		assert, retract []ast.Atom
		effective       bool
	}{
		{assert: edgeAtoms(t, [2]int{4, 5}), effective: true},
		{retract: edgeAtoms(t, [2]int{2, 3}), effective: true},
		{assert: edgeAtoms(t, [2]int{2, 7}, [2]int{7, 3}), retract: edgeAtoms(t, [2]int{3, 4}), effective: true},
		{assert: edgeAtoms(t, [2]int{1, 2}), retract: edgeAtoms(t, [2]int{9, 9}), effective: false},
		{assert: edgeAtoms(t, [2]int{3, 4}), effective: true},
	}

	check := func(stage string) {
		for _, s := range strategies {
			res, err := m.Serve(ctx, query, s)
			if err != nil {
				t.Fatalf("%s: serve %v: %v", stage, s, err)
			}
			if res.Epoch != m.Epoch() {
				t.Errorf("%s: %v served epoch %d, materializer at %d", stage, s, res.Epoch, m.Epoch())
			}
			for _, workers := range []int{1, 4} {
				want := scratchAnswers(t, p, query, s, m.BaseFacts(), workers)
				if d := diffAnswers(res.Answers, want); d != "" {
					t.Fatalf("%s: %v (workers=%d): materialized answers diverge: %s", stage, s, workers, d)
				}
			}
		}
	}

	check("initial")
	// Second serve with no mutations in between must be a pure hit.
	res, err := m.Serve(ctx, query, SemiNaive)
	if err != nil {
		t.Fatal(err)
	}
	if res.Kind != "hit" {
		t.Errorf("unchanged serve kind = %q, want hit", res.Kind)
	}

	epoch := m.Epoch()
	for i, b := range batches {
		r, err := m.Apply(b.assert, b.retract)
		if err != nil {
			t.Fatalf("batch %d: %v", i, err)
		}
		if b.effective {
			epoch++
		}
		if r.Epoch != epoch || m.Epoch() != epoch {
			t.Fatalf("batch %d: epoch = %d/%d, want %d", i, r.Epoch, m.Epoch(), epoch)
		}
		check(fmt.Sprintf("batch %d", i))
	}

	// Every strategy was built once and caught up by delta afterwards.
	st := m.Stats()
	if st.Builds != int64(len(strategies)) {
		t.Errorf("builds = %d, want %d", st.Builds, len(strategies))
	}
	if st.Deltas == 0 {
		t.Error("no delta refreshes recorded across mutation batches")
	}
	if st.Rebuilds != 0 {
		t.Errorf("rebuilds = %d, want 0 (log never truncated)", st.Rebuilds)
	}
	if st.Batches != 4 || st.Epoch != epoch {
		t.Errorf("batches/epoch = %d/%d, want 4/%d", st.Batches, st.Epoch, epoch)
	}
}

func TestMaterializerDeltaKinds(t *testing.T) {
	p, err := parser.ParseProgram(rlTCSrc)
	if err != nil {
		t.Fatal(err)
	}
	query := mustAtom(t, "t(1, Y)")
	m, err := NewMaterializer(p, nil, edgeAtoms(t, [2]int{1, 2}), nil, MaterializerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	res, err := m.Serve(ctx, query, SemiNaive)
	if err != nil {
		t.Fatal(err)
	}
	if res.Kind != "build" {
		t.Errorf("first serve kind = %q, want build", res.Kind)
	}
	if _, err := m.Apply(edgeAtoms(t, [2]int{2, 3}), nil); err != nil {
		t.Fatal(err)
	}
	res, err = m.Serve(ctx, query, SemiNaive)
	if err != nil {
		t.Fatal(err)
	}
	if res.Kind != "delta" || res.Batches != 1 {
		t.Errorf("post-mutation serve = %q/%d batches, want delta/1", res.Kind, res.Batches)
	}
}

func TestMaterializerLogTruncationRebuild(t *testing.T) {
	p, err := parser.ParseProgram(rlTCSrc)
	if err != nil {
		t.Fatal(err)
	}
	query := mustAtom(t, "t(1, Y)")
	m, err := NewMaterializer(p, nil, edgeAtoms(t, [2]int{1, 2}), nil,
		MaterializerOptions{LogLimit: 2})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if _, err := m.Serve(ctx, query, SemiNaive); err != nil {
		t.Fatal(err)
	}
	// Five effective batches against a log of two: the entry is further
	// behind than the log reaches, so the next serve must rebuild.
	for i := 0; i < 5; i++ {
		if _, err := m.Apply(edgeAtoms(t, [2]int{2 + i, 3 + i}), nil); err != nil {
			t.Fatal(err)
		}
	}
	res, err := m.Serve(ctx, query, SemiNaive)
	if err != nil {
		t.Fatal(err)
	}
	if res.Kind != "rebuild" {
		t.Errorf("truncated-log serve kind = %q, want rebuild", res.Kind)
	}
	want := scratchAnswers(t, p, query, SemiNaive, m.BaseFacts(), 1)
	if d := diffAnswers(res.Answers, want); d != "" {
		t.Errorf("rebuilt answers diverge: %s", d)
	}
}

func TestMaterializerLRUEviction(t *testing.T) {
	p, err := parser.ParseProgram(rlTCSrc)
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewMaterializer(p, nil, edgeAtoms(t, [2]int{1, 2}, [2]int{2, 3}), nil,
		MaterializerOptions{Entries: 1})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if _, err := m.Serve(ctx, mustAtom(t, "t(1, Y)"), SemiNaive); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Serve(ctx, mustAtom(t, "t(2, Y)"), SemiNaive); err != nil {
		t.Fatal(err)
	}
	st := m.Stats()
	if st.Entries != 1 || st.Evictions != 1 {
		t.Errorf("entries/evictions = %d/%d, want 1/1", st.Entries, st.Evictions)
	}
	// Serving the evicted query again is a fresh build, not an error.
	res, err := m.Serve(ctx, mustAtom(t, "t(1, Y)"), SemiNaive)
	if err != nil {
		t.Fatal(err)
	}
	if res.Kind != "build" {
		t.Errorf("re-serve of evicted entry kind = %q, want build", res.Kind)
	}
}

func TestMaterializerValidation(t *testing.T) {
	p, err := parser.ParseProgram(rlTCSrc)
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewMaterializer(p, nil, edgeAtoms(t, [2]int{1, 2}), nil, MaterializerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	cases := []ast.Atom{
		mustAtom(t, "e(X, 1)"),    // not ground
		mustAtom(t, "e(1, 2, 3)"), // arity mismatch
	}
	for _, a := range cases {
		if _, err := m.Apply([]ast.Atom{a}, nil); !errors.Is(err, engine.ErrMutation) {
			t.Errorf("assert %s: err = %v, want ErrMutation", a, err)
		}
	}
	if m.Epoch() != 0 || m.BaseCount() != 1 {
		t.Errorf("rejected batches mutated state: epoch %d, base %d", m.Epoch(), m.BaseCount())
	}
	if _, err := m.Serve(context.Background(), mustAtom(t, "t(1, Y)"), TopDown); !errors.Is(err, ErrNotMaterializable) {
		t.Errorf("TopDown serve err = %v, want ErrNotMaterializable", err)
	}
}

func TestMaterializerRefreshFaultRecovery(t *testing.T) {
	p, err := parser.ParseProgram(rlTCSrc)
	if err != nil {
		t.Fatal(err)
	}
	query := mustAtom(t, "t(1, Y)")
	m, err := NewMaterializer(p, nil, edgeAtoms(t, [2]int{1, 2}, [2]int{2, 3}), nil, MaterializerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	disable := faultinject.Enable(faultinject.Config{
		Seed: 7, MaxPeriod: 1, Points: []faultinject.Point{faultinject.MatRefresh},
	})
	_, serveErr := m.Serve(ctx, query, SemiNaive)
	disable()
	if !errors.Is(serveErr, engine.ErrInternal) {
		t.Fatalf("faulted serve err = %v, want ErrInternal", serveErr)
	}

	// The fault must not poison the registry: the next serve succeeds and
	// matches a from-scratch evaluation.
	res, err := m.Serve(ctx, query, SemiNaive)
	if err != nil {
		t.Fatalf("post-fault serve: %v", err)
	}
	want := scratchAnswers(t, p, query, SemiNaive, m.BaseFacts(), 1)
	if d := diffAnswers(res.Answers, want); d != "" {
		t.Errorf("post-fault answers diverge: %s", d)
	}
}
