package pipeline

import (
	"container/list"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"strings"
	"sync"
	"time"

	"factorlog/internal/ast"
	"factorlog/internal/engine"
	"factorlog/internal/faultinject"
	"factorlog/internal/obsv"
)

// PlanKey identifies a family of compiled plans: one program, one query
// predicate, one binding pattern, one strategy. Everything the rewrite
// pipeline does — adornment, Magic rules, factoring, the Section 5
// clean-up — is determined by this key plus the query's bound constants.
type PlanKey struct {
	// ProgramHash fingerprints the IDB rules and constraints (HashProgram).
	ProgramHash string
	// QueryPred is the queried predicate.
	QueryPred string
	// Adornment is the query's binding pattern (b = ground argument).
	Adornment ast.Adornment
	// Strategy is the evaluation strategy the plan compiles.
	Strategy Strategy
}

// Plan is a compiled (program, query, strategy) triple ready for repeated
// evaluation: its Pipeline has the strategy's transformation chain forced,
// so Run pays only evaluation cost. Plans are immutable after construction
// and safe for concurrent Run calls, each over its own EDB.
type Plan struct {
	Key PlanKey
	// Binding renders the query's bound constants, e.g. "(5)". Plans
	// specialize on it: the magic seed fact carries the constants, and the
	// Section 5 optimizer (Prop. 5.3) deletes literals mentioning exactly
	// those constants — two queries with the same adornment but different
	// constants compile to different programs.
	Binding string
	// Query is the exact query atom the plan was compiled for.
	Query ast.Atom
	// CompileWall is the wall-clock time buildPlan spent compiling the
	// transformation chain, reported by EXPLAIN's plan-cache disposition.
	CompileWall time.Duration

	pl *Pipeline
}

// Pipeline returns the plan's underlying pipeline (for Explain-style
// inspection).
func (p *Plan) Pipeline() *Pipeline { return p.pl }

// Run evaluates the plan over db with the given engine options. The db is
// consumed (derived relations are added); pass a fresh one per run.
func (p *Plan) Run(db *engine.DB, opts engine.Options) (*RunResult, error) {
	return p.pl.Run(p.Key.Strategy, db, opts)
}

// HashProgram fingerprints a program plus constraints for PlanKey: two
// loads of the same source text agree, and any rule or constraint change
// produces a new hash (so a restarted server never reuses stale plans).
func HashProgram(p *ast.Program, constraints []ast.Rule) string {
	h := sha256.New()
	fmt.Fprintln(h, p.String())
	for _, c := range constraints {
		fmt.Fprintln(h, c.String())
	}
	return hex.EncodeToString(h.Sum(nil)[:8])
}

// BindingOf renders the query's ground arguments in position order, the
// constant half of a plan's identity. Queries with no bound arguments
// render as "()".
func BindingOf(query ast.Atom) string {
	var b strings.Builder
	b.WriteByte('(')
	first := true
	for _, t := range query.Args {
		if !t.Ground() {
			continue
		}
		if !first {
			b.WriteByte(',')
		}
		first = false
		b.WriteString(t.String())
	}
	b.WriteByte(')')
	return b.String()
}

// cacheID is the full identity of a cached plan: the family key plus the
// query's canonical form (ast.Atom.CanonicalKey), which carries both the
// bound constants (see Plan.Binding for why constants matter) and the
// variable-equality pattern — t(X,X) canonicalizes to t(V0,V0) and t(X,Y)
// to t(V0,V1), so they never share a plan even though both adorn as "ff".
type cacheID struct {
	key   PlanKey
	canon string
}

// cacheEntry is built by the lookup that creates it; concurrent lookups of
// the same identity wait on ready and share the outcome — including a
// permanent failure, e.g. a non-factorable program (negative results are
// worth caching too, a server would otherwise re-derive the refutation on
// every request). Transient failures — cancellation, deadline, budget
// kills, recovered compile panics — are the exception: the builder forgets
// the entry before publishing, so the outcome reaches the waiters that
// raced with it but is never served to later lookups (see
// transientCompileErr). Waiters wait with their own context, so a slow or
// wedged compile cannot hold an unrelated request past its deadline.
type cacheEntry struct {
	ready chan struct{} // closed once plan/err are set
	plan  *Plan
	err   error
}

// DefaultPlanCacheLimit is the entry bound NewPlanCache uses. Plans hold
// only programs, not EDB data, so a thousand of them is small; the bound
// exists because plan identity includes client-supplied bound constants,
// and a serving process exposed to arbitrary clients must not let a
// constant-sweeping workload (t(1,Y), t(2,Y), ...) grow memory forever.
const DefaultPlanCacheLimit = 1024

// PlanCache memoizes compiled plans for a serving process. It is safe for
// concurrent use and bounded: once the entry limit is reached, the least
// recently used plan is evicted (and recompiled if queried again).
type PlanCache struct {
	mu        sync.Mutex
	limit     int
	order     *list.List // *lruSlot, most recently used first
	entries   map[cacheID]*list.Element
	hits      int64
	misses    int64
	evictions int64
}

// lruSlot is an order-list element: the entry plus the id that maps to it,
// so eviction of the list tail can delete its map key.
type lruSlot struct {
	id    cacheID
	entry *cacheEntry
}

// NewPlanCache returns an empty cache bounded at DefaultPlanCacheLimit.
func NewPlanCache() *PlanCache {
	return NewPlanCacheLimit(DefaultPlanCacheLimit)
}

// NewPlanCacheLimit returns an empty cache holding at most limit entries
// (limit <= 0 means unbounded).
func NewPlanCacheLimit(limit int) *PlanCache {
	return &PlanCache{
		limit:   limit,
		order:   list.New(),
		entries: map[cacheID]*list.Element{},
	}
}

// Lookup returns the compiled plan for (prog, query, strategy), compiling
// and caching it on first use. hit reports whether a cached entry was
// reused (or waited on, if another lookup was mid-compile). progHash must
// be HashProgram(prog, constraints), computed once by the caller; prog and
// constraints must not change for a given hash.
//
// ctx bounds this caller's wait only: a waiter whose context expires while
// another lookup compiles gets a typed engine error without disturbing the
// compile. A compile that itself fails transiently — canceled, over
// budget, or panicking (converted to engine.ErrInternal by the recover
// barrier) — is reported to the lookups that raced with it but is NOT
// negative-cached: the entry is forgotten and the next lookup recompiles.
func (c *PlanCache) Lookup(ctx context.Context, prog *ast.Program, progHash string,
	constraints []ast.Rule, query ast.Atom, strategy Strategy) (plan *Plan, hit bool, err error) {
	key := PlanKey{
		ProgramHash: progHash,
		QueryPred:   query.Pred,
		Adornment:   ast.AdornmentOf(query, nil),
		Strategy:    strategy,
	}
	id := cacheID{key: key, canon: query.CanonicalKey()}

	c.mu.Lock()
	if el, ok := c.entries[id]; ok {
		c.hits++
		c.order.MoveToFront(el)
		e := el.Value.(*lruSlot).entry
		c.mu.Unlock()
		select {
		case <-e.ready:
			return e.plan, true, e.err
		case <-ctx.Done():
			return nil, true, fmt.Errorf("awaiting plan compile: %w", typedCtxErr(ctx))
		}
	}
	c.misses++
	e := &cacheEntry{ready: make(chan struct{})}
	c.entries[id] = c.order.PushFront(&lruSlot{id: id, entry: e})
	if c.limit > 0 && len(c.entries) > c.limit {
		tail := c.order.Back()
		c.order.Remove(tail)
		delete(c.entries, tail.Value.(*lruSlot).id)
		c.evictions++
	}
	c.mu.Unlock()

	e.plan, e.err = buildPlan(ctx, prog, constraints, query, key, strategy)
	if e.err != nil && transientCompileErr(e.err) {
		c.forget(id, e)
	}
	close(e.ready)
	return e.plan, false, e.err
}

// buildPlan compiles one plan behind a recover barrier. A panic anywhere in
// the rewrite pipeline (adornment, Magic, factoring, the Section 5 clean-up)
// becomes a typed engine.ErrInternal instead of killing the process.
func buildPlan(ctx context.Context, prog *ast.Program, constraints []ast.Rule,
	query ast.Atom, key PlanKey, strategy Strategy) (plan *Plan, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("%w: panic compiling %s plan for %s%s: %v",
				engine.ErrInternal, strategy, query.Pred, key.Adornment, r)
		}
	}()
	if ctx.Err() != nil {
		return nil, fmt.Errorf("compile %s for %s%s: %w", strategy, query.Pred, key.Adornment, typedCtxErr(ctx))
	}
	faultinject.Hit(faultinject.PlanCompile)
	start := time.Now()
	pl := New(prog, query)
	if len(constraints) > 0 {
		pl.WithConstraints(constraints)
	}
	if cerr := pl.Compile(strategy); cerr != nil {
		return nil, fmt.Errorf("compile %s for %s%s: %w", strategy, query.Pred, key.Adornment, cerr)
	}
	return &Plan{Key: key, Binding: BindingOf(query), Query: query,
		CompileWall: time.Since(start), pl: pl}, nil
}

// typedCtxErr maps a done context to the engine's typed sentinels so HTTP
// handlers classify cache waits the same way they classify evaluations.
func typedCtxErr(ctx context.Context) error {
	cause := context.Cause(ctx)
	if errors.Is(ctx.Err(), context.DeadlineExceeded) {
		return fmt.Errorf("%w: %v", engine.ErrDeadlineExceeded, cause)
	}
	return fmt.Errorf("%w: %v", engine.ErrCanceled, cause)
}

// transientCompileErr reports whether a compile failure says nothing about
// the (program, query, strategy) identity itself — the caller was canceled,
// a budget tripped, or a fault/panic fired — and so must not be negative-
// cached. Permanent refutations (non-factorable program, bad adornment)
// stay cached.
func transientCompileErr(err error) bool {
	for _, sentinel := range []error{
		engine.ErrCanceled, engine.ErrDeadlineExceeded,
		engine.ErrBudgetExceeded, engine.ErrMemoryBudget, engine.ErrInternal,
		context.Canceled, context.DeadlineExceeded,
	} {
		if errors.Is(err, sentinel) {
			return true
		}
	}
	return false
}

// Put stores an already-compiled plan under (progHash, query, strategy).
// The Auto planner uses it to alias its winner under the Auto strategy key,
// so plan-cache introspection shows what Auto currently serves. An existing
// entry for the identity is replaced.
func (c *PlanCache) Put(progHash string, query ast.Atom, strategy Strategy, plan *Plan) {
	id := cacheID{
		key: PlanKey{
			ProgramHash: progHash,
			QueryPred:   query.Pred,
			Adornment:   ast.AdornmentOf(query, nil),
			Strategy:    strategy,
		},
		canon: query.CanonicalKey(),
	}
	e := &cacheEntry{ready: make(chan struct{}), plan: plan}
	close(e.ready)
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[id]; ok {
		el.Value.(*lruSlot).entry = e
		c.order.MoveToFront(el)
		return
	}
	c.entries[id] = c.order.PushFront(&lruSlot{id: id, entry: e})
	if c.limit > 0 && len(c.entries) > c.limit {
		tail := c.order.Back()
		c.order.Remove(tail)
		delete(c.entries, tail.Value.(*lruSlot).id)
		c.evictions++
	}
}

// Drop removes the entry for (progHash, query, strategy), reporting whether
// one existed. The Auto planner calls it when shadow re-costing invalidates
// a served plan.
func (c *PlanCache) Drop(progHash string, query ast.Atom, strategy Strategy) bool {
	id := cacheID{
		key: PlanKey{
			ProgramHash: progHash,
			QueryPred:   query.Pred,
			Adornment:   ast.AdornmentOf(query, nil),
			Strategy:    strategy,
		},
		canon: query.CanonicalKey(),
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[id]
	if !ok {
		return false
	}
	c.order.Remove(el)
	delete(c.entries, id)
	return true
}

// forget removes id from the cache if it still maps to e (it may already
// have been evicted, or replaced after an earlier forget).
func (c *PlanCache) forget(id cacheID, e *cacheEntry) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[id]; ok && el.Value.(*lruSlot).entry == e {
		c.order.Remove(el)
		delete(c.entries, id)
	}
}

// Stats snapshots the cache counters.
func (c *PlanCache) Stats() obsv.CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return obsv.CacheStats{
		Hits:      c.hits,
		Misses:    c.misses,
		Evictions: c.evictions,
		Entries:   len(c.entries),
	}
}
