package pipeline

import (
	"container/list"
	"context"
	"errors"
	"fmt"
	"runtime/debug"
	"sync"
	"time"

	"factorlog/internal/ast"
	"factorlog/internal/engine"
	"factorlog/internal/faultinject"
	"factorlog/internal/obsv"
)

// This file is the serving side of incremental view maintenance: a
// Materializer owns the mutable base EDB, a log of mutation batches, and a
// bounded registry of engine.Materializations keyed by (canonical query,
// strategy). Mutations advance a global epoch; a query served from the
// registry first refreshes its entry to the current epoch — a no-op when
// already there ("hit"), an incremental catch-up when the logged batches
// cover the gap ("delta"), and a from-scratch recompute otherwise
// ("rebuild"; "build" the first time). Each refresh disposition, its wall
// time, and its O(change)/O(db) ratio feed obsv.MutationStats.

// ErrNotMaterializable reports a Serve for a strategy with no materialized
// program (the top-down strategies). Gate with MaterializableStrategy.
var ErrNotMaterializable = errors.New("strategy is not materializable")

// MutationBatch is one effective mutation batch: the asserts and retracts
// that actually changed the base EDB, tagged with the epoch the batch
// produced. The log holds consecutive epochs; noop batches are not logged
// and do not advance the epoch.
type MutationBatch struct {
	Epoch   int64
	Assert  []ast.Atom
	Retract []ast.Atom
}

// BatchResult reports what one Apply changed.
type BatchResult struct {
	// Epoch is the epoch after the batch (unchanged for a noop batch).
	Epoch int64
	// Asserted and Retracted count effective base-EDB changes; Noop*
	// count entries that changed nothing (assert of a present fact,
	// retract of an absent one).
	Asserted, Retracted       int
	NoopAsserts, NoopRetracts int
}

// Changed reports whether the batch changed the base EDB.
func (r BatchResult) Changed() bool { return r.Asserted+r.Retracted > 0 }

// MatResult is one materialized serve: the answers at the epoch they
// reflect, plus how the entry was brought there.
type MatResult struct {
	Answers map[string]bool
	// Epoch is the mutation epoch the answers reflect.
	Epoch int64
	// Kind is the refresh disposition: "hit" (already current), "delta"
	// (caught up from logged batches), "rebuild" (recomputed from the
	// base), or "build" (computed for the first time).
	Kind string
	// Batches is the number of logged batches a delta refresh replayed.
	Batches int
	// RefreshWall is the wall time of a non-hit refresh (0 on a hit).
	RefreshWall time.Duration
	// PlanHit reports whether the plan cache already had the compiled
	// plan for this (query, strategy).
	PlanHit bool
}

// DurableLog is the materializer's view of a write-ahead log (implemented
// by cmd/factorlogd over internal/wal). Append must make the batch durable
// before returning — the materializer calls it before advancing the epoch,
// so an Append error leaves the batch unacknowledged and the base EDB
// unchanged. Since serves trimmed history back to refreshes: batches with
// epochs in (after, current], ok=false when the log cannot produce them
// (compacted or failed).
type DurableLog interface {
	Append(MutationBatch) error
	Since(after int64) ([]MutationBatch, bool)
}

// MaterializerOptions bounds the registry.
type MaterializerOptions struct {
	// Entries bounds live materializations (LRU-evicted past it);
	// 0 means 64.
	Entries int
	// LogLimit bounds retained mutation batches; entries further behind
	// than the log reaches refresh by rebuild — unless Durable still holds
	// the trimmed batches, in which case the refresh replays them from
	// the durable log instead.
	LogLimit int
	// StartEpoch is the epoch the materializer begins at — the recovered
	// epoch when the base was rebuilt from a snapshot + log tail, 0 for a
	// fresh start.
	StartEpoch int64
	// Durable, when non-nil, receives every effective batch before it is
	// acknowledged and serves trimmed batches back to refreshes.
	Durable DurableLog
	// Engine carries per-entry build and maintenance budgets
	// (StartEpoch is overridden by the materializer).
	Engine engine.MaterializeOptions
}

// matEntry is one registered materialization.
type matEntry struct {
	key         string
	prog        *ast.Program // the program the strategy evaluates
	query       ast.Atom     // the answer atom of that program
	transformed bool         // read via AnswerSet vs. projection
	pl          *Pipeline    // for ProjectAnswers on untransformed entries
	mat         *engine.Materialization
	elem        *list.Element
}

// Materializer owns the mutable base EDB and the materialization registry.
// One lock guards the base, the log, and all refreshes: a refresh blocks
// concurrent mutations and other materialized serves. That keeps the
// epoch/log/entry invariants trivially consistent on a single-node ingest
// path; finer-grained per-entry locking is future work.
type Materializer struct {
	mu          sync.Mutex
	prog        *ast.Program
	progHash    string
	constraints []ast.Rule
	plans       *PlanCache
	arity       map[string]int

	base    []ast.Atom
	baseIdx map[string]int // atom.String() -> index in base
	epoch   int64
	log     []MutationBatch

	entries map[string]*matEntry
	order   *list.List // front = most recently served
	opts    MaterializerOptions

	batches, asserted, retracted    int64
	noopAsserts, noopRetracts       int64
	evictions, hitCount, deltaCount int64
	walDeltaCount                   int64
	rebuildCount, buildCount        int64
	refreshWall                     *obsv.Histogram
	changeRatio                     *obsv.ValueHistogram
}

// NewMaterializer builds a materializer over prog's base facts. The base
// atoms must be ground with consistent arities (engine.ErrMutation
// otherwise); duplicates collapse. plans may be shared with non-materialized
// serving so compiled-plan reuse spans both paths.
func NewMaterializer(prog *ast.Program, constraints []ast.Rule, base []ast.Atom,
	plans *PlanCache, opts MaterializerOptions) (*Materializer, error) {
	if opts.Entries <= 0 {
		opts.Entries = 64
	}
	if opts.LogLimit <= 0 {
		opts.LogLimit = 256
	}
	if plans == nil {
		plans = NewPlanCache()
	}
	arity, err := prog.PredArities()
	if err != nil {
		return nil, err
	}
	m := &Materializer{
		prog:        prog,
		progHash:    HashProgram(prog, constraints),
		constraints: constraints,
		plans:       plans,
		arity:       arity,
		baseIdx:     map[string]int{},
		entries:     map[string]*matEntry{},
		order:       list.New(),
		opts:        opts,
		epoch:       opts.StartEpoch,
		refreshWall: obsv.NewHistogram(),
		changeRatio: obsv.NewValueHistogram(obsv.ChangeRatioBounds()),
	}
	for _, a := range base {
		if err := m.checkAtom(a); err != nil {
			return nil, err
		}
		k := a.String()
		if _, dup := m.baseIdx[k]; dup {
			continue
		}
		m.baseIdx[k] = len(m.base)
		m.base = append(m.base, a)
	}
	return m, nil
}

// checkAtom validates one mutation atom: ground, and consistent with the
// program's declared arity when the predicate is known. Unknown predicates
// are legal — new EDB relations may appear by assertion — mirroring
// engine.Materialization's validation.
func (m *Materializer) checkAtom(a ast.Atom) error {
	if !a.Ground() {
		return fmt.Errorf("%w: %s is not ground", engine.ErrMutation, a)
	}
	if known, ok := m.arity[a.Pred]; ok && known != len(a.Args) {
		return fmt.Errorf("%w: %s used with arity %d and %d",
			engine.ErrMutation, a.Pred, known, len(a.Args))
	}
	return nil
}

// ProgramHash returns the canonical hash of the program + constraints the
// materializer serves — the identity the durable log's recovery checks.
func (m *Materializer) ProgramHash() string { return m.progHash }

// Epoch returns the current mutation epoch.
func (m *Materializer) Epoch() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.epoch
}

// BaseCount returns the number of live base facts.
func (m *Materializer) BaseCount() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.base)
}

// BaseFacts returns a copy of the live base EDB — what a from-scratch
// evaluation at the current epoch should load.
func (m *Materializer) BaseFacts() []ast.Atom {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]ast.Atom(nil), m.base...)
}

// BaseSnapshot returns a copy of the live base EDB together with the epoch
// it reflects, atomically — what a from-scratch evaluation should load and
// the epoch its response should report.
func (m *Materializer) BaseSnapshot() ([]ast.Atom, int64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]ast.Atom(nil), m.base...), m.epoch
}

// Apply applies one mutation batch to the base EDB: retractions first,
// then assertions, so a fact in both lists ends up present. Validation
// rejects the whole batch before any change (engine.ErrMutation). An
// effective batch advances the epoch and is appended to the log; a batch
// of pure noops changes nothing. Registered materializations are not
// touched — they catch up lazily on their next Serve.
func (m *Materializer) Apply(assert, retract []ast.Atom) (BatchResult, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	var res BatchResult
	res.Epoch = m.epoch
	for _, a := range assert {
		if err := m.checkAtom(a); err != nil {
			return res, err
		}
	}
	for _, a := range retract {
		if err := m.checkAtom(a); err != nil {
			return res, err
		}
	}
	var eff MutationBatch
	for _, a := range retract {
		k := a.String()
		i, ok := m.baseIdx[k]
		if !ok {
			res.NoopRetracts++
			continue
		}
		last := len(m.base) - 1
		delete(m.baseIdx, k)
		if i != last {
			m.base[i] = m.base[last]
			m.baseIdx[m.base[i].String()] = i
		}
		m.base = m.base[:last]
		eff.Retract = append(eff.Retract, a)
		res.Retracted++
	}
	for _, a := range assert {
		k := a.String()
		if _, ok := m.baseIdx[k]; ok {
			res.NoopAsserts++
			continue
		}
		m.baseIdx[k] = len(m.base)
		m.base = append(m.base, a)
		eff.Assert = append(eff.Assert, a)
		res.Asserted++
	}
	if res.Changed() && m.opts.Durable != nil {
		eff.Epoch = m.epoch + 1
		if err := m.opts.Durable.Append(eff); err != nil {
			// The batch could not be made durable, so it must not be
			// acknowledged: unwind the base to the last committed epoch.
			m.unwindLocked(eff)
			res = BatchResult{Epoch: m.epoch}
			return res, fmt.Errorf("durable log append: %w", err)
		}
	}
	m.noopAsserts += int64(res.NoopAsserts)
	m.noopRetracts += int64(res.NoopRetracts)
	if res.Changed() {
		m.epoch++
		eff.Epoch = m.epoch
		m.log = append(m.log, eff)
		if len(m.log) > m.opts.LogLimit {
			m.log = append([]MutationBatch(nil), m.log[len(m.log)-m.opts.LogLimit:]...)
		}
		m.batches++
		m.asserted += int64(res.Asserted)
		m.retracted += int64(res.Retracted)
	}
	res.Epoch = m.epoch
	return res, nil
}

// unwindLocked reverts one effective batch's base-EDB changes after a
// durable-append failure: asserted facts come back out, retracted facts go
// back in. Retract-then-assert of the same fact lists it in both, so the
// asserts are removed first and the retracts restored after.
func (m *Materializer) unwindLocked(eff MutationBatch) {
	for _, a := range eff.Assert {
		k := a.String()
		i, ok := m.baseIdx[k]
		if !ok {
			continue
		}
		last := len(m.base) - 1
		delete(m.baseIdx, k)
		if i != last {
			m.base[i] = m.base[last]
			m.baseIdx[m.base[i].String()] = i
		}
		m.base = m.base[:last]
	}
	for _, a := range eff.Retract {
		k := a.String()
		if _, ok := m.baseIdx[k]; ok {
			continue
		}
		m.baseIdx[k] = len(m.base)
		m.base = append(m.base, a)
	}
}

// Serve answers query under strategy from the registry, refreshing (or
// building) the entry to the current epoch first. The compiled plan comes
// from the shared plan cache, so materialized serving keeps the plan-cache
// counters meaningful.
func (m *Materializer) Serve(ctx context.Context, query ast.Atom, strategy Strategy) (*MatResult, error) {
	if !MaterializableStrategy(strategy) {
		return nil, fmt.Errorf("%w: %v", ErrNotMaterializable, strategy)
	}
	plan, planHit, err := m.plans.Lookup(ctx, m.prog, m.progHash, m.constraints, query, strategy)
	if err != nil {
		return nil, err
	}

	m.mu.Lock()
	defer m.mu.Unlock()
	key := query.CanonicalKey() + "|" + strategy.String()
	e := m.entries[key]
	if e == nil {
		prog, ansQuery, transformed, perr := plan.Pipeline().MaterializedProgram(strategy)
		if perr != nil {
			return nil, perr
		}
		e = &matEntry{key: key, prog: prog, query: ansQuery,
			transformed: transformed, pl: plan.Pipeline()}
		e.elem = m.order.PushFront(e)
		m.entries[key] = e
		for len(m.entries) > m.opts.Entries {
			tail := m.order.Back()
			victim := tail.Value.(*matEntry)
			m.order.Remove(tail)
			delete(m.entries, victim.key)
			m.evictions++
		}
	} else {
		m.order.MoveToFront(e.elem)
	}

	kind, batches, wall, err := m.refreshLocked(ctx, e)
	if err != nil {
		return nil, err
	}
	answers, err := m.answersLocked(e)
	if err != nil {
		return nil, err
	}
	return &MatResult{Answers: answers, Epoch: m.epoch, Kind: kind,
		Batches: batches, RefreshWall: wall, PlanHit: planHit}, nil
}

// refreshLocked brings e to the current epoch. A failed refresh leaves the
// entry's materialization dirty (or nil), so the next Serve rebuilds; the
// base EDB is never affected (engine.Apply rolls it back inside the entry's
// own copy only).
func (m *Materializer) refreshLocked(ctx context.Context, e *matEntry) (kind string, batches int, wall time.Duration, err error) {
	if e.mat != nil && !e.mat.Dirty() && e.mat.Epoch() == m.epoch {
		m.hitCount++
		return "hit", 0, 0, nil
	}
	defer func() {
		// The MatRefresh fault and any maintenance panic surface here as a
		// typed internal error; the dirty entry rebuilds on the next Serve.
		if r := recover(); r != nil {
			err = &engine.PanicError{Where: "refresh", Value: r, Stack: debug.Stack()}
		}
	}()
	start := time.Now()
	faultinject.Hit(faultinject.MatRefresh)

	// Pick the batch source for an incremental catch-up: the in-memory log
	// when it reaches back far enough, else the durable log — LogLimit may
	// have trimmed batches the WAL still holds, and replaying them beats a
	// from-scratch rebuild.
	var replay []MutationBatch
	fromWal := false
	if e.mat != nil && !e.mat.Dirty() {
		if m.logCoversLocked(e.mat.Epoch()) {
			first := int(e.mat.Epoch() + 1 - m.log[0].Epoch)
			replay = m.log[first:]
		} else if m.opts.Durable != nil {
			if got, ok := m.opts.Durable.Since(e.mat.Epoch()); ok && coversRange(got, e.mat.Epoch(), m.epoch) {
				replay, fromWal = got, true
			}
		}
	}

	changed := 0
	switch {
	case len(replay) > 0:
		kind = "delta"
		for _, b := range replay {
			st, aerr := e.mat.Apply(ctx, b.Assert, b.Retract)
			if aerr != nil {
				return kind, batches, 0, aerr
			}
			changed += st.Changed()
			batches++
		}
		m.deltaCount++
		if fromWal {
			m.walDeltaCount++
		}
	default:
		kind = "rebuild"
		if e.mat == nil {
			kind = "build"
		}
		opts := m.opts.Engine
		opts.StartEpoch = m.epoch
		mat, merr := engine.Materialize(e.prog, m.base, opts)
		if merr != nil {
			return kind, 0, 0, merr
		}
		e.mat = mat
		changed = mat.DB().TotalFacts()
		if kind == "build" {
			m.buildCount++
		} else {
			m.rebuildCount++
		}
	}
	wall = time.Since(start)
	m.refreshWall.Observe(wall)
	if total := e.mat.DB().TotalFacts(); total > 0 {
		m.changeRatio.Observe(float64(changed) / float64(total))
	}
	return kind, batches, wall, nil
}

// logCoversLocked reports whether the batch log reaches back to the batch
// after fromEpoch (log epochs are consecutive, ending at m.epoch).
func (m *Materializer) logCoversLocked(fromEpoch int64) bool {
	return len(m.log) > 0 && m.log[0].Epoch <= fromEpoch+1
}

// coversRange checks that durable-log batches form the exact consecutive
// chain (from, to] — a defensive guard so a lagging or gappy log can never
// be replayed as a delta.
func coversRange(batches []MutationBatch, from, to int64) bool {
	if int64(len(batches)) != to-from {
		return false
	}
	for i, b := range batches {
		if b.Epoch != from+int64(i)+1 {
			return false
		}
	}
	return true
}

// answersLocked reads e's answers: transformed entries hold them as tuples
// of the rewritten query predicate; untransformed ones project the original
// query's matches onto its free positions.
func (m *Materializer) answersLocked(e *matEntry) (map[string]bool, error) {
	if e.transformed {
		return engine.AnswerSet(e.mat.DB(), e.query)
	}
	return e.pl.ProjectAnswers(e.mat.DB())
}

// Stats snapshots the mutation + materialization counters for /metrics.
func (m *Materializer) Stats() obsv.MutationStats {
	m.mu.Lock()
	defer m.mu.Unlock()
	wall := *m.refreshWall
	wall.BucketCounts = append([]int64(nil), m.refreshWall.BucketCounts...)
	ratio := *m.changeRatio
	ratio.BucketCounts = append([]int64(nil), m.changeRatio.BucketCounts...)
	return obsv.MutationStats{
		Epoch:          m.epoch,
		BaseFacts:      len(m.base),
		Batches:        m.batches,
		FactsAsserted:  m.asserted,
		FactsRetracted: m.retracted,
		NoopAsserts:    m.noopAsserts,
		NoopRetracts:   m.noopRetracts,
		Entries:        len(m.entries),
		Evictions:      m.evictions,
		Hits:           m.hitCount,
		Deltas:         m.deltaCount,
		WalDeltas:      m.walDeltaCount,
		Rebuilds:       m.rebuildCount,
		Builds:         m.buildCount,
		RefreshWall:    &wall,
		ChangeRatio:    &ratio,
	}
}
