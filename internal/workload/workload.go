package workload

import (
	"fmt"
	"math/rand"
	"strings"

	"factorlog/internal/ast"
	"factorlog/internal/engine"
)

// Chain loads e(1,2), e(2,3), ..., e(n-1,n).
func Chain(db *engine.DB, pred string, n int) {
	for i := 1; i < n; i++ {
		db.MustInsert(pred, db.Store.Int(i), db.Store.Int(i+1))
	}
}

// Cycle loads a directed n-cycle over 0..n-1.
func Cycle(db *engine.DB, pred string, n int) {
	for i := 0; i < n; i++ {
		db.MustInsert(pred, db.Store.Int(i), db.Store.Int((i+1)%n))
	}
}

// RandomDigraph loads m random edges over n nodes (duplicates collapse).
func RandomDigraph(db *engine.DB, pred string, n, m int, seed int64) {
	r := rand.New(rand.NewSource(seed))
	for i := 0; i < m; i++ {
		db.MustInsert(pred, db.Store.Int(r.Intn(n)), db.Store.Int(r.Intn(n)))
	}
}

// Grid loads the edges of a w x h grid (right and down), nodes named r_c.
func Grid(db *engine.DB, pred string, w, h int) {
	node := func(r, c int) engine.Val { return db.Store.Const(fmt.Sprintf("n%d_%d", r, c)) }
	for r := 0; r < h; r++ {
		for c := 0; c < w; c++ {
			if c+1 < w {
				db.MustInsert(pred, node(r, c), node(r, c+1))
			}
			if r+1 < h {
				db.MustInsert(pred, node(r, c), node(r+1, c))
			}
		}
	}
}

// Layered loads a layered DAG: layers of the given width, every node
// connected to d random nodes of the next layer.
func Layered(db *engine.DB, pred string, layers, width, d int, seed int64) {
	r := rand.New(rand.NewSource(seed))
	node := func(l, i int) engine.Val { return db.Store.Const(fmt.Sprintf("l%d_%d", l, i)) }
	for l := 0; l+1 < layers; l++ {
		for i := 0; i < width; i++ {
			for k := 0; k < d; k++ {
				db.MustInsert(pred, node(l, i), node(l+1, r.Intn(width)))
			}
		}
	}
}

// BalancedTree loads up/down edges of a complete binary tree of the given
// depth, for the same-generation program: up(child, parent) and
// down(parent, child). flat relates the root's two children (both ways), so
// sg(x, Y) for a node x at depth d finds the depth-d nodes of the opposite
// subtree by climbing d-1 levels, crossing flat, and descending.
func BalancedTree(db *engine.DB, depth int) {
	var walk func(id string, d int)
	walk = func(id string, d int) {
		if d == depth {
			return
		}
		for _, side := range []string{"l", "r"} {
			child := id + side
			db.MustInsert("up", db.Store.Const(child), db.Store.Const(id))
			db.MustInsert("down", db.Store.Const(id), db.Store.Const(child))
			walk(child, d+1)
		}
	}
	walk("n", 0)
	db.MustInsert("flat", db.Store.Const("nl"), db.Store.Const("nr"))
	db.MustInsert("flat", db.Store.Const("nr"), db.Store.Const("nl"))
}

// ListConsts returns the constants x1..xn.
func ListConsts(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("x%d", i+1)
	}
	return out
}

// ListTerm builds the ground list [x1, ..., xn] as an ast.Term.
func ListTerm(n int) ast.Term {
	elems := make([]ast.Term, n)
	for i, c := range ListConsts(n) {
		elems[i] = ast.C(c)
	}
	return ast.List(elems...)
}

// PFacts loads p(xj) for every 1-based j in 1..n divisible by every —
// p(x_every), p(x_2every), ... — giving selectivity 1/every; every <= 1
// marks all members.
func PFacts(db *engine.DB, n, every int) {
	if every < 1 {
		every = 1
	}
	for i, c := range ListConsts(n) {
		if (i+1)%every == 0 {
			db.MustInsert("p", db.Store.Const(c))
		}
	}
}

// Example43Regular loads an EDB for the Example 4.3 program that satisfies
// the selection-pushing constraints (r1/r2/r3 contain every e target, l1/l2
// contain every f source and agree): a chain in e plus f shortcuts.
func Example43Regular(db *engine.DB, n int) {
	for i := 1; i < n; i++ {
		ei, ej := db.Store.Int(i), db.Store.Int(i+1)
		db.MustInsert("e", ei, ej)
		db.MustInsert("r1", ej)
		db.MustInsert("r2", ej)
		db.MustInsert("r3", ej)
	}
	for i := 1; i+2 <= n; i += 2 {
		db.MustInsert("f", db.Store.Int(i), db.Store.Int(i+1))
		db.MustInsert("l1", db.Store.Int(i))
		db.MustInsert("l2", db.Store.Int(i))
	}
	// c1/c2: short hops used by the combined rules.
	for i := 1; i < n; i++ {
		db.MustInsert("c1", db.Store.Int(i+1), db.Store.Int(i))
		db.MustInsert("c2", db.Store.Int(i+1), db.Store.Int(i))
	}
	// The query constant must satisfy l1/l2.
	db.MustInsert("l1", db.Store.Int(1))
	db.MustInsert("l2", db.Store.Int(1))
}

// MultiColumnChain loads the EDB for the two-column separable recursion
// t(X,Y) :- t(X,W), b(W,Y) / t(X,Y) :- a(X,Z), t(Z,Y): chains in a and b
// plus diagonal exit facts.
func MultiColumnChain(db *engine.DB, n int) {
	for i := 1; i < n; i++ {
		db.MustInsert("a", db.Store.Int(i), db.Store.Int(i+1))
		db.MustInsert("b", db.Store.Int(i), db.Store.Int(i+1))
	}
	for i := 1; i <= n; i++ {
		db.MustInsert("e", db.Store.Int(i), db.Store.Int(i))
	}
}

// Section64 loads data for the two-first right-linear program of §6.4: two
// interleaved chains with exits and full right filters.
func Section64(db *engine.DB, n int) {
	for i := 1; i < n; i++ {
		db.MustInsert("first1", db.Store.Int(i), db.Store.Int(i+1))
		if i+2 <= n {
			db.MustInsert("first2", db.Store.Int(i), db.Store.Int(i+2))
		}
	}
	for i := 1; i <= n; i++ {
		v := db.Store.Int(i)
		db.MustInsert("exit", v, db.Store.Int(i+1000))
		db.MustInsert("right1", db.Store.Int(i+1000))
		db.MustInsert("right2", db.Store.Int(i+1000))
	}
}

// LayeredJoinProgram returns the source of the join-heavy non-recursive
// family: t1(X,Z) :- s0(X,Y), s1(Y,Z), then tk(X,Z) :- t(k-1)(X,Y), sk(Y,Z)
// up to t<stages>. Every stratum past the first joins an IDB predicate, the
// shape on which the materializing semi-naive evaluator pays each join twice
// (the round-0 cascade derives everything, then the delta round re-joins the
// full relation to find nothing new) while the streaming executor pays once.
func LayeredJoinProgram(stages int) string {
	if stages < 1 {
		stages = 1
	}
	var b strings.Builder
	b.WriteString("t1(X, Z) :- s0(X, Y), s1(Y, Z).\n")
	for k := 2; k <= stages; k++ {
		fmt.Fprintf(&b, "t%d(X, Z) :- t%d(X, Y), s%d(Y, Z).\n", k, k-1, k)
	}
	return b.String()
}

// LayeredJoinQuery returns the query atom of the layered join family,
// t<stages>(X, Z): the whole final layer.
func LayeredJoinQuery(stages int) ast.Atom {
	if stages < 1 {
		stages = 1
	}
	return ast.NewAtom(fmt.Sprintf("t%d", stages), ast.V("X"), ast.V("Z"))
}

// LayeredJoins loads the EDB of LayeredJoinProgram: stages+1 binary
// relations s0..s<stages> over the key space 0..n-1, each with n*fanout
// tuples sk(i, (i*7+k+j*11) mod n) for j in 0..fanout-1. fanout is the join
// selectivity knob: fanout 1 gives every probe key exactly one match (the
// high-selectivity variant, |tk| stays n), larger fanouts give every key
// fanout successors so intermediate results multiply (the low-selectivity
// variant). fanout < 1 clamps to 1.
func LayeredJoins(db *engine.DB, stages, n, fanout int) {
	if fanout < 1 {
		fanout = 1
	}
	for k := 0; k <= stages; k++ {
		pred := fmt.Sprintf("s%d", k)
		for i := 0; i < n; i++ {
			for j := 0; j < fanout; j++ {
				db.MustInsert(pred, db.Store.Int(i), db.Store.Int((i*7+k+j*11)%n))
			}
		}
	}
}

// WidePairs loads pred(i mod keys, i) for i in 0..n-1: an n-row binary
// relation whose first column takes keys distinct values, so a constant
// selection on column 0 keeps about n/keys rows. keys near n is the
// high-selectivity variant (a point probe matches one row); small keys is
// the low-selectivity one. keys < 1 clamps to 1 (all rows share one key).
func WidePairs(db *engine.DB, pred string, n, keys int) {
	if keys < 1 {
		keys = 1
	}
	for i := 0; i < n; i++ {
		db.MustInsert(pred, db.Store.Int(i%keys), db.Store.Int(i))
	}
}

// Product loads data for the Example 7.1 program t(X,Y,Z) :- t(X,U,W),
// b(U,Y), d(Z): a b-chain and k d-values, making t's answer set a product.
func Product(db *engine.DB, n, k int) {
	for i := 1; i < n; i++ {
		db.MustInsert("b", db.Store.Int(i), db.Store.Int(i+1))
	}
	for j := 0; j < k; j++ {
		db.MustInsert("d", db.Store.Const(fmt.Sprintf("d%d", j)))
	}
	for i := 1; i <= n; i++ {
		for j := 0; j < k; j++ {
			db.MustInsert("e", db.Store.Int(5), db.Store.Int(i), db.Store.Const(fmt.Sprintf("d%d", j)))
		}
	}
}
