package workload

import (
	"strings"
	"testing"

	"factorlog/internal/engine"
)

func TestChain(t *testing.T) {
	db := engine.NewDB()
	Chain(db, "e", 10)
	if db.Count("e") != 9 {
		t.Errorf("|e| = %d", db.Count("e"))
	}
}

func TestCycle(t *testing.T) {
	db := engine.NewDB()
	Cycle(db, "e", 7)
	if db.Count("e") != 7 {
		t.Errorf("|e| = %d", db.Count("e"))
	}
}

func TestRandomDigraphDeterministic(t *testing.T) {
	db1 := engine.NewDB()
	RandomDigraph(db1, "e", 20, 40, 42)
	db2 := engine.NewDB()
	RandomDigraph(db2, "e", 20, 40, 42)
	if db1.Count("e") != db2.Count("e") {
		t.Error("same seed should give same EDB")
	}
	db3 := engine.NewDB()
	RandomDigraph(db3, "e", 20, 40, 43)
	// Not a strict requirement, but overwhelmingly likely:
	if db1.Count("e") == 0 {
		t.Error("empty graph")
	}
	_ = db3
}

func TestGrid(t *testing.T) {
	db := engine.NewDB()
	Grid(db, "e", 3, 4)
	// right edges: 2*4, down edges: 3*3.
	if db.Count("e") != 2*4+3*3 {
		t.Errorf("|e| = %d", db.Count("e"))
	}
}

func TestLayered(t *testing.T) {
	db := engine.NewDB()
	Layered(db, "e", 4, 5, 2, 1)
	if db.Count("e") == 0 || db.Count("e") > 3*5*2 {
		t.Errorf("|e| = %d", db.Count("e"))
	}
}

func TestBalancedTree(t *testing.T) {
	db := engine.NewDB()
	BalancedTree(db, 3)
	// Complete binary tree of depth 3: 2+4+8 = 14 edges each way.
	if db.Count("up") != 14 || db.Count("down") != 14 {
		t.Errorf("up=%d down=%d", db.Count("up"), db.Count("down"))
	}
	if db.Count("flat") != 2 { // root children, both directions
		t.Errorf("flat=%d", db.Count("flat"))
	}
}

func TestListHelpers(t *testing.T) {
	if got := ListTerm(3).String(); got != "[x1,x2,x3]" {
		t.Errorf("ListTerm = %s", got)
	}
	db := engine.NewDB()
	PFacts(db, 10, 2)
	if db.Count("p") != 5 {
		t.Errorf("|p| = %d", db.Count("p"))
	}
	db2 := engine.NewDB()
	PFacts(db2, 10, 0) // clamps to every=1
	if db2.Count("p") != 10 {
		t.Errorf("|p| = %d", db2.Count("p"))
	}
	if len(ListConsts(4)) != 4 || ListConsts(4)[3] != "x4" {
		t.Error("ListConsts wrong")
	}
}

func TestExample43Regular(t *testing.T) {
	db := engine.NewDB()
	Example43Regular(db, 10)
	if db.Count("e") != 9 || db.Count("r1") != 9 || db.Count("l1") == 0 {
		t.Errorf("counts: e=%d r1=%d l1=%d", db.Count("e"), db.Count("r1"), db.Count("l1"))
	}
}

func TestMultiColumnChain(t *testing.T) {
	db := engine.NewDB()
	MultiColumnChain(db, 6)
	if db.Count("a") != 5 || db.Count("b") != 5 || db.Count("e") != 6 {
		t.Errorf("counts wrong: a=%d b=%d e=%d", db.Count("a"), db.Count("b"), db.Count("e"))
	}
}

func TestSection64(t *testing.T) {
	db := engine.NewDB()
	Section64(db, 5)
	if db.Count("first1") != 4 || db.Count("exit") != 5 || db.Count("right1") != 5 {
		t.Errorf("counts wrong")
	}
}

func TestLayeredJoins(t *testing.T) {
	db := engine.NewDB()
	LayeredJoins(db, 3, 10, 1)
	for k := 0; k <= 3; k++ {
		pred := "s" + string(rune('0'+k))
		if db.Count(pred) != 10 {
			t.Errorf("|%s| = %d, want 10", pred, db.Count(pred))
		}
	}
	// fanout multiplies rows per key.
	db2 := engine.NewDB()
	LayeredJoins(db2, 1, 10, 3)
	if db2.Count("s0") != 30 {
		t.Errorf("|s0| with fanout 3 = %d, want 30", db2.Count("s0"))
	}

	prog := LayeredJoinProgram(3)
	for _, want := range []string{
		"t1(X, Z) :- s0(X, Y), s1(Y, Z).",
		"t3(X, Z) :- t2(X, Y), s3(Y, Z).",
	} {
		if !strings.Contains(prog, want) {
			t.Errorf("program missing %q:\n%s", want, prog)
		}
	}
	if q := LayeredJoinQuery(3).String(); q != "t3(X,Z)" {
		t.Errorf("query = %s", q)
	}
}

func TestWidePairs(t *testing.T) {
	db := engine.NewDB()
	WidePairs(db, "wide", 100, 10)
	if db.Count("wide") != 100 {
		t.Errorf("|wide| = %d", db.Count("wide"))
	}
	// keys clamps to 1: all rows share the key, still distinct on col1.
	db2 := engine.NewDB()
	WidePairs(db2, "wide", 50, 0)
	if db2.Count("wide") != 50 {
		t.Errorf("|wide| = %d", db2.Count("wide"))
	}
}

func TestProduct(t *testing.T) {
	db := engine.NewDB()
	Product(db, 4, 3)
	if db.Count("b") != 3 || db.Count("d") != 3 || db.Count("e") != 12 {
		t.Errorf("counts: b=%d d=%d e=%d", db.Count("b"), db.Count("d"), db.Count("e"))
	}
}
