// Package workload generates the extensional databases used by the
// experiments and benchmarks: chains, cycles, layered graphs, random
// digraphs, grids, balanced trees (for same generation), lists (for
// pmem), the multi-column chain data of the separable-recursion
// experiments, and the layered non-recursive join family that drives the
// streaming-executor and mutation comparisons (LayeredJoinProgram /
// LayeredJoins, with fanout as the join-selectivity knob). All generators
// are deterministic given their parameters (random ones take an explicit
// seed), which is what lets the differential and chaos suites reproduce a
// failure from its printed arguments alone.
package workload
