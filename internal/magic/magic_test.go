package magic

import (
	"strings"
	"testing"

	"factorlog/internal/adorn"
	"factorlog/internal/engine"
	"factorlog/internal/parser"
)

func tc3() string {
	return `
		t(X, Y) :- t(X, W), t(W, Y).
		t(X, Y) :- e(X, W), t(W, Y).
		t(X, Y) :- t(X, W), e(W, Y).
		t(X, Y) :- e(X, Y).
	`
}

// TestMagicFig1Golden checks the transformation reproduces Fig. 1 of the
// paper exactly (modulo predicate spelling: t_bf for t^bf).
func TestMagicFig1Golden(t *testing.T) {
	p := parser.MustParseProgram(tc3())
	res, err := FromQuery(p, parser.MustParseAtom("t(5, Y)"))
	if err != nil {
		t.Fatal(err)
	}
	want := parser.MustParseProgram(`
		m_t_bf(5).
		m_t_bf(W) :- m_t_bf(X), t_bf(X, W).
		m_t_bf(W) :- m_t_bf(X), e(X, W).
		t_bf(X, Y) :- m_t_bf(X), t_bf(X, W), t_bf(W, Y).
		t_bf(X, Y) :- m_t_bf(X), e(X, W), t_bf(W, Y).
		t_bf(X, Y) :- m_t_bf(X), t_bf(X, W), e(W, Y).
		t_bf(X, Y) :- m_t_bf(X), e(X, Y).
		query(Y) :- t_bf(5, Y).
	`)
	if res.Program.Canonical() != want.Canonical() {
		t.Errorf("magic program:\n%s\nwant:\n%s", res.Program, want)
	}
	if res.Seed.String() != "m_t_bf(5)." {
		t.Errorf("seed = %s", res.Seed)
	}
	if res.Query.String() != "query(Y)" {
		t.Errorf("query = %s", res.Query)
	}
}

// TestMagicPmemGolden checks the pmem Magic program of Example 4.6.
func TestMagicPmemGolden(t *testing.T) {
	p := parser.MustParseProgram(`
		pmem(X, [X|T]) :- p(X).
		pmem(X, [H|T]) :- pmem(X, T).
	`)
	res, err := FromQuery(p, parser.MustParseAtom("pmem(X, [x1, x2, x3])"))
	if err != nil {
		t.Fatal(err)
	}
	want := parser.MustParseProgram(`
		m_pmem_fb([x1, x2, x3]).
		m_pmem_fb(T) :- m_pmem_fb([H|T]).
		pmem_fb(X, [X|T]) :- m_pmem_fb([X|T]), p(X).
		pmem_fb(X, [H|T]) :- m_pmem_fb([H|T]), pmem_fb(X, T).
		query(X) :- pmem_fb(X, [x1, x2, x3]).
	`)
	if res.Program.Canonical() != want.Canonical() {
		t.Errorf("pmem magic program:\n%s\nwant:\n%s", res.Program, want)
	}
}

func chainDB(n int) *engine.DB {
	db := engine.NewDB()
	for i := 1; i < n; i++ {
		db.MustInsert("e", db.Store.Int(i), db.Store.Int(i+1))
	}
	return db
}

// TestMagicCorrectness: the magic program computes exactly the answers of
// the original on the query, while restricting computation.
func TestMagicCorrectness(t *testing.T) {
	orig := parser.MustParseProgram(tc3())
	res, err := FromQuery(orig, parser.MustParseAtom("t(50, Y)"))
	if err != nil {
		t.Fatal(err)
	}

	dbO := chainDB(100)
	if _, err := engine.Eval(orig, dbO, engine.Options{}); err != nil {
		t.Fatal(err)
	}
	wantSet, err := engine.AnswerSet(dbO, parser.MustParseAtom("t(50, Y)"))
	if err != nil {
		t.Fatal(err)
	}

	dbM := chainDB(100)
	rm, err := engine.Eval(res.Program, dbM, engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	gotSet, err := engine.AnswerSet(dbM, parser.MustParseAtom("query(Y)"))
	if err != nil {
		t.Fatal(err)
	}

	// Answers: query(Y) tuples are the Y with t(50,Y); compare sizes and
	// membership modulo the projection.
	if len(gotSet) != len(wantSet) {
		t.Errorf("answers: magic %d vs original %d", len(gotSet), len(wantSet))
	}
	for y := range gotSet {
		// y is "(k)"; want "(50,k)"
		k := strings.TrimSuffix(strings.TrimPrefix(y, "("), ")")
		if !wantSet["(50,"+k+")"] {
			t.Errorf("spurious answer %s", y)
		}
	}

	// Magic must restrict the computation: far fewer t facts than full TC.
	if dbM.Count("t_bf") >= dbO.Count("t") {
		t.Errorf("magic computed %d t_bf facts vs %d t facts — no restriction",
			dbM.Count("t_bf"), dbO.Count("t"))
	}
	if rm.Stats.Derived == 0 {
		t.Error("no facts derived")
	}
}

// TestMagicPmemEvaluates: the pmem magic program terminates bottom-up and
// computes the right members.
func TestMagicPmemEvaluates(t *testing.T) {
	p := parser.MustParseProgram(`
		pmem(X, [X|T]) :- p(X).
		pmem(X, [H|T]) :- pmem(X, T).
	`)
	res, err := FromQuery(p, parser.MustParseAtom("pmem(X, [x1, x2, x3, x4])"))
	if err != nil {
		t.Fatal(err)
	}
	db := engine.NewDB()
	db.MustInsert("p", db.Store.Const("x2"))
	db.MustInsert("p", db.Store.Const("x4"))
	if _, err := engine.Eval(res.Program, db, engine.Options{}); err != nil {
		t.Fatal(err)
	}
	set, err := engine.AnswerSet(db, res.Query)
	if err != nil {
		t.Fatal(err)
	}
	if len(set) != 2 || !set["(x2)"] || !set["(x4)"] {
		t.Errorf("members = %v", set)
	}
	// m_pmem_fb holds all suffixes: n+1 facts.
	if got := db.Count("m_pmem_fb"); got != 5 {
		t.Errorf("|m_pmem_fb| = %d, want 5", got)
	}
}

func TestMagicMultiplePredicates(t *testing.T) {
	p := parser.MustParseProgram(`
		path(X, Y) :- e(X, Y).
		path(X, Y) :- e(X, W), path(W, Y).
		twohop(X, Y) :- path(X, W), path(W, Y).
	`)
	res, err := FromQuery(p, parser.MustParseAtom("twohop(1, Y)"))
	if err != nil {
		t.Fatal(err)
	}
	db := chainDB(10)
	if _, err := engine.Eval(res.Program, db, engine.Options{}); err != nil {
		t.Fatal(err)
	}
	set, err := engine.AnswerSet(db, res.Query)
	if err != nil {
		t.Fatal(err)
	}
	if len(set) != 8 { // 3..10 reachable in >= 2 hops from 1
		t.Errorf("twohop answers = %v", set)
	}
}

func TestMagicAllBoundQuery(t *testing.T) {
	p := parser.MustParseProgram(`
		t(X, Y) :- e(X, Y).
		t(X, Y) :- e(X, W), t(W, Y).
	`)
	res, err := FromQuery(p, parser.MustParseAtom("t(1, 5)"))
	if err != nil {
		t.Fatal(err)
	}
	if res.Query.Arity() != 0 {
		t.Errorf("all-bound query head should have arity 0: %s", res.Query)
	}
	db := chainDB(10)
	if _, err := engine.Eval(res.Program, db, engine.Options{}); err != nil {
		t.Fatal(err)
	}
	if db.Count(QueryPred) != 1 {
		t.Error("t(1,5) should hold on the chain")
	}
	// False query.
	res2, err := FromQuery(p, parser.MustParseAtom("t(5, 1)"))
	if err != nil {
		t.Fatal(err)
	}
	db2 := chainDB(10)
	if _, err := engine.Eval(res2.Program, db2, engine.Options{}); err != nil {
		t.Fatal(err)
	}
	if db2.Count(QueryPred) != 0 {
		t.Error("t(5,1) should not hold on the chain")
	}
}

func TestMagicNonGroundBoundArg(t *testing.T) {
	p := parser.MustParseProgram(`t(X, Y) :- e(X, Y).`)
	ad, err := adorn.Adorn(p, parser.MustParseAtom("t(5, Y)"))
	if err != nil {
		t.Fatal(err)
	}
	// Sabotage: pretend the query had a variable in a bound slot.
	ad.Query.Args[0] = parser.MustParseTerm("Z")
	if _, err := Transform(ad); err == nil {
		t.Error("non-ground bound argument should be rejected")
	}
}

func TestMagicSkipsTautologies(t *testing.T) {
	p := parser.MustParseProgram(tc3())
	res, err := FromQuery(p, parser.MustParseAtom("t(5, Y)"))
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res.Program.Rules {
		if len(r.Body) == 1 && r.Head.Equal(r.Body[0]) {
			t.Errorf("tautological magic rule survived: %s", r)
		}
	}
}
