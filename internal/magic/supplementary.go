package magic

import (
	"fmt"

	"factorlog/internal/adorn"
	"factorlog/internal/ast"
)

// Supplementary magic sets (Beeri & Ramakrishnan, "On the power of magic"
// — the paper's citation [3]). Plain magic re-joins the prefix of a rule
// body once per magic rule derived from it; the supplementary variant
// materializes each prefix join exactly once in sup_<rule>_<j> predicates
// that carry only the variables still needed downstream.
//
// For a rule  p(t) :- s0, q1, s1, q2, s2  (qi the IDB occurrences, si EDB
// segments) the transformation emits
//
//	sup_r_0(L0)  :- m_p(tb), s0.
//	m_q1(b1)     :- sup_r_0(L0).
//	sup_r_1(L1)  :- sup_r_0(L0), q1, s1.
//	m_q2(b2)     :- sup_r_1(L1).
//	p(t)         :- sup_r_1(L1), q2, s2.
//
// where Lj are the live variables: bound by the prefix and used by the
// suffix or the head. Rules without IDB body occurrences are guarded
// directly, as in plain magic.

// TransformSupplementary applies the supplementary-magic transformation to
// an adorned program. The result computes the same query answers as
// Transform's output for every EDB.
func TransformSupplementary(ad *adorn.Result) (*Result, error) {
	idb := ad.Program.IDBPreds()

	qBase, qAd, ok := ast.SplitAdorned(ad.Query.Pred)
	if !ok {
		return nil, fmt.Errorf("query predicate %s is not adorned", ad.Query.Pred)
	}
	_ = qBase
	seedAtom := ast.MagicAtom(ad.Query, qAd)
	if !seedAtom.Ground() {
		return nil, fmt.Errorf("bound arguments of query %s are not ground", ad.Query)
	}
	out := ast.NewProgram(ast.Fact(seedAtom))

	for ri, r := range ad.Program.Rules {
		headAd, err := adornmentOfPred(r.Head.Pred)
		if err != nil {
			return nil, err
		}
		guard := ast.MagicAtom(r.Head, headAd)

		occs := r.BodyIndices(func(a ast.Atom) bool { return idb[a.Pred] })
		if len(occs) == 0 {
			body := append([]ast.Atom{guard}, r.Body...)
			out.Add(ast.Rule{Head: r.Head.Clone(), Body: body})
			continue
		}

		// liveAfter[i] = variables used by literals i.. or the head.
		liveAfter := make([]map[string]bool, len(r.Body)+1)
		liveAfter[len(r.Body)] = varSet(r.Head.Vars())
		for i := len(r.Body) - 1; i >= 0; i-- {
			s := copySet(liveAfter[i+1])
			for _, v := range r.Body[i].Vars() {
				s[v] = true
			}
			liveAfter[i] = s
		}

		supName := func(j int) string {
			return fmt.Sprintf("sup_%d_%d_%s", ri+1, j, r.Head.Pred)
		}
		// supAtom(j, boundVars): the sup_j literal over the live subset of
		// boundVars at the start of segment j+1.
		supAtom := func(j int, bound map[string]bool, nextLit int) ast.Atom {
			var args []ast.Term
			for _, v := range orderedVars(r, bound) {
				if liveAfter[nextLit][v] {
					args = append(args, ast.V(v))
				}
			}
			return ast.Atom{Pred: supName(j), Args: args}
		}

		bound := varSet(nil)
		for _, t := range guard.Args {
			for _, v := range t.Vars() {
				bound[v] = true
			}
		}

		// sup_0: guard + segment before the first occurrence.
		prevEnd := occs[0]
		body0 := append([]ast.Atom{guard}, r.Body[:prevEnd]...)
		for _, a := range r.Body[:prevEnd] {
			for _, v := range a.Vars() {
				bound[v] = true
			}
		}
		prevSup := supAtom(0, bound, prevEnd)
		out.Add(ast.Rule{Head: prevSup, Body: body0})

		for j, occIdx := range occs {
			occ := r.Body[occIdx]
			occAd, err := adornmentOfPred(occ.Pred)
			if err != nil {
				return nil, err
			}
			// Magic rule for this occurrence, from the previous sup.
			out.Add(ast.Rule{
				Head: ast.MagicAtom(occ, occAd),
				Body: []ast.Atom{prevSup.Clone()},
			})
			// Segment after this occurrence, up to the next one (or end).
			segEnd := len(r.Body)
			if j+1 < len(occs) {
				segEnd = occs[j+1]
			}
			for _, v := range occ.Vars() {
				bound[v] = true
			}
			for _, a := range r.Body[occIdx+1 : segEnd] {
				for _, v := range a.Vars() {
					bound[v] = true
				}
			}
			body := []ast.Atom{prevSup.Clone(), occ.Clone()}
			body = append(body, r.Body[occIdx+1:segEnd]...)
			if j+1 < len(occs) {
				next := supAtom(j+1, bound, segEnd)
				out.Add(ast.Rule{Head: next, Body: body})
				prevSup = next
			} else {
				out.Add(ast.Rule{Head: r.Head.Clone(), Body: body})
			}
		}
	}

	// Query rule.
	free := qAd.Free()
	qArgs := make([]ast.Term, 0, len(free))
	for _, pos := range free {
		qArgs = append(qArgs, ad.Query.Args[pos])
	}
	qHead := ast.Atom{Pred: QueryPred, Args: qArgs}
	out.Add(ast.Rule{Head: qHead, Body: []ast.Atom{ad.Query.Clone()}})

	return &Result{Program: out, Query: qHead, Seed: ast.Fact(seedAtom), Adorned: ad}, nil
}

func varSet(vars []string) map[string]bool {
	s := map[string]bool{}
	for _, v := range vars {
		s[v] = true
	}
	return s
}

func copySet(s map[string]bool) map[string]bool {
	out := make(map[string]bool, len(s))
	for k, v := range s {
		out[k] = v
	}
	return out
}

// orderedVars returns the rule's variables that are in set, in the rule's
// first-occurrence order (deterministic sup signatures).
func orderedVars(r ast.Rule, set map[string]bool) []string {
	var out []string
	for _, v := range r.Vars() {
		if set[v] {
			out = append(out, v)
		}
	}
	return out
}
