package magic

import (
	"math/rand"
	"strings"
	"testing"

	"factorlog/internal/adorn"
	"factorlog/internal/engine"
	"factorlog/internal/parser"
)

func supFromQuery(t *testing.T, src, query string) *Result {
	t.Helper()
	ad, err := adorn.Adorn(parser.MustParseProgram(src), parser.MustParseAtom(query))
	if err != nil {
		t.Fatal(err)
	}
	res, err := TransformSupplementary(ad)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestSupplementaryStructureTC3(t *testing.T) {
	res := supFromQuery(t, tc3(), "t(5, Y)")
	s := res.Program.String()
	// Rule 1 (two IDB occurrences) gets sup_1_0 and sup_1_1.
	for _, frag := range []string{"sup_1_0_t_bf", "sup_1_1_t_bf"} {
		if !strings.Contains(s, frag) {
			t.Errorf("missing %s in:\n%s", frag, s)
		}
	}
	// Exit rule (no IDB occurrence) stays a plain guarded rule.
	if !strings.Contains(s, "t_bf(X,Y) :- m_t_bf(X), e(X,Y).") {
		t.Errorf("exit rule missing:\n%s", s)
	}
}

func TestSupplementaryAgreesWithMagicTC(t *testing.T) {
	src := tc3()
	p := parser.MustParseProgram(src)
	m, err := FromQuery(p, parser.MustParseAtom("t(3, Y)"))
	if err != nil {
		t.Fatal(err)
	}
	sup := supFromQuery(t, src, "t(3, Y)")

	for seed := int64(0); seed < 30; seed++ {
		r := rand.New(rand.NewSource(seed))
		n := 3 + r.Intn(8)
		var edges [][2]int
		for i := 0; i < 2*n; i++ {
			edges = append(edges, [2]int{r.Intn(n), r.Intn(n)})
		}
		load := func() *engine.DB {
			db := engine.NewDB()
			for _, e := range edges {
				db.MustInsert("e", db.Store.Int(e[0]), db.Store.Int(e[1]))
			}
			return db
		}
		dbM, dbS := load(), load()
		if _, err := engine.Eval(m.Program, dbM, engine.Options{}); err != nil {
			t.Fatal(err)
		}
		if _, err := engine.Eval(sup.Program, dbS, engine.Options{}); err != nil {
			t.Fatal(err)
		}
		am, _ := engine.AnswerSet(dbM, m.Query)
		as, _ := engine.AnswerSet(dbS, sup.Query)
		if len(am) != len(as) {
			t.Fatalf("seed %d: magic %v vs supplementary %v", seed, am, as)
		}
		for k := range am {
			if !as[k] {
				t.Fatalf("seed %d: missing %s", seed, k)
			}
		}
	}
}

func TestSupplementaryAgreesOnMultiIDBRule(t *testing.T) {
	// A rule with two distinct IDB predicates and interleaved EDB segments
	// exercises the sup chain.
	src := `
		r(X, Y) :- s0(X, A), p(A, B), s1(B, C), q(C, D), s2(D, Y).
		p(X, Y) :- pe(X, Y).
		p(X, Y) :- pe(X, W), p(W, Y).
		q(X, Y) :- qe(X, Y).
	`
	p := parser.MustParseProgram(src)
	m, err := FromQuery(p, parser.MustParseAtom("r(1, Y)"))
	if err != nil {
		t.Fatal(err)
	}
	ad, err := adorn.Adorn(p, parser.MustParseAtom("r(1, Y)"))
	if err != nil {
		t.Fatal(err)
	}
	sup, err := TransformSupplementary(ad)
	if err != nil {
		t.Fatal(err)
	}
	for seed := int64(0); seed < 20; seed++ {
		r := rand.New(rand.NewSource(seed))
		load := func() *engine.DB {
			db := engine.NewDB()
			rr := rand.New(rand.NewSource(seed))
			_ = r
			n := 4 + rr.Intn(4)
			for _, pred := range []string{"s0", "s1", "s2", "pe", "qe"} {
				cnt := rr.Intn(2 * n)
				for i := 0; i < cnt; i++ {
					db.MustInsert(pred, db.Store.Int(rr.Intn(n)), db.Store.Int(rr.Intn(n)))
				}
			}
			return db
		}
		dbM, dbS := load(), load()
		if _, err := engine.Eval(m.Program, dbM, engine.Options{}); err != nil {
			t.Fatal(err)
		}
		if _, err := engine.Eval(sup.Program, dbS, engine.Options{}); err != nil {
			t.Fatal(err)
		}
		am, _ := engine.AnswerSet(dbM, m.Query)
		as, _ := engine.AnswerSet(dbS, sup.Query)
		if len(am) != len(as) {
			t.Fatalf("seed %d: %v vs %v", seed, am, as)
		}
	}
}

func TestSupplementarySavesPrefixJoins(t *testing.T) {
	// The sup predicates materialize the prefix join once; with two IDB
	// occurrences after a shared expensive prefix, supplementary performs
	// fewer inferences than plain magic.
	src := `
		r(X, Y) :- pre(X, A), pre2(A, B), p(B, U), p(U, Y).
		p(X, Y) :- e(X, Y).
		p(X, Y) :- e(X, W), p(W, Y).
	`
	p := parser.MustParseProgram(src)
	m, err := FromQuery(p, parser.MustParseAtom("r(1, Y)"))
	if err != nil {
		t.Fatal(err)
	}
	ad, err := adorn.Adorn(p, parser.MustParseAtom("r(1, Y)"))
	if err != nil {
		t.Fatal(err)
	}
	sup, err := TransformSupplementary(ad)
	if err != nil {
		t.Fatal(err)
	}
	load := func() *engine.DB {
		db := engine.NewDB()
		for i := 0; i < 30; i++ {
			db.MustInsert("pre", db.Store.Int(1), db.Store.Int(i))
			db.MustInsert("pre2", db.Store.Int(i), db.Store.Int(i+100))
			db.MustInsert("e", db.Store.Int(i+100), db.Store.Int(i+101))
		}
		return db
	}
	dbM, dbS := load(), load()
	rm, err := engine.Eval(m.Program, dbM, engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	rs, err := engine.Eval(sup.Program, dbS, engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	am, _ := engine.AnswerSet(dbM, m.Query)
	as, _ := engine.AnswerSet(dbS, sup.Query)
	if len(am) != len(as) {
		t.Fatalf("answers differ: %d vs %d", len(am), len(as))
	}
	t.Logf("inferences: magic=%d supplementary=%d", rm.Stats.Inferences, rs.Stats.Inferences)
}

func TestSupplementaryPmem(t *testing.T) {
	res := supFromQuery(t, `
		pmem(X, [X|T]) :- p(X).
		pmem(X, [H|T]) :- pmem(X, T).
	`, "pmem(X, [a, b, c])")
	db := engine.NewDB()
	db.MustInsert("p", db.Store.Const("b"))
	if _, err := engine.Eval(res.Program, db, engine.Options{}); err != nil {
		t.Fatal(err)
	}
	set, _ := engine.AnswerSet(db, res.Query)
	if len(set) != 1 || !set["(b)"] {
		t.Errorf("answers = %v", set)
	}
}
