// Package experiments implements the reproduction experiments E1-E15
// catalogued in DESIGN.md and EXPERIMENTS.md: one per figure, worked
// example, or complexity claim of the paper. Each experiment produces a
// text table; cmd/factorbench prints them and the repository-root
// benchmarks exercise the same code under testing.B.
package experiments

import (
	"fmt"
	"sort"
	"strings"
)

// Table is one experiment's output.
type Table struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// AddRow appends a row, stringifying the cells.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		row[i] = fmt.Sprint(c)
	}
	t.Rows = append(t.Rows, row)
}

// AddNote appends a free-form note printed under the table.
func (t *Table) AddNote(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// Render formats the table with aligned columns.
func (t *Table) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.Header)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// Experiment pairs an ID with a runner.
type Experiment struct {
	ID    string
	Title string
	Run   func() (*Table, error)
}

var registry []Experiment

func register(e Experiment) { registry = append(registry, e) }

// All returns every experiment, sorted by ID.
func All() []Experiment {
	out := append([]Experiment(nil), registry...)
	sort.Slice(out, func(i, j int) bool {
		// E1 < E2 < ... < E10 < E11: compare numerically.
		return expNum(out[i].ID) < expNum(out[j].ID)
	})
	return out
}

func expNum(id string) int {
	n := 0
	fmt.Sscanf(id, "E%d", &n)
	return n
}

// ByID finds an experiment.
func ByID(id string) (Experiment, bool) {
	for _, e := range registry {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}
