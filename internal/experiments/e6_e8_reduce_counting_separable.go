package experiments

import (
	"errors"
	"fmt"

	"factorlog/internal/adorn"
	"factorlog/internal/ast"
	"factorlog/internal/core"
	"factorlog/internal/counting"
	"factorlog/internal/engine"
	"factorlog/internal/magic"
	"factorlog/internal/optimize"
	"factorlog/internal/parser"
	"factorlog/internal/pipeline"
	"factorlog/internal/reduce"
	"factorlog/internal/separable"
	"factorlog/internal/workload"
)

func init() {
	register(Experiment{ID: "E6", Title: "static-argument reduction: Examples 5.1-5.2 (Lemmas 5.1-5.2)", Run: runE6})
	register(Experiment{ID: "E7", Title: "Counting vs factoring: Theorem 6.4, divergence cases (§6.4)", Run: runE7})
	register(Experiment{ID: "E8", Title: "separable & one-sided recursions: Theorems 6.2-6.3 (§6.1-6.2)", Run: runE8})
}

func runE6() (*Table, error) {
	t := &Table{
		ID:     "E6",
		Title:  "reduction turns uncovered programs factorable",
		Header: []string{"program", "before", "after reduction"},
	}
	cases := []struct {
		name, src, query string
	}{
		{"Example 5.1", `
			p(X, Y, Z) :- a(X), p(X, Y, W), d(W, U), p(X, U, Z).
			p(X, Y, Z) :- exit(X, Y, Z).
		`, "p(5, 6, U)"},
		{"Example 5.2 (pseudo-left-linear)", `
			p(X, Y, Z) :- p(X, Y, W), d(W, X, Z).
			p(X, Y, Z) :- exit(X, Y, Z).
		`, "p(5, 6, U)"},
	}
	for _, c := range cases {
		p := parser.MustParseProgram(c.src)
		query := parser.MustParseAtom(c.query)
		before, err := classVerdictProgram(p, query)
		if err != nil {
			return nil, err
		}
		red, rq, err := reduce.Reduce(p, query, 0)
		if err != nil {
			return nil, err
		}
		after, err := classVerdictProgram(red, rq)
		if err != nil {
			return nil, err
		}
		t.AddRow(c.name, before, after)
	}

	// Lemma 5.1 equivalence on a concrete EDB (Example 5.2's program).
	p := parser.MustParseProgram(cases[1].src)
	query := parser.MustParseAtom(cases[1].query)
	red, rq, err := reduce.Reduce(p, query, 0)
	if err != nil {
		return nil, err
	}
	load := func() *engine.DB {
		db := engine.NewDB()
		facts, _ := parser.Parse(`
			exit(5, 6, 1). exit(5, 7, 2).
			d(1, 5, 10). d(10, 5, 11). d(2, 5, 12).
		`)
		_ = engine.LoadFacts(db, facts.Facts)
		return db
	}
	dbO := load()
	if _, err := engine.Eval(p, dbO, engine.Options{}); err != nil {
		return nil, err
	}
	orig, _ := engine.AnswerSet(dbO, query)
	dbR := load()
	if _, err := engine.Eval(red, dbR, engine.Options{}); err != nil {
		return nil, err
	}
	reduced, _ := engine.AnswerSet(dbR, rq)
	t.AddRow("Lemma 5.1 answers (orig vs reduced)", len(orig), len(reduced))
	return t, nil
}

func classVerdictProgram(p *ast.Program, query ast.Atom) (string, error) {
	a, err := core.AnalyzeQuery(p, query)
	if err != nil {
		return "", err
	}
	return core.Classify(a).String(), nil
}

func runE7() (*Table, error) {
	t := &Table{
		ID:     "E7",
		Title:  "Counting transformation (§6.4)",
		Header: []string{"case", "result"},
	}
	ad, err := adorn.Adorn(parser.MustParseProgram(`
		p(X, Y) :- first1(X, U), p(U, Y), right1(Y).
		p(X, Y) :- first2(X, U), p(U, Y), right2(Y).
		p(X, Y) :- exit(X, Y).
	`), parser.MustParseAtom("p(1, Y)"))
	if err != nil {
		return nil, err
	}

	// Theorem 6.4: counting minus indices == factored+optimized magic.
	cnt, err := counting.Transform(ad)
	if err != nil {
		return nil, err
	}
	noIdx := counting.DeleteIndices(cnt.Program, cnt.CntPred, cnt.AnsPred)
	m, err := magic.Transform(ad)
	if err != nil {
		return nil, err
	}
	fr, err := core.ForceFactorMagic(m)
	if err != nil {
		return nil, err
	}
	opt, err := optimize.Optimize(fr.Program, optimize.ForFactored(fr, magic.QueryPred, m.Seed.Head.Args))
	if err != nil {
		return nil, err
	}
	_, iso := counting.FindRenaming(noIdx, opt.Program)
	t.AddRow("Theorem 6.4 isomorphism", iso)

	// Cost of index fields where both terminate. The J index encodes the
	// whole rule path, so counting materializes one goal per DERIVATION
	// PATH — Fibonacci-many on the interleaved first1/first2 chains —
	// while the factored program needs one goal per node. Keep n small.
	load := func() *engine.DB {
		db := engine.NewDB()
		workload.Section64(db, 16)
		return db
	}
	dbC := load()
	resC, err := engine.Eval(cnt.Program, dbC, engine.Options{MaxFacts: 2_000_000})
	if err != nil {
		return nil, err
	}
	dbF := load()
	resF, err := engine.Eval(opt.Program, dbF, engine.Options{})
	if err != nil {
		return nil, err
	}
	t.AddRow("counting facts (chain 16)", resC.Stats.Derived)
	t.AddRow("factored facts (chain 16)", resF.Stats.Derived)
	t.AddNote("index fields make counting's cost per-path (exponential here); factoring is per-node")

	// Divergence on left-linear rules.
	adLL, err := adorn.Adorn(parser.MustParseProgram(`
		t(X, Y) :- t(X, Z), e(Z, Y).
		t(X, Y) :- e(X, Y).
	`), parser.MustParseAtom("t(1, Y)"))
	if err != nil {
		return nil, err
	}
	_, err = counting.Transform(adLL)
	t.AddRow("left-linear rule detected", errors.Is(err, counting.ErrDiverges))
	forced, err := counting.Force(adLL)
	if err != nil {
		return nil, err
	}
	db := engine.NewDB()
	db.MustInsert("e", db.Store.Int(1), db.Store.Int(2))
	_, err = engine.Eval(forced.Program, db, engine.Options{MaxFacts: 1000})
	t.AddRow("forced left-linear counting diverges", errors.Is(err, engine.ErrBudgetExceeded))

	// Divergence on cyclic data even for right-linear programs.
	adRL, err := adorn.Adorn(parser.MustParseProgram(`
		t(X, Y) :- e(X, Z), t(Z, Y).
		t(X, Y) :- e(X, Y).
	`), parser.MustParseAtom("t(1, Y)"))
	if err != nil {
		return nil, err
	}
	cntRL, err := counting.Transform(adRL)
	if err != nil {
		return nil, err
	}
	dbCyc := engine.NewDB()
	workload.Cycle(dbCyc, "e", 4)
	_, err = engine.Eval(cntRL.Program, dbCyc, engine.Options{MaxFacts: 2000})
	t.AddRow("counting on cyclic EDB diverges", errors.Is(err, engine.ErrBudgetExceeded))
	return t, nil
}

func runE8() (*Table, error) {
	t := &Table{
		ID:     "E8",
		Title:  "separable / one-sided recursion detection and factoring",
		Header: []string{"case", "result"},
	}
	// Detection battery.
	sep := parser.MustParseProgram(`
		t(X, Y) :- t(X, W), b(W, Y).
		t(X, Y) :- a(X, Z), t(Z, Y).
		t(X, Y) :- e(X, Y).
	`)
	ok, _ := separable.IsSeparable(sep, "t")
	t.AddRow("two-column chain separable", ok)
	ok, _ = separable.IsReducible(sep, "t")
	t.AddRow("two-column chain reducible", ok)

	sg := parser.MustParseProgram(`
		sg(X, Y) :- up(X, U), sg(U, V), down(V, Y).
		sg(X, Y) :- flat(X, Y).
	`)
	ok, _ = separable.IsSeparable(sg, "sg")
	t.AddRow("same generation separable", ok)

	// One-sided via expansion.
	r := parser.MustParseProgram(`p(X, Y, Z) :- p(X, Z, W), e(W, Y).`).Rules[0]
	k, ok := separable.IsSimpleOneSided(r, "p", 4)
	t.AddRow("period-2 recursion one-sided (expansions)", fmt.Sprintf("%v (k=%d)", ok, k))

	// Theorem 6.3 pipeline: full selection on the reducible separable
	// recursion factors and the evaluation is arity-1.
	pl := pipeline.New(sep, parser.MustParseAtom("t(1, Y)"))
	load := func() *engine.DB {
		db := engine.NewDB()
		workload.MultiColumnChain(db, 50)
		return db
	}
	results, _, err := pl.Compare(
		[]pipeline.Strategy{pipeline.SemiNaive, pipeline.Magic, pipeline.FactoredOptimized},
		load, engine.Options{})
	if err != nil {
		return nil, err
	}
	for _, r := range results {
		t.AddRow(fmt.Sprintf("%s facts / arity", r.Strategy),
			fmt.Sprintf("%d / %d", r.Facts, r.MaxIDBArity))
	}
	class, err := pl.FactoredProgram()
	if err != nil {
		return nil, err
	}
	t.AddRow("class used", class.Class)
	return t, nil
}
