package experiments

import (
	"factorlog/internal/core"
	"factorlog/internal/magic"
	"factorlog/internal/optimize"
	"factorlog/internal/parser"
)

func init() {
	register(Experiment{ID: "E15", Title: "deletion order (§7.4's open question): forward vs reverse scans", Run: runE15})
}

// runE15 probes the paper's Section 7.4 question — "does the order in which
// [rule and literal deletions] are applied to a program affect the final
// result?" — by running the optimizer with the uniform-equivalence scan in
// both directions over the factorable example programs and comparing the
// final programs as rule sets.
func runE15() (*Table, error) {
	t := &Table{
		ID:     "E15",
		Title:  "optimizer scan order: forward vs reverse uniform-equivalence deletion",
		Header: []string{"program", "rules fwd", "rules rev", "identical"},
	}
	cases := []struct {
		name, src, query string
	}{
		{"three-rule TC (Ex. 5.3)", `
			t(X, Y) :- t(X, W), t(W, Y).
			t(X, Y) :- e(X, W), t(W, Y).
			t(X, Y) :- t(X, W), e(W, Y).
			t(X, Y) :- e(X, Y).
		`, "t(5, Y)"},
		{"pmem (Ex. 4.6)", `
			pmem(X, [X|T]) :- p(X).
			pmem(X, [H|T]) :- pmem(X, T).
		`, "pmem(X, [x1, x2, x3])"},
		{"Example 4.3", `
			p(X, Y) :- l1(X), p(X, U), c1(U, V), p(V, Y), r1(Y).
			p(X, Y) :- l2(X), p(X, U), c2(U, V), p(V, Y), r2(Y).
			p(X, Y) :- f(X, V), p(V, Y), r3(Y).
			p(X, Y) :- e(X, Y).
		`, "p(5, Y)"},
		{"two-column separable (Thm. 6.3)", `
			t(X, Y) :- t(X, W), b(W, Y).
			t(X, Y) :- a(X, Z), t(Z, Y).
			t(X, Y) :- e(X, Y).
		`, "t(1, Y)"},
		{"redundant 2-step rule", `
			t(X, Y) :- e(X, Y).
			t(X, Y) :- e(X, W), t(W, Y).
			t(X, Y) :- e(X, W), e(W, V), t(V, Y).
		`, "t(1, Y)"},
	}
	allSame := true
	for _, c := range cases {
		p := parser.MustParseProgram(c.src)
		m, err := magic.FromQuery(p, parser.MustParseAtom(c.query))
		if err != nil {
			return nil, err
		}
		fr, err := core.ForceFactorMagic(m)
		if err != nil {
			return nil, err
		}
		base := optimize.ForFactored(fr, magic.QueryPred, m.Seed.Head.Args)
		fwdOpts, revOpts := base, base
		revOpts.ReverseUniform = true
		fwd, err := optimize.Optimize(fr.Program, fwdOpts)
		if err != nil {
			return nil, err
		}
		rev, err := optimize.Optimize(fr.Program, revOpts)
		if err != nil {
			return nil, err
		}
		same := fwd.Program.Canonical() == rev.Program.Canonical()
		if !same {
			allSame = false
		}
		t.AddRow(c.name, len(fwd.Program.Rules), len(rev.Program.Rules), same)
	}
	if allSame {
		t.AddNote("on these programs the final result is order-independent; " +
			"mutually-derivable rule pairs (where order would matter) do not survive the earlier passes")
	} else {
		t.AddNote("order dependence observed: §7.4's caution is warranted")
	}
	return t, nil
}
