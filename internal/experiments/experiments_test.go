package experiments

import (
	"strings"
	"testing"
)

func TestRegistryComplete(t *testing.T) {
	want := []string{"E1", "E1b", "E2", "E3", "E4", "E5", "E6", "E7", "E8", "E9", "E10", "E11", "E12", "E13", "E14", "E15"}
	for _, id := range want {
		if _, ok := ByID(id); !ok {
			t.Errorf("experiment %s not registered", id)
		}
	}
	if len(All()) != len(want) {
		t.Errorf("registry has %d experiments, want %d", len(All()), len(want))
	}
	if _, ok := ByID("E99"); ok {
		t.Error("phantom experiment found")
	}
}

func TestAllOrdering(t *testing.T) {
	ids := []string{}
	for _, e := range All() {
		ids = append(ids, e.ID)
	}
	if ids[0] != "E1" {
		t.Errorf("order = %v", ids)
	}
	// E10 must come after E9.
	i9, i10 := -1, -1
	for i, id := range ids {
		if id == "E9" {
			i9 = i
		}
		if id == "E10" {
			i10 = i
		}
	}
	if i9 > i10 {
		t.Errorf("E9 after E10: %v", ids)
	}
}

// TestRunAllExperiments executes every experiment end to end and applies
// per-experiment sanity assertions. This is the integration test for the
// whole reproduction.
func TestRunAllExperiments(t *testing.T) {
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			tbl, err := e.Run()
			if err != nil {
				t.Fatalf("%s: %v", e.ID, err)
			}
			if len(tbl.Rows) == 0 {
				t.Fatalf("%s: empty table", e.ID)
			}
			out := tbl.Render()
			if !strings.Contains(out, e.ID+":") {
				t.Errorf("%s: render missing header:\n%s", e.ID, out)
			}
			check(t, e.ID, tbl)
		})
	}
}

// check applies experiment-specific assertions to the produced table.
func check(t *testing.T, id string, tbl *Table) {
	t.Helper()
	cell := func(rowPrefix string, col int) string {
		for _, row := range tbl.Rows {
			if strings.HasPrefix(row[0], rowPrefix) {
				return row[col]
			}
		}
		t.Fatalf("%s: no row with prefix %q in %v", id, rowPrefix, tbl.Rows)
		return ""
	}
	switch id {
	case "E1":
		joined := strings.Join(tbl.Notes, "\n")
		if !strings.Contains(joined, "Fig. 1 golden (magic program): true") {
			t.Errorf("Fig. 1 golden failed:\n%s", joined)
		}
		if !strings.Contains(joined, "Ex. 5.3 golden (final unary program): true") {
			t.Errorf("Ex. 5.3 golden failed:\n%s", joined)
		}
		if cell("factored+opt", 5) != "1" {
			t.Errorf("factored arity = %s", cell("factored+opt", 5))
		}
	case "E3":
		if cell("class without constraints", 1) != "unknown" {
			t.Error("E3 should not classify without constraints")
		}
		if cell("class with EDB constraints", 1) != "selection-pushing" {
			t.Errorf("E3 class = %s", cell("class with EDB constraints", 1))
		}
		if !strings.Contains(cell("violating EDB 1 spurious", 1), "(8)") {
			t.Errorf("E3 EDB1 spurious = %s", cell("violating EDB 1 spurious", 1))
		}
		if !strings.Contains(cell("violating EDB 2 spurious", 1), "(7)") {
			t.Errorf("E3 EDB2 spurious = %s", cell("violating EDB 2 spurious", 1))
		}
	case "E4":
		if cell("class with EDB constraints", 1) != "symmetric" {
			t.Errorf("E4 class = %s", cell("class with EDB constraints", 1))
		}
	case "E5":
		if cell("class with EDB constraints", 1) != "answer-propagating" {
			t.Errorf("E5 class = %s", cell("class with EDB constraints", 1))
		}
	case "E6":
		if cell("Example 5.1", 1) != "unknown" || cell("Example 5.1", 2) == "unknown" {
			t.Errorf("E6 Example 5.1: %s -> %s", cell("Example 5.1", 1), cell("Example 5.1", 2))
		}
		if cell("Lemma 5.1 answers", 1) != cell("Lemma 5.1 answers", 2) {
			t.Error("Lemma 5.1 equivalence failed")
		}
	case "E7":
		if cell("Theorem 6.4 isomorphism", 1) != "true" {
			t.Error("Theorem 6.4 isomorphism failed")
		}
		if cell("forced left-linear counting diverges", 1) != "true" {
			t.Error("left-linear divergence not observed")
		}
		if cell("counting on cyclic EDB diverges", 1) != "true" {
			t.Error("cyclic divergence not observed")
		}
	case "E8":
		if cell("two-column chain separable", 1) != "true" ||
			cell("same generation separable", 1) != "false" {
			t.Error("separable detection wrong")
		}
	case "E10":
		if cell("factoring rejected by class tests", 1) != "true" {
			t.Error("sg should be rejected")
		}
		if cell("refuter found counterexample", 1) != "true" {
			t.Error("sg refutation failed")
		}
	case "E11":
		if cell("split (X)|(Y,Z) refuted in general", 1) != "true" {
			t.Error("general split should be refuted")
		}
		if cell("split (X)|(Y,Z) with q1=q2 refuted", 1) != "false" {
			t.Error("q1=q2 split should survive refutation")
		}
	}
}

func TestTableRender(t *testing.T) {
	tbl := &Table{ID: "EX", Title: "demo", Header: []string{"a", "bb"}}
	tbl.AddRow("x", 12)
	tbl.AddNote("hello %d", 7)
	out := tbl.Render()
	for _, want := range []string{"EX: demo", "a ", "bb", "x", "12", "note: hello 7"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}
