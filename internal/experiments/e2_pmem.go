package experiments

import (
	"fmt"

	"factorlog/internal/ast"
	"factorlog/internal/engine"
	"factorlog/internal/parser"
	"factorlog/internal/pipeline"
	"factorlog/internal/topdown"
	"factorlog/internal/workload"
)

// pmemSrc is the list-filter program of Examples 1.2 / 4.6.
const pmemSrc = `
	pmem(X, [X|T]) :- p(X).
	pmem(X, [H|T]) :- pmem(X, T).
`

func init() {
	register(Experiment{ID: "E2", Title: "pmem list filter: Prolog O(n^2) vs factored O(n) (Ex. 1.2/4.6)", Run: runE2})
}

// E2Setup builds the pmem pipeline for a list of n elements with p marking
// every k-th member; shared with the benchmarks.
func E2Setup(n, every int) (*pipeline.Pipeline, func() *engine.DB) {
	p := parser.MustParseProgram(pmemSrc)
	query := ast.NewAtom("pmem", ast.V("X"), workload.ListTerm(n))
	pl := pipeline.New(p, query)
	return pl, func() *engine.DB {
		db := engine.NewDB()
		workload.PFacts(db, n, every)
		return db
	}
}

func runE2() (*Table, error) {
	t := &Table{
		ID:    "E2",
		Title: "pmem(X, [x1..xn]) with p marking all members",
		Header: []string{"n", "prolog-facts", "prolog-steps", "factored-facts",
			"factored-infer", "prolog/factored"},
	}
	for _, n := range []int{32, 64, 128, 256} {
		pl, load := E2Setup(n, 1)

		// Prolog baseline: IDB goal successes, the paper's O(n^2) count.
		td, err := topdown.Solve(pl.Program, load(), pl.Query, topdown.Options{})
		if err != nil {
			return nil, err
		}

		opt, err := pl.Run(pipeline.FactoredOptimized, load(), engine.Options{})
		if err != nil {
			return nil, err
		}
		if len(opt.Answers) != n {
			return nil, fmt.Errorf("n=%d: factored answered %d members", n, len(opt.Answers))
		}
		if len(td.Answers) != n {
			return nil, fmt.Errorf("n=%d: prolog answered %d members", n, len(td.Answers))
		}
		t.AddRow(n, td.Stats.IDBSuccesses, td.Stats.Steps, opt.Facts, opt.Inferences,
			fmt.Sprintf("%.1fx", float64(td.Stats.IDBSuccesses)/float64(opt.Facts)))
	}
	t.AddNote("prolog-facts = n(n+1)/2 (quadratic); factored-facts ~ 2n+1 (linear)")
	t.AddNote("structure sharing: each factored inference is O(1) in the list length")
	return t, nil
}
