package experiments

import (
	"fmt"

	"factorlog/internal/core"
	"factorlog/internal/engine"
	"factorlog/internal/magic"
	"factorlog/internal/parser"
	"factorlog/internal/pipeline"
	"factorlog/internal/workload"
)

const example43Src = `
	p(X, Y) :- l1(X), p(X, U), c1(U, V), p(V, Y), r1(Y).
	p(X, Y) :- l2(X), p(X, U), c2(U, V), p(V, Y), r2(Y).
	p(X, Y) :- f(X, V), p(V, Y), r3(Y).
	p(X, Y) :- e(X, Y).
`

const example43TGDs = `
	r1(Y) :- e(X, Y).
	r2(Y) :- e(X, Y).
	r3(Y) :- e(X, Y).
	l1(X) :- l2(X).
	l2(X) :- l1(X).
	l1(X) :- f(X, V).
`

const example44Src = `
	p(X, Y) :- l1(X), p(X, U), p(X, V), c(U, V, W), p(W, Y), r1(Y).
	p(X, Y) :- l2(X), p(X, U), p(X, V), c(U, V, W), p(W, Y), r2(Y).
	p(X, Y) :- e(X, Y).
`

const example44TGDs = `
	r1(Y) :- e(X, Y).
	r2(Y) :- e(X, Y).
`

const example45Src = `
	p(X, Y) :- l1(X), p(X, U), p(X, V), c(U, V, W), p(W, Y), r1(Y).
	p(X, Y) :- l2(X), p(X, U), p(X, V), c(U, V, W), p(W, Y), r2(Y).
	p(X, Y) :- f(X, V), p(V, Y), r3(Y).
	p(X, Y) :- e(X, Y).
`

const example45TGDs = `
	r1(Y) :- e(X, Y).
	r2(Y) :- e(X, Y).
	r3(Y) :- e(X, Y).
	l1(X) :- f(X, V).
	l2(X) :- f(X, V).
`

func init() {
	register(Experiment{ID: "E3", Title: "selection-pushing: Example 4.3, violations and spurious answers", Run: runE3})
	register(Experiment{ID: "E4", Title: "symmetric programs: Example 4.4", Run: runE4})
	register(Experiment{ID: "E5", Title: "answer-propagating programs: Example 4.5", Run: runE5})
}

func classVerdict(src, querySrc, tgds string) (string, error) {
	p := parser.MustParseProgram(src)
	a, err := core.AnalyzeQuery(p, parser.MustParseAtom(querySrc))
	if err != nil {
		return "", err
	}
	if tgds != "" {
		if _, err := a.WithConstraints(parser.MustParseProgram(tgds).Rules); err != nil {
			return "", err
		}
	}
	return core.Classify(a).String(), nil
}

func runE3() (*Table, error) {
	t := &Table{
		ID:     "E3",
		Title:  "Example 4.3: class verdicts and the paper's violating EDBs",
		Header: []string{"case", "result"},
	}
	v, err := classVerdict(example43Src, "p(5, Y)", "")
	if err != nil {
		return nil, err
	}
	t.AddRow("class without constraints", v)
	v, err = classVerdict(example43Src, "p(5, Y)", example43TGDs)
	if err != nil {
		return nil, err
	}
	t.AddRow("class with EDB constraints", v)

	// The paper's two violating EDBs.
	p := parser.MustParseProgram(example43Src)
	m, err := magic.FromQuery(p, parser.MustParseAtom("p(5, Y)"))
	if err != nil {
		return nil, err
	}
	split := core.Split{Pred: "p_bf", Left: []int{0}, Right: []int{1}, LeftName: "bp", RightName: "fp"}
	for i, edbSrc := range []string{
		`f(5, 1). e(5, 6). e(1, 7). e(2, 8). l1(1). c1(6, 2). r1(7). r1(8).`,
		`f(5, 1). e(5, 6). e(1, 7). l1(5). c1(6, 1).`,
	} {
		facts, err := parser.Parse(edbSrc)
		if err != nil {
			return nil, err
		}
		ce, err := core.CheckSplitOnEDB(m.Program, m.Query, split, facts.Facts, 0)
		if err != nil {
			return nil, err
		}
		if ce == nil {
			t.AddRow(fmt.Sprintf("violating EDB %d", i+1), "no spurious answers (unexpected)")
		} else {
			t.AddRow(fmt.Sprintf("violating EDB %d spurious", i+1), fmt.Sprint(ce.Spurious))
		}
	}

	// On a constraint-satisfying EDB, factored agrees with semi-naive and
	// reduces facts.
	pl := pipeline.New(p, parser.MustParseAtom("p(1, Y)")).
		WithConstraints(parser.MustParseProgram(example43TGDs).Rules)
	load := func() *engine.DB {
		db := engine.NewDB()
		workload.Example43Regular(db, 40)
		return db
	}
	results, _, err := pl.Compare(
		[]pipeline.Strategy{pipeline.SemiNaive, pipeline.Magic, pipeline.FactoredOptimized},
		load, engine.Options{})
	if err != nil {
		return nil, err
	}
	for _, r := range results {
		t.AddRow(fmt.Sprintf("regular EDB %s facts", r.Strategy), r.Facts)
	}
	t.AddNote("paper derives spurious 8 on EDB 1 (bound_first ⊄ l1) and 7 on EDB 2 (free_exit ⊄ r1)")
	return t, nil
}

func runE4() (*Table, error) {
	return runClassExperiment("E4", "Example 4.4 (symmetric)", example44Src, example44TGDs,
		func(db *engine.DB, n int) {
			for i := 1; i < n; i++ {
				x, y := db.Store.Int(i), db.Store.Int(i+1)
				db.MustInsert("e", x, y)
				db.MustInsert("r1", y)
				db.MustInsert("r2", y)
				db.MustInsert("c", y, y, db.Store.Int(i)) // c(U,V,W): step back
			}
			db.MustInsert("l1", db.Store.Int(1))
		})
}

func runE5() (*Table, error) {
	return runClassExperiment("E5", "Example 4.5 (answer-propagating)", example45Src, example45TGDs,
		func(db *engine.DB, n int) {
			for i := 1; i < n; i++ {
				x, y := db.Store.Int(i), db.Store.Int(i+1)
				db.MustInsert("e", x, y)
				db.MustInsert("r1", y)
				db.MustInsert("r2", y)
				db.MustInsert("r3", y)
				db.MustInsert("c", y, y, db.Store.Int(i))
				db.MustInsert("f", x, y)
				db.MustInsert("l1", x)
				db.MustInsert("l2", x)
			}
		})
}

func runClassExperiment(id, title, src, tgds string, loadEDB func(*engine.DB, int)) (*Table, error) {
	t := &Table{
		ID:     id,
		Title:  title,
		Header: []string{"case", "result"},
	}
	v, err := classVerdict(src, "p(1, Y)", "")
	if err != nil {
		return nil, err
	}
	t.AddRow("class without constraints", v)
	v, err = classVerdict(src, "p(1, Y)", tgds)
	if err != nil {
		return nil, err
	}
	t.AddRow("class with EDB constraints", v)

	p := parser.MustParseProgram(src)
	pl := pipeline.New(p, parser.MustParseAtom("p(1, Y)")).
		WithConstraints(parser.MustParseProgram(tgds).Rules)
	load := func() *engine.DB {
		db := engine.NewDB()
		loadEDB(db, 30)
		return db
	}
	results, _, err := pl.Compare(
		[]pipeline.Strategy{pipeline.SemiNaive, pipeline.Magic, pipeline.Factored, pipeline.FactoredOptimized},
		load, engine.Options{})
	if err != nil {
		return nil, err
	}
	for _, r := range results {
		t.AddRow(fmt.Sprintf("%s facts / arity", r.Strategy),
			fmt.Sprintf("%d / %d", r.Facts, r.MaxIDBArity))
	}
	t.AddNote("all strategies agree on the answers; factored halves the arity")
	return t, nil
}
