package experiments

import (
	"fmt"
	"strings"

	"factorlog/internal/engine"
	"factorlog/internal/optimize"
	"factorlog/internal/parser"
	"factorlog/internal/pipeline"
	"factorlog/internal/workload"
)

// tc3Src is the three-rule transitive closure of Examples 1.1/4.2.
const tc3Src = `
	t(X, Y) :- t(X, W), t(W, Y).
	t(X, Y) :- e(X, W), t(W, Y).
	t(X, Y) :- t(X, W), e(W, Y).
	t(X, Y) :- e(X, Y).
`

func init() {
	register(Experiment{ID: "E1", Title: "three-rule transitive closure: Figs. 1-2, Ex. 5.3, arity reduction", Run: runE1})
	register(Experiment{ID: "E1b", Title: "transitive closure scaling: facts vs n (chain, mid query)", Run: runE1b})
}

// runE1 verifies the golden programs (Fig. 1, Fig. 2, the final unary
// program) and reports one strategy comparison at a fixed size.
func runE1() (*Table, error) {
	p := parser.MustParseProgram(tc3Src)
	query := parser.MustParseAtom("t(40, Y)")
	pl := pipeline.New(p, query)

	// Golden checks.
	m, err := pl.MagicProgram()
	if err != nil {
		return nil, err
	}
	// Fig. 1 with the paper's seed constant replaced by this query's.
	fig1 := parser.MustParseProgram(replaceConst(`
		m_t_bf(5).
		m_t_bf(W) :- m_t_bf(X), t_bf(X, W).
		m_t_bf(W) :- m_t_bf(X), e(X, W).
		t_bf(X, Y) :- m_t_bf(X), t_bf(X, W), t_bf(W, Y).
		t_bf(X, Y) :- m_t_bf(X), e(X, W), t_bf(W, Y).
		t_bf(X, Y) :- m_t_bf(X), t_bf(X, W), e(W, Y).
		t_bf(X, Y) :- m_t_bf(X), e(X, Y).
		query(Y) :- t_bf(5, Y).
	`, "5", "40"))
	fig1OK := m.Program.Canonical() == fig1.Canonical()

	opt, err := pl.OptimizedProgram()
	if err != nil {
		return nil, err
	}
	final := parser.MustParseProgram(`
		m_t_bf(W) :- ft(W).
		m_t_bf(40).
		ft(Y) :- m_t_bf(X), e(X, Y).
		query(Y) :- ft(Y).
	`)
	finalOK := opt.Program.Canonical() == final.Canonical()

	t := &Table{
		ID:     "E1",
		Title:  "three-rule TC, chain(120), query t(40,Y)",
		Header: []string{"strategy", "answers", "inferences", "facts", "iters", "max-arity"},
	}
	t.AddNote("Fig. 1 golden (magic program): %v", fig1OK)
	t.AddNote("Ex. 5.3 golden (final unary program): %v", finalOK)

	load := func() *engine.DB {
		db := engine.NewDB()
		workload.Chain(db, "e", 120)
		return db
	}
	results, skipped, err := pl.Compare(pipeline.AllStrategies(), load, engine.Options{})
	if err != nil {
		return nil, err
	}
	for _, r := range results {
		t.AddRow(r.Strategy, len(r.Answers), r.Inferences, r.Facts, r.Iterations, r.MaxIDBArity)
	}
	for s, e := range skipped {
		t.AddNote("%s unavailable: %v", s, e)
	}
	return t, nil
}

// runE1b sweeps n and reports the fact counts per strategy: semi-naive is
// quadratic in n, magic quadratic in the reachable suffix, factored linear.
func runE1b() (*Table, error) {
	t := &Table{
		ID:     "E1b",
		Title:  "chain(n), query t(n/3, Y): derived facts by strategy",
		Header: []string{"n", "semi-naive", "magic", "factored+opt", "magic/opt"},
	}
	for _, n := range []int{64, 128, 256, 512} {
		p := parser.MustParseProgram(tc3Src)
		query := parser.MustParseAtom(fmt.Sprintf("t(%d, Y)", n/3))
		pl := pipeline.New(p, query)
		load := func() *engine.DB {
			db := engine.NewDB()
			workload.Chain(db, "e", n)
			return db
		}
		semi, err := pl.Run(pipeline.SemiNaive, load(), engine.Options{})
		if err != nil {
			return nil, err
		}
		mag, err := pl.Run(pipeline.Magic, load(), engine.Options{})
		if err != nil {
			return nil, err
		}
		opt, err := pl.Run(pipeline.FactoredOptimized, load(), engine.Options{})
		if err != nil {
			return nil, err
		}
		t.AddRow(n, semi.Facts, mag.Facts, opt.Facts,
			fmt.Sprintf("%.1fx", float64(mag.Facts)/float64(opt.Facts)))
	}
	t.AddNote("factored facts grow linearly; magic and semi-naive quadratically")
	return t, nil
}

// E1Pipeline builds the standard E1 pipeline; shared with the benchmarks.
func E1Pipeline(n int) (*pipeline.Pipeline, func() *engine.DB) {
	p := parser.MustParseProgram(tc3Src)
	query := parser.MustParseAtom(fmt.Sprintf("t(%d, Y)", n/3))
	pl := pipeline.New(p, query)
	return pl, func() *engine.DB {
		db := engine.NewDB()
		workload.Chain(db, "e", n)
		return db
	}
}

// E1Optimized returns the optimized unary program for the paper's query,
// for use by benchmarks that want the final program directly.
func E1Optimized() (*optimize.Result, error) {
	p := parser.MustParseProgram(tc3Src)
	pl := pipeline.New(p, parser.MustParseAtom("t(5, Y)"))
	return pl.OptimizedProgram()
}

func replaceConst(src, from, to string) string {
	// Replace the constant as a token: it appears as "(5)" or "(5," here.
	src = strings.ReplaceAll(src, "("+from+")", "("+to+")")
	src = strings.ReplaceAll(src, "("+from+",", "("+to+",")
	src = strings.ReplaceAll(src, ","+from+")", ","+to+")")
	return src
}
