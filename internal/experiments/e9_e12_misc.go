package experiments

import (
	"fmt"

	"factorlog/internal/core"
	"factorlog/internal/engine"
	"factorlog/internal/magic"
	"factorlog/internal/optimize"
	"factorlog/internal/parser"
	"factorlog/internal/pipeline"
	"factorlog/internal/workload"
)

func init() {
	register(Experiment{ID: "E9", Title: "re-factoring a factored program: Example 7.1", Run: runE9})
	register(Experiment{ID: "E10", Title: "same generation: non-factorable, magic still wins (§6.4/§7.2)", Run: runE10})
	register(Experiment{ID: "E11", Title: "Theorem 3.1 reduction: both branches of the undecidability proof", Run: runE11})
	register(Experiment{ID: "E12", Title: "derivation trees: provenance mirrors the Theorem 4.1-4.3 constructions", Run: runE12})
}

// runE9 reproduces Example 7.1: t(X,Y,Z) :- t(X,U,W), b(U,Y), d(Z) with
// query t(5,Y,Z). The Magic-factored program has a binary ft(Y,Z); that
// predicate factors AGAIN into ft1(Y) x ft2(Z) (not certified by the
// theorems — the paper presents it as a direction for future work — so we
// force it and validate on EDBs).
func runE9() (*Table, error) {
	t := &Table{
		ID:     "E9",
		Title:  "Example 7.1: iterated factoring, ternary -> binary -> two unary",
		Header: []string{"n x k", "ft(Y,Z) facts", "ft1+ft2 facts", "ratio"},
	}
	p := parser.MustParseProgram(`
		t(X, Y, Z) :- t(X, U, W), b(U, Y), d(Z).
		t(X, Y, Z) :- e(X, Y, Z).
	`)
	query := parser.MustParseAtom("t(5, Y, Z)")
	pl := pipeline.New(p, query)
	opt, err := pl.OptimizedProgram()
	if err != nil {
		return nil, err
	}
	fr, err := pl.FactoredProgram()
	if err != nil {
		return nil, err
	}
	ftPred := fr.Split.RightName // the binary free part

	// Second factoring: ft(Y,Z) -> ft1(Y), ft2(Z), forced.
	split2 := core.Split{Pred: ftPred, Left: []int{0}, Right: []int{1},
		LeftName: ftPred + "1", RightName: ftPred + "2"}
	twice, err := core.Apply(opt.Program, split2)
	if err != nil {
		return nil, err
	}
	// Re-attach the query on the two unary parts: the factoring transform
	// already rewrote query(Y,Z) :- ft1(Y), ft2(Z).

	for _, nk := range [][2]int{{20, 5}, {40, 10}, {80, 20}} {
		n, k := nk[0], nk[1]
		load := func() *engine.DB {
			db := engine.NewDB()
			workload.Product(db, n, k)
			return db
		}
		db1 := load()
		if _, err := engine.Eval(opt.Program, db1, engine.Options{}); err != nil {
			return nil, err
		}
		once := db1.Count(ftPred)

		db2 := load()
		if _, err := engine.Eval(twice, db2, engine.Options{}); err != nil {
			return nil, err
		}
		twiceFacts := db2.Count(ftPred+"1") + db2.Count(ftPred+"2")

		// Answers agree.
		a1, _ := engine.AnswerSet(db1, parser.MustParseAtom("query(Y, Z)"))
		a2, _ := engine.AnswerSet(db2, parser.MustParseAtom("query(Y, Z)"))
		if len(a1) != len(a2) {
			return nil, fmt.Errorf("n=%d k=%d: answers differ: %d vs %d", n, k, len(a1), len(a2))
		}
		t.AddRow(fmt.Sprintf("%dx%d", n, k), once, twiceFacts,
			fmt.Sprintf("%.1fx", float64(once)/float64(twiceFacts)))
	}
	t.AddNote("the binary predicate holds O(n*k) facts; the two unary parts O(n+k)")
	return t, nil
}

func runE10() (*Table, error) {
	t := &Table{
		ID:     "E10",
		Title:  "same generation on balanced trees",
		Header: []string{"case", "result"},
	}
	p := parser.MustParseProgram(`
		sg(X, Y) :- flat(X, Y).
		sg(X, Y) :- up(X, U), sg(U, V), down(V, Y).
	`)
	query := parser.MustParseAtom("sg(nlll, Y)")
	pl := pipeline.New(p, query)

	// Not factorable: theorem check and randomized refutation agree.
	_, err := pl.FactoredProgram()
	t.AddRow("factoring rejected by class tests", err != nil)

	m, err := pl.MagicProgram()
	if err != nil {
		return nil, err
	}
	split := core.Split{Pred: "sg_bf", Left: []int{0}, Right: []int{1}, LeftName: "bsg", RightName: "fsg"}
	ce, err := core.RefuteSplit(m.Program, m.Query, split, core.RefuteOptions{Trials: 400, Seed: 3})
	if err != nil {
		return nil, err
	}
	t.AddRow("refuter found counterexample", ce != nil)

	// Magic still restricts the computation on trees.
	load := func() *engine.DB {
		db := engine.NewDB()
		workload.BalancedTree(db, 6)
		return db
	}
	results, _, err := pl.Compare(
		[]pipeline.Strategy{pipeline.SemiNaive, pipeline.Magic}, load, engine.Options{})
	if err != nil {
		return nil, err
	}
	for _, r := range results {
		t.AddRow(fmt.Sprintf("%s facts", r.Strategy), r.Facts)
	}
	return t, nil
}

func runE11() (*Table, error) {
	t := &Table{
		ID:     "E11",
		Title:  "Theorem 3.1: the undecidability reduction in action",
		Header: []string{"case", "result"},
	}
	p := parser.MustParseProgram(`
		t(X, Y, Z) :- a1(X), q1(Y, Z).
		t(X, Y, Z) :- a2(X), q2(Y, Z).
		q1(Y, Z) :- b1(Y, Z).
		q2(Y, Z) :- b2(Y, Z).
	`)
	query := parser.MustParseAtom("t(X, Y, Z)")

	// Split (X,Y)|(Z): always refutable; the paper's hand EDB.
	s1 := core.Split{Pred: "t", Left: []int{0, 1}, Right: []int{2}, LeftName: "tl", RightName: "tr"}
	facts, _ := parser.Parse(`a1(1). b1(2, 3). b1(4, 5).`)
	ce, err := core.CheckSplitOnEDB(p, query, s1, facts.Facts, 0)
	if err != nil {
		return nil, err
	}
	if ce != nil {
		t.AddRow("split (X,Y)|(Z) spurious on paper EDB", fmt.Sprint(ce.Spurious))
	}

	// Split (X)|(Y,Z): refutable iff a1 != a2 and q1 != q2.
	s2 := core.Split{Pred: "t", Left: []int{0}, Right: []int{1, 2}, LeftName: "t1", RightName: "t2"}
	ce, err = core.RefuteSplit(p, query, s2, core.RefuteOptions{Trials: 300, Seed: 7})
	if err != nil {
		return nil, err
	}
	t.AddRow("split (X)|(Y,Z) refuted in general", ce != nil)

	// With q1 == q2 by construction, the same split resists refutation.
	pEq := parser.MustParseProgram(`
		t(X, Y, Z) :- a1(X), q1(Y, Z).
		t(X, Y, Z) :- a2(X), q2(Y, Z).
		q1(Y, Z) :- b1(Y, Z).
		q2(Y, Z) :- b1(Y, Z).
	`)
	ce, err = core.RefuteSplit(pEq, query, s2, core.RefuteOptions{Trials: 300, Seed: 7})
	if err != nil {
		return nil, err
	}
	t.AddRow("split (X)|(Y,Z) with q1=q2 refuted", ce != nil)
	t.AddNote("factoring holds iff q1 ≡ q2 (or a1 = a2) — equivalent to Datalog containment, hence undecidable")
	return t, nil
}

func runE12() (*Table, error) {
	t := &Table{
		ID:     "E12",
		Title:  "derivation-tree provenance on the factored TC program",
		Header: []string{"measure", "value"},
	}
	p := parser.MustParseProgram(tc3Src)
	m, err := magic.FromQuery(p, parser.MustParseAtom("t(3, Y)"))
	if err != nil {
		return nil, err
	}
	fr, err := core.FactorMagic(m, nil)
	if err != nil {
		return nil, err
	}
	opt, err := optimize.Optimize(fr.Program, optimize.ForFactored(fr, magic.QueryPred, m.Seed.Head.Args))
	if err != nil {
		return nil, err
	}
	db := engine.NewDB()
	workload.Chain(db, "e", 30)
	res, err := engine.Eval(opt.Program, db, engine.Options{Provenance: true})
	if err != nil {
		return nil, err
	}
	rel := db.Lookup(fr.Split.RightName)
	verified, maxHeight := 0, 0
	for pos := int32(0); pos < int32(rel.Len()); pos++ {
		tup := rel.Tuple(pos)
		id, ok := res.Prov.Lookup(fr.Split.RightName, tup)
		if !ok {
			return nil, fmt.Errorf("no provenance for %s%s", fr.Split.RightName, db.Store.TupleString(tup))
		}
		if err := res.Prov.Verify(db.Store, id); err != nil {
			return nil, err
		}
		verified++
		if h := res.Prov.TreeHeight(id); h > maxHeight {
			maxHeight = h
		}
	}
	t.AddRow("answer facts with verified derivation trees", verified)
	t.AddRow("max tree height", maxHeight)
	t.AddNote("every factored answer has a locally consistent derivation tree (Def. 2.1), as Theorems 4.1-4.3 construct")
	return t, nil
}
