package experiments

import (
	"fmt"

	"factorlog/internal/adorn"
	"factorlog/internal/engine"
	"factorlog/internal/magic"
	"factorlog/internal/parser"
	"factorlog/internal/topdown"
	"factorlog/internal/workload"
)

func init() {
	register(Experiment{ID: "E13", Title: "magic facts = tabled top-down goals (§4.2's correspondence, [10])", Run: runE13})
	register(Experiment{ID: "E14", Title: "supplementary magic (the paper's [3]): shared prefix joins", Run: runE14})
}

// runE13 checks mechanically the paper's remark that "there is a close
// correspondence between the m_tbf tuples and the goals that would be
// generated in a top-down left-to-right evaluation": the tabled (QSQR)
// evaluator's distinct goals equal the magic facts, and its table entries
// the adorned-predicate facts, on several programs and EDBs.
func runE13() (*Table, error) {
	t := &Table{
		ID:     "E13",
		Title:  "tabled goals vs magic facts",
		Header: []string{"program", "tabled goals", "magic facts", "table entries", "p^a facts"},
	}
	cases := []struct {
		name, src, query string
		load             func() *engine.DB
	}{
		{
			"right-linear TC, chain(30)",
			`
				t(X, Y) :- e(X, W), t(W, Y).
				t(X, Y) :- e(X, Y).
			`,
			"t(10, Y)",
			func() *engine.DB {
				db := engine.NewDB()
				workload.Chain(db, "e", 30)
				return db
			},
		},
		{
			"same generation, tree(5)",
			`
				sg(X, Y) :- flat(X, Y).
				sg(X, Y) :- up(X, U), sg(U, V), down(V, Y).
			`,
			"sg(nlll, Y)",
			func() *engine.DB {
				db := engine.NewDB()
				workload.BalancedTree(db, 5)
				return db
			},
		},
	}
	for _, c := range cases {
		p := parser.MustParseProgram(c.src)
		query := parser.MustParseAtom(c.query)
		tab, err := topdown.SolveTabled(p, c.load(), query, topdown.Options{})
		if err != nil {
			return nil, err
		}
		m, err := magic.FromQuery(p, query)
		if err != nil {
			return nil, err
		}
		db := c.load()
		if _, err := engine.Eval(m.Program, db, engine.Options{}); err != nil {
			return nil, err
		}
		base := query.Pred
		adPred := m.Adorned.Query.Pred
		magicFacts := db.Count("m_" + adPred)
		paFacts := db.Count(adPred)
		t.AddRow(c.name, tab.Stats.Goals, magicFacts, tab.Stats.Answers, paFacts)
		if tab.Stats.Goals != magicFacts || tab.Stats.Answers != paFacts {
			return nil, fmt.Errorf("%s (%s): correspondence violated", c.name, base)
		}
	}
	t.AddNote("goals == magic facts and table entries == adorned facts, per EDB")
	return t, nil
}

// runE14 compares plain and supplementary magic on a rule whose two
// recursive calls share an expensive prefix.
func runE14() (*Table, error) {
	t := &Table{
		ID:     "E14",
		Title:  "plain vs supplementary magic",
		Header: []string{"n", "magic inferences", "sup-magic inferences", "answers equal"},
	}
	src := `
		r(X, Y) :- pre(X, A), pre2(A, B), p(B, U), p(U, Y).
		p(X, Y) :- e(X, Y).
		p(X, Y) :- e(X, W), p(W, Y).
	`
	p := parser.MustParseProgram(src)
	query := parser.MustParseAtom("r(0, Y)")
	ad, err := adorn.Adorn(p, query)
	if err != nil {
		return nil, err
	}
	m, err := magic.Transform(ad)
	if err != nil {
		return nil, err
	}
	sup, err := magic.TransformSupplementary(ad)
	if err != nil {
		return nil, err
	}
	for _, n := range []int{20, 40, 80} {
		load := func() *engine.DB {
			db := engine.NewDB()
			for i := 1; i <= n; i++ {
				db.MustInsert("pre", db.Store.Int(0), db.Store.Int(i))
				db.MustInsert("pre2", db.Store.Int(i), db.Store.Int(i+1000))
				db.MustInsert("e", db.Store.Int(i+1000), db.Store.Int(i+1001))
			}
			return db
		}
		dbM, dbS := load(), load()
		rm, err := engine.Eval(m.Program, dbM, engine.Options{})
		if err != nil {
			return nil, err
		}
		rs, err := engine.Eval(sup.Program, dbS, engine.Options{})
		if err != nil {
			return nil, err
		}
		am, _ := engine.AnswerSet(dbM, m.Query)
		as, _ := engine.AnswerSet(dbS, sup.Query)
		equal := len(am) == len(as)
		for k := range am {
			if !as[k] {
				equal = false
			}
		}
		t.AddRow(n, rm.Stats.Inferences, rs.Stats.Inferences, equal)
	}
	t.AddNote("sup predicates materialize each rule-body prefix join once")
	return t, nil
}
