package trace

import (
	"encoding/json"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestSpanTreeShape(t *testing.T) {
	c := New(NewID())
	eval := c.Root().Child("eval")
	st := eval.Child("stratum").SetStratum(0).SetNote("t")
	r0 := st.Child("round").SetRound(0).SetTuples(10, 4)
	r0.End()
	r1 := st.Child("round").SetRound(1).SetTuples(6, 0)
	r1.End()
	st.End()
	eval.End()
	c.Finish()

	if got := c.Spans(); got != 5 {
		t.Fatalf("Spans() = %d, want 5 (root, eval, stratum, 2 rounds)", got)
	}
	snap := c.Snapshot()
	if snap.Root.Name != "query" || len(snap.Root.Children) != 1 {
		t.Fatalf("root = %+v", snap.Root)
	}
	strat := snap.Root.Children[0].Children[0]
	if strat.Stratum == nil || *strat.Stratum != 0 || strat.Note != "t" {
		t.Errorf("stratum span = %+v", strat)
	}
	if len(strat.Children) != 2 {
		t.Fatalf("rounds = %d, want 2", len(strat.Children))
	}
	if strat.Children[1].TuplesIn != 6 || strat.Children[1].TuplesOut != 0 {
		t.Errorf("round 1 tuples = %+v", strat.Children[1])
	}
	// Unset attributes must be absent from the JSON, not -1.
	raw, err := json.Marshal(c)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(raw), ":-1") {
		t.Errorf("JSON leaks -1 sentinels: %s", raw)
	}
	if !strings.Contains(string(raw), `"round":1`) {
		t.Errorf("JSON missing round attribute: %s", raw)
	}
}

func TestNilTracerIsNoOp(t *testing.T) {
	var c *Context
	if c.ID() != "" || c.Root() != nil || c.Spans() != 0 || c.Profile() != "" {
		t.Error("nil Context methods must return zero values")
	}
	c.Finish() // must not panic

	var s *Span
	s2 := s.Child("x").SetRound(3).SetRule(1).SetTuples(1, 2).SetNote("n").SetCached(true)
	if s2 != nil {
		t.Error("nil span chain must stay nil")
	}
	s.End()
	s.AddFinished("y", time.Second)
	if s.Wall() != 0 || s.Children() != nil {
		t.Error("nil span accessors must return zero values")
	}
}

func TestSpanLimitBoundsMemory(t *testing.T) {
	c := NewLimit("q", 4) // root + 3
	root := c.Root()
	var made int
	for i := 0; i < 10; i++ {
		if root.Child("s") != nil {
			made++
		}
	}
	if made != 3 {
		t.Errorf("spans created = %d, want 3", made)
	}
	if c.Dropped() != 7 {
		t.Errorf("dropped = %d, want 7", c.Dropped())
	}
	// A dropped span's children chain off nil safely.
	dead := root.Child("extra")
	if dead.Child("grandchild") != nil {
		t.Error("children of dropped spans must be nil")
	}
	if !strings.Contains(c.Profile(), "dropped") {
		t.Error("Profile should report dropped spans")
	}
}

func TestEndTwiceKeepsFirstMeasurement(t *testing.T) {
	c := New("q")
	s := c.Root().Child("x")
	s.End()
	w := s.Wall()
	time.Sleep(2 * time.Millisecond)
	s.End()
	if s.Wall() != w {
		t.Errorf("second End changed wall %v -> %v", w, s.Wall())
	}
	c.Finish()
	total := c.Wall()
	time.Sleep(2 * time.Millisecond)
	if c.Wall() != total {
		t.Errorf("second Finish window changed wall %v -> %v", total, c.Wall())
	}
}

func TestProfileRendersAttributes(t *testing.T) {
	c := New("q-test-7")
	c.Root().AddFinished("adorn", 42*time.Microsecond).SetCached(true).SetNote("rules 4→9")
	ev := c.Root().Child("eval")
	ev.Child("round").SetRound(0).SetTuples(5, 2).End()
	ev.End()
	c.Finish()
	p := c.Profile()
	for _, want := range []string{"trace q-test-7", "adorn", "(cached)", "rules 4→9", "round 0", "in 5 out 2"} {
		if !strings.Contains(p, want) {
			t.Errorf("profile missing %q:\n%s", want, p)
		}
	}
}

func TestNewIDUnique(t *testing.T) {
	seen := map[string]bool{}
	for i := 0; i < 1000; i++ {
		id := NewID()
		if seen[id] {
			t.Fatalf("duplicate id %s", id)
		}
		seen[id] = true
	}
}

func TestSampler(t *testing.T) {
	if NewSampler(0).Sample() {
		t.Error("every=0 must never sample")
	}
	var nils *Sampler
	if nils.Sample() {
		t.Error("nil sampler must never sample")
	}
	always := NewSampler(1)
	for i := 0; i < 10; i++ {
		if !always.Sample() {
			t.Fatal("every=1 must always sample")
		}
	}
	s4 := NewSampler(4)
	hits := 0
	for i := 0; i < 400; i++ {
		if s4.Sample() {
			hits++
		}
	}
	if hits != 100 {
		t.Errorf("every=4 sampled %d of 400, want 100", hits)
	}
}

func TestRing(t *testing.T) {
	r := NewRing(3)
	if r.Get("nope") != nil {
		t.Error("empty ring lookup must be nil")
	}
	var ids []string
	for i := 0; i < 5; i++ {
		id := fmt.Sprintf("q-%d", i)
		ids = append(ids, id)
		c := New(id)
		c.Finish()
		r.Add(c)
	}
	// Oldest two evicted.
	if r.Get(ids[0]) != nil || r.Get(ids[1]) != nil {
		t.Error("evicted traces still reachable")
	}
	for _, id := range ids[2:] {
		if got := r.Get(id); got == nil || got.ID() != id {
			t.Errorf("Get(%s) = %v", id, got)
		}
	}
	recent := r.Recent()
	if len(recent) != 3 || recent[0].ID() != ids[4] || recent[2].ID() != ids[2] {
		t.Errorf("Recent order wrong: %v", recent)
	}
	if r.Total() != 5 {
		t.Errorf("Total = %d, want 5", r.Total())
	}
	var nilRing *Ring
	nilRing.Add(New("x"))
	if nilRing.Get("x") != nil || nilRing.Recent() != nil || nilRing.Total() != 0 {
		t.Error("nil ring must be a no-op")
	}
}

// TestConcurrentTracesDoNotInterleave runs many traced "queries" in
// parallel, each building its own Context the way the engine does (strata,
// rounds, concurrent worker spans), and checks every span landed in its own
// query's tree with the expected counts. Run under -race this also proves
// the locking discipline.
func TestConcurrentTracesDoNotInterleave(t *testing.T) {
	const queries, rounds, workers = 16, 8, 4
	traces := make([]*Context, queries)
	var wg sync.WaitGroup
	for q := 0; q < queries; q++ {
		wg.Add(1)
		go func(q int) {
			defer wg.Done()
			c := New(fmt.Sprintf("q-%d", q))
			traces[q] = c
			eval := c.Root().Child("eval").SetNote(c.ID())
			st := eval.Child("stratum").SetStratum(0)
			for r := 0; r < rounds; r++ {
				rs := st.Child("round").SetRound(r).SetNote(c.ID())
				// Concurrent children of one round, like parallel workers.
				var rwg sync.WaitGroup
				for w := 0; w < workers; w++ {
					rwg.Add(1)
					go func(w int) {
						defer rwg.Done()
						ws := rs.Child("worker").SetWorker(w).SetNote(c.ID())
						ws.End()
					}(w)
				}
				rwg.Wait()
				rs.End()
			}
			st.End()
			eval.End()
			c.Finish()
		}(q)
	}
	wg.Wait()

	for q, c := range traces {
		wantSpans := 3 + rounds + rounds*workers // root + eval + stratum + rounds + workers
		if got := c.Spans(); got != wantSpans {
			t.Errorf("query %d: spans = %d, want %d", q, got, wantSpans)
		}
		// Every note in the tree must carry this query's ID.
		var check func(s spanJSON)
		id := c.ID()
		check = func(s spanJSON) {
			if s.Note != "" && s.Note != id {
				t.Errorf("query %d: foreign span note %q in tree", q, s.Note)
			}
			for _, child := range s.Children {
				check(child)
			}
		}
		check(c.Snapshot().Root)
	}
}

// TestDisabledTracingAllocatesNothing pins the zero-cost-off contract: the
// whole instrumentation surface on nil receivers performs zero allocations.
func TestDisabledTracingAllocatesNothing(t *testing.T) {
	var c *Context
	var sampler *Sampler
	allocs := testing.AllocsPerRun(1000, func() {
		sp := c.Root().Child("round").SetRound(1).SetRule(2).SetTuples(3, 4).SetAllocs(5, 6)
		sp.AddTuplesOut(1)
		sp.End()
		c.Finish()
		_ = sampler.Sample()
	})
	if allocs != 0 {
		t.Errorf("disabled tracing allocates %v per op, want 0", allocs)
	}
}

// BenchmarkDisabledSpanOps measures the per-call overhead of the nil-tracer
// fast path; it should be a few ns and 0 allocs/op.
func BenchmarkDisabledSpanOps(b *testing.B) {
	var s *Span
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.Child("round").SetRound(i).SetTuples(1, 2).End()
	}
}

// BenchmarkEnabledRoundSpan measures the traced path per round-level span,
// the granularity the engine records at.
func BenchmarkEnabledRoundSpan(b *testing.B) {
	c := NewLimit("bench", b.N+2)
	root := c.Root()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		root.Child("round").SetRound(i).SetTuples(1, 2).End()
	}
}
