package trace

import "sync"

// Ring is a fixed-capacity ring buffer of finished traces, used for the
// server's sampled-trace store (/debug/trace/{id}) and the slow-query log
// (/debug/slowlog). Adds overwrite the oldest entry; lookups scan the ring
// (capacities are tens of entries, not thousands).
type Ring struct {
	mu    sync.Mutex
	buf   []*Context
	next  int
	total int64
}

// NewRing returns a ring holding the last n traces (n < 1 is clamped to 1).
func NewRing(n int) *Ring {
	if n < 1 {
		n = 1
	}
	return &Ring{buf: make([]*Context, n)}
}

// Add records a finished trace, evicting the oldest when full.
func (r *Ring) Add(c *Context) {
	if r == nil || c == nil {
		return
	}
	r.mu.Lock()
	r.buf[r.next] = c
	r.next = (r.next + 1) % len(r.buf)
	r.total++
	r.mu.Unlock()
}

// Get returns the trace with the given query ID, or nil. When an ID was
// recorded more than once (it should not be), the newest entry wins.
func (r *Ring) Get(id string) *Context {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for i := 1; i <= len(r.buf); i++ {
		c := r.buf[(r.next-i+len(r.buf))%len(r.buf)]
		if c != nil && c.ID() == id {
			return c
		}
	}
	return nil
}

// Recent returns the stored traces, newest first.
func (r *Ring) Recent() []*Context {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*Context, 0, len(r.buf))
	for i := 1; i <= len(r.buf); i++ {
		if c := r.buf[(r.next-i+len(r.buf))%len(r.buf)]; c != nil {
			out = append(out, c)
		}
	}
	return out
}

// Total counts every Add since the ring was created (including evicted
// entries), for the slow-query counter.
func (r *Ring) Total() int64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}
