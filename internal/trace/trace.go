// Package trace implements query-scoped execution tracing: a bounded,
// structured span tree that follows one query from the server's HTTP
// handler through the rewrite pipeline (adorn, magic, factor, optimize)
// and into engine evaluation (strata, rounds, rules, workers).
//
// The package is built around two rules that let the hot path stay hot:
//
//   - A nil *Context and a nil *Span are valid no-op tracers. Every method
//     nil-checks its receiver, so untraced code paths pay a single branch
//     and allocate nothing — the same discipline engine.Options.Trace uses.
//   - Spans are created per stage, stratum, round, and rule pass — never
//     per tuple. The per-query span count is bounded (DefaultSpanLimit);
//     once the limit is hit, Child returns nil and the drop is counted, so
//     one pathological query cannot hold unbounded trace memory.
//
// A Context is owned by exactly one query. Within it, spans may be created
// and ended from multiple goroutines (parallel evaluation workers), guarded
// by the Context's lock; each span's attribute fields are written only by
// the goroutine that created it, between Child and End. Rendering (JSON,
// Profile) is meant for finished traces — the server publishes a trace to
// its rings only after Finish.
package trace

import (
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// DefaultSpanLimit bounds the spans recorded per query. Stage + stratum +
// round + rule-pass spans for realistic programs are well under it; a
// divergent fixpoint hits the cap and keeps running untraced.
const DefaultSpanLimit = 4096

// idPrefix distinguishes processes: two servers restarted back to back must
// not mint colliding query IDs, or their logs would cross-correlate.
var idPrefix = func() string {
	var b [4]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "0000"
	}
	return hex.EncodeToString(b[:])
}()

var idCounter atomic.Uint64

// NewID returns a process-unique query ID, e.g. "q-9f2c1a7b-42".
func NewID() string {
	return fmt.Sprintf("q-%s-%d", idPrefix, idCounter.Add(1))
}

// Context is one query's trace: an ID, a start time, and a span tree rooted
// at Root. The zero value is unusable; a nil *Context is a no-op tracer.
type Context struct {
	id      string
	started time.Time // wall clock, for the slow-query log
	start   time.Time // monotonic base for span offsets

	mu      sync.Mutex
	root    *Span
	n       int // spans recorded (including the root)
	limit   int
	dropped int
	wall    time.Duration // set by Finish
	done    bool
}

// New returns a trace for one query, rooted at a span named "query".
func New(id string) *Context { return NewLimit(id, DefaultSpanLimit) }

// NewLimit is New with an explicit span cap (limit <= 0 uses the default).
func NewLimit(id string, limit int) *Context {
	if limit <= 0 {
		limit = DefaultSpanLimit
	}
	now := time.Now()
	c := &Context{id: id, started: now, start: now, limit: limit}
	c.root = &Span{ctx: c, Name: "query", Rule: -1, Stratum: -1, Round: -1, Worker: -1, start: now}
	c.n = 1
	return c
}

// ID returns the query ID ("" for a nil Context).
func (c *Context) ID() string {
	if c == nil {
		return ""
	}
	return c.id
}

// StartedAt returns the wall-clock time the trace began.
func (c *Context) StartedAt() time.Time {
	if c == nil {
		return time.Time{}
	}
	return c.started
}

// Root returns the root span (nil for a nil Context).
func (c *Context) Root() *Span {
	if c == nil {
		return nil
	}
	return c.root
}

// Finish ends the root span and freezes the trace's total wall time.
// Calling Finish more than once keeps the first measurement.
func (c *Context) Finish() {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.done {
		c.done = true
		c.wall = time.Since(c.start)
		c.root.wall = c.wall
		c.root.ended = true
	}
}

// Wall returns the total traced duration: frozen by Finish, live otherwise.
func (c *Context) Wall() time.Duration {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.done {
		return c.wall
	}
	return time.Since(c.start)
}

// Spans returns the number of spans recorded; Dropped the number refused by
// the cap.
func (c *Context) Spans() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}

func (c *Context) Dropped() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.dropped
}

// newSpan allocates a child under parent, enforcing the span cap.
func (c *Context) newSpan(parent *Span, name string) *Span {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.n >= c.limit {
		c.dropped++
		return nil
	}
	now := time.Now()
	s := &Span{
		ctx:      c,
		Name:     name,
		Rule:     -1,
		Stratum:  -1,
		Round:    -1,
		Worker:   -1,
		start:    now,
		startOff: now.Sub(c.start),
	}
	parent.children = append(parent.children, s)
	c.n++
	return s
}

// Span is one node of the trace tree. Name identifies what ran (a pipeline
// stage, "eval", "stratum", "round", "rule", "worker"); the -1-defaulted
// index fields locate it (rule index, stratum index, round number, worker
// index); TuplesIn/TuplesOut carry the stage's data volume (candidates
// examined / new facts); Allocs and AllocBytes the heap delta where the
// producer sampled it. Attribute fields are written by the creating
// goroutine between Child and End — use the nil-safe Set helpers so untraced
// paths need no branches.
type Span struct {
	ctx *Context

	Name       string
	Rule       int // rule index in the evaluated program; -1 when n/a
	Stratum    int // stratum index in the topological schedule; -1 when n/a
	Round      int // fixpoint round; -1 when n/a
	Worker     int // evaluation worker; -1 when n/a
	TuplesIn   int64
	TuplesOut  int64
	Allocs     uint64
	AllocBytes uint64
	// Cached marks a span replayed from a memoized computation (a plan-cache
	// hit's compile stages): its wall time was paid by an earlier query.
	Cached bool
	// Note carries free-form context (predicate list, rule text, error).
	Note string

	start    time.Time
	startOff time.Duration
	wall     time.Duration
	ended    bool
	children []*Span
}

// Child starts a new span under s. It returns nil — a no-op span — when s
// is nil or the trace's span cap is reached.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	return s.ctx.newSpan(s, name)
}

// AddFinished attaches a child whose duration was measured elsewhere (e.g.
// a memoized pipeline stage re-attached to a later query's trace).
func (s *Span) AddFinished(name string, wall time.Duration) *Span {
	c := s.Child(name)
	if c != nil {
		c.wall = wall
		c.ended = true
	}
	return c
}

// End freezes the span's duration. Ending twice keeps the first measurement.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.ctx.mu.Lock()
	if !s.ended {
		s.ended = true
		s.wall = time.Since(s.start)
	}
	s.ctx.mu.Unlock()
}

// Wall returns the span's duration (frozen once ended).
func (s *Span) Wall() time.Duration {
	if s == nil {
		return 0
	}
	s.ctx.mu.Lock()
	defer s.ctx.mu.Unlock()
	if s.ended {
		return s.wall
	}
	return time.Since(s.start)
}

// Children snapshots the span's children.
func (s *Span) Children() []*Span {
	if s == nil {
		return nil
	}
	s.ctx.mu.Lock()
	defer s.ctx.mu.Unlock()
	return append([]*Span(nil), s.children...)
}

// The Set helpers are nil-safe and return the receiver for chaining, so
// instrumentation reads as one expression and costs one branch when the
// trace is off: sp := parent.Child("round").SetRound(r).
func (s *Span) SetRule(i int) *Span {
	if s != nil {
		s.Rule = i
	}
	return s
}

func (s *Span) SetStratum(i int) *Span {
	if s != nil {
		s.Stratum = i
	}
	return s
}

func (s *Span) SetRound(r int) *Span {
	if s != nil {
		s.Round = r
	}
	return s
}

func (s *Span) SetWorker(w int) *Span {
	if s != nil {
		s.Worker = w
	}
	return s
}

func (s *Span) SetTuples(in, out int64) *Span {
	if s != nil {
		s.TuplesIn, s.TuplesOut = in, out
	}
	return s
}

func (s *Span) AddTuplesOut(n int64) *Span {
	if s != nil {
		s.TuplesOut += n
	}
	return s
}

func (s *Span) SetAllocs(allocs, bytes uint64) *Span {
	if s != nil {
		s.Allocs, s.AllocBytes = allocs, bytes
	}
	return s
}

func (s *Span) SetCached(on bool) *Span {
	if s != nil {
		s.Cached = on
	}
	return s
}

func (s *Span) SetNote(note string) *Span {
	if s != nil {
		s.Note = note
	}
	return s
}

// spanJSON is the wire shape of a span; optional attributes are pointers so
// unset fields disappear instead of serializing -1 sentinels.
type spanJSON struct {
	Name       string     `json:"name"`
	StartNS    int64      `json:"start_ns"`
	WallNS     int64      `json:"wall_ns"`
	Rule       *int       `json:"rule,omitempty"`
	Stratum    *int       `json:"stratum,omitempty"`
	Round      *int       `json:"round,omitempty"`
	Worker     *int       `json:"worker,omitempty"`
	TuplesIn   int64      `json:"tuples_in,omitempty"`
	TuplesOut  int64      `json:"tuples_out,omitempty"`
	Allocs     uint64     `json:"allocs,omitempty"`
	AllocBytes uint64     `json:"alloc_bytes,omitempty"`
	Cached     bool       `json:"cached,omitempty"`
	Note       string     `json:"note,omitempty"`
	Children   []spanJSON `json:"children,omitempty"`
}

func optInt(v int) *int {
	if v < 0 {
		return nil
	}
	return &v
}

// jsonTree converts the subtree under the context lock (callers hold it).
func (s *Span) jsonTree() spanJSON {
	out := spanJSON{
		Name:       s.Name,
		StartNS:    s.startOff.Nanoseconds(),
		WallNS:     s.wall.Nanoseconds(),
		Rule:       optInt(s.Rule),
		Stratum:    optInt(s.Stratum),
		Round:      optInt(s.Round),
		Worker:     optInt(s.Worker),
		TuplesIn:   s.TuplesIn,
		TuplesOut:  s.TuplesOut,
		Allocs:     s.Allocs,
		AllocBytes: s.AllocBytes,
		Cached:     s.Cached,
		Note:       s.Note,
	}
	for _, c := range s.children {
		out.Children = append(out.Children, c.jsonTree())
	}
	return out
}

// ContextJSON is the wire shape of a whole trace.
type ContextJSON struct {
	ID        string    `json:"id"`
	StartedAt time.Time `json:"started_at"`
	WallNS    int64     `json:"wall_ns"`
	Spans     int       `json:"spans"`
	Dropped   int       `json:"dropped,omitempty"`
	Root      spanJSON  `json:"root"`
}

// Snapshot converts the trace to its JSON shape. Meant for finished traces;
// a live trace snapshots consistently but with in-progress durations.
func (c *Context) Snapshot() ContextJSON {
	if c == nil {
		return ContextJSON{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	wall := c.wall
	if !c.done {
		wall = time.Since(c.start)
	}
	return ContextJSON{
		ID:        c.id,
		StartedAt: c.started,
		WallNS:    wall.Nanoseconds(),
		Spans:     c.n,
		Dropped:   c.dropped,
		Root:      c.root.jsonTree(),
	}
}

// MarshalJSON renders the trace via Snapshot.
func (c *Context) MarshalJSON() ([]byte, error) {
	return json.Marshal(c.Snapshot())
}

// Profile renders the trace as an indented text tree, one line per span:
//
//	trace q-ab12-1 (wall 1.23ms, 17 spans)
//	  adorn  32µs  (cached)  rules 4→9
//	  eval  920µs
//	    stratum 0 [m_t_bf,ft]  400µs  out 123
//	      round 0  80µs  out 10
func (c *Context) Profile() string {
	if c == nil {
		return ""
	}
	snap := c.Snapshot()
	var b strings.Builder
	fmt.Fprintf(&b, "trace %s (wall %s, %d spans", snap.ID,
		time.Duration(snap.WallNS).Round(time.Microsecond), snap.Spans)
	if snap.Dropped > 0 {
		fmt.Fprintf(&b, ", %d dropped", snap.Dropped)
	}
	b.WriteString(")\n")
	for _, child := range snap.Root.Children {
		writeProfileLine(&b, child, 1)
	}
	return b.String()
}

func writeProfileLine(b *strings.Builder, s spanJSON, depth int) {
	for i := 0; i < depth; i++ {
		b.WriteString("  ")
	}
	b.WriteString(s.Name)
	if s.Stratum != nil {
		fmt.Fprintf(b, " %d", *s.Stratum)
	}
	if s.Round != nil {
		fmt.Fprintf(b, " %d", *s.Round)
	}
	if s.Rule != nil {
		fmt.Fprintf(b, " #%d", *s.Rule)
	}
	if s.Worker != nil {
		fmt.Fprintf(b, " %d", *s.Worker)
	}
	fmt.Fprintf(b, "  %s", time.Duration(s.WallNS).Round(time.Microsecond))
	if s.TuplesIn > 0 || s.TuplesOut > 0 {
		fmt.Fprintf(b, "  in %d out %d", s.TuplesIn, s.TuplesOut)
	}
	if s.Allocs > 0 {
		fmt.Fprintf(b, "  allocs %d", s.Allocs)
	}
	if s.Cached {
		b.WriteString("  (cached)")
	}
	if s.Note != "" {
		fmt.Fprintf(b, "  %s", s.Note)
	}
	b.WriteByte('\n')
	for _, c := range s.Children {
		writeProfileLine(b, c, depth+1)
	}
}

// Sampler decides which queries get a trace: one in every N. It is safe for
// concurrent use; a nil Sampler never samples.
type Sampler struct {
	every uint64
	n     atomic.Uint64
}

// NewSampler returns a sampler tracing one query in every (every > 0); with
// every <= 0 it never samples, with every == 1 it samples all queries.
func NewSampler(every int) *Sampler {
	if every <= 0 {
		return &Sampler{}
	}
	return &Sampler{every: uint64(every)}
}

// Sample reports whether the next query should be traced.
func (s *Sampler) Sample() bool {
	if s == nil || s.every == 0 {
		return false
	}
	return s.n.Add(1)%s.every == 0
}
