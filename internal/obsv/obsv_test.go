package obsv

import (
	"strings"
	"testing"
	"time"
)

func TestSpanTable(t *testing.T) {
	spans := []Span{
		{Name: "adorn", Wall: 120 * time.Microsecond, RulesBefore: 4, RulesAfter: 4, ArityBefore: 2, ArityAfter: 2},
		{Name: "magic", Wall: 80 * time.Microsecond, RulesBefore: 4, RulesAfter: 9, ArityBefore: 2, ArityAfter: 2},
		{Name: "factor", Wall: time.Millisecond, RulesBefore: 9, RulesAfter: 9, ArityBefore: 2, ArityAfter: 1,
			Err: "not factorable"},
	}
	out := SpanTable(spans)
	for _, want := range []string{"stage", "adorn", "120µs", "4 -> 9", "2 -> 1", "error: not factorable"} {
		if !strings.Contains(out, want) {
			t.Errorf("SpanTable missing %q:\n%s", want, out)
		}
	}
	// Every line has the same header-driven alignment: tabwriter guarantees
	// columns never collide, even with long stage names.
	long := SpanTable([]Span{{Name: strings.Repeat("x", 40), Wall: time.Hour}})
	if !strings.Contains(long, strings.Repeat("x", 40)) {
		t.Errorf("long stage name mangled:\n%s", long)
	}
}

func TestRuleTable(t *testing.T) {
	rules := []RuleStats{
		{Index: 0, Rule: "t(X,Y) :- e(X,Y).", Firings: 3, JoinProbes: 40, TuplesMatched: 12, TuplesDerived: 9, Duplicates: 3},
		{Index: 1, Rule: "t(X,Y) :- e(X,W), t(W,Y).", Firings: 1000000, JoinProbes: 123456789},
	}
	out := RuleTable(rules)
	for _, want := range []string{"firings", "probes", "123456789", "t(X,Y) :- e(X,Y)."} {
		if !strings.Contains(out, want) {
			t.Errorf("RuleTable missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3 {
		t.Errorf("want header + 2 rows, got %d lines:\n%s", len(lines), out)
	}
}

func TestRoundTable(t *testing.T) {
	rounds := []RoundStats{
		{Round: 0, RulesFired: 4, NewFacts: 10, Wall: 1500 * time.Nanosecond},
		{Round: 1, RulesFired: 6, NewFacts: 0, Wall: 2 * time.Millisecond},
	}
	out := RoundTable(rounds)
	for _, want := range []string{"round", "rules-fired", "new-facts", "2ms"} {
		if !strings.Contains(out, want) {
			t.Errorf("RoundTable missing %q:\n%s", want, out)
		}
	}
}

func TestFormatDuration(t *testing.T) {
	if got := FormatDuration(1499 * time.Nanosecond); got != "1µs" {
		t.Errorf("FormatDuration = %q", got)
	}
	if got := FormatDuration(3 * time.Second); got != "3s" {
		t.Errorf("FormatDuration = %q", got)
	}
}
