package obsv

import (
	"strings"
	"testing"
	"time"
)

func sampleStats() ServerStats {
	lat := NewHistogram()
	for _, d := range []time.Duration{
		40 * time.Microsecond, 300 * time.Microsecond, 2 * time.Millisecond, 6 * time.Second,
	} {
		lat.Observe(d)
	}
	rounds := NewValueHistogram(RoundsBucketBounds)
	rounds.Observe(3)
	rounds.Observe(17)
	arena := NewValueHistogram(ArenaBucketBounds)
	arena.Observe(65536)
	return ServerStats{
		Schema:        "factorlog/metrics/v5",
		UptimeSeconds: 12.5,
		Queries:       42,
		Errors:        3,
		InFlight:      1,
		PlanCache:     CacheStats{Hits: 30, Misses: 12, Evictions: 2, Entries: 10},
		Latency:       map[string]*Histogram{"factored": lat, "magic": NewHistogram()},
		Rounds:        rounds,
		ArenaBytes:    arena,
		SlowQueries:   2,
		TracedQueries: 5,
		StorageHighWater: StorageStats{
			Relations: 3, Facts: 100, ArenaBytes: 4096, IndexBytes: 1024,
		},
		Resilience: ResilienceStats{
			Admission: AdmissionStats{Capacity: 8, InUse: 1, QueueLimit: 64,
				Admitted: 40, Queued: 5, Shed: 1, QueueTimeouts: 1},
			Panics: 1, Degraded: 1, MemoryBudgetStops: 1, Drained: 1,
		},
	}
}

func TestPromExpositionParses(t *testing.T) {
	text := PromExposition(sampleStats())
	n, err := ParsePromText(text)
	if err != nil {
		t.Fatalf("exposition does not parse: %v\n%s", err, text)
	}
	if n < 30 {
		t.Errorf("suspiciously few samples: %d", n)
	}
	for _, want := range []string{
		"# TYPE factorlog_query_duration_seconds histogram",
		`factorlog_query_duration_seconds_bucket{strategy="factored",le="+Inf"} 4`,
		`factorlog_query_duration_seconds_count{strategy="factored"} 4`,
		"# TYPE factorlog_queries_total counter",
		"factorlog_queries_total 42",
		"factorlog_query_rounds_bucket",
		"factorlog_admission_shed_total 1",
		"factorlog_storage_high_water_bytes 5120",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}

func TestPromHistogramBucketsCumulative(t *testing.T) {
	h := NewHistogram()
	for i := 0; i < 100; i++ {
		h.Observe(time.Duration(i) * time.Millisecond)
	}
	var b strings.Builder
	b.WriteString("# TYPE m histogram\n")
	writeDurationHistogram(&b, "m", `strategy="x"`, h)
	if _, err := ParsePromText(b.String()); err != nil {
		t.Fatalf("histogram series invalid: %v\n%s", err, b.String())
	}
}

func TestParsePromTextRejectsBadInput(t *testing.T) {
	cases := map[string]string{
		"no TYPE":           "foo 1\n",
		"bad type":          "# TYPE foo wat\nfoo 1\n",
		"bad name":          "# TYPE 9foo counter\n9foo 1\n",
		"bad value":         "# TYPE foo counter\nfoo abc\n",
		"unquoted label":    "# TYPE foo counter\nfoo{a=b} 1\n",
		"unterminated":      "# TYPE foo counter\nfoo{a=\"b 1\n",
		"no +Inf bucket":    "# TYPE h histogram\nh_bucket{le=\"1\"} 1\nh_sum 1\nh_count 1\n",
		"non-cumulative":    "# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_bucket{le=\"+Inf\"} 3\nh_sum 1\nh_count 3\n",
		"inf != count":      "# TYPE h histogram\nh_bucket{le=\"+Inf\"} 3\nh_sum 1\nh_count 4\n",
		"missing sum":       "# TYPE h histogram\nh_bucket{le=\"+Inf\"} 3\nh_count 3\n",
		"le order":          "# TYPE h histogram\nh_bucket{le=\"2\"} 1\nh_bucket{le=\"1\"} 1\nh_bucket{le=\"+Inf\"} 1\nh_sum 1\nh_count 1\n",
		"dup TYPE":          "# TYPE foo counter\n# TYPE foo counter\nfoo 1\n",
		"bucket without le": "# TYPE h histogram\nh_bucket 3\nh_sum 1\nh_count 3\n",
	}
	for name, text := range cases {
		if _, err := ParsePromText(text); err == nil {
			t.Errorf("%s: parser accepted invalid input:\n%s", name, text)
		}
	}
}

func TestParsePromTextAcceptsValidCorpus(t *testing.T) {
	text := strings.Join([]string{
		"# a free-form comment",
		"# HELP up Whether the target is up.",
		"# TYPE up gauge",
		"up 1",
		"# TYPE rpc_total counter",
		`rpc_total{method="get",code="200"} 17 1700000000`,
		`rpc_total{method="post\n\"x\"\\"} 2`,
		"# TYPE lat histogram",
		`lat_bucket{le="0.1"} 1`,
		`lat_bucket{le="+Inf"} 2`,
		"lat_sum 0.7",
		"lat_count 2",
		"",
	}, "\n")
	n, err := ParsePromText(text)
	if err != nil {
		t.Fatalf("valid corpus rejected: %v", err)
	}
	if n != 7 {
		t.Errorf("samples = %d, want 7", n)
	}
}
