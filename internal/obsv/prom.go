package obsv

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// This file renders a ServerStats document in Prometheus text exposition
// format v0.0.4 — the default /metrics body — and provides a strict parser
// used by tests and the CI smoke check (cmd/promcheck) to keep the
// exposition scrape-able. Only the subset of the format we emit is
// supported: HELP/TYPE comments, optionally-labeled samples, cumulative
// histogram buckets.

// PromExposition renders s as Prometheus text format v0.0.4. Counter,
// gauge, and histogram families carry # HELP and # TYPE headers; latency
// histograms are exported in seconds (the Prometheus base unit), one series
// per strategy.
func PromExposition(s ServerStats) string {
	var b strings.Builder

	gauge := func(name, help string, v float64) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s gauge\n%s %s\n", name, help, name, name, promFloat(v))
	}
	counter := func(name, help string, v int64) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}

	gauge("factorlog_uptime_seconds", "Seconds since the server started.", s.UptimeSeconds)
	counter("factorlog_queries_total", "Completed /query requests, successes and failures.", s.Queries)
	counter("factorlog_query_errors_total", "/query requests that returned an error.", s.Errors)
	gauge("factorlog_inflight_queries", "Queries currently evaluating.", float64(s.InFlight))

	counter("factorlog_plan_cache_hits_total", "Plan-cache lookups that reused a compiled plan.", s.PlanCache.Hits)
	counter("factorlog_plan_cache_misses_total", "Plan-cache lookups that compiled a new plan.", s.PlanCache.Misses)
	counter("factorlog_plan_cache_evictions_total", "Plans evicted to respect the cache bound.", s.PlanCache.Evictions)
	gauge("factorlog_plan_cache_entries", "Compiled plans currently cached.", float64(s.PlanCache.Entries))

	// Query latency: one histogram series per strategy, sharing the family.
	if len(s.Latency) > 0 {
		names := make([]string, 0, len(s.Latency))
		for name := range s.Latency {
			names = append(names, name)
		}
		sort.Strings(names)
		fmt.Fprintf(&b, "# HELP factorlog_query_duration_seconds Query latency by evaluation strategy.\n")
		fmt.Fprintf(&b, "# TYPE factorlog_query_duration_seconds histogram\n")
		for _, name := range names {
			writeDurationHistogram(&b, "factorlog_query_duration_seconds",
				fmt.Sprintf("strategy=%q", name), s.Latency[name])
		}
	}

	if s.Rounds != nil {
		writeValueHistogram(&b, "factorlog_query_rounds",
			"Fixpoint rounds per query, summed across strata.", s.Rounds)
	}
	if s.ArenaBytes != nil {
		writeValueHistogram(&b, "factorlog_query_storage_bytes",
			"Per-query storage footprint (arena plus index bytes).", s.ArenaBytes)
	}
	counter("factorlog_slow_queries_total", "Queries slower than the slow-query threshold.", s.SlowQueries)
	counter("factorlog_traced_queries_total", "Queries that recorded a span trace.", s.TracedQueries)

	a := s.Resilience.Admission
	gauge("factorlog_admission_capacity", "Total concurrent weight the limiter admits.", float64(a.Capacity))
	gauge("factorlog_admission_in_use", "Weight currently admitted.", float64(a.InUse))
	gauge("factorlog_admission_queue_depth", "Requests currently waiting for admission.", float64(a.QueueDepth))
	gauge("factorlog_admission_queue_limit", "Queue length at which requests are shed.", float64(a.QueueLimit))
	counter("factorlog_admission_admitted_total", "Requests admitted, immediately or after queueing.", a.Admitted)
	counter("factorlog_admission_queued_total", "Requests that waited before admission or failure.", a.Queued)
	counter("factorlog_admission_shed_total", "Requests rejected because the queue was full.", a.Shed)
	counter("factorlog_admission_queue_timeouts_total", "Requests whose context ended while queued.", a.QueueTimeouts)

	counter("factorlog_eval_panics_total", "Evaluations that ended in a recovered panic.", s.Resilience.Panics)
	counter("factorlog_degraded_evals_total", "Evaluations that fell back from parallel to sequential.", s.Resilience.Degraded)
	counter("factorlog_memory_budget_stops_total", "Evaluations stopped by the memory budget.", s.Resilience.MemoryBudgetStops)
	counter("factorlog_drained_requests_total", "Requests refused because the server was draining.", s.Resilience.Drained)

	gauge("factorlog_storage_high_water_bytes",
		"Largest per-request storage footprint seen since startup.",
		float64(s.StorageHighWater.ArenaBytes+s.StorageHighWater.IndexBytes))

	m := s.Mutation
	gauge("factorlog_epoch", "Current mutation epoch (one per effective /facts batch).", float64(m.Epoch))
	gauge("factorlog_base_facts", "Live EDB facts in the mutable base.", float64(m.BaseFacts))
	counter("factorlog_fact_batches_total", "Effective mutation batches applied.", m.Batches)
	counter("factorlog_facts_asserted_total", "EDB facts asserted (noop entries excluded).", m.FactsAsserted)
	counter("factorlog_facts_retracted_total", "EDB facts retracted (noop entries excluded).", m.FactsRetracted)
	gauge("factorlog_materializations", "Live materializations in the registry.", float64(m.Entries))
	counter("factorlog_mat_evictions_total", "Materializations evicted to respect the registry bound.", m.Evictions)
	counter("factorlog_mat_refresh_hits_total", "Materialized serves answered at the current epoch with no refresh.", m.Hits)
	counter("factorlog_mat_refresh_deltas_total", "Materialized serves caught up incrementally from logged batches.", m.Deltas)
	counter("factorlog_mat_refresh_wal_deltas_total", "Delta refreshes whose batches came from the durable log after the in-memory log trimmed them.", m.WalDeltas)
	counter("factorlog_mat_refresh_rebuilds_total", "Materialized serves recomputed from the base EDB.", m.Rebuilds)
	counter("factorlog_mat_refresh_builds_total", "Materializations computed for the first time.", m.Builds)
	if m.RefreshWall != nil {
		writeDurationFamily(&b, "factorlog_mat_refresh_seconds",
			"Wall time of non-hit materialization refreshes.", m.RefreshWall)
	}
	if m.ChangeRatio != nil {
		writeValueHistogram(&b, "factorlog_mat_change_ratio",
			"Changed facts over total facts per non-hit refresh.", m.ChangeRatio)
	}

	p := s.PlanSearch
	counter("factorlog_autoplan_picks", "First-time Auto strategy decisions.", p.Picks)
	counter("factorlog_autoplan_recosts", "Shadow re-costing passes over served Auto plans.", p.Recosts)
	counter("factorlog_autoplan_repicks", "Re-costing passes that invalidated the incumbent plan.", p.Repicks)
	counter("factorlog_autoplan_wins", "Re-costing passes the incumbent plan survived.", p.Wins)
	if len(p.PicksByStrategy) > 0 {
		names := make([]string, 0, len(p.PicksByStrategy))
		for name := range p.PicksByStrategy {
			names = append(names, name)
		}
		sort.Strings(names)
		fmt.Fprintf(&b, "# HELP factorlog_autoplan_picks_by_strategy Auto decisions per winning strategy.\n")
		fmt.Fprintf(&b, "# TYPE factorlog_autoplan_picks_by_strategy counter\n")
		for _, name := range names {
			fmt.Fprintf(&b, "factorlog_autoplan_picks_by_strategy{strategy=%q} %d\n",
				name, p.PicksByStrategy[name])
		}
	}
	if p.RecostWall != nil {
		writeDurationFamily(&b, "factorlog_plan_recost_seconds",
			"Wall time of shadow re-costing passes.", p.RecostWall)
	} else {
		writeDurationFamily(&b, "factorlog_plan_recost_seconds",
			"Wall time of shadow re-costing passes.", NewHistogram())
	}

	// Durability families are emitted unconditionally (zeros when the
	// server runs without -wal-dir) so scrapers see a stable schema.
	d := s.Durability
	enabled := 0.0
	if d.Enabled {
		enabled = 1
	}
	gauge("factorlog_wal_enabled", "1 when a write-ahead log is attached, 0 otherwise.", enabled)
	gauge("factorlog_wal_epoch", "Epoch of the last durably committed batch.", float64(d.WalEpoch))
	gauge("factorlog_wal_first_available_epoch", "Earliest batch epoch the log still holds after retention.", float64(d.FirstAvailableEpoch))
	counter("factorlog_wal_batches_logged_total", "Batches durably appended to the write-ahead log.", d.BatchesLogged)
	counter("factorlog_wal_fsyncs_total", "Write-ahead log fsyncs; one may acknowledge many group-committed batches.", d.Fsyncs)
	gauge("factorlog_wal_segments", "Current write-ahead log segment files.", float64(d.Segments))
	gauge("factorlog_wal_bytes", "Committed bytes across all log segments.", float64(d.WalBytes))
	counter("factorlog_wal_replayed_batches_total", "Log records replayed during startup recovery.", d.ReplayedBatches)
	counter("factorlog_wal_truncated_tail_records_total", "Torn-tail truncations performed by recovery.", d.TruncatedTailRecords)
	if d.GroupCommitWall != nil {
		writeDurationFamily(&b, "factorlog_wal_group_commit_seconds",
			"Append-to-acknowledge latency: time a batch waited for its fsync.", d.GroupCommitWall)
	} else {
		writeDurationFamily(&b, "factorlog_wal_group_commit_seconds",
			"Append-to-acknowledge latency: time a batch waited for its fsync.", NewHistogram())
	}
	gauge("factorlog_snapshot_epoch", "Epoch of the newest base snapshot (0 when none exists).", float64(d.LastSnapshotEpoch))
	counter("factorlog_snapshots_written_total", "Base snapshots written since startup.", d.SnapshotsWritten)
	return b.String()
}

// writeDurationFamily emits an unlabeled duration histogram family (buckets
// in seconds, headers included).
func writeDurationFamily(b *strings.Builder, name, help string, h *Histogram) {
	fmt.Fprintf(b, "# HELP %s %s\n# TYPE %s histogram\n", name, help, name)
	var cum int64
	bounds := h.bounds()
	for i, n := range h.BucketCounts {
		cum += n
		le := "+Inf"
		if i < len(bounds) {
			le = promFloat(bounds[i].Seconds())
		}
		fmt.Fprintf(b, "%s_bucket{le=%q} %d\n", name, le, cum)
	}
	fmt.Fprintf(b, "%s_sum %s\n", name, promFloat(h.Sum.Seconds()))
	fmt.Fprintf(b, "%s_count %d\n", name, h.Count)
}

// writeDurationHistogram emits one labeled histogram series (buckets in
// seconds, cumulative, with +Inf, _sum, _count) under an already-written
// family header.
func writeDurationHistogram(b *strings.Builder, name, labels string, h *Histogram) {
	var cum int64
	bounds := h.bounds()
	for i, n := range h.BucketCounts {
		cum += n
		le := "+Inf"
		if i < len(bounds) {
			le = promFloat(bounds[i].Seconds())
		}
		fmt.Fprintf(b, "%s_bucket{%s,le=%q} %d\n", name, labels, le, cum)
	}
	fmt.Fprintf(b, "%s_sum{%s} %s\n", name, labels, promFloat(h.Sum.Seconds()))
	fmt.Fprintf(b, "%s_count{%s} %d\n", name, labels, h.Count)
}

// writeValueHistogram emits an unlabeled histogram family for a
// ValueHistogram, headers included.
func writeValueHistogram(b *strings.Builder, name, help string, h *ValueHistogram) {
	fmt.Fprintf(b, "# HELP %s %s\n# TYPE %s histogram\n", name, help, name)
	var cum int64
	for i, n := range h.BucketCounts {
		cum += n
		le := "+Inf"
		if i < len(h.Bounds) {
			le = promFloat(h.Bounds[i])
		}
		fmt.Fprintf(b, "%s_bucket{le=%q} %d\n", name, le, cum)
	}
	fmt.Fprintf(b, "%s_sum %s\n", name, promFloat(h.Sum))
	fmt.Fprintf(b, "%s_count %d\n", name, h.Count)
}

// promFloat renders a float the way Prometheus expects: shortest exact
// decimal, +Inf/-Inf/NaN spelled out.
func promFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// promSample is one parsed sample line.
type promSample struct {
	name   string
	labels map[string]string
	value  float64
	line   int
}

// ParsePromText validates a Prometheus text-format v0.0.4 exposition,
// returning the number of samples parsed. It checks lexical validity
// (metric and label names, label quoting, float values), that every sample
// belongs to a # TYPE-declared family, and histogram integrity per series:
// a +Inf bucket exists, bucket counts are cumulative (non-decreasing in le
// order), the +Inf bucket equals _count, and _sum/_count are present.
func ParsePromText(text string) (samples int, err error) {
	samples, _, err = parsePromText(text)
	return samples, err
}

// PromFamilies validates text like ParsePromText and additionally returns
// the set of declared metric families (TYPE-comment names). cmd/promcheck
// uses it to assert that required families are present in a scrape.
func PromFamilies(text string) (map[string]string, error) {
	_, types, err := parsePromText(text)
	return types, err
}

func parsePromText(text string) (samples int, families map[string]string, err error) {
	types := map[string]string{}
	var parsed []promSample
	for i, line := range strings.Split(text, "\n") {
		lineNo := i + 1
		line = strings.TrimRight(line, " \t\r")
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			kind, name, rest, ok := parsePromComment(line)
			if !ok {
				continue // free-form comment
			}
			if !validPromName(name) {
				return 0, nil, fmt.Errorf("line %d: invalid metric name %q", lineNo, name)
			}
			if kind == "TYPE" {
				switch rest {
				case "counter", "gauge", "histogram", "summary", "untyped":
				default:
					return 0, nil, fmt.Errorf("line %d: unknown metric type %q", lineNo, rest)
				}
				if _, dup := types[name]; dup {
					return 0, nil, fmt.Errorf("line %d: duplicate TYPE for %q", lineNo, name)
				}
				types[name] = rest
			}
			continue
		}
		s, perr := parsePromSample(line)
		if perr != nil {
			return 0, nil, fmt.Errorf("line %d: %v", lineNo, perr)
		}
		s.line = lineNo
		if familyType(types, s.name) == "" {
			return 0, nil, fmt.Errorf("line %d: sample %q has no # TYPE declaration", lineNo, s.name)
		}
		parsed = append(parsed, s)
	}
	if err := checkPromHistograms(types, parsed); err != nil {
		return 0, nil, err
	}
	return len(parsed), types, nil
}

// parsePromComment splits "# TYPE name rest" / "# HELP name rest".
func parsePromComment(line string) (kind, name, rest string, ok bool) {
	fields := strings.Fields(line)
	if len(fields) < 3 || fields[0] != "#" {
		return "", "", "", false
	}
	if fields[1] != "TYPE" && fields[1] != "HELP" {
		return "", "", "", false
	}
	return fields[1], fields[2], strings.Join(fields[3:], " "), true
}

// parsePromSample parses `name{l="v",...} value` (labels optional).
func parsePromSample(line string) (promSample, error) {
	s := promSample{labels: map[string]string{}}
	rest := line
	if i := strings.IndexAny(rest, "{ \t"); i < 0 {
		return s, fmt.Errorf("malformed sample %q", line)
	} else {
		s.name = rest[:i]
		rest = rest[i:]
	}
	if !validPromName(s.name) {
		return s, fmt.Errorf("invalid metric name %q", s.name)
	}
	if strings.HasPrefix(rest, "{") {
		end := strings.Index(rest, "}")
		if end < 0 {
			return s, fmt.Errorf("unterminated label set in %q", line)
		}
		if err := parsePromLabels(rest[1:end], s.labels); err != nil {
			return s, err
		}
		rest = rest[end+1:]
	}
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 { // optional timestamp
		return s, fmt.Errorf("expected value after %q", s.name)
	}
	v, err := parsePromValue(fields[0])
	if err != nil {
		return s, err
	}
	s.value = v
	return s, nil
}

// parsePromLabels parses `k="v",k2="v2"` into out. Escapes (\\, \", \n) are
// honored; empty label sets are allowed.
func parsePromLabels(body string, out map[string]string) error {
	body = strings.TrimSpace(body)
	for body != "" {
		eq := strings.Index(body, "=")
		if eq < 0 {
			return fmt.Errorf("label without '=' in %q", body)
		}
		name := strings.TrimSpace(body[:eq])
		if !validPromLabelName(name) {
			return fmt.Errorf("invalid label name %q", name)
		}
		body = strings.TrimSpace(body[eq+1:])
		if !strings.HasPrefix(body, `"`) {
			return fmt.Errorf("label %s value is not quoted", name)
		}
		var val strings.Builder
		i := 1
		for ; i < len(body); i++ {
			c := body[i]
			if c == '\\' {
				if i+1 >= len(body) {
					return fmt.Errorf("dangling escape in label %s", name)
				}
				i++
				switch body[i] {
				case '\\':
					val.WriteByte('\\')
				case '"':
					val.WriteByte('"')
				case 'n':
					val.WriteByte('\n')
				default:
					return fmt.Errorf("bad escape \\%c in label %s", body[i], name)
				}
				continue
			}
			if c == '"' {
				break
			}
			val.WriteByte(c)
		}
		if i >= len(body) {
			return fmt.Errorf("unterminated label value for %s", name)
		}
		out[name] = val.String()
		body = strings.TrimSpace(body[i+1:])
		if strings.HasPrefix(body, ",") {
			body = strings.TrimSpace(body[1:])
		} else if body != "" {
			return fmt.Errorf("expected ',' between labels near %q", body)
		}
	}
	return nil
}

func parsePromValue(s string) (float64, error) {
	switch s {
	case "+Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	case "NaN":
		return math.NaN(), nil
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, fmt.Errorf("bad sample value %q", s)
	}
	return v, nil
}

func validPromName(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		ok := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}

func validPromLabelName(s string) bool {
	if s == "" || strings.ContainsRune(s, ':') {
		return false
	}
	return validPromName(s)
}

// familyType resolves a sample name to its declared family type, peeling
// the _bucket/_sum/_count suffixes histogram and summary samples use.
func familyType(types map[string]string, name string) string {
	if t, ok := types[name]; ok {
		return t
	}
	for _, suffix := range []string{"_bucket", "_sum", "_count"} {
		base := strings.TrimSuffix(name, suffix)
		if base == name {
			continue
		}
		if t := types[base]; t == "histogram" || t == "summary" {
			return t
		}
	}
	return ""
}

// histSeries aggregates one histogram series (family + labels minus le).
type histSeries struct {
	buckets  []promSample // _bucket samples in exposition order
	hasSum   bool
	count    float64
	hasCount bool
}

// checkPromHistograms validates each histogram series' bucket discipline.
func checkPromHistograms(types map[string]string, samples []promSample) error {
	series := map[string]*histSeries{}
	get := func(family string, s promSample) *histSeries {
		keys := make([]string, 0, len(s.labels))
		for k, v := range s.labels {
			if k == "le" {
				continue
			}
			keys = append(keys, k+"="+v)
		}
		sort.Strings(keys)
		id := family + "{" + strings.Join(keys, ",") + "}"
		hs := series[id]
		if hs == nil {
			hs = &histSeries{}
			series[id] = hs
		}
		return hs
	}
	order := make([]string, 0)
	for _, s := range samples {
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			family := strings.TrimSuffix(s.name, suffix)
			if family == s.name || types[family] != "histogram" {
				continue
			}
			hs := get(family, s)
			switch suffix {
			case "_bucket":
				if _, ok := s.labels["le"]; !ok {
					return fmt.Errorf("line %d: %s without le label", s.line, s.name)
				}
				if len(hs.buckets) == 0 && !containsStr(order, family) {
					order = append(order, family)
				}
				hs.buckets = append(hs.buckets, s)
			case "_sum":
				hs.hasSum = true
			case "_count":
				hs.count, hs.hasCount = s.value, true
			}
			break
		}
	}
	for id, hs := range series {
		if len(hs.buckets) == 0 {
			return fmt.Errorf("histogram series %s has no buckets", id)
		}
		if !hs.hasSum || !hs.hasCount {
			return fmt.Errorf("histogram series %s missing _sum or _count", id)
		}
		prevLe := math.Inf(-1)
		prevCum := -1.0
		sawInf := false
		for _, b := range hs.buckets {
			le, err := parsePromValue(b.labels["le"])
			if err != nil {
				return fmt.Errorf("line %d: bad le %q", b.line, b.labels["le"])
			}
			if le <= prevLe {
				return fmt.Errorf("line %d: %s buckets out of le order", b.line, id)
			}
			if b.value < prevCum {
				return fmt.Errorf("line %d: %s bucket counts not cumulative", b.line, id)
			}
			prevLe, prevCum = le, b.value
			if math.IsInf(le, 1) {
				sawInf = true
				if b.value != hs.count {
					return fmt.Errorf("line %d: %s +Inf bucket %v != count %v", b.line, id, b.value, hs.count)
				}
			}
		}
		if !sawInf {
			return fmt.Errorf("histogram series %s lacks a +Inf bucket", id)
		}
	}
	return nil
}

func containsStr(xs []string, s string) bool {
	for _, x := range xs {
		if x == s {
			return true
		}
	}
	return false
}

// RoundsBucketBounds are the default bounds for the per-query rounds
// histogram: 1..~256 rounds doubling.
var RoundsBucketBounds = ExponentialValueBounds(1, 2, 9)

// ArenaBucketBounds are the default bounds for the per-query storage
// histogram: 4KiB..~256MiB, factor 4.
var ArenaBucketBounds = ExponentialValueBounds(4096, 4, 9)
