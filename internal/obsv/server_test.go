package obsv

import (
	"testing"
	"time"
)

func TestExponentialBounds(t *testing.T) {
	got := ExponentialBounds(16*time.Microsecond, 4, 4)
	want := []time.Duration{16 * time.Microsecond, 64 * time.Microsecond,
		256 * time.Microsecond, 1024 * time.Microsecond}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("bounds[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	for _, bad := range []func(){
		func() { ExponentialBounds(0, 4, 4) },
		func() { ExponentialBounds(time.Second, 1, 4) },
		func() { ExponentialBounds(time.Second, 4, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("invalid bounds did not panic")
				}
			}()
			bad()
		}()
	}
}

func TestHistogramCustomBounds(t *testing.T) {
	h := NewHistogramBounds([]time.Duration{time.Millisecond, 10 * time.Millisecond})
	h.Observe(500 * time.Microsecond)
	h.Observe(5 * time.Millisecond)
	h.Observe(50 * time.Millisecond) // overflow
	if got := []int64{h.BucketCounts[0], h.BucketCounts[1], h.BucketCounts[2]}; got[0] != 1 || got[1] != 1 || got[2] != 1 {
		t.Errorf("bucket counts = %v", got)
	}
	if h.Max != 50*time.Millisecond || h.Count != 3 {
		t.Errorf("max=%v count=%d", h.Max, h.Count)
	}
}

// TestQuantileInterpolation pins the interpolated estimator: uniform
// observations within one bucket should produce quantiles strictly inside
// the bucket, not snapped to its upper bound.
func TestQuantileInterpolation(t *testing.T) {
	h := NewHistogramBounds([]time.Duration{
		10 * time.Millisecond, 20 * time.Millisecond, 40 * time.Millisecond})
	// 100 observations in (10ms, 20ms].
	for i := 0; i < 100; i++ {
		h.Observe(15 * time.Millisecond)
	}
	p50 := h.Quantile(0.50)
	if p50 <= 10*time.Millisecond || p50 > 20*time.Millisecond {
		t.Errorf("p50 = %v, want inside (10ms, 20ms]", p50)
	}
	if p50 == 20*time.Millisecond {
		t.Errorf("p50 snapped to bucket upper bound; interpolation missing")
	}
	// Median of a full bucket should be near its middle.
	if p50 < 14*time.Millisecond || p50 > 16*time.Millisecond {
		t.Errorf("p50 = %v, want ~15ms", p50)
	}
	if p90, p99 := h.Quantile(0.90), h.Quantile(0.99); p99 < p90 {
		t.Errorf("quantiles not monotone: p90=%v p99=%v", p90, p99)
	}
}

// TestQuantileOverflowBucket pins the satellite fix: quantiles landing in
// the overflow bucket interpolate between the last bound and Max instead of
// returning Max for everything past the bounds.
func TestQuantileOverflowBucket(t *testing.T) {
	h := NewHistogramBounds([]time.Duration{time.Millisecond})
	// 50 fast, 50 slow (overflow, max 9ms).
	for i := 0; i < 50; i++ {
		h.Observe(500 * time.Microsecond)
		h.Observe(time.Duration(5+i%5) * time.Millisecond)
	}
	p75 := h.Quantile(0.75)
	if p75 <= time.Millisecond {
		t.Errorf("p75 = %v, want beyond last bound", p75)
	}
	if p75 >= h.Max {
		t.Errorf("p75 = %v, want interpolated below Max=%v", p75, h.Max)
	}
	if p100 := h.Quantile(1.0); p100 != h.Max {
		t.Errorf("p100 = %v, want Max=%v", p100, h.Max)
	}
}

func TestQuantileEdges(t *testing.T) {
	empty := NewHistogram()
	if got := empty.Quantile(0.99); got != 0 {
		t.Errorf("empty histogram quantile = %v, want 0", got)
	}

	one := NewHistogram()
	one.Observe(3 * time.Millisecond)
	if got := one.Quantile(0.5); got > one.Max {
		t.Errorf("single-observation quantile %v exceeds max %v", got, one.Max)
	}
	if got := one.Quantile(0.000001); got > one.Max || got <= 0 {
		t.Errorf("tiny-q quantile = %v", got)
	}

	// All observations beyond every bound: the whole distribution lives in
	// the overflow bucket and quantiles must stay within (lastBound, Max].
	over := NewHistogramBounds([]time.Duration{time.Microsecond})
	for i := 1; i <= 10; i++ {
		over.Observe(time.Duration(i) * time.Second)
	}
	p50 := over.Quantile(0.5)
	if p50 <= time.Microsecond || p50 > over.Max {
		t.Errorf("overflow-only p50 = %v, want in (1µs, %v]", p50, over.Max)
	}
	// First-bucket interpolation starts from zero.
	lo := NewHistogramBounds([]time.Duration{10 * time.Millisecond})
	lo.Observe(2 * time.Millisecond)
	lo.Observe(2 * time.Millisecond)
	if got := lo.Quantile(0.5); got <= 0 || got > lo.Max {
		t.Errorf("first-bucket p50 = %v, want in (0, %v]", got, lo.Max)
	}
}

func TestValueHistogram(t *testing.T) {
	h := NewValueHistogram([]float64{1, 10, 100})
	for _, v := range []float64{0.5, 5, 50, 500} {
		h.Observe(v)
	}
	want := []int64{1, 1, 1, 1}
	for i, n := range h.BucketCounts {
		if n != want[i] {
			t.Errorf("bucket[%d] = %d, want %d", i, n, want[i])
		}
	}
	if h.Count != 4 || h.Max != 500 || h.Sum != 555.5 {
		t.Errorf("count=%d max=%v sum=%v", h.Count, h.Max, h.Sum)
	}
}

func TestDefaultBoundsUnchanged(t *testing.T) {
	// The default bucket scheme is part of the /metrics contract; moving it
	// silently would break dashboards. 16µs..~4.19s, factor 4, 10 buckets.
	if len(HistogramBounds) != 10 ||
		HistogramBounds[0] != 16*time.Microsecond ||
		HistogramBounds[9] != 4194304*time.Microsecond {
		t.Errorf("default bounds drifted: %v", HistogramBounds)
	}
	h := NewHistogram()
	h.Observe(time.Hour)
	if h.BucketCounts[len(h.BucketCounts)-1] != 1 {
		t.Error("overflow observation not in overflow bucket")
	}
}
