package obsv

import (
	"fmt"
	"strings"
	"text/tabwriter"
	"time"
)

// RuleStats aggregates the work one rule performed over a whole evaluation.
// The counters separate the paper's cost measure (successful instantiations)
// into its components: how often the rule ran, how much join work each run
// did, and how much of the derived output was new.
type RuleStats struct {
	// Index is the rule's position in the evaluated program.
	Index int `json:"index"`
	// Rule is the rendered source of the rule.
	Rule string `json:"rule"`
	// Firings counts evaluation passes over the rule (per round and, under
	// semi-naive, per delta occurrence).
	Firings int `json:"firings"`
	// JoinProbes counts candidate tuples examined across all body joins,
	// including candidates rejected by the semi-naive round filter.
	JoinProbes int `json:"join_probes"`
	// TuplesMatched counts candidates that unified with their body literal.
	TuplesMatched int `json:"tuples_matched"`
	// TuplesDerived counts new facts the rule added to the database.
	TuplesDerived int `json:"tuples_derived"`
	// Duplicates counts instantiations that re-derived an existing fact.
	Duplicates int `json:"duplicates"`
}

// RoundStats describes one fixpoint round.
type RoundStats struct {
	// Round is the round number (0 is the initial full evaluation).
	Round int `json:"round"`
	// RulesFired counts rule evaluation passes during the round.
	RulesFired int `json:"rules_fired"`
	// NewFacts counts facts first derived in this round.
	NewFacts int `json:"new_facts"`
	// Wall is the round's wall-clock time.
	Wall time.Duration `json:"wall_ns"`
}

// StratumStats describes one stratum of a parallel stratified evaluation:
// one strongly connected component of the predicate dependency graph,
// evaluated either in a single pass (non-recursive) or to a local fixpoint.
type StratumStats struct {
	// Index is the stratum's position in the topological schedule.
	Index int `json:"index"`
	// Preds are the IDB predicates the stratum defines.
	Preds []string `json:"preds"`
	// Recursive reports whether the stratum ran a fixpoint (vs one pass).
	Recursive bool `json:"recursive"`
	// Rules counts the rules belonging to the stratum.
	Rules int `json:"rules"`
	// Rounds counts the evaluation rounds the stratum took (1 for
	// non-recursive strata).
	Rounds int `json:"rounds"`
	// NewFacts counts facts first derived in this stratum.
	NewFacts int `json:"new_facts"`
	// Wall is the stratum's wall-clock time, including merge barriers.
	Wall time.Duration `json:"wall_ns"`
}

// WorkerStats describes one evaluation worker of a parallel run.
type WorkerStats struct {
	// Worker is the worker's index (0-based).
	Worker int `json:"worker"`
	// Units counts the work units (rule x delta-occurrence x shard) the
	// worker executed.
	Units int `json:"units"`
	// Tuples counts head tuples the worker buffered, before barrier-merge
	// deduplication.
	Tuples int `json:"tuples"`
	// Busy is the total wall-clock time the worker spent inside units.
	Busy time.Duration `json:"busy_ns"`
}

// Span traces one pipeline stage: a program-to-program transformation (or
// the final evaluation), with the deltas the paper cares about — rule count
// and maximum IDB arity.
type Span struct {
	// Name identifies the stage (adorn, magic, factor, optimize, counting,
	// sup-magic, eval).
	Name string `json:"name"`
	// Wall is the stage's wall-clock time.
	Wall time.Duration `json:"wall_ns"`
	// RulesBefore/RulesAfter are the rule counts of the input and output
	// programs.
	RulesBefore int `json:"rules_before"`
	RulesAfter  int `json:"rules_after"`
	// ArityBefore/ArityAfter are the maximum IDB arities of the input and
	// output programs — the paper's argument-reduction metric.
	ArityBefore int `json:"arity_before"`
	ArityAfter  int `json:"arity_after"`
	// Allocs/AllocBytes are the heap allocation count and bytes the stage
	// performed (runtime.MemStats deltas over the stage; whole-process, so
	// only meaningful when the stage runs without concurrent mutators).
	// Zero when the pipeline did not sample them.
	Allocs     uint64 `json:"allocs,omitempty"`
	AllocBytes uint64 `json:"alloc_bytes,omitempty"`
	// Err is set when the stage failed (e.g. a non-factorable program).
	Err string `json:"error,omitempty"`
}

// StorageStats describes the storage shape of a database after evaluation:
// how many bytes sit in the tuple arenas versus the open-addressed hash
// tables, and how loaded those tables are. Loads near 0.75 mean a growth is
// imminent; loads far below 0.375 mean the last growth left slack.
type StorageStats struct {
	// Relations counts the database's relations; Facts their total tuples.
	Relations int `json:"relations"`
	Facts     int `json:"facts"`
	// ArenaBytes is the capacity of the columnar tuple arenas (tuple words
	// plus round stamps) across all relations.
	ArenaBytes int64 `json:"arena_bytes"`
	// IndexBytes covers the membership tables, column-index tables, and
	// index postings.
	IndexBytes int64 `json:"index_bytes"`
	// Indexes counts column indexes across all relations.
	Indexes int `json:"indexes"`
	// PresentLoad is the mean load factor of the membership hash tables;
	// IndexLoad the mean across column-index tables. Both are averaged over
	// non-empty relations only.
	PresentLoad float64 `json:"present_load"`
	IndexLoad   float64 `json:"index_load"`
}

// StreamOpStats is one streaming operator's measured row flow: how many
// candidate rows it examined and how many rows it produced. The streaming
// executor (internal/stream) reports one record per operator per rule, in
// pipeline order (source first, materialize last).
type StreamOpStats struct {
	// Stratum is the stratum the operator's rule belongs to; Rule its rule
	// index in the evaluated program.
	Stratum int `json:"stratum"`
	Rule    int `json:"rule"`
	// Op names the operator: scan, hash-join, nested-loop, project,
	// materialize, const.
	Op string `json:"op"`
	// Pred is the relation the operator reads or writes, when it has one.
	Pred string `json:"pred,omitempty"`
	// RowsIn counts candidate rows the operator examined; Rows counts rows
	// it produced (for materialize: distinct facts inserted).
	RowsIn int64 `json:"rows_in,omitempty"`
	Rows   int64 `json:"rows"`
	// Pushed lists the predicates pushed into the operator: selections
	// applied during the scan or probe ("σ col0=5") and join equalities
	// folded into the probe key ("col1=$2").
	Pushed []string `json:"pushed,omitempty"`
}

// StreamStats aggregates a streaming evaluation: how much of the program
// streamed, the iterator row flow, and how probes were served.
type StreamStats struct {
	// Strata counts the schedule's strata; Streamed how many ran on the
	// iterator executor (the rest ran the materializing fixpoint).
	Strata   int `json:"strata"`
	Streamed int `json:"streamed"`
	// RowsEmitted counts head rows the streamed pipelines produced
	// (including duplicates); Duplicates how many re-derived existing facts.
	RowsEmitted int64 `json:"rows_emitted"`
	Duplicates  int64 `json:"duplicates"`
	// Probes counts join probes issued by streamed operators. IndexReuses
	// of them were served by a relation's persistent index; the rest went to
	// transient build tables: BuildTables of them, over BuildRows rows,
	// pre-sized from the relation's fact count and discarded after the run.
	Probes      int64 `json:"probes"`
	IndexReuses int64 `json:"index_reuses"`
	BuildTables int   `json:"build_tables"`
	BuildRows   int64 `json:"build_rows"`
	// Pushdowns counts predicates pushed into scans and probe keys across
	// the streamed plan.
	Pushdowns int `json:"pushdowns"`
	// Ops holds the per-operator row counters, nil unless tracing.
	Ops []StreamOpStats `json:"ops,omitempty"`
}

// StreamLine renders a one-line summary of a StreamStats record.
func StreamLine(s StreamStats) string {
	return fmt.Sprintf(
		"stream: %d/%d strata streamed, %d rows (%d dup), %d probes (%d via persistent index, %d build tables/%d rows), %d pushdowns",
		s.Streamed, s.Strata, s.RowsEmitted, s.Duplicates,
		s.Probes, s.IndexReuses, s.BuildTables, s.BuildRows, s.Pushdowns)
}

// StreamOpTable renders per-operator row counters as an aligned table.
func StreamOpTable(ops []StreamOpStats) string {
	var b strings.Builder
	w := newTable(&b)
	fmt.Fprintln(w, "stratum\trule\top\tpred\trows-in\trows\tpushed")
	for _, o := range ops {
		fmt.Fprintf(w, "%d\t%d\t%s\t%s\t%d\t%d\t%s\n",
			o.Stratum, o.Rule, o.Op, o.Pred, o.RowsIn, o.Rows,
			strings.Join(o.Pushed, " "))
	}
	w.Flush()
	return b.String()
}

// FormatDuration renders d rounded to the nearest microsecond, keeping the
// tables readable without losing sub-millisecond stages.
func FormatDuration(d time.Duration) string {
	return d.Round(time.Microsecond).String()
}

// newTable returns a tabwriter configured uniformly for all obsv tables.
func newTable(b *strings.Builder) *tabwriter.Writer {
	return tabwriter.NewWriter(b, 0, 0, 2, ' ', 0)
}

// SpanTable renders pipeline stage spans as an aligned table.
func SpanTable(spans []Span) string {
	var b strings.Builder
	w := newTable(&b)
	fmt.Fprintln(w, "stage\twall\trules\tmax-arity\tallocs\talloc-bytes\tnote")
	for _, s := range spans {
		note := ""
		if s.Err != "" {
			note = "error: " + s.Err
		}
		allocs, bytes := "-", "-"
		if s.Allocs > 0 || s.AllocBytes > 0 {
			allocs = fmt.Sprintf("%d", s.Allocs)
			bytes = FormatBytes(int64(s.AllocBytes))
		}
		fmt.Fprintf(w, "%s\t%s\t%d -> %d\t%d -> %d\t%s\t%s\t%s\n",
			s.Name, FormatDuration(s.Wall),
			s.RulesBefore, s.RulesAfter, s.ArityBefore, s.ArityAfter,
			allocs, bytes, note)
	}
	w.Flush()
	return b.String()
}

// FormatBytes renders a byte count with a binary unit suffix.
func FormatBytes(n int64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.1fGiB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.1fMiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1fKiB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%dB", n)
	}
}

// StorageLine renders a one-line summary of a StorageStats record for the
// profile view and the REPL :stats command.
func StorageLine(s StorageStats) string {
	return fmt.Sprintf(
		"storage: %d facts in %d relations, arena %s, indexes %s (%d tables, load %.2f/%.2f)",
		s.Facts, s.Relations, FormatBytes(s.ArenaBytes), FormatBytes(s.IndexBytes),
		s.Indexes, s.PresentLoad, s.IndexLoad)
}

// RuleTable renders per-rule counters as an aligned table, one row per rule
// in program order.
func RuleTable(rules []RuleStats) string {
	var b strings.Builder
	w := newTable(&b)
	fmt.Fprintln(w, "#\tfirings\tprobes\tmatched\tderived\tdup\trule")
	for _, r := range rules {
		fmt.Fprintf(w, "%d\t%d\t%d\t%d\t%d\t%d\t%s\n",
			r.Index, r.Firings, r.JoinProbes, r.TuplesMatched,
			r.TuplesDerived, r.Duplicates, r.Rule)
	}
	w.Flush()
	return b.String()
}

// StratumTable renders per-stratum records as an aligned table; the rec
// column marks strata that ran a fixpoint.
func StratumTable(strata []StratumStats) string {
	var b strings.Builder
	w := newTable(&b)
	fmt.Fprintln(w, "stratum\tpreds\trec\trules\trounds\tnew-facts\twall")
	for _, s := range strata {
		rec := ""
		if s.Recursive {
			rec = "*"
		}
		fmt.Fprintf(w, "%d\t%s\t%s\t%d\t%d\t%d\t%s\n",
			s.Index, strings.Join(s.Preds, ","), rec, s.Rules, s.Rounds,
			s.NewFacts, FormatDuration(s.Wall))
	}
	w.Flush()
	return b.String()
}

// WorkerTable renders per-worker records as an aligned table.
func WorkerTable(workers []WorkerStats) string {
	var b strings.Builder
	w := newTable(&b)
	fmt.Fprintln(w, "worker\tunits\ttuples\tbusy")
	for _, ws := range workers {
		fmt.Fprintf(w, "%d\t%d\t%d\t%s\n",
			ws.Worker, ws.Units, ws.Tuples, FormatDuration(ws.Busy))
	}
	w.Flush()
	return b.String()
}

// RoundTable renders per-round records as an aligned table.
func RoundTable(rounds []RoundStats) string {
	var b strings.Builder
	w := newTable(&b)
	fmt.Fprintln(w, "round\trules-fired\tnew-facts\twall")
	for _, r := range rounds {
		fmt.Fprintf(w, "%d\t%d\t%d\t%s\n",
			r.Round, r.RulesFired, r.NewFacts, FormatDuration(r.Wall))
	}
	w.Flush()
	return b.String()
}
