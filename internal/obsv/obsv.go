// Package obsv is the observability layer: plain record types shared by the
// engine (per-rule and per-round evaluation counters), the pipeline (stage
// spans), and the command-line surfaces, plus text renderers for each. It is
// deliberately dependency-free and knows nothing about Datalog — producers
// fill the records, obsv formats them. The JSON tags define the schema of
// the machine-readable metrics documents emitted by `factorbench -json`
// (committed as BENCH_*.json).
package obsv

import (
	"fmt"
	"strings"
	"text/tabwriter"
	"time"
)

// RuleStats aggregates the work one rule performed over a whole evaluation.
// The counters separate the paper's cost measure (successful instantiations)
// into its components: how often the rule ran, how much join work each run
// did, and how much of the derived output was new.
type RuleStats struct {
	// Index is the rule's position in the evaluated program.
	Index int `json:"index"`
	// Rule is the rendered source of the rule.
	Rule string `json:"rule"`
	// Firings counts evaluation passes over the rule (per round and, under
	// semi-naive, per delta occurrence).
	Firings int `json:"firings"`
	// JoinProbes counts candidate tuples examined across all body joins,
	// including candidates rejected by the semi-naive round filter.
	JoinProbes int `json:"join_probes"`
	// TuplesMatched counts candidates that unified with their body literal.
	TuplesMatched int `json:"tuples_matched"`
	// TuplesDerived counts new facts the rule added to the database.
	TuplesDerived int `json:"tuples_derived"`
	// Duplicates counts instantiations that re-derived an existing fact.
	Duplicates int `json:"duplicates"`
}

// RoundStats describes one fixpoint round.
type RoundStats struct {
	// Round is the round number (0 is the initial full evaluation).
	Round int `json:"round"`
	// RulesFired counts rule evaluation passes during the round.
	RulesFired int `json:"rules_fired"`
	// NewFacts counts facts first derived in this round.
	NewFacts int `json:"new_facts"`
	// Wall is the round's wall-clock time.
	Wall time.Duration `json:"wall_ns"`
}

// Span traces one pipeline stage: a program-to-program transformation (or
// the final evaluation), with the deltas the paper cares about — rule count
// and maximum IDB arity.
type Span struct {
	// Name identifies the stage (adorn, magic, factor, optimize, counting,
	// sup-magic, eval).
	Name string `json:"name"`
	// Wall is the stage's wall-clock time.
	Wall time.Duration `json:"wall_ns"`
	// RulesBefore/RulesAfter are the rule counts of the input and output
	// programs.
	RulesBefore int `json:"rules_before"`
	RulesAfter  int `json:"rules_after"`
	// ArityBefore/ArityAfter are the maximum IDB arities of the input and
	// output programs — the paper's argument-reduction metric.
	ArityBefore int `json:"arity_before"`
	ArityAfter  int `json:"arity_after"`
	// Err is set when the stage failed (e.g. a non-factorable program).
	Err string `json:"error,omitempty"`
}

// FormatDuration renders d rounded to the nearest microsecond, keeping the
// tables readable without losing sub-millisecond stages.
func FormatDuration(d time.Duration) string {
	return d.Round(time.Microsecond).String()
}

// newTable returns a tabwriter configured uniformly for all obsv tables.
func newTable(b *strings.Builder) *tabwriter.Writer {
	return tabwriter.NewWriter(b, 0, 0, 2, ' ', 0)
}

// SpanTable renders pipeline stage spans as an aligned table.
func SpanTable(spans []Span) string {
	var b strings.Builder
	w := newTable(&b)
	fmt.Fprintln(w, "stage\twall\trules\tmax-arity\tnote")
	for _, s := range spans {
		note := ""
		if s.Err != "" {
			note = "error: " + s.Err
		}
		fmt.Fprintf(w, "%s\t%s\t%d -> %d\t%d -> %d\t%s\n",
			s.Name, FormatDuration(s.Wall),
			s.RulesBefore, s.RulesAfter, s.ArityBefore, s.ArityAfter, note)
	}
	w.Flush()
	return b.String()
}

// RuleTable renders per-rule counters as an aligned table, one row per rule
// in program order.
func RuleTable(rules []RuleStats) string {
	var b strings.Builder
	w := newTable(&b)
	fmt.Fprintln(w, "#\tfirings\tprobes\tmatched\tderived\tdup\trule")
	for _, r := range rules {
		fmt.Fprintf(w, "%d\t%d\t%d\t%d\t%d\t%d\t%s\n",
			r.Index, r.Firings, r.JoinProbes, r.TuplesMatched,
			r.TuplesDerived, r.Duplicates, r.Rule)
	}
	w.Flush()
	return b.String()
}

// RoundTable renders per-round records as an aligned table.
func RoundTable(rounds []RoundStats) string {
	var b strings.Builder
	w := newTable(&b)
	fmt.Fprintln(w, "round\trules-fired\tnew-facts\twall")
	for _, r := range rounds {
		fmt.Fprintf(w, "%d\t%d\t%d\t%s\n",
			r.Round, r.RulesFired, r.NewFacts, FormatDuration(r.Wall))
	}
	w.Flush()
	return b.String()
}
