package obsv

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// This file holds the serving-side records: plan-cache counters and latency
// histograms filled by long-lived query processes (cmd/factorlogd). Like
// the rest of the package they are plain data — producers guard them with
// their own locks and obsv only formats them. The JSON tags define the
// /metrics schema (factorlog/metrics/v5; the resilience block lives in
// resilience.go).

// CacheStats describes a memoizing cache (the pipeline plan cache).
type CacheStats struct {
	// Hits counts lookups that reused a cached entry (including cached
	// failures).
	Hits int64 `json:"hits"`
	// Misses counts lookups that had to build a new entry.
	Misses int64 `json:"misses"`
	// Evictions counts entries dropped to stay within the cache's bound.
	Evictions int64 `json:"evictions"`
	// Entries is the current number of cached entries.
	Entries int `json:"entries"`
}

// HistogramBounds are the bucket upper bounds shared by every Histogram:
// powers of four from 16µs to ~4.3s, with a final overflow bucket. The
// range covers sub-millisecond cache-hit queries and multi-second scans in
// ten buckets.
var HistogramBounds = []time.Duration{
	16 * time.Microsecond,
	64 * time.Microsecond,
	256 * time.Microsecond,
	1024 * time.Microsecond,
	4096 * time.Microsecond,
	16384 * time.Microsecond,
	65536 * time.Microsecond,
	262144 * time.Microsecond,
	1048576 * time.Microsecond,
	4194304 * time.Microsecond,
}

// Histogram is a fixed-bucket latency histogram over HistogramBounds, with
// one extra overflow bucket. The zero value is not ready to use; call
// NewHistogram. Like all obsv records it is not safe for concurrent
// mutation — callers serialize Observe with their own lock.
type Histogram struct {
	// Count is the number of observations.
	Count int64 `json:"count"`
	// Sum is the total of all observations.
	Sum time.Duration `json:"sum_ns"`
	// Max is the largest observation.
	Max time.Duration `json:"max_ns"`
	// BucketCounts[i] counts observations <= HistogramBounds[i]; the final
	// element counts overflow.
	BucketCounts []int64 `json:"bucket_counts"`
}

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram {
	return &Histogram{BucketCounts: make([]int64, len(HistogramBounds)+1)}
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	h.Count++
	h.Sum += d
	if d > h.Max {
		h.Max = d
	}
	for i, b := range HistogramBounds {
		if d <= b {
			h.BucketCounts[i]++
			return
		}
	}
	h.BucketCounts[len(HistogramBounds)]++
}

// Quantile returns an upper bound for the q-quantile (0 < q <= 1): the
// bound of the bucket where the cumulative count crosses q, or Max for the
// overflow bucket. Zero observations yield 0.
func (h *Histogram) Quantile(q float64) time.Duration {
	if h.Count == 0 {
		return 0
	}
	target := int64(q * float64(h.Count))
	if target < 1 {
		target = 1
	}
	var cum int64
	for i, n := range h.BucketCounts {
		cum += n
		if cum >= target {
			if i < len(HistogramBounds) {
				return HistogramBounds[i]
			}
			return h.Max
		}
	}
	return h.Max
}

// Mean returns the average observation (0 when empty).
func (h *Histogram) Mean() time.Duration {
	if h.Count == 0 {
		return 0
	}
	return h.Sum / time.Duration(h.Count)
}

// ServerStats is the /metrics document of a query server.
type ServerStats struct {
	// Schema names the document layout.
	Schema string `json:"schema"`
	// UptimeSeconds is the time since the server started.
	UptimeSeconds float64 `json:"uptime_seconds"`
	// Queries counts completed /query requests (successes and failures).
	Queries int64 `json:"queries"`
	// Errors counts /query requests that returned an error.
	Errors int64 `json:"errors"`
	// InFlight is the number of /query requests currently evaluating.
	InFlight int64 `json:"in_flight"`
	// PlanCache reports the compiled-plan cache counters.
	PlanCache CacheStats `json:"plan_cache"`
	// Latency holds one request-latency histogram per strategy name.
	Latency map[string]*Histogram `json:"latency_by_strategy"`
	// StorageHighWater is the largest per-request storage footprint seen
	// since startup (selected by arena + index bytes): what the heaviest
	// query's database cost in tuple arenas and hash tables.
	StorageHighWater StorageStats `json:"storage_high_water"`
	// Resilience reports admission control and failure-governance counters
	// (new in schema v5).
	Resilience ResilienceStats `json:"resilience"`
}

// CacheLine renders cache counters compactly, with the hit rate.
func CacheLine(c CacheStats) string {
	total := c.Hits + c.Misses
	rate := 0.0
	if total > 0 {
		rate = float64(c.Hits) / float64(total)
	}
	return fmt.Sprintf("plan cache: %d entries, %d hits, %d misses, %d evictions (%.1f%% hit rate)",
		c.Entries, c.Hits, c.Misses, c.Evictions, 100*rate)
}

// LatencyTable renders per-strategy latency histograms as an aligned
// table, rows sorted by strategy name.
func LatencyTable(byStrategy map[string]*Histogram) string {
	names := make([]string, 0, len(byStrategy))
	for name := range byStrategy {
		names = append(names, name)
	}
	sort.Strings(names)
	var b strings.Builder
	w := newTable(&b)
	fmt.Fprintln(w, "strategy\tcount\tmean\tp50\tp90\tp99\tmax")
	for _, name := range names {
		h := byStrategy[name]
		fmt.Fprintf(w, "%s\t%d\t%s\t%s\t%s\t%s\t%s\n",
			name, h.Count, FormatDuration(h.Mean()),
			FormatDuration(h.Quantile(0.50)), FormatDuration(h.Quantile(0.90)),
			FormatDuration(h.Quantile(0.99)), FormatDuration(h.Max))
	}
	w.Flush()
	return b.String()
}

// ServerTable renders a ServerStats document as text: the header counters,
// the cache line, and the latency table.
func ServerTable(s ServerStats) string {
	var b strings.Builder
	fmt.Fprintf(&b, "uptime %.1fs, %d queries (%d errors), %d in flight\n",
		s.UptimeSeconds, s.Queries, s.Errors, s.InFlight)
	b.WriteString(CacheLine(s.PlanCache))
	b.WriteByte('\n')
	b.WriteString(ResilienceLines(s.Resilience))
	if s.StorageHighWater.Relations > 0 {
		b.WriteString("high-water ")
		b.WriteString(StorageLine(s.StorageHighWater))
		b.WriteByte('\n')
	}
	if len(s.Latency) > 0 {
		b.WriteString(LatencyTable(s.Latency))
	}
	return b.String()
}
