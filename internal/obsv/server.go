package obsv

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// This file holds the serving-side records: plan-cache counters and latency
// histograms filled by long-lived query processes (cmd/factorlogd). Like
// the rest of the package they are plain data — producers guard them with
// their own locks and obsv only formats them. The JSON tags define the
// /metrics schema (factorlog/metrics/v5; the resilience block lives in
// resilience.go).

// CacheStats describes a memoizing cache (the pipeline plan cache).
type CacheStats struct {
	// Hits counts lookups that reused a cached entry (including cached
	// failures).
	Hits int64 `json:"hits"`
	// Misses counts lookups that had to build a new entry.
	Misses int64 `json:"misses"`
	// Evictions counts entries dropped to stay within the cache's bound.
	Evictions int64 `json:"evictions"`
	// Entries is the current number of cached entries.
	Entries int `json:"entries"`
}

// HistogramBounds are the default bucket upper bounds: exponential with
// growth factor 4 from 16µs to ~4.3s, plus an implicit overflow bucket. The
// range covers sub-millisecond cache-hit queries and multi-second scans in
// ten buckets. Histograms that need different resolution pass their own
// bounds to NewHistogramBounds (see ExponentialBounds).
var HistogramBounds = ExponentialBounds(16*time.Microsecond, 4, 10)

// ExponentialBounds builds n bucket upper bounds starting at lo and growing
// by the given factor: lo, lo*growth, lo*growth², ... . It panics on a
// non-positive lo or n, or growth <= 1, since silently odd buckets corrupt
// every quantile read off them.
func ExponentialBounds(lo time.Duration, growth float64, n int) []time.Duration {
	if lo <= 0 || growth <= 1 || n <= 0 {
		panic(fmt.Sprintf("obsv: invalid exponential bounds (lo=%v growth=%v n=%d)", lo, growth, n))
	}
	bounds := make([]time.Duration, n)
	f := float64(lo)
	for i := range bounds {
		bounds[i] = time.Duration(f)
		f *= growth
	}
	return bounds
}

// Histogram is a fixed-bucket latency histogram with one extra overflow
// bucket past the last bound. The zero value is not ready to use; call
// NewHistogram or NewHistogramBounds. Like all obsv records it is not safe
// for concurrent mutation — callers serialize Observe with their own lock.
type Histogram struct {
	// Bounds are the bucket upper bounds, ascending. Empty means the package
	// default (HistogramBounds) — kept out of the JSON in that case so the
	// common document stays compact.
	Bounds []time.Duration `json:"bounds_ns,omitempty"`
	// Count is the number of observations.
	Count int64 `json:"count"`
	// Sum is the total of all observations.
	Sum time.Duration `json:"sum_ns"`
	// Max is the largest observation.
	Max time.Duration `json:"max_ns"`
	// BucketCounts[i] counts observations <= bounds[i]; the final element
	// counts overflow.
	BucketCounts []int64 `json:"bucket_counts"`
}

// NewHistogram returns an empty histogram over the default bounds.
func NewHistogram() *Histogram {
	return &Histogram{BucketCounts: make([]int64, len(HistogramBounds)+1)}
}

// NewHistogramBounds returns an empty histogram over the given ascending
// bucket upper bounds.
func NewHistogramBounds(bounds []time.Duration) *Histogram {
	return &Histogram{
		Bounds:       append([]time.Duration(nil), bounds...),
		BucketCounts: make([]int64, len(bounds)+1),
	}
}

// bounds returns the effective bucket bounds (the package default when the
// histogram was built by NewHistogram).
func (h *Histogram) bounds() []time.Duration {
	if len(h.Bounds) > 0 {
		return h.Bounds
	}
	return HistogramBounds
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	h.Count++
	h.Sum += d
	if d > h.Max {
		h.Max = d
	}
	for i, b := range h.bounds() {
		if d <= b {
			h.BucketCounts[i]++
			return
		}
	}
	h.BucketCounts[len(h.BucketCounts)-1]++
}

// Quantile estimates the q-quantile (0 < q <= 1) by locating the bucket
// where the cumulative count crosses rank q·Count and interpolating
// linearly inside it. The first bucket interpolates from 0; the overflow
// bucket interpolates between the last bound and Max, so a histogram whose
// tail spills past the bounds still reports a finite, monotone p99. Results
// never exceed Max; zero observations yield 0.
func (h *Histogram) Quantile(q float64) time.Duration {
	bounds := h.bounds()
	if h.Count == 0 {
		return 0
	}
	target := q * float64(h.Count)
	if target < 1 {
		target = 1
	}
	var cum int64
	for i, n := range h.BucketCounts {
		if n == 0 {
			cum += n
			continue
		}
		if float64(cum+n) >= target {
			var lo, hi time.Duration
			if i > 0 {
				lo = bounds[i-1]
			}
			if i < len(bounds) {
				hi = bounds[i]
			} else {
				// Overflow bucket: the only honest upper edge is the
				// largest observation itself.
				lo, hi = bounds[len(bounds)-1], h.Max
				if hi < lo {
					hi = lo
				}
			}
			frac := (target - float64(cum)) / float64(n)
			est := lo + time.Duration(frac*float64(hi-lo))
			if est > h.Max {
				est = h.Max
			}
			return est
		}
		cum += n
	}
	return h.Max
}

// Mean returns the average observation (0 when empty).
func (h *Histogram) Mean() time.Duration {
	if h.Count == 0 {
		return 0
	}
	return h.Sum / time.Duration(h.Count)
}

// ValueHistogram is a fixed-bucket histogram over unitless values (fixpoint
// rounds, arena bytes) with the same layout and bucket semantics as
// Histogram. Not safe for concurrent mutation.
type ValueHistogram struct {
	// Bounds are the bucket upper bounds, ascending.
	Bounds []float64 `json:"bounds"`
	// Count is the number of observations.
	Count int64 `json:"count"`
	// Sum is the total of all observations.
	Sum float64 `json:"sum"`
	// Max is the largest observation.
	Max float64 `json:"max"`
	// BucketCounts[i] counts observations <= Bounds[i]; the final element
	// counts overflow.
	BucketCounts []int64 `json:"bucket_counts"`
}

// NewValueHistogram returns an empty histogram over the given ascending
// bucket upper bounds.
func NewValueHistogram(bounds []float64) *ValueHistogram {
	return &ValueHistogram{
		Bounds:       append([]float64(nil), bounds...),
		BucketCounts: make([]int64, len(bounds)+1),
	}
}

// ExponentialValueBounds is ExponentialBounds for unitless values.
func ExponentialValueBounds(lo, growth float64, n int) []float64 {
	if lo <= 0 || growth <= 1 || n <= 0 {
		panic(fmt.Sprintf("obsv: invalid exponential bounds (lo=%v growth=%v n=%d)", lo, growth, n))
	}
	bounds := make([]float64, n)
	for i := range bounds {
		bounds[i] = lo
		lo *= growth
	}
	return bounds
}

// Observe records one value.
func (h *ValueHistogram) Observe(v float64) {
	h.Count++
	h.Sum += v
	if v > h.Max {
		h.Max = v
	}
	for i, b := range h.Bounds {
		if v <= b {
			h.BucketCounts[i]++
			return
		}
	}
	h.BucketCounts[len(h.BucketCounts)-1]++
}

// ServerStats is the /metrics document of a query server.
type ServerStats struct {
	// Schema names the document layout.
	Schema string `json:"schema"`
	// UptimeSeconds is the time since the server started.
	UptimeSeconds float64 `json:"uptime_seconds"`
	// Queries counts completed /query requests (successes and failures).
	Queries int64 `json:"queries"`
	// Errors counts /query requests that returned an error.
	Errors int64 `json:"errors"`
	// InFlight is the number of /query requests currently evaluating.
	InFlight int64 `json:"in_flight"`
	// PlanCache reports the compiled-plan cache counters.
	PlanCache CacheStats `json:"plan_cache"`
	// Latency holds one request-latency histogram per strategy name.
	Latency map[string]*Histogram `json:"latency_by_strategy"`
	// Rounds histograms per-query fixpoint rounds across all strata
	// (optional: servers that do not record it omit the field, keeping the
	// schema at v5).
	Rounds *ValueHistogram `json:"rounds,omitempty"`
	// ArenaBytes histograms per-query storage footprint (arena + index
	// bytes), the distribution behind StorageHighWater's single maximum.
	ArenaBytes *ValueHistogram `json:"arena_bytes,omitempty"`
	// SlowQueries counts queries that exceeded the slow-query threshold.
	SlowQueries int64 `json:"slow_queries,omitempty"`
	// TracedQueries counts queries that recorded a span trace (sampled,
	// explained, or slow-logged).
	TracedQueries int64 `json:"traced_queries,omitempty"`
	// StorageHighWater is the largest per-request storage footprint seen
	// since startup (selected by arena + index bytes): what the heaviest
	// query's database cost in tuple arenas and hash tables.
	StorageHighWater StorageStats `json:"storage_high_water"`
	// Resilience reports admission control and failure-governance counters
	// (new in schema v5).
	Resilience ResilienceStats `json:"resilience"`
	// Mutation reports the mutation epoch, /facts counters, and the
	// materialization registry's refresh behavior (new in schema v8).
	Mutation MutationStats `json:"mutation"`
	// PlanSearch reports the adaptive optimizer's pick/re-cost counters
	// (new in schema v9).
	PlanSearch PlanSearchStats `json:"plan_search"`
	// Durability reports the write-ahead log and snapshot counters (new in
	// schema v10; Enabled false when the server runs without -wal-dir).
	Durability DurabilityStats `json:"durability"`
}

// CacheLine renders cache counters compactly, with the hit rate.
func CacheLine(c CacheStats) string {
	total := c.Hits + c.Misses
	rate := 0.0
	if total > 0 {
		rate = float64(c.Hits) / float64(total)
	}
	return fmt.Sprintf("plan cache: %d entries, %d hits, %d misses, %d evictions (%.1f%% hit rate)",
		c.Entries, c.Hits, c.Misses, c.Evictions, 100*rate)
}

// LatencyTable renders per-strategy latency histograms as an aligned
// table, rows sorted by strategy name.
func LatencyTable(byStrategy map[string]*Histogram) string {
	names := make([]string, 0, len(byStrategy))
	for name := range byStrategy {
		names = append(names, name)
	}
	sort.Strings(names)
	var b strings.Builder
	w := newTable(&b)
	fmt.Fprintln(w, "strategy\tcount\tmean\tp50\tp90\tp99\tmax")
	for _, name := range names {
		h := byStrategy[name]
		fmt.Fprintf(w, "%s\t%d\t%s\t%s\t%s\t%s\t%s\n",
			name, h.Count, FormatDuration(h.Mean()),
			FormatDuration(h.Quantile(0.50)), FormatDuration(h.Quantile(0.90)),
			FormatDuration(h.Quantile(0.99)), FormatDuration(h.Max))
	}
	w.Flush()
	return b.String()
}

// ServerTable renders a ServerStats document as text: the header counters,
// the cache line, and the latency table.
func ServerTable(s ServerStats) string {
	var b strings.Builder
	fmt.Fprintf(&b, "uptime %.1fs, %d queries (%d errors), %d in flight\n",
		s.UptimeSeconds, s.Queries, s.Errors, s.InFlight)
	b.WriteString(CacheLine(s.PlanCache))
	b.WriteByte('\n')
	b.WriteString(ResilienceLines(s.Resilience))
	b.WriteString(MutationLines(s.Mutation))
	b.WriteString(PlanSearchLines(s.PlanSearch))
	b.WriteString(DurabilityLines(s.Durability))
	if s.StorageHighWater.Relations > 0 {
		b.WriteString("high-water ")
		b.WriteString(StorageLine(s.StorageHighWater))
		b.WriteByte('\n')
	}
	if len(s.Latency) > 0 {
		b.WriteString(LatencyTable(s.Latency))
	}
	return b.String()
}
