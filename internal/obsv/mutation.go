package obsv

import (
	"fmt"
	"strings"
)

// MutationStats is the mutation + materialization block of the server
// metrics (schema v8): the epoch counter, EDB mutation counters, and the
// materialization registry's refresh behavior. ChangeRatio observes
// changed-facts / total-facts per refresh — the O(change) vs O(db) measure
// incremental maintenance exists to keep small (delta refreshes sit near
// zero; DRed-style rebuilds approach one).
type MutationStats struct {
	// Epoch is the current mutation epoch (one per effective batch).
	Epoch int64 `json:"epoch"`
	// BaseFacts is the number of live EDB facts.
	BaseFacts int `json:"base_facts"`
	// Batches counts effective mutation batches applied.
	Batches int64 `json:"batches"`
	// FactsAsserted / FactsRetracted count effective EDB changes;
	// NoopAsserts / NoopRetracts count entries that changed nothing.
	FactsAsserted  int64 `json:"facts_asserted"`
	FactsRetracted int64 `json:"facts_retracted"`
	NoopAsserts    int64 `json:"noop_asserts"`
	NoopRetracts   int64 `json:"noop_retracts"`
	// Entries is the number of live materializations in the registry;
	// Evictions counts LRU evictions.
	Entries   int   `json:"entries"`
	Evictions int64 `json:"evictions"`
	// Refresh dispositions per materialized serve: Hits answered at the
	// current epoch with no work, Deltas caught up via logged batches,
	// Rebuilds recomputed from the base EDB, Builds computed an entry for
	// the first time.
	Hits     int64 `json:"hits"`
	Deltas   int64 `json:"deltas"`
	Rebuilds int64 `json:"rebuilds"`
	Builds   int64 `json:"builds"`
	// WalDeltas counts the Deltas whose batches came from the durable
	// write-ahead log after the in-memory log had already trimmed them
	// (new in schema v10) — refreshes that would have been rebuilds
	// without the WAL.
	WalDeltas int64 `json:"wal_deltas,omitempty"`
	// RefreshWall observes the wall time of non-hit refreshes.
	RefreshWall *Histogram `json:"refresh_wall,omitempty"`
	// ChangeRatio observes changed/total facts per non-hit refresh.
	ChangeRatio *ValueHistogram `json:"change_ratio,omitempty"`
}

// ChangeRatioBounds are the ChangeRatio histogram buckets: powers of 4
// from 1e-4 up — small-delta refreshes land in the lowest buckets,
// rebuilds in the top one.
func ChangeRatioBounds() []float64 { return ExponentialValueBounds(1e-4, 4, 8) }

// MutationLines renders the block for the text metrics format.
func MutationLines(m MutationStats) string {
	var b strings.Builder
	fmt.Fprintf(&b, "epoch %d  base_facts %d  batches %d\n", m.Epoch, m.BaseFacts, m.Batches)
	fmt.Fprintf(&b, "asserted %d (%d noop)  retracted %d (%d noop)\n",
		m.FactsAsserted, m.NoopAsserts, m.FactsRetracted, m.NoopRetracts)
	fmt.Fprintf(&b, "materializations %d (evicted %d)  hit %d  delta %d (%d via wal)  rebuild %d  build %d\n",
		m.Entries, m.Evictions, m.Hits, m.Deltas, m.WalDeltas, m.Rebuilds, m.Builds)
	if m.RefreshWall != nil {
		fmt.Fprintf(&b, "refresh p50 %v p99 %v\n", m.RefreshWall.Quantile(0.5), m.RefreshWall.Quantile(0.99))
	}
	return b.String()
}
