package obsv

import "fmt"

// DurabilityStats reports the write-ahead log and snapshot counters of a
// server running with -wal-dir (new in schema v10). When durability is
// disabled the block is present with Enabled false and zero counters, so
// dashboards can key off one schema shape.
type DurabilityStats struct {
	// Enabled reports whether a write-ahead log is attached.
	Enabled bool `json:"enabled"`
	// WalEpoch is the epoch of the last durably committed batch.
	WalEpoch int64 `json:"wal_epoch"`
	// LastSnapshotEpoch is the newest base snapshot's epoch (0 = none).
	LastSnapshotEpoch int64 `json:"last_snapshot_epoch"`
	// FirstAvailableEpoch is the earliest batch epoch the log still holds
	// after retention pruning (0 when the log holds no batches). A replica
	// tailing from before it must bootstrap from the snapshot.
	FirstAvailableEpoch int64 `json:"first_available_epoch"`
	// BatchesLogged counts batches durably appended since startup.
	BatchesLogged int64 `json:"batches_logged"`
	// Fsyncs counts log fsyncs; under group commit one fsync acknowledges
	// many batches, so BatchesLogged/Fsyncs is the group-commit fan-in.
	Fsyncs int64 `json:"fsyncs"`
	// SnapshotsWritten counts base snapshots written since startup.
	SnapshotsWritten int64 `json:"snapshots_written"`
	// ReplayedBatches counts log records replayed during startup recovery.
	ReplayedBatches int64 `json:"replayed_batches"`
	// TruncatedTailRecords counts torn-tail truncations recovery performed —
	// nonzero after recovering from a crash mid-append.
	TruncatedTailRecords int64 `json:"truncated_tail_records"`
	// Segments is the current number of log segment files.
	Segments int `json:"segments"`
	// WalBytes is the committed size of all segment files.
	WalBytes int64 `json:"wal_bytes"`
	// GroupCommitWall histograms the append-to-acknowledge latency: the
	// time one batch waited for the fsync that made it durable.
	GroupCommitWall *Histogram `json:"group_commit_wall,omitempty"`
}

// DurabilityLines renders the durability block for the text table; empty
// when durability is disabled, matching the other optional blocks.
func DurabilityLines(d DurabilityStats) string {
	if !d.Enabled {
		return ""
	}
	s := fmt.Sprintf("wal: epoch %d, %d batches logged, %d fsyncs, %d segments (%d bytes), snapshot epoch %d (%d written)\n",
		d.WalEpoch, d.BatchesLogged, d.Fsyncs, d.Segments, d.WalBytes, d.LastSnapshotEpoch, d.SnapshotsWritten)
	if d.ReplayedBatches > 0 || d.TruncatedTailRecords > 0 {
		s += fmt.Sprintf("wal recovery: %d batches replayed, %d torn-tail truncations\n",
			d.ReplayedBatches, d.TruncatedTailRecords)
	}
	if h := d.GroupCommitWall; h != nil && h.Count > 0 {
		s += fmt.Sprintf("wal commit wall: mean %s, p99 %s, max %s\n",
			FormatDuration(h.Mean()), FormatDuration(h.Quantile(0.99)), FormatDuration(h.Max))
	}
	return s
}
