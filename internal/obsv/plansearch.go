package obsv

import (
	"fmt"
	"sort"
	"strings"
)

// PlanSearchStats reports the adaptive optimizer's behavior (metrics schema
// v9): how often the Auto strategy decided, how often shadow re-costing ran,
// and what it concluded. Filled by pipeline.AutoPlanner.Stats.
type PlanSearchStats struct {
	// Picks counts first-time Auto decisions (one per query shape).
	Picks int64 `json:"picks"`
	// Recosts counts shadow re-costing passes: a served Auto plan re-priced
	// against fresh statistics because the epoch or change-ratio trigger
	// fired.
	Recosts int64 `json:"recosts"`
	// Repicks counts re-costing passes whose rival beat the incumbent by
	// the margin, invalidating the cached Auto plan.
	Repicks int64 `json:"repicks"`
	// Wins counts re-costing passes the incumbent survived (no rival
	// cleared the margin).
	Wins int64 `json:"wins"`
	// PicksByStrategy counts decisions (picks + repicks) per winning
	// strategy name.
	PicksByStrategy map[string]int64 `json:"picks_by_strategy,omitempty"`
	// RecostWall histograms the wall time of re-costing passes.
	RecostWall *Histogram `json:"recost_wall,omitempty"`
}

// PlanSearchLines renders the plan-search counters as text table lines
// (empty when the auto planner never ran).
func PlanSearchLines(p PlanSearchStats) string {
	if p.Picks == 0 && p.Recosts == 0 {
		return ""
	}
	var b strings.Builder
	fmt.Fprintf(&b, "auto planner: %d picks, %d recosts (%d wins, %d repicks)\n",
		p.Picks, p.Recosts, p.Wins, p.Repicks)
	if len(p.PicksByStrategy) > 0 {
		names := make([]string, 0, len(p.PicksByStrategy))
		for name := range p.PicksByStrategy {
			names = append(names, name)
		}
		sort.Strings(names)
		parts := make([]string, 0, len(names))
		for _, name := range names {
			parts = append(parts, fmt.Sprintf("%s=%d", name, p.PicksByStrategy[name]))
		}
		fmt.Fprintf(&b, "auto picks by strategy: %s\n", strings.Join(parts, " "))
	}
	return b.String()
}
