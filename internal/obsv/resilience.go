package obsv

import (
	"fmt"
	"strings"
)

// This file holds the resilience-layer records surfaced by /metrics
// (schema v5): admission-control counters from internal/resilience and the
// server's panic/shed/budget tallies. Like every obsv record they are plain
// data — producers maintain them under their own locks.

// AdmissionStats is a snapshot of a resilience.Limiter.
type AdmissionStats struct {
	// Capacity is the total concurrent weight the limiter admits.
	Capacity int64 `json:"capacity"`
	// InUse is the weight currently admitted.
	InUse int64 `json:"in_use"`
	// QueueDepth is the number of requests currently waiting.
	QueueDepth int `json:"queue_depth"`
	// QueueLimit is the maximum queue length before shedding.
	QueueLimit int `json:"queue_limit"`
	// Admitted counts successful admissions (immediate or after queueing).
	Admitted int64 `json:"admitted"`
	// Queued counts admissions that had to wait before admission or failure.
	Queued int64 `json:"queued"`
	// Shed counts requests rejected because the queue was full.
	Shed int64 `json:"shed"`
	// QueueTimeouts counts requests whose context ended while queued.
	QueueTimeouts int64 `json:"queue_timeouts"`
}

// ResilienceStats aggregates the server's failure-governance counters.
type ResilienceStats struct {
	// Admission reports the /query admission limiter.
	Admission AdmissionStats `json:"admission"`
	// Panics counts evaluations that ended in a recovered panic
	// (engine.ErrInternal responses).
	Panics int64 `json:"panics"`
	// Degraded counts evaluations that fell back from parallel to
	// sequential after a worker panic and then succeeded.
	Degraded int64 `json:"degraded"`
	// MemoryBudgetStops counts evaluations stopped by engine.ErrMemoryBudget.
	MemoryBudgetStops int64 `json:"memory_budget_stops"`
	// Drained counts requests refused with 503 because the server was
	// shutting down.
	Drained int64 `json:"drained"`
}

// AdmissionLine renders admission counters compactly.
func AdmissionLine(a AdmissionStats) string {
	return fmt.Sprintf("admission: %d/%d weight in use, queue %d/%d, %d admitted, %d queued, %d shed, %d queue timeouts",
		a.InUse, a.Capacity, a.QueueDepth, a.QueueLimit, a.Admitted, a.Queued, a.Shed, a.QueueTimeouts)
}

// ResilienceLines renders the resilience block as text for
// /metrics?format=text.
func ResilienceLines(r ResilienceStats) string {
	var b strings.Builder
	b.WriteString(AdmissionLine(r.Admission))
	b.WriteByte('\n')
	fmt.Fprintf(&b, "failures: %d panics, %d degraded, %d memory-budget stops, %d drained\n",
		r.Panics, r.Degraded, r.MemoryBudgetStops, r.Drained)
	return b.String()
}
