// Package obsv is the observability layer: plain record types shared by the
// engine (per-rule, per-round, per-stratum and per-worker evaluation
// counters), the pipeline (stage spans), and the command-line and server
// surfaces (plan-cache counters, latency histograms), plus text renderers
// for each. It is deliberately dependency-free and knows nothing about
// Datalog — producers fill the records, obsv formats them.
//
// None of the record types synchronize internally: single-threaded
// producers (the sequential evaluator) write them directly, and concurrent
// producers (the parallel evaluator's workers, the query server's request
// handlers) either keep per-worker records that a coordinator folds at a
// barrier or guard shared records with their own lock.
//
// The JSON tags define the schemas of the machine-readable metrics
// documents: `factorbench -json` emits the evaluation records (schema
// factorlog/metrics/v4, committed as BENCH_*.json), and factorlogd's
// /metrics endpoint emits ServerStats (also factorlog/metrics/v4; v4
// added StorageStats and the Span allocation counters).
package obsv
