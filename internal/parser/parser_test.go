package parser

import (
	"testing"

	"factorlog/internal/ast"
)

func TestParseTransitiveClosure(t *testing.T) {
	src := `
		% three-rule transitive closure (Example 1.1)
		t(X, Y) :- t(X, W), t(W, Y).
		t(X, Y) :- e(X, W), t(W, Y).
		t(X, Y) :- t(X, W), e(W, Y).
		t(X, Y) :- e(X, Y).
		?- t(5, Y).
	`
	u, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(u.Rules) != 4 {
		t.Fatalf("rules = %d, want 4", len(u.Rules))
	}
	if len(u.Queries) != 1 {
		t.Fatalf("queries = %d, want 1", len(u.Queries))
	}
	q := u.Queries[0]
	if q.Pred != "t" || !q.Args[0].Equal(ast.C("5")) || !q.Args[1].Equal(ast.V("Y")) {
		t.Errorf("query = %s", q)
	}
	if got := u.Rules[0].String(); got != "t(X,Y) :- t(X,W), t(W,Y)." {
		t.Errorf("rule 0 = %q", got)
	}
}

func TestParseFacts(t *testing.T) {
	u, err := Parse(`e(1, 2). e(2, 3). p(paris). q.`)
	if err != nil {
		t.Fatal(err)
	}
	if len(u.Facts) != 4 || len(u.Rules) != 0 {
		t.Fatalf("facts=%d rules=%d", len(u.Facts), len(u.Rules))
	}
	if u.Facts[2].Pred != "p" || !u.Facts[2].Args[0].Equal(ast.C("paris")) {
		t.Errorf("fact = %s", u.Facts[2])
	}
	if u.Facts[3].Pred != "q" || u.Facts[3].Arity() != 0 {
		t.Errorf("zero-arity fact = %s", u.Facts[3])
	}
}

func TestParseNonGroundUnitClauseIsRule(t *testing.T) {
	u, err := Parse(`member(X, [X|T]).`)
	if err != nil {
		t.Fatal(err)
	}
	if len(u.Rules) != 1 || len(u.Facts) != 0 {
		t.Errorf("non-ground unit clause should be a rule: rules=%d facts=%d",
			len(u.Rules), len(u.Facts))
	}
	if !u.Rules[0].IsFact() {
		t.Error("unit clause should have empty body")
	}
}

func TestParseLists(t *testing.T) {
	cases := map[string]string{
		"[]":          "[]",
		"[a]":         "[a]",
		"[a,b,c]":     "[a,b,c]",
		"[H|T]":       "[H|T]",
		"[a,b|T]":     "[a,b|T]",
		"[[a],[b,c]]": "[[a],[b,c]]",
		"[f(X)|T]":    "[f(X)|T]",
	}
	for src, want := range cases {
		tm, err := ParseTerm(src)
		if err != nil {
			t.Errorf("ParseTerm(%q): %v", src, err)
			continue
		}
		if got := tm.String(); got != want {
			t.Errorf("ParseTerm(%q) = %q, want %q", src, got, want)
		}
	}
}

func TestParsePmem(t *testing.T) {
	src := `
		pmem(X, [X|T]) :- p(X).
		pmem(X, [H|T]) :- pmem(X, T).
		?- pmem(X, [x1, x2, x3]).
	`
	u, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(u.Rules) != 2 || len(u.Queries) != 1 {
		t.Fatalf("rules=%d queries=%d", len(u.Rules), len(u.Queries))
	}
	if !u.Rules[0].Head.Args[1].IsCons() {
		t.Errorf("head arg not a list: %s", u.Rules[0].Head)
	}
	want := ast.List(ast.C("x1"), ast.C("x2"), ast.C("x3"))
	if !u.Queries[0].Args[1].Equal(want) {
		t.Errorf("query list = %s", u.Queries[0].Args[1])
	}
}

func TestParseAnonymousVars(t *testing.T) {
	p, err := ParseProgram(`q(X) :- e(X, _), f(_, X).`)
	if err != nil {
		t.Fatal(err)
	}
	r := p.Rules[0]
	v1 := r.Body[0].Args[1]
	v2 := r.Body[1].Args[0]
	if !v1.IsVar() || !v2.IsVar() {
		t.Fatal("anonymous vars not parsed as vars")
	}
	if v1.Functor == v2.Functor {
		t.Error("distinct '_' occurrences share a name")
	}
	if !IsAnonymousVar(v1.Functor) {
		t.Errorf("not flagged anonymous: %s", v1.Functor)
	}
}

func TestParseQuotedAtoms(t *testing.T) {
	tm, err := ParseTerm(`'hello world'`)
	if err != nil {
		t.Fatal(err)
	}
	if !tm.Equal(ast.C("hello world")) {
		t.Errorf("quoted atom = %s", tm)
	}
	tm, err = ParseTerm(`'it''s'`)
	if err != nil {
		t.Fatal(err)
	}
	if !tm.Equal(ast.C("it's")) {
		t.Errorf("escaped quote = %s", tm)
	}
}

func TestParseNegativeNumbers(t *testing.T) {
	tm, err := ParseTerm(`-42`)
	if err != nil {
		t.Fatal(err)
	}
	if !tm.Equal(ast.C("-42")) {
		t.Errorf("negative = %s", tm)
	}
}

func TestParseComments(t *testing.T) {
	src := `
		% line comment
		/* block
		   comment */
		t(X) :- e(X). % trailing
	`
	u, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(u.Rules) != 1 {
		t.Fatalf("rules = %d", len(u.Rules))
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		`t(X, Y) :- e(X Y).`, // missing comma
		`t(X, Y) :- .`,       // empty body
		`t(X, Y)`,            // missing dot
		`t(X,`,               // truncated
		`:- e(X).`,           // missing head
		`t(X) : e(X).`,       // bad operator
		`? t(X).`,            // bad query operator
		`'unterminated`,      // unterminated quote
		`t(-).`,              // dash without digits
		`t(&).`,              // illegal character
	}
	for _, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q): expected error", src)
		}
	}
}

func TestSyntaxErrorPosition(t *testing.T) {
	_, err := Parse("t(X) :- e(X).\nt(Y) :- &.")
	se, ok := err.(*SyntaxError)
	if !ok {
		t.Fatalf("error type %T: %v", err, err)
	}
	if se.Line != 2 {
		t.Errorf("error line = %d, want 2", se.Line)
	}
}

func TestParseProgramFactsBecomeRules(t *testing.T) {
	p, err := ParseProgram(`m(W) :- m(X), e(X, W). m(5).`)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Rules) != 2 {
		t.Fatalf("rules = %d, want 2 (seed fact as bodyless rule)", len(p.Rules))
	}
	if !p.Rules[1].IsFact() {
		t.Error("seed should be a bodyless rule")
	}
	if _, err := ParseProgram(`?- t(X).`); err == nil {
		t.Error("ParseProgram should reject queries")
	}
}

func TestMustHelpersPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustParseProgram should panic on bad input")
		}
	}()
	MustParseProgram(`garbage(`)
}

func TestRoundTrip(t *testing.T) {
	srcs := []string{
		"t(X,Y) :- t(X,W), t(W,Y).",
		"pmem(X,[X|T]) :- p(X).",
		"q(Y) :- t(5,Y).",
		"m_t_bf(5).",
		"sg(X,Y) :- up(X,U), sg(U,V), down(V,Y).",
	}
	for _, src := range srcs {
		u, err := Parse(src)
		if err != nil {
			t.Errorf("Parse(%q): %v", src, err)
			continue
		}
		var got string
		switch {
		case len(u.Rules) == 1:
			got = u.Rules[0].String()
		case len(u.Facts) == 1:
			got = u.Facts[0].String() + "."
		}
		if got != src {
			t.Errorf("round trip: %q -> %q", src, got)
		}
	}
}

func TestParseAtomHelper(t *testing.T) {
	a, err := ParseAtom("t(5, Y)")
	if err != nil {
		t.Fatal(err)
	}
	if a.Pred != "t" || a.Arity() != 2 {
		t.Errorf("atom = %s", a)
	}
	// trailing dot tolerated
	if _, err := ParseAtom("t(5, Y)."); err != nil {
		t.Errorf("trailing dot: %v", err)
	}
	if _, err := ParseAtom("t(5). extra"); err == nil {
		t.Error("trailing input should error")
	}
}

func TestUnitProgram(t *testing.T) {
	u, err := Parse(`t(X,Y) :- e(X,Y). e(1,2).`)
	if err != nil {
		t.Fatal(err)
	}
	p := u.Program()
	if len(p.Rules) != 1 {
		t.Errorf("program rules = %d", len(p.Rules))
	}
}
