package parser

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"factorlog/internal/ast"
)

// randRuleTerm builds a random term over a small vocabulary, including
// lists and compounds, with parser-representable names.
func randRuleTerm(r *rand.Rand, depth int) ast.Term {
	switch {
	case depth <= 0 || r.Intn(4) == 0:
		if r.Intn(2) == 0 {
			return ast.V(fmt.Sprintf("V%d", r.Intn(4)))
		}
		return ast.C([]string{"a", "b", "c", "42", "-7"}[r.Intn(5)])
	case r.Intn(3) == 0: // proper list
		n := r.Intn(3)
		elems := make([]ast.Term, n)
		for i := range elems {
			elems[i] = randRuleTerm(r, depth-1)
		}
		return ast.List(elems...)
	case r.Intn(3) == 0: // partial list
		return ast.ListTail(ast.V("T"), randRuleTerm(r, depth-1))
	default:
		n := 1 + r.Intn(3)
		args := make([]ast.Term, n)
		for i := range args {
			args[i] = randRuleTerm(r, depth-1)
		}
		return ast.Fn([]string{"f", "g", "h"}[r.Intn(3)], args...)
	}
}

func randAtom(r *rand.Rand, pred string) ast.Atom {
	n := 1 + r.Intn(3)
	args := make([]ast.Term, n)
	for i := range args {
		args[i] = randRuleTerm(r, 2)
	}
	return ast.Atom{Pred: pred, Args: args}
}

// TestPrintParseRoundTripProperty: any AST rule prints to text that parses
// back to the identical rule.
func TestPrintParseRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		rule := ast.Rule{Head: randAtom(r, "head")}
		for i := 0; i < r.Intn(4); i++ {
			rule.Body = append(rule.Body, randAtom(r, []string{"p", "q", "e"}[r.Intn(3)]))
		}
		text := rule.String()
		u, err := Parse(text)
		if err != nil {
			t.Logf("parse %q: %v", text, err)
			return false
		}
		var back ast.Rule
		switch {
		case len(u.Rules) == 1:
			back = u.Rules[0]
		case len(u.Facts) == 1:
			back = ast.Fact(u.Facts[0])
		default:
			return false
		}
		if !back.Equal(rule) {
			t.Logf("round trip %q -> %q", text, back)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// TestPrintParseTermProperty: same for bare terms.
func TestPrintParseTermProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		term := randRuleTerm(r, 3)
		back, err := ParseTerm(term.String())
		if err != nil {
			t.Logf("parse %q: %v", term, err)
			return false
		}
		return back.Equal(term)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}
