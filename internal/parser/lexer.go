// Package parser implements a lexer and recursive-descent parser for the
// Prolog-like surface syntax used throughout the repository:
//
//	% transitive closure
//	t(X, Y) :- e(X, W), t(W, Y).
//	t(X, Y) :- e(X, Y).
//	e(1, 2).              % a ground fact (EDB)
//	?- t(5, Y).           % a query
//	pmem(X, [X|T]) :- p(X).
//
// Identifiers starting with an upper-case letter or '_' are variables ('_'
// alone is an anonymous variable, fresh at each occurrence). Identifiers
// starting with a lower-case letter, integers, and single-quoted atoms are
// constants (or functors/predicates when followed by '(').
package parser

import (
	"fmt"
	"strings"
	"unicode"
)

type tokenKind int

const (
	tokEOF      tokenKind = iota
	tokAtom               // lowercase identifier, integer, or quoted atom
	tokVar                // uppercase/underscore identifier
	tokLParen             // (
	tokRParen             // )
	tokLBracket           // [
	tokRBracket           // ]
	tokComma              // ,
	tokBar                // |
	tokDot                // .
	tokImplies            // :-
	tokQuery              // ?-
)

func (k tokenKind) String() string {
	switch k {
	case tokEOF:
		return "end of input"
	case tokAtom:
		return "atom"
	case tokVar:
		return "variable"
	case tokLParen:
		return "'('"
	case tokRParen:
		return "')'"
	case tokLBracket:
		return "'['"
	case tokRBracket:
		return "']'"
	case tokComma:
		return "','"
	case tokBar:
		return "'|'"
	case tokDot:
		return "'.'"
	case tokImplies:
		return "':-'"
	case tokQuery:
		return "'?-'"
	default:
		return fmt.Sprintf("token(%d)", int(k))
	}
}

type token struct {
	kind tokenKind
	text string
	line int
	col  int
}

func (t token) String() string {
	if t.text != "" {
		return fmt.Sprintf("%s %q", t.kind, t.text)
	}
	return t.kind.String()
}

// lexer streams tokens from source text.
type lexer struct {
	src  string
	pos  int
	line int
	col  int
}

func newLexer(src string) *lexer { return &lexer{src: src, line: 1, col: 1} }

// SyntaxError reports a lexing or parsing failure with position information.
type SyntaxError struct {
	Line, Col int
	Msg       string
}

func (e *SyntaxError) Error() string {
	return fmt.Sprintf("%d:%d: %s", e.Line, e.Col, e.Msg)
}

func (l *lexer) errorf(format string, args ...any) error {
	return &SyntaxError{Line: l.line, Col: l.col, Msg: fmt.Sprintf(format, args...)}
}

func (l *lexer) peekByte() (byte, bool) {
	if l.pos >= len(l.src) {
		return 0, false
	}
	return l.src[l.pos], true
}

func (l *lexer) advance() byte {
	c := l.src[l.pos]
	l.pos++
	if c == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return c
}

func (l *lexer) skipSpaceAndComments() {
	for {
		c, ok := l.peekByte()
		if !ok {
			return
		}
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			l.advance()
		case c == '%':
			for {
				c, ok := l.peekByte()
				if !ok || c == '\n' {
					break
				}
				l.advance()
			}
		case c == '/' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '*':
			l.advance()
			l.advance()
			for {
				c, ok := l.peekByte()
				if !ok {
					return
				}
				l.advance()
				if c == '*' {
					if n, ok := l.peekByte(); ok && n == '/' {
						l.advance()
						break
					}
				}
			}
		default:
			return
		}
	}
}

func isIdentByte(c byte) bool {
	return c == '_' || unicode.IsLetter(rune(c)) || unicode.IsDigit(rune(c))
}

// next returns the next token.
func (l *lexer) next() (token, error) {
	l.skipSpaceAndComments()
	line, col := l.line, l.col
	c, ok := l.peekByte()
	if !ok {
		return token{kind: tokEOF, line: line, col: col}, nil
	}
	mk := func(k tokenKind, text string) token {
		return token{kind: k, text: text, line: line, col: col}
	}
	switch {
	case c == '(':
		l.advance()
		return mk(tokLParen, ""), nil
	case c == ')':
		l.advance()
		return mk(tokRParen, ""), nil
	case c == '[':
		l.advance()
		return mk(tokLBracket, ""), nil
	case c == ']':
		l.advance()
		return mk(tokRBracket, ""), nil
	case c == ',':
		l.advance()
		return mk(tokComma, ""), nil
	case c == '|':
		l.advance()
		return mk(tokBar, ""), nil
	case c == '.':
		l.advance()
		return mk(tokDot, ""), nil
	case c == ':':
		l.advance()
		if n, ok := l.peekByte(); ok && n == '-' {
			l.advance()
			return mk(tokImplies, ""), nil
		}
		return token{}, l.errorf("expected '-' after ':'")
	case c == '?':
		l.advance()
		if n, ok := l.peekByte(); ok && n == '-' {
			l.advance()
			return mk(tokQuery, ""), nil
		}
		return token{}, l.errorf("expected '-' after '?'")
	case c == '\'':
		l.advance()
		var b strings.Builder
		for {
			c, ok := l.peekByte()
			if !ok {
				return token{}, l.errorf("unterminated quoted atom")
			}
			l.advance()
			if c == '\'' {
				if n, ok := l.peekByte(); ok && n == '\'' { // '' escapes '
					l.advance()
					b.WriteByte('\'')
					continue
				}
				return mk(tokAtom, b.String()), nil
			}
			b.WriteByte(c)
		}
	case c == '-' || unicode.IsDigit(rune(c)):
		var b strings.Builder
		b.WriteByte(l.advance())
		for {
			c, ok := l.peekByte()
			if !ok || !unicode.IsDigit(rune(c)) {
				break
			}
			b.WriteByte(l.advance())
		}
		if b.String() == "-" {
			return token{}, l.errorf("expected digits after '-'")
		}
		return mk(tokAtom, b.String()), nil
	case c == '_' || unicode.IsUpper(rune(c)):
		var b strings.Builder
		for {
			c, ok := l.peekByte()
			if !ok || !isIdentByte(c) {
				break
			}
			b.WriteByte(l.advance())
		}
		return mk(tokVar, b.String()), nil
	case unicode.IsLower(rune(c)):
		var b strings.Builder
		for {
			c, ok := l.peekByte()
			if !ok || !isIdentByte(c) {
				break
			}
			b.WriteByte(l.advance())
		}
		return mk(tokAtom, b.String()), nil
	default:
		return token{}, l.errorf("unexpected character %q", string(rune(c)))
	}
}
