package parser

import (
	"fmt"
	"strings"

	"factorlog/internal/ast"
)

// Unit is the result of parsing one source text: the IDB rules, the ground
// EDB facts, and any queries, in source order.
type Unit struct {
	Rules   []ast.Rule
	Facts   []ast.Atom
	Queries []ast.Atom
}

// Program wraps the parsed rules in an ast.Program.
func (u *Unit) Program() *ast.Program { return ast.NewProgram(u.Rules...) }

// Parse parses a complete source text.
//
// Bodyless clauses with ground heads become Facts; bodyless clauses with
// variables are an error (unsafe facts denote infinite relations). Clauses
// of the form `?- atom.` become Queries.
func Parse(src string) (*Unit, error) {
	p := &parser{lex: newLexer(src)}
	if err := p.prime(); err != nil {
		return nil, err
	}
	u := &Unit{}
	for p.tok.kind != tokEOF {
		if p.tok.kind == tokQuery {
			if err := p.consume(tokQuery); err != nil {
				return nil, err
			}
			a, err := p.atom()
			if err != nil {
				return nil, err
			}
			if err := p.consume(tokDot); err != nil {
				return nil, err
			}
			u.Queries = append(u.Queries, a)
			continue
		}
		r, err := p.clause()
		if err != nil {
			return nil, err
		}
		if r.IsFact() && r.Head.Ground() {
			u.Facts = append(u.Facts, r.Head)
		} else {
			// Non-ground bodyless clauses (Prolog-style unit clauses such as
			// member(X,[X|T]).) are kept as rules; the bottom-up engine
			// rejects them as unsafe, the top-down resolver handles them.
			u.Rules = append(u.Rules, r)
		}
	}
	return u, nil
}

// ParseProgram parses a source text containing rules only (no queries).
// Ground bodyless clauses are kept as bodyless rules — magic seeds like
// `m_t_bf(5).` are ordinary IDB rules. Queries are an error.
func ParseProgram(src string) (*ast.Program, error) {
	u, err := Parse(src)
	if err != nil {
		return nil, err
	}
	if len(u.Queries) > 0 {
		return nil, fmt.Errorf("unexpected query %s in program-only source", u.Queries[0])
	}
	p := u.Program()
	// Re-interleave facts as rules. Source order between rules and facts is
	// not preserved exactly (facts appended), which is semantically
	// irrelevant for a rule set.
	for _, f := range u.Facts {
		p.Add(ast.Fact(f))
	}
	return p, nil
}

// MustParseProgram is ParseProgram, panicking on error; for tests and
// package-level example data.
func MustParseProgram(src string) *ast.Program {
	p, err := ParseProgram(src)
	if err != nil {
		panic(err)
	}
	return p
}

// ParseAtom parses a single atom such as "t(5, Y)".
func ParseAtom(src string) (ast.Atom, error) {
	p := &parser{lex: newLexer(src)}
	if err := p.prime(); err != nil {
		return ast.Atom{}, err
	}
	a, err := p.atom()
	if err != nil {
		return ast.Atom{}, err
	}
	if p.tok.kind == tokDot {
		if err := p.advance(); err != nil {
			return ast.Atom{}, err
		}
	}
	if p.tok.kind != tokEOF {
		return ast.Atom{}, p.errorAt("trailing input after atom: %s", p.tok)
	}
	return a, nil
}

// MustParseAtom is ParseAtom, panicking on error.
func MustParseAtom(src string) ast.Atom {
	a, err := ParseAtom(src)
	if err != nil {
		panic(err)
	}
	return a
}

// ParseTerm parses a single term such as "[a,b|T]" or "f(X, 3)".
func ParseTerm(src string) (ast.Term, error) {
	p := &parser{lex: newLexer(src)}
	if err := p.prime(); err != nil {
		return ast.Term{}, err
	}
	t, err := p.term()
	if err != nil {
		return ast.Term{}, err
	}
	if p.tok.kind != tokEOF {
		return ast.Term{}, p.errorAt("trailing input after term: %s", p.tok)
	}
	return t, nil
}

// MustParseTerm is ParseTerm, panicking on error.
func MustParseTerm(src string) ast.Term {
	t, err := ParseTerm(src)
	if err != nil {
		panic(err)
	}
	return t
}

type parser struct {
	lex   *lexer
	tok   token
	anonN int
}

func (p *parser) prime() error { return p.advance() }

func (p *parser) advance() error {
	t, err := p.lex.next()
	if err != nil {
		return err
	}
	p.tok = t
	return nil
}

func (p *parser) errorAt(format string, args ...any) error {
	return &SyntaxError{Line: p.tok.line, Col: p.tok.col, Msg: fmt.Sprintf(format, args...)}
}

func (p *parser) consume(k tokenKind) error {
	if p.tok.kind != k {
		return p.errorAt("expected %s, found %s", k, p.tok)
	}
	return p.advance()
}

// clause parses: head [:- body] '.'
func (p *parser) clause() (ast.Rule, error) {
	head, err := p.atom()
	if err != nil {
		return ast.Rule{}, err
	}
	r := ast.Rule{Head: head}
	if p.tok.kind == tokImplies {
		if err := p.advance(); err != nil {
			return ast.Rule{}, err
		}
		for {
			a, err := p.atom()
			if err != nil {
				return ast.Rule{}, err
			}
			r.Body = append(r.Body, a)
			if p.tok.kind != tokComma {
				break
			}
			if err := p.advance(); err != nil {
				return ast.Rule{}, err
			}
		}
	}
	if err := p.consume(tokDot); err != nil {
		return ast.Rule{}, err
	}
	return r, nil
}

// atom parses: name [ '(' term {',' term} ')' ]
func (p *parser) atom() (ast.Atom, error) {
	if p.tok.kind != tokAtom {
		return ast.Atom{}, p.errorAt("expected predicate name, found %s", p.tok)
	}
	name := p.tok.text
	if err := p.advance(); err != nil {
		return ast.Atom{}, err
	}
	a := ast.Atom{Pred: name}
	if p.tok.kind != tokLParen {
		return a, nil // zero-arity predicate
	}
	if err := p.advance(); err != nil {
		return ast.Atom{}, err
	}
	for {
		t, err := p.term()
		if err != nil {
			return ast.Atom{}, err
		}
		a.Args = append(a.Args, t)
		if p.tok.kind == tokComma {
			if err := p.advance(); err != nil {
				return ast.Atom{}, err
			}
			continue
		}
		break
	}
	if err := p.consume(tokRParen); err != nil {
		return ast.Atom{}, err
	}
	return a, nil
}

// term parses a variable, constant, compound term, or list.
func (p *parser) term() (ast.Term, error) {
	switch p.tok.kind {
	case tokVar:
		name := p.tok.text
		if err := p.advance(); err != nil {
			return ast.Term{}, err
		}
		if name == "_" {
			p.anonN++
			name = fmt.Sprintf("_G%d", p.anonN)
		}
		return ast.V(name), nil
	case tokAtom:
		name := p.tok.text
		if err := p.advance(); err != nil {
			return ast.Term{}, err
		}
		if p.tok.kind != tokLParen {
			return ast.C(name), nil
		}
		if err := p.advance(); err != nil {
			return ast.Term{}, err
		}
		var args []ast.Term
		for {
			t, err := p.term()
			if err != nil {
				return ast.Term{}, err
			}
			args = append(args, t)
			if p.tok.kind == tokComma {
				if err := p.advance(); err != nil {
					return ast.Term{}, err
				}
				continue
			}
			break
		}
		if err := p.consume(tokRParen); err != nil {
			return ast.Term{}, err
		}
		return ast.Fn(name, args...), nil
	case tokLBracket:
		return p.list()
	default:
		return ast.Term{}, p.errorAt("expected term, found %s", p.tok)
	}
}

// list parses '[' [term {',' term} ['|' term]] ']'.
func (p *parser) list() (ast.Term, error) {
	if err := p.consume(tokLBracket); err != nil {
		return ast.Term{}, err
	}
	if p.tok.kind == tokRBracket {
		if err := p.advance(); err != nil {
			return ast.Term{}, err
		}
		return ast.Nil(), nil
	}
	var elems []ast.Term
	for {
		t, err := p.term()
		if err != nil {
			return ast.Term{}, err
		}
		elems = append(elems, t)
		if p.tok.kind == tokComma {
			if err := p.advance(); err != nil {
				return ast.Term{}, err
			}
			continue
		}
		break
	}
	tail := ast.Nil()
	if p.tok.kind == tokBar {
		if err := p.advance(); err != nil {
			return ast.Term{}, err
		}
		t, err := p.term()
		if err != nil {
			return ast.Term{}, err
		}
		tail = t
	}
	if err := p.consume(tokRBracket); err != nil {
		return ast.Term{}, err
	}
	return ast.ListTail(tail, elems...), nil
}

// IsAnonymousVar reports whether a variable name was generated for '_'.
func IsAnonymousVar(name string) bool { return strings.HasPrefix(name, "_G") }
