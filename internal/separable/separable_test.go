package separable

import (
	"strings"
	"testing"

	"factorlog/internal/core"
	"factorlog/internal/parser"
)

func TestAnalyzeRuleLeftLinearTC(t *testing.T) {
	r := parser.MustParseProgram(`t(X, Y) :- t(X, W), e(W, Y).`).Rules[0]
	ra, err := AnalyzeRule(r, "t")
	if err != nil {
		t.Fatal(err)
	}
	if !ra.Linear() {
		t.Fatal("rule is linear")
	}
	if len(ra.Shifting) != 0 {
		t.Errorf("shifting = %v", ra.Shifting)
	}
	if len(ra.Fixed) != 1 || ra.Fixed[0] != "X" || ra.FixedPos[0] != 0 {
		t.Errorf("fixed = %v at %v", ra.Fixed, ra.FixedPos)
	}
	if len(ra.HeadShared) != 1 || ra.HeadShared[0] != 1 {
		t.Errorf("headShared = %v", ra.HeadShared)
	}
	if len(ra.BodyShared) != 1 || ra.BodyShared[0] != 1 {
		t.Errorf("bodyShared = %v", ra.BodyShared)
	}
	if ra.NonRecComponents != 1 {
		t.Errorf("components = %d", ra.NonRecComponents)
	}
}

func TestAnalyzeRuleShifting(t *testing.T) {
	r := parser.MustParseProgram(`p(X, Y, Z) :- p(X, Z, W), e(W, Y).`).Rules[0]
	ra, err := AnalyzeRule(r, "p")
	if err != nil {
		t.Fatal(err)
	}
	if len(ra.Shifting) != 1 || ra.Shifting[0] != "Z" {
		t.Errorf("shifting = %v", ra.Shifting)
	}
}

func TestAnalyzeRuleErrors(t *testing.T) {
	r := parser.MustParseProgram(`p(X, 5) :- p(X, W), e(W).`).Rules[0]
	if _, err := AnalyzeRule(r, "p"); err == nil {
		t.Error("constant argument should be rejected")
	}
	r2 := parser.MustParseProgram(`p(X, X) :- p(X, W), e(W).`).Rules[0]
	if _, err := AnalyzeRule(r2, "p"); err == nil {
		t.Error("repeated variable should be rejected")
	}
	r3 := parser.MustParseProgram(`q(X) :- p(X, W).`).Rules[0]
	if _, err := AnalyzeRule(r3, "p"); err == nil {
		t.Error("wrong head predicate should be rejected")
	}
}

func TestIsSeparableLeftLinearTC(t *testing.T) {
	p := parser.MustParseProgram(`
		t(X, Y) :- t(X, W), e(W, Y).
		t(X, Y) :- e(X, Y).
	`)
	ok, reason := IsSeparable(p, "t")
	if !ok {
		t.Fatalf("left-linear TC should be separable: %s", reason)
	}
	ok, reason = IsReducible(p, "t")
	if !ok {
		t.Fatalf("left-linear TC should be reducible: %s", reason)
	}
}

func TestIsSeparableTwoSidedColumns(t *testing.T) {
	// One rule advances column 2, the other column 1: t^h sets {1} and {0}
	// are disjoint — separable and reducible.
	p := parser.MustParseProgram(`
		t(X, Y) :- t(X, W), b(W, Y).
		t(X, Y) :- a(X, Z), t(Z, Y).
		t(X, Y) :- e(X, Y).
	`)
	ok, reason := IsSeparable(p, "t")
	if !ok {
		t.Fatalf("should be separable: %s", reason)
	}
	ok, reason = IsReducible(p, "t")
	if !ok {
		t.Fatalf("should be reducible: %s", reason)
	}
}

func TestIsSeparableRejectsSameGeneration(t *testing.T) {
	p := parser.MustParseProgram(`
		sg(X, Y) :- up(X, U), sg(U, V), down(V, Y).
		sg(X, Y) :- flat(X, Y).
	`)
	ok, reason := IsSeparable(p, "sg")
	if ok {
		t.Fatal("same generation is not separable")
	}
	if !strings.Contains(reason, "components") {
		t.Errorf("reason = %q", reason)
	}
}

func TestIsSeparableRejectsShifting(t *testing.T) {
	p := parser.MustParseProgram(`
		p(X, Y) :- p(Y, W), e(W, X).
		p(X, Y) :- e(X, Y).
	`)
	ok, reason := IsSeparable(p, "p")
	if ok {
		t.Fatal("shifting variables are not separable")
	}
	if !strings.Contains(reason, "shifting") {
		t.Errorf("reason = %q", reason)
	}
}

func TestIsSeparableRejectsNonLinear(t *testing.T) {
	p := parser.MustParseProgram(`
		t(X, Y) :- t(X, W), t(W, Y).
		t(X, Y) :- e(X, Y).
	`)
	if ok, _ := IsSeparable(p, "t"); ok {
		t.Error("non-linear recursion is not separable")
	}
}

func TestIsSeparableRejectsOverlappingShared(t *testing.T) {
	// Rule 1 shares {0,1}, rule 2 shares {1}: overlap without equality.
	p := parser.MustParseProgram(`
		t(X, Y) :- t(W, V), a(X, W, Y, V).
		t(X, Y) :- t(X, V), b(V, Y).
		t(X, Y) :- e(X, Y).
	`)
	ok, reason := IsSeparable(p, "t")
	if ok {
		t.Fatal("overlapping shared sets should be rejected")
	}
	_ = reason
}

func TestIsReducibleRejectsFixedInShared(t *testing.T) {
	// X is fixed AND shared with the nonrecursive atom a(X,W,Y):
	// separable condition 2 holds but reducibility fails.
	p := parser.MustParseProgram(`
		t(X, Y) :- t(X, W), a(X, W, Y).
		t(X, Y) :- e(X, Y).
	`)
	ok, reason := IsSeparable(p, "t")
	if !ok {
		t.Fatalf("should be separable: %s", reason)
	}
	ok, reason = IsReducible(p, "t")
	if ok {
		t.Fatal("fixed variable in t^h: should not be reducible")
	}
	if !strings.Contains(reason, "fixed variable") {
		t.Errorf("reason = %q", reason)
	}
}

func TestExpandRule(t *testing.T) {
	r := parser.MustParseProgram(`t(X, Y) :- t(X, W), e(W, Y).`).Rules[0]
	e2, err := ExpandRule(r, "t", 1)
	if err != nil {
		t.Fatal(err)
	}
	// t(X,Y) :- t(X,W'), e(W',W), e(W,Y).
	if len(e2.Body) != 3 {
		t.Fatalf("expanded body = %s", e2)
	}
	nRec := 0
	for _, a := range e2.Body {
		if a.Pred == "t" {
			nRec++
		}
	}
	if nRec != 1 {
		t.Errorf("expanded rule not linear: %s", e2)
	}
	// Zero expansion returns the rule unchanged.
	e0, err := ExpandRule(r, "t", 0)
	if err != nil {
		t.Fatal(err)
	}
	if !e0.Equal(r) {
		t.Error("k=0 should be identity")
	}
}

func TestMatchesEquationOne(t *testing.T) {
	cases := []struct {
		src  string
		want bool
	}{
		{`t(X, Y) :- t(X, W), e(W, Y).`, true},
		{`t(X, Y) :- e(X, W), t(W, Y).`, true},                // A block empty: degenerate Eq (1)
		{`p(X, Y, Z) :- p(X, Z, W), e(W, Y).`, false},         // shifting
		{`t(X, Y) :- t(X, W), a(X, W, Y).`, false},            // fixed var in c
		{`t(X, Y) :- t(X, W), t(W, Y).`, false},               // non-linear
		{`sg(X, Y) :- up(X, U), sg(U, V), down(V, Y).`, true}, // linear, no fixed vars: vacuous A block
	}
	for _, c := range cases {
		r := parser.MustParseProgram(c.src).Rules[0]
		pred := r.Head.Pred
		if got := MatchesEquationOne(r, pred); got != c.want {
			t.Errorf("MatchesEquationOne(%s) = %v, want %v", c.src, got, c.want)
		}
	}
}

func TestIsSimpleOneSidedNeedsExpansion(t *testing.T) {
	// Z shifts between positions 3 and 2; one expansion makes the rule
	// match Eq. (1) (period-2 one-sided recursion).
	r := parser.MustParseProgram(`p(X, Y, Z) :- p(X, Z, W), e(W, Y).`).Rules[0]
	k, ok := IsSimpleOneSided(r, "p", 4)
	if !ok {
		t.Fatal("period-2 recursion should be simple one-sided")
	}
	if k != 1 {
		t.Errorf("k = %d, want 1", k)
	}
	// Direct form needs no expansion.
	r2 := parser.MustParseProgram(`t(X, Y) :- t(X, W), e(W, Y).`).Rules[0]
	if k, ok := IsSimpleOneSided(r2, "t", 4); !ok || k != 0 {
		t.Errorf("direct form: k=%d ok=%v", k, ok)
	}
}

// TestTheorem62Pipeline: a simple one-sided recursion, under a full
// selection, yields a selection-pushing adorned program and hence factors.
func TestTheorem62Pipeline(t *testing.T) {
	p := parser.MustParseProgram(`
		t(X, Y) :- t(X, W), c(W, D, Y).
		t(X, Y) :- exit(X, Y).
	`)
	r := p.Rules[0]
	if _, ok := IsSimpleOneSided(r, "t", 2); !ok {
		t.Fatal("rule should be simple one-sided")
	}
	// Full selection binding A: query t(5, Y).
	full, err := FullSelection(p, "t", parser.MustParseAtom("t(5, Y)"))
	if err != nil {
		t.Fatal(err)
	}
	if !full {
		t.Error("t(5, Y) should be a full selection (binds A)")
	}
	a, err := core.AnalyzeQuery(p, parser.MustParseAtom("t(5, Y)"))
	if err != nil {
		t.Fatal(err)
	}
	if ok, reason := core.SelectionPushing(a); !ok {
		t.Errorf("Theorem 6.2 (A bound): %s", reason)
	}

	// Full selection binding B: query t(X, 5) — the rule becomes
	// right-linear with empty right; also selection-pushing. The body must
	// place the recursive literal last for the left-to-right SIP to keep a
	// single adornment.
	p2 := parser.MustParseProgram(`
		t(X, Y) :- c(W, D, Y), t(X, W).
		t(X, Y) :- exit(X, Y).
	`)
	a2, err := core.AnalyzeQuery(p2, parser.MustParseAtom("t(X, 5)"))
	if err != nil {
		t.Fatal(err)
	}
	if ok, reason := core.SelectionPushing(a2); !ok {
		t.Errorf("Theorem 6.2 (B bound): %s", reason)
	}
}

// TestTheorem63Pipeline: a reducible separable recursion under a full
// selection is selection-pushing (left-linear with no left predicate plus
// right-linear with no right predicate).
func TestTheorem63Pipeline(t *testing.T) {
	p := parser.MustParseProgram(`
		t(X, Y) :- t(X, W), b(W, Y).
		t(X, Y) :- a(X, Z), t(Z, Y).
		t(X, Y) :- e(X, Y).
	`)
	if ok, reason := IsReducible(p, "t"); !ok {
		t.Fatalf("not reducible: %s", reason)
	}
	a, err := core.AnalyzeQuery(p, parser.MustParseAtom("t(5, Y)"))
	if err != nil {
		t.Fatal(err)
	}
	if a.Rules[0].Shape != core.ShapeLeftLinear || len(a.Rules[0].Left) != 0 {
		t.Errorf("rule 1: %v left=%v", a.Rules[0].Shape, a.Rules[0].Left)
	}
	if a.Rules[1].Shape != core.ShapeRightLinear || len(a.Rules[1].Right) != 0 {
		t.Errorf("rule 2: %v right=%v", a.Rules[1].Shape, a.Rules[1].Right)
	}
	if ok, reason := core.SelectionPushing(a); !ok {
		t.Errorf("Theorem 6.3: %s", reason)
	}
}

func TestFullSelectionNegative(t *testing.T) {
	p := parser.MustParseProgram(`
		t(X, Y) :- t(X, W), c(W, Y).
		t(X, Y) :- exit(X, Y).
	`)
	full, err := FullSelection(p, "t", parser.MustParseAtom("t(X, Y)"))
	if err != nil {
		t.Fatal(err)
	}
	if full {
		t.Error("all-free query is not a full selection")
	}
	// Binding both blocks at once is not a full selection either.
	full, err = FullSelection(p, "t", parser.MustParseAtom("t(1, 2)"))
	if err != nil {
		t.Fatal(err)
	}
	if full {
		t.Error("all-bound query binds both blocks; not a full selection")
	}
}

func TestFullSelectionSameGenerationNeverUseful(t *testing.T) {
	// sg has an empty fixed block: the Eq.-(1) form matches vacuously, but
	// no single-argument selection is a full selection, so Theorem 6.2
	// never certifies factoring sg (which indeed does not factor).
	p := parser.MustParseProgram(`
		sg(X, Y) :- up(X, U), sg(U, V), down(V, Y).
		sg(X, Y) :- flat(X, Y).
	`)
	full, err := FullSelection(p, "sg", parser.MustParseAtom("sg(john, Y)"))
	if err != nil {
		t.Fatal(err)
	}
	if full {
		t.Error("sg(john, Y) must not be a full selection (empty A block)")
	}
}
