// Package separable implements the recursion classes of Section 6 of the
// paper: shifting and fixed variables (Definitions 6.1, 6.5), separable
// recursions (Definitions 6.2-6.4, [7]), reducible separable recursions
// (Definition 6.6), rule self-expansion, and the Eq.-(1) form test for
// simple one-sided recursions ([6], Theorem 6.2).
//
// Theorems 6.2 and 6.3 reduce these classes to selection-pushing programs,
// so the pipeline for them is: detect the class here, then run the ordinary
// Magic-then-factor pipeline of packages magic and core.
//
// Note on Theorem 6.1: the A/V-graph characterization of one-sided
// recursions lives in [6] and is not reproduced in the paper's text; we
// implement the operational characterization the paper actually uses
// downstream — a recursion is treated as simple one-sided when some
// self-expansion of its linear rule matches Eq. (1), which is exactly the
// precondition of Theorem 6.2 (see DESIGN.md, "Substitutions").
package separable

import (
	"fmt"
	"sort"

	"factorlog/internal/ast"
)

// RuleAnalysis captures the Section-6 structure of one recursive rule.
type RuleAnalysis struct {
	// RecOccs are the body indices of recursive-predicate occurrences.
	RecOccs []int
	// Shifting lists the shifting variables (Definition 6.1): variables at
	// different positions in the head and body occurrences of the
	// recursive predicate.
	Shifting []string
	// Fixed lists the fixed variables (Definition 6.5) and FixedPos their
	// positions.
	Fixed    []string
	FixedPos []int
	// HeadShared (t^h) and BodyShared (t^b) are the argument positions of
	// the head / body occurrence that share a variable with a
	// non-recursive body atom.
	HeadShared []int
	BodyShared []int
	// NonRecComponents counts connected components of the non-recursive
	// body atoms under variable sharing.
	NonRecComponents int
}

// Linear reports whether the rule has exactly one recursive occurrence.
func (ra RuleAnalysis) Linear() bool { return len(ra.RecOccs) == 1 }

// AnalyzeRule analyzes one rule with respect to the recursive predicate.
// The recursive literals must have variable arguments, distinct within each
// literal.
func AnalyzeRule(r ast.Rule, pred string) (RuleAnalysis, error) {
	ra := RuleAnalysis{}
	if r.Head.Pred != pred {
		return ra, fmt.Errorf("rule head is %s, not %s", r.Head.Pred, pred)
	}
	if err := checkVarArgs(r.Head); err != nil {
		return ra, err
	}
	var nonRec []ast.Atom
	for i, a := range r.Body {
		if a.Pred == pred {
			if err := checkVarArgs(a); err != nil {
				return ra, err
			}
			ra.RecOccs = append(ra.RecOccs, i)
		} else {
			nonRec = append(nonRec, a)
		}
	}
	if len(ra.RecOccs) == 1 {
		occ := r.Body[ra.RecOccs[0]]
		headPos := map[string]int{}
		for p, t := range r.Head.Args {
			headPos[t.Functor] = p
		}
		for p, t := range occ.Args {
			hp, inHead := headPos[t.Functor]
			switch {
			case inHead && hp == p:
				ra.Fixed = append(ra.Fixed, t.Functor)
				ra.FixedPos = append(ra.FixedPos, p)
			case inHead:
				ra.Shifting = append(ra.Shifting, t.Functor)
			}
		}
		nonRecVars := map[string]bool{}
		for _, a := range nonRec {
			for _, v := range a.Vars() {
				nonRecVars[v] = true
			}
		}
		for p, t := range r.Head.Args {
			if nonRecVars[t.Functor] {
				ra.HeadShared = append(ra.HeadShared, p)
			}
		}
		for p, t := range occ.Args {
			if nonRecVars[t.Functor] {
				ra.BodyShared = append(ra.BodyShared, p)
			}
		}
	}
	ra.NonRecComponents = countComponents(nonRec)
	return ra, nil
}

func checkVarArgs(a ast.Atom) error {
	seen := map[string]bool{}
	for _, t := range a.Args {
		if !t.IsVar() {
			return fmt.Errorf("argument %s of %s is not a variable", t, a.Pred)
		}
		if seen[t.Functor] {
			return fmt.Errorf("variable %s repeated in %s", t.Functor, a)
		}
		seen[t.Functor] = true
	}
	return nil
}

func countComponents(atoms []ast.Atom) int {
	n := len(atoms)
	if n == 0 {
		return 0
	}
	parent := make([]int, n)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	byVar := map[string]int{}
	for i, a := range atoms {
		for _, v := range a.Vars() {
			if j, ok := byVar[v]; ok {
				parent[find(i)] = find(j)
			} else {
				byVar[v] = i
			}
		}
	}
	roots := map[int]bool{}
	for i := range atoms {
		roots[find(i)] = true
	}
	return len(roots)
}

// IsSeparable tests Definition 6.4 on the recursive rules of p for pred.
// Exit rules (no recursive occurrence) are ignored. A failure reason is
// returned with a negative verdict.
func IsSeparable(p *ast.Program, pred string) (bool, string) {
	ras, err := recursiveAnalyses(p, pred)
	if err != nil {
		return false, err.Error()
	}
	if len(ras) == 0 {
		return false, "no recursive rules"
	}
	for i, ra := range ras {
		if !ra.Linear() {
			return false, fmt.Sprintf("recursive rule %d is not linear", i+1)
		}
		// (1) No shifting variables.
		if len(ra.Shifting) > 0 {
			return false, fmt.Sprintf("recursive rule %d has shifting variables %v", i+1, ra.Shifting)
		}
		// (2) t_i^h = t_i^b.
		if !intsEqual(ra.HeadShared, ra.BodyShared) {
			return false, fmt.Sprintf("recursive rule %d: head-shared %v != body-shared %v",
				i+1, ra.HeadShared, ra.BodyShared)
		}
		// (4) The non-recursive atoms form one maximal connected set.
		if ra.NonRecComponents > 1 {
			return false, fmt.Sprintf("recursive rule %d: non-recursive atoms form %d components",
				i+1, ra.NonRecComponents)
		}
	}
	// (3) Pairwise, t_i^h and t_j^h equal or disjoint.
	for i := 0; i < len(ras); i++ {
		for j := i + 1; j < len(ras); j++ {
			a, b := ras[i].HeadShared, ras[j].HeadShared
			if !intsEqual(a, b) && !intsDisjoint(a, b) {
				return false, fmt.Sprintf("rules %d and %d: shared positions %v and %v overlap without being equal",
					i+1, j+1, a, b)
			}
		}
	}
	return true, ""
}

// IsReducible tests Definition 6.6: a separable recursion in which no fixed
// variable appears in any t_i^h.
func IsReducible(p *ast.Program, pred string) (bool, string) {
	if ok, reason := IsSeparable(p, pred); !ok {
		return false, reason
	}
	ras, _ := recursiveAnalyses(p, pred)
	for i, ra := range ras {
		shared := map[int]bool{}
		for _, pos := range ra.HeadShared {
			shared[pos] = true
		}
		for k, pos := range ra.FixedPos {
			if shared[pos] {
				return false, fmt.Sprintf("recursive rule %d: fixed variable %s is in t^h",
					i+1, ra.Fixed[k])
			}
		}
	}
	return true, ""
}

func recursiveAnalyses(p *ast.Program, pred string) ([]RuleAnalysis, error) {
	var out []RuleAnalysis
	for _, r := range p.RulesFor(pred) {
		ra, err := AnalyzeRule(r, pred)
		if err != nil {
			return nil, err
		}
		if len(ra.RecOccs) > 0 {
			out = append(out, ra)
		}
	}
	return out, nil
}

func intsEqual(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	as := append([]int(nil), a...)
	bs := append([]int(nil), b...)
	sort.Ints(as)
	sort.Ints(bs)
	for i := range as {
		if as[i] != bs[i] {
			return false
		}
	}
	return true
}

func intsDisjoint(a, b []int) bool {
	set := map[int]bool{}
	for _, x := range a {
		set[x] = true
	}
	for _, y := range b {
		if set[y] {
			return false
		}
	}
	return true
}

// ExpandRule unfolds the recursive occurrence of a linear rule with a
// renamed copy of the rule itself, k times — the "expansion" of Section 6.1
// ("substituting the rule into itself some number of times"). k = 0 returns
// the rule unchanged.
func ExpandRule(r ast.Rule, pred string, k int) (ast.Rule, error) {
	cur := r.Clone()
	gen := ast.NewFreshGen(r)
	for step := 0; step < k; step++ {
		ra, err := AnalyzeRule(cur, pred)
		if err != nil {
			return ast.Rule{}, err
		}
		if !ra.Linear() {
			return ast.Rule{}, fmt.Errorf("rule is not linear: %s", cur)
		}
		occIdx := ra.RecOccs[0]
		occ := cur.Body[occIdx]
		copyRule := r.RenameApart(gen)
		sub, ok := ast.UnifyAtoms(copyRule.Head, occ, nil)
		if !ok {
			return ast.Rule{}, fmt.Errorf("cannot unfold %s with %s", occ, copyRule.Head)
		}
		var body []ast.Atom
		body = append(body, cur.Body[:occIdx]...)
		for _, b := range copyRule.Body {
			body = append(body, sub.ApplyAtom(b))
		}
		body = append(body, cur.Body[occIdx+1:]...)
		cur = ast.Rule{Head: sub.ApplyAtom(cur.Head), Body: body}
	}
	return cur, nil
}

// MatchesEquationOne reports whether a linear recursive rule has the form
// of Eq. (1) of the paper,
//
//	p(A.., B..) :- p(A.., C..), c(C.., D.., B..)
//
// up to argument permutation: one recursive occurrence, no shifting
// variables, and no fixed variable occurring in the non-recursive atoms
// (the A block passes through untouched).
func MatchesEquationOne(r ast.Rule, pred string) bool {
	ra, err := AnalyzeRule(r, pred)
	if err != nil || !ra.Linear() {
		return false
	}
	if len(ra.Shifting) > 0 {
		return false
	}
	shared := map[int]bool{}
	for _, pos := range ra.HeadShared {
		shared[pos] = true
	}
	for _, pos := range ra.BodyShared {
		shared[pos] = true
	}
	for _, pos := range ra.FixedPos {
		if shared[pos] {
			return false
		}
	}
	return true
}

// IsSimpleOneSided reports whether some expansion of the rule, up to
// maxExpand unfoldings, matches Eq. (1); it returns the first such k. This
// is the operational characterization used by Theorem 6.2 (the A/V-graph
// test of [6] is not reproduced here; see the package comment).
func IsSimpleOneSided(r ast.Rule, pred string, maxExpand int) (int, bool) {
	for k := 0; k <= maxExpand; k++ {
		expanded, err := ExpandRule(r, pred, k)
		if err != nil {
			return 0, false
		}
		if MatchesEquationOne(expanded, pred) {
			return k, true
		}
	}
	return 0, false
}

// FullSelection reports whether the query is a full selection for the
// expanded Eq.-(1) form: for every recursive rule it binds exactly the
// fixed (A) block, or exactly the moving (B) block. Exact blocks matter:
// with an empty A block (no fixed variables, e.g. same generation) the
// A-selection is the all-free query and the B-selection the all-bound one,
// both of which admit only trivial factorings — so Theorem 6.2 never
// certifies such programs. Exit rules are ignored.
func FullSelection(p *ast.Program, pred string, query ast.Atom) (bool, error) {
	bound := map[int]bool{}
	for i, t := range query.Args {
		if t.Ground() {
			bound[i] = true
		}
	}
	ras, err := recursiveAnalyses(p, pred)
	if err != nil {
		return false, err
	}
	for _, ra := range ras {
		if !ra.Linear() {
			return false, nil
		}
		fixed := map[int]bool{}
		for _, pos := range ra.FixedPos {
			fixed[pos] = true
		}
		boundIsFixed, boundIsMoving := true, true
		for pos := 0; pos < len(query.Args); pos++ {
			if bound[pos] != fixed[pos] {
				boundIsFixed = false
			}
			if bound[pos] == fixed[pos] {
				boundIsMoving = false
			}
		}
		if !boundIsFixed && !boundIsMoving {
			return false, nil
		}
	}
	return true, nil
}
