package topdown

import (
	"errors"
	"testing"

	"factorlog/internal/engine"
	"factorlog/internal/magic"
	"factorlog/internal/parser"
)

func TestTabledLeftRecursionTerminates(t *testing.T) {
	// Plain SLD diverges on this program (TestSolveLeftRecursionDiverges);
	// tabling terminates with the right answers.
	p := parser.MustParseProgram(`
		t(X, Y) :- t(X, W), e(W, Y).
		t(X, Y) :- e(X, Y).
	`)
	res, err := SolveTabled(p, chainDB(8), parser.MustParseAtom("t(2, Y)"), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Answers) != 6 { // 3..8
		t.Errorf("answers = %v", res.Answers)
	}
}

func TestTabledNonLinearTC(t *testing.T) {
	p := parser.MustParseProgram(`
		t(X, Y) :- t(X, W), t(W, Y).
		t(X, Y) :- e(X, W), t(W, Y).
		t(X, Y) :- t(X, W), e(W, Y).
		t(X, Y) :- e(X, Y).
	`)
	res, err := SolveTabled(p, chainDB(10), parser.MustParseAtom("t(4, Y)"), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Answers) != 6 { // 5..10
		t.Errorf("answers = %v", res.Answers)
	}
	if res.Stats.Rounds < 2 {
		t.Errorf("rounds = %d; fixpoint iteration expected", res.Stats.Rounds)
	}
}

// TestTabledMatchesMagic: the tabled goals correspond exactly to the magic
// facts, and the total table entries to the p^a facts — Magic Sets is
// bottom-up tabling.
func TestTabledMatchesMagic(t *testing.T) {
	src := `
		t(X, Y) :- e(X, W), t(W, Y).
		t(X, Y) :- e(X, Y).
	`
	p := parser.MustParseProgram(src)
	query := parser.MustParseAtom("t(2, Y)")

	db := engine.NewDB()
	for _, e := range [][2]int{{1, 2}, {2, 3}, {3, 4}, {4, 2}, {3, 5}} {
		db.MustInsert("e", db.Store.Int(e[0]), db.Store.Int(e[1]))
	}
	res, err := SolveTabled(p, db, query, Options{})
	if err != nil {
		t.Fatal(err)
	}

	m, err := magic.FromQuery(p, query)
	if err != nil {
		t.Fatal(err)
	}
	dbM := engine.NewDB()
	for _, e := range [][2]int{{1, 2}, {2, 3}, {3, 4}, {4, 2}, {3, 5}} {
		dbM.MustInsert("e", dbM.Store.Int(e[0]), dbM.Store.Int(e[1]))
	}
	if _, err := engine.Eval(m.Program, dbM, engine.Options{}); err != nil {
		t.Fatal(err)
	}

	if got, want := res.Stats.Goals, dbM.Count("m_t_bf"); got != want {
		t.Errorf("tabled goals = %d, magic facts = %d\ngoals: %v", got, want, res.Goals)
	}
	if got, want := res.Stats.Answers, dbM.Count("t_bf"); got != want {
		t.Errorf("table entries = %d, t_bf facts = %d", got, want)
	}
}

func TestTabledAgreesWithPlainSLDWhereBothWork(t *testing.T) {
	p := parser.MustParseProgram(`
		t(X, Y) :- e(X, Y).
		t(X, Y) :- e(X, W), t(W, Y).
	`)
	db := chainDB(7)
	plain, err := Solve(p, db, parser.MustParseAtom("t(1, Y)"), Options{})
	if err != nil {
		t.Fatal(err)
	}
	tab, err := SolveTabled(p, db, parser.MustParseAtom("t(1, Y)"), Options{})
	if err != nil {
		t.Fatal(err)
	}
	a, b := plain.AnswerSet(), tab.AnswerSet()
	if len(a) != len(b) {
		t.Fatalf("plain %v vs tabled %v", a, b)
	}
	for k := range a {
		if !b[k] {
			t.Errorf("missing %s", k)
		}
	}
}

func TestTabledSameGeneration(t *testing.T) {
	p := parser.MustParseProgram(`
		sg(X, Y) :- flat(X, Y).
		sg(X, Y) :- up(X, U), sg(U, V), down(V, Y).
	`)
	db := engine.NewDB()
	facts, err := parser.Parse(`
		up(a, p). up(b, p). up(c, q).
		down(p, a). down(p, b). down(q, c).
		flat(p, q).
	`)
	if err != nil {
		t.Fatal(err)
	}
	if err := engine.LoadFacts(db, facts.Facts); err != nil {
		t.Fatal(err)
	}
	res, err := SolveTabled(p, db, parser.MustParseAtom("sg(a, Y)"), Options{})
	if err != nil {
		t.Fatal(err)
	}
	// a's generation via p flat q: c.
	if len(res.Answers) != 1 || res.Answers[0].String() != "sg(a,c)" {
		t.Errorf("answers = %v", res.Answers)
	}
}

func TestTabledPmem(t *testing.T) {
	p := parser.MustParseProgram(`
		pmem(X, [X|T]) :- p(X).
		pmem(X, [H|T]) :- pmem(X, T).
	`)
	db := engine.NewDB()
	db.MustInsert("p", db.Store.Const("x1"))
	db.MustInsert("p", db.Store.Const("x3"))
	res, err := SolveTabled(p, db, parser.MustParseAtom("pmem(X, [x1, x2, x3])"), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Answers) != 2 {
		t.Errorf("answers = %v", res.Answers)
	}
	// One table per list suffix plus the top goal: n+1 goals.
	if res.Stats.Goals != 4 {
		t.Errorf("goals = %d (%v)", res.Stats.Goals, res.Goals)
	}
}

func TestTabledBudget(t *testing.T) {
	p := parser.MustParseProgram(`
		counter(X) :- counter(s(X)).
		counter(z) :- base(z).
	`)
	db := engine.NewDB()
	db.MustInsert("base", db.Store.Const("z"))
	_, err := SolveTabled(p, db, parser.MustParseAtom("counter(W)"), Options{MaxSteps: 500})
	if !errors.Is(err, ErrBudget) {
		t.Errorf("want ErrBudget, got %v", err)
	}
}

func TestTabledNoAnswers(t *testing.T) {
	p := parser.MustParseProgram(`t(X, Y) :- e(X, Y).`)
	res, err := SolveTabled(p, engine.NewDB(), parser.MustParseAtom("t(1, Y)"), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Answers) != 0 || res.Stats.Goals != 1 {
		t.Errorf("res = %+v", res)
	}
}
