package topdown

import (
	"errors"
	"fmt"
	"testing"

	"factorlog/internal/engine"
	"factorlog/internal/parser"
)

func chainDB(n int) *engine.DB {
	db := engine.NewDB()
	for i := 1; i < n; i++ {
		db.MustInsert("e", db.Store.Int(i), db.Store.Int(i+1))
	}
	return db
}

func TestSolveRightRecursiveTC(t *testing.T) {
	p := parser.MustParseProgram(`
		t(X, Y) :- e(X, Y).
		t(X, Y) :- e(X, W), t(W, Y).
	`)
	res, err := Solve(p, chainDB(6), parser.MustParseAtom("t(2, Y)"), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Answers) != 4 { // 3,4,5,6
		t.Errorf("answers = %v", res.Answers)
	}
	set := res.AnswerSet()
	if !set["t(2,5)"] {
		t.Errorf("missing t(2,5): %v", set)
	}
}

func TestSolveGroundQuery(t *testing.T) {
	p := parser.MustParseProgram(`
		t(X, Y) :- e(X, Y).
		t(X, Y) :- e(X, W), t(W, Y).
	`)
	res, err := Solve(p, chainDB(6), parser.MustParseAtom("t(1, 4)"), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Answers) != 1 {
		t.Errorf("ground query answers = %v", res.Answers)
	}
	res, err = Solve(p, chainDB(6), parser.MustParseAtom("t(4, 1)"), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Answers) != 0 {
		t.Errorf("false ground query answered: %v", res.Answers)
	}
}

func TestSolveLeftRecursionDiverges(t *testing.T) {
	p := parser.MustParseProgram(`
		t(X, Y) :- t(X, W), e(W, Y).
		t(X, Y) :- e(X, Y).
	`)
	_, err := Solve(p, chainDB(4), parser.MustParseAtom("t(1, Y)"), Options{MaxDepth: 200})
	if !errors.Is(err, ErrBudget) {
		t.Errorf("left recursion should exceed budget, got %v", err)
	}
}

func TestSolvePmemQuadratic(t *testing.T) {
	// Example 1.2: if all members satisfy p, Prolog computes O(n^2)
	// pmem(x_i, [x_j..x_n]) facts. Solutions counts them.
	p := parser.MustParseProgram(`
		pmem(X, [X|T]) :- p(X).
		pmem(X, [H|T]) :- pmem(X, T).
	`)
	counts := map[int]int{}
	for _, n := range []int{4, 8, 16} {
		db := engine.NewDB()
		list := "["
		for i := 1; i <= n; i++ {
			if i > 1 {
				list += ","
			}
			list += fmt.Sprintf("x%d", i)
			db.MustInsert("p", db.Store.Const(fmt.Sprintf("x%d", i)))
		}
		list += "]"
		res, err := Solve(p, db, parser.MustParseAtom("pmem(X, "+list+")"), Options{})
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Answers) != n {
			t.Fatalf("n=%d: distinct answers = %d", n, len(res.Answers))
		}
		// IDB goal successes = n + (n-1) + ... + 1 = n(n+1)/2: the paper's
		// O(n^2) pmem facts.
		if res.Stats.IDBSuccesses != n*(n+1)/2 {
			t.Errorf("n=%d: IDB successes = %d, want %d", n, res.Stats.IDBSuccesses, n*(n+1)/2)
		}
		counts[n] = res.Stats.Steps
	}
	// Steps must grow superlinearly: quadrupling n should much more than
	// quadruple steps/4 ... check ratio n=16 vs n=4 exceeds 4x scaling.
	if counts[16] < 4*counts[4] {
		t.Errorf("steps not superlinear: %v", counts)
	}
}

func TestSolveMaxSolutions(t *testing.T) {
	p := parser.MustParseProgram(`
		t(X, Y) :- e(X, Y).
		t(X, Y) :- e(X, W), t(W, Y).
	`)
	res, err := Solve(p, chainDB(10), parser.MustParseAtom("t(1, Y)"), Options{MaxSolutions: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Solutions != 2 {
		t.Errorf("solutions = %d, want 2", res.Stats.Solutions)
	}
}

func TestSolveMaxSteps(t *testing.T) {
	p := parser.MustParseProgram(`
		t(X, Y) :- e(X, Y).
		t(X, Y) :- e(X, W), t(W, Y).
	`)
	_, err := Solve(p, chainDB(50), parser.MustParseAtom("t(X, Y)"), Options{MaxSteps: 10})
	if !errors.Is(err, ErrBudget) {
		t.Errorf("want ErrBudget, got %v", err)
	}
}

func TestSolveListsInGoal(t *testing.T) {
	p := parser.MustParseProgram(`
		member(X, [X|T]).
		member(X, [H|T]) :- member(X, T).
	`)
	res, err := Solve(p, engine.NewDB(), parser.MustParseAtom("member(X, [a,b,c])"), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Answers) != 3 {
		t.Errorf("members = %v", res.Answers)
	}
}

func TestSolveEDBOnlyGoal(t *testing.T) {
	p := parser.MustParseProgram(`t(X) :- e(X, X).`)
	db := engine.NewDB()
	db.MustInsert("e", db.Store.Const("a"), db.Store.Const("a"))
	db.MustInsert("e", db.Store.Const("a"), db.Store.Const("b"))
	res, err := Solve(p, db, parser.MustParseAtom("e(a, Y)"), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Answers) != 2 {
		t.Errorf("EDB query answers = %v", res.Answers)
	}
}

func TestSolveUnknownPredicate(t *testing.T) {
	p := parser.MustParseProgram(`t(X) :- e(X, X).`)
	res, err := Solve(p, engine.NewDB(), parser.MustParseAtom("nosuch(X)"), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Answers) != 0 {
		t.Errorf("unknown predicate should have no answers")
	}
}

func TestStatsPopulated(t *testing.T) {
	p := parser.MustParseProgram(`
		t(X, Y) :- e(X, Y).
		t(X, Y) :- e(X, W), t(W, Y).
	`)
	res, err := Solve(p, chainDB(5), parser.MustParseAtom("t(1, Y)"), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Steps == 0 || res.Stats.DistinctGoals == 0 || res.Stats.MaxDepthSeen == 0 {
		t.Errorf("stats not populated: %+v", res.Stats)
	}
}
