// Package topdown implements SLD resolution with the left-to-right
// computation rule and depth-first search — the "Prolog" baseline the paper
// compares against in Examples 1.2 and 4.6.
//
// The resolver is deliberately memo-less: like standard Prolog it re-proves
// identical subgoals, which is exactly the source of the O(n^2) behaviour
// the paper attributes to Prolog on the pmem program. Left-recursive
// programs diverge under this strategy, as they do in Prolog; use the
// Options budgets to bound the search.
package topdown

import (
	"errors"
	"fmt"

	"factorlog/internal/ast"
	"factorlog/internal/engine"
)

// ErrBudget is returned (wrapped) when the search exceeds MaxSteps or
// MaxDepth.
var ErrBudget = errors.New("top-down budget exceeded")

// Options bounds the SLD search.
type Options struct {
	// MaxSteps bounds total resolution steps; 0 means 1e7 (a safety net —
	// plain SLD diverges on left recursion).
	MaxSteps int
	// MaxDepth bounds the resolution depth; 0 means 100000.
	MaxDepth int
	// MaxSolutions stops after this many solutions; 0 means all.
	MaxSolutions int
}

// Stats reports the work the resolver performed.
type Stats struct {
	// Steps counts goal-reduction attempts: one per rule or fact tried
	// against a selected goal.
	Steps int
	// Solutions counts complete proofs of the query, including proofs that
	// instantiate it identically.
	Solutions int
	// IDBSuccesses counts successes of IDB subgoals across the whole
	// search: every time some instance of an intensional goal is proved.
	// This is the paper's "facts computed by Prolog" measure — O(n^2) for
	// the pmem program of Example 1.2.
	IDBSuccesses int
	// DistinctGoals counts distinct selected goals up to variable renaming.
	DistinctGoals int
	// MaxDepthSeen is the deepest resolution reached.
	MaxDepthSeen int
}

// Result holds the answers to the query: the distinct instantiations of the
// query atom, in discovery order.
type Result struct {
	Answers []ast.Atom
	Stats   Stats
}

// AnswerSet returns the answers as a set of rendered atoms.
func (r *Result) AnswerSet() map[string]bool {
	out := make(map[string]bool, len(r.Answers))
	for _, a := range r.Answers {
		out[a.String()] = true
	}
	return out
}

// Solve runs SLD resolution for query over p and db, returning all
// solutions found within the budget.
func Solve(p *ast.Program, db *engine.DB, query ast.Atom, opts Options) (*Result, error) {
	if opts.MaxSteps == 0 {
		opts.MaxSteps = 10_000_000
	}
	if opts.MaxDepth == 0 {
		opts.MaxDepth = 100_000
	}
	s := &solver{
		program: p,
		db:      db,
		idb:     p.IDBPreds(),
		opts:    opts,
		gen:     ast.NewFreshGenProgram(p),
		seen:    map[string]bool{},
		edbAST:  map[string][][]ast.Term{},
	}
	for _, v := range query.Vars() {
		s.gen.Reserve(v)
	}
	res := &Result{}
	answerSeen := map[string]bool{}
	err := s.solve([]ast.Atom{query}, ast.Subst{}, 1, func(sub ast.Subst) error {
		res.Stats.Solutions++
		inst := sub.ApplyAtom(query)
		if key := inst.String(); !answerSeen[key] {
			answerSeen[key] = true
			res.Answers = append(res.Answers, inst)
		}
		if opts.MaxSolutions > 0 && res.Stats.Solutions >= opts.MaxSolutions {
			return errStop
		}
		return nil
	})
	res.Stats.Steps = s.steps
	res.Stats.IDBSuccesses = s.idbSuccesses
	res.Stats.DistinctGoals = len(s.seen)
	res.Stats.MaxDepthSeen = s.maxDepth
	if err != nil && !errors.Is(err, errStop) {
		return res, err
	}
	return res, nil
}

// errStop signals an early cut after MaxSolutions.
var errStop = errors.New("solution limit reached")

type yieldFn func(ast.Subst) error

type solver struct {
	program      *ast.Program
	db           *engine.DB
	idb          map[string]bool
	opts         Options
	gen          *ast.FreshGen
	steps        int
	idbSuccesses int
	maxDepth     int
	seen         map[string]bool
	edbAST       map[string][][]ast.Term // cached AST views of EDB tuples
}

func (s *solver) errBudget(what string, n int) error {
	return fmt.Errorf("%w: %s %d", ErrBudget, what, n)
}

// solve proves the conjunction of goals under sub, invoking yield once per
// solution.
func (s *solver) solve(goals []ast.Atom, sub ast.Subst, depth int, yield yieldFn) error {
	if len(goals) == 0 {
		return yield(sub)
	}
	if depth > s.maxDepth {
		s.maxDepth = depth
	}
	if depth > s.opts.MaxDepth {
		return s.errBudget("depth", depth)
	}
	goal := sub.ApplyAtom(goals[0])
	rest := goals[1:]
	s.seen[goal.CanonicalKey()] = true
	isIDB := s.idb[goal.Pred]
	return s.solveGoal(goal, sub, depth, func(s2 ast.Subst) error {
		if isIDB {
			s.idbSuccesses++
		}
		return s.solve(rest, s2, depth, yield)
	})
}

// solveGoal proves a single goal, invoking yield once per proof.
func (s *solver) solveGoal(goal ast.Atom, sub ast.Subst, depth int, yield yieldFn) error {
	if !s.idb[goal.Pred] {
		for _, args := range s.edbTuples(goal.Pred, len(goal.Args)) {
			s.steps++
			if s.steps > s.opts.MaxSteps {
				return s.errBudget("steps", s.steps)
			}
			s2 := sub
			ok := true
			for i, t := range goal.Args {
				var u bool
				s2, u = ast.Unify(t, args[i], s2)
				if !u {
					ok = false
					break
				}
			}
			if ok {
				if err := yield(s2); err != nil {
					return err
				}
			}
		}
		return nil
	}

	for _, r := range s.program.RulesFor(goal.Pred) {
		s.steps++
		if s.steps > s.opts.MaxSteps {
			return s.errBudget("steps", s.steps)
		}
		rr := r.RenameApart(s.gen)
		s2, ok := ast.UnifyAtoms(rr.Head, goal, sub)
		if !ok {
			continue
		}
		if err := s.solve(rr.Body, s2, depth+1, yield); err != nil {
			return err
		}
	}
	return nil
}

// edbTuples returns the facts for pred as AST term slices, cached.
func (s *solver) edbTuples(pred string, arity int) [][]ast.Term {
	if cached, ok := s.edbAST[pred]; ok {
		return cached
	}
	var out [][]ast.Term
	if rel := s.db.Lookup(pred); rel != nil && rel.Arity() == arity {
		for pos := int32(0); pos < int32(rel.Len()); pos++ {
			tuple := rel.Tuple(pos)
			args := make([]ast.Term, len(tuple))
			for i, v := range tuple {
				args[i] = s.db.Store.ToAST(v)
			}
			out = append(out, args)
		}
	}
	s.edbAST[pred] = out
	return out
}
