package topdown

import (
	"fmt"
	"sort"

	"factorlog/internal/ast"
	"factorlog/internal/engine"
)

// Tabled (memoizing) top-down evaluation in the QSQR style: every IDB goal
// gets an answer table keyed by the goal up to variable renaming, and
// evaluation repeats to a global fixpoint. Unlike plain SLD (Solve), tabled
// evaluation terminates on left-recursive Datalog and re-proves nothing.
//
// This is the evaluation strategy the Magic Sets transformation simulates
// bottom-up: the set of tabled goals corresponds exactly to the magic facts
// (the goal projections on bound arguments), which TestTabledMatchesMagic
// checks mechanically.

// TabledStats reports the work of a tabled evaluation.
type TabledStats struct {
	// Steps counts rule/fact trials, as in Stats.
	Steps int
	// Goals is the number of distinct tabled goals (the magic-fact count).
	Goals int
	// Answers is the total number of table entries (the p^a fact count of
	// the Magic program).
	Answers int
	// Rounds is the number of global fixpoint passes.
	Rounds int
}

// TabledResult is the outcome of SolveTabled.
type TabledResult struct {
	Answers []ast.Atom
	Stats   TabledStats
	// Goals lists the canonical tabled goals, sorted; each corresponds to
	// one magic fact of the Magic-transformed program.
	Goals []string
}

// AnswerSet renders the answers as a set.
func (r *TabledResult) AnswerSet() map[string]bool {
	out := make(map[string]bool, len(r.Answers))
	for _, a := range r.Answers {
		out[a.String()] = true
	}
	return out
}

type answerTable struct {
	goal    ast.Atom
	answers []ast.Atom
	seen    map[string]bool
}

type tabledSolver struct {
	program  *ast.Program
	db       *engine.DB
	idb      map[string]bool
	opts     Options
	gen      *ast.FreshGen
	tables   map[string]*answerTable
	order    []string
	visiting map[string]bool
	changed  bool
	steps    int
	edbAST   map[string][][]ast.Term
}

// SolveTabled evaluates query over p and db with tabling. MaxSteps bounds
// total work (function-symbol programs can still diverge); MaxDepth and
// MaxSolutions are ignored.
func SolveTabled(p *ast.Program, db *engine.DB, query ast.Atom, opts Options) (*TabledResult, error) {
	if opts.MaxSteps == 0 {
		opts.MaxSteps = 10_000_000
	}
	s := &tabledSolver{
		program:  p,
		db:       db,
		idb:      p.IDBPreds(),
		opts:     opts,
		gen:      ast.NewFreshGenProgram(p),
		tables:   map[string]*answerTable{},
		visiting: map[string]bool{},
		edbAST:   map[string][][]ast.Term{},
	}
	for _, v := range query.Vars() {
		s.gen.Reserve(v)
	}

	res := &TabledResult{}
	for {
		s.changed = false
		s.visiting = map[string]bool{}
		if _, err := s.evalGoal(query); err != nil {
			return nil, err
		}
		res.Stats.Rounds++
		if !s.changed {
			break
		}
	}

	key := query.CanonicalKey()
	if tbl := s.tables[key]; tbl != nil {
		res.Answers = append(res.Answers, tbl.answers...)
	}
	res.Stats.Steps = s.steps
	res.Stats.Goals = len(s.tables)
	for _, k := range s.order {
		res.Goals = append(res.Goals, k)
		res.Stats.Answers += len(s.tables[k].answers)
	}
	sort.Strings(res.Goals)
	return res, nil
}

// evalGoal evaluates one IDB goal against its table, extending it with any
// new answers, and returns the table.
func (s *tabledSolver) evalGoal(goal ast.Atom) (*answerTable, error) {
	key := goal.CanonicalKey()
	tbl := s.tables[key]
	if tbl == nil {
		tbl = &answerTable{goal: goal.Clone(), seen: map[string]bool{}}
		s.tables[key] = tbl
		s.order = append(s.order, key)
	}
	if s.visiting[key] {
		return tbl, nil // recursive re-entry: use current answers
	}
	s.visiting[key] = true

	for _, r := range s.program.RulesFor(goal.Pred) {
		s.steps++
		if s.steps > s.opts.MaxSteps {
			return nil, s.tabledBudget()
		}
		rr := r.RenameApart(s.gen)
		sub, ok := ast.UnifyAtoms(rr.Head, goal, nil)
		if !ok {
			continue
		}
		if err := s.solveBody(rr.Body, sub, func(final ast.Subst) error {
			ans := final.ApplyAtom(goal)
			k := ans.String()
			if !tbl.seen[k] {
				tbl.seen[k] = true
				tbl.answers = append(tbl.answers, ans)
				s.changed = true
			}
			return nil
		}); err != nil {
			return nil, err
		}
	}
	return tbl, nil
}

// solveBody proves the body conjunction, consulting tables for IDB goals.
func (s *tabledSolver) solveBody(goals []ast.Atom, sub ast.Subst, yield yieldFn) error {
	if len(goals) == 0 {
		return yield(sub)
	}
	goal := sub.ApplyAtom(goals[0])
	rest := goals[1:]

	if !s.idb[goal.Pred] {
		for _, args := range s.edbTuples(goal.Pred, len(goal.Args)) {
			s.steps++
			if s.steps > s.opts.MaxSteps {
				return s.tabledBudget()
			}
			s2 := sub
			ok := true
			for i, t := range goal.Args {
				var u bool
				s2, u = ast.Unify(t, args[i], s2)
				if !u {
					ok = false
					break
				}
			}
			if ok {
				if err := s.solveBody(rest, s2, yield); err != nil {
					return err
				}
			}
		}
		return nil
	}

	tbl, err := s.evalGoal(goal)
	if err != nil {
		return err
	}
	// Iterate by index: answers appended during iteration are consumed in
	// the same pass where possible (the outer fixpoint covers the rest).
	for i := 0; i < len(tbl.answers); i++ {
		s.steps++
		if s.steps > s.opts.MaxSteps {
			return s.tabledBudget()
		}
		s2, ok := ast.UnifyAtoms(goal, tbl.answers[i], sub)
		if !ok {
			continue
		}
		if err := s.solveBody(rest, s2, yield); err != nil {
			return err
		}
	}
	return nil
}

func (s *tabledSolver) tabledBudget() error {
	return fmt.Errorf("%w: steps %d", ErrBudget, s.steps)
}

// edbTuples mirrors solver.edbTuples.
func (s *tabledSolver) edbTuples(pred string, arity int) [][]ast.Term {
	if cached, ok := s.edbAST[pred]; ok {
		return cached
	}
	var out [][]ast.Term
	if rel := s.db.Lookup(pred); rel != nil && rel.Arity() == arity {
		for pos := int32(0); pos < int32(rel.Len()); pos++ {
			tuple := rel.Tuple(pos)
			args := make([]ast.Term, len(tuple))
			for i, v := range tuple {
				args[i] = s.db.Store.ToAST(v)
			}
			out = append(out, args)
		}
	}
	s.edbAST[pred] = out
	return out
}
