package optimize

import (
	"strings"
	"testing"

	"factorlog/internal/ast"
	"factorlog/internal/core"
	"factorlog/internal/engine"
	"factorlog/internal/magic"
	"factorlog/internal/parser"
)

// factored builds the factored Magic program for a source program + query.
func factored(t *testing.T, src, query string) (*core.FactorResult, *magic.Result) {
	t.Helper()
	p := parser.MustParseProgram(src)
	m, err := magic.FromQuery(p, parser.MustParseAtom(query))
	if err != nil {
		t.Fatal(err)
	}
	fr, err := core.FactorMagic(m, nil)
	if err != nil {
		t.Fatal(err)
	}
	return fr, m
}

// TestExample53FinalProgramGolden: the full pipeline on the three-rule
// transitive closure ends at the paper's four-rule unary program.
func TestExample53FinalProgramGolden(t *testing.T) {
	fr, m := factored(t, `
		t(X, Y) :- t(X, W), t(W, Y).
		t(X, Y) :- e(X, W), t(W, Y).
		t(X, Y) :- t(X, W), e(W, Y).
		t(X, Y) :- e(X, Y).
	`, "t(5, Y)")
	res, err := Optimize(fr.Program, ForFactored(fr, magic.QueryPred, m.Seed.Head.Args))
	if err != nil {
		t.Fatal(err)
	}
	want := parser.MustParseProgram(`
		m_t_bf(W) :- ft(W).
		m_t_bf(5).
		ft(Y) :- m_t_bf(X), e(X, Y).
		query(Y) :- ft(Y).
	`)
	if res.Program.Canonical() != want.Canonical() {
		t.Errorf("optimized program:\n%s\nwant:\n%s\ntrace:\n%s",
			res.Program, want, strings.Join(res.Trace, "\n"))
	}
}

// TestExample46FinalProgramGolden: the pmem pipeline ends at the paper's
// linear-time list-filter program.
func TestExample46FinalProgramGolden(t *testing.T) {
	fr, m := factored(t, `
		pmem(X, [X|T]) :- p(X).
		pmem(X, [H|T]) :- pmem(X, T).
	`, "pmem(X, [x1, x2, x3])")
	res, err := Optimize(fr.Program, ForFactored(fr, magic.QueryPred, m.Seed.Head.Args))
	if err != nil {
		t.Fatal(err)
	}
	want := parser.MustParseProgram(`
		m_pmem_fb([x1, x2, x3]).
		m_pmem_fb(T) :- m_pmem_fb([H|T]).
		fpmem(X) :- m_pmem_fb([X|T]), p(X).
		query(X) :- fpmem(X).
	`)
	if res.Program.Canonical() != want.Canonical() {
		t.Errorf("optimized pmem:\n%s\nwant:\n%s\ntrace:\n%s",
			res.Program, want, strings.Join(res.Trace, "\n"))
	}
}

// TestExample11Golden: the unary program promised in the introduction.
func TestExample11Golden(t *testing.T) {
	fr, m := factored(t, `
		t(X, Y) :- t(X, W), t(W, Y).
		t(X, Y) :- e(X, W), t(W, Y).
		t(X, Y) :- t(X, W), e(W, Y).
		t(X, Y) :- e(X, Y).
	`, "t(5, Y)")
	res, err := Optimize(fr.Program, ForFactored(fr, magic.QueryPred, m.Seed.Head.Args))
	if err != nil {
		t.Fatal(err)
	}
	// Every surviving IDB predicate is unary.
	arities, err := res.Program.PredArities()
	if err != nil {
		t.Fatal(err)
	}
	for pred, ar := range arities {
		if res.Program.IsIDB(pred) && ar > 1 {
			t.Errorf("predicate %s has arity %d after optimization", pred, ar)
		}
	}
}

// TestOptimizedEquivalence: the optimized program computes the same query
// answers as the original on assorted EDBs.
func TestOptimizedEquivalence(t *testing.T) {
	orig := parser.MustParseProgram(`
		t(X, Y) :- t(X, W), t(W, Y).
		t(X, Y) :- e(X, W), t(W, Y).
		t(X, Y) :- t(X, W), e(W, Y).
		t(X, Y) :- e(X, Y).
	`)
	fr, m := factored(t, `
		t(X, Y) :- t(X, W), t(W, Y).
		t(X, Y) :- e(X, W), t(W, Y).
		t(X, Y) :- t(X, W), e(W, Y).
		t(X, Y) :- e(X, Y).
	`, "t(1, Y)")
	res, err := Optimize(fr.Program, ForFactored(fr, magic.QueryPred, m.Seed.Head.Args))
	if err != nil {
		t.Fatal(err)
	}
	edbs := [][][2]int{
		{{1, 2}, {2, 3}, {3, 4}},
		{{1, 1}},
		{{2, 3}},
		{{1, 2}, {2, 1}, {1, 3}},
		{},
	}
	for i, edges := range edbs {
		load := func() *engine.DB {
			db := engine.NewDB()
			for _, e := range edges {
				db.MustInsert("e", db.Store.Int(e[0]), db.Store.Int(e[1]))
			}
			return db
		}
		dbO := load()
		if _, err := engine.Eval(orig, dbO, engine.Options{}); err != nil {
			t.Fatal(err)
		}
		want, _ := engine.AnswerSet(dbO, parser.MustParseAtom("t(1, Y)"))

		dbF := load()
		if _, err := engine.Eval(res.Program, dbF, engine.Options{}); err != nil {
			t.Fatal(err)
		}
		got, _ := engine.AnswerSet(dbF, parser.MustParseAtom("query(Y)"))
		if len(got) != len(want) {
			t.Errorf("edb %d: %d answers vs %d\noptimized:\n%s", i, len(got), len(want), res.Program)
		}
	}
}

// TestExample43OptimizedGolden: the optimized factored program the paper
// derives in Example 4.3 ("Factoring this program and applying further
// transformations described in detail in Section 5 yields ...").
func TestExample43OptimizedGolden(t *testing.T) {
	p := parser.MustParseProgram(`
		p(X, Y) :- l1(X), p(X, U), c1(U, V), p(V, Y), r1(Y).
		p(X, Y) :- l2(X), p(X, U), c2(U, V), p(V, Y), r2(Y).
		p(X, Y) :- f(X, V), p(V, Y), r3(Y).
		p(X, Y) :- e(X, Y).
	`)
	m, err := magic.FromQuery(p, parser.MustParseAtom("p(5, Y)"))
	if err != nil {
		t.Fatal(err)
	}
	// The class certificate needs the EDB constraints; the syntactic
	// transformation is the same, so force it as the paper does.
	fr, err := core.ForceFactorMagic(m)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Optimize(fr.Program, ForFactored(fr, magic.QueryPred, m.Seed.Head.Args))
	if err != nil {
		t.Fatal(err)
	}
	want := parser.MustParseProgram(`
		m_p_bf(V) :- bp(X), l1(X), fp(U), c1(U, V).
		m_p_bf(V) :- bp(X), l2(X), fp(U), c2(U, V).
		m_p_bf(V) :- m_p_bf(X), f(X, V).
		m_p_bf(5).
		bp(X) :- m_p_bf(X), f(X, V), bp(V), fp(Y), r3(Y).
		bp(X) :- m_p_bf(X), e(X, Y).
		fp(Y) :- m_p_bf(X), e(X, Y).
		query(Y) :- fp(Y).
	`)
	if res.Program.CanonicalModBodyOrder() != want.CanonicalModBodyOrder() {
		t.Errorf("Example 4.3 optimized:\n%s\nwant:\n%s\ntrace:\n%s",
			res.Program, want, strings.Join(res.Trace, "\n"))
	}
}

// TestExample44OptimizedGolden: the optimized symmetric program of
// Example 4.4.
func TestExample44OptimizedGolden(t *testing.T) {
	p := parser.MustParseProgram(`
		p(X, Y) :- l1(X), p(X, U), p(X, V), c(U, V, W), p(W, Y), r1(Y).
		p(X, Y) :- l2(X), p(X, U), p(X, V), c(U, V, W), p(W, Y), r2(Y).
		p(X, Y) :- e(X, Y).
	`)
	m, err := magic.FromQuery(p, parser.MustParseAtom("p(5, Y)"))
	if err != nil {
		t.Fatal(err)
	}
	fr, err := core.ForceFactorMagic(m)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Optimize(fr.Program, ForFactored(fr, magic.QueryPred, m.Seed.Head.Args))
	if err != nil {
		t.Fatal(err)
	}
	want := parser.MustParseProgram(`
		m_p_bf(W) :- bp(X), l1(X), fp(U), fp(V), c(U, V, W).
		m_p_bf(W) :- bp(X), l2(X), fp(U), fp(V), c(U, V, W).
		m_p_bf(5).
		bp(X) :- m_p_bf(X), e(X, Y).
		fp(Y) :- m_p_bf(X), e(X, Y).
		query(Y) :- fp(Y).
	`)
	if res.Program.CanonicalModBodyOrder() != want.CanonicalModBodyOrder() {
		t.Errorf("Example 4.4 optimized:\n%s\nwant:\n%s\ntrace:\n%s",
			res.Program, want, strings.Join(res.Trace, "\n"))
	}
}

func TestDuplicateLiteralDedup(t *testing.T) {
	p := parser.MustParseProgram(`h(X) :- a(X), a(X), b(X).`)
	res, err := Optimize(p, Options{QueryPred: "h"})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Program.Rules[0].Body) != 2 {
		t.Errorf("duplicate literal survived:\n%s", res.Program)
	}
}

func TestHeadInBodyDeletion(t *testing.T) {
	p := parser.MustParseProgram(`
		a(X) :- a(X), b(X).
		a(X) :- b(X).
	`)
	res, err := Optimize(p, Options{QueryPred: "a"})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Program.Rules) != 1 {
		t.Errorf("rules = %d:\n%s", len(res.Program.Rules), res.Program)
	}
}

func TestUnreachableDeletion(t *testing.T) {
	p := parser.MustParseProgram(`
		query(X) :- a(X).
		a(X) :- e(X).
		orphan(X) :- e(X).
	`)
	res, err := Optimize(p, Options{QueryPred: "query"})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res.Program.Rules {
		if r.Head.Pred == "orphan" {
			t.Error("orphan rule not deleted")
		}
	}
}

func TestUniformEquivalenceDeletion(t *testing.T) {
	// The classic redundant-rule case: the 2-step rule is derivable from
	// the 1-step rule applied twice.
	p := parser.MustParseProgram(`
		t(X, Y) :- e(X, Y).
		t(X, Y) :- e(X, W), t(W, Y).
		t(X, Y) :- e(X, W), e(W, V), t(V, Y).
	`)
	res, err := Optimize(p, Options{QueryPred: "t"})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Program.Rules) != 2 {
		t.Errorf("redundant rule not deleted:\n%s", res.Program)
	}
	// The remaining two rules are not mutually derivable.
	for _, r := range res.Program.Rules {
		if len(r.Body) == 3 {
			t.Errorf("wrong rule deleted:\n%s", res.Program)
		}
	}
}

func TestUniformKeepsNonRedundant(t *testing.T) {
	p := parser.MustParseProgram(`
		t(X, Y) :- e(X, Y).
		t(X, Y) :- f(X, Y).
	`)
	res, err := Optimize(p, Options{QueryPred: "t"})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Program.Rules) != 2 {
		t.Errorf("non-redundant rule deleted:\n%s", res.Program)
	}
}

func TestDisableUniform(t *testing.T) {
	p := parser.MustParseProgram(`
		t(X, Y) :- e(X, Y).
		t(X, Y) :- e(X, W), t(W, Y).
		t(X, Y) :- e(X, W), e(W, V), t(V, Y).
	`)
	res, err := Optimize(p, Options{QueryPred: "t", DisableUniform: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Program.Rules) != 3 {
		t.Errorf("uniform pass ran while disabled:\n%s", res.Program)
	}
}

func TestFactsNeverDeleted(t *testing.T) {
	p := parser.MustParseProgram(`
		m(5).
		m(W) :- m(X), e(X, W).
	`)
	res, err := Optimize(p, Options{QueryPred: "m"})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, r := range res.Program.Rules {
		if r.IsFact() {
			found = true
		}
	}
	if !found {
		t.Error("seed fact deleted")
	}
}

func TestExistentialDetection(t *testing.T) {
	r := parser.MustParseProgram(`h(X) :- bp(W), fp(X).`).Rules[0]
	if !existentialIn(r.Body[0], r, 0) {
		t.Error("bp(W) should be existential")
	}
	if existentialIn(r.Body[1], r, 1) {
		t.Error("fp(X) exports X to the head; not existential")
	}
	// Repeated variable inside the literal is a join constraint.
	r2 := parser.MustParseProgram(`h(X) :- bp(W, W), fp(X).`).Rules[0]
	if existentialIn(r2.Body[0], r2, 0) {
		t.Error("bp(W,W) is a constraint, not existential")
	}
	// Constants are not existential.
	r3 := parser.MustParseProgram(`h(X) :- bp(5), fp(X).`).Rules[0]
	if existentialIn(r3.Body[0], r3, 0) {
		t.Error("bp(5) is not existential")
	}
}

func TestTraceMentionsSteps(t *testing.T) {
	fr, m := factored(t, `
		t(X, Y) :- t(X, W), t(W, Y).
		t(X, Y) :- e(X, W), t(W, Y).
		t(X, Y) :- t(X, W), e(W, Y).
		t(X, Y) :- e(X, Y).
	`, "t(5, Y)")
	res, err := Optimize(fr.Program, ForFactored(fr, magic.QueryPred, m.Seed.Head.Args))
	if err != nil {
		t.Fatal(err)
	}
	joined := strings.Join(res.Trace, "\n")
	for _, frag := range []string{"head in body", "Prop 5.1", "Prop 5.2", "Prop 5.3", "unreachable", "uniform equivalence"} {
		if !strings.Contains(joined, frag) {
			t.Errorf("trace missing %q:\n%s", frag, joined)
		}
	}
}

func TestOptimizeDoesNotMutateInput(t *testing.T) {
	p := parser.MustParseProgram(`
		a(X) :- a(X), b(X).
		a(X) :- b(X).
	`)
	before := p.String()
	if _, err := Optimize(p, Options{QueryPred: "a"}); err != nil {
		t.Fatal(err)
	}
	if p.String() != before {
		t.Error("input program mutated")
	}
}

func TestSeedArgsMatchingIsExact(t *testing.T) {
	// bp(6) with seed 5 must not be deleted by Prop 5.3.
	p := parser.MustParseProgram(`query(Y) :- bp(6), fp(Y).`)
	res, err := Optimize(p, Options{
		BoundPred: "bp", FreePred: "fp", QueryPred: "query",
		SeedArgs: []ast.Term{ast.C("5")},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Program.Rules[0].Body) != 2 {
		t.Errorf("bp(6) wrongly deleted:\n%s", res.Program)
	}
}
