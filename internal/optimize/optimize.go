// Package optimize implements the clean-up optimizations of Section 5 of
// the paper, applied after factoring a Magic program:
//
//	Proposition 5.1  delete a magic literal m_p(t..) when bp(t..) with the
//	                 same arguments is also in the body (bp ⊆ m_p);
//	Proposition 5.2  delete an existential bp literal (all of its variables
//	                 occur nowhere else in the rule — the paper's bp(_))
//	                 when an fp literal is present, and symmetrically;
//	Proposition 5.3  delete bp(c..) where c.. are the query's bound
//	                 constants, when an fp literal is present;
//	Proposition 5.4  delete a rule whose head literal appears in its body,
//	                 and rules unreachable from the query predicate;
//	Proposition 5.5  anonymous variables are implicit: "occurs nowhere
//	                 else" plays the role of the underscore;
//	plus rule deletion under uniform equivalence [13], via the canonical-
//	instance test (freeze the rule's body, evaluate the remaining program,
//	check the frozen head is derived).
//
// Applied to the factored three-rule transitive closure (Fig. 2), these
// passes reproduce the paper's final four-rule unary program (Example 5.3).
package optimize

import (
	"errors"
	"fmt"

	"factorlog/internal/ast"
	"factorlog/internal/core"
	"factorlog/internal/engine"
)

// Options identifies the special predicates of a factored Magic program.
// Propositions 5.1-5.3 apply only when the relevant names are set; the
// generic passes (5.4, uniform equivalence) always apply.
type Options struct {
	// BoundPred and FreePred are the bp/fp halves of the factored
	// predicate ("" disables Propositions 5.1-5.3).
	BoundPred string
	FreePred  string
	// MagicPred is the magic predicate m_p_a ("" disables Prop. 5.1).
	MagicPred string
	// QueryPred is the answer predicate; reachability is computed from it.
	QueryPred string
	// SeedArgs are the query's bound constants (for Prop. 5.3).
	SeedArgs []ast.Term
	// MaxUniformFacts bounds each uniform-equivalence evaluation
	// (default 50000).
	MaxUniformFacts int
	// DisableUniform turns off uniform-equivalence rule deletion.
	DisableUniform bool
	// ReverseUniform scans rules last-to-first when testing uniform
	// redundancy. Section 7.4 of the paper asks whether deletion order can
	// change the final program; flipping the scan order probes that.
	ReverseUniform bool
}

// ForFactored derives Options from a core.FactorResult.
func ForFactored(fr *core.FactorResult, queryPred string, seedArgs []ast.Term) Options {
	return Options{
		BoundPred: fr.Split.LeftName,
		FreePred:  fr.Split.RightName,
		MagicPred: ast.MagicName(fr.Split.Pred),
		QueryPred: queryPred,
		SeedArgs:  seedArgs,
	}
}

// Result is the optimized program plus a human-readable trace of the steps
// applied, in order.
type Result struct {
	Program *ast.Program
	Trace   []string
}

// Optimize applies all passes to a fixpoint. The input program is not
// modified.
func Optimize(p *ast.Program, opts Options) (*Result, error) {
	if opts.MaxUniformFacts == 0 {
		opts.MaxUniformFacts = 50_000
	}
	cur := p.Clone()
	res := &Result{}
	for {
		changed, err := onePass(cur, opts, res)
		if err != nil {
			return nil, err
		}
		if !changed {
			break
		}
	}
	res.Program = cur
	return res, nil
}

// onePass applies each pass once; it reports whether anything changed.
func onePass(p *ast.Program, opts Options, res *Result) (bool, error) {
	changed := false
	step := func(format string, args ...any) {
		res.Trace = append(res.Trace, fmt.Sprintf(format, args...))
		changed = true
	}

	// Duplicate body literals are redundant under set semantics (the
	// factoring transformation can duplicate the bp literal when a rule
	// has several left-linear occurrences).
	for i := range p.Rules {
		r := &p.Rules[i]
		seen := map[string]bool{}
		for j := 0; j < len(r.Body); j++ {
			k := r.Body[j].String()
			if seen[k] {
				step("delete duplicate literal %s: %s", r.Body[j], r)
				r.Body = append(r.Body[:j], r.Body[j+1:]...)
				j--
				continue
			}
			seen[k] = true
		}
	}

	// Proposition 5.4a: head literal in body.
	for i := 0; i < len(p.Rules); i++ {
		if atomInBody(p.Rules[i].Head, p.Rules[i].Body) {
			step("delete rule (head in body): %s", p.Rules[i])
			p.Rules = append(p.Rules[:i], p.Rules[i+1:]...)
			i--
		}
	}

	// Proposition 5.1: delete m_p(t..) when bp(t..) present.
	if opts.MagicPred != "" && opts.BoundPred != "" {
		for i := range p.Rules {
			r := &p.Rules[i]
			for j := 0; j < len(r.Body); j++ {
				if r.Body[j].Pred != opts.MagicPred {
					continue
				}
				twin := ast.Atom{Pred: opts.BoundPred, Args: r.Body[j].Args}
				if atomInBody(twin, r.Body) {
					step("delete %s (Prop 5.1, bp present): %s", r.Body[j], r)
					r.Body = append(r.Body[:j], r.Body[j+1:]...)
					j--
				}
			}
		}
	}

	// Propositions 5.2/5.3: delete existential or seed-constant bp/fp
	// literals when the twin side is present.
	if opts.BoundPred != "" && opts.FreePred != "" {
		for i := range p.Rules {
			r := &p.Rules[i]
			for j := 0; j < len(r.Body); j++ {
				lit := r.Body[j]
				var twinPred string
				switch lit.Pred {
				case opts.BoundPred:
					twinPred = opts.FreePred
				case opts.FreePred:
					twinPred = opts.BoundPred
				default:
					continue
				}
				if !bodyHasPred(r.Body, twinPred) {
					continue
				}
				if existentialIn(lit, *r, j) {
					step("delete %s (Prop 5.2, existential, twin present): %s", lit, r)
					r.Body = append(r.Body[:j], r.Body[j+1:]...)
					j--
					continue
				}
				if lit.Pred == opts.BoundPred && len(opts.SeedArgs) == len(lit.Args) && argsEqual(lit.Args, opts.SeedArgs) {
					step("delete %s (Prop 5.3, query constants, fp present): %s", lit, r)
					r.Body = append(r.Body[:j], r.Body[j+1:]...)
					j--
				}
			}
		}
	}

	// Proposition 5.4b: unreachable rules.
	if opts.QueryPred != "" {
		reach := p.ReachablePreds(opts.QueryPred)
		for i := 0; i < len(p.Rules); i++ {
			if !reach[p.Rules[i].Head.Pred] {
				step("delete rule (unreachable from %s): %s", opts.QueryPred, p.Rules[i])
				p.Rules = append(p.Rules[:i], p.Rules[i+1:]...)
				i--
			}
		}
	}

	// Uniform-equivalence rule deletion.
	if !opts.DisableUniform {
		if opts.ReverseUniform {
			for i := len(p.Rules) - 1; i >= 0; i-- {
				redundant, err := uniformlyRedundant(p, i, opts.MaxUniformFacts)
				if err != nil {
					return false, err
				}
				if redundant {
					step("delete rule (uniform equivalence, reverse scan): %s", p.Rules[i])
					p.Rules = append(p.Rules[:i], p.Rules[i+1:]...)
				}
			}
		} else {
			for i := 0; i < len(p.Rules); i++ {
				redundant, err := uniformlyRedundant(p, i, opts.MaxUniformFacts)
				if err != nil {
					return false, err
				}
				if redundant {
					step("delete rule (uniform equivalence): %s", p.Rules[i])
					p.Rules = append(p.Rules[:i], p.Rules[i+1:]...)
					i--
				}
			}
		}
	}

	return changed, nil
}

func atomInBody(a ast.Atom, body []ast.Atom) bool {
	for _, b := range body {
		if a.Equal(b) {
			return true
		}
	}
	return false
}

func bodyHasPred(body []ast.Atom, pred string) bool {
	for _, b := range body {
		if b.Pred == pred {
			return true
		}
	}
	return false
}

func argsEqual(a, b []ast.Term) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !a[i].Equal(b[i]) {
			return false
		}
	}
	return true
}

// existentialIn reports whether every variable of body literal j occurs
// nowhere else in the rule — i.e. the literal could be written with
// anonymous variables only (Proposition 5.5's underscore form). Literals
// with constants are not existential.
func existentialIn(lit ast.Atom, r ast.Rule, j int) bool {
	for _, t := range lit.Args {
		if !t.IsVar() {
			return false
		}
	}
	for _, v := range lit.Vars() {
		if r.Head.HasVar(v) {
			return false
		}
		for k, b := range r.Body {
			if k != j && b.HasVar(v) {
				return false
			}
		}
		// Repeated variable inside the literal itself is a join constraint.
		n := 0
		for _, t := range lit.Args {
			if t.IsVar() && t.Functor == v {
				n++
			}
		}
		if n > 1 {
			return false
		}
	}
	return true
}

// uniformlyRedundant implements Sagiv's canonical-instance test: rule i is
// deletable under uniform equivalence iff evaluating P minus the rule on
// the frozen body of the rule derives the frozen head.
func uniformlyRedundant(p *ast.Program, i int, maxFacts int) (bool, error) {
	r := p.Rules[i]
	if r.IsFact() {
		return false, nil // facts are never derivable from an empty instance
	}
	rest := &ast.Program{}
	for j, rr := range p.Rules {
		if j != i {
			rest.Add(rr)
		}
	}
	// Freeze the rule's variables.
	frozen := ast.Subst{}
	for k, v := range r.Vars() {
		frozen[v] = ast.C(fmt.Sprintf("\x01uniq%d", k))
	}
	db := engine.NewDB()
	for _, b := range r.Body {
		if err := insertFrozen(db, frozen.ApplyAtom(b)); err != nil {
			return false, err
		}
	}
	if _, err := engine.Eval(rest, db, engine.Options{MaxFacts: maxFacts}); err != nil {
		// A budget blow-up means "cannot show redundant", not failure.
		if errors.Is(err, engine.ErrBudgetExceeded) {
			return false, nil
		}
		return false, err
	}
	head := frozen.ApplyAtom(r.Head)
	tuple, err := atomTuple(db, head)
	if err != nil {
		return false, err
	}
	rel := db.Lookup(head.Pred)
	return rel != nil && rel.Contains(tuple), nil
}

func insertFrozen(db *engine.DB, a ast.Atom) error {
	tuple, err := atomTuple(db, a)
	if err != nil {
		return err
	}
	_, err = db.Insert(a.Pred, tuple...)
	return err
}

func atomTuple(db *engine.DB, a ast.Atom) ([]engine.Val, error) {
	tuple := make([]engine.Val, len(a.Args))
	for i, t := range a.Args {
		v, err := db.Store.FromAST(t)
		if err != nil {
			return nil, fmt.Errorf("atom %s not ground after freezing: %w", a, err)
		}
		tuple[i] = v
	}
	return tuple, nil
}
