package resilience

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"factorlog/internal/obsv"
)

// ErrShed is returned by Acquire when the wait queue is full: the request
// is shed immediately instead of queued. Callers map it to 429.
var ErrShed = errors.New("resilience: admission queue full")

// ErrQueueWait is returned (wrapped) by Acquire when the caller's context
// ends while the request is still queued — the deadline-aware half of the
// queue. The wrapped cause distinguishes cancellation from deadline expiry.
var ErrQueueWait = errors.New("resilience: context done while queued for admission")

// ErrLimiterClosed is returned by Acquire after Close: the limiter is
// draining and admits nothing new.
var ErrLimiterClosed = errors.New("resilience: limiter closed")

// waiter is one queued Acquire. ready is closed by release/Close with
// granted set under the limiter lock; the waiting goroutine reads granted
// after ready closes, so no further synchronization is needed.
type waiter struct {
	weight  int64
	ready   chan struct{}
	granted bool
}

// Limiter is a weighted concurrency limiter with a bounded FIFO wait
// queue. Admission is strict FIFO: a heavy waiter at the head blocks
// lighter ones behind it, trading a little utilization for no starvation.
// The zero value is not usable; call NewLimiter.
type Limiter struct {
	mu       sync.Mutex
	capacity int64
	inUse    int64
	maxQueue int
	queue    []*waiter // FIFO; queue[0] is next to admit
	closed   bool

	admitted      int64
	queuedCount   int64
	shed          int64
	queueTimeouts int64
}

// NewLimiter returns a limiter admitting at most capacity units of weight
// concurrently, with at most maxQueue requests waiting beyond that.
// capacity < 1 is treated as 1; maxQueue < 0 as 0 (shed immediately when
// saturated).
func NewLimiter(capacity int64, maxQueue int) *Limiter {
	if capacity < 1 {
		capacity = 1
	}
	if maxQueue < 0 {
		maxQueue = 0
	}
	return &Limiter{capacity: capacity, maxQueue: maxQueue}
}

// Acquire admits weight units of work, waiting in the bounded queue when
// the limiter is saturated. It returns a release function that must be
// called exactly once when the work finishes. Weight is clamped to
// [1, capacity] so a single request can always run alone but never
// deadlocks the limiter by demanding more than it has.
//
// Failure modes, all typed: ErrShed (queue full), ErrQueueWait wrapping the
// context cause (ctx ended while queued), ErrLimiterClosed (after Close).
func (l *Limiter) Acquire(ctx context.Context, weight int64) (release func(), err error) {
	if weight < 1 {
		weight = 1
	}
	if weight > l.capacity {
		weight = l.capacity
	}
	// A context that is already done never waits, even if a slot is free:
	// the caller's deadline has passed and the work would be wasted.
	if ctx != nil {
		select {
		case <-ctx.Done():
			return nil, fmt.Errorf("%w: %v", ErrQueueWait, context.Cause(ctx))
		default:
		}
	}

	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil, ErrLimiterClosed
	}
	if len(l.queue) == 0 && l.inUse+weight <= l.capacity {
		l.inUse += weight
		l.admitted++
		l.mu.Unlock()
		return l.releaseFunc(weight), nil
	}
	if len(l.queue) >= l.maxQueue {
		l.shed++
		l.mu.Unlock()
		return nil, ErrShed
	}
	w := &waiter{weight: weight, ready: make(chan struct{})}
	l.queue = append(l.queue, w)
	l.queuedCount++
	l.mu.Unlock()

	var done <-chan struct{}
	if ctx != nil {
		done = ctx.Done()
	}
	select {
	case <-w.ready:
		// granted was decided under the lock before ready closed.
		if !w.granted {
			return nil, ErrLimiterClosed
		}
		return l.releaseFunc(weight), nil
	case <-done:
		l.mu.Lock()
		// The grant may have raced the context: if the waiter is no longer
		// queued it was admitted (or the limiter closed) — honor that
		// outcome instead of leaking the admitted weight.
		if l.remove(w) {
			l.queueTimeouts++
			l.mu.Unlock()
			return nil, fmt.Errorf("%w: %v", ErrQueueWait, context.Cause(ctx))
		}
		l.mu.Unlock()
		<-w.ready
		if !w.granted {
			return nil, ErrLimiterClosed
		}
		return l.releaseFunc(weight), nil
	}
}

// remove unqueues w if still present; the caller holds l.mu.
func (l *Limiter) remove(w *waiter) bool {
	for i, q := range l.queue {
		if q == w {
			l.queue = append(l.queue[:i], l.queue[i+1:]...)
			return true
		}
	}
	return false
}

// releaseFunc builds the idempotence-guarded release closure for one
// admission.
func (l *Limiter) releaseFunc(weight int64) func() {
	var once sync.Once
	return func() {
		once.Do(func() {
			l.mu.Lock()
			l.inUse -= weight
			l.grantLocked()
			l.mu.Unlock()
		})
	}
}

// grantLocked admits queued waiters from the head while they fit; the
// caller holds l.mu.
func (l *Limiter) grantLocked() {
	for len(l.queue) > 0 {
		w := l.queue[0]
		if l.inUse+w.weight > l.capacity {
			return
		}
		l.queue = l.queue[1:]
		l.inUse += w.weight
		l.admitted++
		w.granted = true
		close(w.ready)
	}
}

// Close fails every queued waiter with ErrLimiterClosed and makes future
// Acquires fail the same way. Admitted work keeps its slots until released;
// Close does not wait for it.
func (l *Limiter) Close() {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return
	}
	l.closed = true
	for _, w := range l.queue {
		close(w.ready)
	}
	l.queue = nil
}

// Stats snapshots the limiter's counters.
func (l *Limiter) Stats() obsv.AdmissionStats {
	l.mu.Lock()
	defer l.mu.Unlock()
	return obsv.AdmissionStats{
		Capacity:      l.capacity,
		InUse:         l.inUse,
		QueueDepth:    len(l.queue),
		QueueLimit:    l.maxQueue,
		Admitted:      l.admitted,
		Queued:        l.queuedCount,
		Shed:          l.shed,
		QueueTimeouts: l.queueTimeouts,
	}
}
