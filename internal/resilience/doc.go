// Package resilience provides the engine-independent governance pieces of
// the serving stack: a weighted admission limiter with a bounded,
// deadline-aware wait queue. factorlogd threads every /query request
// (weighted by its worker count) and every /facts mutation batch
// (weight 1 — maintenance waves are sequential) through a Limiter so
// overload sheds cleanly (a typed error the handler maps to 429 +
// Retry-After) instead of piling goroutines onto the evaluator until the
// process dies.
//
// The queue is strict FIFO — a heavy waiter at the head blocks lighter
// ones behind it, trading a little utilization for no starvation — and
// deadline-aware: a queued request whose context ends leaves with a typed
// error rather than occupying a slot it can no longer use. Close flips
// the limiter into draining (ErrLimiterClosed) for graceful shutdown.
// Sizing guidance and the shed/drain semantics are in docs/RESILIENCE.md.
package resilience
