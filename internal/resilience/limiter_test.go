package resilience

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestImmediateAdmission(t *testing.T) {
	l := NewLimiter(4, 0)
	rel1, err := l.Acquire(context.Background(), 3)
	if err != nil {
		t.Fatal(err)
	}
	if st := l.Stats(); st.InUse != 3 || st.Admitted != 1 {
		t.Errorf("stats after acquire: %+v", st)
	}
	rel2, err := l.Acquire(context.Background(), 1)
	if err != nil {
		t.Fatalf("second acquire within capacity: %v", err)
	}
	rel1()
	rel1() // release is idempotent
	rel2()
	if st := l.Stats(); st.InUse != 0 {
		t.Errorf("in use after releases = %d", st.InUse)
	}
}

func TestWeightClamping(t *testing.T) {
	l := NewLimiter(2, 0)
	// Weight above capacity clamps down: the request runs alone instead of
	// deadlocking.
	rel, err := l.Acquire(context.Background(), 100)
	if err != nil {
		t.Fatal(err)
	}
	if st := l.Stats(); st.InUse != 2 {
		t.Errorf("clamped weight in use = %d, want 2", st.InUse)
	}
	rel()
	// Weight below 1 clamps up to 1.
	rel, err = l.Acquire(context.Background(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if st := l.Stats(); st.InUse != 1 {
		t.Errorf("zero weight in use = %d, want 1", st.InUse)
	}
	rel()
}

func TestShedWhenQueueFull(t *testing.T) {
	l := NewLimiter(1, 0)
	rel, err := l.Acquire(context.Background(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Acquire(context.Background(), 1); !errors.Is(err, ErrShed) {
		t.Fatalf("saturated acquire with zero queue: err = %v, want ErrShed", err)
	}
	if st := l.Stats(); st.Shed != 1 {
		t.Errorf("shed count = %d, want 1", st.Shed)
	}
	rel()
}

func TestQueueAdmitsFIFO(t *testing.T) {
	l := NewLimiter(1, 4)
	rel, err := l.Acquire(context.Background(), 1)
	if err != nil {
		t.Fatal(err)
	}
	var order []int
	var mu sync.Mutex
	var wg sync.WaitGroup
	start := make(chan struct{})
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			// Stagger enqueues so the FIFO order is deterministic.
			time.Sleep(time.Duration(i*20) * time.Millisecond)
			r, err := l.Acquire(context.Background(), 1)
			if err != nil {
				t.Error(err)
				return
			}
			mu.Lock()
			order = append(order, i)
			mu.Unlock()
			r()
		}()
	}
	close(start)
	// Wait until all three are queued, then release the holder.
	deadline := time.Now().Add(2 * time.Second)
	for {
		if l.Stats().QueueDepth == 3 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("queue depth %d, want 3", l.Stats().QueueDepth)
		}
		time.Sleep(time.Millisecond)
	}
	rel()
	wg.Wait()
	if len(order) != 3 || order[0] != 0 || order[1] != 1 || order[2] != 2 {
		t.Errorf("admission order = %v, want [0 1 2]", order)
	}
	if st := l.Stats(); st.Queued != 3 || st.Admitted != 4 {
		t.Errorf("stats = %+v", st)
	}
}

func TestQueueWaitDeadline(t *testing.T) {
	l := NewLimiter(1, 4)
	rel, err := l.Acquire(context.Background(), 1)
	if err != nil {
		t.Fatal(err)
	}
	defer rel()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err = l.Acquire(ctx, 1)
	if !errors.Is(err, ErrQueueWait) {
		t.Fatalf("queued acquire past deadline: err = %v, want ErrQueueWait", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("deadline enforcement took %v", elapsed)
	}
	if st := l.Stats(); st.QueueTimeouts != 1 || st.QueueDepth != 0 {
		t.Errorf("stats after queue timeout: %+v", st)
	}
}

func TestAlreadyDoneContext(t *testing.T) {
	l := NewLimiter(4, 4)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := l.Acquire(ctx, 1); !errors.Is(err, ErrQueueWait) {
		t.Fatalf("acquire with dead context: err = %v, want ErrQueueWait", err)
	}
	if st := l.Stats(); st.InUse != 0 {
		t.Errorf("dead-context acquire leaked weight: %+v", st)
	}
}

func TestClose(t *testing.T) {
	l := NewLimiter(1, 4)
	rel, err := l.Acquire(context.Background(), 1)
	if err != nil {
		t.Fatal(err)
	}
	errc := make(chan error, 1)
	go func() {
		_, err := l.Acquire(context.Background(), 1)
		errc <- err
	}()
	deadline := time.Now().Add(2 * time.Second)
	for l.Stats().QueueDepth != 1 {
		if time.Now().After(deadline) {
			t.Fatal("waiter never queued")
		}
		time.Sleep(time.Millisecond)
	}
	l.Close()
	if err := <-errc; !errors.Is(err, ErrLimiterClosed) {
		t.Errorf("queued waiter after Close: err = %v, want ErrLimiterClosed", err)
	}
	if _, err := l.Acquire(context.Background(), 1); !errors.Is(err, ErrLimiterClosed) {
		t.Errorf("acquire after Close: err = %v, want ErrLimiterClosed", err)
	}
	rel() // releasing admitted work after Close must not panic
}

// TestConcurrentHammer drives many goroutines through a small limiter under
// -race, asserting the weight invariant (inUse <= capacity) observed from
// inside admitted sections and exact accounting at the end.
func TestConcurrentHammer(t *testing.T) {
	const capacity, queue, goroutines, iters = 4, 64, 16, 200
	l := NewLimiter(capacity, queue)
	var inside atomic.Int64
	var admitted, failed atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				w := int64(1 + (g+i)%3)
				ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
				rel, err := l.Acquire(ctx, w)
				if err != nil {
					cancel()
					if !errors.Is(err, ErrShed) && !errors.Is(err, ErrQueueWait) {
						t.Errorf("unexpected acquire error: %v", err)
					}
					failed.Add(1)
					continue
				}
				if n := inside.Add(w); n > capacity {
					t.Errorf("weight invariant violated: %d in flight > %d", n, capacity)
				}
				admitted.Add(1)
				inside.Add(-w)
				rel()
				cancel()
			}
		}()
	}
	wg.Wait()
	st := l.Stats()
	if st.InUse != 0 || st.QueueDepth != 0 {
		t.Errorf("limiter not drained: %+v", st)
	}
	if st.Admitted != admitted.Load() {
		t.Errorf("admitted counter = %d, callers saw %d", st.Admitted, admitted.Load())
	}
	if st.Shed+st.QueueTimeouts != failed.Load() {
		t.Errorf("shed+timeouts = %d, callers saw %d failures", st.Shed+st.QueueTimeouts, failed.Load())
	}
}
