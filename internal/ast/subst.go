package ast

import (
	"fmt"
	"sort"
	"strings"
)

// Subst is a substitution: a finite mapping from variable names to terms.
// The zero value is usable as an empty substitution.
//
// Substitutions here are idempotent in the usual logic-programming sense
// once produced by Unify or Match: applying them walks bindings to fixpoint.
type Subst map[string]Term

// Clone returns an independent copy of s.
func (s Subst) Clone() Subst {
	out := make(Subst, len(s))
	for k, v := range s {
		out[k] = v
	}
	return out
}

// Lookup returns the binding for name and whether one exists.
func (s Subst) Lookup(name string) (Term, bool) {
	t, ok := s[name]
	return t, ok
}

// Walk dereferences t through s until it reaches a non-variable or an
// unbound variable. It does not descend into compound terms.
func (s Subst) Walk(t Term) Term {
	for t.Kind == Var {
		u, ok := s[t.Functor]
		if !ok {
			return t
		}
		t = u
	}
	return t
}

// Apply applies s to t, fully resolving bindings inside compound terms.
func (s Subst) Apply(t Term) Term {
	if len(s) == 0 {
		return t
	}
	t = s.Walk(t)
	if t.Kind != Compound {
		return t
	}
	args := make([]Term, len(t.Args))
	changed := false
	for i, a := range t.Args {
		args[i] = s.Apply(a)
		if !args[i].Equal(a) {
			changed = true
		}
	}
	if !changed {
		return t
	}
	return Term{Kind: Compound, Functor: t.Functor, Args: args}
}

// ApplyAtom applies s to every argument of a.
func (s Subst) ApplyAtom(a Atom) Atom {
	if len(s) == 0 {
		return a
	}
	args := make([]Term, len(a.Args))
	for i, t := range a.Args {
		args[i] = s.Apply(t)
	}
	return Atom{Pred: a.Pred, Args: args}
}

// ApplyRule applies s to the head and every body atom of r.
func (s Subst) ApplyRule(r Rule) Rule {
	if len(s) == 0 {
		return r
	}
	body := make([]Atom, len(r.Body))
	for i, a := range r.Body {
		body[i] = s.ApplyAtom(a)
	}
	return Rule{Head: s.ApplyAtom(r.Head), Body: body}
}

// String renders the substitution deterministically, e.g. {X->5, Y->f(Z)}.
func (s Subst) String() string {
	keys := make([]string, 0, len(s))
	for k := range s {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%s->%s", k, s[k])
	}
	b.WriteByte('}')
	return b.String()
}

// Unify computes a most general unifier of t and u, extending base (which
// may be nil). It returns the extended substitution and true on success; on
// failure the returned substitution must not be used. base is not modified.
func Unify(t, u Term, base Subst) (Subst, bool) {
	s := base.Clone()
	if s == nil {
		s = Subst{}
	}
	if unify(t, u, s) {
		return s, true
	}
	return nil, false
}

func unify(t, u Term, s Subst) bool {
	t, u = s.Walk(t), s.Walk(u)
	switch {
	case t.Kind == Var && u.Kind == Var && t.Functor == u.Functor:
		return true
	case t.Kind == Var:
		if occurs(t.Functor, u, s) {
			return false
		}
		s[t.Functor] = u
		return true
	case u.Kind == Var:
		if occurs(u.Functor, t, s) {
			return false
		}
		s[u.Functor] = t
		return true
	case t.Kind != u.Kind || t.Functor != u.Functor || len(t.Args) != len(u.Args):
		return false
	default:
		for i := range t.Args {
			if !unify(t.Args[i], u.Args[i], s) {
				return false
			}
		}
		return true
	}
}

// occurs reports whether variable name occurs in t under s (occurs check).
func occurs(name string, t Term, s Subst) bool {
	t = s.Walk(t)
	switch t.Kind {
	case Var:
		return t.Functor == name
	case Compound:
		for _, a := range t.Args {
			if occurs(name, a, s) {
				return true
			}
		}
	}
	return false
}

// UnifyAtoms unifies two atoms argument-wise. The atoms must have the same
// predicate and arity; otherwise unification fails.
func UnifyAtoms(a, b Atom, base Subst) (Subst, bool) {
	if a.Pred != b.Pred || len(a.Args) != len(b.Args) {
		return nil, false
	}
	s := base.Clone()
	if s == nil {
		s = Subst{}
	}
	for i := range a.Args {
		if !unify(a.Args[i], b.Args[i], s) {
			return nil, false
		}
	}
	return s, true
}

// Match computes a one-way matcher: a substitution over the variables of
// pattern only, such that s.Apply(pattern) equals ground. Variables in
// ground are treated as constants (they may not be bound). base may be nil
// and is not modified.
func Match(pattern, ground Term, base Subst) (Subst, bool) {
	s := base.Clone()
	if s == nil {
		s = Subst{}
	}
	if match(pattern, ground, s) {
		return s, true
	}
	return nil, false
}

func match(pattern, ground Term, s Subst) bool {
	if pattern.Kind == Var {
		if b, ok := s[pattern.Functor]; ok {
			return b.Equal(ground)
		}
		s[pattern.Functor] = ground
		return true
	}
	if pattern.Kind != ground.Kind || pattern.Functor != ground.Functor ||
		len(pattern.Args) != len(ground.Args) {
		return false
	}
	for i := range pattern.Args {
		if !match(pattern.Args[i], ground.Args[i], s) {
			return false
		}
	}
	return true
}

// MatchAtoms matches pattern against target atom-wise (one-way, like Match).
func MatchAtoms(pattern, target Atom, base Subst) (Subst, bool) {
	if pattern.Pred != target.Pred || len(pattern.Args) != len(target.Args) {
		return nil, false
	}
	s := base.Clone()
	if s == nil {
		s = Subst{}
	}
	for i := range pattern.Args {
		if !match(pattern.Args[i], target.Args[i], s) {
			return nil, false
		}
	}
	return s, true
}
