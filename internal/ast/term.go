// Package ast defines the abstract syntax of Horn-clause logic programs:
// terms, atoms, rules, and programs, together with the operations the
// transformations in this repository need (substitution, unification,
// renaming, standard form, canonical printing).
//
// The package is purely syntactic. Evaluation lowers these structures into
// the interned representation of package engine; transformations (adornment,
// magic sets, factoring, counting, reduction) operate on ast values only.
package ast

import (
	"fmt"
	"sort"
	"strings"
)

// TermKind discriminates the three shapes a term can take.
type TermKind uint8

const (
	// Var is a logical variable such as X or Answer.
	Var TermKind = iota
	// Const is an uninterpreted constant symbol such as 5 or paris.
	Const
	// Compound is a function application such as cons(H, T).
	Compound
)

func (k TermKind) String() string {
	switch k {
	case Var:
		return "var"
	case Const:
		return "const"
	case Compound:
		return "compound"
	default:
		return fmt.Sprintf("TermKind(%d)", uint8(k))
	}
}

// ConsFunctor is the functor used for list cells. The parser desugars
// [H|T] into Compound ConsFunctor terms, and the printer re-sugars them.
const ConsFunctor = "'.'"

// NilName is the constant denoting the empty list.
const NilName = "[]"

// Term is a logical term. For Kind Var and Const, Functor holds the variable
// or constant name and Args is nil. For Kind Compound, Functor is the
// function symbol and Args are its arguments.
//
// Terms are treated as immutable values: operations that would modify a term
// return a fresh one. Sharing subterms between terms is safe.
type Term struct {
	Kind    TermKind
	Functor string
	Args    []Term
}

// V constructs a variable term.
func V(name string) Term { return Term{Kind: Var, Functor: name} }

// C constructs a constant term.
func C(name string) Term { return Term{Kind: Const, Functor: name} }

// Fn constructs a compound term.
func Fn(functor string, args ...Term) Term {
	return Term{Kind: Compound, Functor: functor, Args: args}
}

// Nil is the empty-list constant.
func Nil() Term { return C(NilName) }

// Cons constructs a single list cell [head|tail].
func Cons(head, tail Term) Term { return Fn(ConsFunctor, head, tail) }

// List constructs a proper list of the given elements.
func List(elems ...Term) Term { return ListTail(Nil(), elems...) }

// ListTail constructs a list of the given elements ending in tail, which may
// be a variable (a partial list) or another list.
func ListTail(tail Term, elems ...Term) Term {
	t := tail
	for i := len(elems) - 1; i >= 0; i-- {
		t = Cons(elems[i], t)
	}
	return t
}

// IsVar reports whether t is a variable.
func (t Term) IsVar() bool { return t.Kind == Var }

// IsConst reports whether t is a constant.
func (t Term) IsConst() bool { return t.Kind == Const }

// IsCompound reports whether t is a compound term.
func (t Term) IsCompound() bool { return t.Kind == Compound }

// IsCons reports whether t is a list cell.
func (t Term) IsCons() bool {
	return t.Kind == Compound && t.Functor == ConsFunctor && len(t.Args) == 2
}

// IsNil reports whether t is the empty-list constant.
func (t Term) IsNil() bool { return t.Kind == Const && t.Functor == NilName }

// Ground reports whether t contains no variables.
func (t Term) Ground() bool {
	switch t.Kind {
	case Var:
		return false
	case Const:
		return true
	default:
		for _, a := range t.Args {
			if !a.Ground() {
				return false
			}
		}
		return true
	}
}

// Equal reports structural equality of two terms.
func (t Term) Equal(u Term) bool {
	if t.Kind != u.Kind || t.Functor != u.Functor || len(t.Args) != len(u.Args) {
		return false
	}
	for i := range t.Args {
		if !t.Args[i].Equal(u.Args[i]) {
			return false
		}
	}
	return true
}

// Size returns the number of nodes in the term tree.
func (t Term) Size() int {
	n := 1
	for _, a := range t.Args {
		n += a.Size()
	}
	return n
}

// Depth returns the height of the term tree; constants and variables have
// depth 1.
func (t Term) Depth() int {
	d := 0
	for _, a := range t.Args {
		if ad := a.Depth(); ad > d {
			d = ad
		}
	}
	return d + 1
}

// CollectVars appends the names of variables occurring in t to set, in first
// occurrence order, skipping names already present.
func (t Term) CollectVars(order *[]string, seen map[string]bool) {
	switch t.Kind {
	case Var:
		if !seen[t.Functor] {
			seen[t.Functor] = true
			*order = append(*order, t.Functor)
		}
	case Compound:
		for _, a := range t.Args {
			a.CollectVars(order, seen)
		}
	}
}

// Vars returns the variable names occurring in t in first-occurrence order.
func (t Term) Vars() []string {
	var order []string
	t.CollectVars(&order, map[string]bool{})
	return order
}

// HasVar reports whether variable name occurs in t.
func (t Term) HasVar(name string) bool {
	switch t.Kind {
	case Var:
		return t.Functor == name
	case Compound:
		for _, a := range t.Args {
			if a.HasVar(name) {
				return true
			}
		}
	}
	return false
}

// String renders the term in surface syntax. Lists are re-sugared: proper
// lists print as [a,b,c], partial lists as [a,b|T].
func (t Term) String() string {
	var b strings.Builder
	t.write(&b)
	return b.String()
}

func (t Term) write(b *strings.Builder) {
	switch {
	case t.IsCons():
		b.WriteByte('[')
		t.Args[0].write(b)
		rest := t.Args[1]
		for rest.IsCons() {
			b.WriteByte(',')
			rest.Args[0].write(b)
			rest = rest.Args[1]
		}
		if !rest.IsNil() {
			b.WriteByte('|')
			rest.write(b)
		}
		b.WriteByte(']')
	case t.Kind == Compound:
		b.WriteString(t.Functor)
		b.WriteByte('(')
		for i, a := range t.Args {
			if i > 0 {
				b.WriteByte(',')
			}
			a.write(b)
		}
		b.WriteByte(')')
	default:
		b.WriteString(t.Functor)
	}
}

// Compare orders terms: variables before constants before compounds, then by
// functor, arity, and arguments lexicographically. It yields a total order
// used for canonical program forms.
func (t Term) Compare(u Term) int {
	if t.Kind != u.Kind {
		return int(t.Kind) - int(u.Kind)
	}
	if c := strings.Compare(t.Functor, u.Functor); c != 0 {
		return c
	}
	if d := len(t.Args) - len(u.Args); d != 0 {
		return d
	}
	for i := range t.Args {
		if c := t.Args[i].Compare(u.Args[i]); c != 0 {
			return c
		}
	}
	return 0
}

// SortTerms sorts terms in place using Compare.
func SortTerms(ts []Term) {
	sort.Slice(ts, func(i, j int) bool { return ts[i].Compare(ts[j]) < 0 })
}
