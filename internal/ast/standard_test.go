package ast

import (
	"strings"
	"testing"
)

func TestAdornmentHelpers(t *testing.T) {
	ad := Adornment("bfb")
	if !ad.IsValid() {
		t.Error("bfb should be valid")
	}
	if Adornment("bx").IsValid() {
		t.Error("bx should be invalid")
	}
	if got := ad.Bound(); len(got) != 2 || got[0] != 0 || got[1] != 2 {
		t.Errorf("Bound = %v", got)
	}
	if got := ad.Free(); len(got) != 1 || got[0] != 1 {
		t.Errorf("Free = %v", got)
	}
	if Adornment("bb").AllBound() != true || Adornment("bf").AllBound() {
		t.Error("AllBound wrong")
	}
	if !Adornment("ff").AllFree() || Adornment("bf").AllFree() {
		t.Error("AllFree wrong")
	}
}

func TestAdornedNames(t *testing.T) {
	name := AdornedName("t", "bf")
	if name != "t_bf" {
		t.Errorf("AdornedName = %q", name)
	}
	base, ad, ok := SplitAdorned(name)
	if !ok || base != "t" || ad != "bf" {
		t.Errorf("SplitAdorned = %q %q %v", base, ad, ok)
	}
	if _, _, ok := SplitAdorned("plain"); ok {
		t.Error("plain name should not split")
	}
	if _, _, ok := SplitAdorned("m_t"); ok {
		t.Error("m_t has no valid adornment suffix... but 't' is not b/f")
	}
	// Magic names.
	if MagicName("t_bf") != "m_t_bf" {
		t.Error("MagicName wrong")
	}
	if !IsMagicName("m_t_bf") || IsMagicName("t_bf") {
		t.Error("IsMagicName wrong")
	}
}

func TestMagicAtom(t *testing.T) {
	a := NewAtom("t_bf", C("5"), V("Y"))
	m := MagicAtom(a, "bf")
	if m.Pred != "m_t_bf" || len(m.Args) != 1 || !m.Args[0].Equal(C("5")) {
		t.Errorf("MagicAtom = %s", m)
	}
}

func TestAdornmentOf(t *testing.T) {
	bound := map[string]bool{"X": true}
	a := NewAtom("p", V("X"), V("Y"), C("5"), Fn("f", V("X")), Fn("f", V("Y")))
	if got := AdornmentOf(a, bound); got != "bfbbf" {
		t.Errorf("AdornmentOf = %q, want bfbbf", got)
	}
}

func TestStandardizeDuplicatesAndConstants(t *testing.T) {
	// p(X,X,5,Y) :- e(X,Y)  with respect to p.
	r := NewRule(NewAtom("p", V("X"), V("X"), C("5"), V("Y")), NewAtom("e", V("X"), V("Y")))
	std := StandardizeRule(r, map[string]bool{"p": true}, nil)
	if !InStandardForm(std, map[string]bool{"p": true}) {
		t.Fatalf("not standard: %s", std)
	}
	// Expect two equal literals.
	n := 0
	for _, a := range std.Body {
		if a.Pred == EqualPred {
			n++
		}
	}
	if n != 2 {
		t.Errorf("expected 2 equal literals, got %d: %s", n, std)
	}
	// Head arity preserved.
	if std.Head.Arity() != 4 {
		t.Errorf("arity changed: %s", std)
	}
}

func TestStandardizeListsMatchesPaper(t *testing.T) {
	// pmem(X,[X|T]) :- p(X).  =>  pmem(X,L) :- list(X,T,L), p(X).
	r := NewRule(
		NewAtom("pmem", V("X"), Cons(V("X"), V("T"))),
		NewAtom("p", V("X")),
	)
	std := StandardizeRule(r, map[string]bool{"pmem": true}, nil)
	if !InStandardForm(std, map[string]bool{"pmem": true}) {
		t.Fatalf("not standard: %s", std)
	}
	if len(std.Body) != 2 || std.Body[0].Pred != "list" || std.Body[1].Pred != "p" {
		t.Fatalf("unexpected body: %s", std)
	}
	lst := std.Body[0]
	if !lst.Args[0].Equal(V("X")) || !lst.Args[1].Equal(V("T")) {
		t.Errorf("list literal args: %s", lst)
	}
	// Third arg of list must be the head's second argument.
	if !lst.Args[2].Equal(std.Head.Args[1]) {
		t.Errorf("list result var mismatch: %s / %s", lst, std.Head)
	}

	// pmem(X,[H|T]) :- pmem(X,T).  =>  pmem(X,L) :- pmem(X,T), list(H,T,L).
	r2 := NewRule(
		NewAtom("pmem", V("X"), Cons(V("H"), V("T"))),
		NewAtom("pmem", V("X"), V("T")),
	)
	std2 := StandardizeRule(r2, map[string]bool{"pmem": true}, nil)
	if len(std2.Body) != 2 || std2.Body[0].Pred != "list" || std2.Body[1].Pred != "pmem" {
		t.Fatalf("unexpected body2: %s", std2)
	}
}

func TestStandardizeNestedFunctions(t *testing.T) {
	// p(f(g(X))) :- e(X).
	r := NewRule(NewAtom("p", Fn("f", Fn("g", V("X")))), NewAtom("e", V("X")))
	std := StandardizeRule(r, map[string]bool{"p": true}, nil)
	var fnPreds []string
	for _, a := range std.Body {
		if strings.HasPrefix(a.Pred, FnPredPrefix) {
			fnPreds = append(fnPreds, a.Pred)
		}
	}
	if len(fnPreds) != 2 || fnPreds[0] != "fn_g" || fnPreds[1] != "fn_f" {
		t.Errorf("flattening order wrong: %v in %s", fnPreds, std)
	}
	if !InStandardForm(std, map[string]bool{"p": true}) {
		t.Errorf("not standard: %s", std)
	}
}

func TestStandardizeUntouchedPreds(t *testing.T) {
	r := NewRule(NewAtom("q", C("5")), NewAtom("e", C("1"), Fn("f", V("X"))))
	std := StandardizeRule(r, map[string]bool{"p": true}, nil)
	if !std.Equal(r) {
		t.Errorf("non-target rule modified: %s", std)
	}
}

func TestStandardizeProgram(t *testing.T) {
	p := NewProgram(
		NewRule(NewAtom("t", V("X"), V("X")), NewAtom("e", V("X"))),
		NewRule(NewAtom("t", V("X"), V("Y")), NewAtom("t", V("X"), C("3"))),
	)
	std := Standardize(p, map[string]bool{"t": true})
	if !ProgramInStandardForm(std, map[string]bool{"t": true}) {
		t.Errorf("program not standardized:\n%s", std)
	}
	if ProgramInStandardForm(p, map[string]bool{"t": true}) {
		t.Error("original should not be standard")
	}
}

func TestIsStandardFormPred(t *testing.T) {
	if !IsStandardFormPred("equal") || !IsStandardFormPred("list") || !IsStandardFormPred("fn_f") {
		t.Error("special predicates not recognized")
	}
	if IsStandardFormPred("edge") {
		t.Error("edge is not a standard-form predicate")
	}
}

func TestFnPredName(t *testing.T) {
	if FnPredName(ConsFunctor) != "list" {
		t.Error("cons should map to list")
	}
	if FnPredName("pair") != "fn_pair" {
		t.Error("FnPredName wrong")
	}
}

func TestFmtPredArity(t *testing.T) {
	if FmtPredArity("t", 2) != "t/2" {
		t.Error("FmtPredArity wrong")
	}
}
