package ast

import (
	"fmt"
	"sort"
	"strings"
)

// Rule is a Horn clause: Head :- Body. A rule with an empty body is a fact
// (usually ground). Body literals are positive atoms; the language of the
// paper has no negation.
type Rule struct {
	Head Atom
	Body []Atom
}

// NewRule constructs a rule.
func NewRule(head Atom, body ...Atom) Rule { return Rule{Head: head, Body: body} }

// Fact constructs a bodyless rule.
func Fact(head Atom) Rule { return Rule{Head: head} }

// IsFact reports whether the rule has an empty body.
func (r Rule) IsFact() bool { return len(r.Body) == 0 }

// Vars returns the variable names of r in head-then-body first-occurrence
// order.
func (r Rule) Vars() []string {
	var order []string
	seen := map[string]bool{}
	for _, t := range r.Head.Args {
		t.CollectVars(&order, seen)
	}
	for _, a := range r.Body {
		for _, t := range a.Args {
			t.CollectVars(&order, seen)
		}
	}
	return order
}

// BodyVars returns the variable names occurring in the body.
func (r Rule) BodyVars() []string {
	var order []string
	seen := map[string]bool{}
	for _, a := range r.Body {
		for _, t := range a.Args {
			t.CollectVars(&order, seen)
		}
	}
	return order
}

// Safe reports whether every head variable occurs in the body (range
// restriction). Facts are safe iff ground.
func (r Rule) Safe() bool {
	bodyVars := map[string]bool{}
	for _, v := range r.BodyVars() {
		bodyVars[v] = true
	}
	for _, v := range r.Head.Vars() {
		if !bodyVars[v] {
			return false
		}
	}
	return true
}

// Clone returns a copy whose body slice and atom arg slices are independent.
func (r Rule) Clone() Rule {
	body := make([]Atom, len(r.Body))
	for i, a := range r.Body {
		body[i] = a.Clone()
	}
	return Rule{Head: r.Head.Clone(), Body: body}
}

// Equal reports structural equality, including body literal order.
func (r Rule) Equal(s Rule) bool {
	if !r.Head.Equal(s.Head) || len(r.Body) != len(s.Body) {
		return false
	}
	for i := range r.Body {
		if !r.Body[i].Equal(s.Body[i]) {
			return false
		}
	}
	return true
}

// CountBody returns how many body literals satisfy pred.
func (r Rule) CountBody(pred func(Atom) bool) int {
	n := 0
	for _, a := range r.Body {
		if pred(a) {
			n++
		}
	}
	return n
}

// BodyIndices returns the indices of body literals satisfying pred.
func (r Rule) BodyIndices(pred func(Atom) bool) []int {
	var out []int
	for i, a := range r.Body {
		if pred(a) {
			out = append(out, i)
		}
	}
	return out
}

// String renders the rule: "h(X) :- a(X), b(X)." or "f(1)." for facts.
func (r Rule) String() string {
	var b strings.Builder
	b.WriteString(r.Head.String())
	if len(r.Body) > 0 {
		b.WriteString(" :- ")
		for i, a := range r.Body {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(a.String())
		}
	}
	b.WriteByte('.')
	return b.String()
}

// RenameApart returns r with every variable renamed to a fresh name drawn
// from gen, so the result shares no variables with any other rule.
func (r Rule) RenameApart(gen *FreshGen) Rule {
	s := Subst{}
	for _, v := range r.Vars() {
		s[v] = V(gen.Fresh(v))
	}
	return s.ApplyRule(r)
}

// CanonicalizeVars renames the variables of r to V0, V1, ... in
// head-then-body first-occurrence order, producing a canonical alphabetic
// variant used for rule-set comparison. Renaming is simultaneous (not a
// chained substitution), so swaps like {V0->V1, V1->V0} are safe.
func (r Rule) CanonicalizeVars() Rule {
	m := map[string]string{}
	for i, v := range r.Vars() {
		m[v] = fmt.Sprintf("V%d", i)
	}
	return RenameRuleVars(r, m)
}

// RenameRuleVars renames variables in r according to m, simultaneously.
// Variables absent from m are left alone.
func RenameRuleVars(r Rule, m map[string]string) Rule {
	body := make([]Atom, len(r.Body))
	for i, a := range r.Body {
		body[i] = renameAtomVars(a, m)
	}
	return Rule{Head: renameAtomVars(r.Head, m), Body: body}
}

func renameAtomVars(a Atom, m map[string]string) Atom {
	args := make([]Term, len(a.Args))
	for i, t := range a.Args {
		args[i] = renameTermVars(t, m)
	}
	return Atom{Pred: a.Pred, Args: args}
}

func renameTermVars(t Term, m map[string]string) Term {
	switch t.Kind {
	case Var:
		if n, ok := m[t.Functor]; ok {
			return V(n)
		}
		return t
	case Const:
		return t
	default:
		args := make([]Term, len(t.Args))
		for i, a := range t.Args {
			args[i] = renameTermVars(a, m)
		}
		return Term{Kind: Compound, Functor: t.Functor, Args: args}
	}
}

// Program is a finite set of rules (the IDB, in the paper's terminology) —
// EDB facts live in engine.DB, not here. Rule order is preserved because the
// left-to-right sideways information passing strategy is order-sensitive.
type Program struct {
	Rules []Rule
}

// NewProgram constructs a program from rules.
func NewProgram(rules ...Rule) *Program { return &Program{Rules: rules} }

// Clone deep-copies the program.
func (p *Program) Clone() *Program {
	rules := make([]Rule, len(p.Rules))
	for i, r := range p.Rules {
		rules[i] = r.Clone()
	}
	return &Program{Rules: rules}
}

// Add appends rules.
func (p *Program) Add(rules ...Rule) { p.Rules = append(p.Rules, rules...) }

// IDBPreds returns the set of predicates appearing in some rule head.
func (p *Program) IDBPreds() map[string]bool {
	out := map[string]bool{}
	for _, r := range p.Rules {
		out[r.Head.Pred] = true
	}
	return out
}

// IsIDB reports whether pred appears in some rule head.
func (p *Program) IsIDB(pred string) bool {
	for _, r := range p.Rules {
		if r.Head.Pred == pred {
			return true
		}
	}
	return false
}

// EDBPreds returns the set of predicates that occur in bodies but never in a
// head (the extensional schema implied by the program).
func (p *Program) EDBPreds() map[string]bool {
	idb := p.IDBPreds()
	out := map[string]bool{}
	for _, r := range p.Rules {
		for _, a := range r.Body {
			if !idb[a.Pred] {
				out[a.Pred] = true
			}
		}
	}
	return out
}

// RulesFor returns the rules whose head predicate is pred, in program order.
func (p *Program) RulesFor(pred string) []Rule {
	var out []Rule
	for _, r := range p.Rules {
		if r.Head.Pred == pred {
			out = append(out, r)
		}
	}
	return out
}

// PredArities returns the arity of each predicate occurring in the program
// and an error if any predicate is used at two different arities.
func (p *Program) PredArities() (map[string]int, error) {
	out := map[string]int{}
	check := func(a Atom) error {
		if n, ok := out[a.Pred]; ok && n != len(a.Args) {
			return fmt.Errorf("predicate %s used with arities %d and %d", a.Pred, n, len(a.Args))
		}
		out[a.Pred] = len(a.Args)
		return nil
	}
	for _, r := range p.Rules {
		if err := check(r.Head); err != nil {
			return nil, err
		}
		for _, a := range r.Body {
			if err := check(a); err != nil {
				return nil, err
			}
		}
	}
	return out, nil
}

// DependencyGraph returns, for each IDB predicate, the set of IDB predicates
// its rules' bodies refer to.
func (p *Program) DependencyGraph() map[string]map[string]bool {
	idb := p.IDBPreds()
	g := map[string]map[string]bool{}
	for pred := range idb {
		g[pred] = map[string]bool{}
	}
	for _, r := range p.Rules {
		for _, a := range r.Body {
			if idb[a.Pred] {
				g[r.Head.Pred][a.Pred] = true
			}
		}
	}
	return g
}

// RecursivePreds returns the IDB predicates that participate in a dependency
// cycle (including self-loops).
func (p *Program) RecursivePreds() map[string]bool {
	g := p.DependencyGraph()
	out := map[string]bool{}
	for pred := range g {
		if reaches(g, pred, pred, map[string]bool{}) {
			out[pred] = true
		}
	}
	return out
}

func reaches(g map[string]map[string]bool, from, to string, seen map[string]bool) bool {
	for next := range g[from] {
		if next == to {
			return true
		}
		if !seen[next] {
			seen[next] = true
			if reaches(g, next, to, seen) {
				return true
			}
		}
	}
	return false
}

// ReachablePreds returns the predicates reachable from start in the
// head-to-body direction (start included).
func (p *Program) ReachablePreds(start string) map[string]bool {
	out := map[string]bool{start: true}
	queue := []string{start}
	for len(queue) > 0 {
		pred := queue[0]
		queue = queue[1:]
		for _, r := range p.RulesFor(pred) {
			for _, a := range r.Body {
				if !out[a.Pred] {
					out[a.Pred] = true
					queue = append(queue, a.Pred)
				}
			}
		}
	}
	return out
}

// String renders the program one rule per line, in rule order.
func (p *Program) String() string {
	var b strings.Builder
	for _, r := range p.Rules {
		b.WriteString(r.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// Canonical returns a canonical string for the program: each rule's
// variables are canonicalized, then rules are sorted. Two programs that are
// equal as rule sets up to variable renaming have equal Canonical strings.
// Body literal order within a rule is preserved (it is semantically
// irrelevant but SIP-relevant; callers comparing modulo body order should
// canonicalize with CanonicalModBodyOrder).
func (p *Program) Canonical() string {
	lines := make([]string, len(p.Rules))
	for i, r := range p.Rules {
		lines[i] = r.CanonicalizeVars().String()
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n")
}

// CanonicalModBodyOrder is Canonical with body literals sorted before
// variable canonicalization, so programs differing only in body literal
// order compare equal. Sorting happens on the raw (pre-canonicalization)
// rendering; ties are broken deterministically.
func (p *Program) CanonicalModBodyOrder() string {
	lines := make([]string, len(p.Rules))
	for i, r := range p.Rules {
		lines[i] = canonicalRuleModBodyOrder(r)
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n")
}

func canonicalRuleModBodyOrder(r Rule) string {
	// Iterate: sort body by rendered form of the var-canonicalized rule,
	// then re-canonicalize. A small fixpoint loop makes the result stable
	// under the interaction between sorting and renaming.
	cur := r.Clone()
	prev := ""
	for i := 0; i < 4; i++ {
		cur = cur.CanonicalizeVars()
		sort.SliceStable(cur.Body, func(i, j int) bool {
			return cur.Body[i].Compare(cur.Body[j]) < 0
		})
		cur = cur.CanonicalizeVars()
		s := cur.String()
		if s == prev {
			break
		}
		prev = s
	}
	return prev
}

// EqualAsRuleSets reports whether two programs contain the same rules up to
// variable renaming and rule order (body order significant).
func EqualAsRuleSets(p, q *Program) bool { return p.Canonical() == q.Canonical() }

// AnonymizeSingletons returns a copy of p in which every variable that
// occurs exactly once in its rule is renamed to "_" (Proposition 5.5 of the
// paper: an anonymous variable may replace a variable appearing nowhere
// else). The result prints in the paper's style — bt(_), ft(W) — and still
// parses to a semantically identical program, since each '_' reads back as
// a fresh variable.
func (p *Program) AnonymizeSingletons() *Program {
	out := &Program{}
	for _, r := range p.Rules {
		counts := map[string]int{}
		var walk func(t Term)
		walk = func(t Term) {
			switch t.Kind {
			case Var:
				counts[t.Functor]++
			case Compound:
				for _, a := range t.Args {
					walk(a)
				}
			}
		}
		count := func(a Atom) {
			for _, t := range a.Args {
				walk(t)
			}
		}
		count(r.Head)
		for _, b := range r.Body {
			count(b)
		}
		m := map[string]string{}
		for v, n := range counts {
			if n == 1 {
				m[v] = "_"
			}
		}
		out.Add(RenameRuleVars(r, m))
	}
	return out
}

// RenamePreds returns a copy of p with predicate names replaced per m;
// names absent from m are kept.
func (p *Program) RenamePreds(m map[string]string) *Program {
	ren := func(a Atom) Atom {
		if n, ok := m[a.Pred]; ok {
			return Atom{Pred: n, Args: a.Args}
		}
		return a
	}
	out := &Program{}
	for _, r := range p.Rules {
		body := make([]Atom, len(r.Body))
		for i, b := range r.Body {
			body[i] = ren(b)
		}
		out.Add(Rule{Head: ren(r.Head), Body: body})
	}
	return out
}
