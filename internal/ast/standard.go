package ast

// This file implements the standard-form translation of Section 4.1 of the
// paper. A rule is in standard form with respect to a predicate p when every
// argument of every p-literal (head or body) is a variable and no variable
// appears twice in the same p-literal. Constants, duplicate variables, and
// function symbols in p-literal arguments are compiled away:
//
//	p(X, X, 5, Y)   becomes  p(X, U, V, Y) with equal(X, U), equal(V, 5)
//	p(X, [X|T])     becomes  p(X, L)       with list(X, T, L)
//
// where equal and list (and fn_f for other function symbols f) are
// conceptually infinite EDB relations. The translation is syntactic and used
// only at compile time to test factorability; the program that is evaluated
// need not be in standard form.

// Standardize returns a copy of p in which every literal of every predicate
// in preds has been rewritten into standard form. Literals of other
// predicates are untouched. The argument positions of rewritten literals
// correspond one-to-one with the original positions, so factorability
// decisions made on the standard form transfer to the original program.
func Standardize(p *Program, preds map[string]bool) *Program {
	gen := NewFreshGenProgram(p)
	out := &Program{Rules: make([]Rule, 0, len(p.Rules))}
	for _, r := range p.Rules {
		out.Rules = append(out.Rules, StandardizeRule(r, preds, gen))
	}
	return out
}

// StandardizeRule rewrites one rule into standard form with respect to the
// given predicates, drawing fresh variables from gen. Literals introduced
// for the head are prepended to the body; literals introduced for a body
// p-literal are inserted immediately after it, matching the paper's
// presentation (e.g. pmem(X,L) :- pmem(X,T), list(H,T,L)).
func StandardizeRule(r Rule, preds map[string]bool, gen *FreshGen) Rule {
	if gen == nil {
		gen = NewFreshGen(r)
	}
	var body []Atom
	head := r.Head
	if preds[head.Pred] {
		var extra []Atom
		head = standardizeAtom(head, gen, &extra)
		body = append(body, extra...)
	}
	for _, a := range r.Body {
		if !preds[a.Pred] {
			body = append(body, a)
			continue
		}
		var extra []Atom
		std := standardizeAtom(a, gen, &extra)
		body = append(body, std)
		body = append(body, extra...)
	}
	return Rule{Head: head, Body: body}
}

// standardizeAtom rewrites a single atom so that its arguments are distinct
// variables, appending the compensating literals to extra.
func standardizeAtom(a Atom, gen *FreshGen, extra *[]Atom) Atom {
	seen := map[string]bool{}
	args := make([]Term, len(a.Args))
	for i, t := range a.Args {
		switch {
		case t.Kind == Var && !seen[t.Functor]:
			seen[t.Functor] = true
			args[i] = t
		case t.Kind == Var: // duplicate variable
			u := V(gen.Fresh(t.Functor))
			seen[u.Functor] = true
			args[i] = u
			*extra = append(*extra, NewAtom(EqualPred, t, u))
		case t.Kind == Const:
			u := V(gen.Fresh("C"))
			seen[u.Functor] = true
			args[i] = u
			*extra = append(*extra, NewAtom(EqualPred, u, t))
		default: // compound: flatten bottom-up
			u := flattenTerm(t, gen, extra)
			// The result variable may duplicate an earlier argument
			// variable only if the compound was a bare variable after
			// flattening, which cannot happen (flattenTerm always returns a
			// fresh variable for compounds), so no duplicate check needed.
			seen[u.Functor] = true
			args[i] = u
		}
	}
	return Atom{Pred: a.Pred, Args: args}
}

// flattenTerm replaces a compound term with a fresh variable V and emits
// fn_f(args..., V) literals (list(H,T,L) for cons cells), recursively
// flattening nested compounds first.
func flattenTerm(t Term, gen *FreshGen, extra *[]Atom) Term {
	if t.Kind != Compound {
		return t
	}
	flatArgs := make([]Term, len(t.Args))
	for i, a := range t.Args {
		if a.Kind == Compound {
			flatArgs[i] = flattenTerm(a, gen, extra)
		} else {
			flatArgs[i] = a
		}
	}
	v := V(gen.Fresh("L"))
	lit := Atom{Pred: FnPredName(t.Functor), Args: append(flatArgs, v)}
	*extra = append(*extra, lit)
	return v
}

// InStandardForm reports whether every literal of every predicate in preds
// within r has distinct-variable arguments.
func InStandardForm(r Rule, preds map[string]bool) bool {
	ok := func(a Atom) bool {
		if !preds[a.Pred] {
			return true
		}
		seen := map[string]bool{}
		for _, t := range a.Args {
			if t.Kind != Var || seen[t.Functor] {
				return false
			}
			seen[t.Functor] = true
		}
		return true
	}
	if !ok(r.Head) {
		return false
	}
	for _, a := range r.Body {
		if !ok(a) {
			return false
		}
	}
	return true
}

// ProgramInStandardForm reports whether every rule of p is in standard form
// with respect to preds.
func ProgramInStandardForm(p *Program, preds map[string]bool) bool {
	for _, r := range p.Rules {
		if !InStandardForm(r, preds) {
			return false
		}
	}
	return true
}
