package ast

import (
	"fmt"
	"strings"
)

// EqualPred is the name of the special "infinite EDB" equality predicate
// introduced by the standard-form translation of Section 4.1 of the paper.
// equal(X, Y) holds for all pairs of equal terms.
const EqualPred = "equal"

// FnPredPrefix prefixes the special predicates introduced by the
// standard-form translation for function symbols: a term f(T1..Tn) in an
// argument of the recursive predicate becomes a fresh variable V plus a
// literal fn_f(T1..Tn, V). The paper's `list(X, T, L)` relation is the
// instance fn_'.'(X, T, L) of this scheme.
const FnPredPrefix = "fn_"

// Atom is a predicate applied to terms: p(t1, ..., tn). Atoms serve as rule
// heads, body literals, facts (when ground), and queries.
type Atom struct {
	Pred string
	Args []Term
}

// NewAtom constructs an atom.
func NewAtom(pred string, args ...Term) Atom { return Atom{Pred: pred, Args: args} }

// Arity returns the number of arguments.
func (a Atom) Arity() int { return len(a.Args) }

// Equal reports structural equality.
func (a Atom) Equal(b Atom) bool {
	if a.Pred != b.Pred || len(a.Args) != len(b.Args) {
		return false
	}
	for i := range a.Args {
		if !a.Args[i].Equal(b.Args[i]) {
			return false
		}
	}
	return true
}

// Ground reports whether all arguments are ground.
func (a Atom) Ground() bool {
	for _, t := range a.Args {
		if !t.Ground() {
			return false
		}
	}
	return true
}

// Vars returns the variable names in a in first-occurrence order.
func (a Atom) Vars() []string {
	var order []string
	seen := map[string]bool{}
	for _, t := range a.Args {
		t.CollectVars(&order, seen)
	}
	return order
}

// HasVar reports whether variable name occurs in a.
func (a Atom) HasVar(name string) bool {
	for _, t := range a.Args {
		if t.HasVar(name) {
			return true
		}
	}
	return false
}

// Clone returns a deep-enough copy (terms are immutable; the args slice is
// copied so callers may append or overwrite entries).
func (a Atom) Clone() Atom {
	args := make([]Term, len(a.Args))
	copy(args, a.Args)
	return Atom{Pred: a.Pred, Args: args}
}

// String renders the atom in surface syntax, e.g. t_bf(X,Y) or true for a
// zero-arity predicate.
func (a Atom) String() string {
	if len(a.Args) == 0 {
		return a.Pred
	}
	var b strings.Builder
	b.WriteString(a.Pred)
	b.WriteByte('(')
	for i, t := range a.Args {
		if i > 0 {
			b.WriteByte(',')
		}
		t.write(&b)
	}
	b.WriteByte(')')
	return b.String()
}

// CanonicalKey renders the atom with variables renamed to V0, V1, ... in
// first-occurrence order, so alphabetic variants share a key. Used to
// identify goals up to renaming.
func (a Atom) CanonicalKey() string {
	m := map[string]string{}
	for i, v := range a.Vars() {
		m[v] = fmt.Sprintf("V%d", i)
	}
	return renameAtomVars(a, m).String()
}

// Compare totally orders atoms by predicate, arity, then arguments.
func (a Atom) Compare(b Atom) int {
	if c := strings.Compare(a.Pred, b.Pred); c != 0 {
		return c
	}
	if d := len(a.Args) - len(b.Args); d != 0 {
		return d
	}
	for i := range a.Args {
		if c := a.Args[i].Compare(b.Args[i]); c != 0 {
			return c
		}
	}
	return 0
}

// --- Adorned predicate names -------------------------------------------------
//
// Adornment annotates each argument position of a predicate as bound ('b') or
// free ('f') with respect to a query and a sideways information passing
// strategy. We encode adornments into predicate names, separating the base
// name from the adornment string with adornSep, so every downstream
// transformation can treat adorned predicates as ordinary predicates. The
// printer renders p_bf, matching the paper's p^bf.

const adornSep = "_"

// Adornment is a string over {'b','f'}, one character per argument position.
type Adornment string

// IsValid reports whether ad consists only of 'b' and 'f'.
func (ad Adornment) IsValid() bool {
	for i := 0; i < len(ad); i++ {
		if ad[i] != 'b' && ad[i] != 'f' {
			return false
		}
	}
	return true
}

// Bound returns the indices of bound positions.
func (ad Adornment) Bound() []int { return ad.positions('b') }

// Free returns the indices of free positions.
func (ad Adornment) Free() []int { return ad.positions('f') }

func (ad Adornment) positions(c byte) []int {
	var out []int
	for i := 0; i < len(ad); i++ {
		if ad[i] == c {
			out = append(out, i)
		}
	}
	return out
}

// AllBound reports whether every position is bound.
func (ad Adornment) AllBound() bool { return len(ad.Free()) == 0 }

// AllFree reports whether every position is free.
func (ad Adornment) AllFree() bool { return len(ad.Bound()) == 0 }

// AdornedName combines a base predicate name with an adornment, e.g.
// AdornedName("t", "bf") == "t_bf".
func AdornedName(base string, ad Adornment) string {
	if len(ad) == 0 {
		return base
	}
	return base + adornSep + string(ad)
}

// SplitAdorned splits an adorned predicate name into its base and adornment.
// If the name has no valid adornment suffix, it returns (name, "", false).
func SplitAdorned(name string) (base string, ad Adornment, ok bool) {
	i := strings.LastIndex(name, adornSep)
	if i < 0 || i == len(name)-1 {
		return name, "", false
	}
	suffix := Adornment(name[i+1:])
	if !suffix.IsValid() {
		return name, "", false
	}
	return name[:i], suffix, true
}

// MagicPrefix prefixes magic predicates: the magic version of p_bf is
// m_p_bf, holding the bound-argument projections of the goals generated for
// p_bf during a top-down evaluation.
const MagicPrefix = "m_"

// MagicName returns the magic predicate name for an adorned predicate name.
func MagicName(adornedPred string) string { return MagicPrefix + adornedPred }

// IsMagicName reports whether name is a magic predicate name.
func IsMagicName(name string) bool { return strings.HasPrefix(name, MagicPrefix) }

// MagicAtom builds the magic literal of atom a given its adornment: the
// predicate m_<pred> applied to the bound-position arguments of a.
func MagicAtom(a Atom, ad Adornment) Atom {
	bound := ad.Bound()
	args := make([]Term, len(bound))
	for i, pos := range bound {
		args[i] = a.Args[pos]
	}
	return Atom{Pred: MagicName(a.Pred), Args: args}
}

// AdornmentOf computes the adornment of atom a given a set of bound
// variables: an argument is bound iff it is ground or all of its variables
// are in bound.
func AdornmentOf(a Atom, bound map[string]bool) Adornment {
	var b strings.Builder
	for _, t := range a.Args {
		if termBound(t, bound) {
			b.WriteByte('b')
		} else {
			b.WriteByte('f')
		}
	}
	return Adornment(b.String())
}

func termBound(t Term, bound map[string]bool) bool {
	switch t.Kind {
	case Var:
		return bound[t.Functor]
	case Const:
		return true
	default:
		for _, a := range t.Args {
			if !termBound(a, bound) {
				return false
			}
		}
		return true
	}
}

// FnPredName returns the standard-form predicate name for function symbol f,
// e.g. fn_cons for cons. The list functor gets the paper's name "list".
func FnPredName(functor string) string {
	if functor == ConsFunctor {
		return "list"
	}
	return FnPredPrefix + functor
}

// IsStandardFormPred reports whether pred is one of the special predicates
// introduced by the standard-form translation (equal, list, fn_*). These are
// conceptually infinite EDB relations; they exist only at compile time for
// factorability testing.
func IsStandardFormPred(pred string) bool {
	return pred == EqualPred || pred == "list" || strings.HasPrefix(pred, FnPredPrefix)
}

// FmtPredArity renders "p/2"-style predicate identifiers for messages.
func FmtPredArity(pred string, arity int) string {
	return fmt.Sprintf("%s/%d", pred, arity)
}
