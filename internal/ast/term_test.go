package ast

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestTermConstructorsAndPredicates(t *testing.T) {
	v := V("X")
	if !v.IsVar() || v.IsConst() || v.IsCompound() {
		t.Fatalf("V: wrong kind predicates: %+v", v)
	}
	c := C("paris")
	if !c.IsConst() || c.IsVar() {
		t.Fatalf("C: wrong kind predicates: %+v", c)
	}
	f := Fn("f", v, c)
	if !f.IsCompound() || f.Functor != "f" || len(f.Args) != 2 {
		t.Fatalf("Fn: %+v", f)
	}
}

func TestListSugar(t *testing.T) {
	l := List(C("a"), C("b"), C("c"))
	if got := l.String(); got != "[a,b,c]" {
		t.Errorf("List string = %q, want [a,b,c]", got)
	}
	if !l.IsCons() {
		t.Error("List should be a cons cell")
	}
	partial := ListTail(V("T"), C("a"))
	if got := partial.String(); got != "[a|T]" {
		t.Errorf("partial list = %q, want [a|T]", got)
	}
	if got := Nil().String(); got != "[]" {
		t.Errorf("Nil = %q", got)
	}
	if !Nil().IsNil() {
		t.Error("Nil().IsNil() = false")
	}
	one := Cons(C("x"), Nil())
	if got := one.String(); got != "[x]" {
		t.Errorf("singleton = %q", got)
	}
}

func TestTermGround(t *testing.T) {
	cases := []struct {
		term Term
		want bool
	}{
		{C("a"), true},
		{V("X"), false},
		{Fn("f", C("a"), C("b")), true},
		{Fn("f", C("a"), V("X")), false},
		{List(C("a"), C("b")), true},
		{ListTail(V("T"), C("a")), false},
	}
	for _, c := range cases {
		if got := c.term.Ground(); got != c.want {
			t.Errorf("Ground(%s) = %v, want %v", c.term, got, c.want)
		}
	}
}

func TestTermEqualSizeDepth(t *testing.T) {
	a := Fn("f", V("X"), Fn("g", C("c")))
	b := Fn("f", V("X"), Fn("g", C("c")))
	if !a.Equal(b) {
		t.Error("structurally equal terms not Equal")
	}
	if a.Equal(Fn("f", V("Y"), Fn("g", C("c")))) {
		t.Error("different variables reported Equal")
	}
	if a.Size() != 4 {
		t.Errorf("Size = %d, want 4", a.Size())
	}
	if a.Depth() != 3 {
		t.Errorf("Depth = %d, want 3", a.Depth())
	}
	if C("a").Depth() != 1 {
		t.Error("constant depth should be 1")
	}
}

func TestTermVars(t *testing.T) {
	term := Fn("f", V("X"), Fn("g", V("Y"), V("X")), V("Z"))
	got := term.Vars()
	want := []string{"X", "Y", "Z"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Vars = %v, want %v", got, want)
	}
	if !term.HasVar("Y") || term.HasVar("Q") {
		t.Error("HasVar wrong")
	}
}

func TestTermCompareTotalOrder(t *testing.T) {
	terms := []Term{V("X"), V("Y"), C("a"), C("b"), Fn("f", C("a")), Fn("f", C("b")), Fn("g", C("a"))}
	for i := range terms {
		for j := range terms {
			cij := terms[i].Compare(terms[j])
			cji := terms[j].Compare(terms[i])
			if (cij == 0) != (i == j) && terms[i].Equal(terms[j]) != (cij == 0) {
				t.Errorf("Compare(%s,%s)=%d inconsistent with Equal", terms[i], terms[j], cij)
			}
			if sign(cij) != -sign(cji) {
				t.Errorf("Compare not antisymmetric on (%s,%s)", terms[i], terms[j])
			}
		}
	}
}

func sign(x int) int {
	switch {
	case x < 0:
		return -1
	case x > 0:
		return 1
	default:
		return 0
	}
}

// randTerm generates a random term over a small vocabulary; used by
// property tests.
func randTerm(r *rand.Rand, depth int) Term {
	if depth <= 0 || r.Intn(3) == 0 {
		if r.Intn(2) == 0 {
			return V([]string{"X", "Y", "Z"}[r.Intn(3)])
		}
		return C([]string{"a", "b", "c"}[r.Intn(3)])
	}
	n := 1 + r.Intn(2)
	args := make([]Term, n)
	for i := range args {
		args[i] = randTerm(r, depth-1)
	}
	return Fn([]string{"f", "g"}[r.Intn(2)], args...)
}

func TestTermEqualReflexiveProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		x := randTerm(r, 3)
		return x.Equal(x) && x.Compare(x) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSortTermsDeterministic(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	ts := make([]Term, 20)
	for i := range ts {
		ts[i] = randTerm(r, 3)
	}
	a := append([]Term(nil), ts...)
	b := append([]Term(nil), ts...)
	// shuffle b
	r.Shuffle(len(b), func(i, j int) { b[i], b[j] = b[j], b[i] })
	SortTerms(a)
	SortTerms(b)
	for i := range a {
		if !a[i].Equal(b[i]) {
			t.Fatalf("sort not deterministic at %d: %s vs %s", i, a[i], b[i])
		}
	}
}

func TestTermKindString(t *testing.T) {
	if Var.String() != "var" || Const.String() != "const" || Compound.String() != "compound" {
		t.Error("TermKind.String wrong")
	}
	if TermKind(9).String() == "" {
		t.Error("unknown kind should still render")
	}
}
