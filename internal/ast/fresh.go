package ast

import (
	"fmt"
	"strings"
)

// FreshGen generates variable names guaranteed not to collide with any name
// it has been told about (via Reserve) or has generated.
type FreshGen struct {
	used map[string]bool
	n    int
}

// NewFreshGen returns a generator that avoids all variable names occurring
// in the given rules.
func NewFreshGen(rules ...Rule) *FreshGen {
	g := &FreshGen{used: map[string]bool{}}
	for _, r := range rules {
		g.ReserveRule(r)
	}
	return g
}

// NewFreshGenProgram returns a generator avoiding all names in p.
func NewFreshGenProgram(p *Program) *FreshGen {
	g := &FreshGen{used: map[string]bool{}}
	for _, r := range p.Rules {
		g.ReserveRule(r)
	}
	return g
}

// Reserve marks a name as taken.
func (g *FreshGen) Reserve(name string) { g.used[name] = true }

// ReserveRule reserves every variable name in r.
func (g *FreshGen) ReserveRule(r Rule) {
	for _, v := range r.Vars() {
		g.used[v] = true
	}
}

// Fresh returns a new variable name based on hint (its leading letters) that
// has never been returned before and collides with nothing reserved.
func (g *FreshGen) Fresh(hint string) string {
	base := strings.TrimRight(hint, "0123456789_")
	if base == "" {
		base = "V"
	}
	for {
		name := fmt.Sprintf("%s_%d", base, g.n)
		g.n++
		if !g.used[name] {
			g.used[name] = true
			return name
		}
	}
}
