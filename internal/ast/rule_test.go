package ast

import (
	"reflect"
	"strings"
	"testing"
)

// tc3 is the three-rule transitive closure of Example 1.1.
func tc3() *Program {
	t := func(a, b Term) Atom { return NewAtom("t", a, b) }
	e := func(a, b Term) Atom { return NewAtom("e", a, b) }
	X, Y, W := V("X"), V("Y"), V("W")
	return NewProgram(
		NewRule(t(X, Y), t(X, W), t(W, Y)),
		NewRule(t(X, Y), e(X, W), t(W, Y)),
		NewRule(t(X, Y), t(X, W), e(W, Y)),
		NewRule(t(X, Y), e(X, Y)),
	)
}

func TestRuleBasics(t *testing.T) {
	p := tc3()
	r := p.Rules[0]
	if r.IsFact() {
		t.Error("rule with body reported as fact")
	}
	if got := r.String(); got != "t(X,Y) :- t(X,W), t(W,Y)." {
		t.Errorf("String = %q", got)
	}
	f := Fact(NewAtom("e", C("1"), C("2")))
	if !f.IsFact() || f.String() != "e(1,2)." {
		t.Errorf("fact: %q", f.String())
	}
}

func TestRuleVarsOrder(t *testing.T) {
	r := NewRule(NewAtom("p", V("A"), V("B")), NewAtom("q", V("C"), V("A")))
	want := []string{"A", "B", "C"}
	if got := r.Vars(); !reflect.DeepEqual(got, want) {
		t.Errorf("Vars = %v, want %v", got, want)
	}
	if got := r.BodyVars(); !reflect.DeepEqual(got, []string{"C", "A"}) {
		t.Errorf("BodyVars = %v", got)
	}
}

func TestRuleSafe(t *testing.T) {
	safe := NewRule(NewAtom("p", V("X")), NewAtom("e", V("X"), V("Y")))
	if !safe.Safe() {
		t.Error("safe rule reported unsafe")
	}
	unsafe := NewRule(NewAtom("p", V("X"), V("Z")), NewAtom("e", V("X"), V("Y")))
	if unsafe.Safe() {
		t.Error("unsafe rule reported safe")
	}
	groundFact := Fact(NewAtom("p", C("1")))
	if !groundFact.Safe() {
		t.Error("ground fact should be safe")
	}
	varFact := Fact(NewAtom("p", V("X")))
	if varFact.Safe() {
		t.Error("non-ground fact should be unsafe")
	}
}

func TestProgramIDBEDB(t *testing.T) {
	p := tc3()
	idb := p.IDBPreds()
	if !idb["t"] || idb["e"] {
		t.Errorf("IDBPreds = %v", idb)
	}
	edb := p.EDBPreds()
	if !edb["e"] || edb["t"] {
		t.Errorf("EDBPreds = %v", edb)
	}
	if !p.IsIDB("t") || p.IsIDB("e") {
		t.Error("IsIDB wrong")
	}
	if n := len(p.RulesFor("t")); n != 4 {
		t.Errorf("RulesFor(t) = %d rules", n)
	}
}

func TestPredArities(t *testing.T) {
	p := tc3()
	ar, err := p.PredArities()
	if err != nil {
		t.Fatal(err)
	}
	if ar["t"] != 2 || ar["e"] != 2 {
		t.Errorf("arities = %v", ar)
	}
	bad := NewProgram(
		NewRule(NewAtom("p", V("X")), NewAtom("e", V("X"))),
		NewRule(NewAtom("p", V("X"), V("Y")), NewAtom("e", V("X"))),
	)
	if _, err := bad.PredArities(); err == nil {
		t.Error("arity conflict not detected")
	}
}

func TestRecursivePreds(t *testing.T) {
	p := tc3()
	rec := p.RecursivePreds()
	if !rec["t"] {
		t.Error("t should be recursive")
	}
	// Mutual recursion.
	mut := NewProgram(
		NewRule(NewAtom("a", V("X")), NewAtom("b", V("X"))),
		NewRule(NewAtom("b", V("X")), NewAtom("a", V("X"))),
		NewRule(NewAtom("c", V("X")), NewAtom("e", V("X"))),
	)
	rec = mut.RecursivePreds()
	if !rec["a"] || !rec["b"] || rec["c"] {
		t.Errorf("mutual recursion detection wrong: %v", rec)
	}
}

func TestReachablePreds(t *testing.T) {
	p := NewProgram(
		NewRule(NewAtom("q", V("X")), NewAtom("t", C("5"), V("X"))),
		NewRule(NewAtom("t", V("X"), V("Y")), NewAtom("e", V("X"), V("Y"))),
		NewRule(NewAtom("orphan", V("X")), NewAtom("z", V("X"))),
	)
	reach := p.ReachablePreds("q")
	if !reach["q"] || !reach["t"] || !reach["e"] {
		t.Errorf("reach = %v", reach)
	}
	if reach["orphan"] || reach["z"] {
		t.Errorf("unreachable preds included: %v", reach)
	}
}

func TestRenameApart(t *testing.T) {
	r := tc3().Rules[0]
	gen := NewFreshGen(r)
	r2 := r.RenameApart(gen)
	for _, v := range r2.Vars() {
		for _, w := range r.Vars() {
			if v == w {
				t.Errorf("renamed rule shares variable %s", v)
			}
		}
	}
	// Structure preserved.
	if r2.Head.Pred != "t" || len(r2.Body) != 2 {
		t.Error("structure not preserved")
	}
}

func TestCanonicalizeVars(t *testing.T) {
	a := NewRule(NewAtom("p", V("Foo"), V("Bar")), NewAtom("e", V("Foo"), V("Bar")))
	b := NewRule(NewAtom("p", V("X"), V("Y")), NewAtom("e", V("X"), V("Y")))
	if a.CanonicalizeVars().String() != b.CanonicalizeVars().String() {
		t.Error("alphabetic variants canonicalize differently")
	}
}

func TestProgramCanonical(t *testing.T) {
	p := tc3()
	q := tc3()
	// Shuffle rule order and rename variables.
	q.Rules[0], q.Rules[3] = q.Rules[3], q.Rules[0]
	s := Subst{"X": V("A"), "Y": V("B"), "W": V("M")}
	for i := range q.Rules {
		q.Rules[i] = s.ApplyRule(q.Rules[i])
	}
	if !EqualAsRuleSets(p, q) {
		t.Error("renamed/reordered program should be canonical-equal")
	}
	r := tc3()
	r.Rules = r.Rules[:3]
	if EqualAsRuleSets(p, r) {
		t.Error("different programs should not be canonical-equal")
	}
}

func TestCanonicalModBodyOrder(t *testing.T) {
	a := NewProgram(NewRule(NewAtom("p", V("X"), V("Y")),
		NewAtom("e", V("X"), V("W")), NewAtom("f", V("W"), V("Y"))))
	b := NewProgram(NewRule(NewAtom("p", V("A"), V("B")),
		NewAtom("f", V("M"), V("B")), NewAtom("e", V("A"), V("M"))))
	if a.CanonicalModBodyOrder() != b.CanonicalModBodyOrder() {
		t.Errorf("body-order variants differ:\n%s\nvs\n%s",
			a.CanonicalModBodyOrder(), b.CanonicalModBodyOrder())
	}
}

func TestProgramString(t *testing.T) {
	p := tc3()
	s := p.String()
	if !strings.Contains(s, "t(X,Y) :- e(X,Y).") {
		t.Errorf("program string missing exit rule:\n%s", s)
	}
	if strings.Count(s, "\n") != 4 {
		t.Errorf("expected 4 lines, got:\n%s", s)
	}
}

func TestProgramClone(t *testing.T) {
	p := tc3()
	q := p.Clone()
	q.Rules[0].Body[0] = NewAtom("zzz", V("X"))
	if p.Rules[0].Body[0].Pred == "zzz" {
		t.Error("Clone shares body storage")
	}
}

func TestFreshGen(t *testing.T) {
	g := NewFreshGen(tc3().Rules...)
	a := g.Fresh("X")
	b := g.Fresh("X")
	if a == b {
		t.Error("Fresh returned duplicate")
	}
	if a == "X" || b == "X" {
		t.Error("Fresh collided with reserved name")
	}
	g2 := &FreshGen{used: map[string]bool{}}
	if g2.Fresh("") == "" {
		t.Error("empty hint should still generate")
	}
}

func TestAnonymizeSingletons(t *testing.T) {
	p := NewProgram(
		NewRule(NewAtom("m", V("W")),
			NewAtom("bt", V("X")), NewAtom("ft", V("W"))),
	)
	a := p.AnonymizeSingletons()
	if got := a.Rules[0].String(); got != "m(W) :- bt(_), ft(W)." {
		t.Errorf("anonymized = %q", got)
	}
	// Original untouched.
	if p.Rules[0].Body[0].Args[0].Functor != "X" {
		t.Error("input mutated")
	}
	// Repeated var within one compound is not a singleton.
	p2 := NewProgram(NewRule(NewAtom("h", V("Y")),
		NewAtom("e", Fn("f", V("X"), V("X")), V("Y"))))
	a2 := p2.AnonymizeSingletons()
	if a2.Rules[0].Body[0].Args[0].HasVar("_") {
		t.Errorf("repeated var anonymized: %s", a2.Rules[0])
	}
}

func TestRenamePreds(t *testing.T) {
	p := NewProgram(
		NewRule(NewAtom("cnt", V("X")), NewAtom("cnt", V("W")), NewAtom("e", V("W"), V("X"))),
	)
	q := p.RenamePreds(map[string]string{"cnt": "m_p"})
	want := NewProgram(
		NewRule(NewAtom("m_p", V("X")), NewAtom("m_p", V("W")), NewAtom("e", V("W"), V("X"))),
	)
	if q.Canonical() != want.Canonical() {
		t.Errorf("RenamePreds:\n%s\nwant:\n%s", q, want)
	}
	// The original is untouched.
	if p.Rules[0].Head.Pred != "cnt" {
		t.Error("RenamePreds mutated the receiver")
	}
	// Unmapped predicates survive.
	if q.Rules[0].Body[1].Pred != "e" {
		t.Error("unmapped predicate renamed")
	}
}

func TestCountBodyAndIndices(t *testing.T) {
	r := tc3().Rules[1] // t(X,Y) :- e(X,W), t(W,Y).
	isT := func(a Atom) bool { return a.Pred == "t" }
	if r.CountBody(isT) != 1 {
		t.Error("CountBody wrong")
	}
	if got := r.BodyIndices(isT); !reflect.DeepEqual(got, []int{1}) {
		t.Errorf("BodyIndices = %v", got)
	}
}
