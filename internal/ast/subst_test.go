package ast

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSubstApply(t *testing.T) {
	s := Subst{"X": C("a"), "Y": Fn("f", V("X"))}
	got := s.Apply(Fn("g", V("X"), V("Y"), V("Z")))
	want := Fn("g", C("a"), Fn("f", C("a")), V("Z"))
	if !got.Equal(want) {
		t.Errorf("Apply = %s, want %s", got, want)
	}
}

func TestSubstWalkChains(t *testing.T) {
	s := Subst{"X": V("Y"), "Y": V("Z"), "Z": C("end")}
	if got := s.Walk(V("X")); !got.Equal(C("end")) {
		t.Errorf("Walk chain = %s, want end", got)
	}
	if got := s.Walk(C("k")); !got.Equal(C("k")) {
		t.Errorf("Walk const = %s", got)
	}
}

func TestUnifyBasics(t *testing.T) {
	cases := []struct {
		a, b Term
		ok   bool
	}{
		{V("X"), C("a"), true},
		{C("a"), C("a"), true},
		{C("a"), C("b"), false},
		{Fn("f", V("X")), Fn("f", C("a")), true},
		{Fn("f", V("X")), Fn("g", C("a")), false},
		{Fn("f", V("X"), V("X")), Fn("f", C("a"), C("b")), false},
		{Fn("f", V("X"), V("X")), Fn("f", C("a"), C("a")), true},
		{V("X"), Fn("f", V("X")), false}, // occurs check
		{V("X"), V("Y"), true},
	}
	for _, c := range cases {
		s, ok := Unify(c.a, c.b, nil)
		if ok != c.ok {
			t.Errorf("Unify(%s,%s) ok=%v, want %v", c.a, c.b, ok, c.ok)
			continue
		}
		if ok {
			if got, want := s.Apply(c.a), s.Apply(c.b); !got.Equal(want) {
				t.Errorf("Unify(%s,%s): applied sides differ: %s vs %s", c.a, c.b, got, want)
			}
		}
	}
}

func TestUnifyDoesNotModifyBase(t *testing.T) {
	base := Subst{"W": C("w")}
	_, ok := Unify(V("X"), C("a"), base)
	if !ok {
		t.Fatal("unify failed")
	}
	if len(base) != 1 {
		t.Errorf("base modified: %s", base)
	}
}

func TestUnifyLists(t *testing.T) {
	pattern := ListTail(V("T"), V("H"))
	target := List(C("a"), C("b"), C("c"))
	s, ok := Unify(pattern, target, nil)
	if !ok {
		t.Fatal("list unification failed")
	}
	if got := s.Apply(V("H")); !got.Equal(C("a")) {
		t.Errorf("H = %s, want a", got)
	}
	if got := s.Apply(V("T")); !got.Equal(List(C("b"), C("c"))) {
		t.Errorf("T = %s, want [b,c]", got)
	}
}

func TestUnifyAtoms(t *testing.T) {
	a := NewAtom("p", V("X"), C("5"))
	b := NewAtom("p", C("3"), V("Y"))
	s, ok := UnifyAtoms(a, b, nil)
	if !ok {
		t.Fatal("atom unification failed")
	}
	if !s.ApplyAtom(a).Equal(s.ApplyAtom(b)) {
		t.Error("unified atoms differ")
	}
	if _, ok := UnifyAtoms(a, NewAtom("q", V("X"), C("5")), nil); ok {
		t.Error("different predicates should not unify")
	}
	if _, ok := UnifyAtoms(a, NewAtom("p", V("X")), nil); ok {
		t.Error("different arities should not unify")
	}
}

func TestMatchOneWay(t *testing.T) {
	// Match binds only pattern variables.
	s, ok := Match(Fn("f", V("X"), C("a")), Fn("f", C("b"), C("a")), nil)
	if !ok || !s.Apply(V("X")).Equal(C("b")) {
		t.Fatalf("match failed: %v %s", ok, s)
	}
	// Ground side variables are opaque: pattern constant vs target var fails.
	if _, ok := Match(C("a"), V("Y"), nil); ok {
		t.Error("constant should not match a target variable")
	}
	// Pattern var against target var binds to the variable itself.
	s, ok = Match(V("X"), V("Y"), nil)
	if !ok || !s.Apply(V("X")).Equal(V("Y")) {
		t.Error("var-to-var match should bind X->Y")
	}
	// Repeated pattern variable must match equal subterms.
	if _, ok := Match(Fn("f", V("X"), V("X")), Fn("f", C("a"), C("b")), nil); ok {
		t.Error("repeated var matched different terms")
	}
}

func TestMatchAtoms(t *testing.T) {
	pat := NewAtom("e", V("A"), V("B"))
	tgt := NewAtom("e", C("1"), C("2"))
	s, ok := MatchAtoms(pat, tgt, nil)
	if !ok || !s.ApplyAtom(pat).Equal(tgt) {
		t.Fatal("MatchAtoms failed")
	}
}

// Property: a unifier really unifies, on random term pairs.
func TestUnifyProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := randTerm(r, 3), randTerm(r, 3)
		s, ok := Unify(a, b, nil)
		if !ok {
			return true // nothing to check; failure is allowed
		}
		return s.Apply(a).Equal(s.Apply(b))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: Match(p, g) implies Apply(p) == g when g is ground.
func TestMatchProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		p := randTerm(r, 3)
		// Ground p by substituting constants for its variables -> target.
		gs := Subst{}
		for _, v := range p.Vars() {
			gs[v] = C([]string{"a", "b", "c"}[r.Intn(3)])
		}
		g := gs.Apply(p)
		s, ok := Match(p, g, nil)
		return ok && s.Apply(p).Equal(g)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestSubstString(t *testing.T) {
	s := Subst{"Y": C("b"), "X": C("a")}
	if got := s.String(); got != "{X->a, Y->b}" {
		t.Errorf("String = %q", got)
	}
}

func TestApplyRule(t *testing.T) {
	r := NewRule(NewAtom("p", V("X"), V("Y")), NewAtom("e", V("X"), V("Y")))
	s := Subst{"X": C("1")}
	got := s.ApplyRule(r)
	want := NewRule(NewAtom("p", C("1"), V("Y")), NewAtom("e", C("1"), V("Y")))
	if !got.Equal(want) {
		t.Errorf("ApplyRule = %s, want %s", got, want)
	}
}
