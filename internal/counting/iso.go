package counting

import (
	"sort"

	"factorlog/internal/ast"
)

// Program isomorphism up to predicate renaming, used to check Theorem 6.4:
// the factored Magic program and the Counting program with index fields
// deleted are "identical ... except that some predicates are named
// differently".

// EqualUpToRenaming reports whether renaming p1's predicates per m makes it
// equal to p2 as a rule set (variables and rule order ignored, body literal
// order ignored).
func EqualUpToRenaming(p1, p2 *ast.Program, m map[string]string) bool {
	return p1.RenamePreds(m).CanonicalModBodyOrder() == p2.CanonicalModBodyOrder()
}

// FindRenaming searches for a bijective predicate renaming of p1 onto p2's
// predicates that makes the programs equal as rule sets. Predicates present
// in both programs under the same name may map to themselves or be renamed.
// It returns the renaming and true on success. The search is exponential in
// the number of predicates that share an arity; the programs compared here
// are rule-sized.
func FindRenaming(p1, p2 *ast.Program) (map[string]string, bool) {
	preds1 := predsByArity(p1)
	preds2 := predsByArity(p2)
	// Quick reject: arity profiles must match.
	if len(preds1) != len(preds2) {
		return nil, false
	}
	for ar, ps := range preds1 {
		if len(preds2[ar]) != len(ps) {
			return nil, false
		}
	}
	var arities []int
	for ar := range preds1 {
		arities = append(arities, ar)
	}
	sort.Ints(arities)

	mapping := map[string]string{}
	used := map[string]bool{}
	var assign func(ai, pi int) bool
	assign = func(ai, pi int) bool {
		if ai == len(arities) {
			return EqualUpToRenaming(p1, p2, mapping)
		}
		ar := arities[ai]
		ps1, ps2 := preds1[ar], preds2[ar]
		if pi == len(ps1) {
			return assign(ai+1, 0)
		}
		from := ps1[pi]
		for _, to := range ps2 {
			if used[to] {
				continue
			}
			mapping[from] = to
			used[to] = true
			if assign(ai, pi+1) {
				return true
			}
			delete(mapping, from)
			used[to] = false
		}
		return false
	}
	if assign(0, 0) {
		return mapping, true
	}
	return nil, false
}

func predsByArity(p *ast.Program) map[int][]string {
	seen := map[string]int{}
	add := func(a ast.Atom) { seen[a.Pred] = len(a.Args) }
	for _, r := range p.Rules {
		add(r.Head)
		for _, b := range r.Body {
			add(b)
		}
	}
	out := map[int][]string{}
	for pred, ar := range seen {
		out[ar] = append(out[ar], pred)
	}
	for _, ps := range out {
		sort.Strings(ps)
	}
	return out
}
