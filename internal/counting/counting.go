// Package counting implements the Counting transformation of Section 6.4
// of the paper [2,3,12]: a variant of Magic Sets in which every derived
// predicate carries index fields encoding the derivation path, so answers
// can be matched to exactly the goal that generated them.
//
// Index fields are represented as terms: depths are Peano numerals
// (z, s(z), s(s(z)), ...) and rule paths are digit stacks (nil, r1(nil),
// r2(r1(nil)), ...) — the paper's I+1 and k*i+J in symbolic form.
//
// Counting cannot handle left-linear rules: the index rule generated from
// a left-linear rule increments the depth without changing the goal, so
// its fixpoint diverges (the paper's cnt_t(X, I+1) :- cnt_t(X, I)
// example). Transform reports this statically; Force generates the
// divergent program anyway for demonstrations. Theorem 6.4: for programs
// with no left-linear literals that satisfy the factoring conditions, the
// factored Magic program (after deleting trivially redundant rules) is
// identical to the Counting program with all index fields deleted.
package counting

import (
	"errors"
	"fmt"

	"factorlog/internal/adorn"
	"factorlog/internal/ast"
	"factorlog/internal/core"
)

// ErrDiverges is returned when the program contains left-linear or
// combined rules, for which the Counting program's fixpoint does not
// terminate.
var ErrDiverges = errors.New("counting diverges: program has left-linear or combined rules")

// ErrUnsupported is returned for rule shapes outside the construction
// (combined rules, multiple left-linear occurrences).
var ErrUnsupported = errors.New("counting transformation: unsupported rule shape")

// Result is the output of the transformation.
type Result struct {
	// Program is the Counting program: seed, index rules, answer rules,
	// and the query rule.
	Program *ast.Program
	// Query is the answer-collecting head, query(Y..).
	Query ast.Atom
	// CntPred is the goal predicate cnt_<p> (with 2 extra index args);
	// AnsPred is the answer predicate <p>_cnt (with 2 extra index args).
	CntPred, AnsPred string
	// Diverges reports that the generated program's bottom-up evaluation
	// will not terminate (left-linear rules present; only with Force).
	Diverges bool
}

// QueryPred is the name of the answer-collecting predicate.
const QueryPred = "query"

// Transform applies the Counting transformation to an adorned unit
// program. It returns ErrDiverges if the program contains left-linear or
// combined rules; use Force to generate the divergent program anyway
// (combined rules remain unsupported).
func Transform(ad *adorn.Result) (*Result, error) { return transform(ad, false) }

// Force is Transform without the divergence check: left-linear rules
// produce the non-terminating index rules the paper exhibits.
func Force(ad *adorn.Result) (*Result, error) { return transform(ad, true) }

func transform(ad *adorn.Result, force bool) (*Result, error) {
	a, err := core.Analyze(ad)
	if err != nil {
		return nil, err
	}
	if !a.RLCStable() {
		return nil, fmt.Errorf("%w: %s", ErrUnsupported, "program is not RLC-stable")
	}
	diverges := false
	for i, ri := range a.Rules {
		switch ri.Shape {
		case core.ShapeCombined:
			return nil, fmt.Errorf("%w: rule %d is combined", ErrUnsupported, i+1)
		case core.ShapeLeftLinear:
			if len(ri.LeftOccs) > 1 {
				return nil, fmt.Errorf("%w: rule %d has %d left-linear occurrences",
					ErrUnsupported, i+1, len(ri.LeftOccs))
			}
			diverges = true
			if !force {
				return nil, fmt.Errorf("%w (rule %d)", ErrDiverges, i+1)
			}
		}
	}

	// The analysis works on the standardized program; the construction
	// below works on the original adorned rules, using the analysis only
	// for shapes. Argument positions agree between the two.
	cntPred := "cnt_" + a.Base
	ansPred := a.Base + "_cnt"
	boundPos := a.Ad.Bound()
	freePos := a.Ad.Free()

	gen := ast.NewFreshGenProgram(ad.Program)
	iVar := func() ast.Term { return ast.V(gen.Fresh("I")) }

	proj := func(at ast.Atom, pos []int) []ast.Term {
		out := make([]ast.Term, len(pos))
		for k, p := range pos {
			out[k] = at.Args[p]
		}
		return out
	}
	zero := ast.C("z")
	nilIdx := ast.C("nil")
	succ := func(t ast.Term) ast.Term { return ast.Fn("s", t) }
	digit := func(i int, t ast.Term) ast.Term { return ast.Fn(fmt.Sprintf("r%d", i), t) }

	out := &ast.Program{}

	// Seed: cnt_p(queryBoundArgs, z, nil).
	seedArgs := append(proj(ad.Query, boundPos), zero, nilIdx)
	out.Add(ast.Fact(ast.Atom{Pred: cntPred, Args: seedArgs}))

	// The analysis indexes body literals of the STANDARDIZED rules; the
	// construction works on the original rules, whose recursive occurrences
	// appear in the same relative order. Map via occurrence ordinals.
	occByOrdinal := func(orig ast.Rule, stdInfo core.RuleInfo, stdIdx int) int {
		stdOccs := stdInfo.Rule.BodyIndices(func(at ast.Atom) bool { return at.Pred == a.Pred })
		ordinal := -1
		for k, oi := range stdOccs {
			if oi == stdIdx {
				ordinal = k
			}
		}
		origOccs := orig.BodyIndices(func(at ast.Atom) bool { return at.Pred == a.Pred })
		return origOccs[ordinal]
	}

	recNo := 0 // 1-based numbering of recursive rules, for digits
	for idx, r := range ad.Program.Rules {
		info := a.Rules[idx]
		switch info.Shape {
		case core.ShapeExit:
			// p_cnt(Y.., I, J) :- cnt_p(X.., I, J), exit-body.
			I, J := iVar(), iVar()
			head := ast.Atom{Pred: ansPred, Args: append(proj(r.Head, freePos), I, J)}
			body := []ast.Atom{{Pred: cntPred, Args: append(proj(r.Head, boundPos), I, J)}}
			body = append(body, r.Body...)
			out.Add(ast.Rule{Head: head, Body: body})

		case core.ShapeRightLinear:
			recNo++
			occIdx := occByOrdinal(r, info, info.RightOcc)
			occ := r.Body[occIdx]
			nonRec := withoutIndex(r.Body, occIdx)
			first, right := splitFirstRight(r, nonRec, freePos)
			// Index rule:
			//   cnt_p(V.., s(I), r_i(J)) :- cnt_p(X.., I, J), first(X..,V..).
			I, J := iVar(), iVar()
			idxHead := ast.Atom{Pred: cntPred,
				Args: append(proj(occ, boundPos), succ(I), digit(recNo, J))}
			idxBody := []ast.Atom{{Pred: cntPred, Args: append(proj(r.Head, boundPos), I, J)}}
			idxBody = append(idxBody, first...)
			out.Add(ast.Rule{Head: idxHead, Body: idxBody})
			// Answer rule:
			//   p_cnt(Y.., I, J) :- p_cnt(Y.., s(I), r_i(J)), right(Y..).
			I2, J2 := iVar(), iVar()
			ansHead := ast.Atom{Pred: ansPred, Args: append(proj(r.Head, freePos), I2, J2)}
			ansBody := []ast.Atom{{Pred: ansPred,
				Args: append(proj(occ, freePos), succ(I2), digit(recNo, J2))}}
			ansBody = append(ansBody, right...)
			out.Add(ast.Rule{Head: ansHead, Body: ansBody})

		case core.ShapeLeftLinear: // force mode only
			recNo++
			occIdx := occByOrdinal(r, info, info.LeftOccs[0])
			occ := r.Body[occIdx]
			nonRec := withoutIndex(r.Body, occIdx)
			// Index rule increments the depth without changing the goal:
			//   cnt_p(X.., s(I), r_i(J)) :- cnt_p(X.., I, J).
			I, J := iVar(), iVar()
			idxHead := ast.Atom{Pred: cntPred,
				Args: append(proj(r.Head, boundPos), succ(I), digit(recNo, J))}
			idxBody := []ast.Atom{{Pred: cntPred, Args: append(proj(r.Head, boundPos), I, J)}}
			out.Add(ast.Rule{Head: idxHead, Body: idxBody})
			// Answer rule:
			//   p_cnt(Y.., I, J) :- p_cnt(U.., s(I), r_i(J)), last(U.., Y..).
			I2, J2 := iVar(), iVar()
			ansHead := ast.Atom{Pred: ansPred, Args: append(proj(r.Head, freePos), I2, J2)}
			ansBody := []ast.Atom{{Pred: ansPred,
				Args: append(proj(occ, freePos), succ(I2), digit(recNo, J2))}}
			ansBody = append(ansBody, nonRec...)
			out.Add(ast.Rule{Head: ansHead, Body: ansBody})
		}
	}

	// Query rule: query(Y..) :- p_cnt(Y.., z, nil).
	qArgs := proj(ad.Query, freePos)
	qHead := ast.Atom{Pred: QueryPred, Args: qArgs}
	out.Add(ast.Rule{Head: qHead, Body: []ast.Atom{
		{Pred: ansPred, Args: append(append([]ast.Term{}, qArgs...), zero, nilIdx)},
	}})

	return &Result{
		Program:  out,
		Query:    qHead,
		CntPred:  cntPred,
		AnsPred:  ansPred,
		Diverges: diverges,
	}, nil
}

func withoutIndex(atoms []ast.Atom, skip int) []ast.Atom {
	out := make([]ast.Atom, 0, len(atoms)-1)
	for i, a := range atoms {
		if i != skip {
			out = append(out, a)
		}
	}
	return out
}

// splitFirstRight partitions the non-recursive body atoms of a right-linear
// rule into the first (goal-generating) and right (answer-filtering)
// conjunctions: a connected component of atoms belongs to right iff it
// touches a head free variable. This mirrors the conjunction assignment of
// the classifier, but on the original (non-standardized) rule so the output
// stays evaluable.
func splitFirstRight(r ast.Rule, nonRec []ast.Atom, freePos []int) (first, right []ast.Atom) {
	freeVars := map[string]bool{}
	for _, p := range freePos {
		for _, v := range r.Head.Args[p].Vars() {
			freeVars[v] = true
		}
	}
	// Fixpoint: grow the right-side variable set through shared variables.
	inRight := make([]bool, len(nonRec))
	for changed := true; changed; {
		changed = false
		for i, a := range nonRec {
			if inRight[i] {
				continue
			}
			touches := false
			for _, v := range a.Vars() {
				if freeVars[v] {
					touches = true
					break
				}
			}
			if touches {
				inRight[i] = true
				for _, v := range a.Vars() {
					freeVars[v] = true
				}
				changed = true
			}
		}
	}
	for i, a := range nonRec {
		if inRight[i] {
			right = append(right, a)
		} else {
			first = append(first, a)
		}
	}
	return first, right
}

// DeleteIndices removes the two index arguments from every occurrence of
// the cnt and answer predicates, the program Theorem 6.4 compares with the
// factored Magic program. Rules whose head appears in their body after the
// deletion (the paper's "trivially redundant rules") are dropped.
func DeleteIndices(p *ast.Program, cntPred, ansPred string) *ast.Program {
	strip := func(a ast.Atom) ast.Atom {
		if a.Pred == cntPred || a.Pred == ansPred {
			return ast.Atom{Pred: a.Pred, Args: a.Args[:len(a.Args)-2]}
		}
		return a
	}
	out := &ast.Program{}
	for _, r := range p.Rules {
		head := strip(r.Head)
		body := make([]ast.Atom, 0, len(r.Body))
		for _, b := range r.Body {
			body = append(body, strip(b))
		}
		redundant := false
		for _, b := range body {
			if head.Equal(b) {
				redundant = true
				break
			}
		}
		if !redundant {
			out.Add(ast.Rule{Head: head, Body: body})
		}
	}
	return out
}
