package counting

import (
	"errors"
	"math/rand"
	"testing"

	"factorlog/internal/adorn"
	"factorlog/internal/core"
	"factorlog/internal/engine"
	"factorlog/internal/magic"
	"factorlog/internal/optimize"
	"factorlog/internal/parser"
)

// section64Program is the two-first right-linear program of Section 6.4.
const section64Program = `
	p(X, Y) :- first1(X, U), p(U, Y), right1(Y).
	p(X, Y) :- first2(X, U), p(U, Y), right2(Y).
	p(X, Y) :- exit(X, Y).
`

func adornFor(t *testing.T, src, query string) *adorn.Result {
	t.Helper()
	ad, err := adorn.Adorn(parser.MustParseProgram(src), parser.MustParseAtom(query))
	if err != nil {
		t.Fatal(err)
	}
	return ad
}

func TestTransformRightLinear(t *testing.T) {
	ad := adornFor(t, section64Program, "p(5, Y)")
	res, err := Transform(ad)
	if err != nil {
		t.Fatal(err)
	}
	if res.Diverges {
		t.Error("right-linear program should not diverge")
	}
	// Seed + 2x(index+answer) + exit answer + query = 7 rules.
	if len(res.Program.Rules) != 7 {
		t.Errorf("rules = %d:\n%s", len(res.Program.Rules), res.Program)
	}
	if res.CntPred != "cnt_p" || res.AnsPred != "p_cnt" {
		t.Errorf("pred names: %s %s", res.CntPred, res.AnsPred)
	}
}

// TestCountingAnswersMatchMagic: on EDBs, the Counting program computes
// exactly the Magic program's answers.
func TestCountingAnswersMatchMagic(t *testing.T) {
	ad := adornFor(t, section64Program, "p(1, Y)")
	cnt, err := Transform(ad)
	if err != nil {
		t.Fatal(err)
	}
	m, err := magic.Transform(ad)
	if err != nil {
		t.Fatal(err)
	}

	load := func() *engine.DB {
		db := engine.NewDB()
		facts, err := parser.Parse(`
			first1(1, 2). first2(2, 3). first1(3, 4).
			exit(4, 10). exit(2, 11). exit(1, 12).
			right1(10). right2(10). right1(11). right2(11). right1(12).
		`)
		if err != nil {
			t.Fatal(err)
		}
		if err := engine.LoadFacts(db, facts.Facts); err != nil {
			t.Fatal(err)
		}
		return db
	}

	dbC := load()
	if _, err := engine.Eval(cnt.Program, dbC, engine.Options{MaxFacts: 100000}); err != nil {
		t.Fatal(err)
	}
	gotC, _ := engine.AnswerSet(dbC, cnt.Query)

	dbM := load()
	if _, err := engine.Eval(m.Program, dbM, engine.Options{}); err != nil {
		t.Fatal(err)
	}
	gotM, _ := engine.AnswerSet(dbM, m.Query)

	if len(gotC) != len(gotM) {
		t.Fatalf("counting %v vs magic %v", gotC, gotM)
	}
	for a := range gotC {
		if !gotM[a] {
			t.Errorf("counting answer %s not in magic", a)
		}
	}
	// Counting filters by exact derivation path: p(4,10) holds only after
	// first1, first2, first1, so 10 needs right1, right2 along the way.
	if !gotC["(10)"] {
		t.Errorf("expected answer 10: %v", gotC)
	}
}

// TestCountingIndexFiltering: Counting rejects an answer when a right
// filter fails along its own derivation path even though some other path's
// filters would pass — the behaviour the indices exist to implement.
func TestCountingIndexFiltering(t *testing.T) {
	ad := adornFor(t, section64Program, "p(1, Y)")
	cnt, err := Transform(ad)
	if err != nil {
		t.Fatal(err)
	}
	db := engine.NewDB()
	facts, err := parser.Parse(`
		first1(1, 2).
		exit(2, 10).
		right2(10).
	`) // answer 10 derived through first1 requires right1(10): absent
	if err != nil {
		t.Fatal(err)
	}
	if err := engine.LoadFacts(db, facts.Facts); err != nil {
		t.Fatal(err)
	}
	if _, err := engine.Eval(cnt.Program, db, engine.Options{MaxFacts: 10000}); err != nil {
		t.Fatal(err)
	}
	got, _ := engine.AnswerSet(db, cnt.Query)
	if len(got) != 0 {
		t.Errorf("right1 missing on the path; answers = %v", got)
	}
}

// TestTheorem64: the factored Magic program (optimized) is identical, up to
// predicate renaming, to the Counting program with index fields deleted.
func TestTheorem64(t *testing.T) {
	ad := adornFor(t, section64Program, "p(5, Y)")

	// Counting side. The class conditions (free_exit ⊆ right1/right2) hold
	// under EDB constraints; the syntactic programs coincide regardless.
	cnt, err := Transform(ad)
	if err != nil {
		t.Fatal(err)
	}
	noIdx := DeleteIndices(cnt.Program, cnt.CntPred, cnt.AnsPred)

	// Factoring side (forced: the free_exit ⊆ right containments are EDB
	// constraints; Theorem 6.4 is about the syntactic identity).
	m, err := magic.Transform(ad)
	if err != nil {
		t.Fatal(err)
	}
	fr, err := core.ForceFactorMagic(m)
	if err != nil {
		t.Fatal(err)
	}
	opt, err := optimize.Optimize(fr.Program, optimize.ForFactored(fr, magic.QueryPred, m.Seed.Head.Args))
	if err != nil {
		t.Fatal(err)
	}

	mapping, ok := FindRenaming(noIdx, opt.Program)
	if !ok {
		t.Fatalf("no renaming makes the programs equal:\ncounting (indices deleted):\n%s\nfactored+optimized:\n%s",
			noIdx, opt.Program)
	}
	if mapping[cnt.CntPred] != "m_p_bf" {
		t.Errorf("cnt maps to %s, want m_p_bf", mapping[cnt.CntPred])
	}
	if mapping[cnt.AnsPred] != fr.Split.RightName {
		t.Errorf("answers map to %s, want %s", mapping[cnt.AnsPred], fr.Split.RightName)
	}
}

// TestCountingDivergesOnLeftLinear reproduces the paper's example: the
// left-linear transitive closure generates cnt_t(X, I+1) :- cnt_t(X, I),
// whose fixpoint does not terminate.
func TestCountingDivergesOnLeftLinear(t *testing.T) {
	ad := adornFor(t, `
		t(X, Y) :- t(X, Z), e(Z, Y).
		t(X, Y) :- e(X, Y).
	`, "t(1, Y)")
	_, err := Transform(ad)
	if !errors.Is(err, ErrDiverges) {
		t.Fatalf("want ErrDiverges, got %v", err)
	}

	// Force generates the divergent program; a fact budget catches it.
	res, err := Force(ad)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Diverges {
		t.Error("Diverges flag not set")
	}
	db := engine.NewDB()
	db.MustInsert("e", db.Store.Int(1), db.Store.Int(2))
	_, err = engine.Eval(res.Program, db, engine.Options{MaxFacts: 1000})
	if !errors.Is(err, engine.ErrBudgetExceeded) {
		t.Errorf("divergent program terminated? err = %v", err)
	}
}

func TestCountingRejectsCombined(t *testing.T) {
	ad := adornFor(t, `
		t(X, Y) :- t(X, W), t(W, Y).
		t(X, Y) :- e(X, Y).
	`, "t(1, Y)")
	_, err := Transform(ad)
	if !errors.Is(err, ErrUnsupported) {
		t.Errorf("want ErrUnsupported, got %v", err)
	}
	if _, err := Force(ad); !errors.Is(err, ErrUnsupported) {
		t.Errorf("Force on combined: want ErrUnsupported, got %v", err)
	}
}

func TestCountingRejectsNonStable(t *testing.T) {
	ad := adornFor(t, `
		sg(X, Y) :- flat(X, Y).
		sg(X, Y) :- up(X, U), sg(U, V), down(V, Y).
	`, "sg(a, Y)")
	if _, err := Transform(ad); !errors.Is(err, ErrUnsupported) {
		t.Errorf("want ErrUnsupported, got %v", err)
	}
}

// TestCountingDivergesOnCyclicEDB: even for right-linear programs, cyclic
// data makes the index grow without bound — the "cost of computing the
// indices can be significant ... or cause nontermination" remark.
func TestCountingDivergesOnCyclicEDB(t *testing.T) {
	ad := adornFor(t, `
		t(X, Y) :- e(X, Z), t(Z, Y).
		t(X, Y) :- e(X, Y).
	`, "t(1, Y)")
	res, err := Transform(ad)
	if err != nil {
		t.Fatal(err)
	}
	db := engine.NewDB()
	db.MustInsert("e", db.Store.Int(1), db.Store.Int(2))
	db.MustInsert("e", db.Store.Int(2), db.Store.Int(1)) // cycle
	_, err = engine.Eval(res.Program, db, engine.Options{MaxFacts: 2000})
	if !errors.Is(err, engine.ErrBudgetExceeded) {
		t.Errorf("cyclic counting terminated? err = %v", err)
	}
	// The factored program, by contrast, terminates on the same data.
	m, err := magic.Transform(ad)
	if err != nil {
		t.Fatal(err)
	}
	fr, err := core.FactorMagic(m, nil)
	if err != nil {
		t.Fatal(err)
	}
	db2 := engine.NewDB()
	db2.MustInsert("e", db2.Store.Int(1), db2.Store.Int(2))
	db2.MustInsert("e", db2.Store.Int(2), db2.Store.Int(1))
	if _, err := engine.Eval(fr.Program, db2, engine.Options{MaxFacts: 2000}); err != nil {
		t.Errorf("factored program should terminate on cycles: %v", err)
	}
}

// TestCountingAgreesWithMagicOnRandomDAGs: on acyclic EDBs (where Counting
// terminates) the Counting and Magic programs agree, across random
// databases for the two-first program of §6.4.
func TestCountingAgreesWithMagicOnRandomDAGs(t *testing.T) {
	ad := adornFor(t, section64Program, "p(0, Y)")
	cnt, err := Transform(ad)
	if err != nil {
		t.Fatal(err)
	}
	m, err := magic.Transform(ad)
	if err != nil {
		t.Fatal(err)
	}
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(6)
		// Edges strictly increasing -> acyclic; exits and rights random.
		load := func() *engine.DB {
			db := engine.NewDB()
			r := rand.New(rand.NewSource(seed))
			for i := 0; i < 3*n; i++ {
				a := r.Intn(n)
				b := a + 1 + r.Intn(n-a)
				pred := "first1"
				if r.Intn(2) == 0 {
					pred = "first2"
				}
				db.MustInsert(pred, db.Store.Int(a), db.Store.Int(b))
			}
			for i := 0; i <= n; i++ {
				if r.Intn(2) == 0 {
					db.MustInsert("exit", db.Store.Int(i), db.Store.Int(100+i))
				}
				if r.Intn(2) == 0 {
					db.MustInsert("right1", db.Store.Int(100+i))
				}
				if r.Intn(2) == 0 {
					db.MustInsert("right2", db.Store.Int(100+i))
				}
			}
			return db
		}
		dbC, dbM := load(), load()
		if _, err := engine.Eval(cnt.Program, dbC, engine.Options{MaxFacts: 300000}); err != nil {
			t.Fatalf("seed %d counting: %v", seed, err)
		}
		if _, err := engine.Eval(m.Program, dbM, engine.Options{}); err != nil {
			t.Fatalf("seed %d magic: %v", seed, err)
		}
		ac, _ := engine.AnswerSet(dbC, cnt.Query)
		am, _ := engine.AnswerSet(dbM, m.Query)
		if len(ac) != len(am) {
			t.Fatalf("seed %d: counting %v vs magic %v", seed, ac, am)
		}
		for k := range ac {
			if !am[k] {
				t.Fatalf("seed %d: %s only in counting", seed, k)
			}
		}
	}
}

// TestCountingPmem: regression for the occurrence-index mapping between
// standardized and original rules — the pmem program's standard form
// inserts a list literal before the recursive occurrence.
func TestCountingPmem(t *testing.T) {
	ad := adornFor(t, `
		pmem(X, [X|T]) :- p(X).
		pmem(X, [H|T]) :- pmem(X, T).
	`, "pmem(X, [a, b, c])")
	res, err := Transform(ad)
	if err != nil {
		t.Fatal(err)
	}
	db := engine.NewDB()
	db.MustInsert("p", db.Store.Const("a"))
	db.MustInsert("p", db.Store.Const("c"))
	if _, err := engine.Eval(res.Program, db, engine.Options{MaxFacts: 10000}); err != nil {
		t.Fatal(err)
	}
	set, _ := engine.AnswerSet(db, res.Query)
	if len(set) != 2 || !set["(a)"] || !set["(c)"] {
		t.Errorf("answers = %v\nprogram:\n%s", set, res.Program)
	}
}

func TestFindRenamingNegative(t *testing.T) {
	p1 := parser.MustParseProgram(`a(X) :- e(X, Y).`)
	p2 := parser.MustParseProgram(`b(X) :- e(Y, X).`)
	if _, ok := FindRenaming(p1, p2); ok {
		t.Error("structurally different programs reported isomorphic")
	}
	p3 := parser.MustParseProgram(`b(X) :- e(X, Y). b(X) :- f(X, Y).`)
	if _, ok := FindRenaming(p1, p3); ok {
		t.Error("different rule counts reported isomorphic")
	}
}

func TestFindRenamingPositive(t *testing.T) {
	p1 := parser.MustParseProgram(`
		a(X) :- e(X, W), a(W).
		a(X) :- f(X).
	`)
	p2 := parser.MustParseProgram(`
		b(U) :- f(U).
		b(U) :- e(U, V), b(V).
	`)
	m, ok := FindRenaming(p1, p2)
	if !ok {
		t.Fatal("isomorphic programs not matched")
	}
	if m["a"] != "b" || m["e"] != "e" || m["f"] != "f" {
		t.Errorf("mapping = %v", m)
	}
}

func TestEqualUpToRenaming(t *testing.T) {
	p1 := parser.MustParseProgram(`cnt(U) :- cnt(X), first1(X, U).`)
	p2 := parser.MustParseProgram(`m_p(U) :- first1(X, U), m_p(X).`)
	if !EqualUpToRenaming(p1, p2, map[string]string{"cnt": "m_p"}) {
		t.Error("renamed programs should be equal modulo body order")
	}
	if EqualUpToRenaming(p1, p2, map[string]string{"cnt": "wrong"}) {
		t.Error("wrong mapping accepted")
	}
}
