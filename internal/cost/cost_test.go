package cost

import (
	"testing"

	"factorlog/internal/ast"
	"factorlog/internal/engine"
	"factorlog/internal/obsv"
	"factorlog/internal/parser"
	"factorlog/internal/workload"
)

func mustProgram(t *testing.T, src string) *ast.Program {
	t.Helper()
	p, err := parser.ParseProgram(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return p
}

func TestSnapshotFromAtomsEmpty(t *testing.T) {
	snap := SnapshotFromAtoms(nil, 7)
	if snap.Epoch != 7 {
		t.Fatalf("epoch = %d, want 7", snap.Epoch)
	}
	if snap.TotalRows != 0 || len(snap.Relations) != 0 {
		t.Fatalf("empty snapshot has rows=%d relations=%d", snap.TotalRows, len(snap.Relations))
	}
	if _, ok := snap.Rel("e"); ok {
		t.Fatal("Rel on empty snapshot reported a relation")
	}
}

func TestSnapshotFromAtomsDistincts(t *testing.T) {
	u, err := parser.Parse("e(a,b). e(a,c). e(b,c). p(x).\n?- e(X,Y).")
	if err != nil {
		t.Fatal(err)
	}
	snap := SnapshotFromAtoms(u.Facts, 0)
	if snap.TotalRows != 4 {
		t.Fatalf("TotalRows = %d, want 4", snap.TotalRows)
	}
	e, ok := snap.Rel("e")
	if !ok || e.Rows != 3 {
		t.Fatalf("e rows = %+v, want 3", e)
	}
	if got := []int{e.Columns[0].Distinct, e.Columns[1].Distinct}; got[0] != 2 || got[1] != 2 {
		t.Fatalf("e distincts = %v, want [2 2]", got)
	}
	p, _ := snap.Rel("p")
	if p.Rows != 1 || p.Columns[0].Distinct != 1 {
		t.Fatalf("p stats = %+v", p)
	}
}

func TestSnapshotFromDBEmptyAndMutated(t *testing.T) {
	db := engine.NewDB()
	snap := SnapshotFromDB(db, 1)
	if snap.TotalRows != 0 || len(snap.Relations) != 0 {
		t.Fatalf("empty DB snapshot: rows=%d relations=%d", snap.TotalRows, len(snap.Relations))
	}

	c := func(s string) engine.Val { return db.Store.Const(s) }
	db.MustInsert("e", c("1"), c("2"))
	db.MustInsert("e", c("2"), c("3"))
	db.MustInsert("e", c("3"), c("3"))
	snap = SnapshotFromDB(db, 2)
	e, _ := snap.Rel("e")
	if e.Rows != 3 || e.Columns[0].Distinct != 3 || e.Columns[1].Distinct != 2 {
		t.Fatalf("pre-delete stats = %+v", e)
	}

	// Retract one row: the tombstone must vanish from rows and distincts.
	if !db.Lookup("e").Delete([]engine.Val{c("1"), c("2")}) {
		t.Fatal("delete failed")
	}
	snap = SnapshotFromDB(db, 3)
	e, _ = snap.Rel("e")
	if e.Rows != 2 {
		t.Fatalf("post-delete rows = %d, want 2 (dead row counted)", e.Rows)
	}
	if e.Columns[0].Distinct != 2 || e.Columns[1].Distinct != 1 {
		t.Fatalf("post-delete distincts = %+v, want [2 1]", e.Columns)
	}
	if snap.TotalRows != 2 {
		t.Fatalf("TotalRows = %d, want 2", snap.TotalRows)
	}
}

func TestWithObservedMerge(t *testing.T) {
	snap := SnapshotFromAtoms(nil, 0)
	s1 := snap.WithObserved(map[string]float64{"tc": 100})
	if snap.Observed != nil {
		t.Fatal("WithObserved mutated the receiver")
	}
	s2 := s1.WithObserved(map[string]float64{"tc": 50, "ft": 10})
	if s2.Observed["tc"] != 100 {
		t.Fatalf("smaller observation overwrote larger: %v", s2.Observed)
	}
	if s2.Observed["ft"] != 10 {
		t.Fatalf("new observation lost: %v", s2.Observed)
	}
	if s1.WithObserved(nil) != s1 {
		t.Fatal("WithObserved(nil) should return the receiver")
	}
}

func TestObserveRuleStats(t *testing.T) {
	prog := mustProgram(t, "tc(X,Y) :- e(X,Y). tc(X,Y) :- e(X,Z), tc(Z,Y).")
	obs := ObserveRuleStats(nil, prog, []obsv.RuleStats{
		{Index: 0, TuplesDerived: 10},
		{Index: 1, TuplesDerived: 35},
		{Index: 99, TuplesDerived: 1000}, // out of range: ignored
	})
	if obs["tc"] != 45 {
		t.Fatalf("tc observed = %v, want 45", obs["tc"])
	}
	// A later, smaller evaluation must not shrink the floor.
	obs = ObserveRuleStats(obs, prog, []obsv.RuleStats{{Index: 0, TuplesDerived: 5}})
	if obs["tc"] != 45 {
		t.Fatalf("max-merge failed: %v", obs["tc"])
	}
}

// A bound probe on a high-selectivity column must price below the same
// probe on a low-selectivity column: with 1000 rows, distinct=1000 means
// one match per key, distinct=10 means a hundred.
func TestEstimateSelectivityOrdering(t *testing.T) {
	prog := mustProgram(t, "q(Y) :- w(k3, Y).")
	narrow := &Snapshot{Relations: map[string]RelationStats{
		"w": {Pred: "w", Rows: 1000, Columns: []ColumnStats{{Distinct: 1000}, {Distinct: 1000}}},
	}}
	wide := &Snapshot{Relations: map[string]RelationStats{
		"w": {Pred: "w", Rows: 1000, Columns: []ColumnStats{{Distinct: 10}, {Distinct: 1000}}},
	}}
	selective := EstimateProgram(prog, narrow, false)
	skewed := EstimateProgram(prog, wide, false)
	if selective.Cost >= skewed.Cost {
		t.Fatalf("selective probe cost %.1f >= skewed %.1f", selective.Cost, skewed.Cost)
	}
}

// The recursive chain fixpoint must converge in bounded rounds and report
// an IDB estimate at least the size of the base relation.
func TestEstimateChainConverges(t *testing.T) {
	prog := mustProgram(t, "tc(X,Y) :- e(X,Y). tc(X,Y) :- e(X,Z), tc(Z,Y).")
	db := engine.NewDB()
	workload.Chain(db, "e", 50)
	snap := SnapshotFromDB(db, 0)
	est := EstimateProgram(prog, snap, false)
	if est.Rounds <= 1 || est.Rounds > maxIters {
		t.Fatalf("rounds = %d, want in (1, %d]", est.Rounds, maxIters)
	}
	if est.Rows < 49 {
		t.Fatalf("tc estimate %.1f below base size", est.Rows)
	}
	if est.Cost <= 0 {
		t.Fatalf("cost = %.1f", est.Cost)
	}
}

// An observed row count acts as a floor on the predicate's estimate: a
// snapshot calibrated by a real run never reports fewer derived rows than
// the run produced.
func TestObservedFloorRaisesEstimate(t *testing.T) {
	prog := mustProgram(t, "tc(X,Y) :- e(X,Y). tc(X,Y) :- e(X,Z), tc(Z,Y).")
	db := engine.NewDB()
	workload.Chain(db, "e", 10)
	snap := SnapshotFromDB(db, 0)
	calibrated := EstimateProgram(prog, snap.WithObserved(map[string]float64{"tc": 5000}), false)
	if calibrated.Rows < 5000 {
		t.Fatalf("observed floor ignored: rows %.1f < 5000", calibrated.Rows)
	}
}

// Greedy reordering must never price a body worse than the written order
// prices it under the same statistics when the written order is already
// optimal, and must win when the written order starts with an unbound scan.
func TestReorderPricesBoundFirst(t *testing.T) {
	// Written order scans all of big(X,Y) before the selective probe.
	prog := mustProgram(t, "q(Y) :- big(X, Y), sel(k1, X).")
	snap := &Snapshot{Relations: map[string]RelationStats{
		"big": {Pred: "big", Rows: 10000, Columns: []ColumnStats{{Distinct: 10000}, {Distinct: 10000}}},
		"sel": {Pred: "sel", Rows: 100, Columns: []ColumnStats{{Distinct: 100}, {Distinct: 100}}},
	}}
	asWritten := EstimateProgram(prog, snap, false)
	reordered := EstimateProgram(prog, snap, true)
	if reordered.Cost > asWritten.Cost {
		t.Fatalf("reordered cost %.1f > as-written %.1f", reordered.Cost, asWritten.Cost)
	}
}
