package cost

import (
	"math"

	"factorlog/internal/ast"
)

// Model knobs. The absolute numbers matter less than the ordering they
// induce between candidate programs over the same snapshot: estimates are
// compared against each other, never against wall clocks.
const (
	// maxIters bounds the cardinality fixpoint; estimates that still grow
	// past it are treated as converged at their cap.
	maxIters = 32
	// capRows is the absolute ceiling on any single predicate estimate,
	// keeping the fixpoint finite on pathological programs.
	capRows = 1e15
	// ruleOverhead is the fixed per-rule, per-round bookkeeping charge. It
	// breaks ties toward smaller programs: a rewrite that adds rules must
	// pay for them with join savings.
	ruleOverhead = 2.0
	// convergedSlack stops the fixpoint when no estimate grew by more than
	// this factor in a round.
	convergedSlack = 1.01
)

// Estimate prices one candidate program against a snapshot.
type Estimate struct {
	// Cost approximates total evaluation work: tuples scanned and probed
	// across all joins at the converged cardinalities, plus per-rule round
	// overhead. Unitless; comparable across candidates for one query.
	Cost float64 `json:"cost"`
	// Rows is the estimated total derived (IDB) row count.
	Rows float64 `json:"rows"`
	// Rounds is the number of fixpoint iterations the cardinality estimates
	// took to converge — a proxy for the recursion depth the semi-naive
	// evaluator will pay.
	Rounds int `json:"rounds"`
}

// predEst is the evolving estimate for one predicate: row count and
// per-column distinct counts.
type predEst struct {
	rows     float64
	distinct []float64
}

// estimator carries the fixpoint state for one EstimateProgram call.
type estimator struct {
	prog    *ast.Program
	idb     map[string]bool
	est     map[string]*predEst
	reorder bool
}

// EstimateProgram prices prog — the exact program a strategy evaluates
// bottom-up, magic/factoring/counting rewrites included — against snap.
//
// The model is a standard cardinality fixpoint: EDB predicates start at
// their snapshotted rows and per-column distinct counts; IDB estimates grow
// monotonically, each rule's output priced as a left-to-right join whose
// per-literal match count is rows scaled by 1/distinct for every
// bound column (System R's independence assumption). Outputs are capped by
// the product of the head columns' domain sizes — that cap is what lets the
// model see the paper's point: a factored (arity-reduced) predicate has a
// structurally smaller ceiling than the relation it replaced. With reorder
// set, each rule body is greedily reordered most-bound-first, mirroring
// engine.Options.ReorderJoins.
func EstimateProgram(prog *ast.Program, snap *Snapshot, reorder bool) Estimate {
	e := &estimator{
		prog:    prog,
		idb:     prog.IDBPreds(),
		est:     map[string]*predEst{},
		reorder: reorder,
	}
	// Seed every predicate the program mentions: snapshot stats where we
	// have them (base relations), zero rows otherwise. An IDB predicate
	// with snapshotted base facts starts from them and grows.
	seed := func(pred string, arity int) {
		if _, ok := e.est[pred]; ok {
			return
		}
		pe := &predEst{distinct: make([]float64, arity)}
		if rs, ok := snap.Rel(pred); ok && rs.Rows > 0 {
			pe.rows = float64(rs.Rows)
			for i := range pe.distinct {
				if i < len(rs.Columns) && rs.Columns[i].Distinct > 0 {
					pe.distinct[i] = float64(rs.Columns[i].Distinct)
				} else {
					pe.distinct[i] = pe.rows
				}
			}
		}
		if obs := snap.Observed[pred]; obs > pe.rows {
			pe.rows = obs
			for i := range pe.distinct {
				if pe.distinct[i] < obs {
					pe.distinct[i] = obs
				}
			}
		}
		e.est[pred] = pe
	}
	for _, r := range prog.Rules {
		seed(r.Head.Pred, len(r.Head.Args))
		for _, a := range r.Body {
			seed(a.Pred, len(a.Args))
		}
	}

	rounds := 0
	for iter := 0; iter < maxIters; iter++ {
		rounds = iter + 1
		if !e.step() {
			break
		}
	}

	var cost, rows float64
	for _, r := range e.prog.Rules {
		_, c := e.ruleEstimate(r)
		cost += c + ruleOverhead*float64(rounds)
	}
	for pred, pe := range e.est {
		if e.idb[pred] {
			rows += pe.rows
		}
	}
	return Estimate{Cost: cost, Rows: rows, Rounds: rounds}
}

// step runs one fixpoint round: every rule's output estimate accumulates on
// its head predicate (monotonically — estimates only grow). It reports
// whether any estimate grew beyond the convergence slack.
func (e *estimator) step() bool {
	outBy := map[string]float64{}
	colBy := map[string][]float64{}
	for _, r := range e.prog.Rules {
		out, _ := e.ruleEstimate(r)
		outBy[r.Head.Pred] += out
		cols := colBy[r.Head.Pred]
		if cols == nil {
			cols = make([]float64, len(r.Head.Args))
			colBy[r.Head.Pred] = cols
		}
		for i := range r.Head.Args {
			if d := e.headColDomain(r, i); d > cols[i] {
				cols[i] = d
			}
		}
	}
	changed := false
	for pred, out := range outBy {
		pe := e.est[pred]
		out = math.Min(out, capRows)
		if out > pe.rows*convergedSlack {
			changed = true
		}
		if out > pe.rows {
			pe.rows = out
		}
		for i, d := range colBy[pred] {
			d = math.Min(d, pe.rows)
			if d < 1 && pe.rows >= 1 {
				d = 1
			}
			if d > pe.distinct[i] {
				pe.distinct[i] = d
			}
		}
	}
	return changed
}

// ruleEstimate prices one rule at the current estimates: the join's output
// cardinality and its cost (tuples scanned plus probe results materialized,
// accumulated left to right over the chosen body order).
func (e *estimator) ruleEstimate(r ast.Rule) (out, cost float64) {
	if len(r.Body) == 0 {
		return 1, 1 // a fact (seed rules carry the query's bound constants)
	}
	order := r.Body
	if e.reorder {
		order = e.greedyOrder(r.Body)
	}
	bound := map[string]bool{}
	frontier := 1.0
	for _, a := range order {
		matches := e.literalMatches(a, bound)
		cost += frontier * (1 + matches) // probe + results per frontier tuple
		frontier *= matches
		frontier = math.Min(frontier, capRows)
		for _, v := range a.Vars() {
			bound[v] = true
		}
	}
	// The output cannot exceed the product of the head columns' domains —
	// the structural cap that rewards arity reduction.
	headCap := 1.0
	for i := range r.Head.Args {
		headCap *= math.Max(1, e.headColDomain(r, i))
		if headCap >= capRows {
			headCap = capRows
			break
		}
	}
	return math.Min(frontier, headCap), cost
}

// literalMatches estimates how many tuples of a match one probe with the
// given variables already bound: the relation's rows scaled by 1/distinct
// for every bound column.
func (e *estimator) literalMatches(a ast.Atom, bound map[string]bool) float64 {
	pe := e.est[a.Pred]
	if pe == nil || pe.rows == 0 {
		return 0
	}
	matches := pe.rows
	for i, t := range a.Args {
		if !termBound(t, bound) {
			continue
		}
		d := pe.distinct[i]
		if d < 1 {
			d = math.Max(1, pe.rows)
		}
		matches /= d
	}
	if matches < 0 {
		matches = 0
	}
	return math.Min(matches, pe.rows)
}

// headColDomain estimates the domain size of head column i under rule r:
// 1 for a ground term, the source column's distinct count for a variable
// bound by the body, the rule's full frontier otherwise.
func (e *estimator) headColDomain(r ast.Rule, i int) float64 {
	t := r.Head.Args[i]
	if t.Ground() {
		return 1
	}
	if t.IsVar() {
		for _, a := range r.Body {
			pe := e.est[a.Pred]
			if pe == nil {
				continue
			}
			for j, bt := range a.Args {
				if bt.IsVar() && bt.Functor == t.Functor {
					d := pe.distinct[j]
					if d < 1 {
						d = pe.rows
					}
					return math.Max(d, 1)
				}
			}
		}
	}
	// Compound or unbound term: no better bound than the cap.
	return capRows
}

// greedyOrder reorders body literals most-bound-first (ties broken by the
// smaller estimated match count), mirroring the engine's ReorderJoins
// heuristic so the model prices what that option would execute.
func (e *estimator) greedyOrder(body []ast.Atom) []ast.Atom {
	remaining := append([]ast.Atom(nil), body...)
	bound := map[string]bool{}
	out := make([]ast.Atom, 0, len(body))
	for len(remaining) > 0 {
		best, bestBound, bestMatches := -1, -1, math.Inf(1)
		for i, a := range remaining {
			nb := 0
			for _, t := range a.Args {
				if termBound(t, bound) {
					nb++
				}
			}
			m := e.literalMatches(a, bound)
			if nb > bestBound || (nb == bestBound && m < bestMatches) {
				best, bestBound, bestMatches = i, nb, m
			}
		}
		pick := remaining[best]
		out = append(out, pick)
		remaining = append(remaining[:best], remaining[best+1:]...)
		for _, v := range pick.Vars() {
			bound[v] = true
		}
	}
	return out
}

// termBound reports whether t is ground or built only from bound variables.
func termBound(t ast.Term, bound map[string]bool) bool {
	if t.Ground() {
		return true
	}
	for _, v := range t.Vars() {
		if !bound[v] {
			return false
		}
	}
	return true
}
