// Package cost implements the statistics and cost-model half of the
// adaptive optimizer (ROADMAP item 4): a Snapshot captures the EDB's shape
// — per-relation cardinalities, per-column distinct counts, arena and index
// load factors — and EstimateProgram prices a candidate program against it
// with textbook join/probe/delta estimates. The planner in
// internal/pipeline enumerates rewrite candidates (magic, supplementary
// magic, factoring, §5 clean-up, counting) × body-literal orderings and
// ranks them by these estimates; see docs/PLANNER.md.
package cost

import (
	"sort"

	"factorlog/internal/ast"
	"factorlog/internal/engine"
	"factorlog/internal/obsv"
)

// ColumnStats describes one argument position of a relation.
type ColumnStats struct {
	// Distinct counts distinct values in the column.
	Distinct int `json:"distinct"`
}

// RelationStats describes one base relation at snapshot time.
type RelationStats struct {
	// Pred is the predicate name; Rows its live cardinality.
	Pred string `json:"pred"`
	Rows int    `json:"rows"`
	// Columns holds per-column distinct counts, one entry per argument
	// position.
	Columns []ColumnStats `json:"columns,omitempty"`
	// ArenaBytes/IndexBytes/PresentLoad/IndexLoad/Indexes mirror
	// engine.Relation.StorageFootprint for snapshots taken from an arena
	// (SnapshotFromDB); zero for snapshots taken from an atom list.
	ArenaBytes  int64   `json:"arena_bytes,omitempty"`
	IndexBytes  int64   `json:"index_bytes,omitempty"`
	PresentLoad float64 `json:"present_load,omitempty"`
	IndexLoad   float64 `json:"index_load,omitempty"`
	Indexes     int     `json:"indexes,omitempty"`
}

// Snapshot is a point-in-time statistical summary of an EDB, the input the
// cost model prices candidate plans against.
type Snapshot struct {
	// Epoch is the mutation epoch the snapshot reflects (0 when the source
	// has no epoch notion).
	Epoch int64 `json:"epoch"`
	// Mutations is the cumulative count of effective assert/retract rows at
	// snapshot time; the shadow re-coster uses the delta since the last
	// decision as its change-ratio trigger.
	Mutations int64 `json:"mutations,omitempty"`
	// TotalRows sums the live rows of every relation.
	TotalRows int `json:"total_rows"`
	// Relations maps predicate name to its statistics.
	Relations map[string]RelationStats `json:"relations"`
	// Observed carries measured row counts from earlier evaluations (rule
	// pass statistics folded in by ObserveRuleStats). The model uses an
	// observed count as the floor for that predicate's estimate, so
	// re-costing after real runs is calibrated by what actually happened.
	Observed map[string]float64 `json:"observed,omitempty"`
}

// Rel returns the statistics for pred, if present.
func (s *Snapshot) Rel(pred string) (RelationStats, bool) {
	r, ok := s.Relations[pred]
	return r, ok
}

// Preds lists the snapshotted predicates sorted by name.
func (s *Snapshot) Preds() []string {
	out := make([]string, 0, len(s.Relations))
	for p := range s.Relations {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// SnapshotFromAtoms summarizes a ground-atom EDB (the Materializer's base
// fact list). Columns are compared by rendered term, so compound terms
// count correctly. Atoms of inconsistent arity contribute rows but no
// column stats past the shortest arity seen.
func SnapshotFromAtoms(facts []ast.Atom, epoch int64) *Snapshot {
	snap := &Snapshot{Epoch: epoch, Relations: map[string]RelationStats{}}
	distinct := map[string][]map[string]struct{}{}
	for _, a := range facts {
		rs := snap.Relations[a.Pred]
		rs.Pred = a.Pred
		rs.Rows++
		cols := distinct[a.Pred]
		if cols == nil {
			cols = make([]map[string]struct{}, len(a.Args))
			for i := range cols {
				cols[i] = map[string]struct{}{}
			}
			distinct[a.Pred] = cols
		}
		for i, t := range a.Args {
			if i < len(cols) {
				cols[i][t.String()] = struct{}{}
			}
		}
		snap.Relations[a.Pred] = rs
		snap.TotalRows++
	}
	for pred, cols := range distinct {
		rs := snap.Relations[pred]
		rs.Columns = make([]ColumnStats, len(cols))
		for i, set := range cols {
			rs.Columns[i] = ColumnStats{Distinct: len(set)}
		}
		snap.Relations[pred] = rs
	}
	return snap
}

// SnapshotFromDB summarizes every relation of an arena-backed database:
// live cardinalities, per-column distinct counts over the interned values,
// and the relation's storage footprint (arena/index bytes and hash-table
// load factors). Dead rows (retracted under counting maintenance) are
// skipped.
func SnapshotFromDB(db *engine.DB, epoch int64) *Snapshot {
	snap := &Snapshot{Epoch: epoch, Relations: map[string]RelationStats{}}
	for _, pred := range db.Preds() {
		rel := db.Lookup(pred)
		if rel == nil {
			continue
		}
		rs := RelationStats{Pred: pred}
		rs.ArenaBytes, rs.IndexBytes, rs.PresentLoad, rs.IndexLoad, rs.Indexes = rel.StorageFootprint()
		arity := rel.Arity()
		cols := make([]map[engine.Val]struct{}, arity)
		for i := range cols {
			cols[i] = map[engine.Val]struct{}{}
		}
		for pos := int32(0); pos < int32(rel.Len()); pos++ {
			if rel.Round(pos) < 0 {
				continue // dead row
			}
			rs.Rows++
			for i, v := range rel.Tuple(pos) {
				cols[i][v] = struct{}{}
			}
		}
		rs.Columns = make([]ColumnStats, arity)
		for i, set := range cols {
			rs.Columns[i] = ColumnStats{Distinct: len(set)}
		}
		snap.Relations[pred] = rs
		snap.TotalRows += rs.Rows
	}
	return snap
}

// WithObserved returns a shallow copy of the snapshot with observed row
// counts overlaid (existing entries are kept unless the new map has a
// larger value). The receiver is not modified.
func (s *Snapshot) WithObserved(observed map[string]float64) *Snapshot {
	if len(observed) == 0 {
		return s
	}
	out := *s
	out.Observed = make(map[string]float64, len(s.Observed)+len(observed))
	for p, v := range s.Observed {
		out.Observed[p] = v
	}
	for p, v := range observed {
		if v > out.Observed[p] {
			out.Observed[p] = v
		}
	}
	return &out
}

// ObserveRuleStats folds an evaluation's per-rule statistics into an
// observed-rows map: each rule's derived count accumulates on its head
// predicate, and the result keeps the maximum of the accumulated and any
// existing entry. prog must be the program the rules were measured over
// (RuleStats.Index addresses its rule list).
func ObserveRuleStats(observed map[string]float64, prog *ast.Program, rules []obsv.RuleStats) map[string]float64 {
	if observed == nil {
		observed = map[string]float64{}
	}
	derived := map[string]float64{}
	for _, rs := range rules {
		if rs.Index < 0 || rs.Index >= len(prog.Rules) {
			continue
		}
		derived[prog.Rules[rs.Index].Head.Pred] += float64(rs.TuplesDerived)
	}
	for pred, v := range derived {
		if v > observed[pred] {
			observed[pred] = v
		}
	}
	return observed
}
