package depgraph

import (
	"reflect"
	"testing"

	"factorlog/internal/parser"
)

// TestSameGenerationMagicStrata locks the schedule of the magic program of
// the paper's same-generation example: the magic predicate closes over up/1
// alone, so it forms its own recursive stratum ahead of the answer
// predicate, and the query projection comes last, non-recursive.
func TestSameGenerationMagicStrata(t *testing.T) {
	p := parser.MustParseProgram(`
		m_sg_bf(john).
		m_sg_bf(U) :- m_sg_bf(X), up(X,U).
		sg_bf(X,Y) :- m_sg_bf(X), flat(X,Y).
		sg_bf(X,Y) :- m_sg_bf(X), up(X,U), sg_bf(U,V), down(V,Y).
		query(Y) :- sg_bf(john,Y).
	`)
	sc := Analyze(p)
	if got, want := sc.String(), "{m_sg_bf}* -> {sg_bf}* -> {query}"; got != want {
		t.Fatalf("schedule = %s, want %s", got, want)
	}
	// The parser appends ground facts after the proper rules, so the seed
	// fact m_sg_bf(john) is rule 4.
	wantRules := [][]int{{0, 4}, {1, 2}, {3}}
	for i, st := range sc.Strata {
		if !reflect.DeepEqual(st.Rules, wantRules[i]) {
			t.Errorf("stratum %d rules = %v, want %v", i, st.Rules, wantRules[i])
		}
	}
	if !sc.Recursive() {
		t.Error("schedule should be recursive")
	}
}

// TestCountingLeftLinearStrata locks the schedule of the §6.4 Counting
// transformation of the left-linear transitive closure: the counting-magic
// predicate (cnt_t, carrying the index) is a recursive stratum of its own,
// the indexed answers (t_cnt) a second, and the query last.
func TestCountingLeftLinearStrata(t *testing.T) {
	p := parser.MustParseProgram(`
		cnt_t(c,z,nil).
		t_cnt(Y,I_0,I_1) :- cnt_t(X,I_0,I_1), e(X,Y).
		cnt_t(W,s(I_2),r1(I_3)) :- cnt_t(X,I_2,I_3), e(X,W).
		t_cnt(Y,I_4,I_5) :- t_cnt(Y,s(I_4),r1(I_5)).
		query(Y) :- t_cnt(Y,z,nil).
	`)
	sc := Analyze(p)
	if got, want := sc.String(), "{cnt_t}* -> {t_cnt}* -> {query}"; got != want {
		t.Fatalf("schedule = %s, want %s", got, want)
	}
	wantRules := [][]int{{1, 4}, {0, 2}, {3}}
	for i, st := range sc.Strata {
		if !reflect.DeepEqual(st.Rules, wantRules[i]) {
			t.Errorf("stratum %d rules = %v, want %v", i, st.Rules, wantRules[i])
		}
	}
}

// TestMutualRecursionOneStratum: predicates that call each other share an
// SCC and must land in one recursive stratum.
func TestMutualRecursionOneStratum(t *testing.T) {
	p := parser.MustParseProgram(`
		even(z).
		even(s(X)) :- odd(X).
		odd(s(X)) :- even(X).
		check(X) :- even(X).
	`)
	sc := Analyze(p)
	if got, want := sc.String(), "{even,odd}* -> {check}"; got != want {
		t.Fatalf("schedule = %s, want %s", got, want)
	}
	if !reflect.DeepEqual(sc.Strata[0].Rules, []int{0, 1, 3}) {
		t.Errorf("recursive stratum rules = %v, want [0 1 3]", sc.Strata[0].Rules)
	}
}

// TestNonRecursiveProgram: a pure join pipeline yields only single-pass
// strata, in dependency order even when the program text is reversed.
func TestNonRecursiveProgram(t *testing.T) {
	p := parser.MustParseProgram(`
		grandparent(X, Z) :- parent(X, Y), parent(Y, Z).
		greatgrand(X, W) :- grandparent(X, Z), parent(Z, W).
	`)
	sc := Analyze(p)
	if got, want := sc.String(), "{grandparent} -> {greatgrand}"; got != want {
		t.Fatalf("schedule = %s, want %s", got, want)
	}
	if sc.Recursive() {
		t.Error("schedule should not be recursive")
	}
}

// TestIndependentStrataKeepProgramOrder: strata with no dependency between
// them come out in first-rule order, deterministically.
func TestIndependentStrataKeepProgramOrder(t *testing.T) {
	p := parser.MustParseProgram(`
		b(X) :- e2(X).
		a(X) :- e1(X).
		c(X) :- a(X), b(X).
	`)
	sc := Analyze(p)
	if got, want := sc.String(), "{b} -> {a} -> {c}"; got != want {
		t.Fatalf("schedule = %s, want %s", got, want)
	}
}

// TestSelfLoopDetection: a single-predicate SCC is recursive only when some
// rule body mentions the head predicate.
func TestSelfLoopDetection(t *testing.T) {
	p := parser.MustParseProgram(`
		t(X, Y) :- e(X, Y).
		t(X, Y) :- e(X, W), t(W, Y).
	`)
	sc := Analyze(p)
	if len(sc.Strata) != 1 || !sc.Strata[0].Recursive {
		t.Fatalf("schedule = %s, want one recursive stratum", sc.String())
	}
	if set := sc.Strata[0].PredSet(); !set["t"] || len(set) != 1 {
		t.Errorf("PredSet = %v", set)
	}
}
