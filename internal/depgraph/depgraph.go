package depgraph

import (
	"sort"
	"strings"

	"factorlog/internal/ast"
)

// Stratum is one schedulable unit: the rules defining one strongly
// connected component of the predicate dependency graph.
type Stratum struct {
	// Preds are the IDB predicates defined by this stratum, sorted.
	Preds []string
	// Rules are indexes into the program's rule list (in program order) of
	// the rules whose head predicate belongs to this stratum.
	Rules []int
	// Recursive reports whether the stratum needs a fixpoint: its SCC has
	// more than one predicate, or a single predicate that (transitively
	// through its own rules) depends on itself.
	Recursive bool
}

// PredSet returns the stratum's predicates as a membership set.
func (s *Stratum) PredSet() map[string]bool {
	out := make(map[string]bool, len(s.Preds))
	for _, p := range s.Preds {
		out[p] = true
	}
	return out
}

// String renders the stratum as "{p,q}*" (the star marks recursion).
func (s *Stratum) String() string {
	var b strings.Builder
	b.WriteByte('{')
	b.WriteString(strings.Join(s.Preds, ","))
	b.WriteByte('}')
	if s.Recursive {
		b.WriteByte('*')
	}
	return b.String()
}

// Schedule is a topologically ordered list of strata: every IDB predicate a
// stratum's rule bodies mention is defined either in an earlier stratum or
// in the stratum itself (the recursive case).
type Schedule struct {
	Strata []Stratum
}

// String renders the schedule as "{a}* -> {b,c}* -> {d}".
func (sc *Schedule) String() string {
	parts := make([]string, len(sc.Strata))
	for i := range sc.Strata {
		parts[i] = sc.Strata[i].String()
	}
	return strings.Join(parts, " -> ")
}

// Recursive reports whether any stratum needs a fixpoint.
func (sc *Schedule) Recursive() bool {
	for i := range sc.Strata {
		if sc.Strata[i].Recursive {
			return true
		}
	}
	return false
}

// Analyze builds the stratum schedule of p. The order is deterministic:
// among strata with no dependency between them, the one defining the
// earliest rule in the program comes first.
func Analyze(p *ast.Program) *Schedule {
	idb := p.IDBPreds()

	// Node list in first-definition order, for deterministic output.
	var preds []string
	seen := map[string]bool{}
	for _, r := range p.Rules {
		if !seen[r.Head.Pred] {
			seen[r.Head.Pred] = true
			preds = append(preds, r.Head.Pred)
		}
	}
	id := make(map[string]int, len(preds))
	for i, pr := range preds {
		id[pr] = i
	}

	// Edges: body IDB predicate -> head predicate ("head depends on body").
	// succ[u] lists the predicates that read u. Deduplicated.
	succ := make([][]int, len(preds))
	hasEdge := map[[2]int]bool{}
	selfDep := make([]bool, len(preds))
	for _, r := range p.Rules {
		h := id[r.Head.Pred]
		for _, a := range r.Body {
			if !idb[a.Pred] {
				continue
			}
			b := id[a.Pred]
			if b == h {
				selfDep[h] = true
			}
			if !hasEdge[[2]int{b, h}] {
				hasEdge[[2]int{b, h}] = true
				succ[b] = append(succ[b], h)
			}
		}
	}

	comps := tarjan(len(preds), succ)

	// Component of each node.
	comp := make([]int, len(preds))
	for ci, c := range comps {
		for _, v := range c {
			comp[v] = ci
		}
	}

	// Condensation edges, then topological order (Kahn) with a
	// smallest-first-rule tie-break for determinism.
	nc := len(comps)
	indeg := make([]int, nc)
	csucc := make([][]int, nc)
	cEdge := map[[2]int]bool{}
	for u := range succ {
		for _, v := range succ[u] {
			cu, cv := comp[u], comp[v]
			if cu == cv || cEdge[[2]int{cu, cv}] {
				continue
			}
			cEdge[[2]int{cu, cv}] = true
			csucc[cu] = append(csucc[cu], cv)
			indeg[cv]++
		}
	}
	firstRule := make([]int, nc)
	for ci := range firstRule {
		firstRule[ci] = len(p.Rules)
	}
	for ri, r := range p.Rules {
		ci := comp[id[r.Head.Pred]]
		if ri < firstRule[ci] {
			firstRule[ci] = ri
		}
	}
	var ready []int
	for ci := 0; ci < nc; ci++ {
		if indeg[ci] == 0 {
			ready = append(ready, ci)
		}
	}
	order := make([]int, 0, nc)
	for len(ready) > 0 {
		sort.Slice(ready, func(i, j int) bool { return firstRule[ready[i]] < firstRule[ready[j]] })
		ci := ready[0]
		ready = ready[1:]
		order = append(order, ci)
		for _, cj := range csucc[ci] {
			indeg[cj]--
			if indeg[cj] == 0 {
				ready = append(ready, cj)
			}
		}
	}

	sc := &Schedule{Strata: make([]Stratum, 0, nc)}
	for _, ci := range order {
		var st Stratum
		members := map[string]bool{}
		for _, v := range comps[ci] {
			st.Preds = append(st.Preds, preds[v])
			members[preds[v]] = true
		}
		sort.Strings(st.Preds)
		for ri, r := range p.Rules {
			if members[r.Head.Pred] {
				st.Rules = append(st.Rules, ri)
			}
		}
		st.Recursive = len(comps[ci]) > 1
		if !st.Recursive {
			st.Recursive = selfDep[comps[ci][0]]
		}
		sc.Strata = append(sc.Strata, st)
	}
	return sc
}

// tarjan returns the strongly connected components of the graph, each as a
// list of node ids. Iterative to keep deep recursions (long rule chains)
// off the goroutine stack.
func tarjan(n int, succ [][]int) [][]int {
	const unvisited = -1
	index := make([]int, n)
	low := make([]int, n)
	onStack := make([]bool, n)
	for i := range index {
		index[i] = unvisited
	}
	var (
		stack []int // Tarjan's component stack
		comps [][]int
		next  int
	)
	type frame struct {
		v, ei int
	}
	for root := 0; root < n; root++ {
		if index[root] != unvisited {
			continue
		}
		work := []frame{{root, 0}}
		for len(work) > 0 {
			f := &work[len(work)-1]
			v := f.v
			if f.ei == 0 {
				index[v] = next
				low[v] = next
				next++
				stack = append(stack, v)
				onStack[v] = true
			}
			advanced := false
			for f.ei < len(succ[v]) {
				w := succ[v][f.ei]
				f.ei++
				if index[w] == unvisited {
					work = append(work, frame{w, 0})
					advanced = true
					break
				}
				if onStack[w] && index[w] < low[v] {
					low[v] = index[w]
				}
			}
			if advanced {
				continue
			}
			// v is finished.
			work = work[:len(work)-1]
			if len(work) > 0 {
				parent := work[len(work)-1].v
				if low[v] < low[parent] {
					low[parent] = low[v]
				}
			}
			if low[v] == index[v] {
				var comp []int
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					comp = append(comp, w)
					if w == v {
						break
					}
				}
				comps = append(comps, comp)
			}
		}
	}
	return comps
}
