// Package depgraph analyzes the predicate dependency graph of a program:
// which IDB predicates feed which rules. It condenses the graph into
// strongly connected components (Tarjan) and emits a topologically ordered
// stratum schedule, the backbone of stratified evaluation: rules in a
// non-recursive stratum run exactly once, rules in a recursive stratum run
// a local fixpoint, and no stratum starts before the strata it reads from
// are complete.
//
// The schedule is purely syntactic — it depends only on which predicates
// appear in rule heads and bodies — so it is computed once per compiled
// program and shared by every evaluation. The parallel evaluator
// (internal/engine, Options.Workers > 1) walks the schedule stratum by
// stratum, fanning each stratum's rounds out over its worker pool; the
// per-stratum records it emits (obsv.StratumStats) are indexed by the
// schedule order computed here.
package depgraph
