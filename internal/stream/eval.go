package stream

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"
	"strings"
	"time"

	"factorlog/internal/ast"
	"factorlog/internal/depgraph"
	"factorlog/internal/engine"
	"factorlog/internal/obsv"
	"factorlog/internal/trace"
)

// Result is the outcome of a streaming evaluation. The DB passed to Eval is
// mutated in place and also referenced here. Stats carries the engine's
// counters with streaming semantics: each non-recursive rule body runs
// exactly once, so Inferences counts streamed emissions plus the fixpoint
// inferences of recursive strata, and Iterations counts one pass per
// streamed stratum plus the fixpoint rounds of recursive ones. Relation
// contents and answer sets are identical to the materializing executor's.
type Result struct {
	DB     *engine.DB
	Stats  engine.Stats
	Stream obsv.StreamStats
	Plan   *Plan
}

// ctxCheckMask throttles in-stream context checks to one poll per 4096
// emitted rows, mirroring the engine's per-inference throttle.
const ctxCheckMask = 4096 - 1

// Eval evaluates program p over db stratum by stratum: non-recursive strata
// run once through composed iterator pipelines, recursive strata delegate
// to engine.Eval's semi-naive fixpoint over the stratum's subprogram
// (inheriting Workers, budgets, tracing, and cancellation). Derived
// relations are identical to engine.Eval's for every valid program; Stats
// cost measures differ (see Result).
//
// Provenance is not supported (the fixpoint evaluator records it; use
// StreamOff) and is rejected with ErrBadOptions, as is a non-SemiNaive
// strategy. Like engine.Eval, the evaluation runs behind a recover barrier:
// a panic (including injected faults) fails this evaluation with a
// *PanicError wrapping ErrInternal, and on any error the DB's contents are
// valid but incomplete — discard them.
func Eval(p *ast.Program, db *engine.DB, opts engine.Options) (res *Result, err error) {
	defer func() {
		if r := recover(); r != nil {
			res, err = nil, &engine.PanicError{Where: "stream", Value: r, Stack: debug.Stack()}
		}
	}()
	if err := validate(opts); err != nil {
		return nil, err
	}
	if opts.Span != nil {
		opts.Trace = true
	}
	rules, err := engine.CompileProgram(p, db.Store, opts.ReorderJoins)
	if err != nil {
		return nil, err
	}
	// Materialize head and body relations up front so empty IDB predicates
	// exist and arities are checked, matching the fixpoint evaluator.
	for _, r := range rules {
		if _, err := db.Rel(r.HeadPred(), len(r.HeadArgs())); err != nil {
			return nil, err
		}
		for _, l := range r.Body() {
			if _, err := db.Rel(l.Pred(), l.Arity()); err != nil {
				return nil, err
			}
		}
	}
	sched := depgraph.Analyze(p)
	plan, err := planCompiled(p, rules, sched)
	if err != nil {
		return nil, err
	}

	ev := &streamEval{
		p:     p,
		db:    db,
		opts:  opts,
		plan:  plan,
		rules: rules,
	}
	ev.ex = &exec{db: db, tables: map[tableKey]*buildTable{}, stream: &ev.result.Stream}
	ev.result.DB = db
	ev.result.Plan = plan
	ev.result.Stream.Strata = len(sched.Strata)
	ev.result.Stream.Streamed = plan.Streamed()
	ev.result.Stream.Pushdowns = countPushdowns(plan)
	if opts.Trace {
		ev.result.Stats.Rules = make([]obsv.RuleStats, len(rules))
		for i, r := range rules {
			ev.result.Stats.Rules[i] = obsv.RuleStats{Index: i, Rule: r.Label()}
		}
	}
	if err := ev.run(); err != nil {
		return nil, err
	}
	return &ev.result, nil
}

// validate rejects options the streaming executor cannot honor, plus the
// same out-of-domain values engine.Eval rejects (a streamed-only program
// never reaches the engine's own validation).
func validate(opts engine.Options) error {
	if opts.Provenance {
		return fmt.Errorf("%w: streaming executor does not record provenance", engine.ErrBadOptions)
	}
	if opts.Strategy != engine.SemiNaive {
		return fmt.Errorf("%w: streaming executor requires the semi-naive strategy", engine.ErrBadOptions)
	}
	if opts.Workers < 0 {
		return fmt.Errorf("%w: Workers = %d (want >= 0)", engine.ErrBadOptions, opts.Workers)
	}
	if opts.MaxIterations < 0 {
		return fmt.Errorf("%w: MaxIterations = %d (want >= 0)", engine.ErrBadOptions, opts.MaxIterations)
	}
	if opts.MaxFacts < 0 {
		return fmt.Errorf("%w: MaxFacts = %d (want >= 0)", engine.ErrBadOptions, opts.MaxFacts)
	}
	if opts.MaxBytes < 0 {
		return fmt.Errorf("%w: MaxBytes = %d (want >= 0)", engine.ErrBadOptions, opts.MaxBytes)
	}
	return nil
}

// streamEval is one evaluation's state: the plan being executed, the
// accumulated result, and the shared transient-table cache.
type streamEval struct {
	p     *ast.Program
	db    *engine.DB
	opts  engine.Options
	plan  *Plan
	rules []*engine.CompiledRule
	ex    *exec

	result Result
}

func (ev *streamEval) run() error {
	for si := range ev.plan.Strata {
		if err := ctxErr(ev.opts.Context); err != nil {
			return err
		}
		sp := &ev.plan.Strata[si]
		start := time.Now()
		span := ev.opts.Span.Child("stratum").SetStratum(si)
		if span != nil {
			span.SetNote(executorNote(sp) + ": " + strings.Join(sp.Preds, ","))
		}
		var newFacts int
		var rounds int
		var err error
		if sp.Streamed {
			newFacts, err = ev.runStreamed(sp, span)
			rounds = 1
		} else {
			newFacts, rounds, err = ev.runFixpoint(sp, span)
		}
		span.End()
		if ev.opts.Trace {
			ev.result.Stats.Strata = append(ev.result.Stats.Strata, obsv.StratumStats{
				Index:     si,
				Preds:     sp.Preds,
				Recursive: sp.Recursive,
				Rules:     len(sp.ruleIdxs),
				Rounds:    rounds,
				NewFacts:  newFacts,
				Wall:      time.Since(start),
			})
		}
		if err != nil {
			return err
		}
		if err := memBudgetErr(ev.db, ev.opts.MaxBytes); err != nil {
			return err
		}
	}
	return nil
}

func executorNote(sp *StratumPlan) string {
	if sp.Streamed {
		return "stream"
	}
	return "fixpoint"
}

// runStreamed executes one non-recursive stratum: each rule's pipeline runs
// once, draining into the head relation as round-0 base facts. It returns
// the number of new facts derived.
func (ev *streamEval) runStreamed(sp *StratumPlan, span *trace.Span) (newFacts int, err error) {
	stats := &ev.result.Stats
	for _, rp := range sp.Rules {
		rel := ev.db.Lookup(rp.compiled.HeadPred())
		mat := rp.Root
		proj := buildPipeline(rp, ev.db, ev.ex)
		derived, dups := 0, 0
		for proj.Next() {
			stats.Inferences++
			ev.result.Stream.RowsEmitted++
			mat.RowsIn++
			if ev.opts.Context != nil && stats.Inferences&ctxCheckMask == 0 {
				if err := ctxErr(ev.opts.Context); err != nil {
					return newFacts, err
				}
			}
			if rel.InsertRound(proj.Row(), 0) {
				mat.Rows++
				derived++
				stats.Derived++
				if ev.opts.MaxFacts > 0 && stats.Derived > ev.opts.MaxFacts {
					return newFacts + derived, fmt.Errorf("%w: %d derived facts", engine.ErrBudgetExceeded, stats.Derived)
				}
			} else {
				dups++
				ev.result.Stream.Duplicates++
			}
		}
		newFacts += derived
		nodes := chainNodes(rp.Root)
		probes := int64(0)
		for _, n := range nodes[:len(nodes)-2] { // sources and joins only
			probes += n.RowsIn
		}
		if ev.opts.Trace {
			rs := &stats.Rules[rp.RuleIndex]
			rs.Firings++
			rs.JoinProbes += int(probes)
			rs.TuplesMatched += int(nodes[len(nodes)-2].RowsIn) // rows reaching project
			rs.TuplesDerived += derived
			rs.Duplicates += dups
			for _, n := range nodes {
				ev.result.Stream.Ops = append(ev.result.Stream.Ops, obsv.StreamOpStats{
					Stratum: sp.Index,
					Rule:    rp.RuleIndex,
					Op:      n.Op,
					Pred:    n.Pred,
					RowsIn:  n.RowsIn,
					Rows:    n.Rows,
					Pushed:  n.Pushed,
				})
			}
		}
		if span != nil {
			span.Child("rule").SetRule(rp.RuleIndex).
				SetTuples(probes, int64(derived)).End()
		}
	}
	// A streamed stratum is one pass, whatever its rule count: the
	// fixpoint's Iterations measure becomes "strata passes" here.
	stats.Iterations++
	return newFacts, nil
}

// runFixpoint delegates one recursive stratum to the engine's semi-naive
// evaluator over the stratum's subprogram. Topological stratum order
// guarantees every body relation outside the stratum is already complete,
// and the engine's round-0 pass is unrestricted, so leftover round stamps
// from earlier strata are harmless. Budgets are passed as the remaining
// slack so the whole evaluation honors the caller's bounds.
func (ev *streamEval) runFixpoint(sp *StratumPlan, span *trace.Span) (newFacts, rounds int, err error) {
	stats := &ev.result.Stats
	sub := &ast.Program{Rules: make([]ast.Rule, len(sp.ruleIdxs))}
	for i, ri := range sp.ruleIdxs {
		sub.Rules[i] = ev.p.Rules[ri]
	}
	subOpts := engine.Options{
		Strategy:     engine.SemiNaive,
		Context:      ev.opts.Context,
		Workers:      ev.opts.Workers,
		MaxBytes:     ev.opts.MaxBytes,
		ReorderJoins: ev.opts.ReorderJoins,
		Trace:        ev.opts.Trace,
		Span:         span,
	}
	if ev.opts.MaxIterations > 0 {
		remaining := ev.opts.MaxIterations - stats.Iterations
		if remaining <= 0 {
			return 0, 0, fmt.Errorf("%w: %d iterations", engine.ErrBudgetExceeded, stats.Iterations)
		}
		subOpts.MaxIterations = remaining
	}
	if ev.opts.MaxFacts > 0 {
		remaining := ev.opts.MaxFacts - stats.Derived
		if remaining <= 0 {
			return 0, 0, fmt.Errorf("%w: %d derived facts", engine.ErrBudgetExceeded, stats.Derived)
		}
		subOpts.MaxFacts = remaining
	}
	res, err := engine.Eval(sub, ev.db, subOpts)
	if res != nil {
		roundBase := stats.Iterations
		stats.Inferences += res.Stats.Inferences
		stats.Derived += res.Stats.Derived
		stats.Iterations += res.Stats.Iterations
		stats.Degraded = stats.Degraded || res.Stats.Degraded
		if ev.opts.Trace {
			// Subprogram rule i is global rule sp.ruleIdxs[i]; fold its
			// counters into the global record (labels are already set).
			for i := range res.Stats.Rules {
				sub := &res.Stats.Rules[i]
				rs := &stats.Rules[sp.ruleIdxs[i]]
				rs.Firings += sub.Firings
				rs.JoinProbes += sub.JoinProbes
				rs.TuplesMatched += sub.TuplesMatched
				rs.TuplesDerived += sub.TuplesDerived
				rs.Duplicates += sub.Duplicates
			}
			for _, rd := range res.Stats.Rounds {
				rd.Round += roundBase
				stats.Rounds = append(stats.Rounds, rd)
			}
		}
		newFacts = res.Stats.Derived
		rounds = res.Stats.Iterations
	}
	return newFacts, rounds, err
}

// chainNodes flattens a rule plan's linear operator chain source-first:
// [scan|const, join..., project, materialize].
func chainNodes(root *OpNode) []*OpNode {
	var out []*OpNode
	for n := root; n != nil; {
		out = append(out, n)
		if len(n.Children) == 0 {
			break
		}
		n = n.Children[0]
	}
	for i, j := 0, len(out)-1; i < j; i, j = i+1, j-1 {
		out[i], out[j] = out[j], out[i]
	}
	return out
}

// ctxErr maps ctx's terminal state to the engine's typed errors, mirroring
// the engine's own cancellation poll.
func ctxErr(ctx context.Context) error {
	if ctx == nil {
		return nil
	}
	select {
	case <-ctx.Done():
		cause := context.Cause(ctx)
		if errors.Is(cause, context.DeadlineExceeded) {
			return fmt.Errorf("%w: %v", engine.ErrDeadlineExceeded, cause)
		}
		return fmt.Errorf("%w: %v", engine.ErrCanceled, cause)
	default:
		return nil
	}
}

// memBudgetErr enforces MaxBytes against the database's retained footprint
// at stratum boundaries, the same accounting the engine applies at round
// boundaries. Transient build tables are deliberately excluded: they are
// scratch discarded at evaluation end, not retained storage.
func memBudgetErr(db *engine.DB, maxBytes int64) error {
	if maxBytes <= 0 {
		return nil
	}
	st := db.StorageStats()
	if used := st.ArenaBytes + st.IndexBytes; used > maxBytes {
		return fmt.Errorf("%w: %d bytes in arenas+indexes > MaxBytes %d", engine.ErrMemoryBudget, used, maxBytes)
	}
	return nil
}

// tableKey identifies one transient build table: a relation and the column
// set its keys project.
type tableKey struct {
	pred string
	mask uint32
}

func colMask(cols []int) uint32 {
	var m uint32
	for _, c := range cols {
		m |= 1 << uint(c)
	}
	return m
}

// exec is the state one evaluation's pipelines share: the transient
// build-table cache (keyed by relation and column set, built once and
// reused by every probe of the run, across rules and strata — a body
// relation is frozen once its defining stratum completes) and the
// aggregate stream counters.
type exec struct {
	db     *engine.DB
	tables map[tableKey]*buildTable
	stream *obsv.StreamStats
}

// table returns the build table for (pred, cols), building it on first use.
func (ex *exec) table(pred string, rel *engine.Relation, cols []int) *buildTable {
	k := tableKey{pred: pred, mask: colMask(cols)}
	if t, ok := ex.tables[k]; ok {
		return t
	}
	t := newBuildTable(rel, cols)
	ex.tables[k] = t
	ex.stream.BuildTables++
	ex.stream.BuildRows += int64(rel.Len())
	return t
}

// buildTable is a transient hash index: the projection of a frozen
// relation's rows onto cols, mapped to postings lists of row positions.
// Unlike the relation's persistent indexes it is pre-sized from the row
// count (never grows: load stays under 3/4 by construction) and it is
// dropped with the evaluation instead of being retained on the relation.
type buildTable struct {
	rel      *engine.Relation
	cols     []int
	hashes   []uint64
	slots    []int32 // postings bucket ids; -1 = empty
	postings [][]int32
	n        int // distinct keys
}

func newBuildTable(rel *engine.Relation, cols []int) *buildTable {
	size := 16
	for size*3 < rel.Len()*4 {
		size <<= 1
	}
	t := &buildTable{
		rel:    rel,
		cols:   cols,
		hashes: make([]uint64, size),
		slots:  make([]int32, size),
	}
	for i := range t.slots {
		t.slots[i] = -1
	}
	key := make([]engine.Val, len(cols))
	for row := int32(0); row < int32(rel.Len()); row++ {
		tuple := rel.Tuple(row)
		for i, c := range cols {
			key[i] = tuple[c]
		}
		t.add(engine.HashVals(key), row)
	}
	return t
}

func (t *buildTable) add(h uint64, row int32) {
	mask := uint64(len(t.slots) - 1)
	for i := h & mask; ; i = (i + 1) & mask {
		b := t.slots[i]
		if b < 0 {
			t.hashes[i] = h
			t.slots[i] = int32(len(t.postings))
			t.postings = append(t.postings, []int32{row})
			t.n++
			return
		}
		if t.hashes[i] == h && t.rowsAgree(t.postings[b][0], row) {
			t.postings[b] = append(t.postings[b], row)
			return
		}
	}
}

// rowsAgree reports whether two rows project equally onto the table's cols.
func (t *buildTable) rowsAgree(a, b int32) bool {
	ta, tb := t.rel.Tuple(a), t.rel.Tuple(b)
	for _, c := range t.cols {
		if ta[c] != tb[c] {
			return false
		}
	}
	return true
}

// probe returns the postings of key (aligned with cols), or nil; a pure
// read, like the persistent index's probe.
func (t *buildTable) probe(key []engine.Val) []int32 {
	if t.n == 0 {
		return nil
	}
	h := engine.HashVals(key)
	mask := uint64(len(t.slots) - 1)
	for i := h & mask; ; i = (i + 1) & mask {
		b := t.slots[i]
		if b < 0 {
			return nil
		}
		if t.hashes[i] == h && t.rowMatchesKey(t.postings[b][0], key) {
			return t.postings[b]
		}
	}
}

// rowMatchesKey reports whether the row's projection onto cols equals key.
func (t *buildTable) rowMatchesKey(row int32, key []engine.Val) bool {
	tuple := t.rel.Tuple(row)
	for i, c := range t.cols {
		if tuple[c] != key[i] {
			return false
		}
	}
	return true
}
