// Package stream is the streaming relational-algebra executor: it compiles
// the non-recursive strata of a program to composed pull-based σ/π/⋈
// iterator pipelines and runs each of their rules exactly once, in
// topological stratum order, instead of pushing them through the
// materializing semi-naive fixpoint.
//
// The fixpoint evaluator is the right tool for recursion, but on a
// non-recursive stratum it pays for machinery it does not need: the round-0
// pass derives every fact, and the following delta round re-joins every
// rule whose body mentions an IDB predicate against the full relation again
// just to discover there is nothing new — roughly doubling the join work —
// while building persistent column indexes that outlive their single use.
// The §4/§5 reductions of "Argument Reduction by Factoring" deliberately
// manufacture such strata: magic seed predicates and the low-arity bp/fp
// cleanup products are cheap to stream and die after one join.
//
// The executor reuses the engine's rule compiler (engine.CompileProgram),
// so both executors agree exactly on slot numbering, bound/free column
// splits, and join order; the differential suite pins that the two produce
// identical relations. Constant selections are pushed into the source scan
// (or into an existing index probe), join equalities are pushed into hash
// probe keys, and probes are served either by a relation's persistent index
// when one already exists or by a transient build table pre-sized from the
// relation's storage statistics and discarded when the evaluation ends —
// streamed strata never grow the database's retained index footprint.
// Recursive strata fall back to engine.Eval over the stratum's subprogram
// (inheriting Workers, budgets, and cancellation), and every stratum output
// is materialized at its recursion/consumption boundary so later strata and
// the answer projection read ordinary relations.
//
// Opting in: engine.Options.Streaming (StreamAuto), the facade's
// WithStreaming, the CLI's run -stream, the REPL's :stream, and
// factorlogd's stream=1 all route here; docs/STREAMING.md documents the
// iterator contract, the pushdown rules, the planner decision, and the
// failure semantics (a streamed stratum that panics is isolated exactly
// like a fixpoint one, via faultinject.StreamNext in the chaos suite).
package stream
