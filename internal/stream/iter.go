package stream

import (
	"factorlog/internal/engine"
	"factorlog/internal/faultinject"
)

// The operators in this file form one streamed rule's pull pipeline:
// project ← join_n ← … ← join_1 ← scan (or const). All operators share one
// frame — the rule's binding slots plus the undo trail — so a pipeline
// carries bindings downstream without copying tuples; an operator's Next
// first unwinds its own bindings (everything above its trail mark), then
// advances to its next candidate row, so the trail stays strictly LIFO
// across the chain. Iterators never return errors: probes and matches
// cannot fail, and the panic sources on the path (arena access, injected
// faults) unwind to Eval's recovery barrier.

// Iterator is the pull contract: Next advances to the next row, binding the
// shared frame, and reports whether one exists. After Next returns false
// the pipeline is exhausted (operators are single-use; build a new pipeline
// to rerun a rule).
type Iterator interface {
	Next() bool
}

// frame is the mutable evaluation state one pipeline's operators share: the
// rule's binding slots and the LIFO trail of slots bound since the start.
type frame struct {
	slots []engine.Val
	trail []int
	store *engine.Store
}

// undo unwinds the frame's bindings above mark.
func (f *frame) undo(mark int) {
	f.trail = engine.UndoTrail(f.slots, f.trail, mark)
}

// constOp is the source of a bodyless rule: it yields exactly one empty
// frame.
type constOp struct {
	done bool
	node *OpNode
}

func (c *constOp) Next() bool {
	if c.done {
		return false
	}
	c.done = true
	c.node.Rows++
	return true
}

// scanOp is the source of a rule with a body: it enumerates the first
// literal's relation, matching every argument pattern inline — constant
// selections are pushed into the scan rather than a separate filter pass —
// or, when the relation already has a persistent index on the literal's
// ground columns, probes that index once and enumerates only the matching
// postings. (A probe with a constant key never justifies building a
// transient table: the build would scan the whole relation anyway.)
type scanOp struct {
	fr   *frame
	rel  *engine.Relation
	args []engine.Pattern
	// free are the columns matched per row: all columns for a full scan,
	// the residual non-key columns for an index probe.
	free []int
	node *OpNode

	// Full-scan cursor. n is snapshotted at construction: body relations of
	// a non-recursive stratum are frozen while it streams.
	pos, n int32

	// Index-probe cursor; probed selects it.
	probed    bool
	positions []int32
	pi        int
}

// newScanOp builds the source for body literal spec. Ground columns probe
// an existing persistent index when the relation has one (ex counts the
// reuse); otherwise every column is matched during the scan.
func newScanOp(fr *frame, rel *engine.Relation, spec *engine.LiteralSpec, node *OpNode, ex *exec) *scanOp {
	s := &scanOp{fr: fr, rel: rel, args: spec.Args(), node: node, n: int32(rel.Len())}
	bound := spec.BoundCols()
	if len(bound) > 0 && rel.HasIndex(bound) {
		key := make([]engine.Val, 0, len(bound))
		for _, c := range bound {
			key = append(key, spec.Args()[c].Eval(nil, fr.store))
		}
		if positions, ok := rel.ProbeIndexed(bound, key); ok {
			ex.stream.Probes++
			ex.stream.IndexReuses++
			s.probed = true
			s.positions = positions
			s.free = spec.FreeCols()
			return s
		}
	}
	s.free = allCols(len(spec.Args()))
	return s
}

func allCols(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

func (s *scanOp) Next() bool {
	f := s.fr
	f.undo(0) // the scan is the pipeline's leaf: its mark is the empty trail
	for {
		var tuple []engine.Val
		if s.probed {
			if s.pi >= len(s.positions) {
				return false
			}
			tuple = s.rel.Tuple(s.positions[s.pi])
			s.pi++
		} else {
			if s.pos >= s.n {
				return false
			}
			tuple = s.rel.Tuple(s.pos)
			s.pos++
		}
		faultinject.Hit(faultinject.StreamNext)
		s.node.RowsIn++
		if matchCols(s.args, s.free, tuple, f) {
			s.node.Rows++
			return true
		}
		f.undo(0)
	}
}

// joinOp joins its child's frames against one body literal's relation. With
// bound columns it is a hash join: the probe key is evaluated from the
// frame, served by the relation's persistent index when one exists and by
// the evaluation's shared transient build table otherwise. With no bound
// columns it degenerates to a nested-loop scan per child frame.
type joinOp struct {
	fr    *frame
	child Iterator
	rel   *engine.Relation
	pred  string
	args  []engine.Pattern
	bound []int
	free  []int
	node  *OpNode
	ex    *exec

	// live is set while a child frame's candidates are being enumerated;
	// mark is the trail length when that frame arrived.
	live bool
	mark int
	key  []engine.Val

	// Candidates of the current frame: postings for a hash join, a position
	// range for a nested loop. n is snapshotted once (frozen relation).
	positions []int32
	pi        int
	pos, n    int32
}

func newJoinOp(fr *frame, child Iterator, rel *engine.Relation, spec *engine.LiteralSpec, node *OpNode, ex *exec) *joinOp {
	return &joinOp{
		fr:    fr,
		child: child,
		rel:   rel,
		pred:  spec.Pred(),
		args:  spec.Args(),
		bound: spec.BoundCols(),
		free:  spec.FreeCols(),
		node:  node,
		ex:    ex,
		key:   make([]engine.Val, 0, len(spec.BoundCols())),
		n:     int32(rel.Len()),
	}
}

func (j *joinOp) Next() bool {
	f := j.fr
	for {
		if j.live {
			f.undo(j.mark)
			for {
				var tuple []engine.Val
				if len(j.bound) > 0 {
					if j.pi >= len(j.positions) {
						break
					}
					tuple = j.rel.Tuple(j.positions[j.pi])
					j.pi++
				} else {
					if j.pos >= j.n {
						break
					}
					tuple = j.rel.Tuple(j.pos)
					j.pos++
				}
				faultinject.Hit(faultinject.StreamNext)
				j.node.RowsIn++
				if matchCols(j.args, j.free, tuple, f) {
					j.node.Rows++
					return true
				}
				f.undo(j.mark)
			}
			j.live = false
		}
		if !j.child.Next() {
			return false
		}
		j.mark = len(f.trail)
		j.live = true
		if len(j.bound) > 0 {
			key := j.key[:0]
			for _, c := range j.bound {
				key = append(key, j.args[c].Eval(f.slots, f.store))
			}
			j.key = key
			j.ex.stream.Probes++
			if positions, ok := j.rel.ProbeIndexed(j.bound, key); ok {
				j.ex.stream.IndexReuses++
				j.positions = positions
			} else {
				j.positions = j.ex.table(j.pred, j.rel, j.bound).probe(key)
			}
			j.pi = 0
		} else {
			j.pos = 0
		}
	}
}

// matchCols matches tuple's columns in cols against their patterns, binding
// free slots on the frame's trail. On failure the caller unwinds via
// frame.undo; partial bindings from the failed row sit above the caller's
// mark.
func matchCols(args []engine.Pattern, cols []int, tuple []engine.Val, f *frame) bool {
	for _, c := range cols {
		if !args[c].Match(tuple[c], f.slots, &f.trail, f.store) {
			return false
		}
	}
	return true
}

// projectOp evaluates the rule's head patterns over each child frame into a
// reusable row buffer; Row is valid until the next call to Next (the sink
// copies it into the arena on insert).
type projectOp struct {
	fr    *frame
	child Iterator
	head  []engine.Pattern
	row   []engine.Val
	node  *OpNode
}

func (p *projectOp) Next() bool {
	if !p.child.Next() {
		return false
	}
	p.node.RowsIn++
	row := p.row[:0]
	for _, h := range p.head {
		row = append(row, h.Eval(p.fr.slots, p.fr.store))
	}
	p.row = row
	p.node.Rows++
	return true
}

// Row returns the current projected head tuple.
func (p *projectOp) Row() []engine.Val { return p.row }

// buildPipeline wires one streamed rule's operator chain over its annotated
// plan nodes and returns the project operator the sink drains. The plan's
// node chain is materialize ← project ← joins… ← source; the ops annotate
// those nodes with measured row counts as they run.
func buildPipeline(rp *RulePlan, db *engine.DB, ex *exec) *projectOp {
	r := rp.compiled
	fr := &frame{slots: make([]engine.Val, r.NSlots()), store: db.Store}
	for i := range fr.slots {
		fr.slots[i] = engine.NoVal
	}

	// Walk the node chain source-first so nodes[i] aligns with body[i].
	depth := len(r.Body())
	if depth == 0 {
		depth = 1 // const source
	}
	nodes := make([]*OpNode, depth+1) // sources+joins, then project
	n := rp.Root.Children[0]          // skip materialize
	nodes[depth] = n                  // project
	for i := depth - 1; i >= 0; i-- {
		n = n.Children[0]
		nodes[i] = n
	}

	body := r.Body()
	var it Iterator
	if len(body) == 0 {
		it = &constOp{node: nodes[0]}
	} else {
		it = newScanOp(fr, db.Lookup(body[0].Pred()), &body[0], nodes[0], ex)
		for li := 1; li < len(body); li++ {
			it = newJoinOp(fr, it, db.Lookup(body[li].Pred()), &body[li], nodes[li], ex)
		}
	}
	return &projectOp{fr: fr, child: it, head: r.HeadArgs(), node: nodes[len(nodes)-1]}
}
