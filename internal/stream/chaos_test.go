package stream

import (
	"errors"
	"fmt"
	"testing"

	"factorlog/internal/engine"
	"factorlog/internal/faultinject"
	"factorlog/internal/parser"
)

// TestStreamChaos arms the injection points the streaming executor crosses —
// StreamNext on the iterator hot path, plus the storage and index points its
// sinks and probes share with the engine — and requires the same invariants
// as the engine's chaos suite: no failure may escape the recovery barrier
// untyped, and every successful run must produce exactly the baseline
// relations, whether or not faults fired along the way.
func TestStreamChaos(t *testing.T) {
	prog := parser.MustParseProgram(mixedProgram)
	baselineDB := engine.NewDB()
	loadMixedEDB(baselineDB, 14)
	if _, err := Eval(prog, baselineDB, engine.Options{}); err != nil {
		t.Fatal(err)
	}
	baseline := relationSets(baselineDB)

	points := []faultinject.Point{
		faultinject.StreamNext, faultinject.ArenaGrow, faultinject.IndexProbe,
	}
	for _, seed := range []uint64{1, 7, 42, 9001} {
		for _, maxPeriod := range []uint64{60, 900} {
			t.Run(fmt.Sprintf("seed=%d period<=%d", seed, maxPeriod), func(t *testing.T) {
				// Load the EDB before arming: setup is not under test.
				db := engine.NewDB()
				loadMixedEDB(db, 14)
				disable := faultinject.Enable(faultinject.Config{
					Seed: seed, MaxPeriod: maxPeriod, Points: points,
				})
				defer disable()

				res, err := Eval(prog, db, engine.Options{})
				if err != nil {
					if !errors.Is(err, engine.ErrInternal) {
						t.Fatalf("untyped failure: %v", err)
					}
					var pe *engine.PanicError
					if !errors.As(err, &pe) || len(pe.Stack) == 0 {
						t.Fatalf("internal error without stack: %v", err)
					}
					return
				}
				if res.Stream.RowsEmitted == 0 {
					t.Fatal("successful run streamed nothing")
				}
				diffRelations(t, baseline, relationSets(db))
			})
		}
	}
}

// TestStreamNextFires pins that the StreamNext point actually sits on the
// executed path: with only that point armed at period 1, the very first
// pulled row must fault.
func TestStreamNextFires(t *testing.T) {
	prog := parser.MustParseProgram(`d(X) :- e(X, X).`)
	db := engine.NewDB()
	db.MustInsert("e", db.Store.Int(1), db.Store.Int(1))
	disable := faultinject.Enable(faultinject.Config{
		Seed: 1, MaxPeriod: 1, Points: []faultinject.Point{faultinject.StreamNext},
	})
	defer disable()

	_, err := Eval(prog, db, engine.Options{})
	if !errors.Is(err, engine.ErrInternal) {
		t.Fatalf("err = %v, want ErrInternal from injected StreamNext fault", err)
	}
	var pe *engine.PanicError
	if !errors.As(err, &pe) || pe.Where != "stream" {
		t.Fatalf("barrier = %+v, want Where=stream", err)
	}
	if faultinject.TotalFired() == 0 {
		t.Fatal("StreamNext never fired")
	}
}
