package stream

import (
	"fmt"
	"strings"

	"factorlog/internal/ast"
	"factorlog/internal/depgraph"
	"factorlog/internal/engine"
)

// OpNode is one operator of a streamed rule's plan tree, rendered in
// EXPLAIN output and annotated with measured row counts after execution.
type OpNode struct {
	// Op names the operator: const, scan, hash-join, nested-loop, project,
	// materialize.
	Op string `json:"op"`
	// Pred is the relation the operator reads or writes, when it has one.
	Pred string `json:"pred,omitempty"`
	// Detail is a short human-readable elaboration: the scanned atom, the
	// probe key columns, the projection, or the materialization reason.
	Detail string `json:"detail,omitempty"`
	// Pushed lists predicates pushed into this operator: "σ colN=c" for
	// constant selections applied during the scan or probe, "colN=$s" for
	// join equalities folded into the probe key.
	Pushed []string `json:"pushed,omitempty"`
	// RowsIn counts candidate rows examined, Rows rows produced; both are
	// zero in a static plan and filled in by execution.
	RowsIn int64 `json:"rows_in,omitempty"`
	Rows   int64 `json:"rows,omitempty"`
	// Children are the operator's inputs (one for this executor's chains).
	Children []*OpNode `json:"children,omitempty"`
}

// Clone deep-copies the node tree (plans are shared; executions annotate a
// private copy).
func (n *OpNode) Clone() *OpNode {
	if n == nil {
		return nil
	}
	out := *n
	out.Pushed = append([]string(nil), n.Pushed...)
	out.Children = make([]*OpNode, len(n.Children))
	for i, c := range n.Children {
		out.Children[i] = c.Clone()
	}
	return &out
}

// writeTree renders the node as an indented operator tree.
func (n *OpNode) writeTree(b *strings.Builder, indent string) {
	b.WriteString(indent)
	b.WriteString(n.Op)
	if n.Pred != "" {
		b.WriteByte(' ')
		b.WriteString(n.Pred)
	}
	if n.Detail != "" {
		b.WriteString(" (" + n.Detail + ")")
	}
	if len(n.Pushed) > 0 {
		b.WriteString(" [" + strings.Join(n.Pushed, ", ") + "]")
	}
	if n.Rows > 0 || n.RowsIn > 0 {
		fmt.Fprintf(b, " rows=%d/%d", n.Rows, n.RowsIn)
	}
	b.WriteByte('\n')
	for _, c := range n.Children {
		c.writeTree(b, indent+"  ")
	}
}

// Tree renders the plan tree as indented text, one operator per line.
func (n *OpNode) Tree() string {
	var b strings.Builder
	n.writeTree(&b, "")
	return b.String()
}

// RulePlan is the streamed plan of one rule.
type RulePlan struct {
	// RuleIndex is the rule's position in the evaluated program.
	RuleIndex int `json:"rule"`
	// Rule is the rendered source of the rule.
	Rule string `json:"rule_src"`
	// Root is the plan's operator tree (materialize at the root).
	Root *OpNode `json:"plan"`

	compiled *engine.CompiledRule
}

// StratumPlan is the executor decision for one stratum of the schedule.
type StratumPlan struct {
	// Index is the stratum's position in the topological schedule; Preds
	// the IDB predicates it defines.
	Index int      `json:"index"`
	Preds []string `json:"preds"`
	// Recursive reports whether the stratum needs a fixpoint.
	Recursive bool `json:"recursive"`
	// Streamed reports the planner's decision: iterator pipelines (true) or
	// the materializing semi-naive fixpoint (false). Reason says why.
	Streamed bool   `json:"streamed"`
	Reason   string `json:"reason"`
	// Rules holds the per-rule operator trees of a streamed stratum; nil
	// for fixpoint strata.
	Rules []*RulePlan `json:"rules,omitempty"`

	ruleIdxs []int // global rule indices (all strata)
}

// RuleCount returns the number of rules in the stratum (streamed or not).
func (sp *StratumPlan) RuleCount() int { return len(sp.ruleIdxs) }

// Plan is the streaming executor's classification of a whole program.
type Plan struct {
	Strata []StratumPlan `json:"strata"`
}

// Streamed counts the strata the planner routed to iterator pipelines.
func (p *Plan) Streamed() int {
	n := 0
	for i := range p.Strata {
		if p.Strata[i].Streamed {
			n++
		}
	}
	return n
}

// PlanProgram classifies every stratum of p and builds the operator trees
// of the streamed ones, without evaluating anything. EXPLAIN uses it to
// describe the plan; Eval builds the same plan and executes it. The store
// only interns the program's constants (any store works for planning; Eval
// must use the database's).
func PlanProgram(p *ast.Program, store *engine.Store, reorder bool) (*Plan, error) {
	rules, err := engine.CompileProgram(p, store, reorder)
	if err != nil {
		return nil, err
	}
	return planCompiled(p, rules, depgraph.Analyze(p))
}

// planCompiled builds the plan over already-compiled rules.
func planCompiled(p *ast.Program, rules []*engine.CompiledRule, sched *depgraph.Schedule) (*Plan, error) {
	plan := &Plan{Strata: make([]StratumPlan, len(sched.Strata))}
	for si := range sched.Strata {
		st := &sched.Strata[si]
		sp := StratumPlan{
			Index:     si,
			Preds:     st.Preds,
			Recursive: st.Recursive,
			ruleIdxs:  st.Rules,
		}
		if st.Recursive {
			sp.Streamed = false
			sp.Reason = "recursive: semi-naive fixpoint with delta discipline"
		} else {
			sp.Streamed = true
			sp.Reason = "non-recursive: single-pass iterator pipeline"
			for _, ri := range st.Rules {
				r := rules[ri]
				sp.Rules = append(sp.Rules, &RulePlan{
					RuleIndex: ri,
					Rule:      r.Label(),
					Root:      buildOpTree(r, sinkReason(r.HeadPred(), si, sched, p)),
					compiled:  r,
				})
			}
		}
		plan.Strata[si] = sp
	}
	return plan, nil
}

// sinkReason explains why a streamed stratum's output materializes: the
// sink is the one place a streaming plan touches the arena, and the reason
// names the boundary that forces it.
func sinkReason(pred string, si int, sched *depgraph.Schedule, p *ast.Program) string {
	for sj := si + 1; sj < len(sched.Strata); sj++ {
		st := &sched.Strata[sj]
		for _, ri := range st.Rules {
			for _, a := range p.Rules[ri].Body {
				if a.Pred == pred {
					if st.Recursive {
						return fmt.Sprintf("recursion boundary: consumed by recursive stratum %d", sj)
					}
					return fmt.Sprintf("consumed by stratum %d", sj)
				}
			}
		}
	}
	return "stratum output: kept for answers"
}

// buildOpTree lowers one compiled rule to its operator chain:
// materialize ← project ← join_n ← … ← join_1 ← scan (or const for a
// bodyless rule). Constant selections appear as pushed predicates on the
// scan; probe-key equalities as pushed predicates on each join.
func buildOpTree(r *engine.CompiledRule, reason string) *OpNode {
	src := r.Rule()
	body := r.Body()
	var node *OpNode
	if len(body) == 0 {
		node = &OpNode{Op: "const", Detail: "one empty frame"}
	} else {
		spec := &body[0]
		node = &OpNode{
			Op:     "scan",
			Pred:   spec.Pred(),
			Detail: src.Body[0].String(),
			Pushed: pushedPreds(spec, src.Body[0]),
		}
		for li := 1; li < len(body); li++ {
			spec := &body[li]
			op := "hash-join"
			detail := src.Body[li].String()
			if len(spec.BoundCols()) == 0 {
				op = "nested-loop"
			} else {
				detail += fmt.Sprintf(" probe cols %v", spec.BoundCols())
			}
			node = &OpNode{
				Op:       op,
				Pred:     spec.Pred(),
				Detail:   detail,
				Pushed:   pushedPreds(spec, src.Body[li]),
				Children: []*OpNode{node},
			}
		}
	}
	heads := make([]string, len(src.Head.Args))
	for i, t := range src.Head.Args {
		heads[i] = t.String()
	}
	node = &OpNode{Op: "project", Detail: "[" + strings.Join(heads, ",") + "]", Children: []*OpNode{node}}
	return &OpNode{
		Op:       "materialize",
		Pred:     r.HeadPred(),
		Detail:   "distinct; " + reason,
		Children: []*OpNode{node},
	}
}

// pushedPreds renders the predicates pushed into one literal's scan or
// probe: constants as selections ("σ col0=5"), variables bound by earlier
// literals as join-key equalities ("col1=X").
func pushedPreds(spec *engine.LiteralSpec, atom ast.Atom) []string {
	var out []string
	for _, c := range spec.BoundCols() {
		term := atom.Args[c]
		if term.Ground() {
			out = append(out, fmt.Sprintf("σ col%d=%s", c, term))
		} else {
			out = append(out, fmt.Sprintf("col%d=%s", c, term))
		}
	}
	return out
}

// countPushdowns counts the pushed predicates across a plan's streamed
// operator trees.
func countPushdowns(plan *Plan) int {
	n := 0
	var walk func(*OpNode)
	walk = func(node *OpNode) {
		n += len(node.Pushed)
		for _, c := range node.Children {
			walk(c)
		}
	}
	for i := range plan.Strata {
		for _, rp := range plan.Strata[i].Rules {
			walk(rp.Root)
		}
	}
	return n
}
