package stream

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"testing"

	"factorlog/internal/ast"
	"factorlog/internal/engine"
	"factorlog/internal/parser"
)

// mixedProgram exercises every stratum shape the executor routes: layered
// non-recursive joins (s1, s2), a recursive stratum (tc over s1), and a
// non-recursive consumer of the recursion's output (top).
const mixedProgram = `
s1(X, Z) :- e(X, Y), f(Y, Z).
s2(X, Z) :- s1(X, Y), g(Y, Z).
tc(X, Y) :- s1(X, Y).
tc(X, Z) :- tc(X, Y), s1(Y, Z).
top(X, Z) :- tc(X, Y), s2(Y, Z).
`

func loadMixedEDB(db *engine.DB, n int) {
	for i := 0; i < n; i++ {
		db.MustInsert("e", db.Store.Int(i), db.Store.Int(i+1))
		db.MustInsert("f", db.Store.Int(i+1), db.Store.Int(i+2))
		if i%2 == 0 {
			db.MustInsert("g", db.Store.Int(i+2), db.Store.Int(i))
		}
	}
}

// relationSets renders every relation's contents as a sorted string set,
// ignoring insertion order and round stamps — the equality the streaming
// executor guarantees against the fixpoint.
func relationSets(db *engine.DB) map[string][]string {
	out := map[string][]string{}
	for _, pred := range db.Preds() {
		rel := db.Lookup(pred)
		rows := make([]string, 0, rel.Len())
		for pos := int32(0); pos < int32(rel.Len()); pos++ {
			rows = append(rows, db.Store.TupleString(rel.Tuple(pos)))
		}
		sort.Strings(rows)
		out[pred] = rows
	}
	return out
}

func diffRelations(t *testing.T, want, got map[string][]string) {
	t.Helper()
	for pred, w := range want {
		g, ok := got[pred]
		if !ok {
			t.Errorf("predicate %s missing from streamed result", pred)
			continue
		}
		if len(w) != len(g) {
			t.Errorf("%s: %d tuples materialized vs %d streamed", pred, len(w), len(g))
			continue
		}
		for i := range w {
			if w[i] != g[i] {
				t.Errorf("%s: tuple %d differs: %s vs %s", pred, i, w[i], g[i])
				break
			}
		}
	}
	for pred := range got {
		if _, ok := want[pred]; !ok {
			t.Errorf("predicate %s only in streamed result", pred)
		}
	}
}

func TestStreamMatchesEngineOnMixedProgram(t *testing.T) {
	prog := parser.MustParseProgram(mixedProgram)
	store := engine.NewStore()
	dbEng := engine.NewDBWith(store)
	loadMixedEDB(dbEng, 12)
	dbStr := dbEng.Clone()

	if _, err := engine.Eval(prog, dbEng, engine.Options{}); err != nil {
		t.Fatalf("engine eval: %v", err)
	}
	res, err := Eval(prog, dbStr, engine.Options{})
	if err != nil {
		t.Fatalf("stream eval: %v", err)
	}
	diffRelations(t, relationSets(dbEng), relationSets(dbStr))

	if res.Stream.Strata != 4 {
		t.Errorf("Strata = %d, want 4", res.Stream.Strata)
	}
	if res.Stream.Streamed != 3 {
		t.Errorf("Streamed = %d, want 3 (s1, s2, top)", res.Stream.Streamed)
	}
	if res.Stream.RowsEmitted == 0 || res.Stats.Derived == 0 {
		t.Errorf("no rows streamed: %+v", res.Stream)
	}
	if res.Stream.Probes == 0 {
		t.Errorf("no probes counted: %+v", res.Stream)
	}
	if res.Stream.BuildTables == 0 {
		t.Errorf("expected transient build tables, got %+v", res.Stream)
	}
}

func TestStreamPlanShapeAndPushdowns(t *testing.T) {
	prog := parser.MustParseProgram(`
p(X, Z) :- e(X, Y), f(Y, Z).
q(Y) :- p(5, Y).
r(X, Y) :- q(X), tcq(X, Y).
tcq(X, Y) :- q(X), e(X, Y).
tcq(X, Z) :- tcq(X, Y), e(Y, Z).
`)
	plan, err := PlanProgram(prog, engine.NewStore(), false)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Strata) != 4 {
		t.Fatalf("got %d strata, want 4", len(plan.Strata))
	}
	if plan.Streamed() != 3 {
		t.Fatalf("streamed %d strata, want 3", plan.Streamed())
	}

	byPred := map[string]*StratumPlan{}
	for i := range plan.Strata {
		for _, pred := range plan.Strata[i].Preds {
			byPred[pred] = &plan.Strata[i]
		}
	}
	if sp := byPred["tcq"]; sp.Streamed || !sp.Recursive {
		t.Errorf("tcq stratum should be a recursive fixpoint: %+v", sp)
	}
	if sp := byPred["p"]; !sp.Streamed || len(sp.Rules) != 1 {
		t.Fatalf("p stratum not streamed as one rule: %+v", sp)
	}

	// p's plan: materialize ← project ← hash-join f ← scan e, with the join
	// key pushed into the probe.
	chain := chainNodes(byPred["p"].Rules[0].Root)
	ops := make([]string, len(chain))
	for i, n := range chain {
		ops[i] = n.Op
	}
	if got, want := strings.Join(ops, " "), "scan hash-join project materialize"; got != want {
		t.Errorf("p operator chain = %q, want %q", got, want)
	}
	if join := chain[1]; len(join.Pushed) != 1 || !strings.Contains(join.Pushed[0], "col0") {
		t.Errorf("join pushdown = %v, want the Y key on col0", join.Pushed)
	}

	// q's scan of p carries the constant selection σ col0=5.
	qScan := chainNodes(byPred["q"].Rules[0].Root)[0]
	if len(qScan.Pushed) != 1 || !strings.Contains(qScan.Pushed[0], "σ col0=5") {
		t.Errorf("q scan pushdown = %v, want σ col0=5", qScan.Pushed)
	}

	// Materialization reasons name the consumption boundary.
	reason := func(pred string) string {
		chain := chainNodes(byPred[pred].Rules[0].Root)
		return chain[len(chain)-1].Detail
	}
	if !strings.Contains(reason("q"), "recursion boundary") {
		t.Errorf("q sink reason = %q, want recursion boundary", reason("q"))
	}
	if !strings.Contains(reason("r"), "kept for answers") {
		t.Errorf("r sink reason = %q, want kept for answers", reason("r"))
	}
	if n := countPushdowns(plan); n == 0 {
		t.Error("plan reports zero pushdowns")
	}
	if tree := byPred["p"].Rules[0].Root.Tree(); !strings.Contains(tree, "hash-join f") {
		t.Errorf("rendered tree missing join:\n%s", tree)
	}
}

func TestStreamBodylessAndEmptyRelations(t *testing.T) {
	prog := parser.MustParseProgram(`
seed(1, 2).
out(X, Y) :- seed(X, Y), missing(Y).
`)
	db := engine.NewDB()
	res, err := Eval(prog, db, engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if db.Count("seed") != 1 {
		t.Errorf("seed count = %d, want 1 (bodyless rule streams one row)", db.Count("seed"))
	}
	if db.Count("out") != 0 {
		t.Errorf("out count = %d, want 0 (empty body relation)", db.Count("out"))
	}
	if db.Lookup("missing") == nil {
		t.Error("body relation was not materialized")
	}
	if res.Stream.Streamed == 0 {
		t.Error("nothing streamed")
	}
}

func TestStreamDuplicatesAreDistinct(t *testing.T) {
	// Both rules derive the same tuples; the sink deduplicates.
	prog := parser.MustParseProgram(`
d(X) :- e(X, Y).
d(Y) :- e(X, Y).
`)
	db := engine.NewDB()
	a := db.Store.Const("a")
	db.MustInsert("e", a, a)
	db.MustInsert("e", a, db.Store.Const("b"))
	res, err := Eval(prog, db, engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if db.Count("d") != 2 {
		t.Errorf("d count = %d, want 2", db.Count("d"))
	}
	if res.Stream.RowsEmitted != 4 || res.Stream.Duplicates != 2 {
		t.Errorf("emitted/duplicates = %d/%d, want 4/2", res.Stream.RowsEmitted, res.Stream.Duplicates)
	}
}

func TestStreamReusesPersistentIndex(t *testing.T) {
	prog := parser.MustParseProgram(`j(X, Z) :- e(X, Y), f(Y, Z).`)
	db := engine.NewDB()
	for i := 0; i < 8; i++ {
		db.MustInsert("e", db.Store.Int(i), db.Store.Int(i+1))
		db.MustInsert("f", db.Store.Int(i+1), db.Store.Int(i+2))
	}
	// Build a persistent index on f's first column, as a prior evaluation
	// over the same DB would have.
	db.Lookup("f").Probe([]int{0}, []engine.Val{db.Store.Int(1)})

	res, err := Eval(prog, db, engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stream.IndexReuses == 0 {
		t.Errorf("expected persistent-index reuse: %+v", res.Stream)
	}
	if res.Stream.BuildTables != 0 {
		t.Errorf("built %d transient tables despite existing index", res.Stream.BuildTables)
	}
	if db.Count("j") != 8 {
		t.Errorf("j count = %d, want 8", db.Count("j"))
	}
}

func TestStreamTraceCountersAndOps(t *testing.T) {
	prog := parser.MustParseProgram(mixedProgram)
	db := engine.NewDB()
	loadMixedEDB(db, 8)
	res, err := Eval(prog, db, engine.Options{Trace: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Stats.Rules) != 5 {
		t.Fatalf("got %d rule records, want 5", len(res.Stats.Rules))
	}
	for _, rs := range res.Stats.Rules {
		if rs.Firings == 0 {
			t.Errorf("rule %d (%s) never fired", rs.Index, rs.Rule)
		}
	}
	if len(res.Stats.Strata) != 4 {
		t.Errorf("got %d stratum records, want 4", len(res.Stats.Strata))
	}
	if len(res.Stream.Ops) == 0 {
		t.Fatal("no per-operator records under Trace")
	}
	var sawJoinRows bool
	for _, op := range res.Stream.Ops {
		if (op.Op == "hash-join" || op.Op == "nested-loop") && op.RowsIn > 0 {
			sawJoinRows = true
		}
	}
	if !sawJoinRows {
		t.Errorf("no join operator measured rows: %+v", res.Stream.Ops)
	}
	// The streamed rules fire exactly once; the recursive tc rules fire
	// once per round and delta occurrence.
	if res.Stats.Rules[0].Firings != 1 {
		t.Errorf("streamed rule fired %d times, want 1", res.Stats.Rules[0].Firings)
	}
}

func TestStreamOptionValidation(t *testing.T) {
	prog := parser.MustParseProgram(`d(X) :- e(X, X).`)
	cases := []engine.Options{
		{Provenance: true},
		{Strategy: engine.Naive},
		{Workers: -1},
		{MaxFacts: -1},
		{MaxIterations: -1},
		{MaxBytes: -1},
	}
	for i, opts := range cases {
		if _, err := Eval(prog, engine.NewDB(), opts); !errors.Is(err, engine.ErrBadOptions) {
			t.Errorf("case %d: err = %v, want ErrBadOptions", i, err)
		}
	}
}

func TestStreamBudgetsAndCancellation(t *testing.T) {
	prog := parser.MustParseProgram(mixedProgram)

	db := engine.NewDB()
	loadMixedEDB(db, 10)
	if _, err := Eval(prog, db, engine.Options{MaxFacts: 3}); !errors.Is(err, engine.ErrBudgetExceeded) {
		t.Errorf("MaxFacts: err = %v, want ErrBudgetExceeded", err)
	}

	db = engine.NewDB()
	loadMixedEDB(db, 10)
	if _, err := Eval(prog, db, engine.Options{MaxBytes: 64}); !errors.Is(err, engine.ErrMemoryBudget) {
		t.Errorf("MaxBytes: err = %v, want ErrMemoryBudget", err)
	}

	db = engine.NewDB()
	loadMixedEDB(db, 10)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Eval(prog, db, engine.Options{Context: ctx}); !errors.Is(err, engine.ErrCanceled) {
		t.Errorf("canceled ctx: err = %v, want ErrCanceled", err)
	}

	// MaxIterations must bound the recursive stratum's fixpoint through the
	// delegated engine run.
	db = engine.NewDB()
	for i := 0; i < 64; i++ {
		db.MustInsert("e", db.Store.Int(i), db.Store.Int(i+1))
		db.MustInsert("f", db.Store.Int(i+1), db.Store.Int(i+2))
		db.MustInsert("g", db.Store.Int(i+2), db.Store.Int(i))
	}
	if _, err := Eval(prog, db, engine.Options{MaxIterations: 3}); !errors.Is(err, engine.ErrBudgetExceeded) {
		t.Errorf("MaxIterations: err = %v, want ErrBudgetExceeded", err)
	}
}

func TestStreamParallelRecursiveStrata(t *testing.T) {
	prog := parser.MustParseProgram(mixedProgram)
	store := engine.NewStore()
	dbSeq := engine.NewDBWith(store)
	loadMixedEDB(dbSeq, 16)
	dbPar := dbSeq.Clone()

	if _, err := Eval(prog, dbSeq, engine.Options{}); err != nil {
		t.Fatal(err)
	}
	res, err := Eval(prog, dbPar, engine.Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	diffRelations(t, relationSets(dbSeq), relationSets(dbPar))
	if res.Stats.Degraded {
		t.Error("parallel recursive stratum degraded unexpectedly")
	}
}

// TestStreamAnswersMatchQuery pins the answer-projection path end to end.
func TestStreamAnswersMatchQuery(t *testing.T) {
	prog := parser.MustParseProgram(mixedProgram)
	db := engine.NewDB()
	loadMixedEDB(db, 12)
	if _, err := Eval(prog, db, engine.Options{}); err != nil {
		t.Fatal(err)
	}
	query := ast.NewAtom("top", ast.V("X"), ast.V("Y"))
	got, err := engine.AnswerSet(db, query)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) == 0 {
		t.Fatal("no answers for top(X, Y)")
	}
	for ans := range got {
		if !strings.HasPrefix(ans, "(") {
			t.Fatalf("unexpected answer shape %q", ans)
		}
	}
}

// TestStreamRandomizedDifferential fuzzes small random layered programs and
// EDBs against the fixpoint evaluator.
func TestStreamRandomizedDifferential(t *testing.T) {
	for seed := 0; seed < 6; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			var b strings.Builder
			depth := 2 + seed%3
			b.WriteString("t0(X, Y) :- e0(X, Y).\n")
			for d := 1; d <= depth; d++ {
				fmt.Fprintf(&b, "t%d(X, Z) :- t%d(X, Y), e%d(Y, Z).\n", d, d-1, d)
			}
			fmt.Fprintf(&b, "rec(X, Y) :- t%d(X, Y).\nrec(X, Z) :- rec(X, Y), e0(Y, Z).\n", depth)
			prog := parser.MustParseProgram(b.String())

			store := engine.NewStore()
			dbEng := engine.NewDBWith(store)
			x := uint64(seed)*2654435761 + 1
			next := func(n int) int {
				x ^= x << 13
				x ^= x >> 7
				x ^= x << 17
				return int(x % uint64(n))
			}
			for d := 0; d <= depth; d++ {
				pred := fmt.Sprintf("e%d", d)
				for i := 0; i < 20; i++ {
					dbEng.MustInsert(pred, store.Int(next(12)), store.Int(next(12)))
				}
			}
			dbStr := dbEng.Clone()
			if _, err := engine.Eval(prog, dbEng, engine.Options{}); err != nil {
				t.Fatal(err)
			}
			if _, err := Eval(prog, dbStr, engine.Options{}); err != nil {
				t.Fatal(err)
			}
			diffRelations(t, relationSets(dbEng), relationSets(dbStr))
		})
	}
}
