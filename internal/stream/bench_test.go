package stream

import (
	"fmt"
	"strings"
	"testing"

	"factorlog/internal/engine"
	"factorlog/internal/parser"
)

// layeredJoinProgram builds the workload the streaming executor exists for:
// a chain of non-recursive strata t1..tK, each joining the previous layer
// against a fresh EDB relation. Every ti body mentions an IDB predicate, so
// the materializing semi-naive evaluator pays the full join twice per
// stratum (the round-0 cascade derives everything; the round-1 delta pass
// re-joins the complete relation to discover nothing is new), while the
// streaming executor runs each body exactly once.
func layeredJoinProgram(stages int) string {
	var b strings.Builder
	b.WriteString("t1(X, Z) :- s0(X, Y), s1(Y, Z).\n")
	for k := 2; k <= stages; k++ {
		fmt.Fprintf(&b, "t%d(X, Z) :- t%d(X, Y), s%d(Y, Z).\n", k, k-1, k)
	}
	return b.String()
}

func layeredJoinDB(stages, n int) *engine.DB {
	db := engine.NewDB()
	for k := 0; k <= stages; k++ {
		pred := fmt.Sprintf("s%d", k)
		for i := 0; i < n; i++ {
			db.MustInsert(pred, db.Store.Int(i), db.Store.Int((i*7+k)%n))
		}
	}
	return db
}

// BenchmarkLayeredJoins compares the two executors on the layered
// non-recursive workload; the engine-vs-stream delta here is the package's
// reason to exist (see BENCH_5.json for the factorbench-level comparison).
func BenchmarkLayeredJoins(b *testing.B) {
	const stages, n = 6, 2000
	prog := parser.MustParseProgram(layeredJoinProgram(stages))
	b.Run("engine", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			db := layeredJoinDB(stages, n)
			b.StartTimer()
			if _, err := engine.Eval(prog, db, engine.Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("stream", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			db := layeredJoinDB(stages, n)
			b.StartTimer()
			if _, err := Eval(prog, db, engine.Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkSelectivePoint measures the constant-pushdown path: a point
// query over a wide EDB, where the streamed scan filters inline.
func BenchmarkSelectivePoint(b *testing.B) {
	prog := parser.MustParseProgram(`hit(Y) :- wide(500, Y).`)
	mk := func() *engine.DB {
		db := engine.NewDB()
		for i := 0; i < 20000; i++ {
			db.MustInsert("wide", db.Store.Int(i%1000), db.Store.Int(i))
		}
		return db
	}
	b.Run("engine", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			db := mk()
			b.StartTimer()
			if _, err := engine.Eval(prog, db, engine.Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("stream", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			db := mk()
			b.StartTimer()
			if _, err := Eval(prog, db, engine.Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// TestLayeredJoinSpeedupSanity guards the benchmark's premise without
// timing anything: the streamed run must do roughly half the join probes of
// the materializing run on the layered workload.
func TestLayeredJoinSpeedupSanity(t *testing.T) {
	const stages, n = 4, 300
	prog := parser.MustParseProgram(layeredJoinProgram(stages))

	dbEng := layeredJoinDB(stages, n)
	resEng, err := engine.Eval(prog, dbEng, engine.Options{Trace: true})
	if err != nil {
		t.Fatal(err)
	}
	dbStr := layeredJoinDB(stages, n)
	resStr, err := Eval(prog, dbStr, engine.Options{Trace: true})
	if err != nil {
		t.Fatal(err)
	}
	diffRelations(t, relationSets(dbEng), relationSets(dbStr))

	probesEng, probesStr := 0, 0
	for _, rs := range resEng.Stats.Rules {
		probesEng += rs.JoinProbes
	}
	for _, rs := range resStr.Stats.Rules {
		probesStr += rs.JoinProbes
	}
	if probesStr*3 > probesEng*2 {
		t.Errorf("streamed probes = %d, materialized = %d: expected well under 2/3", probesStr, probesEng)
	}
}
