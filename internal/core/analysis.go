package core

import (
	"fmt"
	"strings"

	"factorlog/internal/adorn"
	"factorlog/internal/ast"
	"factorlog/internal/cq"
)

// Analysis is the structural analysis of an adorned unit program: the
// classification of every rule plus the program-level properties needed by
// the factorability theorems.
type Analysis struct {
	// Pred is the adorned recursive predicate (e.g. t_bf); Base its base
	// name; Ad its adornment.
	Pred string
	Base string
	Ad   ast.Adornment
	// Program is the standardized adorned program the analysis was
	// performed on (Section 4.1: standard form is a compile-time device;
	// factoring decisions transfer to the original program by position).
	Program *ast.Program
	// Rules holds one RuleInfo per rule, in program order.
	Rules []RuleInfo
	// ExitRules are the indices of exit rules.
	ExitRules []int
	// Constraints are full TGDs the EDB is known to satisfy (see package
	// cq); the class containments are tested relative to them. The paper's
	// Examples 4.3-4.5 presume such EDB regularities (e.g. the second
	// column of the exit relation contained in r1). Nil means none.
	Constraints []ast.Rule
}

// RLCStable reports whether the program is RLC-stable (Definition 4.4):
// only right-, left-, and combined-linear rules plus one exit rule (and, by
// construction of Analyze, a single IDB predicate with a single reachable
// adornment).
func (a *Analysis) RLCStable() bool {
	if len(a.ExitRules) != 1 {
		return false
	}
	for _, ri := range a.Rules {
		if ri.Shape == ShapeOther {
			return false
		}
	}
	return true
}

// ExitRule returns the single exit rule's info; valid only when RLCStable.
func (a *Analysis) ExitRule() RuleInfo { return a.Rules[a.ExitRules[0]] }

// Recursive returns the infos of the non-exit rules, in program order.
func (a *Analysis) Recursive() []RuleInfo {
	var out []RuleInfo
	for _, ri := range a.Rules {
		if ri.Shape != ShapeExit {
			out = append(out, ri)
		}
	}
	return out
}

// Summary renders a one-line-per-rule overview for diagnostics.
func (a *Analysis) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "predicate %s (adornment %s)\n", a.Pred, a.Ad)
	for i, ri := range a.Rules {
		fmt.Fprintf(&b, "rule %d: %-12s %s", i+1, ri.Shape, ri.Rule)
		if ri.Reason != "" {
			fmt.Fprintf(&b, "  (%s)", ri.Reason)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Analyze classifies an adorned unit program. The adorn result must be a
// unit program (single IDB predicate, single adornment); the program is
// standardized with respect to the recursive predicate before
// classification.
func Analyze(ad *adorn.Result) (*Analysis, error) {
	if !ad.IsUnit() {
		return nil, fmt.Errorf("not a unit program: IDB predicates/adornments %v", ad.ByPred)
	}
	pred, adornment := ad.UnitPred()
	base, _, _ := ast.SplitAdorned(pred)
	std := ast.Standardize(ad.Program, map[string]bool{pred: true})

	a := &Analysis{
		Pred:    pred,
		Base:    base,
		Ad:      adornment,
		Program: std,
	}
	for i, r := range std.Rules {
		info := classifyRule(r, pred, adornment)
		a.Rules = append(a.Rules, info)
		if info.Shape == ShapeExit {
			a.ExitRules = append(a.ExitRules, i)
		}
	}
	return a, nil
}

// WithConstraints attaches full-TGD EDB constraints to the analysis after
// validating them; the class tests then check containments relative to the
// constraints (chase-based, see package cq).
func (a *Analysis) WithConstraints(tgds []ast.Rule) (*Analysis, error) {
	for _, t := range tgds {
		if err := cq.ValidateTGD(t); err != nil {
			return nil, err
		}
	}
	a.Constraints = tgds
	return a, nil
}

// AnalyzeQuery adorns p with respect to query and analyzes the result.
func AnalyzeQuery(p *ast.Program, query ast.Atom) (*Analysis, error) {
	ad, err := adorn.Adorn(p, query)
	if err != nil {
		return nil, err
	}
	return Analyze(ad)
}
