package core

import (
	"strings"
	"testing"

	"factorlog/internal/ast"
	"factorlog/internal/engine"
	"factorlog/internal/magic"
	"factorlog/internal/parser"
)

// Section 7.3 of the paper asks when a predicate can be factored even
// though it is not the top-level query predicate. Example 7.2 exhibits
// positive and negative cases; the theorems do not cover them (p_bf is not
// the query predicate), so we demonstrate them with the definition-level
// machinery: forced splits, the randomized refuter, hand-constructed
// counterexample EDBs, and answer comparison.

// TestExample72Positive: the driver q(Y) :- a(X,Z), p(Z,Y) over the
// right-linear P1. p_bf appears as an inner goal; the paper conjectures it
// factors. The refuter finds no counterexample and answers agree on hand
// EDBs after applying the factoring transformation.
func TestExample72Positive(t *testing.T) {
	p := parser.MustParseProgram(`
		q(Y) :- a(X, Z), p(Z, Y).
		p(X, Y) :- b(X, U), p(U, Y).
		p(X, Y) :- e(X, Y).
	`)
	m, err := magic.FromQuery(p, parser.MustParseAtom("q(Y)"))
	if err != nil {
		t.Fatal(err)
	}
	split := Split{Pred: "p_bf", Left: []int{0}, Right: []int{1}, LeftName: "bp", RightName: "fp"}

	ce, err := RefuteSplit(m.Program, m.Query, split, RefuteOptions{Trials: 400, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if ce != nil {
		t.Fatalf("paper's positive case refuted: %s", ce)
	}

	// Apply the factoring transformation and compare answers on EDBs.
	factored, err := Apply(m.Program, split)
	if err != nil {
		t.Fatal(err)
	}
	for _, edb := range []string{
		`a(1, 2). b(2, 3). b(3, 4). e(4, 9). e(2, 8).`,
		`a(1, 2). a(1, 5). b(5, 2). e(2, 7).`,
		`a(2, 3). e(9, 4).`, // no answers
	} {
		facts, err := parser.Parse(edb)
		if err != nil {
			t.Fatal(err)
		}
		run := func(prog *ast.Program) map[string]bool {
			db := engine.NewDB()
			if err := engine.LoadFacts(db, facts.Facts); err != nil {
				t.Fatal(err)
			}
			if _, err := engine.Eval(prog, db, engine.Options{}); err != nil {
				t.Fatal(err)
			}
			set, _ := engine.AnswerSet(db, m.Query)
			return set
		}
		a, b := run(m.Program), run(factored)
		if len(a) != len(b) {
			t.Errorf("EDB %q: %v vs %v", edb, a, b)
		}
		for k := range a {
			if !b[k] {
				t.Errorf("EDB %q: missing %s", edb, k)
			}
		}
	}
}

// TestExample72Negative: with the query q(X, Y) (both free), answers to
// different p goals pair with different X bindings, so p_bf must NOT be
// factored; the refuter finds a counterexample.
func TestExample72Negative(t *testing.T) {
	p := parser.MustParseProgram(`
		q(X, Y) :- a(X, Z), p(Z, Y).
		p(X, Y) :- b(X, U), p(U, Y).
		p(X, Y) :- e(X, Y).
	`)
	m, err := magic.FromQuery(p, parser.MustParseAtom("q(X, Y)"))
	if err != nil {
		t.Fatal(err)
	}
	split := Split{Pred: "p_bf", Left: []int{0}, Right: []int{1}, LeftName: "bp", RightName: "fp"}
	ce, err := RefuteSplit(m.Program, m.Query, split, RefuteOptions{Trials: 500, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if ce == nil {
		t.Fatal("paper's negative case not refuted")
	}
	if len(ce.Spurious) == 0 {
		t.Errorf("counterexample without spurious answers: %s", ce)
	}
	if !strings.Contains(ce.String(), "spurious") {
		t.Errorf("rendering: %s", ce)
	}
}

// TestExample72P2Negative: with P2's combined rule guarded by c1(X), p_bf
// does not factor under the driver: an answer of one inner subgoal can be
// combined with the guard of a different subgoal, generating a spurious
// inner goal whose exit answers leak into q. The EDB below realizes that:
// only subgoal 1 satisfies c1, subgoal 2 contributes fp(6), and the mixed
// pair (bp(1), fp(6)) fires c2(6,9), reaching the never-invoked goal 9 and
// its answer 7.
func TestExample72P2Negative(t *testing.T) {
	p := parser.MustParseProgram(`
		q(Y) :- a(X, Z), p(Z, Y).
		p(X, Y) :- c1(X), p(X, U), c2(U, V), p(V, Y).
		p(X, Y) :- d(X, Y).
	`)
	m, err := magic.FromQuery(p, parser.MustParseAtom("q(Y)"))
	if err != nil {
		t.Fatal(err)
	}
	split := Split{Pred: "p_bf", Left: []int{0}, Right: []int{1}, LeftName: "bp", RightName: "fp"}
	facts, err := parser.Parse(`
		a(0, 1). a(0, 2).
		c1(1).
		d(1, 5). d(2, 6).
		c2(6, 9).
		d(9, 7).
	`)
	if err != nil {
		t.Fatal(err)
	}
	ce, err := CheckSplitOnEDB(m.Program, m.Query, split, facts.Facts, 0)
	if err != nil {
		t.Fatal(err)
	}
	if ce == nil {
		t.Fatal("P u P2 should not factor (the paper: 'p_bf cannot be factored in P u P2')")
	}
	found := false
	for _, s := range ce.Spurious {
		if s == "(7)" {
			found = true
		}
	}
	if !found {
		t.Errorf("expected spurious answer 7, got %v", ce.Spurious)
	}
}
