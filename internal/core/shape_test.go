package core

import (
	"strings"
	"testing"

	"factorlog/internal/parser"
)

// analyzeSrc adorns and analyzes a program-with-query source.
func analyzeSrc(t *testing.T, progSrc, querySrc string) *Analysis {
	t.Helper()
	p := parser.MustParseProgram(progSrc)
	a, err := AnalyzeQuery(p, parser.MustParseAtom(querySrc))
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestClassifyTransitiveClosure(t *testing.T) {
	a := analyzeSrc(t, `
		t(X, Y) :- t(X, W), t(W, Y).
		t(X, Y) :- e(X, W), t(W, Y).
		t(X, Y) :- t(X, W), e(W, Y).
		t(X, Y) :- e(X, Y).
	`, "t(5, Y)")
	wantShapes := []Shape{ShapeCombined, ShapeRightLinear, ShapeLeftLinear, ShapeExit}
	for i, want := range wantShapes {
		if got := a.Rules[i].Shape; got != want {
			t.Errorf("rule %d: shape = %v, want %v (%s)", i+1, got, want, a.Rules[i].Reason)
		}
	}
	if !a.RLCStable() {
		t.Error("TC should be RLC-stable")
	}

	// Rule 1 (non-linear): one left occurrence, one right occurrence,
	// empty center (U = V = W).
	r1 := a.Rules[0]
	if len(r1.LeftOccs) != 1 || r1.RightOcc != 1 {
		t.Errorf("rule 1 occurrences: left=%v right=%d", r1.LeftOccs, r1.RightOcc)
	}
	if len(r1.Center) != 0 || len(r1.Left) != 0 || len(r1.Right) != 0 {
		t.Errorf("rule 1 conjunctions should be empty: %+v", r1)
	}
	if len(r1.UVars) != 1 || len(r1.VVars) != 1 || r1.UVars[0] != r1.VVars[0] {
		t.Errorf("rule 1 U/V: %v %v", r1.UVars, r1.VVars)
	}

	// Rule 2 (right-linear): first = e(X,W), right empty.
	r2 := a.Rules[1]
	if len(r2.First) != 1 || r2.First[0].Pred != "e" || len(r2.Right) != 0 {
		t.Errorf("rule 2 conjunctions: first=%v right=%v", r2.First, r2.Right)
	}

	// Rule 3 (left-linear): left empty, last = e(W,Y).
	r3 := a.Rules[2]
	if len(r3.Left) != 0 || len(r3.Last) != 1 || r3.Last[0].Pred != "e" {
		t.Errorf("rule 3 conjunctions: left=%v last=%v", r3.Left, r3.Last)
	}

	// Exit rule body is the exit conjunction.
	r4 := a.Rules[3]
	if len(r4.Exit) != 1 || r4.Exit[0].Pred != "e" {
		t.Errorf("rule 4 exit = %v", r4.Exit)
	}
}

func TestClassifyExample43(t *testing.T) {
	a := analyzeSrc(t, `
		p(X, Y) :- l1(X), p(X, U), c1(U, V), p(V, Y), r1(Y).
		p(X, Y) :- l2(X), p(X, U), c2(U, V), p(V, Y), r2(Y).
		p(X, Y) :- f(X, V), p(V, Y), r3(Y).
		p(X, Y) :- e(X, Y).
	`, "p(5, Y)")
	want := []Shape{ShapeCombined, ShapeCombined, ShapeRightLinear, ShapeExit}
	for i, w := range want {
		if got := a.Rules[i].Shape; got != w {
			t.Errorf("rule %d: %v want %v (%s)", i+1, got, w, a.Rules[i].Reason)
		}
	}
	r1 := a.Rules[0]
	if len(r1.Left) != 1 || r1.Left[0].Pred != "l1" {
		t.Errorf("rule 1 left = %v", r1.Left)
	}
	if len(r1.Center) != 1 || r1.Center[0].Pred != "c1" {
		t.Errorf("rule 1 center = %v", r1.Center)
	}
	if len(r1.Right) != 1 || r1.Right[0].Pred != "r1" {
		t.Errorf("rule 1 right = %v", r1.Right)
	}
	r3 := a.Rules[2]
	if len(r3.First) != 1 || r3.First[0].Pred != "f" || len(r3.Right) != 1 || r3.Right[0].Pred != "r3" {
		t.Errorf("rule 3: first=%v right=%v", r3.First, r3.Right)
	}
}

func TestClassifySymmetricExample44(t *testing.T) {
	a := analyzeSrc(t, `
		p(X, Y) :- l1(X), p(X, U), p(X, V), c(U, V, W), p(W, Y), r1(Y).
		p(X, Y) :- l2(X), p(X, U), p(X, V), c(U, V, W), p(W, Y), r2(Y).
		p(X, Y) :- e(X, Y).
	`, "p(5, Y)")
	r1 := a.Rules[0]
	if r1.Shape != ShapeCombined {
		t.Fatalf("rule 1: %v (%s)", r1.Shape, r1.Reason)
	}
	if len(r1.LeftOccs) != 2 {
		t.Errorf("rule 1 left occurrences = %v", r1.LeftOccs)
	}
	if len(r1.UVars) != 2 {
		t.Errorf("rule 1 U = %v", r1.UVars)
	}
}

func TestClassifyPseudoLeftLinear(t *testing.T) {
	// Example 5.2: d(W,X,Z) connects the bound head variable X with W and
	// Z, so left and last cannot be disjoint.
	a := analyzeSrc(t, `
		p(X, Y, Z) :- p(X, Y, W), d(W, X, Z).
		p(X, Y, Z) :- exit(X, Y, Z).
	`, "p(5, 6, U)")
	if got := a.Rules[0].Shape; got != ShapeOther {
		t.Errorf("pseudo-left-linear rule classified %v", got)
	}
	if a.RLCStable() {
		t.Error("pseudo-left-linear program should not be RLC-stable")
	}
}

func TestClassifyExample51SharedBoundVar(t *testing.T) {
	// Example 5.1: X appears in the head's bound arguments and in the
	// right-linear occurrence — not covered by the theorems.
	a := analyzeSrc(t, `
		p(X, Y, Z) :- a(X), p(X, Y, W), d(W, U), p(X, U, Z).
		p(X, Y, Z) :- exit(X, Y, Z).
	`, "p(5, 6, U)")
	if got := a.Rules[0].Shape; got != ShapeOther {
		t.Errorf("Example 5.1 rule classified %v, want other", got)
	}
	if !strings.Contains(a.Rules[0].Reason, "shared") {
		t.Errorf("reason = %q", a.Rules[0].Reason)
	}
}

func TestClassifySameGenerationOther(t *testing.T) {
	// sg(U,V) is neither left-linear (bound arg U != X) nor right-linear
	// (free arg V != Y): the canonical non-factorable program.
	a := analyzeSrc(t, `
		sg(X, Y) :- flat(X, Y).
		sg(X, Y) :- up(X, U), sg(U, V), down(V, Y).
	`, "sg(john, Y)")
	if got := a.Rules[1].Shape; got != ShapeOther {
		t.Errorf("sg rule classified %v, want other", got)
	}
}

func TestClassifyPmem(t *testing.T) {
	a := analyzeSrc(t, `
		pmem(X, [X|T]) :- p(X).
		pmem(X, [H|T]) :- pmem(X, T).
	`, "pmem(X, [x1, x2, x3])")
	if a.Rules[0].Shape != ShapeExit {
		t.Errorf("rule 1: %v (%s)", a.Rules[0].Shape, a.Rules[0].Reason)
	}
	if a.Rules[1].Shape != ShapeRightLinear {
		t.Errorf("rule 2: %v (%s)", a.Rules[1].Shape, a.Rules[1].Reason)
	}
	// first = list(H,T,L); right empty.
	r2 := a.Rules[1]
	if len(r2.First) != 1 || r2.First[0].Pred != "list" || len(r2.Right) != 0 {
		t.Errorf("rule 2: first=%v right=%v", r2.First, r2.Right)
	}
}

func TestClassifyHeadRepeatedInBody(t *testing.T) {
	a := analyzeSrc(t, `
		p(X, Y) :- p(X, Y), e(X, Y).
		p(X, Y) :- e(X, Y).
	`, "p(5, Y)")
	if got := a.Rules[0].Shape; got != ShapeOther {
		t.Errorf("head-repeating rule classified %v", got)
	}
}

func TestClassifyMultipleRightOccurrences(t *testing.T) {
	// Two right-linear occurrences cannot arise from left-to-right
	// adornment of a unit program (the second occurrence's free block
	// would already be bound), so exercise the classifier directly.
	p := parser.MustParseProgram(`
		p_bf(X, Y) :- e(X, U), f(X, U2), p_bf(U, Y), p_bf(U2, Y).
	`)
	info := classifyRule(p.Rules[0], "p_bf", "bf")
	if info.Shape != ShapeOther {
		t.Errorf("two right occurrences classified %v", info.Shape)
	}
	if !strings.Contains(info.Reason, "right-linear") {
		t.Errorf("reason = %q", info.Reason)
	}
}

func TestAnalyzeRejectsNonUnit(t *testing.T) {
	p := parser.MustParseProgram(`
		p(X, Y) :- e(X, Y).
		q(X) :- p(X, W), p(V, X).
	`)
	if _, err := AnalyzeQuery(p, parser.MustParseAtom("q(5)")); err == nil {
		t.Error("non-unit program should be rejected")
	}
}

func TestAnalyzeStandardizesDuplicatesAndConstants(t *testing.T) {
	// Head with a constant: standardization introduces equal, and the
	// analysis still proceeds.
	a := analyzeSrc(t, `
		p(X, Y) :- p(X, W), e(W, Y).
		p(X, 0) :- base(X).
	`, "p(5, Y)")
	if a.Rules[1].Shape != ShapeExit {
		t.Errorf("constant-head exit rule: %v (%s)", a.Rules[1].Shape, a.Rules[1].Reason)
	}
	// The standardized exit body contains the equal literal.
	found := false
	for _, at := range a.Rules[1].Exit {
		if at.Pred == "equal" {
			found = true
		}
	}
	if !found {
		t.Errorf("standardized exit missing equal literal: %v", a.Rules[1].Exit)
	}
}

func TestExample41PermutationInvariance(t *testing.T) {
	// Example 4.1: the paper "rearranges and permutes" the rule
	// t(X,Y,Z) :- e(Y,W), t(X,W,Z) to expose left-linearity. With the
	// recursive literal evaluated first (the paper's rearrangement) and
	// adornment bfb, classification sees it as left-linear directly — the
	// argument permutation is presentational, since bound and free blocks
	// are compared position-by-position.
	a := analyzeSrc(t, `
		t(X, Y, Z) :- t(X, W, Z), e(Y, W).
		t(X, Y, Z) :- exit(X, Y, Z).
	`, "t(5, Y, 7)")
	if a.Pred != "t_bfb" {
		t.Fatalf("adorned pred = %s", a.Pred)
	}
	if got := a.Rules[0].Shape; got != ShapeLeftLinear {
		t.Errorf("Example 4.1 rule: %v (%s), want left-linear", got, a.Rules[0].Reason)
	}
	r := a.Rules[0]
	if len(r.Last) != 1 || r.Last[0].Pred != "e" || len(r.Left) != 0 {
		t.Errorf("conjunctions: left=%v last=%v", r.Left, r.Last)
	}
}

func TestSummaryRenders(t *testing.T) {
	a := analyzeSrc(t, `
		t(X, Y) :- t(X, W), e(W, Y).
		t(X, Y) :- e(X, Y).
	`, "t(5, Y)")
	s := a.Summary()
	if !strings.Contains(s, "left-linear") || !strings.Contains(s, "exit") {
		t.Errorf("summary:\n%s", s)
	}
}

func TestShapeString(t *testing.T) {
	shapes := []Shape{ShapeExit, ShapeLeftLinear, ShapeRightLinear, ShapeCombined, ShapeOther}
	want := []string{"exit", "left-linear", "right-linear", "combined", "other"}
	for i, s := range shapes {
		if s.String() != want[i] {
			t.Errorf("Shape %d string = %q", i, s.String())
		}
	}
	if Shape(99).String() == "" {
		t.Error("unknown shape should render")
	}
}
