// Package core implements the paper's contribution: the factoring property
// and transformation (Section 3), the classification of adorned unit
// programs into left-linear, right-linear, and combined rules (Definitions
// 4.1-4.3), the factorable classes selection-pushing, symmetric, and
// answer-propagating (Definitions 4.6-4.8, Theorems 4.1-4.3), the factoring
// of Magic programs into bound and free parts, and a randomized refuter for
// candidate factorings (factorability itself is undecidable, Theorem 3.1).
package core

import (
	"fmt"

	"factorlog/internal/ast"
)

// Shape classifies a rule of an adorned unit program per Definitions
// 4.1-4.3 of the paper.
type Shape int

const (
	// ShapeExit: no occurrence of the recursive predicate in the body.
	ShapeExit Shape = iota
	// ShapeLeftLinear: Definition 4.1 — occurrences p(X,U1)...p(X,Um) whose
	// bound arguments equal the head's, plus disjoint EDB conjunctions
	// left(X) and last(U1..Um, Y).
	ShapeLeftLinear
	// ShapeRightLinear: Definition 4.2 — one occurrence p(V,Y) whose free
	// arguments equal the head's, plus disjoint conjunctions first(X,V) and
	// right(Y).
	ShapeRightLinear
	// ShapeCombined: Definition 4.3 — left-linear occurrences plus one
	// right-linear occurrence, with disjoint left(X), center(U,V), right(Y).
	ShapeCombined
	// ShapeOther: fits none of the above (e.g. pseudo-left-linear rules,
	// Definition 5.3, where left and last share a variable).
	ShapeOther
)

func (s Shape) String() string {
	switch s {
	case ShapeExit:
		return "exit"
	case ShapeLeftLinear:
		return "left-linear"
	case ShapeRightLinear:
		return "right-linear"
	case ShapeCombined:
		return "combined"
	case ShapeOther:
		return "other"
	default:
		return fmt.Sprintf("Shape(%d)", int(s))
	}
}

// RuleInfo is the structural decomposition of one rule with respect to the
// recursive predicate and its adornment. The conjunctions are slices of the
// rule's EDB body atoms; absent conjunctions are nil (denoting "true").
//
// Classification is permutation-invariant by construction: occurrences are
// compared position-by-position within the bound block and within the free
// block, which is unchanged by any global permutation of argument positions
// (the remark after Definition 4.3 and Example 4.1 of the paper).
type RuleInfo struct {
	Rule  ast.Rule
	Shape Shape
	// Reason explains a ShapeOther classification.
	Reason string

	// BoundVars (X) and FreeVars (Y) are the head's variables at bound and
	// free positions, in position order.
	BoundVars []string
	FreeVars  []string

	// LeftOccs are body indices of left-linear occurrences of the recursive
	// predicate; RightOcc is the body index of the right-linear occurrence
	// (-1 if none).
	LeftOccs []int
	RightOcc int

	// UVars concatenates the free-argument variables of the left-linear
	// occurrences, in body order (the U1..Um of Definitions 4.1/4.3).
	UVars []string
	// VVars are the bound-argument variables of the right-linear occurrence
	// (the V of Definitions 4.2/4.3).
	VVars []string

	// Conjunction assignment of the EDB atoms.
	Left   []ast.Atom // left(X): left-linear and combined rules
	First  []ast.Atom // first(X,V): right-linear rules
	Last   []ast.Atom // last(U..,Y): left-linear rules
	Center []ast.Atom // center(U,V): combined rules
	Right  []ast.Atom // right(Y): right-linear and combined rules
	Exit   []ast.Atom // whole body: exit rules
}

// classifyRule decomposes r. pred is the adorned recursive predicate; ad its
// adornment. r must be in standard form with respect to pred (checked).
func classifyRule(r ast.Rule, pred string, ad ast.Adornment) RuleInfo {
	info := RuleInfo{Rule: r, RightOcc: -1}
	other := func(format string, args ...any) RuleInfo {
		info.Shape = ShapeOther
		info.Reason = fmt.Sprintf(format, args...)
		return info
	}
	if !ast.InStandardForm(r, map[string]bool{pred: true}) {
		return other("rule not in standard form with respect to %s", pred)
	}
	if r.Head.Pred != pred {
		return other("head predicate %s is not %s", r.Head.Pred, pred)
	}
	if len(ad) != len(r.Head.Args) {
		return other("adornment %s does not fit arity %d", ad, len(r.Head.Args))
	}

	boundPos, freePos := ad.Bound(), ad.Free()
	varsAt := func(a ast.Atom, pos []int) []string {
		out := make([]string, len(pos))
		for i, p := range pos {
			out[i] = a.Args[p].Functor // standard form: always a variable
		}
		return out
	}
	info.BoundVars = varsAt(r.Head, boundPos)
	info.FreeVars = varsAt(r.Head, freePos)

	// Classify recursive occurrences.
	var edb []ast.Atom
	var badOcc bool
	for bi, a := range r.Body {
		if a.Pred != pred {
			edb = append(edb, a)
			continue
		}
		ob := varsAt(a, boundPos)
		of := varsAt(a, freePos)
		leftLin := strsEqual(ob, info.BoundVars)
		rightLin := strsEqual(of, info.FreeVars)
		switch {
		case leftLin && rightLin:
			return other("body literal %s repeats the head", a)
		case leftLin:
			info.LeftOccs = append(info.LeftOccs, bi)
			info.UVars = append(info.UVars, of...)
		case rightLin:
			if info.RightOcc >= 0 {
				return other("more than one right-linear occurrence")
			}
			info.RightOcc = bi
			info.VVars = ob
		default:
			badOcc = true
		}
	}
	if badOcc {
		return other("an occurrence of %s is neither left- nor right-linear", pred)
	}

	switch {
	case len(info.LeftOccs) == 0 && info.RightOcc < 0:
		info.Shape = ShapeExit
		info.Exit = edb
		return info
	case info.RightOcc < 0: // left-linear rule
		return assignConjunctions(info, edb, ShapeLeftLinear)
	case len(info.LeftOccs) == 0: // right-linear rule
		return assignConjunctions(info, edb, ShapeRightLinear)
	default:
		return assignConjunctions(info, edb, ShapeCombined)
	}
}

func strsEqual(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// assignConjunctions distributes the EDB atoms of the body into the shape's
// conjunctions by connected components of shared variables.
//
// Distinguished variables (X, U.., V, Y) are first mapped to their target
// conjunctions. A variable claimed by two different targets — e.g. a head
// bound variable that also appears in the right-linear occurrence, the
// situation of Example 5.1 — makes the rule ShapeOther: the definitions
// treat X, U.., V, Y as vectors whose cross-conjunction sharing is not
// covered by the theorems. Sharing within one target (e.g. U = V in the
// non-linear transitive closure rule, where center is the identity) is
// fine. A component of EDB atoms touching two different targets violates
// the required disjointness of the conjunctions and also yields ShapeOther
// (this is exactly what makes a pseudo-left-linear rule "pseudo",
// Definition 5.3).
func assignConjunctions(info RuleInfo, edb []ast.Atom, shape Shape) RuleInfo {
	// target ids per shape
	const (
		tLeft = iota
		tFirst
		tLast
		tCenter
		tRight
	)
	groupOf := map[string]int{}
	conflict := ""
	assign := func(vars []string, target int) {
		for _, v := range vars {
			if prev, ok := groupOf[v]; ok && prev != target && conflict == "" {
				conflict = v
			}
			groupOf[v] = target
		}
	}
	var float int // target for atoms touching no distinguished variable
	switch shape {
	case ShapeLeftLinear:
		assign(info.BoundVars, tLeft)
		assign(info.UVars, tLast)
		assign(info.FreeVars, tLast)
		float = tLast
	case ShapeRightLinear:
		assign(info.BoundVars, tFirst)
		assign(info.VVars, tFirst)
		assign(info.FreeVars, tRight)
		float = tFirst
	default: // combined
		assign(info.BoundVars, tLeft)
		assign(info.UVars, tCenter)
		assign(info.VVars, tCenter)
		assign(info.FreeVars, tRight)
		float = tCenter
	}
	if conflict != "" {
		info.Shape = ShapeOther
		info.Reason = fmt.Sprintf("variable %s is shared between two distinguished vectors", conflict)
		return info
	}

	comps := connectedComponents(edb)
	for _, comp := range comps {
		target := -1
		for _, ai := range comp {
			for _, v := range edb[ai].Vars() {
				g, ok := groupOf[v]
				if !ok {
					continue
				}
				if target == -1 {
					target = g
				} else if target != g {
					info.Shape = ShapeOther
					info.Reason = fmt.Sprintf(
						"EDB conjunction containing %s connects two distinguished variable groups", edb[ai])
					return info
				}
			}
		}
		if target == -1 {
			target = float
		}
		for _, ai := range comp {
			switch target {
			case tLeft:
				info.Left = append(info.Left, edb[ai])
			case tFirst:
				info.First = append(info.First, edb[ai])
			case tLast:
				info.Last = append(info.Last, edb[ai])
			case tCenter:
				info.Center = append(info.Center, edb[ai])
			case tRight:
				info.Right = append(info.Right, edb[ai])
			}
		}
	}
	info.Shape = shape
	return info
}

// connectedComponents groups atom indices by transitive variable sharing.
func connectedComponents(atoms []ast.Atom) [][]int {
	parent := make([]int, len(atoms))
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, b int) { parent[find(a)] = find(b) }

	byVar := map[string]int{}
	for i, a := range atoms {
		for _, v := range a.Vars() {
			if j, ok := byVar[v]; ok {
				union(i, j)
			} else {
				byVar[v] = i
			}
		}
	}
	groups := map[int][]int{}
	var roots []int
	for i := range atoms {
		r := find(i)
		if _, ok := groups[r]; !ok {
			roots = append(roots, r)
		}
		groups[r] = append(groups[r], i)
	}
	out := make([][]int, 0, len(roots))
	for _, r := range roots {
		out = append(out, groups[r])
	}
	return out
}
