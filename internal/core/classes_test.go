package core

import (
	"strings"
	"testing"

	"factorlog/internal/ast"
	"factorlog/internal/parser"
)

// withTGDs attaches constraints parsed from rule source.
func withTGDs(t *testing.T, a *Analysis, src string) *Analysis {
	t.Helper()
	if src == "" {
		return a
	}
	tgds := parser.MustParseProgram(src).Rules
	if _, err := a.WithConstraints(tgds); err != nil {
		t.Fatal(err)
	}
	return a
}

func TestSelectionPushingTransitiveClosure(t *testing.T) {
	a := analyzeSrc(t, `
		t(X, Y) :- t(X, W), t(W, Y).
		t(X, Y) :- e(X, W), t(W, Y).
		t(X, Y) :- t(X, W), e(W, Y).
		t(X, Y) :- e(X, Y).
	`, "t(5, Y)")
	ok, reason := SelectionPushing(a)
	if !ok {
		t.Fatalf("TC should be selection-pushing: %s", reason)
	}
	if got := Classify(a); got != ClassSelectionPushing {
		t.Errorf("Classify = %v", got)
	}
}

func TestSelectionPushingPmem(t *testing.T) {
	// The paper: "This program is selection-pushing" (Example 4.6).
	a := analyzeSrc(t, `
		pmem(X, [X|T]) :- p(X).
		pmem(X, [H|T]) :- pmem(X, T).
	`, "pmem(X, [x1, x2, x3])")
	ok, reason := SelectionPushing(a)
	if !ok {
		t.Fatalf("pmem should be selection-pushing: %s", reason)
	}
}

func TestSelectionPushingExample43RequiresConstraints(t *testing.T) {
	src := `
		p(X, Y) :- l1(X), p(X, U), c1(U, V), p(V, Y), r1(Y).
		p(X, Y) :- l2(X), p(X, U), c2(U, V), p(V, Y), r2(Y).
		p(X, Y) :- f(X, V), p(V, Y), r3(Y).
		p(X, Y) :- e(X, Y).
	`
	// Without EDB constraints, free_exit ⊄ r1 etc.: not selection-pushing.
	a := analyzeSrc(t, src, "p(5, Y)")
	if ok, _ := SelectionPushing(a); ok {
		t.Fatal("Example 4.3 should fail selection-pushing without constraints")
	}
	// Under the EDB regularities Example 4.3 presumes, it is.
	a = withTGDs(t, analyzeSrc(t, src, "p(5, Y)"), `
		r1(Y) :- e(X, Y).
		r2(Y) :- e(X, Y).
		r3(Y) :- e(X, Y).
		l1(X) :- l2(X).
		l2(X) :- l1(X).
		l1(X) :- f(X, V).
	`)
	ok, reason := SelectionPushing(a)
	if !ok {
		t.Fatalf("Example 4.3 with constraints: %s", reason)
	}
}

func TestSymmetricExample44(t *testing.T) {
	src := `
		p(X, Y) :- l1(X), p(X, U), p(X, V), c(U, V, W), p(W, Y), r1(Y).
		p(X, Y) :- l2(X), p(X, U), p(X, V), c(U, V, W), p(W, Y), r2(Y).
		p(X, Y) :- e(X, Y).
	`
	tgds := `
		r1(Y) :- e(X, Y).
		r2(Y) :- e(X, Y).
	`
	a := withTGDs(t, analyzeSrc(t, src, "p(5, Y)"), tgds)
	ok, reason := Symmetric(a)
	if !ok {
		t.Fatalf("Example 4.4 should be symmetric: %s", reason)
	}
	// Not selection-pushing: l1 and l2 are not equivalent.
	if ok, _ := SelectionPushing(a); ok {
		t.Error("Example 4.4 should not be selection-pushing (lefts differ)")
	}
	if got := Classify(a); got != ClassSymmetric {
		t.Errorf("Classify = %v", got)
	}
}

func TestSymmetricRejectsDifferentMiddles(t *testing.T) {
	src := `
		p(X, Y) :- l1(X), p(X, U), p(X, V), c1(U, V, W), p(W, Y), r1(Y).
		p(X, Y) :- l2(X), p(X, U), p(X, V), c2(U, V, W), p(W, Y), r2(Y).
		p(X, Y) :- e(X, Y).
	`
	a := withTGDs(t, analyzeSrc(t, src, "p(5, Y)"), `
		r1(Y) :- e(X, Y).
		r2(Y) :- e(X, Y).
	`)
	ok, reason := Symmetric(a)
	if ok {
		t.Fatal("different middle conjunctions should not be symmetric")
	}
	if !strings.Contains(reason, "middle") {
		t.Errorf("reason = %q", reason)
	}
}

func TestAnswerPropagatingExample45(t *testing.T) {
	src := `
		p(X, Y) :- l1(X), p(X, U), p(X, V), c(U, V, W), p(W, Y), r1(Y).
		p(X, Y) :- l2(X), p(X, U), p(X, V), c(U, V, W), p(W, Y), r2(Y).
		p(X, Y) :- f(X, V), p(V, Y), r3(Y).
		p(X, Y) :- e(X, Y).
	`
	tgds := `
		r1(Y) :- e(X, Y).
		r2(Y) :- e(X, Y).
		r3(Y) :- e(X, Y).
		l1(X) :- f(X, V).
		l2(X) :- f(X, V).
	`
	a := withTGDs(t, analyzeSrc(t, src, "p(5, Y)"), tgds)
	ok, reason := AnswerPropagating(a)
	if !ok {
		t.Fatalf("Example 4.5 should be answer-propagating: %s", reason)
	}
	// Not symmetric (a right-linear rule is present)...
	if ok, _ := Symmetric(a); ok {
		t.Error("Example 4.5 should not be symmetric")
	}
	// ...and not selection-pushing (lefts differ).
	if ok, _ := SelectionPushing(a); ok {
		t.Error("Example 4.5 should not be selection-pushing")
	}
	if got := Classify(a); got != ClassAnswerPropagating {
		t.Errorf("Classify = %v", got)
	}
}

func TestAnswerPropagatingLeftLinearBoundExit(t *testing.T) {
	// A left-linear rule whose bound conjunction does not cover bound_exit
	// fails answer propagation.
	src := `
		p(X, Y) :- lguard(X), p(X, W), d(W, Y).
		p(X, Y) :- e(X, Y).
	`
	a := analyzeSrc(t, src, "p(5, Y)")
	ok, reason := AnswerPropagating(a)
	if ok {
		t.Fatal("bound_exit ⊄ lguard: should fail")
	}
	if !strings.Contains(reason, "bound_exit") {
		t.Errorf("reason = %q", reason)
	}
	// Under the constraint lguard ⊇ π1(e), it passes.
	a = withTGDs(t, analyzeSrc(t, src, "p(5, Y)"), `lguard(X) :- e(X, Y).`)
	if ok, reason := AnswerPropagating(a); !ok {
		t.Errorf("with constraint: %s", reason)
	}
}

func TestSameGenerationNotFactorable(t *testing.T) {
	a := analyzeSrc(t, `
		sg(X, Y) :- flat(X, Y).
		sg(X, Y) :- up(X, U), sg(U, V), down(V, Y).
	`, "sg(john, Y)")
	if got := Classify(a); got != ClassUnknown {
		t.Errorf("same generation classified %v", got)
	}
	if ok, _ := SelectionPushing(a); ok {
		t.Error("sg selection-pushing?")
	}
	if ok, _ := Symmetric(a); ok {
		t.Error("sg symmetric?")
	}
	if ok, _ := AnswerPropagating(a); ok {
		t.Error("sg answer-propagating?")
	}
}

func TestClassStrings(t *testing.T) {
	if ClassSelectionPushing.String() != "selection-pushing" ||
		ClassSymmetric.String() != "symmetric" ||
		ClassAnswerPropagating.String() != "answer-propagating" ||
		ClassUnknown.String() != "unknown" {
		t.Error("Class strings wrong")
	}
	if ClassUnknown.Factorable() || !ClassSymmetric.Factorable() {
		t.Error("Factorable wrong")
	}
}

func TestWithConstraintsValidation(t *testing.T) {
	a := analyzeSrc(t, `
		t(X, Y) :- t(X, W), e(W, Y).
		t(X, Y) :- e(X, Y).
	`, "t(5, Y)")
	bad := []ast.Rule{parser.MustParseProgram(`r(Y, Z) :- e(X, Y).`).Rules[0]}
	if _, err := a.WithConstraints(bad); err == nil {
		t.Error("non-full TGD should be rejected")
	}
	badFact := []ast.Rule{ast.Fact(ast.NewAtom("r", ast.C("1")))}
	if _, err := a.WithConstraints(badFact); err == nil {
		t.Error("bodyless constraint should be rejected")
	}
}

func TestSelectionPushingLeftLinearOnly(t *testing.T) {
	// Pure left-linear recursion: no combined/right-linear rules, single
	// left conjunction — trivially selection-pushing (cf. Theorem 6.2's
	// first case).
	a := analyzeSrc(t, `
		t(X, Y) :- t(X, W), e(W, Y).
		t(X, Y) :- e(X, Y).
	`, "t(5, Y)")
	ok, reason := SelectionPushing(a)
	if !ok {
		t.Fatalf("left-linear TC: %s", reason)
	}
}

func TestSelectionPushingRightLinearOnly(t *testing.T) {
	// Pure right-linear recursion with empty right: free_exit ⊆ true holds
	// (cf. Theorem 6.2's second case).
	a := analyzeSrc(t, `
		t(X, Y) :- e(X, W), t(W, Y).
		t(X, Y) :- e(X, Y).
	`, "t(5, Y)")
	ok, reason := SelectionPushing(a)
	if !ok {
		t.Fatalf("right-linear TC: %s", reason)
	}
}

func TestNotStableReasons(t *testing.T) {
	// Two exit rules.
	a := analyzeSrc(t, `
		t(X, Y) :- t(X, W), e(W, Y).
		t(X, Y) :- e(X, Y).
		t(X, Y) :- f(X, Y).
	`, "t(5, Y)")
	if a.RLCStable() {
		t.Fatal("two exit rules should not be RLC-stable")
	}
	ok, reason := SelectionPushing(a)
	if ok || !strings.Contains(reason, "exit rules") {
		t.Errorf("reason = %q", reason)
	}
}
