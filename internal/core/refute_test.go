package core

import (
	"strings"
	"testing"

	"factorlog/internal/cq"
	"factorlog/internal/magic"
	"factorlog/internal/parser"
)

func containsAnswer(list []string, want string) bool {
	for _, a := range list {
		if a == want {
			return true
		}
	}
	return false
}

// The program of Theorem 3.1's undecidability reduction, with q1/q2 as
// simple IDB views so the program is self-contained.
func thm31Program() string {
	return `
		t(X, Y, Z) :- a1(X), q1(Y, Z).
		t(X, Y, Z) :- a2(X), q2(Y, Z).
		q1(Y, Z) :- b1(Y, Z).
		q2(Y, Z) :- b2(Y, Z).
	`
}

// TestTheorem31SplitXYZ replays the paper's first counterexample: factoring
// t into t1'(X,Y) and t2'(Z) is refuted by the EDB a1(1), q1(2,3), q1(4,5)
// (the factored program also computes t(1,2,5) and t(1,4,3)).
func TestTheorem31SplitXYZ(t *testing.T) {
	p := parser.MustParseProgram(thm31Program())
	query := parser.MustParseAtom("t(X, Y, Z)")
	s := Split{Pred: "t", Left: []int{0, 1}, Right: []int{2}, LeftName: "tl", RightName: "tr"}
	facts, err := parser.Parse(`a1(1). b1(2, 3). b1(4, 5).`)
	if err != nil {
		t.Fatal(err)
	}
	ce, err := CheckSplitOnEDB(p, query, s, facts.Facts, 0)
	if err != nil {
		t.Fatal(err)
	}
	if ce == nil {
		t.Fatal("paper's counterexample not detected")
	}
	want := map[string]bool{"(1,2,5)": true, "(1,4,3)": true}
	if len(ce.Spurious) != 2 {
		t.Fatalf("spurious = %v", ce.Spurious)
	}
	for _, a := range ce.Spurious {
		if !want[a] {
			t.Errorf("unexpected spurious answer %s", a)
		}
	}
	if len(ce.Missing) != 0 {
		t.Errorf("missing = %v (P' only adds rules)", ce.Missing)
	}
}

// TestTheorem31SplitXvsYZ: factoring into t1(X), t2(Y,Z) is safe iff a1=a2
// or q1=q2; the refuter finds a counterexample in the general case.
func TestTheorem31SplitXvsYZ(t *testing.T) {
	p := parser.MustParseProgram(thm31Program())
	query := parser.MustParseAtom("t(X, Y, Z)")
	s := Split{Pred: "t", Left: []int{0}, Right: []int{1, 2}, LeftName: "t1", RightName: "t2"}

	// Hand EDB: a1 and a2 differ, q1 and q2 differ.
	facts, err := parser.Parse(`a1(1). a2(2). b1(3, 4). b2(5, 6).`)
	if err != nil {
		t.Fatal(err)
	}
	ce, err := CheckSplitOnEDB(p, query, s, facts.Facts, 0)
	if err != nil {
		t.Fatal(err)
	}
	if ce == nil {
		t.Fatal("differing a1/a2 with differing q1/q2 should break the factoring")
	}

	// When a1 = a2, the factoring is safe on that EDB.
	facts2, err := parser.Parse(`a1(1). a2(1). b1(3, 4). b2(5, 6).`)
	if err != nil {
		t.Fatal(err)
	}
	ce, err = CheckSplitOnEDB(p, query, s, facts2.Facts, 0)
	if err != nil {
		t.Fatal(err)
	}
	if ce != nil {
		t.Errorf("a1=a2 should factor on this EDB, got %s", ce)
	}

	// The random refuter finds a counterexample too.
	found, err := RefuteSplit(p, query, s, RefuteOptions{Trials: 300, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if found == nil {
		t.Error("refuter failed to find a counterexample")
	}
}

// TestRefuterInconclusiveOnFactorableMagicTC: the Magic program of the
// three-rule transitive closure factors (Theorem 4.1); the refuter must not
// find any counterexample.
func TestRefuterInconclusiveOnFactorableMagicTC(t *testing.T) {
	p := parser.MustParseProgram(`
		t(X, Y) :- t(X, W), t(W, Y).
		t(X, Y) :- e(X, W), t(W, Y).
		t(X, Y) :- t(X, W), e(W, Y).
		t(X, Y) :- e(X, Y).
	`)
	m, err := magic.FromQuery(p, parser.MustParseAtom("t(5, Y)"))
	if err != nil {
		t.Fatal(err)
	}
	s := Split{Pred: "t_bf", Left: []int{0}, Right: []int{1}, LeftName: "bt", RightName: "ft"}
	ce, err := RefuteSplit(m.Program, m.Query, s, RefuteOptions{Trials: 150, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	if ce != nil {
		t.Errorf("factorable Magic program refuted: %s", ce)
	}
}

// TestExample43ViolatingEDBs replays the two EDB instances of Example 4.3:
// each violates one selection-pushing condition and produces exactly the
// spurious answer the paper derives (8, respectively 7).
func TestExample43ViolatingEDBs(t *testing.T) {
	p := parser.MustParseProgram(`
		p(X, Y) :- l1(X), p(X, U), c1(U, V), p(V, Y), r1(Y).
		p(X, Y) :- l2(X), p(X, U), c2(U, V), p(V, Y), r2(Y).
		p(X, Y) :- f(X, V), p(V, Y), r3(Y).
		p(X, Y) :- e(X, Y).
	`)
	m, err := magic.FromQuery(p, parser.MustParseAtom("p(5, Y)"))
	if err != nil {
		t.Fatal(err)
	}
	s := Split{Pred: "p_bf", Left: []int{0}, Right: []int{1}, LeftName: "bp", RightName: "fp"}

	// EDB 1: violates bound_first ⊆ l1 (f(5,1) but no l1(5)); the paper
	// derives the spurious answer 8. (The EDB also has r3 empty, violating
	// free_exit ⊆ r3, so 7 is spurious as well — the paper highlights 8.)
	edb1, err := parser.Parse(`f(5, 1). e(5, 6). e(1, 7). e(2, 8). l1(1). c1(6, 2). r1(7). r1(8).`)
	if err != nil {
		t.Fatal(err)
	}
	ce, err := CheckSplitOnEDB(m.Program, m.Query, s, edb1.Facts, 0)
	if err != nil {
		t.Fatal(err)
	}
	if ce == nil {
		t.Fatal("EDB 1 should refute the factoring")
	}
	if !containsAnswer(ce.Spurious, "(8)") {
		t.Errorf("EDB 1 spurious = %v, want to include (8)", ce.Spurious)
	}
	// Adding l1(5) makes 8 a genuine answer (the paper: "8 is a valid
	// answer if l1(5) is added"); it no longer appears as spurious.
	edb1fix := append(edb1.Facts, parser.MustParseAtom("l1(5)"))
	ce, err = CheckSplitOnEDB(m.Program, m.Query, s, edb1fix, 0)
	if err != nil {
		t.Fatal(err)
	}
	if ce != nil && containsAnswer(ce.Spurious, "(8)") {
		t.Errorf("with l1(5), 8 is a genuine answer; got %s", ce)
	}

	// EDB 2: violates free_exit ⊆ r1 (e(1,7) but no r1(7)); spurious 7.
	edb2, err := parser.Parse(`f(5, 1). e(5, 6). e(1, 7). l1(5). c1(6, 1).`)
	if err != nil {
		t.Fatal(err)
	}
	ce, err = CheckSplitOnEDB(m.Program, m.Query, s, edb2.Facts, 0)
	if err != nil {
		t.Fatal(err)
	}
	if ce == nil {
		t.Fatal("EDB 2 should refute the factoring")
	}
	if len(ce.Spurious) != 1 || ce.Spurious[0] != "(7)" {
		t.Errorf("EDB 2 spurious = %v, want [(7)]", ce.Spurious)
	}
}

// TestExample43EDBsViolateTheConstraints: the same EDBs, checked against
// the TGD constraints under which Example 4.3 is selection-pushing, are
// flagged as violating exactly the conditions the paper names.
func TestExample43EDBsViolateTheConstraints(t *testing.T) {
	tgds := parser.MustParseProgram(`
		r1(Y) :- e(X, Y).
		l1(X) :- f(X, V).
	`).Rules

	edb1, _ := parser.Parse(`f(5, 1). e(5, 6). e(1, 7). e(2, 8). l1(1). c1(6, 2). r1(7). r1(8).`)
	missing := cq.MissingUnderTGDs(edb1.Facts, tgds)
	foundL1 := false
	for _, m := range missing {
		if m.String() == "l1(5)" {
			foundL1 = true
		}
	}
	if !foundL1 {
		t.Errorf("EDB 1 should be missing l1(5): %v", missing)
	}

	edb2, _ := parser.Parse(`f(5, 1). e(5, 6). e(1, 7). l1(5). c1(6, 1).`)
	missing = cq.MissingUnderTGDs(edb2.Facts, tgds)
	foundR1 := false
	for _, m := range missing {
		if m.String() == "r1(7)" {
			foundR1 = true
		}
	}
	if !foundR1 {
		t.Errorf("EDB 2 should be missing r1(7): %v", missing)
	}
}

func TestRefuteSplitRejectsFunctionSymbols(t *testing.T) {
	p := parser.MustParseProgram(`
		pmem(X, [X|T]) :- p(X).
		pmem(X, [H|T]) :- pmem(X, T).
	`)
	s := Split{Pred: "pmem", Left: []int{0}, Right: []int{1}, LeftName: "a", RightName: "b"}
	_, err := RefuteSplit(p, parser.MustParseAtom("pmem(X, L)"), s, RefuteOptions{Trials: 5})
	if err == nil {
		t.Error("function symbols should be rejected")
	}
}

func TestRefuteSplitUnknownPredicate(t *testing.T) {
	p := parser.MustParseProgram(`a(X) :- b(X).`)
	s := Split{Pred: "zzz", Left: []int{0}, Right: []int{1}, LeftName: "l", RightName: "r"}
	if _, err := RefuteSplit(p, parser.MustParseAtom("a(X)"), s, RefuteOptions{Trials: 1}); err == nil {
		t.Error("unknown predicate should error")
	}
}

func TestCounterexampleString(t *testing.T) {
	facts, err := parser.Parse(`e(1, 2). r1(7).`)
	if err != nil {
		t.Fatal(err)
	}
	ce := &Counterexample{Facts: facts.Facts, Spurious: []string{"(8)"}, Missing: []string{"(9)"}}
	s := ce.String()
	for _, frag := range []string{"e(1,2).", "r1(7).", "spurious", "(8)", "missing", "(9)"} {
		if !strings.Contains(s, frag) {
			t.Errorf("String missing %q: %s", frag, s)
		}
	}
}
