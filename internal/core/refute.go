package core

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"factorlog/internal/ast"
	"factorlog/internal/engine"
)

// Factorability is undecidable (Theorem 3.1), so no procedure can confirm
// it in general; this file provides the complementary direction: a
// randomized search for EDBs on which a candidate factoring changes the
// query's answers. A returned counterexample is a definitive "no"; nil is
// inconclusive.

// RefuteOptions configures the randomized search.
type RefuteOptions struct {
	// Trials is the number of random EDBs tried (default 200).
	Trials int
	// MaxDomain bounds the constant domain size (default 5; the search
	// sweeps domain sizes 2..MaxDomain).
	MaxDomain int
	// Seed makes the search reproducible.
	Seed int64
	// MaxFacts bounds each evaluation (default 200000).
	MaxFacts int
}

func (o *RefuteOptions) defaults() {
	if o.Trials == 0 {
		o.Trials = 200
	}
	if o.MaxDomain == 0 {
		o.MaxDomain = 5
	}
	if o.MaxFacts == 0 {
		o.MaxFacts = 200_000
	}
}

// Counterexample is an EDB on which the factored program P' disagrees with
// P on the query.
type Counterexample struct {
	// Facts is the EDB, as ground atoms.
	Facts []ast.Atom
	// Spurious are answers produced by P' but not P; Missing the converse.
	// (For the P' of Section 3, Missing is provably empty — P' only adds
	// rules — but the refuter reports both for robustness.)
	Spurious []string
	Missing  []string
}

func (c *Counterexample) String() string {
	var b strings.Builder
	b.WriteString("EDB:")
	for _, f := range c.Facts {
		b.WriteString(" ")
		b.WriteString(f.String())
		b.WriteString(".")
	}
	if len(c.Spurious) > 0 {
		fmt.Fprintf(&b, " spurious answers: %v", c.Spurious)
	}
	if len(c.Missing) > 0 {
		fmt.Fprintf(&b, " missing answers: %v", c.Missing)
	}
	return b.String()
}

// RefuteSplit searches for an EDB witnessing that (P, query, s.Pred) does
// NOT have the factoring property for the given split: it compares P with
// the P' of Section 3 (P plus the three factoring rules) on random EDBs.
// It returns a counterexample, or nil if none was found (inconclusive).
//
// The program must be function-free (Datalog): random EDB generation over
// Herbrand universes with function symbols does not terminate usefully.
func RefuteSplit(p *ast.Program, query ast.Atom, s Split, opts RefuteOptions) (*Counterexample, error) {
	opts.defaults()
	arity, err := predArityIn(p, s.Pred)
	if err != nil {
		return nil, err
	}
	pPrime, err := AddFactoringRules(p, s, arity)
	if err != nil {
		return nil, err
	}
	if err := requireDatalog(p); err != nil {
		return nil, err
	}

	schema := edbSchema(p)
	consts := append(queryConstants(query), programConstants(p)...)
	rng := rand.New(rand.NewSource(opts.Seed))

	for trial := 0; trial < opts.Trials; trial++ {
		domain := 2 + trial%(opts.MaxDomain-1)
		facts := randomEDB(rng, schema, domain, consts)
		ce, err := compareOnEDB(p, pPrime, query, facts, opts.MaxFacts)
		if err != nil {
			return nil, fmt.Errorf("trial %d: %w", trial, err)
		}
		if ce != nil {
			ce.Facts = facts
			return ce, nil
		}
	}
	return nil, nil
}

// CheckSplitOnEDB compares P and P' on one specific EDB, returning a
// counterexample if they disagree on the query. Used to replay the paper's
// hand-constructed EDBs (Example 4.3, Theorem 3.1).
func CheckSplitOnEDB(p *ast.Program, query ast.Atom, s Split, facts []ast.Atom, maxFacts int) (*Counterexample, error) {
	arity, err := predArityIn(p, s.Pred)
	if err != nil {
		return nil, err
	}
	pPrime, err := AddFactoringRules(p, s, arity)
	if err != nil {
		return nil, err
	}
	if maxFacts == 0 {
		maxFacts = 200_000
	}
	ce, err := compareOnEDB(p, pPrime, query, facts, maxFacts)
	if err != nil {
		return nil, err
	}
	if ce != nil {
		ce.Facts = facts
	}
	return ce, nil
}

func compareOnEDB(p, pPrime *ast.Program, query ast.Atom, facts []ast.Atom, maxFacts int) (*Counterexample, error) {
	eval := func(prog *ast.Program) (map[string]bool, error) {
		db := engine.NewDB()
		if err := engine.LoadFacts(db, facts); err != nil {
			return nil, err
		}
		if _, err := engine.Eval(prog, db, engine.Options{MaxFacts: maxFacts}); err != nil {
			return nil, err
		}
		return engine.AnswerSet(db, query)
	}
	base, err := eval(p)
	if err != nil {
		return nil, err
	}
	primed, err := eval(pPrime)
	if err != nil {
		return nil, err
	}
	var spurious, missing []string
	for a := range primed {
		if !base[a] {
			spurious = append(spurious, a)
		}
	}
	for a := range base {
		if !primed[a] {
			missing = append(missing, a)
		}
	}
	if len(spurious) == 0 && len(missing) == 0 {
		return nil, nil
	}
	sort.Strings(spurious)
	sort.Strings(missing)
	return &Counterexample{Spurious: spurious, Missing: missing}, nil
}

func predArityIn(p *ast.Program, pred string) (int, error) {
	arities, err := p.PredArities()
	if err != nil {
		return 0, err
	}
	arity, ok := arities[pred]
	if !ok {
		return 0, fmt.Errorf("predicate %s does not occur in the program", pred)
	}
	return arity, nil
}

func requireDatalog(p *ast.Program) error {
	var check func(t ast.Term) bool
	check = func(t ast.Term) bool {
		if t.Kind == ast.Compound {
			return false
		}
		return true
	}
	for _, r := range p.Rules {
		for _, a := range append([]ast.Atom{r.Head}, r.Body...) {
			for _, t := range a.Args {
				if !check(t) {
					return fmt.Errorf("rule %s contains function symbols; the refuter requires Datalog", r)
				}
			}
		}
	}
	return nil
}

// edbSchema returns pred -> arity for the EDB predicates of p.
func edbSchema(p *ast.Program) map[string]int {
	arities, _ := p.PredArities()
	out := map[string]int{}
	for pred := range p.EDBPreds() {
		out[pred] = arities[pred]
	}
	return out
}

// queryConstants collects the constants of the query atom; they are always
// included in the random domain so bound arguments can be hit.
func queryConstants(query ast.Atom) []string {
	var out []string
	for _, t := range query.Args {
		if t.IsConst() {
			out = append(out, t.Functor)
		}
	}
	return out
}

// programConstants collects the constants occurring in the program's rules
// (e.g. a magic seed's bound value); the random domain must include them or
// goal-directed programs never fire.
func programConstants(p *ast.Program) []string {
	seen := map[string]bool{}
	var out []string
	var walk func(t ast.Term)
	walk = func(t ast.Term) {
		switch t.Kind {
		case ast.Const:
			if !seen[t.Functor] {
				seen[t.Functor] = true
				out = append(out, t.Functor)
			}
		case ast.Compound:
			for _, a := range t.Args {
				walk(a)
			}
		}
	}
	for _, r := range p.Rules {
		for _, a := range append([]ast.Atom{r.Head}, r.Body...) {
			for _, t := range a.Args {
				walk(t)
			}
		}
	}
	sort.Strings(out)
	return out
}

// randomEDB generates a random set of facts: for each EDB predicate, a
// random subset of tuples over a domain of the given size plus the query
// constants.
func randomEDB(rng *rand.Rand, schema map[string]int, domain int, extraConsts []string) []ast.Atom {
	var consts []string
	for i := 0; i < domain; i++ {
		consts = append(consts, fmt.Sprintf("c%d", i))
	}
	consts = append(consts, extraConsts...)

	preds := make([]string, 0, len(schema))
	for p := range schema {
		preds = append(preds, p)
	}
	sort.Strings(preds)

	var facts []ast.Atom
	for _, pred := range preds {
		arity := schema[pred]
		n := rng.Intn(2*len(consts) + 1)
		for i := 0; i < n; i++ {
			args := make([]ast.Term, arity)
			for j := range args {
				args[j] = ast.C(consts[rng.Intn(len(consts))])
			}
			facts = append(facts, ast.Atom{Pred: pred, Args: args})
		}
	}
	return facts
}
