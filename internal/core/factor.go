package core

import (
	"fmt"
	"sort"

	"factorlog/internal/ast"
)

// Split describes a (nontrivial) factoring of a predicate: the argument
// positions of Pred are partitioned into Left and Right, producing two
// predicates of strictly lower arity (Section 3 of the paper).
type Split struct {
	Pred      string
	Left      []int // argument positions going to LeftName
	Right     []int // argument positions going to RightName
	LeftName  string
	RightName string
}

// Validate checks that the split is well-formed and nontrivial for the
// given arity: Left and Right are disjoint, cover all positions, and
// neither side is empty (a side holding all arguments is the trivial
// factoring the paper sets aside).
func (s Split) Validate(arity int) error {
	if s.Pred == "" || s.LeftName == "" || s.RightName == "" {
		return fmt.Errorf("split has empty predicate names")
	}
	if s.LeftName == s.RightName {
		return fmt.Errorf("split halves share the name %s", s.LeftName)
	}
	seen := map[int]bool{}
	for _, p := range append(append([]int{}, s.Left...), s.Right...) {
		if p < 0 || p >= arity {
			return fmt.Errorf("split position %d out of range for arity %d", p, arity)
		}
		if seen[p] {
			return fmt.Errorf("split position %d repeated", p)
		}
		seen[p] = true
	}
	if len(seen) != arity {
		return fmt.Errorf("split covers %d of %d positions", len(seen), arity)
	}
	if len(s.Left) == 0 || len(s.Right) == 0 {
		return fmt.Errorf("trivial split: one side has all %d arguments", arity)
	}
	return nil
}

// project builds the atom for one side of the split.
func project(a ast.Atom, name string, pos []int) ast.Atom {
	args := make([]ast.Term, len(pos))
	for i, p := range pos {
		args[i] = a.Args[p]
	}
	return ast.Atom{Pred: name, Args: args}
}

// Apply performs the factoring transformation of Proposition 3.1: every
// body literal p(t1..tn) is replaced by the pair of projected literals, and
// every rule with head p is replaced by two rules (same body) whose heads
// are the projections. The result does not contain p.
//
// Apply is purely syntactic; whether the result computes the same answers
// is exactly the factoring property, certified by the class tests or
// refuted by RefuteSplit.
func Apply(p *ast.Program, s Split) (*ast.Program, error) {
	arity := -1
	scan := func(a ast.Atom) {
		if a.Pred == s.Pred {
			arity = len(a.Args)
		}
	}
	for _, r := range p.Rules {
		scan(r.Head)
		for _, b := range r.Body {
			scan(b)
		}
	}
	if arity == -1 {
		return nil, fmt.Errorf("predicate %s does not occur in the program", s.Pred)
	}
	if err := s.Validate(arity); err != nil {
		return nil, err
	}

	out := &ast.Program{}
	for _, r := range p.Rules {
		body := make([]ast.Atom, 0, len(r.Body)+2)
		for _, b := range r.Body {
			if b.Pred == s.Pred {
				body = append(body, project(b, s.LeftName, s.Left), project(b, s.RightName, s.Right))
			} else {
				body = append(body, b)
			}
		}
		if r.Head.Pred == s.Pred {
			out.Add(ast.Rule{Head: project(r.Head, s.LeftName, s.Left), Body: body})
			out.Add(ast.Rule{Head: project(r.Head, s.RightName, s.Right), Body: cloneAtoms(body)})
		} else {
			out.Add(ast.Rule{Head: r.Head.Clone(), Body: body})
		}
	}
	return out, nil
}

func cloneAtoms(atoms []ast.Atom) []ast.Atom {
	out := make([]ast.Atom, len(atoms))
	for i, a := range atoms {
		out[i] = a.Clone()
	}
	return out
}

// AddFactoringRules returns P' as in the definition of the factoring
// property (Section 3): P plus the three rules
//
//	p1(Xi..) :- p(X1..Xn).
//	p2(Xj..) :- p(X1..Xn).
//	p(X1..Xn) :- p1(Xi..), p2(Xj..).
//
// (P, Q, p) has the factoring property iff P and P' compute the same
// answers to Q on every EDB.
func AddFactoringRules(p *ast.Program, s Split, arity int) (*ast.Program, error) {
	if err := s.Validate(arity); err != nil {
		return nil, err
	}
	gen := ast.NewFreshGenProgram(p)
	args := make([]ast.Term, arity)
	for i := range args {
		args[i] = ast.V(gen.Fresh("X"))
	}
	full := ast.Atom{Pred: s.Pred, Args: args}
	left := project(full, s.LeftName, s.Left)
	right := project(full, s.RightName, s.Right)

	out := p.Clone()
	out.Add(
		ast.Rule{Head: left, Body: []ast.Atom{full}},
		ast.Rule{Head: right, Body: []ast.Atom{full}},
		ast.Rule{Head: full, Body: []ast.Atom{left, right}},
	)
	return out, nil
}

// BoundFreeSplit builds the canonical split of an adorned predicate into
// its bound part (b<base>) and free part (f<base>), as used when factoring
// Magic programs (Theorems 4.1-4.3): t_bf splits into bt(X) and ft(Y).
// Name collisions with existing predicates are resolved by appending '_'.
func BoundFreeSplit(adornedPred string, taken map[string]bool) (Split, error) {
	base, ad, ok := ast.SplitAdorned(adornedPred)
	if !ok {
		return Split{}, fmt.Errorf("%s is not an adorned predicate name", adornedPred)
	}
	bound, free := ad.Bound(), ad.Free()
	if len(bound) == 0 || len(free) == 0 {
		return Split{}, fmt.Errorf("adornment %s of %s admits only a trivial factoring", ad, base)
	}
	fresh := func(name string) string {
		for taken[name] {
			name += "_"
		}
		return name
	}
	s := Split{
		Pred:      adornedPred,
		Left:      bound,
		Right:     free,
		LeftName:  fresh("b" + base),
		RightName: fresh("f" + base),
	}
	sort.Ints(s.Left)
	sort.Ints(s.Right)
	return s, nil
}
