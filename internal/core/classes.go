package core

import (
	"fmt"

	"factorlog/internal/cq"
)

// This file implements Definition 4.5's auxiliary conjunctive queries and
// the three factorable classes:
//
//	selection-pushing   (Definition 4.6, Theorem 4.1)
//	symmetric           (Definition 4.7, Theorem 4.2)
//	answer-propagating  (Definition 4.8, Theorem 4.3)
//
// All containments are Chandra-Merlin tableau containments over the
// conjunctions extracted by the classifier; `equal` literals introduced by
// the standard-form translation are eliminated inside package cq.

// BoundExit is the conjunction bound_exit(X) :- exit(X,Y) of Definition 4.5.
func (ri RuleInfo) BoundExit() cq.CQ { return cq.FromVars(ri.BoundVars, ri.Exit) }

// FreeExit is free_exit(Y) :- exit(X,Y).
func (ri RuleInfo) FreeExit() cq.CQ { return cq.FromVars(ri.FreeVars, ri.Exit) }

// BoundFirst is bound_first(X) :- first(X,V), defined for right-linear rules.
func (ri RuleInfo) BoundFirst() cq.CQ { return cq.FromVars(ri.BoundVars, ri.First) }

// FreeLast is free_last(Y) :- last(U.., Y), defined for left-linear rules.
func (ri RuleInfo) FreeLast() cq.CQ { return cq.FromVars(ri.FreeVars, ri.Last) }

// Bound is bound(X) :- left(X), defined for left-linear and combined rules.
func (ri RuleInfo) Bound() cq.CQ { return cq.FromVars(ri.BoundVars, ri.Left) }

// Free is free(Y) :- right(Y), defined for right-linear and combined rules.
func (ri RuleInfo) Free() cq.CQ { return cq.FromVars(ri.FreeVars, ri.Right) }

// Middle is middle(U,V) :- center(U,V), defined for combined rules. Its head
// concatenates the U vectors (in body order) and V.
func (ri RuleInfo) Middle() cq.CQ {
	head := append(append([]string{}, ri.UVars...), ri.VVars...)
	return cq.FromVars(head, ri.Center)
}

// contained and equivalent test containment relative to the analysis's EDB
// constraints (chase-based; plain tableau containment when none are set).
func (a *Analysis) contained(q1, q2 cq.CQ) bool {
	return cq.ContainedUnder(q1, q2, a.Constraints)
}

func (a *Analysis) equivalent(q1, q2 cq.CQ) bool {
	return cq.EquivalentUnder(q1, q2, a.Constraints)
}

// Class identifies which factorability theorem applies.
type Class int

const (
	// ClassUnknown: no sufficient condition of Section 4 applies. The Magic
	// program may still be factorable (the property is undecidable,
	// Theorem 3.1), but none of Theorems 4.1-4.3 certifies it.
	ClassUnknown Class = iota
	// ClassSelectionPushing: Definition 4.6 holds (Theorem 4.1).
	ClassSelectionPushing
	// ClassSymmetric: Definition 4.7 holds (Theorem 4.2).
	ClassSymmetric
	// ClassAnswerPropagating: Definition 4.8 holds (Theorem 4.3).
	ClassAnswerPropagating
)

func (c Class) String() string {
	switch c {
	case ClassSelectionPushing:
		return "selection-pushing"
	case ClassSymmetric:
		return "symmetric"
	case ClassAnswerPropagating:
		return "answer-propagating"
	default:
		return "unknown"
	}
}

// Factorable reports whether the class certifies factoring of the Magic
// program.
func (c Class) Factorable() bool { return c != ClassUnknown }

// SelectionPushing tests Definition 4.6. The program must be RLC-stable;
// the returned reason explains a negative verdict.
func SelectionPushing(a *Analysis) (bool, string) {
	if !a.RLCStable() {
		return false, notStableReason(a)
	}
	freeExit := a.ExitRule().FreeExit()
	// Condition 1: free_exit contained in "free" of every combined or
	// right-linear rule.
	for i, ri := range a.Rules {
		if ri.Shape == ShapeCombined || ri.Shape == ShapeRightLinear {
			if !a.contained(freeExit, ri.Free()) {
				return false, fmt.Sprintf("free_exit not contained in free of rule %d", i+1)
			}
		}
	}
	// Condition 2: all "left" conjunctions pairwise equivalent; every
	// bound_first contained in every "left".
	var lefts []int  // rules with a left conjunction (LL or combined)
	var firsts []int // rules with a first conjunction (RL)
	for i, ri := range a.Rules {
		switch ri.Shape {
		case ShapeLeftLinear, ShapeCombined:
			lefts = append(lefts, i)
		case ShapeRightLinear:
			firsts = append(firsts, i)
		}
	}
	for x := 0; x < len(lefts); x++ {
		for y := x + 1; y < len(lefts); y++ {
			if !a.equivalent(a.Rules[lefts[x]].Bound(), a.Rules[lefts[y]].Bound()) {
				return false, fmt.Sprintf("left conjunctions of rules %d and %d are not equivalent",
					lefts[x]+1, lefts[y]+1)
			}
		}
	}
	for _, f := range firsts {
		for _, l := range lefts {
			if !a.contained(a.Rules[f].BoundFirst(), a.Rules[l].Bound()) {
				return false, fmt.Sprintf("bound_first of rule %d not contained in bound of rule %d",
					f+1, l+1)
			}
		}
	}
	return true, ""
}

// Symmetric tests Definition 4.7: an RLC-stable program whose recursive
// rules are all combined, with free_exit contained in each free and all
// middle conjunctions pairwise equivalent.
func Symmetric(a *Analysis) (bool, string) {
	if !a.RLCStable() {
		return false, notStableReason(a)
	}
	var combined []int
	for i, ri := range a.Rules {
		switch ri.Shape {
		case ShapeCombined:
			combined = append(combined, i)
		case ShapeExit:
		default:
			return false, fmt.Sprintf("rule %d is %s, not combined", i+1, ri.Shape)
		}
	}
	freeExit := a.ExitRule().FreeExit()
	for _, i := range combined {
		if !a.contained(freeExit, a.Rules[i].Free()) {
			return false, fmt.Sprintf("free_exit not contained in free of rule %d", i+1)
		}
	}
	for x := 0; x < len(combined); x++ {
		for y := x + 1; y < len(combined); y++ {
			if !a.equivalent(a.Rules[combined[x]].Middle(), a.Rules[combined[y]].Middle()) {
				return false, fmt.Sprintf("middle conjunctions of rules %d and %d are not equivalent",
					combined[x]+1, combined[y]+1)
			}
		}
	}
	return true, ""
}

// AnswerPropagating tests Definition 4.8 on an RLC-stable program.
func AnswerPropagating(a *Analysis) (bool, string) {
	if !a.RLCStable() {
		return false, notStableReason(a)
	}
	exit := a.ExitRule()
	boundExit, freeExit := exit.BoundExit(), exit.FreeExit()

	var lls, rls, combs []int
	for i, ri := range a.Rules {
		switch ri.Shape {
		case ShapeLeftLinear:
			lls = append(lls, i)
		case ShapeRightLinear:
			rls = append(rls, i)
		case ShapeCombined:
			combs = append(combs, i)
		}
	}

	// Per-rule conditions.
	for _, i := range lls {
		if !a.contained(boundExit, a.Rules[i].Bound()) {
			return false, fmt.Sprintf("bound_exit not contained in bound of left-linear rule %d", i+1)
		}
	}
	for _, i := range rls {
		if !a.contained(freeExit, a.Rules[i].Free()) {
			return false, fmt.Sprintf("free_exit not contained in free of right-linear rule %d", i+1)
		}
	}
	for _, i := range combs {
		if !a.contained(freeExit, a.Rules[i].Free()) {
			return false, fmt.Sprintf("free_exit not contained in free of combined rule %d", i+1)
		}
	}

	// Pairs of combined rules: middles equivalent.
	for x := 0; x < len(combs); x++ {
		for y := x + 1; y < len(combs); y++ {
			if !a.equivalent(a.Rules[combs[x]].Middle(), a.Rules[combs[y]].Middle()) {
				return false, fmt.Sprintf("middle conjunctions of rules %d and %d are not equivalent",
					combs[x]+1, combs[y]+1)
			}
		}
	}
	// Pairs (left-linear, combined): bound_LL contained in bound_comb, and
	// free_last contained in free_comb.
	for _, l := range lls {
		for _, c := range combs {
			if !a.contained(a.Rules[l].Bound(), a.Rules[c].Bound()) {
				return false, fmt.Sprintf("bound of rule %d not contained in bound of rule %d", l+1, c+1)
			}
			if !a.contained(a.Rules[l].FreeLast(), a.Rules[c].Free()) {
				return false, fmt.Sprintf("free_last of rule %d not contained in free of rule %d", l+1, c+1)
			}
		}
	}
	// Pairs (right-linear, combined): bound_first contained in bound_comb.
	for _, r := range rls {
		for _, c := range combs {
			if !a.contained(a.Rules[r].BoundFirst(), a.Rules[c].Bound()) {
				return false, fmt.Sprintf("bound_first of rule %d not contained in bound of rule %d", r+1, c+1)
			}
		}
	}
	// Pairs (right-linear, left-linear): bound_first contained in bound_LL
	// and free_last contained in free_RL.
	for _, r := range rls {
		for _, l := range lls {
			if !a.contained(a.Rules[r].BoundFirst(), a.Rules[l].Bound()) {
				return false, fmt.Sprintf("bound_first of rule %d not contained in bound of rule %d", r+1, l+1)
			}
			if !a.contained(a.Rules[l].FreeLast(), a.Rules[r].Free()) {
				return false, fmt.Sprintf("free_last of rule %d not contained in free of rule %d", l+1, r+1)
			}
		}
	}
	return true, ""
}

// Classify returns the first class of Section 4 that certifies
// factorability, testing selection-pushing, then symmetric, then
// answer-propagating.
func Classify(a *Analysis) Class {
	if ok, _ := SelectionPushing(a); ok {
		return ClassSelectionPushing
	}
	if ok, _ := Symmetric(a); ok {
		return ClassSymmetric
	}
	if ok, _ := AnswerPropagating(a); ok {
		return ClassAnswerPropagating
	}
	return ClassUnknown
}

func notStableReason(a *Analysis) string {
	if len(a.ExitRules) != 1 {
		return fmt.Sprintf("not RLC-stable: %d exit rules (need exactly 1)", len(a.ExitRules))
	}
	for i, ri := range a.Rules {
		if ri.Shape == ShapeOther {
			return fmt.Sprintf("not RLC-stable: rule %d: %s", i+1, ri.Reason)
		}
	}
	return "not RLC-stable"
}
