package core_test

import (
	"fmt"

	"factorlog/internal/core"
	"factorlog/internal/magic"
	"factorlog/internal/parser"
)

// ExampleClassify reproduces the paper's flagship classification: the
// three-rule transitive closure with a single-source selection is
// selection-pushing.
func ExampleClassify() {
	p := parser.MustParseProgram(`
		t(X, Y) :- t(X, W), t(W, Y).
		t(X, Y) :- e(X, W), t(W, Y).
		t(X, Y) :- t(X, W), e(W, Y).
		t(X, Y) :- e(X, Y).
	`)
	a, err := core.AnalyzeQuery(p, parser.MustParseAtom("t(5, Y)"))
	if err != nil {
		panic(err)
	}
	fmt.Println(core.Classify(a))
	for _, ri := range a.Rules {
		fmt.Println(ri.Shape)
	}
	// Output:
	// selection-pushing
	// combined
	// right-linear
	// left-linear
	// exit
}

// ExampleFactorMagic shows the Magic-then-factor pipeline on the paper's
// running example; the factored predicate splits into bt/ft.
func ExampleFactorMagic() {
	p := parser.MustParseProgram(`
		t(X, Y) :- e(X, W), t(W, Y).
		t(X, Y) :- e(X, Y).
	`)
	m, err := magic.FromQuery(p, parser.MustParseAtom("t(5, Y)"))
	if err != nil {
		panic(err)
	}
	fr, err := core.FactorMagic(m, nil)
	if err != nil {
		panic(err)
	}
	fmt.Println(fr.Class)
	fmt.Println(fr.Split.LeftName, fr.Split.RightName)
	// Output:
	// selection-pushing
	// bt ft
}

// ExampleRefuteSplit demonstrates the undecidability reduction of Theorem
// 3.1: the refuter finds an EDB on which a candidate factoring is wrong.
func ExampleRefuteSplit() {
	p := parser.MustParseProgram(`
		t(X, Y, Z) :- a1(X), q1(Y, Z).
		t(X, Y, Z) :- a2(X), q2(Y, Z).
		q1(Y, Z) :- b1(Y, Z).
		q2(Y, Z) :- b2(Y, Z).
	`)
	s := core.Split{Pred: "t", Left: []int{0}, Right: []int{1, 2}, LeftName: "t1", RightName: "t2"}
	ce, err := core.RefuteSplit(p, parser.MustParseAtom("t(X, Y, Z)"), s,
		core.RefuteOptions{Trials: 300, Seed: 7})
	if err != nil {
		panic(err)
	}
	fmt.Println(ce != nil)
	// Output: true
}
