package core

import (
	"errors"
	"fmt"

	"factorlog/internal/ast"
	"factorlog/internal/magic"
)

// ErrNotFactorable is returned when none of the sufficient conditions of
// Section 4 certifies that the Magic program factors.
var ErrNotFactorable = errors.New("no factorability condition of Section 4 applies")

// FactorResult is the outcome of factoring a Magic program.
type FactorResult struct {
	// Program is the factored Magic program (Fig. 2 of the paper for the
	// three-rule transitive closure). Apply the optimize package to reach
	// the paper's final reduced programs.
	Program *ast.Program
	// Class is the certificate used.
	Class Class
	// Split records how the recursive predicate was divided.
	Split Split
	// Analysis is the structural analysis of the adorned program.
	Analysis *Analysis
	// Query is the answer predicate head, unchanged from the Magic result.
	Query ast.Atom
}

// FactorMagic factors the recursive predicate of a Magic program into its
// bound and free parts, when one of Theorems 4.1-4.3 certifies the
// factoring property — testing containments relative to the given EDB
// constraints (full TGDs; nil for none). It returns ErrNotFactorable
// (wrapped, with the per-class reasons) otherwise.
func FactorMagic(m *magic.Result, constraints []ast.Rule) (*FactorResult, error) {
	analysis, err := Analyze(m.Adorned)
	if err != nil {
		return nil, err
	}
	if _, err := analysis.WithConstraints(constraints); err != nil {
		return nil, err
	}
	class := Classify(analysis)
	if !class.Factorable() {
		_, spReason := SelectionPushing(analysis)
		_, symReason := Symmetric(analysis)
		_, apReason := AnswerPropagating(analysis)
		return nil, fmt.Errorf("%w: selection-pushing: %s; symmetric: %s; answer-propagating: %s",
			ErrNotFactorable, spReason, symReason, apReason)
	}
	return factorWith(m, analysis, class)
}

// ForceFactorMagic factors the Magic program without any certificate. The
// result computes a superset-or-equal relation for the query in general;
// it exists to demonstrate (as in Example 4.3) what goes wrong when the
// class conditions are violated, and for experimentation with programs
// whose factorability is known by other means.
func ForceFactorMagic(m *magic.Result) (*FactorResult, error) {
	analysis, err := Analyze(m.Adorned)
	if err != nil {
		return nil, err
	}
	return factorWith(m, analysis, ClassUnknown)
}

func factorWith(m *magic.Result, analysis *Analysis, class Class) (*FactorResult, error) {
	taken := map[string]bool{}
	collect := func(a ast.Atom) { taken[a.Pred] = true }
	for _, r := range m.Program.Rules {
		collect(r.Head)
		for _, b := range r.Body {
			collect(b)
		}
	}
	split, err := BoundFreeSplit(analysis.Pred, taken)
	if err != nil {
		return nil, err
	}
	factored, err := Apply(m.Program, split)
	if err != nil {
		return nil, err
	}
	return &FactorResult{
		Program:  factored,
		Class:    class,
		Split:    split,
		Analysis: analysis,
		Query:    m.Query,
	}, nil
}
