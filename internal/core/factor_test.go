package core

import (
	"errors"
	"strings"
	"testing"

	"factorlog/internal/engine"
	"factorlog/internal/magic"
	"factorlog/internal/parser"
)

func tc3Src() string {
	return `
		t(X, Y) :- t(X, W), t(W, Y).
		t(X, Y) :- e(X, W), t(W, Y).
		t(X, Y) :- t(X, W), e(W, Y).
		t(X, Y) :- e(X, Y).
	`
}

func TestSplitValidate(t *testing.T) {
	ok := Split{Pred: "t", Left: []int{0}, Right: []int{1}, LeftName: "bt", RightName: "ft"}
	if err := ok.Validate(2); err != nil {
		t.Errorf("valid split rejected: %v", err)
	}
	cases := []struct {
		s     Split
		arity int
	}{
		{Split{Pred: "t", Left: []int{0, 1}, Right: nil, LeftName: "a", RightName: "b"}, 2},   // trivial
		{Split{Pred: "t", Left: []int{0}, Right: []int{0}, LeftName: "a", RightName: "b"}, 2}, // overlap
		{Split{Pred: "t", Left: []int{0}, Right: []int{2}, LeftName: "a", RightName: "b"}, 2}, // range
		{Split{Pred: "t", Left: []int{0}, Right: []int{1}, LeftName: "a", RightName: "a"}, 2}, // same name
		{Split{Pred: "t", Left: []int{0}, Right: nil, LeftName: "a", RightName: "b"}, 2},      // coverage
		{Split{Pred: "", Left: []int{0}, Right: []int{1}, LeftName: "a", RightName: "b"}, 2},  // empty pred
	}
	for i, c := range cases {
		if err := c.s.Validate(c.arity); err == nil {
			t.Errorf("case %d: invalid split accepted", i)
		}
	}
}

// TestFactorMagicFig2Golden: factoring the Magic program of Fig. 1 yields
// exactly Fig. 2 of the paper.
func TestFactorMagicFig2Golden(t *testing.T) {
	p := parser.MustParseProgram(tc3Src())
	m, err := magic.FromQuery(p, parser.MustParseAtom("t(5, Y)"))
	if err != nil {
		t.Fatal(err)
	}
	fr, err := FactorMagic(m, nil)
	if err != nil {
		t.Fatal(err)
	}
	if fr.Class != ClassSelectionPushing {
		t.Errorf("class = %v", fr.Class)
	}
	if fr.Split.LeftName != "bt" || fr.Split.RightName != "ft" {
		t.Errorf("split names = %s/%s", fr.Split.LeftName, fr.Split.RightName)
	}
	want := parser.MustParseProgram(`
		m_t_bf(5).
		m_t_bf(W) :- m_t_bf(X), bt(X), ft(W).
		m_t_bf(W) :- m_t_bf(X), e(X, W).

		bt(X) :- m_t_bf(X), bt(X), ft(W), bt(W), ft(Y).
		ft(Y) :- m_t_bf(X), bt(X), ft(W), bt(W), ft(Y).
		bt(X) :- m_t_bf(X), e(X, W), bt(W), ft(Y).
		ft(Y) :- m_t_bf(X), e(X, W), bt(W), ft(Y).
		bt(X) :- m_t_bf(X), bt(X), ft(W), e(W, Y).
		ft(Y) :- m_t_bf(X), bt(X), ft(W), e(W, Y).
		bt(X) :- m_t_bf(X), e(X, Y).
		ft(Y) :- m_t_bf(X), e(X, Y).

		query(Y) :- bt(5), ft(Y).
	`)
	if fr.Program.Canonical() != want.Canonical() {
		t.Errorf("factored program:\n%s\nwant:\n%s", fr.Program, want)
	}
}

// TestFactorMagicPmemGolden: the factored pmem program of Example 4.6.
func TestFactorMagicPmemGolden(t *testing.T) {
	p := parser.MustParseProgram(`
		pmem(X, [X|T]) :- p(X).
		pmem(X, [H|T]) :- pmem(X, T).
	`)
	m, err := magic.FromQuery(p, parser.MustParseAtom("pmem(X, [x1, x2, x3])"))
	if err != nil {
		t.Fatal(err)
	}
	fr, err := FactorMagic(m, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := parser.MustParseProgram(`
		m_pmem_fb([x1, x2, x3]).
		m_pmem_fb(T) :- m_pmem_fb([H|T]).
		bpmem([X|T]) :- m_pmem_fb([X|T]), p(X).
		fpmem(X) :- m_pmem_fb([X|T]), p(X).
		bpmem([H|T]) :- m_pmem_fb([H|T]), bpmem(T), fpmem(X).
		fpmem(X) :- m_pmem_fb([H|T]), bpmem(T), fpmem(X).
		query(X) :- bpmem([x1, x2, x3]), fpmem(X).
	`)
	if fr.Program.Canonical() != want.Canonical() {
		t.Errorf("factored pmem:\n%s\nwant:\n%s", fr.Program, want)
	}
}

// TestFactoredAnswersMatchOriginal: the factored Magic program computes the
// original query answers (Theorem 4.1), on chains and random graphs.
func TestFactoredAnswersMatchOriginal(t *testing.T) {
	orig := parser.MustParseProgram(tc3Src())
	m, err := magic.FromQuery(orig, parser.MustParseAtom("t(3, Y)"))
	if err != nil {
		t.Fatal(err)
	}
	fr, err := FactorMagic(m, nil)
	if err != nil {
		t.Fatal(err)
	}

	edbs := [][][2]int{
		{{1, 2}, {2, 3}, {3, 4}, {4, 5}}, // chain
		{{1, 2}, {2, 3}, {3, 1}},         // cycle through 3
		{{3, 3}},                         // self loop at 3
		{{1, 2}},                         // query node absent
		{{3, 4}, {3, 5}, {4, 6}, {5, 6}, {6, 3}, {9, 9}}, // dag + cycle + junk
	}
	for i, edges := range edbs {
		load := func() *engine.DB {
			db := engine.NewDB()
			for _, e := range edges {
				db.MustInsert("e", db.Store.Int(e[0]), db.Store.Int(e[1]))
			}
			return db
		}
		dbO := load()
		if _, err := engine.Eval(orig, dbO, engine.Options{}); err != nil {
			t.Fatal(err)
		}
		wantAns, _ := engine.AnswerSet(dbO, parser.MustParseAtom("t(3, Y)"))

		dbF := load()
		if _, err := engine.Eval(fr.Program, dbF, engine.Options{}); err != nil {
			t.Fatal(err)
		}
		gotAns, _ := engine.AnswerSet(dbF, parser.MustParseAtom("query(Y)"))

		if len(gotAns) != len(wantAns) {
			t.Errorf("edb %d: %d answers vs %d", i, len(gotAns), len(wantAns))
			continue
		}
		for a := range gotAns {
			k := strings.TrimSuffix(strings.TrimPrefix(a, "("), ")")
			if !wantAns["(3,"+k+")"] {
				t.Errorf("edb %d: spurious %s", i, a)
			}
		}
	}
}

// TestFactoredPmemLinear: the factored pmem program evaluates correctly and
// the arity-1 predicates stay linear in the list length.
func TestFactoredPmemLinear(t *testing.T) {
	p := parser.MustParseProgram(`
		pmem(X, [X|T]) :- p(X).
		pmem(X, [H|T]) :- pmem(X, T).
	`)
	list := "[x1,x2,x3,x4,x5,x6]"
	m, err := magic.FromQuery(p, parser.MustParseAtom("pmem(X, "+list+")"))
	if err != nil {
		t.Fatal(err)
	}
	fr, err := FactorMagic(m, nil)
	if err != nil {
		t.Fatal(err)
	}
	db := engine.NewDB()
	for _, x := range []string{"x1", "x3", "x5"} {
		db.MustInsert("p", db.Store.Const(x))
	}
	if _, err := engine.Eval(fr.Program, db, engine.Options{}); err != nil {
		t.Fatal(err)
	}
	set, _ := engine.AnswerSet(db, parser.MustParseAtom("query(X)"))
	if len(set) != 3 || !set["(x1)"] || !set["(x3)"] || !set["(x5)"] {
		t.Errorf("answers = %v", set)
	}
	if got := db.Count("fpmem"); got != 3 {
		t.Errorf("|fpmem| = %d", got)
	}
	// m_pmem has the n+1 suffixes; fpmem <= n: all unary-side relations
	// are O(n), never O(n^2).
	if got := db.Count("m_pmem_fb"); got != 7 {
		t.Errorf("|m_pmem_fb| = %d, want 7", got)
	}
}

func TestFactorMagicRejectsSameGeneration(t *testing.T) {
	p := parser.MustParseProgram(`
		sg(X, Y) :- flat(X, Y).
		sg(X, Y) :- up(X, U), sg(U, V), down(V, Y).
	`)
	m, err := magic.FromQuery(p, parser.MustParseAtom("sg(john, Y)"))
	if err != nil {
		t.Fatal(err)
	}
	_, err = FactorMagic(m, nil)
	if !errors.Is(err, ErrNotFactorable) {
		t.Errorf("want ErrNotFactorable, got %v", err)
	}
	// ForceFactorMagic still produces a program (for demonstrations).
	fr, err := ForceFactorMagic(m)
	if err != nil {
		t.Fatal(err)
	}
	if fr.Class != ClassUnknown {
		t.Errorf("forced class = %v", fr.Class)
	}
}

func TestFactorMagicTrivialAdornment(t *testing.T) {
	p := parser.MustParseProgram(`
		t(X, Y) :- e(X, W), t(W, Y).
		t(X, Y) :- e(X, Y).
	`)
	m, err := magic.FromQuery(p, parser.MustParseAtom("t(X, Y)")) // all free
	if err != nil {
		t.Fatal(err)
	}
	if _, err := FactorMagic(m, nil); err == nil {
		t.Error("all-free adornment admits only trivial factoring; expected error")
	}
}

func TestApplyRequiresPredicate(t *testing.T) {
	p := parser.MustParseProgram(`a(X) :- b(X).`)
	_, err := Apply(p, Split{Pred: "zzz", Left: []int{0}, Right: []int{1}, LeftName: "l", RightName: "r"})
	if err == nil || !strings.Contains(err.Error(), "does not occur") {
		t.Errorf("err = %v", err)
	}
}

func TestAddFactoringRules(t *testing.T) {
	p := parser.MustParseProgram(`
		t(X, Y, Z) :- a1(X), q1(Y, Z).
		t(X, Y, Z) :- a2(X), q2(Y, Z).
	`)
	s := Split{Pred: "t", Left: []int{0}, Right: []int{1, 2}, LeftName: "t1", RightName: "t2"}
	pp, err := AddFactoringRules(p, s, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(pp.Rules) != len(p.Rules)+3 {
		t.Fatalf("rules = %d", len(pp.Rules))
	}
	// The original program is untouched.
	if len(p.Rules) != 2 {
		t.Error("input mutated")
	}
	// The bridge rule reconstructs t from t1 x t2.
	last := pp.Rules[len(pp.Rules)-1]
	if last.Head.Pred != "t" || len(last.Body) != 2 ||
		last.Body[0].Pred != "t1" || last.Body[1].Pred != "t2" {
		t.Errorf("bridge rule = %s", last)
	}
}

func TestBoundFreeSplitNames(t *testing.T) {
	s, err := BoundFreeSplit("t_bf", nil)
	if err != nil {
		t.Fatal(err)
	}
	if s.LeftName != "bt" || s.RightName != "ft" {
		t.Errorf("names = %s/%s", s.LeftName, s.RightName)
	}
	// Collision avoidance.
	s, err = BoundFreeSplit("t_bf", map[string]bool{"bt": true})
	if err != nil {
		t.Fatal(err)
	}
	if s.LeftName != "bt_" {
		t.Errorf("collision name = %s", s.LeftName)
	}
	// Non-adorned name.
	if _, err := BoundFreeSplit("plain", nil); err == nil {
		t.Error("plain name should be rejected")
	}
	// All-bound adornment.
	if _, err := BoundFreeSplit("t_bb", nil); err == nil {
		t.Error("all-bound adornment should be rejected")
	}
}
