// Package wal is the durability substrate for live fact ingestion: an
// append-only, epoch-stamped write-ahead log of mutation batches plus
// periodic base snapshots, so a crashed or restarted server recovers to
// exactly the epoch of its last acknowledged batch.
//
// The log is a sequence of segment files (wal-<firstEpoch>.seg), each a
// fixed header (magic, format version, program hash) followed by
// length-prefixed records. A record is a uint32 payload length, a uint32
// CRC32C (Castagnoli) of the payload, and the payload itself: an 8-byte
// little-endian epoch followed by the batch's JSON body. Epochs are
// strictly consecutive across records and segments; a record that breaks
// the chain, fails its CRC, or runs past the file is a torn tail — Open
// truncates the log back to the last valid record and reports how much it
// dropped, so a crash mid-write costs at most the unacknowledged suffix.
//
// Appends are acknowledged only after fsync. With FsyncInterval zero every
// Append syncs before returning; with a positive interval appends are
// group-committed — concurrent batches written during one interval share a
// single fsync, and every waiter unblocks when it completes. A failed
// fsync unwinds: the file is truncated back to the last synced offset and
// the affected appends report errors, so the on-disk log never holds a
// batch whose Append did not succeed.
//
// Snapshots capture the full base EDB at an epoch. WriteSnapshot writes
// the snapshot to a temp file, fsyncs, renames it into place, then
// atomically replaces the MANIFEST (epoch, program hash, snapshot file,
// content CRC) the same way; only after both renames does retention prune
// segments whose records are all covered by the snapshot, and older
// snapshot files. Open recovers from MANIFEST + segments: the snapshot
// seeds the base, the log tail replays the batches after it, and a
// program-hash mismatch anywhere refuses recovery with ErrProgramMismatch
// rather than replaying another program's history.
//
// Since(epoch) returns the committed batches after an epoch — the serving
// side of GET /facts?since=E replica tailing. Batches pruned by retention
// report ErrCompacted, telling the replica to bootstrap from a snapshot
// instead. See docs/DURABILITY.md for the wire format and the recovery
// guarantees, and internal/faultinject (WalAppend, WalFsync,
// SnapshotWrite, Replay) for the chaos points armed by the crash-recovery
// property tests.
package wal
